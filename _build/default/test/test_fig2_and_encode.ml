(* Figure 2 fidelity: the exact code transformations the paper shows, as
   golden disassembly tests; plus the instruction-size model. *)

open X86sim
open Memsentry

(* One store through [rbx+8], exactly the paper's running example. *)
let store_example =
  [
    {
      Ir.Lower.item = Program.I (Insn.Store (Insn.mem ~base:Reg.rbx 8, Reg.rdi));
      cls = Ir.Lower.Data_access;
      safe = false;
    };
  ]

let disasm items =
  List.filter_map
    (function Program.I i -> Some (Insn.to_string_named i) | Program.Label _ -> None)
    items

let test_fig2_mpx () =
  (* Paper Fig. 2(b): bndcu on the verified pointer, then the store. *)
  Alcotest.(check (list string))
    "MPX transformation"
    [ "lea r12, [rbx+0x8]"; "bndcu r12, bnd0"; "mov [r12], rdi" ]
    (disasm (Instr.address_based ~check:Instr_mpx.check ~kind:Instr.Writes store_example))

let test_fig2_sfi () =
  (* Paper Fig. 2(c): movabs the mask, and the pointer, then the store. *)
  Alcotest.(check (list string))
    "SFI transformation"
    [
      "lea r12, [rbx+0x8]";
      "mov r13, 0x3fffffffffff";
      "and r12, r13";
      "mov [r12], rdi";
    ]
    (disasm (Instr.address_based ~check:Instr_sfi.check ~kind:Instr.Writes store_example))

let test_fig2_isboxing () =
  Alcotest.(check (list string))
    "ISBoxing transformation"
    [ "lea32 r12, [rbx+0x8]"; "mov [r12], rdi" ]
    (disasm (Instr.address_based_lea32 ~kind:Instr.Writes store_example))

let test_safe_access_untouched () =
  let safe_example =
    [ { (List.hd store_example) with Ir.Lower.safe = true } ]
  in
  Alcotest.(check (list string))
    "annotated access left alone"
    [ "mov [rbx+0x8], rdi" ]
    (disasm (Instr.address_based ~check:Instr_mpx.check ~kind:Instr.Writes safe_example))

(* --- instruction sizes --- *)

let test_encode_canonical_sizes () =
  Alcotest.(check int) "ret" 1 (Encode.insn_bytes Insn.Ret);
  Alcotest.(check int) "syscall" 2 (Encode.insn_bytes Insn.Syscall);
  Alcotest.(check int) "movabs (the SFI mask)" 10
    (Encode.insn_bytes (Insn.Mov_ri (Reg.r13, Layout.sfi_mask)));
  Alcotest.(check int) "mov r, imm32" 7 (Encode.insn_bytes (Insn.Mov_ri (Reg.rax, 5)));
  Alcotest.(check int) "bndcu" 4 (Encode.insn_bytes (Insn.Bndcu (0, Reg.r12)));
  Alcotest.(check int) "wrpkru" 3 (Encode.insn_bytes Insn.Wrpkru);
  Alcotest.(check int) "vmfunc" 3 (Encode.insn_bytes Insn.Vmfunc);
  Alcotest.(check int) "load disp8" 4
    (Encode.insn_bytes (Insn.Load (Reg.rax, Insn.mem ~base:Reg.rbx 8)));
  Alcotest.(check int) "load disp32" 7
    (Encode.insn_bytes (Insn.Load (Reg.rax, Insn.mem ~base:Reg.rbx 4096)))

let test_encode_in_valid_x86_range () =
  (* Every instruction must encode within x86's hard 15-byte limit.
     Exercise across the whole ISA via a lowered workload. *)
  let lowered = Workloads.Synth.lowered ~iterations:2 (Workloads.Spec2006.find "milc") in
  let p = Framework.prepare (Framework.config Technique.Crypt) lowered in
  Array.iter
    (fun i ->
      let b = Encode.insn_bytes i in
      Alcotest.(check bool) (Insn.to_string_named i) true (b >= 1 && b <= 28))
    (Program.code p.Framework.program)

let test_instrumentation_grows_text () =
  let lowered = Workloads.Synth.lowered ~iterations:2 (Workloads.Spec2006.find "gcc") in
  let base = Encode.items_bytes (Instr.strip lowered.Ir.Lower.mitems) in
  let sfi =
    Encode.items_bytes
      (Instr.address_based ~check:Instr_sfi.check ~kind:Instr.Reads_and_writes
         lowered.Ir.Lower.mitems)
  in
  let mpx =
    Encode.items_bytes
      (Instr.address_based ~check:Instr_mpx.check ~kind:Instr.Reads_and_writes
         lowered.Ir.Lower.mitems)
  in
  Alcotest.(check bool) "SFI text bigger than MPX" true (sfi > mpx);
  Alcotest.(check bool) "MPX text bigger than baseline" true (mpx > base)

(* --- verifier soundness fuzz ---
   Randomly delete check instructions from an instrumented program; if the
   verifier still says Clean, executing the program with a hostile pointer
   must not reach the sensitive partition. (Deleting a check either gets
   flagged or leaves a program that is still confined.) *)
let prop_verifier_soundness =
  QCheck.Test.make ~name:"verifier soundness under check deletion" ~count:60
    QCheck.(int_range 1 1_000_000)
    (fun seed ->
      let rng = Ms_util.Prng.create ~seed in
      let lowered = Workloads.Synth.lowered ~iterations:1 (Workloads.Spec2006.find "sjeng") in
      let items =
        Instr.address_based ~check:Instr_mpx.check ~kind:Instr.Reads_and_writes
          lowered.Ir.Lower.mitems
      in
      (* Delete ~2% of bndcu checks. *)
      let mutated =
        List.filter
          (function
            | Program.I (Insn.Bndcu _) -> not (Ms_util.Prng.chance rng 0.02)
            | _ -> true)
          items
      in
      let prog = Program.assemble mutated in
      match Sandbox_verifier.verify ~policy:Sandbox_verifier.Mpx_policy prog with
      | Sandbox_verifier.Violations _ -> true (* mutation caught statically *)
      | Sandbox_verifier.Clean ->
        (* Nothing was deleted (or only redundant checks): the program must
           still run without ever faulting on the sensitive region. *)
        let cpu = X86sim.Cpu.create () in
        Ir.Lower.setup_memory cpu lowered;
        Instr_mpx.setup cpu;
        X86sim.Cpu.load_program cpu prog;
        (match X86sim.Cpu.run cpu with
        | X86sim.Cpu.Halted -> true
        | X86sim.Cpu.Out_of_fuel -> false
        | exception Fault.Fault _ -> false))

let suite =
  [
    Alcotest.test_case "Fig 2(b): MPX" `Quick test_fig2_mpx;
    Alcotest.test_case "Fig 2(c): SFI" `Quick test_fig2_sfi;
    Alcotest.test_case "Fig 2 ext: ISBoxing" `Quick test_fig2_isboxing;
    Alcotest.test_case "safe access untouched" `Quick test_safe_access_untouched;
    Alcotest.test_case "canonical encodings" `Quick test_encode_canonical_sizes;
    Alcotest.test_case "encodings in range" `Quick test_encode_in_valid_x86_range;
    Alcotest.test_case "instrumentation grows text" `Quick test_instrumentation_grows_text;
    QCheck_alcotest.to_alcotest prop_verifier_soundness;
  ]
