(* Multi-domain isolation: Table 3 ceilings enforced, per-scheme kernels
   run correctly, costs scale as the paper predicts, and cross-domain
   isolation actually holds (domain d open does not expose domain e). *)

open X86sim
open Memsentry

let schemes = [ Multi_domain.Mpk_keys; Multi_domain.Vmfunc_epts; Multi_domain.Mpx_bounds ]

let test_kernels_run () =
  List.iter
    (fun scheme ->
      List.iter
        (fun n ->
          let p = Multi_domain.build ~scheme ~ndomains:n ~iterations:5 () in
          let c = Multi_domain.run_cycles p in
          Alcotest.(check bool)
            (Printf.sprintf "%s n=%d runs" (Multi_domain.scheme_name scheme) n)
            true (c > 0.0))
        [ 1; 3; 7 ])
    schemes

let test_ceilings_enforced () =
  Alcotest.(check int) "MPK ceiling" 15 (Multi_domain.max_domains Multi_domain.Mpk_keys);
  Alcotest.(check int) "VMFUNC ceiling" 511 (Multi_domain.max_domains Multi_domain.Vmfunc_epts);
  List.iter
    (fun scheme ->
      Alcotest.(check bool)
        (Multi_domain.scheme_name scheme ^ " rejects over-ceiling")
        true
        (try
           ignore
             (Multi_domain.build ~scheme ~ndomains:(Multi_domain.max_domains scheme + 1)
                ~iterations:1 ());
           false
         with Invalid_argument _ -> true))
    schemes

let test_domain_switch_costs_ordered () =
  (* Per-access: MPX checks << MPK switch << VMFUNC switch. *)
  let c scheme = Multi_domain.cost_per_access scheme ~ndomains:4 ~iterations:100 in
  let mpx = c Multi_domain.Mpx_bounds
  and mpk = c Multi_domain.Mpk_keys
  and vmf = c Multi_domain.Vmfunc_epts in
  Alcotest.(check bool)
    (Printf.sprintf "mpx %.1f < mpk %.1f < vmfunc %.1f" mpx mpk vmf)
    true
    (mpx < mpk && mpk < vmf)

let test_mpx_spill_penalty () =
  let resident = Multi_domain.cost_per_access Multi_domain.Mpx_bounds ~ndomains:2 ~iterations:200 in
  let spilled = Multi_domain.cost_per_access Multi_domain.Mpx_bounds ~ndomains:12 ~iterations:200 in
  Alcotest.(check bool)
    (Printf.sprintf "spilled %.2f > resident %.2f" spilled resident)
    true (spilled > resident +. 0.2)

let test_cross_domain_isolation_mpk () =
  (* With only domain 0's key enabled, domain 1's region must fault. *)
  let p = Multi_domain.build ~scheme:Multi_domain.Mpk_keys ~ndomains:2 ~iterations:1 () in
  let cpu = p.Multi_domain.cpu in
  (* pkru state after build: everything closed. Open only key 1. *)
  Cpu.set_pkru cpu (1 lsl 4) (* AD for key 2 = domain 1; key 1 = domain 0 open *);
  let prim = Attacks.Primitives.create cpu in
  (* Region addresses are deterministic: allocator layout. *)
  let r0 = Layout.sensitive_base + 0x1000_0000 in
  let r1 = r0 + 4096 + 4096 in
  Alcotest.(check bool) "domain 0 readable" true (Attacks.Primitives.try_read prim r0 <> None);
  Alcotest.(check bool) "domain 1 blocked" true (Attacks.Primitives.try_read prim r1 = None)

let test_cross_domain_isolation_vmfunc () =
  let p = Multi_domain.build ~scheme:Multi_domain.Vmfunc_epts ~ndomains:2 ~iterations:1 () in
  let cpu = p.Multi_domain.cpu in
  (* Switch (kernel-side) to EPT 1 = domain 0's view. *)
  cpu.Cpu.mmu.Mmu.ept_index <- 1;
  let prim = Attacks.Primitives.create cpu in
  let r0 = Layout.sensitive_base + 0x1000_0000 in
  let r1 = r0 + 4096 + 4096 in
  Alcotest.(check bool) "domain 0 visible in its EPT" true
    (Attacks.Primitives.try_read prim r0 <> None);
  Alcotest.(check bool) "domain 1 invisible in EPT 1" true
    (Attacks.Primitives.try_read prim r1 = None)

let test_baseline_unprotected () =
  let p = Multi_domain.build_baseline ~ndomains:3 ~iterations:2 () in
  Alcotest.(check bool) "runs" true (Multi_domain.run_cycles p > 0.0);
  let prim = Attacks.Primitives.create p.Multi_domain.cpu in
  let r0 = Layout.sensitive_base + 0x1000_0000 in
  Alcotest.(check bool) "baseline has no protection" true
    (Attacks.Primitives.try_read prim r0 <> None)

let suite =
  [
    Alcotest.test_case "kernels run under all schemes" `Quick test_kernels_run;
    Alcotest.test_case "Table 3 ceilings enforced" `Quick test_ceilings_enforced;
    Alcotest.test_case "per-access costs ordered" `Quick test_domain_switch_costs_ordered;
    Alcotest.test_case "MPX spill penalty" `Quick test_mpx_spill_penalty;
    Alcotest.test_case "cross-domain isolation (MPK)" `Quick test_cross_domain_isolation_mpk;
    Alcotest.test_case "cross-domain isolation (VMFUNC)" `Quick
      test_cross_domain_isolation_vmfunc;
    Alcotest.test_case "baseline unprotected" `Quick test_baseline_unprotected;
  ]
