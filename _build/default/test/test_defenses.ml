(* Defense implementations: shadow stack catches return-address smashing,
   CFI catches control-flow hijacks, CPI annotates via points-to, the
   DieHard-style allocator protects its metadata, pointer encryption
   round-trips, and information hiding actually hides. *)

open X86sim
open Memsentry

let page = Physmem.page_size

let plain insn = { Ir.Lower.item = Program.I insn; cls = Ir.Lower.Plain; safe = false }
let lbl l = { Ir.Lower.item = Program.Label l; cls = Ir.Lower.Plain; safe = false }

let data_page = Layout.heap_base
let marker_normal = data_page
let marker_evil = data_page + 8

(* main calls f; f returns normally (benign) or overwrites its return
   address to jump to "evil" (attack). *)
let victim_mitems ~smash =
  let attack =
    if smash then
      [
        plain (Insn.Mov_label (Reg.rax, Insn.target "evil"));
        plain (Insn.Store (Insn.mem ~base:Reg.rsp 0, Reg.rax));
      ]
    else []
  in
  [
    lbl "main";
    plain (Insn.Call (Insn.target "fn_f"));
    plain (Insn.Store_i (Insn.mem_abs marker_normal, 1));
    plain Insn.Halt;
    lbl "fn_f";
    plain (Insn.Alu_ri (Insn.Add, Reg.rbx, 1));
  ]
  @ attack
  @ [ plain Insn.Ret; lbl "evil"; plain (Insn.Store_i (Insn.mem_abs marker_evil, 1)); plain Insn.Halt ]

let lowered_of mitems = { Ir.Lower.mitems; layout = [] }

let run_shadowed ~smash =
  let cpu = Cpu.create () in
  Mmu.map_range cpu.Cpu.mmu ~va:data_page ~len:page ~writable:true;
  let region_va = Layout.sensitive_base + 0x1000_0000 in
  Mmu.map_range cpu.Cpu.mmu ~va:region_va ~len:Defenses.Shadow_stack.default_region_size
    ~writable:true;
  let protected_prog = Defenses.Shadow_stack.apply ~region_va (lowered_of (victim_mitems ~smash)) in
  Cpu.load_program cpu (Program.assemble (Instr.strip protected_prog.Ir.Lower.mitems));
  ignore (Cpu.run cpu);
  ( Mmu.peek64 cpu.Cpu.mmu ~va:marker_normal,
    Mmu.peek64 cpu.Cpu.mmu ~va:marker_evil,
    Defenses.Shadow_stack.shadow_depth cpu ~region_va )

let test_shadow_stack_benign () =
  let normal, evil, depth = run_shadowed ~smash:false in
  Alcotest.(check int) "normal path ran" 1 normal;
  Alcotest.(check int) "no hijack" 0 evil;
  Alcotest.(check int) "shadow balanced" 0 depth

let test_shadow_stack_catches_smash () =
  (* Unprotected: the hijack succeeds. *)
  let cpu = Cpu.create () in
  Mmu.map_range cpu.Cpu.mmu ~va:data_page ~len:page ~writable:true;
  Cpu.load_program cpu (Program.assemble (Instr.strip (victim_mitems ~smash:true)));
  ignore (Cpu.run cpu);
  Alcotest.(check int) "unprotected: hijacked" 1 (Mmu.peek64 cpu.Cpu.mmu ~va:marker_evil);
  (* Shadow stack: neither path runs — execution stops at the violation stub. *)
  let normal, evil, _ = run_shadowed ~smash:true in
  Alcotest.(check int) "hijack blocked" 0 evil;
  Alcotest.(check int) "and detected before returning" 0 normal

let test_shadow_stack_under_mpk () =
  (* Shadow stack + MemSentry MPK: semantics preserved, shadow region
     write-protected against a direct attacker write mid-run. *)
  let region_va = Layout.sensitive_base + 0x1000_0000 in
  let base = lowered_of (victim_mitems ~smash:false) in
  let protected_prog = Defenses.Shadow_stack.apply ~region_va base in
  let cfg =
    Framework.config ~switch_policy:Instr.At_safe_accesses (Technique.Mpk Mpk.Pkey.Read_only)
  in
  let region = { Safe_region.va = region_va; size = Defenses.Shadow_stack.default_region_size } in
  let p = Framework.prepare ~extra_regions:[ region ] cfg protected_prog in
  Mmu.map_range p.Framework.cpu.Cpu.mmu ~va:data_page ~len:page ~writable:true;
  Alcotest.(check bool) "runs" true (Framework.run p = Cpu.Halted);
  Alcotest.(check int) "normal path" 1 (Mmu.peek64 p.Framework.cpu.Cpu.mmu ~va:marker_normal);
  (* Attacker write to the shadow stack from outside the brackets faults. *)
  let prim = Attacks.Primitives.create p.Framework.cpu in
  Alcotest.(check bool) "shadow write blocked" false
    (Attacks.Primitives.try_write prim region_va 0xbad)

(* --- CFI --- *)

let cfi_victim ~corrupt =
  (* main loads a function pointer from memory and calls it; the attacker
     may have overwritten the pointer with the address of "evil". *)
  [
    lbl "main";
    plain (Insn.Mov_ri (Reg.rbx, data_page + 16));
    plain (Insn.Mov_label (Reg.rax, Insn.target (if corrupt then "evil" else "fn_ok")));
    plain (Insn.Store (Insn.mem ~base:Reg.rbx 0, Reg.rax));
    plain (Insn.Load (Reg.rax, Insn.mem ~base:Reg.rbx 0));
    plain (Insn.Call_r Reg.rax);
    plain Insn.Halt;
    lbl "fn_ok";
    plain (Insn.Store_i (Insn.mem_abs marker_normal, 1));
    plain Insn.Ret;
    lbl "evil";
    plain (Insn.Store_i (Insn.mem_abs marker_evil, 1));
    plain Insn.Ret;
  ]

let run_cfi ~corrupt =
  let cpu = Cpu.create () in
  Mmu.map_range cpu.Cpu.mmu ~va:data_page ~len:page ~writable:true;
  let region_va = Layout.sensitive_base + 0x2000_0000 in
  Mmu.map_range cpu.Cpu.mmu ~va:region_va ~len:page ~writable:true;
  let guarded = Defenses.Cfi.apply ~region_va (lowered_of (cfi_victim ~corrupt)) in
  Cpu.load_program cpu (Program.assemble (Instr.strip guarded.Ir.Lower.mitems));
  ignore (Cpu.run cpu);
  (Mmu.peek64 cpu.Cpu.mmu ~va:marker_normal, Mmu.peek64 cpu.Cpu.mmu ~va:marker_evil)

let test_cfi_allows_valid_target () =
  let normal, evil = run_cfi ~corrupt:false in
  Alcotest.(check int) "valid call ran" 1 normal;
  Alcotest.(check int) "no evil" 0 evil

let test_cfi_blocks_hijack () =
  (* "evil" is not a function entry in the table (it is a label inside the
     code, not an fn_ label), so the guard rejects it. *)
  let normal, evil = run_cfi ~corrupt:true in
  Alcotest.(check int) "hijack blocked" 0 evil;
  Alcotest.(check int) "halted at violation" 0 normal

(* --- CPI --- *)

let cpi_module () =
  let open Ir.Ir_types in
  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"fptrs" ~size:64 ();
  Ir.Builder.add_global b ~name:"data" ~size:64 ();
  Ir.Builder.start_func b ~name:"cb" ~nparams:0;
  Ir.Builder.emit_ret b (Some (Const 9));
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  let fp = Ir.Builder.emit_addr_of_func b "cb" in
  let tab = Ir.Builder.emit_addr_of_global b "fptrs" in
  Ir.Builder.emit_store b ~base:(Var tab) ~offset:0 ~src:(Var fp);
  let d = Ir.Builder.emit_addr_of_global b "data" in
  Ir.Builder.emit_store b ~base:(Var d) ~offset:0 ~src:(Const 5);
  let loaded = Ir.Builder.emit_load b ~base:(Var tab) ~offset:0 in
  let r = Option.get (Ir.Builder.emit_call_ind b ~dst:true (Var loaded) []) in
  Ir.Builder.emit_ret b (Some (Var r));
  Ir.Builder.finish b

let count_safe m =
  let n = ref 0 in
  Ir.Ir_types.iter_instrs m (fun _ _ ins -> if ins.Ir.Ir_types.safe_access then incr n);
  !n

let test_cpi_static_annotates () =
  let m = cpi_module () in
  let n = Defenses.Cpi.apply ~pointer_globals:[ "fptrs" ] m in
  Alcotest.(check bool) "fptrs sensitive" true (Ir.Ir_types.find_global m "fptrs").Ir.Ir_types.sensitive;
  Alcotest.(check bool) "data not sensitive" false
    (Ir.Ir_types.find_global m "data").Ir.Ir_types.sensitive;
  (* store-to-fptrs and load-from-fptrs, but not the data store *)
  Alcotest.(check int) "two accesses annotated" 2 n;
  Alcotest.(check int) "marks applied" 2 (count_safe m);
  (* and the protected module still lowers and runs correctly *)
  let lowered = Ir.Lower.lower m in
  let p = Framework.prepare (Framework.config (Technique.Mpk Mpk.Pkey.No_access)) lowered in
  Alcotest.(check bool) "halted" true (Framework.run p = Cpu.Halted);
  Alcotest.(check int) "indirect call through safe region" 9
    (Cpu.get_gpr p.Framework.cpu Reg.rax)

let test_cpi_dynamic_matches_static_here () =
  let m = cpi_module () in
  let n = Defenses.Cpi.apply ~analysis:Defenses.Cpi.Dynamic ~pointer_globals:[ "fptrs" ] m in
  Alcotest.(check int) "same two accesses" 2 n

(* --- DieHard-style allocator --- *)

let with_allocator f =
  let cpu = Cpu.create () in
  let a = Safe_region.create_allocator cpu in
  let meta = Safe_region.alloc a ~size:1024 in
  let heap = Defenses.Safe_alloc.create cpu ~seed:3 ~slot_size:64 ~slots:64 ~meta_region:meta () in
  f cpu heap meta

let test_safe_alloc_no_overlap () =
  with_allocator (fun _ heap _ ->
      let ptrs = List.init 40 (fun _ -> Defenses.Safe_alloc.malloc heap) in
      let sorted = List.sort_uniq compare ptrs in
      Alcotest.(check int) "all distinct" 40 (List.length sorted);
      List.iter
        (fun p -> Alcotest.(check bool) "in heap" true (Defenses.Safe_alloc.contains heap p))
        ptrs;
      Alcotest.(check int) "live count" 40 (Defenses.Safe_alloc.live_count heap))

let test_safe_alloc_random_placement () =
  let order seed =
    let cpu = Cpu.create () in
    let a = Safe_region.create_allocator cpu in
    let meta = Safe_region.alloc a ~size:1024 in
    let heap = Defenses.Safe_alloc.create cpu ~seed ~slot_size:64 ~slots:64 ~meta_region:meta () in
    List.init 10 (fun _ -> Defenses.Safe_alloc.malloc heap)
  in
  Alcotest.(check bool) "seeds give different layouts" true (order 1 <> order 2);
  Alcotest.(check bool) "same seed deterministic" true (order 5 = order 5)

let test_safe_alloc_errors () =
  with_allocator (fun _ heap _ ->
      let p = Defenses.Safe_alloc.malloc heap in
      Defenses.Safe_alloc.free heap p;
      Alcotest.(check bool) "double free" true
        (try
           Defenses.Safe_alloc.free heap p;
           false
         with Defenses.Safe_alloc.Heap_error _ -> true);
      Alcotest.(check bool) "foreign pointer" true
        (try
           Defenses.Safe_alloc.free heap 0x1234;
           false
         with Defenses.Safe_alloc.Heap_error _ -> true);
      (* exhaust *)
      let rec drain n = if n > 0 then (ignore (Defenses.Safe_alloc.malloc heap); drain (n - 1)) in
      drain 64;
      Alcotest.(check bool) "out of memory" true
        (try
           ignore (Defenses.Safe_alloc.malloc heap);
           false
         with Defenses.Safe_alloc.Heap_error _ -> true))

let test_safe_alloc_metadata_in_region () =
  with_allocator (fun cpu heap meta ->
      let p = Defenses.Safe_alloc.malloc heap in
      let slot = (p - Defenses.Safe_alloc.heap_base heap) / 64 in
      Alcotest.(check int) "bit set in safe region" 1
        (Mmu.peek64 cpu.Cpu.mmu ~va:(meta.Safe_region.va + (8 * slot))))

(* --- pointer encryption --- *)

let test_ptr_encrypt_roundtrip () =
  let cpu = Cpu.create () in
  let a = Safe_region.create_allocator cpu in
  let table = Safe_region.alloc a ~size:256 in
  let pe = Defenses.Ptr_encrypt.create cpu ~seed:21 ~key_table:table () in
  Alcotest.(check int) "capacity" 32 (Defenses.Ptr_encrypt.capacity pe);
  let ptr = 0x40_1234 in
  let c0 = Defenses.Ptr_encrypt.encrypt pe ~slot:0 ptr in
  let c1 = Defenses.Ptr_encrypt.encrypt pe ~slot:1 ptr in
  Alcotest.(check bool) "per-slot keys differ" true (c0 <> c1);
  Alcotest.(check bool) "not identity" true (c0 <> ptr);
  Alcotest.(check int) "round trip" ptr (Defenses.Ptr_encrypt.decrypt pe ~slot:0 c0);
  Alcotest.check_raises "slot bounds" (Invalid_argument "Ptr_encrypt: slot out of range")
    (fun () -> ignore (Defenses.Ptr_encrypt.encrypt pe ~slot:32 ptr))

(* --- info hiding --- *)

let test_info_hiding_places_secret () =
  let cpu = Cpu.create () in
  let h = Defenses.Info_hiding.hide cpu ~seed:4 ~entropy_bits:12 ~size:page ~secret:77 () in
  let lo, hi = Defenses.Info_hiding.probe_space h in
  Alcotest.(check bool) "inside probe space" true
    (h.Defenses.Info_hiding.secret_va >= lo && h.Defenses.Info_hiding.secret_va < hi);
  Alcotest.(check int) "secret planted" 77
    (Mmu.peek64 cpu.Cpu.mmu ~va:h.Defenses.Info_hiding.secret_va);
  let h2 = Defenses.Info_hiding.hide cpu ~seed:5 ~entropy_bits:12 ~size:page ~secret:77 () in
  Alcotest.(check bool) "different seeds, different spots" true
    (h2.Defenses.Info_hiding.secret_va <> h.Defenses.Info_hiding.secret_va)

(* --- rerandomization --- *)

let test_rerandomize_moves_and_preserves () =
  let cpu = Cpu.create () in
  let r = Defenses.Rerandomize.create cpu ~seed:6 ~entropy_bits:12 ~size:page ~secret:0xAA55 () in
  let before = Defenses.Rerandomize.current_va r in
  Defenses.Rerandomize.rerandomize r;
  let after = Defenses.Rerandomize.current_va r in
  Alcotest.(check bool) "moved" true (after <> before);
  Alcotest.(check int) "contents follow" 0xAA55 (Mmu.peek64 cpu.Cpu.mmu ~va:after);
  Alcotest.(check bool) "old spot gone" false (Mmu.is_mapped cpu.Cpu.mmu ~va:before);
  Alcotest.(check int) "move counted" 1 (Defenses.Rerandomize.moves r)

let test_rerandomize_invalidates_leak_but_loses_race () =
  let cpu = Cpu.create () in
  let r = Defenses.Rerandomize.create cpu ~seed:8 ~entropy_bits:12 ~size:page ~secret:0xAA55 () in
  let prim = Attacks.Primitives.create cpu in
  let lo, hi = Defenses.Rerandomize.probe_space r in
  (* Attacker leaks the address... *)
  let leaked = Option.get (Attacks.Alloc_oracle.locate prim ~lo ~hi) in
  (* ...the defense moves before use: the leak is stale... *)
  Defenses.Rerandomize.rerandomize r;
  Alcotest.(check (option int)) "stale leak faults" None (Attacks.Primitives.try_read prim leaked);
  (* ...but an attacker that wins the race (re-runs the oracle) still
     reads the secret: the window never closes, it only narrows. *)
  let again = Option.get (Attacks.Alloc_oracle.locate prim ~lo ~hi) in
  Alcotest.(check (option int)) "fresh leak wins" (Some 0xAA55)
    (Attacks.Primitives.try_read prim again)

(* --- CCFI --- *)

let test_ccfi_seal_roundtrip () =
  let cpu = Cpu.create () in
  let c = Defenses.Ccfi.create cpu ~seed:3 () in
  let ptr = 0x7654 in
  let sealed = Defenses.Ccfi.seal c ~slot:5 ptr in
  Alcotest.(check int) "round trip" ptr (Defenses.Ccfi.unseal c ~slot:5 sealed);
  Alcotest.(check bool) "ciphertext opaque" true
    (Int64.to_int (Bytes.get_int64_le sealed.Defenses.Ccfi.cipher 0) <> ptr)

let test_ccfi_detects_tamper_and_replay () =
  let cpu = Cpu.create () in
  let c = Defenses.Ccfi.create cpu ~seed:3 () in
  let sealed = Defenses.Ccfi.seal c ~slot:5 0x7654 in
  (* Replay at a different slot: caught. *)
  Alcotest.(check bool) "replay caught" true
    (try
       ignore (Defenses.Ccfi.unseal c ~slot:6 sealed);
       false
     with Defenses.Ccfi.Mac_failure { slot = 6 } -> true);
  (* Bit-flip in the ciphertext: caught. *)
  let tampered = Bytes.copy sealed.Defenses.Ccfi.cipher in
  Bytes.set_uint8 tampered 0 (Bytes.get_uint8 tampered 0 lxor 1);
  Alcotest.(check bool) "tamper caught" true
    (try
       ignore (Defenses.Ccfi.unseal c ~slot:5 { Defenses.Ccfi.cipher = tampered });
       false
     with Defenses.Ccfi.Mac_failure _ -> true)

let test_ccfi_keys_differ_per_process () =
  let cpu = Cpu.create () in
  let c1 = Defenses.Ccfi.create cpu ~seed:1 () in
  let c2 = Defenses.Ccfi.create cpu ~seed:2 () in
  let s1 = Defenses.Ccfi.seal c1 ~slot:0 0x1234 in
  Alcotest.(check bool) "foreign key rejected" true
    (try
       ignore (Defenses.Ccfi.unseal c2 ~slot:0 s1);
       false
     with Defenses.Ccfi.Mac_failure _ -> true)

let suite =
  [
    Alcotest.test_case "shadow stack: benign" `Quick test_shadow_stack_benign;
    Alcotest.test_case "shadow stack: catches smash" `Quick test_shadow_stack_catches_smash;
    Alcotest.test_case "shadow stack under MPK" `Quick test_shadow_stack_under_mpk;
    Alcotest.test_case "cfi: valid target" `Quick test_cfi_allows_valid_target;
    Alcotest.test_case "cfi: blocks hijack" `Quick test_cfi_blocks_hijack;
    Alcotest.test_case "cpi: static annotation" `Quick test_cpi_static_annotates;
    Alcotest.test_case "cpi: dynamic annotation" `Quick test_cpi_dynamic_matches_static_here;
    Alcotest.test_case "safe_alloc: no overlap" `Quick test_safe_alloc_no_overlap;
    Alcotest.test_case "safe_alloc: randomized" `Quick test_safe_alloc_random_placement;
    Alcotest.test_case "safe_alloc: misuse detection" `Quick test_safe_alloc_errors;
    Alcotest.test_case "safe_alloc: metadata isolated" `Quick test_safe_alloc_metadata_in_region;
    Alcotest.test_case "ptr_encrypt round trip" `Quick test_ptr_encrypt_roundtrip;
    Alcotest.test_case "info hiding placement" `Quick test_info_hiding_places_secret;
    Alcotest.test_case "rerandomize: moves and preserves" `Quick
      test_rerandomize_moves_and_preserves;
    Alcotest.test_case "rerandomize: narrows but keeps the race" `Quick
      test_rerandomize_invalidates_leak_but_loses_race;
    Alcotest.test_case "ccfi: seal round-trip" `Quick test_ccfi_seal_roundtrip;
    Alcotest.test_case "ccfi: tamper and replay detection" `Quick
      test_ccfi_detects_tamper_and_replay;
    Alcotest.test_case "ccfi: per-process keys" `Quick test_ccfi_keys_differ_per_process;
  ]
