(* The hardware-feature substrates: vmx (hypervisor, sandbox, vmfunc),
   mpx bounds conventions, mpk key management, and SGX enclaves. *)

open X86sim

let i x = Program.I x

let secret_va = Layout.heap_base
let secret_len = 4096

let fresh_guest () =
  let cpu = Cpu.create () in
  Mmu.map_range cpu.Cpu.mmu ~va:secret_va ~len:secret_len ~writable:true;
  Mmu.poke64 cpu.Cpu.mmu ~va:secret_va 0xC0FFEE;
  let hv = Vmx.Sandbox.enter_secret cpu ~secret_va ~secret_len in
  (cpu, hv)

let run_prog cpu items =
  Cpu.load_program cpu (Program.assemble (items @ [ i Insn.Halt ]));
  Cpu.run cpu

(* --- vmx --- *)

let test_secret_unreachable_in_default_ept () =
  let cpu, hv = fresh_guest () in
  match
    run_prog cpu
      [ i (Insn.Mov_ri (Reg.rbx, secret_va)); i (Insn.Load (Reg.rax, Insn.mem ~base:Reg.rbx 0)) ]
  with
  | exception Fault.Fault (Fault.Ept_violation _) ->
    Alcotest.(check int) "refusal recorded" 1 (Vmx.Hypervisor.ept_violations_refused hv)
  | _ -> Alcotest.fail "expected EPT violation"
  [@@warning "-33"]

let test_secret_reachable_after_vmfunc () =
  let cpu, _hv = fresh_guest () in
  let status =
    run_prog cpu
      (List.map i (Vmx.Hypervisor.vmfunc_seq ~ept:Vmx.Sandbox.sensitive_ept)
      @ [
          i (Insn.Mov_ri (Reg.rbx, secret_va));
          i (Insn.Load (Reg.r8, Insn.mem ~base:Reg.rbx 0));
        ]
      @ List.map i (Vmx.Hypervisor.vmfunc_seq ~ept:Vmx.Sandbox.nonsensitive_ept))
  in
  Alcotest.(check bool) "ran to completion" true (status = Cpu.Halted);
  Alcotest.(check int) "read the secret" 0xC0FFEE (Cpu.get_gpr cpu Reg.r8);
  Alcotest.(check int) "two EPT switches" 2 cpu.Cpu.counters.Cpu.vmfuncs

let test_nonsecret_reachable_in_both_epts () =
  let cpu, _hv = fresh_guest () in
  let scratch = Layout.heap_base + 0x100000 in
  Mmu.map_range cpu.Cpu.mmu ~va:scratch ~len:4096 ~writable:true;
  Mmu.poke64 cpu.Cpu.mmu ~va:scratch 41;
  let status =
    run_prog cpu
      ([ i (Insn.Mov_ri (Reg.rbx, scratch)); i (Insn.Load (Reg.r8, Insn.mem ~base:Reg.rbx 0)) ]
      @ List.map i (Vmx.Hypervisor.vmfunc_seq ~ept:Vmx.Sandbox.sensitive_ept)
      @ [ i (Insn.Load (Reg.r9, Insn.mem ~base:Reg.rbx 0)) ])
  in
  Alcotest.(check bool) "halted" true (status = Cpu.Halted);
  Alcotest.(check int) "EPT0 read" 41 (Cpu.get_gpr cpu Reg.r8);
  Alcotest.(check int) "EPT1 read" 41 (Cpu.get_gpr cpu Reg.r9)

let test_guest_syscall_becomes_hypercall () =
  let cpu, _hv = fresh_guest () in
  let status = run_prog cpu [ i (Insn.Mov_ri (Reg.rax, Cpu.sys_nop)); i Insn.Syscall ] in
  Alcotest.(check bool) "halted" true (status = Cpu.Halted);
  Alcotest.(check int) "syscall counted" 1 cpu.Cpu.counters.Cpu.syscalls;
  Alcotest.(check int) "converted to hypercall" 1 cpu.Cpu.counters.Cpu.vmcalls

let test_mark_secret_hypercall () =
  let cpu = Cpu.create () in
  let region = Layout.heap_base in
  Mmu.map_range cpu.Cpu.mmu ~va:region ~len:4096 ~writable:true;
  let _hv = Vmx.Sandbox.enter cpu in
  (* Guest marks its own region secret, then the default EPT can't see it. *)
  let status =
    run_prog cpu
      [
        i (Insn.Mov_ri (Reg.rax, Vmx.Hypervisor.hc_mark_secret));
        i (Insn.Mov_ri (Reg.rdi, region));
        i (Insn.Mov_ri (Reg.rsi, 4096));
        i (Insn.Mov_ri (Reg.rdx, Vmx.Sandbox.sensitive_ept));
        i Insn.Vmcall;
      ]
  in
  Alcotest.(check bool) "hypercall ok" true (status = Cpu.Halted);
  Alcotest.(check int) "rax = 0" 0 (Cpu.get_gpr cpu Reg.rax);
  match
    run_prog cpu
      [ i (Insn.Mov_ri (Reg.rbx, region)); i (Insn.Load (Reg.rax, Insn.mem ~base:Reg.rbx 0)) ]
  with
  | exception Fault.Fault (Fault.Ept_violation _) -> ()
  | _ -> Alcotest.fail "secret readable after hc_mark_secret"

let test_vmfunc_bad_index_faults () =
  let cpu, _hv = fresh_guest () in
  match
    run_prog cpu [ i (Insn.Mov_ri (Reg.rax, 0)); i (Insn.Mov_ri (Reg.rcx, 7)); i Insn.Vmfunc ]
  with
  | exception Fault.Fault (Fault.Gp_fault _) -> ()
  | _ -> Alcotest.fail "expected #GP for bad EPTP index"

let test_prefault_removes_demand_fill_exits () =
  let cpu, hv = fresh_guest () in
  let scratch = Layout.heap_base + 0x200000 in
  Mmu.map_range cpu.Cpu.mmu ~va:scratch ~len:65536 ~writable:true;
  Vmx.Sandbox.prefault hv ~va:scratch ~len:65536;
  let items =
    i (Insn.Mov_ri (Reg.rbx, scratch))
    :: List.init 16 (fun k -> i (Insn.Load (Reg.rax, Insn.mem ~base:Reg.rbx (k * 4096))))
  in
  let _ = run_prog cpu items in
  Alcotest.(check int) "no exits for prefaulted pages" 0 cpu.Cpu.counters.Cpu.vm_exits

let test_clear_secret_reopens () =
  let cpu, hv = fresh_guest () in
  Vmx.Hypervisor.clear_secret hv ~va:secret_va ~len:secret_len;
  let status =
    run_prog cpu
      [ i (Insn.Mov_ri (Reg.rbx, secret_va)); i (Insn.Load (Reg.r8, Insn.mem ~base:Reg.rbx 0)) ]
  in
  Alcotest.(check bool) "readable again under EPT 0" true (status = Cpu.Halted);
  Alcotest.(check int) "value intact" 0xC0FFEE (Cpu.get_gpr cpu Reg.r8)

let test_ept_map_unmap_iter () =
  let e = Ept.create () in
  Ept.map e ~gfn:5 ~hfn:50 ~readable:true ~writable:false;
  Ept.map e ~gfn:9 ~hfn:90 ~readable:true ~writable:true;
  Alcotest.(check int) "two mapped" 2 (Ept.mapped_count e);
  (match Ept.find e ~gfn:5 with
  | Some (hfn, perm) ->
    Alcotest.(check int) "hfn" 50 hfn;
    Alcotest.(check bool) "read-only" false perm.Ept.writable
  | None -> Alcotest.fail "gfn 5 missing");
  let g = Ept.generation e in
  Ept.unmap e ~gfn:5;
  Alcotest.(check bool) "generation bumped" true (Ept.generation e > g);
  Alcotest.(check bool) "unmapped" true (Ept.find e ~gfn:5 = None);
  let seen = ref [] in
  Ept.iter e (fun gfn (hfn, _) -> seen := (gfn, hfn) :: !seen);
  Alcotest.(check (list (pair int int))) "iter sees survivors" [ (9, 90) ] !seen

let test_hypervisor_rejects_double_virtualization () =
  let cpu = Cpu.create () in
  let _ = Vmx.Sandbox.enter cpu in
  Alcotest.check_raises "double" (Invalid_argument "Hypervisor.create: CPU already virtualized")
    (fun () -> ignore (Vmx.Sandbox.enter cpu))

(* --- mpx --- *)

let test_mpx_partition_setup () =
  let cpu = Cpu.create () in
  Mpx.Bounds.setup_partition cpu;
  Alcotest.(check int) "lower" 0 cpu.Cpu.bnd_lower.(Mpx.Bounds.partition_bnd);
  Alcotest.(check int) "upper" (Layout.sensitive_base - 1)
    cpu.Cpu.bnd_upper.(Mpx.Bounds.partition_bnd)

let test_mpx_check_blocks_sensitive_pointer () =
  let cpu = Cpu.create () in
  match
    run_prog cpu
      (List.map i Mpx.Bounds.setup_insns
      @ [
          i (Insn.Mov_ri (Reg.rcx, Layout.sensitive_base + 64));
          i (Mpx.Bounds.check_before Reg.rcx);
        ])
  with
  | exception Fault.Fault (Fault.Bound_violation _) -> ()
  | _ -> Alcotest.fail "expected #BR"

let test_mpx_check_allows_normal_pointer () =
  let cpu = Cpu.create () in
  let status =
    run_prog cpu
      (List.map i Mpx.Bounds.setup_insns
      @ [ i (Insn.Mov_ri (Reg.rcx, Layout.heap_base)); i (Mpx.Bounds.check_before Reg.rcx) ])
  in
  Alcotest.(check bool) "no fault" true (status = Cpu.Halted)

let test_mpx_table_slots () =
  let cpu = Cpu.create () in
  let table = Mpx.Bounds.table_create cpu in
  Alcotest.(check int) "slot stride" 16
    (Mpx.Bounds.table_slot_va table 1 - Mpx.Bounds.table_slot_va table 0);
  Alcotest.(check bool) "slots mapped" true
    (Mmu.is_mapped cpu.Cpu.mmu ~va:(Mpx.Bounds.table_slot_va table 0));
  Alcotest.check_raises "overflow" (Invalid_argument "Bounds.table_slot_va: slot out of range")
    (fun () -> ignore (Mpx.Bounds.table_slot_va table Mpx.Bounds.table_capacity))

(* --- mpk --- *)

let test_pkey_alloc_exhaustion () =
  Mpk.Pkey.reset_allocator ();
  let keys = List.init 15 (fun _ -> Mpk.Pkey.alloc_key ()) in
  Alcotest.(check (list int)) "keys 1..15" (List.init 15 (fun k -> k + 1)) keys;
  Alcotest.(check bool) "16th fails" true
    (try
       ignore (Mpk.Pkey.alloc_key ());
       false
     with Failure _ -> true);
  Mpk.Pkey.reset_allocator ()

let test_pkey_domain_switch_sequences () =
  Mpk.Pkey.reset_allocator ();
  let cpu = Cpu.create () in
  let key = Mpk.Pkey.alloc_key () in
  let region = Layout.heap_base in
  Mmu.map_range cpu.Cpu.mmu ~va:region ~len:4096 ~writable:true;
  Mmu.poke64 cpu.Cpu.mmu ~va:region 1234;
  Mpk.Pkey.assign cpu ~va:region ~len:4096 ~key;
  Mpk.Pkey.close_default cpu ~key ~protection:Mpk.Pkey.No_access;
  (* Closed: read faults. *)
  (match
     run_prog cpu
       [ i (Insn.Mov_ri (Reg.rbx, region)); i (Insn.Load (Reg.rax, Insn.mem ~base:Reg.rbx 0)) ]
   with
  | exception Fault.Fault (Fault.Pkey_violation _) -> ()
  | _ -> Alcotest.fail "closed region readable");
  (* Open around the access, close after: runs, and region is closed again. *)
  Mpk.Pkey.close_default cpu ~key ~protection:Mpk.Pkey.No_access;
  let status =
    run_prog cpu
      (List.map i Mpk.Pkey.open_seq
      @ [
          i (Insn.Mov_ri (Reg.rbx, region));
          i (Insn.Load (Reg.r8, Insn.mem ~base:Reg.rbx 0));
        ]
      @ List.map i (Mpk.Pkey.close_seq ~key ~protection:Mpk.Pkey.No_access))
  in
  Alcotest.(check bool) "halted" true (status = Cpu.Halted);
  Alcotest.(check int) "read secret" 1234 (Cpu.get_gpr cpu Reg.r8);
  Alcotest.(check int) "pkru closed again"
    (Mpk.Pkey.pkru_close ~key ~protection:Mpk.Pkey.No_access)
    (Cpu.pkru cpu)

let test_pkey_preserving_sequences_keep_registers () =
  Mpk.Pkey.reset_allocator ();
  let cpu = Cpu.create () in
  let key = Mpk.Pkey.alloc_key () in
  let status =
    run_prog cpu
      ([ i (Insn.Mov_ri (Reg.rax, 7)); i (Insn.Mov_ri (Reg.rcx, 8)); i (Insn.Mov_ri (Reg.rdx, 9)) ]
      @ List.map i Mpk.Pkey.open_seq_preserving
      @ List.map i (Mpk.Pkey.close_seq_preserving ~key ~protection:Mpk.Pkey.Read_only))
  in
  Alcotest.(check bool) "halted" true (status = Cpu.Halted);
  Alcotest.(check int) "rax preserved" 7 (Cpu.get_gpr cpu Reg.rax);
  Alcotest.(check int) "rcx preserved" 8 (Cpu.get_gpr cpu Reg.rcx);
  Alcotest.(check int) "rdx preserved" 9 (Cpu.get_gpr cpu Reg.rdx)

let test_pkru_values () =
  Alcotest.(check int) "AD" 0b100 (Mpk.Pkey.pkru_close ~key:1 ~protection:Mpk.Pkey.No_access);
  Alcotest.(check int) "WD" 0b1000 (Mpk.Pkey.pkru_close ~key:1 ~protection:Mpk.Pkey.Read_only);
  Alcotest.(check int) "open" 0 Mpk.Pkey.pkru_open

(* --- sgx --- *)

let test_enclave_isolation_and_calls () =
  Sgx_sim.Enclave.reset_epc ();
  let cpu = Cpu.create () in
  let secret = Bytes.of_string "topsecretkey!!!!" in
  let e = Sgx_sim.Enclave.create cpu ~size:4096 ~init:secret in
  Sgx_sim.Enclave.register_ecall e ~name:"get_byte" (fun mem idx -> Bytes.get_uint8 mem idx);
  Sgx_sim.Enclave.register_ecall e ~name:"set_byte" (fun mem idx ->
      Bytes.set_uint8 mem (idx land 0xfff) 0x5A;
      0);
  let before = Cpu.cycles cpu in
  let v = Sgx_sim.Enclave.ecall e cpu ~name:"get_byte" ~arg:0 in
  Alcotest.(check int) "reads enclave memory" (Char.code 't') v;
  Alcotest.(check bool) "transition cost paid" true
    (Cpu.cycles cpu -. before >= Sgx_sim.Enclave.transition_cost);
  ignore (Sgx_sim.Enclave.ecall e cpu ~name:"set_byte" ~arg:3);
  Alcotest.(check int) "mutation visible" 0x5A
    (Sgx_sim.Enclave.ecall e cpu ~name:"get_byte" ~arg:3)

let test_enclave_no_growth_after_first_call () =
  Sgx_sim.Enclave.reset_epc ();
  let cpu = Cpu.create () in
  let e = Sgx_sim.Enclave.create cpu ~size:4096 ~init:Bytes.empty in
  Sgx_sim.Enclave.register_ecall e ~name:"f" (fun _ _ -> 0);
  ignore (Sgx_sim.Enclave.ecall e cpu ~name:"f" ~arg:0);
  Alcotest.(check bool) "frozen" true
    (try
       Sgx_sim.Enclave.register_ecall e ~name:"g" (fun _ _ -> 0);
       false
     with Sgx_sim.Enclave.Enclave_violation _ -> true)

let test_enclave_epc_limit () =
  Sgx_sim.Enclave.reset_epc ();
  let cpu = Cpu.create () in
  let big = Sgx_sim.Enclave.epc_capacity - 4096 in
  let e1 = Sgx_sim.Enclave.create cpu ~size:big ~init:Bytes.empty in
  Alcotest.(check bool) "second too big" true
    (try
       ignore (Sgx_sim.Enclave.create cpu ~size:8192 ~init:Bytes.empty);
       false
     with Sgx_sim.Enclave.Enclave_violation _ -> true);
  Sgx_sim.Enclave.destroy e1;
  (* destroy releases pages *)
  ignore (Sgx_sim.Enclave.create cpu ~size:8192 ~init:Bytes.empty);
  Sgx_sim.Enclave.reset_epc ()

let test_enclave_measurement_stable () =
  Sgx_sim.Enclave.reset_epc ();
  let cpu = Cpu.create () in
  let img = Bytes.of_string "identical image" in
  let a = Sgx_sim.Enclave.create cpu ~size:4096 ~init:img in
  let b = Sgx_sim.Enclave.create cpu ~size:4096 ~init:img in
  let c = Sgx_sim.Enclave.create cpu ~size:4096 ~init:(Bytes.of_string "different image!") in
  Alcotest.(check string) "same image, same digest" (Sgx_sim.Enclave.measurement a)
    (Sgx_sim.Enclave.measurement b);
  Alcotest.(check bool) "different image, different digest" true
    (Sgx_sim.Enclave.measurement a <> Sgx_sim.Enclave.measurement c);
  Sgx_sim.Enclave.reset_epc ()

let suite =
  [
    Alcotest.test_case "vmx: secret blocked under default EPT" `Quick
      test_secret_unreachable_in_default_ept;
    Alcotest.test_case "vmx: secret readable after vmfunc" `Quick
      test_secret_reachable_after_vmfunc;
    Alcotest.test_case "vmx: normal pages visible in both EPTs" `Quick
      test_nonsecret_reachable_in_both_epts;
    Alcotest.test_case "vmx: guest syscall pays hypercall tax" `Quick
      test_guest_syscall_becomes_hypercall;
    Alcotest.test_case "vmx: hc_mark_secret hypercall" `Quick test_mark_secret_hypercall;
    Alcotest.test_case "vmx: vmfunc bad index #GP" `Quick test_vmfunc_bad_index_faults;
    Alcotest.test_case "vmx: prefault avoids demand-fill exits" `Quick
      test_prefault_removes_demand_fill_exits;
    Alcotest.test_case "vmx: double virtualization rejected" `Quick
      test_hypervisor_rejects_double_virtualization;
    Alcotest.test_case "vmx: clear_secret reopens" `Quick test_clear_secret_reopens;
    Alcotest.test_case "vmx: EPT map/unmap/iter" `Quick test_ept_map_unmap_iter;
    Alcotest.test_case "mpx: partition setup" `Quick test_mpx_partition_setup;
    Alcotest.test_case "mpx: check blocks sensitive pointer" `Quick
      test_mpx_check_blocks_sensitive_pointer;
    Alcotest.test_case "mpx: check passes normal pointer" `Quick
      test_mpx_check_allows_normal_pointer;
    Alcotest.test_case "mpx: bound table slots" `Quick test_mpx_table_slots;
    Alcotest.test_case "mpk: allocator exhaustion at 16 domains" `Quick
      test_pkey_alloc_exhaustion;
    Alcotest.test_case "mpk: domain open/close sequences" `Quick
      test_pkey_domain_switch_sequences;
    Alcotest.test_case "mpk: preserving sequences" `Quick
      test_pkey_preserving_sequences_keep_registers;
    Alcotest.test_case "mpk: pkru encodings" `Quick test_pkru_values;
    Alcotest.test_case "sgx: isolation and ecalls" `Quick test_enclave_isolation_and_calls;
    Alcotest.test_case "sgx: no growth after finalize" `Quick
      test_enclave_no_growth_after_first_call;
    Alcotest.test_case "sgx: EPC limit" `Quick test_enclave_epc_limit;
    Alcotest.test_case "sgx: measurement" `Quick test_enclave_measurement_stable;
  ]
