(* AES-128 correctness: FIPS-197 appendix vectors, instruction-level
   semantics, and round-trip properties. *)

open Aesni

let block = Alcotest.testable (fun fmt b -> Fmt.string fmt (Aes.hex_of_block b)) Bytes.equal

(* FIPS-197 appendix C.1 *)
let fips_key = "000102030405060708090a0b0c0d0e0f"
let fips_plain = "00112233445566778899aabbccddeeff"
let fips_cipher = "69c4e0d86a7b0430d8cdb78070b4c55a"

(* FIPS-197 appendix B *)
let appb_key = "2b7e151628aed2a6abf7158809cf4f3c"
let appb_plain = "3243f6a8885a308d313198a2e0370734"
let appb_cipher = "3925841d02dc09fbdc118597196a0b32"

let keys_of_hex h = Aes.expand_key (Aes.block_of_hex h)

let test_fips_encrypt () =
  let ct = Aes.encrypt_block ~key:(keys_of_hex fips_key) (Aes.block_of_hex fips_plain) in
  Alcotest.check block "C.1 ciphertext" (Aes.block_of_hex fips_cipher) ct

let test_fips_decrypt () =
  let pt = Aes.decrypt_block ~key:(keys_of_hex fips_key) (Aes.block_of_hex fips_cipher) in
  Alcotest.check block "C.1 plaintext" (Aes.block_of_hex fips_plain) pt

let test_appendix_b () =
  let ct = Aes.encrypt_block ~key:(keys_of_hex appb_key) (Aes.block_of_hex appb_plain) in
  Alcotest.check block "B ciphertext" (Aes.block_of_hex appb_cipher) ct

let test_key_schedule () =
  (* FIPS-197 appendix A.1: last round key of the 2b7e15... schedule. *)
  let keys = keys_of_hex appb_key in
  Alcotest.(check string)
    "round key 10" "d014f9a8c9ee2589e13f0cc8b6630ca6"
    (Aes.hex_of_block keys.(10));
  Alcotest.(check string)
    "round key 1" "a0fafe1788542cb123a339392a6c7605"
    (Aes.hex_of_block keys.(1))

let test_hex_roundtrip () =
  Alcotest.(check string) "hex" fips_plain (Aes.hex_of_block (Aes.block_of_hex fips_plain))

let test_xor_involution () =
  let a = Aes.block_of_hex fips_plain and b = Aes.block_of_hex fips_key in
  Alcotest.check block "xor twice" a (Aes.xor_block (Aes.xor_block a b) b)

let test_aesimc_matches_inv_schedule () =
  let keys = keys_of_hex fips_key in
  let inv = Aes.inv_round_keys keys in
  Alcotest.check block "ends untouched" keys.(0) inv.(0);
  Alcotest.check block "ends untouched" keys.(10) inv.(10);
  Alcotest.check block "middle transformed" (Aes.aesimc keys.(5)) inv.(5)

let test_bad_block_length () =
  Alcotest.check_raises "short block" (Invalid_argument "Aes.aesenc: block must be 16 bytes")
    (fun () -> ignore (Aes.aesenc (Bytes.create 8) (Bytes.create 16)))

let test_ecb_multiblock () =
  let key = keys_of_hex fips_key in
  let buf = Bytes.create 64 in
  Bytes.fill buf 0 64 'x';
  let ct = Aes.encrypt_bytes ~key buf in
  Alcotest.(check bool) "ciphertext differs" false (Bytes.equal ct buf);
  (* Identical plaintext blocks encrypt identically under ECB. *)
  Alcotest.check block "ECB determinism" (Bytes.sub ct 0 16) (Bytes.sub ct 16 16);
  Alcotest.(check bytes) "round trip" buf (Aes.decrypt_bytes ~key ct)

let test_ecb_rejects_partial () =
  Alcotest.check_raises "unaligned" (Invalid_argument "Aes: buffer length must be a multiple of 16")
    (fun () -> ignore (Aes.encrypt_bytes ~key:(keys_of_hex fips_key) (Bytes.create 15)))

(* Property: decrypt_block inverts encrypt_block for random keys and blocks. *)
let gen_block =
  QCheck.Gen.(map (fun s -> Bytes.of_string s) (string_size ~gen:char (return 16)))

let arb_block = QCheck.make ~print:(fun b -> Aes.hex_of_block b) gen_block

let prop_roundtrip =
  QCheck.Test.make ~name:"aes encrypt/decrypt round-trip" ~count:200
    (QCheck.pair arb_block arb_block)
    (fun (k, pt) ->
      let key = Aes.expand_key k in
      Bytes.equal pt (Aes.decrypt_block ~key (Aes.encrypt_block ~key pt)))

let prop_enc_injective_in_key =
  QCheck.Test.make ~name:"different keys give different ciphertexts" ~count:100
    (QCheck.triple arb_block arb_block arb_block)
    (fun (k1, k2, pt) ->
      QCheck.assume (not (Bytes.equal k1 k2));
      let c1 = Aes.encrypt_block ~key:(Aes.expand_key k1) pt in
      let c2 = Aes.encrypt_block ~key:(Aes.expand_key k2) pt in
      not (Bytes.equal c1 c2))

(* NIST SP 800-38A F.1.1: ECB-AES128 with the 2b7e15... key. *)
let nist_ecb_pairs =
  [
    ("6bc1bee22e409f96e93d7e117393172a", "3ad77bb40d7a3660a89ecaf32466ef97");
    ("ae2d8a571e03ac9c9eb76fac45af8e51", "f5d3d58503b9699de785895a96fdbaaf");
    ("30c81c46a35ce411e5fbc1191a0a52ef", "43b1cd7f598ece23881b00e3ed030688");
    ("f69f2445df4f9b17ad2b417be66c3710", "7b0c785e27e8ad3f8223207104725dd4");
  ]

let test_nist_sp800_38a () =
  let key = keys_of_hex appb_key in
  List.iter
    (fun (pt, ct) ->
      Alcotest.check block ("encrypt " ^ pt) (Aes.block_of_hex ct)
        (Aes.encrypt_block ~key (Aes.block_of_hex pt));
      Alcotest.check block ("decrypt " ^ ct) (Aes.block_of_hex pt)
        (Aes.decrypt_block ~key (Aes.block_of_hex ct)))
    nist_ecb_pairs

let suite =
  [
    Alcotest.test_case "fips C.1 encrypt" `Quick test_fips_encrypt;
    Alcotest.test_case "fips C.1 decrypt" `Quick test_fips_decrypt;
    Alcotest.test_case "fips B encrypt" `Quick test_appendix_b;
    Alcotest.test_case "fips A.1 key schedule" `Quick test_key_schedule;
    Alcotest.test_case "NIST SP 800-38A ECB vectors" `Quick test_nist_sp800_38a;
    Alcotest.test_case "hex round-trip" `Quick test_hex_roundtrip;
    Alcotest.test_case "xor involution" `Quick test_xor_involution;
    Alcotest.test_case "aesimc inverse schedule" `Quick test_aesimc_matches_inv_schedule;
    Alcotest.test_case "bad block length" `Quick test_bad_block_length;
    Alcotest.test_case "ECB multi-block" `Quick test_ecb_multiblock;
    Alcotest.test_case "ECB rejects partial block" `Quick test_ecb_rejects_partial;
    QCheck_alcotest.to_alcotest prop_roundtrip;
    QCheck_alcotest.to_alcotest prop_enc_injective_in_key;
  ]
