(* Calibration regression: the properties of the paper's figures that this
   reproduction promises ("who wins, by roughly what factor, where the
   crossovers fall") asserted as tests, so timing-model changes that break
   a shape fail CI rather than silently corrupting EXPERIMENTS.md.

   Uses a 6-benchmark subset and modest iteration counts; bands are wide
   on purpose — they guard shapes, not third decimals. *)

open Memsentry

let iterations = 15

let subset () =
  List.map Workloads.Spec2006.find
    [ "perlbench"; "mcf"; "povray"; "hmmer"; "lbm"; "xalancbmk" ]

let geomean_for cfg =
  Ms_util.Stats.geomean
    (List.map (fun p -> Workloads.Runner.overhead_of ~iterations p cfg) (subset ()))

let in_band what lo v hi =
  Alcotest.(check bool) (Printf.sprintf "%s: %.2f in [%.2f, %.2f]" what v lo hi) true
    (v >= lo && v <= hi)

(* Figure 3: MPX below SFI in every variant; writes cheaper than reads. *)
let test_fig3_shape () =
  let o kind tech = geomean_for (Framework.config ~address_kind:kind tech) in
  let mpx_w = o Instr.Writes Technique.Mpx
  and sfi_w = o Instr.Writes Technique.Sfi
  and mpx_r = o Instr.Reads Technique.Mpx
  and sfi_r = o Instr.Reads Technique.Sfi
  and mpx_rw = o Instr.Reads_and_writes Technique.Mpx
  and sfi_rw = o Instr.Reads_and_writes Technique.Sfi in
  in_band "MPX-w" 1.0 mpx_w 1.08;
  in_band "SFI-w" 1.0 sfi_w 1.12;
  in_band "MPX-r" 1.02 mpx_r 1.20;
  in_band "SFI-r" 1.05 sfi_r 1.35;
  Alcotest.(check bool) "MPX <= SFI (w)" true (mpx_w <= sfi_w +. 0.005);
  Alcotest.(check bool) "MPX < SFI (r)" true (mpx_r < sfi_r);
  Alcotest.(check bool) "MPX < SFI (rw)" true (mpx_rw < sfi_rw);
  Alcotest.(check bool) "writes cheaper than reads" true (mpx_w < mpx_r && sfi_w < sfi_r)

(* Figure 4 (call/ret): MPK < crypt < VMFUNC at the geomean; magnitudes in
   the paper's neighbourhood. *)
let test_fig4_shape () =
  let o tech = geomean_for (Framework.config ~switch_policy:Instr.At_call_ret tech) in
  let mpk = o (Technique.Mpk Mpk.Pkey.No_access)
  and vmfunc = o Technique.Vmfunc
  and crypt = o Technique.Crypt in
  in_band "MPK" 1.5 mpk 3.2;
  in_band "VMFUNC" 2.8 vmfunc 6.5;
  in_band "crypt" 1.7 crypt 4.2;
  Alcotest.(check bool) "MPK cheapest" true (mpk < crypt && mpk < vmfunc);
  Alcotest.(check bool) "VMFUNC dearest" true (vmfunc > crypt)

(* Figure 6 (syscalls): the crossover flips — crypt becomes the worst
   because of the register reservation, MPK is near-free. *)
let test_fig6_crossover () =
  let o tech = geomean_for (Framework.config ~switch_policy:Instr.At_syscalls tech) in
  let mpk = o (Technique.Mpk Mpk.Pkey.No_access)
  and vmfunc = o Technique.Vmfunc
  and crypt = o Technique.Crypt in
  in_band "MPK" 0.99 mpk 1.03;
  in_band "VMFUNC" 1.0 vmfunc 1.10;
  in_band "crypt" 1.05 crypt 1.45;
  Alcotest.(check bool) "crypt worst at syscall granularity" true
    (crypt > mpk && crypt > vmfunc)

(* The mprotect baseline must stay catastrophic (paper: 20-50x). *)
let test_mprotect_band () =
  let prof = Workloads.Spec2006.find "perlbench" in
  let o =
    Workloads.Runner.overhead_of ~iterations prof
      (Framework.config ~switch_policy:Instr.At_call_ret Technique.Mprotect)
  in
  in_band "mprotect on perlbench" 15.0 o 120.0

(* crypt cost grows superlinearly in switch-point terms with region size. *)
let test_crypt_scaling_monotone () =
  let prof = Workloads.Spec2006.find "hmmer" in
  let run size =
    let base = Workloads.Runner.run_baseline ~iterations prof in
    let lowered =
      Workloads.Synth.lowered ~iterations ~region_size:size
        ~xmm_pool:Ir.Lower.crypt_xmm_pool prof
    in
    let p =
      Framework.prepare (Framework.config ~switch_policy:Instr.At_call_ret Technique.Crypt)
        lowered
    in
    ignore (Framework.run p);
    X86sim.Cpu.cycles p.Framework.cpu /. base.Workloads.Runner.cycles
  in
  let o16 = run 16 and o256 = run 256 in
  Alcotest.(check bool)
    (Printf.sprintf "16B %.1f < 256B %.1f" o16 o256)
    true
    (o256 > 2.0 *. o16)

(* lbm (zero calls, fp-heavy) stays near 1.0 for MPK/VMFUNC under call/ret
   switching but pays crypt's register reservation — the per-benchmark
   texture behind the Figure 4 outliers. *)
let test_lbm_texture () =
  let prof = Workloads.Spec2006.find "lbm" in
  let o tech =
    Workloads.Runner.overhead_of ~iterations prof
      (Framework.config ~switch_policy:Instr.At_call_ret tech)
  in
  in_band "lbm MPK" 0.99 (o (Technique.Mpk Mpk.Pkey.No_access)) 1.1;
  in_band "lbm VMFUNC" 0.99 (o Technique.Vmfunc) 1.15;
  in_band "lbm crypt (register reservation)" 1.5 (o Technique.Crypt) 4.5

let suite =
  [
    Alcotest.test_case "fig3 shape" `Slow test_fig3_shape;
    Alcotest.test_case "fig4 shape" `Slow test_fig4_shape;
    Alcotest.test_case "fig6 crossover" `Slow test_fig6_crossover;
    Alcotest.test_case "mprotect band" `Slow test_mprotect_band;
    Alcotest.test_case "crypt scaling" `Slow test_crypt_scaling_monotone;
    Alcotest.test_case "lbm texture" `Slow test_lbm_texture;
  ]
