(* The textual assembler: parsing, error reporting, disassembly, and the
   parse/print round-trip — including a qcheck property over random
   instructions and an execution-equivalence check through the CPU. *)

open X86sim

let listing =
  {|
; a small program exercising most syntax forms
main:
  mov rax, 0x10
  mov rbx, rax
  mov rcx, [rbx+rdx*8+16]   ; load with full addressing
  mov [rbx-8], rcx
  mov [rbx], 42
  lea rsi, [rbx+24]
  lea rdi, [main]
  add rax, 5
  imul rax, rbx
  cmp rax, 0
  je out
  jmp main
out:
  call helper
  hlt
helper:
  push rbp
  pop rbp
  ret
|}

let test_parse_listing () =
  let prog = Asm.parse_program listing in
  Alcotest.(check bool) "labels resolved" true (Program.has_label prog "helper");
  Alcotest.(check int) "instruction count" 17 (Program.length prog)

let test_parse_errors_carry_line_numbers () =
  let check_fails src expected_line =
    match Asm.parse src with
    | exception Asm.Parse_error { line; _ } ->
      Alcotest.(check int) "line number" expected_line line
    | _ -> Alcotest.fail "expected a parse error"
  in
  check_fails "nop\nbogus rax, rbx\n" 2;
  check_fails "mov rax\n" 1;
  check_fails "mov rax, [rqq+8]\n" 1

let test_mem_operand_forms () =
  let parse_one s =
    match Asm.parse s with
    | [ Program.I i ] -> i
    | _ -> Alcotest.fail "expected one instruction"
  in
  (match parse_one "mov rax, [0x1000]" with
  | Insn.Load (_, m) ->
    Alcotest.(check int) "abs disp" 0x1000 m.Insn.disp;
    Alcotest.(check int) "no base" (-1) m.Insn.base
  | _ -> Alcotest.fail "expected load");
  (match parse_one "mov rax, [rbx+rcx*4-32]" with
  | Insn.Load (_, m) ->
    Alcotest.(check int) "base" Reg.rbx m.Insn.base;
    Alcotest.(check int) "index" Reg.rcx m.Insn.index;
    Alcotest.(check int) "scale" 4 m.Insn.scale;
    Alcotest.(check int) "disp" (-32) m.Insn.disp
  | _ -> Alcotest.fail "expected load");
  match parse_one "mov rax, [rbx+rcx]" with
  | Insn.Load (_, m) ->
    Alcotest.(check int) "index*1" Reg.rcx m.Insn.index;
    Alcotest.(check int) "scale 1" 1 m.Insn.scale
  | _ -> Alcotest.fail "expected load"

let test_special_instructions () =
  let src =
    "bndmk bnd0, 0x0, 0x3fffffffffff\n\
     bndcu r12, bnd0\n\
     bndmov [rbx], bnd1\n\
     bndmov bnd2, [rbx+16]\n\
     movdqa xmm3, [rbx]\n\
     movq xmm1, rax\n\
     aeskeygenassist xmm0, xmm1, 1\n\
     vextracti128 xmm1, ymm4, 1\n\
     vinserti128 ymm5, xmm2, 1\n\
     mulpd xmm6, xmm7\n\
     wrpkru\n\
     vmfunc\n"
  in
  Alcotest.(check int) "all parsed" 12 (List.length (Asm.parse src))

let test_round_trip_listing () =
  let p1 = Asm.parse_program listing in
  let text = Asm.print_program p1 in
  let p2 = Asm.parse_program text in
  Alcotest.(check int) "same length" (Program.length p1) (Program.length p2);
  Array.iteri
    (fun i insn ->
      Alcotest.(check string)
        (Printf.sprintf "insn %d" i)
        (Insn.to_string_named insn)
        (Insn.to_string_named (Program.code p2).(i)))
    (Program.code p1)

let test_parsed_program_executes () =
  let src =
    "main:\n\
    \  mov rax, 0\n\
    \  mov rcx, 10\n\
     loop:\n\
    \  add rax, rcx\n\
    \  sub rcx, 1\n\
    \  jne loop\n\
    \  hlt\n"
  in
  let cpu = Cpu.create () in
  Cpu.load_program cpu (Asm.parse_program src);
  ignore (Cpu.run cpu);
  Alcotest.(check int) "sum 10..1" 55 (Cpu.get_gpr cpu Reg.rax)

(* Random-instruction round trip: to_string_named must re-parse to an
   identical instruction. *)
let gen_insn =
  let open QCheck.Gen in
  let gpr = int_range 0 15 in
  let xmm = int_range 0 15 in
  let bnd = int_range 0 3 in
  let im = int_range (-5000) 100000 in
  let mem =
    map3
      (fun base index disp ->
        let index = if index = base then -1 else index in
        Insn.{ base; index; scale = 8; disp })
      gpr (int_range (-1) 15) (int_range (-256) 4096)
  in
  oneof
    [
      return Insn.Nop;
      return Insn.Ret;
      return Insn.Syscall;
      return Insn.Wrpkru;
      map2 (fun a b -> Insn.Mov_rr (a, b)) gpr gpr;
      map2 (fun a i -> Insn.Mov_ri (a, i)) gpr im;
      map2 (fun a m -> Insn.Load (a, m)) gpr mem;
      map2 (fun m a -> Insn.Store (m, a)) mem gpr;
      map2 (fun m i -> Insn.Store_i (m, i)) mem im;
      map2 (fun a m -> Insn.Lea (a, m)) gpr mem;
      map3 (fun op a b -> Insn.Alu_rr (op, a, b))
        (oneofl Insn.[ Add; Sub; And; Or; Xor; Imul ]) gpr gpr;
      map3 (fun op a i -> Insn.Alu_ri (op, a, i))
        (oneofl Insn.[ Add; Sub; Xor; Shl; Shr ]) gpr im;
      map2 (fun a b -> Insn.Cmp_rr (a, b)) gpr gpr;
      map (fun r -> Insn.Push r) gpr;
      map (fun r -> Insn.Pop r) gpr;
      map (fun r -> Insn.Jmp_r r) gpr;
      map (fun r -> Insn.Call_r r) gpr;
      map2 (fun b r -> Insn.Bndcu (b, r)) bnd gpr;
      map2 (fun b r -> Insn.Bndcl (b, r)) bnd gpr;
      map3 (fun b lo hi -> Insn.Bnd_set (b, lo, lo + abs hi)) bnd im im;
      map2 (fun x m -> Insn.Movdqa_load (x, m)) xmm mem;
      map2 (fun m x -> Insn.Movdqa_store (m, x)) mem xmm;
      map2 (fun a b -> Insn.Pxor (a, b)) xmm xmm;
      map2 (fun a b -> Insn.Aesenc (a, b)) xmm xmm;
      map2 (fun a b -> Insn.Aesimc (a, b)) xmm xmm;
      map2 (fun a b -> Insn.Fp_arith (a, b)) xmm xmm;
      map2 (fun a b -> Insn.Vext_high (a, b)) xmm xmm;
      map2 (fun a b -> Insn.Movq_xr (a, b)) xmm gpr;
    ]

let arb_insn = QCheck.make ~print:Insn.to_string_named gen_insn

let prop_round_trip =
  QCheck.Test.make ~name:"asm round-trips random instructions" ~count:500 arb_insn (fun insn ->
      match Asm.parse (Insn.to_string_named insn) with
      | [ Program.I parsed ] -> Insn.to_string_named parsed = Insn.to_string_named insn
      | _ -> false)

let suite =
  [
    Alcotest.test_case "parse a listing" `Quick test_parse_listing;
    Alcotest.test_case "errors carry line numbers" `Quick test_parse_errors_carry_line_numbers;
    Alcotest.test_case "memory operand forms" `Quick test_mem_operand_forms;
    Alcotest.test_case "special instructions" `Quick test_special_instructions;
    Alcotest.test_case "listing round-trip" `Quick test_round_trip_listing;
    Alcotest.test_case "parsed program executes" `Quick test_parsed_program_executes;
    QCheck_alcotest.to_alcotest prop_round_trip;
  ]
