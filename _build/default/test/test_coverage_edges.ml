(* Edge coverage for smaller API surfaces: technique metadata, utility
   functions, the global layout, and printers. *)

open Memsentry

(* --- technique metadata --- *)

let test_technique_metadata_consistency () =
  List.iter
    (fun t ->
      Alcotest.(check bool)
        (Technique.name t ^ " has a name")
        true
        (String.length (Technique.name t) > 0);
      Alcotest.(check bool)
        (Technique.name t ^ " has availability info")
        true
        (String.length (Technique.hardware_since t) > 0))
    (Technique.all @ [ Technique.Isboxing ]);
  (* The paper's class split. *)
  Alcotest.(check bool) "SFI address-based" true
    (Technique.isolation_class Technique.Sfi = Technique.Address_based);
  Alcotest.(check bool) "MPK domain-based" true
    (Technique.isolation_class (Technique.Mpk Mpk.Pkey.No_access) = Technique.Domain_based);
  (* Privilege requirements (§6.3): VMFUNC needs a hypervisor piece. *)
  Alcotest.(check bool) "VMFUNC privileged" true
    (Technique.requires_kernel_or_hypervisor Technique.Vmfunc);
  Alcotest.(check bool) "MPK pure user-space" false
    (Technique.requires_kernel_or_hypervisor (Technique.Mpk Mpk.Pkey.No_access));
  (* Granularities of Table 3. *)
  Alcotest.(check bool) "MPX byte-granular" true
    (Technique.granularity Technique.Mpx = Technique.Byte);
  Alcotest.(check bool) "MPK page-granular" true
    (Technique.granularity (Technique.Mpk Mpk.Pkey.No_access) = Technique.Page)

(* --- ms_util edges --- *)

let test_prng_chance_extremes () =
  let t = Ms_util.Prng.create ~seed:1 in
  Alcotest.(check bool) "p=0 never" false (Ms_util.Prng.chance t 0.0);
  Alcotest.(check bool) "p=1 always" true (Ms_util.Prng.chance t 1.0);
  Alcotest.(check bool) "float in range" true
    (let v = Ms_util.Prng.float t 3.0 in
     v >= 0.0 && v < 3.0);
  Alcotest.(check bool) "choose singleton" true (Ms_util.Prng.choose t [| 9 |] = 9);
  Alcotest.check_raises "choose empty" (Invalid_argument "Prng.choose: empty array") (fun () ->
      ignore (Ms_util.Prng.choose t [||]))

let test_prng_split_independence () =
  let a = Ms_util.Prng.create ~seed:5 in
  let b = Ms_util.Prng.split a in
  let xs = List.init 16 (fun _ -> Ms_util.Prng.next_int64 a) in
  let ys = List.init 16 (fun _ -> Ms_util.Prng.next_int64 b) in
  Alcotest.(check bool) "streams differ" true (xs <> ys)

let test_stats_edges () =
  Alcotest.check (Alcotest.float 1e-9) "stddev of constant" 0.0 (Ms_util.Stats.stddev [ 4.0; 4.0 ]);
  Alcotest.(check bool) "stddev positive" true (Ms_util.Stats.stddev [ 1.0; 5.0 ] > 0.0);
  Alcotest.check_raises "mean empty" (Invalid_argument "Stats.mean: empty") (fun () ->
      ignore (Ms_util.Stats.mean []));
  Alcotest.check_raises "overhead bad baseline"
    (Invalid_argument "Stats.overhead: baseline must be positive") (fun () ->
      ignore (Ms_util.Stats.overhead ~baseline:0.0 ~measured:1.0))

let test_bitops_edges () =
  Alcotest.check_raises "bits bad range" (Invalid_argument "Bitops.bits: bad range") (fun () ->
      ignore (Ms_util.Bitops.bits ~lo:5 ~hi:2 0L));
  Alcotest.(check int64) "of_addr round trip" 0x7FFFL (Ms_util.Bitops.of_addr 0x7FFF)

(* --- glayout --- *)

let test_glayout_find_by_addr () =
  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"a" ~size:64 ();
  Ir.Builder.add_global b ~name:"s" ~size:64 ~sensitive:true ();
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  Ir.Builder.emit_ret b None;
  let m = Ir.Builder.finish b in
  let layout = Ir.Glayout.assign m in
  let ea = Ir.Glayout.find layout "a" in
  (match Ir.Glayout.find_by_addr layout (ea.Ir.Glayout.va + 8) with
  | Some e -> Alcotest.(check string) "hit inside a" "a" e.Ir.Glayout.name
  | None -> Alcotest.fail "lookup failed");
  Alcotest.(check bool) "miss outside" true
    (Ir.Glayout.find_by_addr layout 0x7 = None);
  let es = Ir.Glayout.find layout "s" in
  Alcotest.(check bool) "sensitive placed above split" true
    (es.Ir.Glayout.va >= X86sim.Layout.sensitive_base)

(* --- printers --- *)

let test_program_pp () =
  let prog =
    X86sim.Asm.parse_program "main:\n  mov rax, 1\n  jmp out\nout:\n  hlt\n"
  in
  let s = Format.asprintf "%a" X86sim.Program.pp prog in
  Alcotest.(check bool) "labels shown" true
    (let has sub =
       let n = String.length sub and ls = String.length s in
       let rec go i = i + n <= ls && (String.sub s i n = sub || go (i + 1)) in
       go 0
     in
     has "main:" && has "out:" && has "jmp")

let test_fault_to_string () =
  let open X86sim in
  let cases =
    [
      Fault.Page_fault { va = 0x1000; access = Fault.Write; reason = "x" };
      Fault.Pkey_violation { va = 0x1000; key = 3; access = Fault.Read };
      Fault.Ept_violation { gpa = 0x2000; ept_index = 1; access = Fault.Read };
      Fault.Bound_violation { value = 9; lower = 0; upper = 5; reg = 0 };
      Fault.Gp_fault "nope";
      Fault.Undefined "nix";
    ]
  in
  List.iter
    (fun f -> Alcotest.(check bool) "renders" true (String.length (Fault.to_string f) > 5))
    cases

let test_reg_names () =
  Alcotest.(check string) "rax" "rax" (X86sim.Reg.gpr_name X86sim.Reg.rax);
  Alcotest.(check string) "r15" "r15" (X86sim.Reg.gpr_name X86sim.Reg.r15);
  Alcotest.check_raises "out of range" (Invalid_argument "Reg.gpr_name: out of range")
    (fun () -> ignore (X86sim.Reg.gpr_name 16));
  Alcotest.(check int) "pipe ids dense" X86sim.Reg.pipe_count
    (X86sim.Reg.pipe_pkru + 1)

let test_pass_without_verification () =
  (* verify_between:false lets a pass pipeline stage intentionally odd IR. *)
  let b = Ir.Builder.create () in
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  Ir.Builder.emit_ret b None;
  let m = Ir.Builder.finish b in
  let breaking =
    Ir.Pass.make ~name:"break" (fun m ->
        match m.Ir.Ir_types.funcs with f :: _ -> f.Ir.Ir_types.blocks <- [] | [] -> ())
  in
  let ran = Ir.Pass.run ~verify_between:false [ breaking ] m in
  Alcotest.(check (list string)) "ran unchecked" [ "break" ] ran

let suite =
  [
    Alcotest.test_case "technique metadata" `Quick test_technique_metadata_consistency;
    Alcotest.test_case "prng chance extremes" `Quick test_prng_chance_extremes;
    Alcotest.test_case "prng split" `Quick test_prng_split_independence;
    Alcotest.test_case "stats edges" `Quick test_stats_edges;
    Alcotest.test_case "bitops edges" `Quick test_bitops_edges;
    Alcotest.test_case "glayout lookup" `Quick test_glayout_find_by_addr;
    Alcotest.test_case "program pretty printer" `Quick test_program_pp;
    Alcotest.test_case "fault rendering" `Quick test_fault_to_string;
    Alcotest.test_case "register names" `Quick test_reg_names;
    Alcotest.test_case "pass without verification" `Quick test_pass_without_verification;
  ]
