(* The IR optimizer: each pass does its job, composed optimization
   preserves semantics (differentially, against the interpreter and the
   lowered machine), memory accesses and annotations survive, and
   optimized workloads still instrument correctly. *)

open Ir.Ir_types
open Ms_util

let count_instrs m = Ir.Ir_types.instr_count m

(* acc = (3 + 4) * 2 stored to g; plus a dead chain. *)
let build_foldable () =
  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"g" ~size:16 ();
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  let x = Ir.Builder.emit_binop b Add (Const 3) (Const 4) in
  let y = Ir.Builder.emit_binop b Mul (Var x) (Const 2) in
  let dead1 = Ir.Builder.emit_binop b Xor (Const 9) (Const 5) in
  let _dead2 = Ir.Builder.emit_binop b Add (Var dead1) (Const 1) in
  let g = Ir.Builder.emit_addr_of_global b "g" in
  Ir.Builder.emit_store b ~base:(Var g) ~offset:0 ~src:(Var y);
  Ir.Builder.emit_ret b (Some (Var y));
  Ir.Builder.finish b

let test_constant_fold () =
  let m = build_foldable () in
  let n = Ir.Opt.constant_fold m in
  Alcotest.(check bool) "folded some" true (n >= 2);
  let r = Ir.Interp.run m in
  Alcotest.(check (option int)) "still computes 14" (Some 14) r.Ir.Interp.return_value

let test_dce_removes_dead_chain () =
  let m = build_foldable () in
  let before = count_instrs m in
  let stats = Ir.Opt.optimize m in
  Alcotest.(check bool) "eliminated the dead chain" true (stats.Ir.Opt.eliminated >= 2);
  Alcotest.(check bool) "module shrank" true (count_instrs m < before);
  let r = Ir.Interp.run m in
  Alcotest.(check (option int)) "semantics preserved" (Some 14) r.Ir.Interp.return_value

let test_stores_never_removed () =
  let m = build_foldable () in
  ignore (Ir.Opt.optimize m);
  let stores = ref 0 in
  Ir.Ir_types.iter_instrs m (fun _ _ ins ->
      match ins.kind with Store _ -> incr stores | _ -> ());
  Alcotest.(check int) "store survived" 1 !stores;
  let r = Ir.Interp.run m in
  Alcotest.(check int) "memory state intact" 14 (Ir.Interp.read_word r "g" 0)

let test_copy_propagation () =
  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"g" ~size:16 ();
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  let x = Ir.Builder.emit_assign b (Const 21) in
  let y = Ir.Builder.emit_assign b (Var x) in
  let z = Ir.Builder.emit_binop b Add (Var y) (Var y) in
  Ir.Builder.emit_ret b (Some (Var z));
  let m = Ir.Builder.finish b in
  let p = Ir.Opt.copy_propagate m in
  Alcotest.(check bool) "propagated" true (p >= 2);
  let stats = Ir.Opt.optimize m in
  Alcotest.(check bool) "copies then die" true (stats.Ir.Opt.eliminated >= 1);
  let r = Ir.Interp.run m in
  Alcotest.(check (option int)) "42" (Some 42) r.Ir.Interp.return_value

let test_annotations_survive () =
  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"s" ~size:16 ~sensitive:true ();
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  let s = Ir.Builder.emit_addr_of_global b "s" in
  Ir.Builder.emit_store b ~base:(Var s) ~offset:0 ~src:(Const 7);
  let marked = Ir.Builder.last_id b in
  Ir.Builder.emit_ret b None;
  let m = Ir.Builder.finish b in
  Ir.Ir_types.mark_safe_access m marked;
  ignore (Ir.Opt.optimize m);
  let still = ref false in
  Ir.Ir_types.iter_instrs m (fun _ _ ins ->
      if ins.id = marked && ins.safe_access then still := true);
  Alcotest.(check bool) "safe flag survived optimization" true !still

(* Differential: optimization must not change observable behaviour, on the
   interpreter and through the full lowering + machine pipeline. *)
let recipe_gen =
  QCheck.Gen.(map (fun seed -> seed) (int_range 1 1_000_000))

let build_random seed =
  let rng = Prng.create ~seed in
  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"g" ~size:128 ();
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  let acc = Ir.Builder.emit_assign b (Const (seed land 0xFFF)) in
  let g = Ir.Builder.emit_addr_of_global b "g" in
  for _ = 1 to 5 + Prng.int rng 15 do
    match Prng.int rng 5 with
    | 0 ->
      (* foldable constant chain *)
      let c = Ir.Builder.emit_binop b Add (Const (Prng.int rng 100)) (Const (Prng.int rng 100)) in
      Ir.Builder.emit_binop_into b acc Add (Var acc) (Var c)
    | 1 ->
      (* copy then use *)
      let c = Ir.Builder.emit_assign b (Var acc) in
      Ir.Builder.emit_binop_into b acc Xor (Var acc) (Var c)
    | 2 ->
      (* dead work *)
      ignore (Ir.Builder.emit_binop b Mul (Const 3) (Const (Prng.int rng 50)))
    | 3 -> Ir.Builder.emit_store b ~base:(Var g) ~offset:(8 * Prng.int rng 8) ~src:(Var acc)
    | _ ->
      Ir.Builder.emit_load_into b acc ~base:(Var g) ~offset:(8 * Prng.int rng 8);
      Ir.Builder.emit_binop_into b acc Add (Var acc) (Const 1)
  done;
  Ir.Builder.emit_ret b (Some (Var acc));
  Ir.Builder.finish b

let observe_interp m =
  let r = Ir.Interp.run m in
  (r.Ir.Interp.return_value, List.init 8 (fun k -> Ir.Interp.read_word r "g" (8 * k)))

let prop_optimize_preserves_interp =
  QCheck.Test.make ~name:"optimization preserves interpreter behaviour" ~count:150
    (QCheck.make ~print:string_of_int recipe_gen) (fun seed ->
      let plain = observe_interp (build_random seed) in
      let m = build_random seed in
      ignore (Ir.Opt.optimize m);
      observe_interp m = plain)

let prop_optimize_preserves_machine =
  QCheck.Test.make ~name:"optimized module runs identically on the machine" ~count:40
    (QCheck.make ~print:string_of_int recipe_gen) (fun seed ->
      let run m =
        let lowered = Ir.Lower.lower m in
        let p = Memsentry.Framework.prepare_baseline lowered in
        ignore (Memsentry.Framework.run p);
        X86sim.Cpu.get_gpr p.Memsentry.Framework.cpu X86sim.Reg.rax land 0xFFFFFFFF
      in
      let plain = run (build_random seed) in
      let m = build_random seed in
      ignore (Ir.Opt.optimize m);
      run m = plain)

let test_optimizer_shrinks_workloads () =
  let m = Workloads.Synth.generate ~iterations:3 (Workloads.Spec2006.find "perlbench") in
  let before = count_instrs m in
  let stats = Ir.Opt.optimize m in
  Alcotest.(check bool)
    (Printf.sprintf "some effect on %d instrs (folded %d, eliminated %d)" before
       stats.Ir.Opt.folded stats.Ir.Opt.eliminated)
    true
    (stats.Ir.Opt.folded + stats.Ir.Opt.propagated + stats.Ir.Opt.eliminated >= 0);
  (* And the optimized workload still instruments and runs under MPX. *)
  let lowered = Ir.Lower.lower m in
  let p = Memsentry.Framework.prepare (Memsentry.Framework.config Memsentry.Technique.Mpx) lowered in
  Alcotest.(check bool) "instrumented optimized workload runs" true
    (Memsentry.Framework.run p = X86sim.Cpu.Halted)

let suite =
  [
    Alcotest.test_case "constant folding" `Quick test_constant_fold;
    Alcotest.test_case "dead code elimination" `Quick test_dce_removes_dead_chain;
    Alcotest.test_case "stores never removed" `Quick test_stores_never_removed;
    Alcotest.test_case "copy propagation" `Quick test_copy_propagation;
    Alcotest.test_case "annotations survive" `Quick test_annotations_survive;
    QCheck_alcotest.to_alcotest prop_optimize_preserves_interp;
    QCheck_alcotest.to_alcotest prop_optimize_preserves_machine;
    Alcotest.test_case "optimizer + instrumentation" `Quick test_optimizer_shrinks_workloads;
  ]
