test/test_multi_domain.ml: Alcotest Attacks Cpu Layout List Memsentry Mmu Multi_domain Printf X86sim
