test/test_memory_system.ml: Alcotest Asm Bytes Cache Cpu Gen Insn Layout List Mmu Pagetable Perf_report Physmem Pipeline QCheck QCheck_alcotest String Tlb Tracer X86sim
