test/test_util.ml: Alcotest Array Bitops Gen List Ms_util Prng QCheck QCheck_alcotest Stats String Table_fmt
