test/test_aesni.ml: Aes Aesni Alcotest Array Bytes Fmt List QCheck QCheck_alcotest
