test/test_calibration.ml: Alcotest Framework Instr Ir List Memsentry Mpk Ms_util Printf Technique Workloads X86sim
