test/test_verifier_sandbox.ml: Alcotest Asm Defenses Insn Instr Instr_mpx Instr_sfi Ir Layout List Memsentry Printf Program Sandbox_verifier String Workloads X86sim
