test/test_defenses.ml: Alcotest Attacks Bytes Cpu Defenses Framework Insn Instr Int64 Ir Layout List Memsentry Mmu Mpk Option Physmem Program Reg Safe_region Technique X86sim
