test/test_coverage_edges.ml: Alcotest Fault Format Ir List Memsentry Mpk Ms_util String Technique X86sim
