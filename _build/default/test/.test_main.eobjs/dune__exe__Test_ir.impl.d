test/test_ir.ml: Alcotest Builder Hashtbl Interp Ir Ir_types List Lower Option Pass Pointsto Pointsto_dynamic Printer Printf String Verifier X86sim
