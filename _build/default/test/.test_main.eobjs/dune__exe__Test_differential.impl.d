test/test_differential.ml: Alcotest Framework Ir List Memsentry Mpk Ms_util Option Printf QCheck QCheck_alcotest Technique X86sim
