test/test_opt.ml: Alcotest Ir List Memsentry Ms_util Printf Prng QCheck QCheck_alcotest Workloads X86sim
