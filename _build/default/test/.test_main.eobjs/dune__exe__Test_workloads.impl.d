test/test_workloads.ml: Alcotest Ir List Memsentry Mpk Printf Profile QCheck QCheck_alcotest Runner Servers Spec2006 Synth Workloads X86sim
