test/test_attacks.ml: Alcotest Attacks Cpu Defenses Layout List Memsentry Mmu Mpk Physmem Printf QCheck QCheck_alcotest String X86sim
