test/test_asm.ml: Alcotest Array Asm Cpu Insn List Printf Program QCheck QCheck_alcotest Reg X86sim
