test/test_x86sim.ml: Aesni Alcotest Array Cpu Fault Insn Layout List Mmu Pipeline Printf Program Reg Tlb X86sim
