test/test_isolation_hw.ml: Alcotest Array Bytes Char Cpu Ept Fault Insn Layout List Mmu Mpk Mpx Program Reg Sgx_sim Vmx X86sim
