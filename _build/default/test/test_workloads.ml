(* The synthetic SPEC-like workload generator and measurement harness. *)

open Workloads

let perl () = Spec2006.find "perlbench"

let test_all_profiles_validate () =
  Alcotest.(check int) "19 benchmarks" 19 (List.length Spec2006.all);
  List.iter Profile.validate Spec2006.all

let test_find_by_short_and_long_name () =
  Alcotest.(check string) "short" "429.mcf" (Spec2006.find "mcf").Profile.name;
  Alcotest.(check string) "long" "429.mcf" (Spec2006.find "429.mcf").Profile.name;
  Alcotest.(check bool) "missing" true
    (try
       ignore (Spec2006.find "nonesuch");
       false
     with Not_found -> true)

let test_generation_deterministic () =
  let p1 = Ir.Printer.modul_to_string (Synth.generate ~iterations:5 (perl ())) in
  let p2 = Ir.Printer.modul_to_string (Synth.generate ~iterations:5 (perl ())) in
  Alcotest.(check bool) "identical modules" true (p1 = p2)

let test_generated_module_verifies () =
  List.iter
    (fun prof ->
      let m = Synth.generate ~iterations:3 prof in
      Alcotest.(check (list string)) (prof.Profile.name ^ " verifies") []
        (List.map Ir.Verifier.error_to_string (Ir.Verifier.verify m)))
    Spec2006.all

let test_workload_terminates_and_counts () =
  let r = Runner.run_baseline ~iterations:20 (perl ()) in
  Alcotest.(check bool) "executed work" true (r.Runner.insns > 10_000);
  Alcotest.(check bool) (Printf.sprintf "plausible ipc %.2f" r.Runner.ipc) true
    (r.Runner.ipc > 0.2 && r.Runner.ipc < 4.0)

let test_iterations_scale_work () =
  let a = Runner.run_baseline ~iterations:10 (perl ()) in
  let b = Runner.run_baseline ~iterations:20 (perl ()) in
  let ratio = float_of_int b.Runner.insns /. float_of_int a.Runner.insns in
  Alcotest.(check bool) (Printf.sprintf "ratio %.2f" ratio) true (ratio > 1.6 && ratio < 2.4)

let test_profile_rates_reflected () =
  (* Call-heavy profile executes many calls; streaming profile almost none. *)
  let counts prof =
    let lowered = Synth.lowered ~iterations:10 prof in
    let p = Memsentry.Framework.prepare_baseline lowered in
    ignore (Memsentry.Framework.run p);
    let c = p.Memsentry.Framework.cpu.X86sim.Cpu.counters in
    (c.X86sim.Cpu.calls, c.X86sim.Cpu.insns)
  in
  let xc, xi = counts (Spec2006.find "xalancbmk") in
  let lc, li = counts (Spec2006.find "lbm") in
  let xrate = float_of_int xc /. float_of_int xi
  and lrate = float_of_int lc /. float_of_int li in
  Alcotest.(check bool)
    (Printf.sprintf "xalan %.4f >> lbm %.4f" xrate lrate)
    true
    (xrate > 10.0 *. lrate)

let test_sensitive_region_untouched_by_program () =
  (* The program must never touch its safe region: running under MPK with
     the region closed must not fault. *)
  let lowered = Synth.lowered ~iterations:10 (perl ()) in
  let cfg =
    Memsentry.Framework.config ~switch_policy:Memsentry.Instr.At_call_ret
      (Memsentry.Technique.Mpk Mpk.Pkey.No_access)
  in
  let p = Memsentry.Framework.prepare cfg lowered in
  Alcotest.(check bool) "no faults" true (Memsentry.Framework.run p = X86sim.Cpu.Halted)

let test_overheads_sane_and_ordered () =
  let prof = perl () in
  let mpx = Runner.overhead_of ~iterations:20 prof (Memsentry.Framework.config Memsentry.Technique.Mpx) in
  let sfi = Runner.overhead_of ~iterations:20 prof (Memsentry.Framework.config Memsentry.Technique.Sfi) in
  Alcotest.(check bool) (Printf.sprintf "mpx %.3f >= 1" mpx) true (mpx >= 1.0);
  Alcotest.(check bool) (Printf.sprintf "mpx %.3f < sfi %.3f" mpx sfi) true (mpx < sfi);
  Alcotest.(check bool) "sfi below 2x" true (sfi < 2.0)

let test_sweep_and_geomean () =
  let configs =
    [
      ("mpx", Memsentry.Framework.config Memsentry.Technique.Mpx);
      ("sfi", Memsentry.Framework.config Memsentry.Technique.Sfi);
    ]
  in
  let rows = Runner.sweep ~iterations:8 [ perl (); Spec2006.find "mcf" ] configs in
  Alcotest.(check int) "two rows" 2 (List.length rows);
  let geo = Runner.geomean_overheads rows in
  Alcotest.(check (list string)) "columns" [ "mpx"; "sfi" ] (List.map fst geo);
  List.iter (fun (_, v) -> Alcotest.(check bool) "geomean >= 1" true (v >= 0.95)) geo

let test_region_size_knob () =
  let small = Synth.lowered ~iterations:2 ~region_size:16 (perl ()) in
  let big = Synth.lowered ~iterations:2 ~region_size:1024 (perl ()) in
  let size l =
    match Memsentry.Safe_region.of_sensitive_globals l with
    | [ r ] -> r.Memsentry.Safe_region.size
    | _ -> Alcotest.fail "expected one region"
  in
  Alcotest.(check int) "16" 16 (size small);
  Alcotest.(check int) "1024" 1024 (size big);
  Alcotest.check_raises "bad size"
    (Invalid_argument "Synth.generate: region_size must be a positive multiple of 16")
    (fun () -> ignore (Synth.generate ~region_size:20 (perl ())))

let prop_any_profile_runs =
  QCheck.Test.make ~name:"random profile variations generate and run" ~count:12
    QCheck.(
      quad (int_range 50 400) (int_range 10 200) (int_range 0 30) (int_range 0 300))
    (fun (loads, stores, call_ret, fp_ops) ->
      let prof =
        {
          Profile.name = "prop";
          loads;
          stores;
          call_ret;
          indirect = min call_ret 5;
          syscalls = 0.05;
          io_bound = false;
          fp_ops;
          working_set_bits = 18;
          dep_chain = Profile.Med_ilp;
          seed = (loads * 1000) + stores;
        }
      in
      let r = Runner.run_baseline ~iterations:3 prof in
      r.Runner.insns > 0 && r.Runner.cycles > 0.0)

let test_server_profiles () =
  Alcotest.(check int) "four servers" 4 (List.length Servers.all);
  List.iter Profile.validate Servers.all;
  List.iter
    (fun prof -> Alcotest.(check bool) (prof.Profile.name ^ " io-bound") true prof.Profile.io_bound)
    Servers.all;
  Alcotest.(check string) "find" "redis-like" (Servers.find "redis-like").Profile.name

let test_server_overheads_diluted () =
  (* The §6 claim, as a test: an I/O-bound server sees materially lower
     instrumentation overhead than a CPU-bound SPEC benchmark with a
     similar mix. *)
  let cfg = Memsentry.Framework.config Memsentry.Technique.Sfi in
  let server = Runner.overhead_of ~iterations:15 (Servers.find "nginx-like") cfg in
  let spec = Runner.overhead_of ~iterations:15 (Spec2006.find "perlbench") cfg in
  Alcotest.(check bool)
    (Printf.sprintf "server %.3f < spec %.3f" server spec)
    true
    (server -. 1.0 < (spec -. 1.0) /. 1.5)

let test_io_syscall_costs_more () =
  let base p = (Runner.run_baseline ~iterations:15 p).Runner.cycles in
  let io = Servers.find "nginx-like" in
  let cheap = { io with Profile.io_bound = false; name = "nginx-cheap-sys" } in
  Alcotest.(check bool) "I/O syscalls dominate" true (base io > 1.3 *. base cheap)

let test_every_profile_matches_its_rates () =
  (* The generator's contract: executed event densities track the profile,
     across the whole suite. Machine-level instruction counts run ~1.5-2x
     the IR-level rates (addressing/lowering overhead), so densities are
     compared per executed instruction against the profile scaled by the
     measured expansion, with generous bands. *)
  List.iter
    (fun prof ->
      let lowered = Synth.lowered ~iterations:8 prof in
      let p = Memsentry.Framework.prepare_baseline lowered in
      ignore (Memsentry.Framework.run p);
      let c = p.Memsentry.Framework.cpu.X86sim.Cpu.counters in
      let per_k n = 1000.0 *. float_of_int n /. float_of_int c.X86sim.Cpu.insns in
      let name = prof.Profile.name in
      let check what measured rate ~lo ~hi =
        if rate > 0 then begin
          let expected = float_of_int rate in
          Alcotest.(check bool)
            (Printf.sprintf "%s %s: %.1f/1k vs profile %d/1k" name what measured rate)
            true
            (measured >= lo *. expected && measured <= hi *. expected)
        end
      in
      (* Calls and indirect branches are emitted 1:1 per profile unit. *)
      check "calls" (per_k c.X86sim.Cpu.calls) prof.Profile.call_ret ~lo:0.3 ~hi:1.8;
      check "indirect" (per_k c.X86sim.Cpu.ind_branches) prof.Profile.indirect ~lo:0.3 ~hi:2.0;
      (* Loads include spill/call traffic, so only a lower bound is firm. *)
      check "loads" (per_k c.X86sim.Cpu.loads) prof.Profile.loads ~lo:0.25 ~hi:2.0;
      check "stores" (per_k c.X86sim.Cpu.stores) prof.Profile.stores ~lo:0.25 ~hi:3.0;
      Alcotest.(check int) "no faults" 0 c.X86sim.Cpu.faults)
    (Spec2006.all @ Servers.all)

let suite =
  [
    Alcotest.test_case "profiles validate" `Quick test_all_profiles_validate;
    Alcotest.test_case "all profiles match their rates" `Slow
      test_every_profile_matches_its_rates;
    Alcotest.test_case "server profiles" `Quick test_server_profiles;
    Alcotest.test_case "server overheads diluted" `Quick test_server_overheads_diluted;
    Alcotest.test_case "io syscalls cost" `Quick test_io_syscall_costs_more;
    Alcotest.test_case "find by name" `Quick test_find_by_short_and_long_name;
    Alcotest.test_case "deterministic generation" `Quick test_generation_deterministic;
    Alcotest.test_case "generated modules verify" `Quick test_generated_module_verifies;
    Alcotest.test_case "workload terminates" `Quick test_workload_terminates_and_counts;
    Alcotest.test_case "iterations scale" `Quick test_iterations_scale_work;
    Alcotest.test_case "profile rates reflected" `Quick test_profile_rates_reflected;
    Alcotest.test_case "safe region untouched" `Quick test_sensitive_region_untouched_by_program;
    Alcotest.test_case "overheads ordered" `Quick test_overheads_sane_and_ordered;
    Alcotest.test_case "sweep and geomean" `Quick test_sweep_and_geomean;
    Alcotest.test_case "region size knob" `Quick test_region_size_knob;
    QCheck_alcotest.to_alcotest prop_any_profile_runs;
  ]
