(* The MemSentry framework: every technique must (a) preserve program
   semantics for annotated (authorized) safe-region accesses, and
   (b) deterministically stop unauthorized accesses — faulting, or for the
   non-faulting techniques (SFI, crypt), denying the secret's value. *)

open Memsentry
open X86sim

let secret_value = 0xFEED_BEEF

(* main:
     [safe]   secret[0] <- secret_value
     loop 20x [plain]   pub[0] += 3
     [safe]   return secret[0] + pub[0]  *)
let build_protected_module () =
  let open Ir.Ir_types in
  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"pub" ~size:64 ();
  Ir.Builder.add_global b ~name:"secret" ~size:64 ~sensitive:true ();
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  let s = Ir.Builder.emit_addr_of_global b "secret" in
  Ir.Builder.emit_store b ~base:(Var s) ~offset:0 ~src:(Const secret_value);
  let safe_store = Ir.Builder.last_id b in
  let p = Ir.Builder.emit_addr_of_global b "pub" in
  Ir.Builder.emit_store b ~base:(Var p) ~offset:0 ~src:(Const 0);
  Ir.Builder.emit_br b "loop";
  Ir.Builder.start_block b "loop";
  let p2 = Ir.Builder.emit_addr_of_global b "pub" in
  let v = Ir.Builder.emit_load b ~base:(Var p2) ~offset:0 in
  let v' = Ir.Builder.emit_binop b Add (Var v) (Const 3) in
  Ir.Builder.emit_store b ~base:(Var p2) ~offset:0 ~src:(Var v');
  Ir.Builder.emit_cbr b Lt (Var v') (Const 60) ~if_true:"loop" ~if_false:"done";
  Ir.Builder.start_block b "done";
  let s2 = Ir.Builder.emit_addr_of_global b "secret" in
  let sv = Ir.Builder.emit_load b ~base:(Var s2) ~offset:0 in
  let safe_load = Ir.Builder.last_id b in
  let p3 = Ir.Builder.emit_addr_of_global b "pub" in
  let pv = Ir.Builder.emit_load b ~base:(Var p3) ~offset:0 in
  let sum = Ir.Builder.emit_binop b Add (Var sv) (Var pv) in
  Ir.Builder.emit_ret b (Some (Var sum));
  let m = Ir.Builder.finish b in
  Ir.Ir_types.mark_safe_access m safe_store;
  Ir.Ir_types.mark_safe_access m safe_load;
  m

let expected_result = secret_value + 60

(* A module whose main reads the secret through an UNANNOTATED access. *)
let build_attacking_module () =
  let open Ir.Ir_types in
  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"secret" ~size:64 ~sensitive:true ();
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  let s = Ir.Builder.emit_addr_of_global b "secret" in
  let v = Ir.Builder.emit_load b ~base:(Var s) ~offset:0 in
  Ir.Builder.emit_ret b (Some (Var v));
  Ir.Builder.finish b

let techniques_that_fault =
  [
    ("MPX", Framework.config Technique.Mpx);
    ("MPK", Framework.config (Technique.Mpk Mpk.Pkey.No_access));
    ("VMFUNC", Framework.config Technique.Vmfunc);
    ("mprotect", Framework.config Technique.Mprotect);
  ]

let all_techniques =
  techniques_that_fault
  @ [
      ("SFI", Framework.config Technique.Sfi);
      ("crypt", Framework.config Technique.Crypt);
      ("ISBoxing", Framework.config Technique.Isboxing);
    ]

let test_baseline_semantics () =
  let lowered = Ir.Lower.lower (build_protected_module ()) in
  let p = Framework.prepare_baseline lowered in
  Alcotest.(check bool) "halted" true (Framework.run p = Cpu.Halted);
  Alcotest.(check int) "result" expected_result (Cpu.get_gpr p.Framework.cpu Reg.rax)

let test_semantics_preserved_under_all_techniques () =
  List.iter
    (fun (name, cfg) ->
      let lowered = Ir.Lower.lower (build_protected_module ()) in
      let p = Framework.prepare cfg lowered in
      Alcotest.(check bool) (name ^ " halted") true (Framework.run p = Cpu.Halted);
      Alcotest.(check int) (name ^ " result") expected_result
        (Cpu.get_gpr p.Framework.cpu Reg.rax))
    all_techniques

let test_unauthorized_access_faults () =
  List.iter
    (fun (name, cfg) ->
      let lowered = Ir.Lower.lower (build_attacking_module ()) in
      let p = Framework.prepare cfg lowered in
      match Framework.run p with
      | exception Fault.Fault _ -> ()
      | _ -> Alcotest.fail (name ^ ": unauthorized read did not fault"))
    techniques_that_fault

let test_isboxing_denies_secret () =
  (* The truncated pointer lands in the low 4 GiB; the secret (at 64 TiB)
     is unreachable — the gadget faults on the unmapped alias or reads
     unrelated data, never the secret. *)
  let lowered = Ir.Lower.lower (build_attacking_module ()) in
  let p = Framework.prepare (Framework.config Technique.Isboxing) lowered in
  let secret_va = Ir.Lower.global_va lowered "secret" in
  Mmu.poke64 p.Framework.cpu.Cpu.mmu ~va:secret_va secret_value;
  (match Framework.run p with
  | exception Fault.Fault _ -> ()
  | _ ->
    Alcotest.(check bool) "secret not observed" true
      (Cpu.get_gpr p.Framework.cpu Reg.rax <> secret_value))

let test_sfi_denies_secret_without_faulting () =
  (* SFI redirects rather than faults: the read must complete but must not
     observe the secret (the paper's determinism caveat for SFI). *)
  let lowered = Ir.Lower.lower (build_attacking_module ()) in
  (* Map the masked alias so the redirected access lands somewhere. *)
  let p = Framework.prepare (Framework.config Technique.Sfi) lowered in
  let secret_va = Ir.Lower.global_va lowered "secret" in
  let alias = secret_va land Layout.sfi_mask in
  Mmu.map_range p.Framework.cpu.Cpu.mmu ~va:alias ~len:4096 ~writable:true;
  Mmu.poke64 p.Framework.cpu.Cpu.mmu ~va:secret_va secret_value;
  Alcotest.(check bool) "completes" true (Framework.run p = Cpu.Halted);
  Alcotest.(check bool) "secret not observed" true
    (Cpu.get_gpr p.Framework.cpu Reg.rax <> secret_value)

let test_crypt_rest_state_is_ciphertext () =
  let lowered = Ir.Lower.lower (build_protected_module ()) in
  let p = Framework.prepare (Framework.config Technique.Crypt) lowered in
  Alcotest.(check bool) "halted" true (Framework.run p = Cpu.Halted);
  (* Semantics held... *)
  Alcotest.(check int) "result" expected_result (Cpu.get_gpr p.Framework.cpu Reg.rax);
  (* ...yet the raw memory at rest is not the plaintext. *)
  let secret_va = Ir.Lower.global_va lowered "secret" in
  let raw = Mmu.peek64 p.Framework.cpu.Cpu.mmu ~va:secret_va in
  Alcotest.(check bool) "ciphertext at rest" true (raw <> secret_value)

let test_crypt_attacker_reads_garbage () =
  let lowered = Ir.Lower.lower (build_attacking_module ()) in
  let p = Framework.prepare (Framework.config Technique.Crypt) lowered in
  (* crypt leaves pages mapped, so the unauthorized read completes... *)
  Alcotest.(check bool) "completes" true (Framework.run p = Cpu.Halted);
  (* ...but the secret was never written here; attacker reads ciphertext of
     zeroes, not anything meaningful. Store the plaintext first via setup:
     covered by test_crypt_rest_state; here just assert no fault occurred. *)
  ()

let test_instrumentation_counts () =
  let lowered = Ir.Lower.lower (build_protected_module ()) in
  let mitems = lowered.Ir.Lower.mitems in
  (* 3 stores + 3 loads at IR level; 2 are safe-marked. *)
  let rw = Instr.count_instrumentable ~kind:Instr.Reads_and_writes mitems in
  let r = Instr.count_instrumentable ~kind:Instr.Reads mitems in
  let w = Instr.count_instrumentable ~kind:Instr.Writes mitems in
  Alcotest.(check int) "reads+writes" 4 rw;
  Alcotest.(check int) "reads" 2 r;
  Alcotest.(check int) "writes" 2 w;
  Alcotest.(check int) "safe accesses bracketed" 2
    (Instr.count_switch_points ~policy:Instr.At_safe_accesses mitems);
  Alcotest.(check int) "one call and one ret" 2
    (Instr.count_switch_points ~policy:Instr.At_call_ret mitems)

let test_address_based_rewrite_shape () =
  (* The Fig. 2 transformation: lea into r12, check, access via r12. *)
  let lowered = Ir.Lower.lower (build_attacking_module ()) in
  let items =
    Instr.address_based ~check:Instr_mpx.check ~kind:Instr.Reads lowered.Ir.Lower.mitems
  in
  let insns =
    List.filter_map (function Program.I i -> Some i | Program.Label _ -> None) items
  in
  let has_bndcu_on_r12 =
    List.exists (function Insn.Bndcu (0, r) -> r = Ir.Lower.scratch1 | _ -> false) insns
  in
  Alcotest.(check bool) "bndcu r12 present" true has_bndcu_on_r12

let test_domain_switch_counts_in_execution () =
  let lowered = Ir.Lower.lower (build_protected_module ()) in
  let cfg =
    Framework.config ~switch_policy:Instr.At_safe_accesses (Technique.Mpk Mpk.Pkey.No_access)
  in
  let p = Framework.prepare cfg lowered in
  ignore (Framework.run p);
  (* 2 safe accesses, each bracketed by open+close = 4 wrpkru. *)
  Alcotest.(check int) "wrpkru count" 4 p.Framework.cpu.Cpu.counters.Cpu.wrpkrus

let test_vmfunc_prepared_is_virtualized () =
  let lowered = Ir.Lower.lower (build_protected_module ()) in
  let p = Framework.prepare (Framework.config Technique.Vmfunc) lowered in
  Alcotest.(check bool) "virtualized" true p.Framework.cpu.Cpu.virtualized;
  Alcotest.(check bool) "hypervisor exposed" true (p.Framework.hypervisor <> None);
  ignore (Framework.run p);
  Alcotest.(check int) "vmfunc executed" 4 p.Framework.cpu.Cpu.counters.Cpu.vmfuncs

let test_sgx_rejected_by_framework () =
  let lowered = Ir.Lower.lower (build_protected_module ()) in
  Alcotest.(check bool) "rejected" true
    (try
       ignore (Framework.prepare (Framework.config Technique.Sgx) lowered);
       false
     with Invalid_argument _ -> true)

let test_overhead_measurement () =
  let lowered = Ir.Lower.lower (build_protected_module ()) in
  let base = Framework.prepare_baseline lowered in
  ignore (Framework.run base);
  let inst = Framework.prepare (Framework.config Technique.Mprotect) lowered in
  ignore (Framework.run inst);
  let o = Framework.overhead ~baseline:base ~instrumented:inst in
  Alcotest.(check bool) (Printf.sprintf "mprotect costs (%.2fx)" o) true (o > 1.0)

let test_policy_switch_counts_match_execution () =
  (* For each domain policy, executed switches = 2 x executed switch
     points; and static counts from Instr agree with the machine's
     counters for straight-line call-free policies. *)
  let prof = Workloads.Spec2006.find "sjeng" in
  List.iter
    (fun policy ->
      let lowered = Workloads.Synth.lowered ~iterations:5 prof in
      let cfg = Framework.config ~switch_policy:policy (Technique.Mpk Mpk.Pkey.No_access) in
      let p = Framework.prepare cfg lowered in
      ignore (Framework.run p);
      let c = p.Framework.cpu.Cpu.counters in
      let points =
        match policy with
        | Instr.At_call_ret -> c.Cpu.calls + c.Cpu.rets
        | Instr.At_indirect_branches -> c.Cpu.ind_branches
        | Instr.At_syscalls -> c.Cpu.syscalls
        | Instr.At_safe_accesses -> 0
      in
      Alcotest.(check int)
        (Printf.sprintf "wrpkru = 2x points (policy %d)"
           (match policy with
           | Instr.At_call_ret -> 0
           | Instr.At_indirect_branches -> 1
           | Instr.At_syscalls -> 2
           | Instr.At_safe_accesses -> 3))
        (2 * points) c.Cpu.wrpkrus)
    [ Instr.At_call_ret; Instr.At_indirect_branches; Instr.At_syscalls ]

(* --- the paper-literal API --- *)

let test_annot_api () =
  let cpu = Cpu.create () in
  let a = Safe_region.create_allocator cpu in
  let r = Annot.saferegion_alloc a 64 in
  Alcotest.(check bool) "allocated above split" true (r.Safe_region.va >= Layout.sensitive_base);
  (* Auto-annotation of a defense's runtime library. *)
  let open Ir.Ir_types in
  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"meta" ~size:16 ~sensitive:true ();
  Ir.Builder.start_func b ~name:"dh_alloc" ~nparams:0;
  let g = Ir.Builder.emit_addr_of_global b "meta" in
  Ir.Builder.emit_store b ~base:(Var g) ~offset:0 ~src:(Const 1);
  Ir.Builder.emit_ret b None;
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  ignore (Ir.Builder.emit_call b "dh_alloc" []);
  Ir.Builder.emit_ret b None;
  let m = Ir.Builder.finish b in
  let ran = Ir.Pass.run [ Annot.annotation_pass ~prefix:"dh_" ] m in
  Alcotest.(check int) "pass ran" 1 (List.length ran);
  let marked = ref 0 in
  Ir.Ir_types.iter_instrs m (fun f _ ins ->
      if ins.safe_access then begin
        incr marked;
        Alcotest.(check bool) "only in the runtime lib" true (f.fname = "dh_alloc")
      end);
  Alcotest.(check int) "library body annotated" 3 !marked;
  (* and the annotated module runs protected *)
  let p = Framework.prepare (Framework.config (Technique.Mpk Mpk.Pkey.No_access)) (Ir.Lower.lower m) in
  Alcotest.(check bool) "runs" true (Framework.run p = Cpu.Halted)

let test_interp_recursion_guard () =
  let b = Ir.Builder.create () in
  Ir.Builder.start_func b ~name:"spin" ~nparams:0;
  ignore (Ir.Builder.emit_call b "spin" []);
  Ir.Builder.emit_ret b None;
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  ignore (Ir.Builder.emit_call b "spin" []);
  Ir.Builder.emit_ret b None;
  let m = Ir.Builder.finish b in
  Alcotest.(check bool) "unbounded recursion trapped" true
    (try
       ignore (Ir.Interp.run m);
       false
     with Ir.Interp.Interp_fault _ -> true)

(* --- safe region allocator --- *)

let test_safe_region_alloc () =
  let cpu = Cpu.create () in
  let a = Safe_region.create_allocator cpu in
  let r1 = Safe_region.alloc a ~size:64 in
  let r2 = Safe_region.alloc a ~size:4096 in
  Alcotest.(check bool) "above split" true (r1.Safe_region.va >= Layout.sensitive_base);
  Alcotest.(check bool) "disjoint" true
    (r2.Safe_region.va >= r1.Safe_region.va + r1.Safe_region.size);
  Alcotest.(check bool) "mapped" true (Mmu.is_mapped cpu.Cpu.mmu ~va:r1.Safe_region.va);
  Alcotest.(check bool) "contains" true (Safe_region.contains r1 (r1.Safe_region.va + 8));
  Alcotest.check_raises "bad size"
    (Invalid_argument "Safe_region.alloc: size must be a positive multiple of 16") (fun () ->
      ignore (Safe_region.alloc a ~size:7))

(* --- technique metadata consistency (Table 3 is enforced, not decorative) --- *)

let test_mpk_domain_limit_matches_table3 () =
  Mpk.Pkey.reset_allocator ();
  let max = Option.get (Technique.max_domains (Technique.Mpk Mpk.Pkey.No_access)) in
  (* keys 1..15 plus the default key 0 = 16 domains *)
  let allocatable = ref 1 in
  (try
     while true do
       ignore (Mpk.Pkey.alloc_key ());
       incr allocatable
     done
   with Failure _ -> ());
  Alcotest.(check int) "16 domains" max !allocatable;
  Mpk.Pkey.reset_allocator ()

let test_crypt_granularity_matches_table3 () =
  Alcotest.(check bool) "chunked" true
    (Technique.granularity Technique.Crypt = Technique.Chunk16);
  let cpu = Cpu.create () in
  let a = Safe_region.create_allocator cpu in
  ignore a;
  (* regions not multiple of 16 are rejected by the allocator (tested above),
     and Instr_crypt rejects foreign unaligned regions: *)
  Alcotest.(check bool) "crypt rejects unaligned" true
    (try
       ignore
         (Instr_crypt.setup cpu ~seed:1 [ { Safe_region.va = Layout.sensitive_base + 8; size = 24 } ]);
       false
     with Invalid_argument _ -> true)

let test_reports_render () =
  let t1 = Report.table1 () and t2 = Report.table2 () and t3 = Report.table3 () in
  let contains s sub =
    let n = String.length sub and ls = String.length s in
    let rec go i = i + n <= ls && (String.sub s i n = sub || go (i + 1)) in
    go 0
  in
  Alcotest.(check int) "13 defenses" 13 (List.length Report.defenses);
  Alcotest.(check bool) "CPI in table 1" true (contains t1 "CPI");
  Alcotest.(check bool) "ShadowStack in table 2" true (contains t2 "ShadowStack");
  Alcotest.(check bool) "MPK domains in table 3" true (contains t3 "16");
  Alcotest.(check bool) "VMFUNC domains in table 3" true (contains t3 "512")

let suite =
  [
    Alcotest.test_case "baseline semantics" `Quick test_baseline_semantics;
    Alcotest.test_case "semantics preserved under all techniques" `Quick
      test_semantics_preserved_under_all_techniques;
    Alcotest.test_case "unauthorized access faults" `Quick test_unauthorized_access_faults;
    Alcotest.test_case "SFI denies without faulting" `Quick
      test_sfi_denies_secret_without_faulting;
    Alcotest.test_case "ISBoxing denies the secret" `Quick test_isboxing_denies_secret;
    Alcotest.test_case "crypt: ciphertext at rest" `Quick test_crypt_rest_state_is_ciphertext;
    Alcotest.test_case "crypt: attacker completes harmlessly" `Quick
      test_crypt_attacker_reads_garbage;
    Alcotest.test_case "instrumentation counts" `Quick test_instrumentation_counts;
    Alcotest.test_case "address-based rewrite shape" `Quick test_address_based_rewrite_shape;
    Alcotest.test_case "domain switch counts" `Quick test_domain_switch_counts_in_execution;
    Alcotest.test_case "vmfunc prepared state" `Quick test_vmfunc_prepared_is_virtualized;
    Alcotest.test_case "SGX rejected with guidance" `Quick test_sgx_rejected_by_framework;
    Alcotest.test_case "overhead measurement" `Quick test_overhead_measurement;
    Alcotest.test_case "safe region allocator" `Quick test_safe_region_alloc;
    Alcotest.test_case "paper-literal Annot API" `Quick test_annot_api;
    Alcotest.test_case "policy switch counts" `Quick test_policy_switch_counts_match_execution;
    Alcotest.test_case "interp recursion guard" `Quick test_interp_recursion_guard;
    Alcotest.test_case "MPK limit matches Table 3" `Quick test_mpk_domain_limit_matches_table3;
    Alcotest.test_case "crypt granularity matches Table 3" `Quick
      test_crypt_granularity_matches_table3;
    Alcotest.test_case "survey tables render" `Quick test_reports_render;
  ]
