(* ms_util: PRNG determinism, statistics, bit manipulation, table layout. *)

open Ms_util

let test_prng_deterministic () =
  let a = Prng.create ~seed:42 and b = Prng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Prng.next_int64 a) (Prng.next_int64 b)
  done

let test_prng_seeds_differ () =
  let a = Prng.create ~seed:1 and b = Prng.create ~seed:2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Prng.next_int64 a = Prng.next_int64 b then incr same
  done;
  Alcotest.(check int) "streams diverge" 0 !same

let test_prng_int_bounds () =
  let t = Prng.create ~seed:7 in
  for _ = 1 to 1000 do
    let v = Prng.int t 17 in
    Alcotest.(check bool) "in range" true (v >= 0 && v < 17)
  done

let test_prng_int_in () =
  let t = Prng.create ~seed:9 in
  for _ = 1 to 1000 do
    let v = Prng.int_in t (-5) 5 in
    Alcotest.(check bool) "in range" true (v >= -5 && v <= 5)
  done

let test_prng_copy_independent () =
  let a = Prng.create ~seed:3 in
  let _ = Prng.next_int64 a in
  let b = Prng.copy a in
  Alcotest.(check int64) "copy continues identically" (Prng.next_int64 a) (Prng.next_int64 b)

let test_prng_shuffle_permutes () =
  let t = Prng.create ~seed:5 in
  let arr = Array.init 50 (fun i -> i) in
  Prng.shuffle t arr;
  let sorted = Array.copy arr in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same elements" (Array.init 50 (fun i -> i)) sorted

let feq = Alcotest.float 1e-9

let test_geomean () =
  Alcotest.check feq "geomean" 2.0 (Stats.geomean [ 1.0; 2.0; 4.0 ]);
  Alcotest.check feq "singleton" 3.5 (Stats.geomean [ 3.5 ])

let test_geomean_rejects_nonpositive () =
  Alcotest.check_raises "zero" (Invalid_argument "Stats.geomean: non-positive element")
    (fun () -> ignore (Stats.geomean [ 1.0; 0.0 ]))

let test_mean_median () =
  Alcotest.check feq "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  Alcotest.check feq "median odd" 2.0 (Stats.median [ 3.0; 1.0; 2.0 ]);
  Alcotest.check feq "median even" 2.5 (Stats.median [ 4.0; 1.0; 2.0; 3.0 ])

let test_percentile () =
  let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
  Alcotest.check feq "p50" 50.0 (Stats.percentile 50.0 xs);
  Alcotest.check feq "p100" 100.0 (Stats.percentile 100.0 xs)

let test_overhead () =
  Alcotest.check feq "ratio" 1.5 (Stats.overhead ~baseline:2.0 ~measured:3.0);
  Alcotest.check feq "pct" 50.0 (Stats.overhead_pct ~baseline:2.0 ~measured:3.0)

let test_bitops_mask48 () =
  Alcotest.(check int64) "masks high bits" 0xFFFF_FFFF_FFFFL (Bitops.mask48 (-1L));
  Alcotest.(check int) "to_addr" 0x1234 (Bitops.to_addr 0x1234L)

let test_bitops_bits () =
  Alcotest.(check int) "middle field" 0xB (Bitops.bits ~lo:4 ~hi:7 0xABCL);
  Alcotest.(check int) "low bit" 1 (Bitops.bits ~lo:0 ~hi:0 1L)

let test_bitops_set_get () =
  let v = Bitops.set_bit 5 true 0L in
  Alcotest.(check bool) "set" true (Bitops.get_bit 5 v);
  let v = Bitops.set_bit 5 false v in
  Alcotest.(check bool) "cleared" false (Bitops.get_bit 5 v)

let test_align () =
  Alcotest.(check int) "down" 4096 (Bitops.align_down 4096 5000);
  Alcotest.(check int) "up" 8192 (Bitops.align_up 4096 5000);
  Alcotest.(check bool) "aligned" true (Bitops.is_aligned 4096 8192);
  Alcotest.(check bool) "unaligned" false (Bitops.is_aligned 4096 8193)

let test_table_render () =
  let t = Table_fmt.create [ "name"; "value" ] in
  Table_fmt.add_row t [ "alpha"; "1" ];
  Table_fmt.add_sep t;
  Table_fmt.add_row t [ "geomean"; "2" ];
  let s = Table_fmt.render t in
  let lines = String.split_on_char '\n' s in
  let has_row prefix suffix =
    List.exists
      (fun l ->
        String.length l >= String.length prefix + String.length suffix
        && String.sub l 0 (String.length prefix) = prefix
        && String.sub l (String.length l - String.length suffix) (String.length suffix) = suffix)
      lines
  in
  Alcotest.(check bool) "alpha row" true (has_row "alpha" "1");
  Alcotest.(check bool) "geomean row" true (has_row "geomean" "2");
  Alcotest.(check int) "two separators" 2
    (List.length (List.filter (fun l -> String.length l > 0 && l.[0] = '-') lines));
  Alcotest.check_raises "too many cells" (Invalid_argument "Table_fmt.add_row: too many cells")
    (fun () -> Table_fmt.add_row t [ "a"; "b"; "c" ])

let test_table_cells () =
  Alcotest.(check string) "pct" "+14.7%" (Table_fmt.cell_pct 1.147);
  Alcotest.(check string) "x" "20.8x" (Table_fmt.cell_x 20.79);
  Alcotest.(check string) "f" "1.50" (Table_fmt.cell_f 1.5)

let prop_geomean_between_min_max =
  QCheck.Test.make ~name:"geomean lies between min and max" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 20) (float_range 0.01 100.0))
    (fun xs ->
      let g = Stats.geomean xs in
      let lo = List.fold_left min infinity xs and hi = List.fold_left max neg_infinity xs in
      g >= lo -. 1e-9 && g <= hi +. 1e-9)

let prop_align_up_ge =
  QCheck.Test.make ~name:"align_up result is aligned and >= input" ~count:200
    QCheck.(int_range 0 1_000_000)
    (fun x ->
      let a = Bitops.align_up 64 x in
      a >= x && Bitops.is_aligned 64 a && a - x < 64)

let suite =
  [
    Alcotest.test_case "prng deterministic" `Quick test_prng_deterministic;
    Alcotest.test_case "prng seeds differ" `Quick test_prng_seeds_differ;
    Alcotest.test_case "prng int bounds" `Quick test_prng_int_bounds;
    Alcotest.test_case "prng int_in bounds" `Quick test_prng_int_in;
    Alcotest.test_case "prng copy" `Quick test_prng_copy_independent;
    Alcotest.test_case "prng shuffle permutes" `Quick test_prng_shuffle_permutes;
    Alcotest.test_case "geomean" `Quick test_geomean;
    Alcotest.test_case "geomean rejects <= 0" `Quick test_geomean_rejects_nonpositive;
    Alcotest.test_case "mean/median" `Quick test_mean_median;
    Alcotest.test_case "percentile" `Quick test_percentile;
    Alcotest.test_case "overhead" `Quick test_overhead;
    Alcotest.test_case "bitops mask48" `Quick test_bitops_mask48;
    Alcotest.test_case "bitops bits" `Quick test_bitops_bits;
    Alcotest.test_case "bitops set/get bit" `Quick test_bitops_set_get;
    Alcotest.test_case "bitops align" `Quick test_align;
    Alcotest.test_case "table render" `Quick test_table_render;
    Alcotest.test_case "table cells" `Quick test_table_cells;
    QCheck_alcotest.to_alcotest prop_geomean_between_min_max;
    QCheck_alcotest.to_alcotest prop_align_up_ge;
  ]
