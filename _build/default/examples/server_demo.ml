(* Server demo: an I/O-bound "TLS terminator" whose session-key table is a
   MemSentry/MPK safe region.

   Two measurements frame the story:
   1. protection cost: instrumenting the server's safe-region accesses
      costs a few percent (I/O dominates — the paper's §6 point);
   2. protection value: between requests, an attacker with a full
      arbitrary-read primitive cannot dump a single session key, even
      knowing exactly where the table lives.

   Run with: dune exec examples/server_demo.exe *)

open X86sim
open Memsentry

let () =
  let prof = Workloads.Servers.find "nginx-like" in

  (* Cost: the request loop under MPK, opening the key table around each
     request's I/O boundary (syscall granularity — the natural placement
     for per-request session handling). *)
  let base = Workloads.Runner.run_baseline ~iterations:30 prof in
  let cfg = Framework.config ~switch_policy:Instr.At_syscalls (Technique.Mpk Mpk.Pkey.No_access) in
  let inst = Workloads.Runner.run_with ~iterations:30 prof cfg in
  Printf.printf "request loop: %.0f -> %.0f cycles (overhead %.1f%%, %d domain switches)\n"
    base.Workloads.Runner.cycles inst.Workloads.Runner.cycles
    ((inst.Workloads.Runner.cycles /. base.Workloads.Runner.cycles -. 1.0) *. 100.0)
    inst.Workloads.Runner.switch_count;

  (* Value: a session-key table in a protected region. *)
  let cpu = Cpu.create () in
  let alloc = Safe_region.create_allocator cpu in
  let table = Annot.saferegion_alloc alloc 256 in
  let rng = Ms_util.Prng.create ~seed:99 in
  for slot = 0 to 31 do
    Mmu.poke64 cpu.Cpu.mmu ~va:(table.Safe_region.va + (8 * slot))
      (Int64.to_int (Int64.shift_right_logical (Ms_util.Prng.next_int64 rng) 2))
  done;
  let _mpk = Instr_mpk.setup cpu ~protection:Mpk.Pkey.No_access [ table ] in
  let prim = Attacks.Primitives.create cpu in
  let leaked = ref 0 in
  for slot = 0 to 31 do
    match Attacks.Primitives.try_read prim (table.Safe_region.va + (8 * slot)) with
    | Some _ -> incr leaked
    | None -> ()
  done;
  Printf.printf
    "attacker dumped the session table at its public address: %d/32 keys leaked, %d probes \
     faulted\n"
    !leaked (Attacks.Primitives.crashes prim);
  assert (!leaked = 0);
  print_endline "server demo: cheap for the server, opaque to the attacker"
