examples/key_vault.mli:
