examples/pointsto_demo.ml: Defenses Hashtbl Ir Printf String
