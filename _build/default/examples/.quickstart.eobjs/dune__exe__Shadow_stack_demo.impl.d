examples/shadow_stack_demo.ml: Attacks Cpu Defenses Framework Insn Instr Ir Layout Memsentry Mmu Mpk Printf Program Reg Safe_region Technique X86sim
