examples/shadow_stack_demo.mli:
