examples/server_demo.ml: Annot Attacks Cpu Framework Instr Instr_mpk Int64 Memsentry Mmu Mpk Ms_util Printf Safe_region Technique Workloads X86sim
