examples/quickstart.ml: Attacks Framework Ir List Memsentry Mpk Printf Technique X86sim
