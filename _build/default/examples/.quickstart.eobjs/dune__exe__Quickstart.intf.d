examples/quickstart.mli:
