examples/key_vault.ml: Aesni Bytes Cpu Defenses Insn Instr_crypt List Memsentry Mmu Printf Program Reg Safe_region X86sim
