(* Key vault: protecting sensitive non-control data (paper §2.2, §4).

   A "server" keeps an AES session key in a vault and seals client records
   with it. The vault is a crypt-protected safe region: between uses it is
   ciphertext under a master key whose round keys live only in ymm
   registers. An attacker with a full read primitive dumps the vault and
   gets noise. Alongside, an ASLR-Guard-style table protects the server's
   callback pointer against overwrite-and-wait attacks.

   Run with: dune exec examples/key_vault.exe *)

open X86sim
open Memsentry

let () =
  let cpu = Cpu.create () in
  let alloc = Safe_region.create_allocator cpu in

  (* The vault holds one 128-bit session key. *)
  let vault = Safe_region.alloc alloc ~size:16 in
  let session_key = Aesni.Aes.block_of_hex "00112233445566778899aabbccddeeff" in
  Mmu.poke_bytes cpu.Cpu.mmu ~va:vault.Safe_region.va session_key;

  (* Seal it with crypt: encrypted in place, master key in ymm highs. *)
  let crypt = Instr_crypt.setup cpu ~seed:42 [ vault ] in

  (* Attacker dumps the vault. *)
  let dumped = Mmu.peek_bytes cpu.Cpu.mmu ~va:vault.Safe_region.va ~len:16 in
  Printf.printf "session key:     %s\n" (Aesni.Aes.hex_of_block session_key);
  Printf.printf "attacker dump:   %s  (ciphertext)\n" (Aesni.Aes.hex_of_block dumped);
  assert (not (Bytes.equal dumped session_key));

  (* The server's authorized path: open the domain, use the key, close.
     Here we run the actual enter/leave instruction sequences. *)
  let prog =
    Program.assemble
      ((Program.Label "main" :: List.map (fun i -> Program.I i) (Instr_crypt.enter crypt))
      @ [
          (* use the key: load it into xmm14 for a (simulated) TLS record seal *)
          Program.I (Insn.Mov_ri (Reg.rbx, vault.Safe_region.va));
          Program.I (Insn.Movdqa_load (14, Insn.mem ~base:Reg.rbx 0));
        ]
      @ List.map (fun i -> Program.I i) (Instr_crypt.leave crypt)
      @ [ Program.I Insn.Halt ])
  in
  Cpu.load_program cpu prog;
  ignore (Cpu.run cpu);
  let used = Cpu.get_xmm cpu 14 in
  Printf.printf "server sees:     %s  (plaintext, inside the domain)\n"
    (Aesni.Aes.hex_of_block used);
  assert (Bytes.equal used session_key);
  let resealed = Mmu.peek_bytes cpu.Cpu.mmu ~va:vault.Safe_region.va ~len:16 in
  Printf.printf "at rest again:   %s  (re-encrypted)\n" (Aesni.Aes.hex_of_block resealed);
  assert (not (Bytes.equal resealed session_key));

  (* ASLR-Guard-style pointer protection for the server's callback. *)
  let table = Safe_region.alloc alloc ~size:128 in
  let pe = Defenses.Ptr_encrypt.create cpu ~seed:7 ~key_table:table () in
  let callback = 0x4242 in
  let stored = Defenses.Ptr_encrypt.encrypt pe ~slot:3 callback in
  Printf.printf "callback 0x%x stored as 0x%x; decrypts to 0x%x\n" callback stored
    (Defenses.Ptr_encrypt.decrypt pe ~slot:3 stored);
  assert (Defenses.Ptr_encrypt.decrypt pe ~slot:3 stored = callback);
  print_endline "key vault demo: all invariants held"
