(* Shadow-stack demo: a classic return-address smash, three ways.

   1. Unprotected victim: the hijack lands and "evil" runs.
   2. Shadow stack (information-hiding style): the smash is detected —
      but the shadow region itself could be found and overwritten.
   3. Shadow stack hardened by MemSentry/MPK: the region is not even
      writable for an attacker with an arbitrary-write primitive.

   Run with: dune exec examples/shadow_stack_demo.exe *)

open X86sim
open Memsentry

let data = Layout.heap_base
let marker_normal = data
let marker_evil = data + 8

let plain insn = { Ir.Lower.item = Program.I insn; cls = Ir.Lower.Plain; safe = false }
let lbl l = { Ir.Lower.item = Program.Label l; cls = Ir.Lower.Plain; safe = false }

(* main calls f; f overwrites its own return address with &evil. *)
let victim =
  [
    lbl "main";
    plain (Insn.Call (Insn.target "fn_f"));
    plain (Insn.Store_i (Insn.mem_abs marker_normal, 1));
    plain Insn.Halt;
    lbl "fn_f";
    plain (Insn.Mov_label (Reg.rax, Insn.target "evil"));
    plain (Insn.Store (Insn.mem ~base:Reg.rsp 0, Reg.rax));
    plain Insn.Ret;
    lbl "evil";
    plain (Insn.Store_i (Insn.mem_abs marker_evil, 1));
    plain Insn.Halt;
  ]

let outcome cpu =
  let normal = Mmu.peek64 cpu.Cpu.mmu ~va:marker_normal in
  let evil = Mmu.peek64 cpu.Cpu.mmu ~va:marker_evil in
  if evil = 1 then "HIJACKED (evil code ran)"
  else if normal = 1 then "normal return"
  else "attack detected, process halted"

let () =
  (* 1: no protection *)
  let cpu = Cpu.create () in
  Mmu.map_range cpu.Cpu.mmu ~va:data ~len:4096 ~writable:true;
  Cpu.load_program cpu (Program.assemble (Instr.strip victim));
  ignore (Cpu.run cpu);
  Printf.printf "unprotected:        %s\n" (outcome cpu);

  (* 2: shadow stack alone *)
  let region_va = Layout.sensitive_base + 0x1000_0000 in
  let cpu = Cpu.create () in
  Mmu.map_range cpu.Cpu.mmu ~va:data ~len:4096 ~writable:true;
  Mmu.map_range cpu.Cpu.mmu ~va:region_va ~len:Defenses.Shadow_stack.default_region_size
    ~writable:true;
  let shadowed = Defenses.Shadow_stack.apply ~region_va { Ir.Lower.mitems = victim; layout = [] } in
  Cpu.load_program cpu (Program.assemble (Instr.strip shadowed.Ir.Lower.mitems));
  ignore (Cpu.run cpu);
  Printf.printf "shadow stack:       %s\n" (outcome cpu);
  let prim = Attacks.Primitives.create cpu in
  Printf.printf "  ...but the region is writable by an attacker: %b\n"
    (Attacks.Primitives.try_write prim region_va 0xbad);

  (* 3: shadow stack + MemSentry MPK (integrity) *)
  let shadowed = Defenses.Shadow_stack.apply ~region_va { Ir.Lower.mitems = victim; layout = [] } in
  let cfg =
    Framework.config ~switch_policy:Instr.At_safe_accesses (Technique.Mpk Mpk.Pkey.Read_only)
  in
  let region = { Safe_region.va = region_va; size = Defenses.Shadow_stack.default_region_size } in
  let p = Framework.prepare ~extra_regions:[ region ] cfg shadowed in
  Mmu.map_range p.Framework.cpu.Cpu.mmu ~va:data ~len:4096 ~writable:true;
  ignore (Framework.run p);
  Printf.printf "shadow stack + MPK: %s\n" (outcome p.Framework.cpu);
  let prim = Attacks.Primitives.create p.Framework.cpu in
  Printf.printf "  ...and the region is writable by an attacker: %b\n"
    (Attacks.Primitives.try_write prim region_va 0xbad)
