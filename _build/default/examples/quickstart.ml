(* Quickstart: protect one secret with every MemSentry technique.

   Build a tiny program that (a) legitimately uses its secret through
   annotated accesses and (b) would leak it through an unannotated gadget,
   then run it under each isolation technique and watch the gadget fail
   while the program keeps working.

   Run with: dune exec examples/quickstart.exe *)

open Memsentry

let secret = 0xCAFE

(* A program with a sensitive global: main writes the secret through an
   annotated (authorized) access and reads it back the same way. *)
let build () =
  let open Ir.Ir_types in
  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"scratch" ~size:64 ();
  Ir.Builder.add_global b ~name:"vault" ~size:16 ~sensitive:true ();
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  let v = Ir.Builder.emit_addr_of_global b "vault" in
  Ir.Builder.emit_store b ~base:(Var v) ~offset:0 ~src:(Const secret);
  let safe_store = Ir.Builder.last_id b in
  let s = Ir.Builder.emit_addr_of_global b "scratch" in
  Ir.Builder.emit_store b ~base:(Var s) ~offset:0 ~src:(Const 1);
  let v2 = Ir.Builder.emit_addr_of_global b "vault" in
  let sv = Ir.Builder.emit_load b ~base:(Var v2) ~offset:0 in
  let safe_load = Ir.Builder.last_id b in
  Ir.Builder.emit_ret b (Some (Var sv));
  let m = Ir.Builder.finish b in
  (* The saferegion_access annotations: these two may touch the vault. *)
  Ir.Ir_types.mark_safe_access m safe_store;
  Ir.Ir_types.mark_safe_access m safe_load;
  m

let techniques =
  [
    ("SFI", Framework.config Technique.Sfi);
    ("MPX", Framework.config Technique.Mpx);
    ("MPK", Framework.config (Technique.Mpk Mpk.Pkey.No_access));
    ("VMFUNC", Framework.config Technique.Vmfunc);
    ("crypt", Framework.config Technique.Crypt);
    ("mprotect", Framework.config Technique.Mprotect);
  ]

let () =
  print_endline "MemSentry quickstart: one secret, six isolation techniques\n";
  List.iter
    (fun (name, cfg) ->
      let lowered = Ir.Lower.lower (build ()) in
      let p = Framework.prepare cfg lowered in
      let status = Framework.run p in
      let returned = X86sim.Cpu.get_gpr p.Framework.cpu X86sim.Reg.rax in
      (* The attacker's gadget: a direct architectural read of the vault. *)
      let gadget =
        match cfg.Framework.technique with
        | Technique.Sfi -> Attacks.Primitives.Sfi_masked
        | Technique.Mpx -> Attacks.Primitives.Mpx_checked
        | _ -> Attacks.Primitives.Raw
      in
      let prim = Attacks.Primitives.create ~gadget p.Framework.cpu in
      let vault_va = Ir.Lower.global_va lowered "vault" in
      let attack =
        match Attacks.Primitives.try_read prim vault_va with
        | Some v when v = secret -> "SECRET LEAKED!"
        | Some v -> Printf.sprintf "denied (attacker read 0x%x)" v
        | None -> "denied (access faulted)"
      in
      Printf.printf "%-9s program: %s, returned 0x%x | attacker: %s\n" name
        (if status = X86sim.Cpu.Halted then "ok" else "stuck")
        returned attack)
    techniques;
  print_endline "\nEvery technique preserves the program and stops the gadget."
