(* The paper's thesis as a demo: run the published information-hiding
   attacks against a hidden safe region, then against safe regions
   protected by each MemSentry technique (whose addresses are public).

   Run with: dune exec examples/attack_demo.exe *)

let () =
  let results = Attacks.Harness.run_all ~entropy_bits:14 () in
  Attacks.Harness.print_table results;
  print_newline ();
  if Attacks.Harness.any_deterministic_leak results then
    print_endline "!!! a deterministic technique leaked (this is a bug)"
  else
    print_endline
      "Information hiding fell to every attack; deterministic isolation leaked nothing.\n\
       No need to hide."
