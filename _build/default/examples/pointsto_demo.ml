(* Instrumentation-point discovery for arbitrary program data (paper §5.5):
   static DSA-style points-to analysis vs the PIN-style dynamic profile,
   feeding the CPI-style defense.

   Run with: dune exec examples/pointsto_demo.exe *)

open Ir.Ir_types

let () =

  let b = Ir.Builder.create () in
  Ir.Builder.add_global b ~name:"keystore" ~size:64 ();
  Ir.Builder.add_global b ~name:"buffer" ~size:64 ();
  Ir.Builder.add_global b ~name:"cell" ~size:8 ();
  Ir.Builder.start_func b ~name:"main" ~nparams:0;
  (* direct, provable access *)
  let k = Ir.Builder.emit_addr_of_global b "keystore" in
  Ir.Builder.emit_store b ~base:(Var k) ~offset:0 ~src:(Const 0x5EED);
  let direct = Ir.Builder.last_id b in
  (* pointer laundered through memory: static analysis says Anything *)
  let c = Ir.Builder.emit_addr_of_global b "cell" in
  Ir.Builder.emit_store b ~base:(Var c) ~offset:0 ~src:(Var k);
  let p = Ir.Builder.emit_load b ~base:(Var c) ~offset:0 in
  ignore (Ir.Builder.emit_load b ~base:(Var p) ~offset:0);
  let laundered = Ir.Builder.last_id b in
  (* a cold path touching only the buffer *)
  Ir.Builder.emit_cbr b Eq (Const 1) (Const 1) ~if_true:"done" ~if_false:"cold";
  Ir.Builder.start_block b "cold";
  let bp = Ir.Builder.emit_addr_of_global b "buffer" in
  Ir.Builder.emit_store b ~base:(Var bp) ~offset:0 ~src:(Const 0);
  let cold = Ir.Builder.last_id b in
  Ir.Builder.emit_ret b None;
  Ir.Builder.start_block b "done";
  Ir.Builder.emit_ret b None;
  let m = Ir.Builder.finish b in

  Printf.printf "module:\n%s\n" (Ir.Printer.modul_to_string m);

  let pt = Ir.Pointsto.analyze m in
  let show id =
    match Ir.Pointsto.access_target pt id with
    | Some Ir.Pointsto.Anything -> "Anything (conservative)"
    | Some (Ir.Pointsto.Objects s) ->
      "{" ^ String.concat ", " (Ir.Pointsto.Obj_set.elements s) ^ "}"
    | None -> "-"
  in
  Printf.printf "static:  direct store -> %s\n" (show direct);
  Printf.printf "static:  laundered load -> %s\n" (show laundered);
  Printf.printf "static:  cold store -> %s\n" (show cold);

  let observed = Ir.Pointsto_dynamic.profile m in
  let show_dyn id =
    match Hashtbl.find_opt observed id with
    | Some s -> "{" ^ String.concat ", " (Ir.Pointsto.Obj_set.elements s) ^ "}"
    | None -> "never observed (under-approximation!)"
  in
  Printf.printf "dynamic: direct store -> %s\n" (show_dyn direct);
  Printf.printf "dynamic: laundered load -> %s\n" (show_dyn laundered);
  Printf.printf "dynamic: cold store -> %s\n" (show_dyn cold);

  (* Feed the CPI-style defense with the static result. *)
  let n = Defenses.Cpi.apply ~pointer_globals:[ "keystore" ] m in
  Printf.printf "\nCPI annotated %d accesses as authorized; keystore is now sensitive: %b\n" n
    (Ir.Ir_types.find_global m "keystore").Ir.Ir_types.sensitive
