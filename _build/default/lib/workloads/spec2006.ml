open Profile

(* Densities are per-1000-instruction rates; see Profile for semantics.
   Sources for the qualitative shapes: published SPEC CPU2006
   characterization studies and the per-benchmark outliers visible in the
   paper's Figures 3-6. *)

let p ~name ~loads ~stores ~call_ret ~indirect ~syscalls ~fp_ops ~ws ~ilp ~seed =
  let prof =
    {
      name;
      loads;
      stores;
      call_ret;
      indirect;
      syscalls;
      io_bound = false;
      fp_ops;
      working_set_bits = ws;
      dep_chain = ilp;
      seed;
    }
  in
  validate prof;
  prof

let all =
  [
    p ~name:"400.perlbench" ~loads:300 ~stores:160 ~call_ret:25 ~indirect:10 ~syscalls:0.06
      ~fp_ops:5 ~ws:21 ~ilp:Med_ilp ~seed:400;
    p ~name:"401.bzip2" ~loads:280 ~stores:110 ~call_ret:4 ~indirect:2 ~syscalls:0.02 ~fp_ops:2
      ~ws:23 ~ilp:Med_ilp ~seed:401;
    p ~name:"403.gcc" ~loads:310 ~stores:140 ~call_ret:14 ~indirect:8 ~syscalls:0.12 ~fp_ops:4
      ~ws:22 ~ilp:Med_ilp ~seed:403;
    p ~name:"429.mcf" ~loads:380 ~stores:100 ~call_ret:4 ~indirect:2 ~syscalls:0.01 ~fp_ops:2
      ~ws:25 ~ilp:Low_ilp ~seed:429;
    p ~name:"433.milc" ~loads:340 ~stores:140 ~call_ret:2 ~indirect:1 ~syscalls:0.02
      ~fp_ops:260 ~ws:24 ~ilp:High_ilp ~seed:433;
    p ~name:"444.namd" ~loads:320 ~stores:90 ~call_ret:2 ~indirect:1 ~syscalls:0.01 ~fp_ops:320
      ~ws:21 ~ilp:Med_ilp ~seed:444;
    p ~name:"445.gobmk" ~loads:260 ~stores:120 ~call_ret:18 ~indirect:3 ~syscalls:0.03
      ~fp_ops:3 ~ws:20 ~ilp:Med_ilp ~seed:445;
    p ~name:"447.dealII" ~loads:330 ~stores:120 ~call_ret:20 ~indirect:6 ~syscalls:0.02
      ~fp_ops:220 ~ws:22 ~ilp:Med_ilp ~seed:447;
    p ~name:"450.soplex" ~loads:330 ~stores:90 ~call_ret:7 ~indirect:3 ~syscalls:0.02
      ~fp_ops:190 ~ws:23 ~ilp:Med_ilp ~seed:450;
    p ~name:"453.povray" ~loads:300 ~stores:130 ~call_ret:27 ~indirect:6 ~syscalls:0.02
      ~fp_ops:260 ~ws:18 ~ilp:Med_ilp ~seed:453;
    p ~name:"456.hmmer" ~loads:380 ~stores:160 ~call_ret:2 ~indirect:1 ~syscalls:0.01 ~fp_ops:2
      ~ws:16 ~ilp:High_ilp ~seed:456;
    p ~name:"458.sjeng" ~loads:250 ~stores:90 ~call_ret:13 ~indirect:3 ~syscalls:0.01 ~fp_ops:1
      ~ws:19 ~ilp:Med_ilp ~seed:458;
    p ~name:"462.libquantum" ~loads:300 ~stores:100 ~call_ret:2 ~indirect:1 ~syscalls:0.02
      ~fp_ops:30 ~ws:25 ~ilp:High_ilp ~seed:462;
    p ~name:"464.h264ref" ~loads:360 ~stores:150 ~call_ret:7 ~indirect:3 ~syscalls:0.02
      ~fp_ops:20 ~ws:21 ~ilp:High_ilp ~seed:464;
    p ~name:"470.lbm" ~loads:330 ~stores:170 ~call_ret:0 ~indirect:0 ~syscalls:0.01 ~fp_ops:300
      ~ws:25 ~ilp:High_ilp ~seed:470;
    p ~name:"471.omnetpp" ~loads:340 ~stores:160 ~call_ret:23 ~indirect:10 ~syscalls:0.03
      ~fp_ops:3 ~ws:24 ~ilp:Low_ilp ~seed:471;
    p ~name:"473.astar" ~loads:330 ~stores:100 ~call_ret:11 ~indirect:3 ~syscalls:0.01 ~fp_ops:8
      ~ws:23 ~ilp:Low_ilp ~seed:473;
    p ~name:"482.sphinx3" ~loads:350 ~stores:80 ~call_ret:7 ~indirect:3 ~syscalls:0.03
      ~fp_ops:230 ~ws:22 ~ilp:Med_ilp ~seed:482;
    p ~name:"483.xalancbmk" ~loads:320 ~stores:110 ~call_ret:32 ~indirect:16 ~syscalls:0.02
      ~fp_ops:4 ~ws:23 ~ilp:Low_ilp ~seed:483;
  ]

let find short =
  List.find
    (fun prof ->
      prof.name = short
      ||
      match String.index_opt prof.name '.' with
      | Some i -> String.sub prof.name (i + 1) (String.length prof.name - i - 1) = short
      | None -> false)
    all

let names = List.map (fun prof -> prof.name) all
