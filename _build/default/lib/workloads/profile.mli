(** Workload characterization: what the synthetic generator needs to know
    about a benchmark.

    Each technique's overhead is a function of a handful of dynamic
    densities — how often the instrumented events occur — plus register
    pressure and locality. A profile captures exactly those densities (per
    1000 executed instructions, roughly), so a synthetic program built from
    it stresses each isolation technique the way the real benchmark does:

    - [loads]/[stores] drive the address-based techniques (Figure 3);
    - [call_ret] drives domain switching at calls/returns (Figure 4);
    - [indirect] drives CFI-style switch points (Figure 5);
    - [syscalls] drives syscall-granular switching and the VMFUNC
      sandbox's hypercall tax (Figure 6);
    - [fp_ops] + the xmm pool drive crypt's register-reservation cost;
    - [working_set_bits] and [dep_chain] drive cache behavior and how
      much latency instrumentation adds to critical paths. *)

type ilp = Low_ilp | Med_ilp | High_ilp
(** How independent the instruction stream is. [Low_ilp] = long dependency
    chains (pointer chasing, mcf-like); [High_ilp] = wide independent work
    (streaming, lbm-like). *)

type t = {
  name : string;
  loads : int;  (** data loads per 1000 instructions *)
  stores : int;
  call_ret : int;  (** call/ret pairs per 1000 *)
  indirect : int;  (** indirect branches per 1000 (subset of calls here) *)
  syscalls : float;  (** syscalls per 1000 (fractions allowed) *)
  io_bound : bool;
      (** syscalls are blocking I/O ({!X86sim.Cpu.sys_io}) rather than
          cheap kernel calls — server-style workloads *)
  fp_ops : int;  (** xmm/fp operations per 1000 *)
  working_set_bits : int;  (** log2 of the touched data size in bytes *)
  dep_chain : ilp;
  seed : int;  (** per-benchmark generation seed *)
}

val validate : t -> unit
(** Sanity-check ranges; raises [Invalid_argument]. *)
