(** Profiles for the 19 C/C++ SPEC CPU2006 benchmarks the paper evaluates.

    SPEC sources and inputs are proprietary, so the suite is reproduced as
    instruction-mix profiles (see DESIGN.md for the substitution argument).
    Densities follow each benchmark's well-known character: [perlbench],
    [gobmk], [dealII], [povray], [omnetpp] and [xalancbmk] are call-heavy
    (worst cases for call/ret domain switching); [lbm], [libquantum] and
    [milc] are streaming loops with almost no calls; [mcf], [omnetpp] and
    [astar] chase pointers (low ILP); [milc], [namd], [dealII], [soplex],
    [povray], [lbm] and [sphinx3] are xmm-heavy (worst cases for crypt's
    register reservation); [perlbench], [gcc] and [xalancbmk] have the
    most indirect branches. *)

val all : Profile.t list
(** In the paper's figure order (400.perlbench ... 483.xalancbmk). *)

val find : string -> Profile.t
(** Lookup by short name, e.g. ["mcf"]. Raises [Not_found]. *)

val names : string list
