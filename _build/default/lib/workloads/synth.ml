open Ir
open Ir_types
open Ms_util

let nworkers = 4
let safe_region_size = 16

(* Fraction of memory ops whose address depends on live computation. *)
let dep_fraction = function
  | Profile.Low_ilp -> 0.45
  | Profile.Med_ilp -> 0.22
  | Profile.High_ilp -> 0.06

type op = L_dep | L_ind | St_dep | St_ind | Fp_op | Alu_chain | Alu_ind

(* Build a shuffled op list realizing the requested counts. *)
let op_list rng ~loads ~stores ~fp ~alu ~dep =
  let n_ldep = int_of_float (float_of_int loads *. dep +. 0.5) in
  let n_sdep = int_of_float (float_of_int stores *. dep *. 0.5 +. 0.5) in
  let ops =
    List.init n_ldep (fun _ -> L_dep)
    @ List.init (max 0 (loads - n_ldep)) (fun _ -> L_ind)
    @ List.init n_sdep (fun _ -> St_dep)
    @ List.init (max 0 (stores - n_sdep)) (fun _ -> St_ind)
    @ List.init fp (fun _ -> Fp_op)
    @ List.init (alu / 2) (fun _ -> Alu_chain)
    @ List.init (alu - (alu / 2)) (fun _ -> Alu_ind)
  in
  let arr = Array.of_list ops in
  Prng.shuffle rng arr;
  Array.to_list arr

(* Emit the op mix into the current block. [acc] is the dependency-carrying
   accumulator, [wsptr] holds &ws, [tmp]/[lv]/[ind] are scratch variables. *)
let emit_ops b rng prof ~fp_hint ~acc ~wsptr ~tmp ~lv ~ind ops =
  let ws_size = 1 lsl prof.Profile.working_set_bits in
  (* Realistic locality: most accesses hit a hot window (cache-resident),
     a minority ranges over the whole working set. Without this skew every
     access would be a miss and memory latency would swamp everything the
     instrumentation adds. *)
  let hot_size = min ws_size 16384 in
  let hot_p = 0.97 in
  let mask_of size = (size - 1) land lnot 7 in
  let off_mask () = mask_of (if Prng.chance rng hot_p then hot_size else ws_size) in
  let rand_off () =
    let size = if Prng.chance rng hot_p then hot_size else ws_size in
    Prng.int rng (size / 8) * 8
  in
  let odd () = (2 * Prng.int_in rng 1 1000) + 1 in
  List.iter
    (fun op ->
      match op with
      | L_dep ->
        (* Address derived from acc; loaded value feeds acc: a chase link. *)
        Builder.emit_assign_into b tmp (Var acc);
        Builder.emit_binop_into b tmp And (Var tmp) (Const (off_mask ()));
        Builder.emit_binop_into b tmp Add (Var tmp) (Var wsptr);
        Builder.emit_load_into b lv ~base:(Var tmp) ~offset:0;
        Builder.emit_binop_into b acc Add (Var acc) (Var lv)
      | L_ind ->
        (* Fixed offset, result parked in a side register. *)
        Builder.emit_load_into b ind ~base:(Var wsptr) ~offset:(rand_off ())
      | St_dep ->
        Builder.emit_assign_into b tmp (Var acc);
        Builder.emit_binop_into b tmp And (Var tmp) (Const (off_mask ()));
        Builder.emit_binop_into b tmp Add (Var tmp) (Var wsptr);
        Builder.emit_store b ~base:(Var tmp) ~offset:0 ~src:(Var acc)
      | St_ind -> Builder.emit_store b ~base:(Var wsptr) ~offset:(rand_off ()) ~src:(Var acc)
      | Fp_op ->
        incr fp_hint;
        Builder.emit_fp b !fp_hint
      | Alu_chain ->
        Builder.emit_binop_into b acc Mul (Var acc) (Const (odd ()));
        Builder.emit_binop_into b acc Add (Var acc) (Const (Prng.int rng 4096))
      | Alu_ind -> Builder.emit_binop_into b ind Add (Var ind) (Const (Prng.int rng 64)))
    ops;
  (* Keep the independent results live. *)
  Builder.emit_binop_into b acc Add (Var acc) (Var ind)

let worker_name k = Printf.sprintf "work%d" k

(* Per-iteration op budget split: most memory work happens inside callees
   when the profile makes calls at all. *)
let split_counts prof =
  let calls = prof.Profile.call_ret in
  let worker_share = if calls > 0 then 0.8 else 0.0 in
  let part share rate = int_of_float (float_of_int rate *. share +. 0.5) in
  let per_call share rate = if calls = 0 then 0 else part share rate / calls in
  let inline_share = 1.0 -. worker_share in
  ( (* per worker call *)
    ( per_call worker_share prof.Profile.loads,
      per_call worker_share prof.Profile.stores,
      per_call worker_share prof.Profile.fp_ops ),
    (* inline in main loop *)
    ( part inline_share prof.Profile.loads,
      part inline_share prof.Profile.stores,
      part inline_share prof.Profile.fp_ops ) )

let generate ?(iterations = 50) ?(region_size = safe_region_size) prof =
  if region_size <= 0 || region_size mod 16 <> 0 then
    invalid_arg "Synth.generate: region_size must be a positive multiple of 16";
  Profile.validate prof;
  let rng = Prng.create ~seed:prof.Profile.seed in
  let fp_hint = ref 0 in
  let b = Builder.create () in
  let ws_size = 1 lsl prof.Profile.working_set_bits in
  Builder.add_global b ~name:"ws" ~size:ws_size ();
  Builder.add_global b ~name:"fptab" ~size:(8 * nworkers) ();
  Builder.add_global b ~name:"sysctr" ~size:8 ();
  Builder.add_global b ~name:"saferegion" ~size:region_size ~sensitive:true ();
  let (w_loads, w_stores, w_fp), (i_loads, i_stores, i_fp) = split_counts prof in
  let dep = dep_fraction prof.Profile.dep_chain in
  (* Workers: acc-in, acc-out leaf functions carrying the memory mix. *)
  for k = 0 to nworkers - 1 do
    Builder.start_func b ~name:(worker_name k) ~nparams:1;
    let acc = 0 in
    let wsptr = Builder.emit_addr_of_global b "ws" in
    let tmp = Builder.emit_assign b (Const 0) in
    let lv = Builder.emit_assign b (Const 0) in
    let ind = Builder.emit_assign b (Const (k + 1)) in
    let ops = op_list rng ~loads:w_loads ~stores:w_stores ~fp:w_fp ~alu:(4 + (w_loads / 4)) ~dep in
    emit_ops b rng prof ~fp_hint ~acc ~wsptr ~tmp ~lv ~ind ops;
    Builder.emit_ret b (Some (Var acc))
  done;
  (* Main. *)
  Builder.start_func b ~name:"main" ~nparams:0;
  let acc = Builder.emit_assign b (Const (prof.Profile.seed * 2654435761)) in
  let it = Builder.emit_assign b (Const iterations) in
  let wsptr = Builder.emit_addr_of_global b "ws" in
  let tmp = Builder.emit_assign b (Const 0) in
  let lv = Builder.emit_assign b (Const 0) in
  let ind = Builder.emit_assign b (Const 1) in
  let fpp = Builder.emit_addr_of_global b "fptab" in
  for k = 0 to nworkers - 1 do
    let fa = Builder.emit_addr_of_func b (worker_name k) in
    Builder.emit_store b ~base:(Var fpp) ~offset:(8 * k) ~src:(Var fa)
  done;
  let syscall_period =
    if prof.Profile.syscalls <= 0.0 then 0
    else max 1 (int_of_float (1.0 /. prof.Profile.syscalls +. 0.5))
  in
  let scp = Builder.emit_addr_of_global b "sysctr" in
  Builder.emit_store b ~base:(Var scp) ~offset:0 ~src:(Const syscall_period);
  Builder.emit_br b "loop";
  Builder.start_block b "loop";
  (* Inline portion of the mix. *)
  let inline_ops =
    op_list rng ~loads:i_loads ~stores:i_stores ~fp:i_fp ~alu:(6 + (i_loads / 4)) ~dep
  in
  emit_ops b rng prof ~fp_hint ~acc ~wsptr ~tmp ~lv ~ind inline_ops;
  (* Calls: the first [indirect] sites go through the function-pointer
     table, the rest are direct; targets rotate over the workers. *)
  for c = 0 to prof.Profile.call_ret - 1 do
    let k = c mod nworkers in
    if c < prof.Profile.indirect then begin
      Builder.emit_load_into b lv ~base:(Var fpp) ~offset:(8 * k);
      match Builder.emit_call_ind b ~dst:true (Var lv) [ Var acc ] with
      | Some d -> Builder.emit_binop_into b acc Add (Var acc) (Var d)
      | None -> ()
    end
    else
      match Builder.emit_call b ~dst:true (worker_name k) [ Var acc ] with
      | Some d -> Builder.emit_binop_into b acc Add (Var acc) (Var d)
      | None -> ()
  done;
  (* Syscall at the profile's period. *)
  if syscall_period > 0 then begin
    Builder.emit_load_into b tmp ~base:(Var scp) ~offset:0;
    Builder.emit_binop_into b tmp Sub (Var tmp) (Const 1);
    Builder.emit_store b ~base:(Var scp) ~offset:0 ~src:(Var tmp);
    Builder.emit_cbr b Le (Var tmp) (Const 0) ~if_true:"do_sys" ~if_false:"tail";
    Builder.start_block b "do_sys";
    let nr = if prof.Profile.io_bound then X86sim.Cpu.sys_io else X86sim.Cpu.sys_nop in
    ignore (Builder.emit_syscall b (Const nr) []);
    Builder.emit_store b ~base:(Var scp) ~offset:0 ~src:(Const syscall_period);
    Builder.emit_br b "tail"
  end
  else Builder.emit_br b "tail";
  Builder.start_block b "tail";
  Builder.emit_binop_into b it Sub (Var it) (Const 1);
  Builder.emit_cbr b Gt (Var it) (Const 0) ~if_true:"loop" ~if_false:"done";
  Builder.start_block b "done";
  Builder.emit_ret b (Some (Var acc));
  Builder.finish b

let lowered ?iterations ?region_size ?xmm_pool prof =
  Lower.lower ?xmm_pool (generate ?iterations ?region_size prof)
