type ilp = Low_ilp | Med_ilp | High_ilp

type t = {
  name : string;
  loads : int;
  stores : int;
  call_ret : int;
  indirect : int;
  syscalls : float;
  io_bound : bool;
  fp_ops : int;
  working_set_bits : int;
  dep_chain : ilp;
  seed : int;
}

let validate t =
  let fail what = invalid_arg (Printf.sprintf "Profile %s: %s" t.name what) in
  if t.loads < 0 || t.loads > 600 then fail "loads out of range";
  if t.stores < 0 || t.stores > 400 then fail "stores out of range";
  if t.call_ret < 0 || t.call_ret > 60 then fail "call_ret out of range";
  if t.indirect < 0 || t.indirect > t.call_ret + 10 then fail "indirect out of range";
  if t.syscalls < 0.0 || t.syscalls > 10.0 then fail "syscalls out of range";
  if t.fp_ops < 0 || t.fp_ops > 600 then fail "fp_ops out of range";
  if t.working_set_bits < 10 || t.working_set_bits > 26 then fail "working set out of range"
