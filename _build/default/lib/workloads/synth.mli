(** Deterministic synthetic-program generation from a {!Profile}.

    The generated module has the shape of a compiled C benchmark:

    - a working-set global [ws] of the profile's size, accessed with a
      blend of dependent (pointer-chase-like) and independent
      (streaming-like) loads per the profile's ILP class;
    - four worker functions called directly and through a function-pointer
      table [fptab] (the indirect-branch density), with real
      prologues/epilogues and register-resident accumulators;
    - a main loop whose iteration executes roughly the profile's per-1000
      mix of loads, stores, fp ops and calls, and a counter-driven
      [syscall] at the profile's syscall period;
    - a 16-byte sensitive global [saferegion] that the {e program never
      touches} — it models a defense's safe region, so domain-based
      techniques pay pure switching cost on it (the Figures 4-6 setup:
      "crypt on a single 128-bit chunk").

    Everything is derived from the profile's seed; two calls with the same
    arguments build identical modules. *)

val nworkers : int
(** 4. *)

val safe_region_size : int
(** 16 bytes — one AES chunk, per the paper's Figures 4-6. *)

val generate : ?iterations:int -> ?region_size:int -> Profile.t -> Ir.Ir_types.modul
(** [iterations] (default 50) scales run length, not program shape.
    [region_size] (default {!safe_region_size}, multiple of 16) sizes the
    safe region — the knob behind the paper's crypt-vs-region-size
    experiment. *)

val lowered :
  ?iterations:int ->
  ?region_size:int ->
  ?xmm_pool:X86sim.Reg.xmm list ->
  Profile.t ->
  Ir.Lower.t
(** Generate and lower in one step. *)
