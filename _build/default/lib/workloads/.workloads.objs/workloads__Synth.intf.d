lib/workloads/synth.mli: Ir Profile X86sim
