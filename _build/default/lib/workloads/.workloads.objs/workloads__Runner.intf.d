lib/workloads/runner.mli: Memsentry Profile
