lib/workloads/servers.mli: Profile
