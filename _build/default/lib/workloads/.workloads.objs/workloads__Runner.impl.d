lib/workloads/runner.ml: Cpu Framework Ir List Memsentry Ms_util Printf Profile Synth Technique X86sim
