lib/workloads/spec2006.ml: List Profile String
