lib/workloads/synth.ml: Array Builder Ir Ir_types List Lower Ms_util Printf Prng Profile X86sim
