lib/workloads/servers.ml: List Profile
