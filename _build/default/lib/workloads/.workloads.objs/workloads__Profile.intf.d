lib/workloads/profile.mli:
