(* AES-128 per FIPS-197, structured around the x86 AES-NI instruction
   semantics (Intel SDM vol. 2): one round per primitive, caller-managed
   round keys, equivalent inverse cipher for decryption.

   State layout follows the hardware: byte [r + 4*c] of the 16-byte block is
   state row [r], column [c]. *)

type block = Bytes.t

let sbox = [|
  0x63; 0x7c; 0x77; 0x7b; 0xf2; 0x6b; 0x6f; 0xc5; 0x30; 0x01; 0x67; 0x2b; 0xfe; 0xd7; 0xab; 0x76;
  0xca; 0x82; 0xc9; 0x7d; 0xfa; 0x59; 0x47; 0xf0; 0xad; 0xd4; 0xa2; 0xaf; 0x9c; 0xa4; 0x72; 0xc0;
  0xb7; 0xfd; 0x93; 0x26; 0x36; 0x3f; 0xf7; 0xcc; 0x34; 0xa5; 0xe5; 0xf1; 0x71; 0xd8; 0x31; 0x15;
  0x04; 0xc7; 0x23; 0xc3; 0x18; 0x96; 0x05; 0x9a; 0x07; 0x12; 0x80; 0xe2; 0xeb; 0x27; 0xb2; 0x75;
  0x09; 0x83; 0x2c; 0x1a; 0x1b; 0x6e; 0x5a; 0xa0; 0x52; 0x3b; 0xd6; 0xb3; 0x29; 0xe3; 0x2f; 0x84;
  0x53; 0xd1; 0x00; 0xed; 0x20; 0xfc; 0xb1; 0x5b; 0x6a; 0xcb; 0xbe; 0x39; 0x4a; 0x4c; 0x58; 0xcf;
  0xd0; 0xef; 0xaa; 0xfb; 0x43; 0x4d; 0x33; 0x85; 0x45; 0xf9; 0x02; 0x7f; 0x50; 0x3c; 0x9f; 0xa8;
  0x51; 0xa3; 0x40; 0x8f; 0x92; 0x9d; 0x38; 0xf5; 0xbc; 0xb6; 0xda; 0x21; 0x10; 0xff; 0xf3; 0xd2;
  0xcd; 0x0c; 0x13; 0xec; 0x5f; 0x97; 0x44; 0x17; 0xc4; 0xa7; 0x7e; 0x3d; 0x64; 0x5d; 0x19; 0x73;
  0x60; 0x81; 0x4f; 0xdc; 0x22; 0x2a; 0x90; 0x88; 0x46; 0xee; 0xb8; 0x14; 0xde; 0x5e; 0x0b; 0xdb;
  0xe0; 0x32; 0x3a; 0x0a; 0x49; 0x06; 0x24; 0x5c; 0xc2; 0xd3; 0xac; 0x62; 0x91; 0x95; 0xe4; 0x79;
  0xe7; 0xc8; 0x37; 0x6d; 0x8d; 0xd5; 0x4e; 0xa9; 0x6c; 0x56; 0xf4; 0xea; 0x65; 0x7a; 0xae; 0x08;
  0xba; 0x78; 0x25; 0x2e; 0x1c; 0xa6; 0xb4; 0xc6; 0xe8; 0xdd; 0x74; 0x1f; 0x4b; 0xbd; 0x8b; 0x8a;
  0x70; 0x3e; 0xb5; 0x66; 0x48; 0x03; 0xf6; 0x0e; 0x61; 0x35; 0x57; 0xb9; 0x86; 0xc1; 0x1d; 0x9e;
  0xe1; 0xf8; 0x98; 0x11; 0x69; 0xd9; 0x8e; 0x94; 0x9b; 0x1e; 0x87; 0xe9; 0xce; 0x55; 0x28; 0xdf;
  0x8c; 0xa1; 0x89; 0x0d; 0xbf; 0xe6; 0x42; 0x68; 0x41; 0x99; 0x2d; 0x0f; 0xb0; 0x54; 0xbb; 0x16;
|]

let inv_sbox =
  let t = Array.make 256 0 in
  Array.iteri (fun i v -> t.(v) <- i) sbox;
  t

let check_block b name =
  if Bytes.length b <> 16 then invalid_arg (Printf.sprintf "Aes.%s: block must be 16 bytes" name)

let block_of_hex s =
  if String.length s <> 32 then invalid_arg "Aes.block_of_hex: need 32 hex digits";
  let b = Bytes.create 16 in
  for i = 0 to 15 do
    Bytes.set_uint8 b i (int_of_string ("0x" ^ String.sub s (2 * i) 2))
  done;
  b

let hex_of_block b =
  check_block b "hex_of_block";
  let buf = Buffer.create 32 in
  Bytes.iter (fun c -> Buffer.add_string buf (Printf.sprintf "%02x" (Char.code c))) b;
  Buffer.contents buf

let xor_block a b =
  check_block a "xor_block";
  check_block b "xor_block";
  let out = Bytes.create 16 in
  for i = 0 to 15 do
    Bytes.set_uint8 out i (Bytes.get_uint8 a i lxor Bytes.get_uint8 b i)
  done;
  out

(* GF(2^8) multiplication with the AES polynomial x^8+x^4+x^3+x+1. *)
let gmul a b =
  let rec go a b acc =
    if b = 0 then acc
    else
      let acc = if b land 1 = 1 then acc lxor a else acc in
      let a = if a land 0x80 <> 0 then ((a lsl 1) lxor 0x11b) land 0xff else (a lsl 1) land 0xff in
      go a (b lsr 1) acc
  in
  go a b 0

let map_bytes f b =
  let out = Bytes.create 16 in
  for i = 0 to 15 do
    Bytes.set_uint8 out i (f (Bytes.get_uint8 b i))
  done;
  out

let sub_bytes b = map_bytes (fun v -> sbox.(v)) b
let inv_sub_bytes b = map_bytes (fun v -> inv_sbox.(v)) b

(* Row r is rotated left by r positions: out[r + 4c] = in[r + 4((c+r) mod 4)]. *)
let shift_rows b =
  let out = Bytes.create 16 in
  for r = 0 to 3 do
    for c = 0 to 3 do
      Bytes.set_uint8 out (r + (4 * c)) (Bytes.get_uint8 b (r + (4 * ((c + r) mod 4))))
    done
  done;
  out

let inv_shift_rows b =
  let out = Bytes.create 16 in
  for r = 0 to 3 do
    for c = 0 to 3 do
      Bytes.set_uint8 out (r + (4 * ((c + r) mod 4))) (Bytes.get_uint8 b (r + (4 * c)))
    done
  done;
  out

let mix_columns_with m b =
  let out = Bytes.create 16 in
  for c = 0 to 3 do
    let s i = Bytes.get_uint8 b ((4 * c) + i) in
    for r = 0 to 3 do
      let v =
        gmul m.(r).(0) (s 0) lxor gmul m.(r).(1) (s 1)
        lxor gmul m.(r).(2) (s 2) lxor gmul m.(r).(3) (s 3)
      in
      Bytes.set_uint8 out ((4 * c) + r) v
    done
  done;
  out

let mc_fwd = [| [| 2; 3; 1; 1 |]; [| 1; 2; 3; 1 |]; [| 1; 1; 2; 3 |]; [| 3; 1; 1; 2 |] |]
let mc_inv = [| [| 14; 11; 13; 9 |]; [| 9; 14; 11; 13 |]; [| 13; 9; 14; 11 |]; [| 11; 13; 9; 14 |] |]

let mix_columns b = mix_columns_with mc_fwd b
let inv_mix_columns b = mix_columns_with mc_inv b

let aesenc state key =
  check_block state "aesenc";
  check_block key "aesenc";
  xor_block (mix_columns (sub_bytes (shift_rows state))) key

let aesenclast state key =
  check_block state "aesenclast";
  check_block key "aesenclast";
  xor_block (sub_bytes (shift_rows state)) key

let aesdec state key =
  check_block state "aesdec";
  check_block key "aesdec";
  xor_block (inv_mix_columns (inv_sub_bytes (inv_shift_rows state))) key

let aesdeclast state key =
  check_block state "aesdeclast";
  check_block key "aesdeclast";
  xor_block (inv_sub_bytes (inv_shift_rows state)) key

let aesimc key =
  check_block key "aesimc";
  inv_mix_columns key

let get_dword b i =
  Bytes.get_uint8 b (4 * i)
  lor (Bytes.get_uint8 b ((4 * i) + 1) lsl 8)
  lor (Bytes.get_uint8 b ((4 * i) + 2) lsl 16)
  lor (Bytes.get_uint8 b ((4 * i) + 3) lsl 24)

let set_dword b i v =
  Bytes.set_uint8 b (4 * i) (v land 0xff);
  Bytes.set_uint8 b ((4 * i) + 1) ((v lsr 8) land 0xff);
  Bytes.set_uint8 b ((4 * i) + 2) ((v lsr 16) land 0xff);
  Bytes.set_uint8 b ((4 * i) + 3) ((v lsr 24) land 0xff)

let sub_word w =
  sbox.(w land 0xff)
  lor (sbox.((w lsr 8) land 0xff) lsl 8)
  lor (sbox.((w lsr 16) land 0xff) lsl 16)
  lor (sbox.((w lsr 24) land 0xff) lsl 24)

(* Byte rotation [a0;a1;a2;a3] -> [a1;a2;a3;a0]; on a little-endian dword
   this is a 32-bit rotate right by 8. *)
let rot_word w = ((w lsr 8) lor (w lsl 24)) land 0xffffffff

let aeskeygenassist src rcon =
  check_block src "aeskeygenassist";
  let x1 = get_dword src 1 and x3 = get_dword src 3 in
  let out = Bytes.create 16 in
  set_dword out 0 (sub_word x1);
  set_dword out 1 (rot_word (sub_word x1) lxor rcon);
  set_dword out 2 (sub_word x3);
  set_dword out 3 (rot_word (sub_word x3) lxor rcon);
  out

let rcons = [| 0x01; 0x02; 0x04; 0x08; 0x10; 0x20; 0x40; 0x80; 0x1b; 0x36 |]

let expand_key key =
  check_block key "expand_key";
  let keys = Array.make 11 key in
  for round = 1 to 10 do
    let prev = keys.(round - 1) in
    let assist = aeskeygenassist prev rcons.(round - 1) in
    let t = get_dword assist 3 in
    let k = Bytes.create 16 in
    let k0 = get_dword prev 0 lxor t in
    let k1 = get_dword prev 1 lxor k0 in
    let k2 = get_dword prev 2 lxor k1 in
    let k3 = get_dword prev 3 lxor k2 in
    set_dword k 0 k0;
    set_dword k 1 k1;
    set_dword k 2 k2;
    set_dword k 3 k3;
    keys.(round) <- k
  done;
  keys

let inv_round_keys keys =
  if Array.length keys <> 11 then invalid_arg "Aes.inv_round_keys: need 11 round keys";
  Array.mapi (fun i k -> if i = 0 || i = 10 then k else aesimc k) keys

let encrypt_block ~key block =
  if Array.length key <> 11 then invalid_arg "Aes.encrypt_block: need 11 round keys";
  check_block block "encrypt_block";
  let state = ref (xor_block block key.(0)) in
  for round = 1 to 9 do
    state := aesenc !state key.(round)
  done;
  aesenclast !state key.(10)

let decrypt_block ~key block =
  if Array.length key <> 11 then invalid_arg "Aes.decrypt_block: need 11 round keys";
  check_block block "decrypt_block";
  let dk = inv_round_keys key in
  let state = ref (xor_block block dk.(10)) in
  for round = 9 downto 1 do
    state := aesdec !state dk.(round)
  done;
  aesdeclast !state dk.(0)

let map_blocks f ~key buf =
  let n = Bytes.length buf in
  if n mod 16 <> 0 then invalid_arg "Aes: buffer length must be a multiple of 16";
  let out = Bytes.create n in
  for i = 0 to (n / 16) - 1 do
    let chunk = Bytes.sub buf (16 * i) 16 in
    Bytes.blit (f ~key chunk) 0 out (16 * i) 16
  done;
  out

let encrypt_bytes ~key buf = map_blocks encrypt_block ~key buf
let decrypt_bytes ~key buf = map_blocks decrypt_block ~key buf
