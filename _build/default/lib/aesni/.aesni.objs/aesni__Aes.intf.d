lib/aesni/aes.mli: Bytes
