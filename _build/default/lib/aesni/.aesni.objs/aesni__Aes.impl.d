lib/aesni/aes.ml: Array Buffer Bytes Char Printf String
