(** AES-128 block cipher, implemented from FIPS-197.

    This is the software reference behind the simulator's AES-NI
    instructions. Two layers are exposed:

    - the {e x86 instruction semantics} ([aesenc], [aesdec], ...), which
      operate on one 128-bit state exactly like the corresponding Intel
      instructions (one round per call, round key supplied by the caller,
      [aesdec] expecting [aesimc]-transformed keys), and
    - a convenience {e full cipher} ([encrypt_block] / [decrypt_block])
      composed from those instruction primitives, verified against the
      FIPS-197 appendix C vectors in the test suite.

    Blocks and round keys are 16-byte [Bytes.t] values. Functions never
    mutate their inputs; each returns a fresh block. *)

type block = Bytes.t
(** Exactly 16 bytes. All functions raise [Invalid_argument] otherwise. *)

val block_of_hex : string -> block
(** Parse 32 hex digits into a block. *)

val hex_of_block : block -> string
(** Lowercase hex rendering, 32 digits. *)

val xor_block : block -> block -> block
(** Byte-wise xor ([pxor] on the simulator). *)

val aesenc : block -> block -> block
(** [aesenc state key] = [MixColumns (ShiftRows (SubBytes state)) xor key] —
    one full encryption round, matching the x86 [aesenc] instruction. *)

val aesenclast : block -> block -> block
(** Final encryption round: no MixColumns. *)

val aesdec : block -> block -> block
(** One equivalent-inverse-cipher decryption round (x86 [aesdec]); the
    round key must have been passed through {!aesimc} first. *)

val aesdeclast : block -> block -> block
(** Final decryption round. Uses the plain (untransformed) round key. *)

val aesimc : block -> block
(** InvMixColumns of a round key, as the x86 [aesimc] instruction. *)

val aeskeygenassist : block -> int -> block
(** [aeskeygenassist src rcon] matches the x86 instruction: produces the
    SubWord/RotWord helper words used by the AES-128 key schedule. *)

val expand_key : block -> block array
(** The 11 round keys of AES-128 (index 0 is the cipher key itself), built
    with {!aeskeygenassist} exactly as compiler intrinsics do. *)

val inv_round_keys : block array -> block array
(** Decryption schedule for the equivalent inverse cipher: keys 1..9 are
    {!aesimc}-transformed, 0 and 10 are passed through. This is the 9-round
    [aesimc] sequence whose cost the paper reports in Table 4. *)

val encrypt_block : key:block array -> block -> block
(** Full AES-128 encryption of one block with an {!expand_key} schedule. *)

val decrypt_block : key:block array -> block -> block
(** Full AES-128 decryption; [key] is the {e encryption} schedule (the
    inverse schedule is derived internally via {!inv_round_keys}). *)

val encrypt_bytes : key:block array -> Bytes.t -> Bytes.t
(** ECB over a buffer whose length is a multiple of 16 (the paper's
    "crypt" technique encrypts safe regions in 128-bit chunks). *)

val decrypt_bytes : key:block array -> Bytes.t -> Bytes.t
(** Inverse of {!encrypt_bytes}. *)
