open X86sim
open Ms_util

type t = { cpu : Cpu.t; table : Memsentry.Safe_region.region }

let capacity t = t.table.Memsentry.Safe_region.size / 8

let create cpu ?(seed = 11) ~key_table () =
  let t = { cpu; table = key_table } in
  let rng = Prng.create ~seed in
  for slot = 0 to capacity t - 1 do
    (* Truncate to 62 bits so the value round-trips through the machine's
       native-int memory words. *)
    let key = Int64.to_int (Int64.shift_right_logical (Prng.next_int64 rng) 2) in
    Mmu.poke64 cpu.Cpu.mmu ~va:(key_table.Memsentry.Safe_region.va + (8 * slot)) key
  done;
  t

let key t ~slot =
  if slot < 0 || slot >= capacity t then invalid_arg "Ptr_encrypt: slot out of range";
  Mmu.peek64 t.cpu.Cpu.mmu ~va:(t.table.Memsentry.Safe_region.va + (8 * slot))

let encrypt t ~slot ptr = ptr lxor key t ~slot
let decrypt t ~slot cipher = cipher lxor key t ~slot
