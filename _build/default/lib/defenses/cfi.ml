open X86sim

let violation_label = "cfi_violation"
let table_capacity = 16

let tmp = Ir.Lower.scratch1

let safe insn = { Ir.Lower.item = Program.I insn; cls = Ir.Lower.Data_access; safe = true }
let plain insn = { Ir.Lower.item = Program.I insn; cls = Ir.Lower.Plain; safe = false }
let label l = { Ir.Lower.item = Program.Label l; cls = Ir.Lower.Plain; safe = false }

(* Function entry labels present in the lowered code, in order. *)
let function_labels mitems =
  List.filter_map
    (fun (mi : Ir.Lower.mitem) ->
      match mi.Ir.Lower.item with
      | Program.Label l when String.length l > 3 && String.sub l 0 3 = "fn_" -> Some l
      | Program.Label _ | Program.I _ -> None)
    mitems

(* target register -> compare against each table slot; fall through to the
   violation stub when nothing matches. *)
let guard_seq ~region_va ~nfuncs ~reg ~ok_label =
  List.concat
    (List.init nfuncs (fun slot ->
         [
           safe (Insn.Load (tmp, Insn.mem_abs (region_va + (8 * slot))));
           plain (Insn.Cmp_rr (reg, tmp));
           plain (Insn.Jcc (Insn.Eq, Insn.target ok_label));
         ]))
  @ [ plain (Insn.Jmp (Insn.target violation_label)) ]

let apply ~region_va (lowered : Ir.Lower.t) =
  let funcs = function_labels lowered.Ir.Lower.mitems in
  let nfuncs = List.length funcs in
  if nfuncs > table_capacity then invalid_arg "Cfi.apply: too many functions for the table";
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "cfiok%d" !counter
  in
  let fill =
    List.concat
      (List.mapi
         (fun slot fn ->
           [
             plain (Insn.Mov_label (tmp, Insn.target fn));
             safe (Insn.Store (Insn.mem_abs (region_va + (8 * slot)), tmp));
           ])
         funcs)
  in
  let rewritten =
    List.concat_map
      (fun (mi : Ir.Lower.mitem) ->
        match mi.Ir.Lower.item with
        | Program.Label "main" -> mi :: fill
        | Program.I (Insn.Call_r reg) | Program.I (Insn.Jmp_r reg) ->
          let ok = fresh () in
          guard_seq ~region_va ~nfuncs ~reg ~ok_label:ok @ [ label ok; mi ]
        | Program.I _ | Program.Label _ -> [ mi ])
      lowered.Ir.Lower.mitems
  in
  let stub = [ label violation_label; plain Insn.Halt ] in
  { lowered with Ir.Lower.mitems = rewritten @ stub }
