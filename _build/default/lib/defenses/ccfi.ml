open X86sim

exception Mac_failure of { slot : int }

type t = { keys : Aesni.Aes.block array }

type sealed = { cipher : Bytes.t }

let aes_ops_per_seal = 10

let key_reg r = 4 + r

let create cpu ?(seed = 77) () =
  let rng = Ms_util.Prng.create ~seed in
  let kb = Bytes.create 16 in
  Bytes.set_int64_le kb 0 (Ms_util.Prng.next_int64 rng);
  Bytes.set_int64_le kb 8 (Ms_util.Prng.next_int64 rng);
  let keys = Aesni.Aes.expand_key kb in
  Array.iteri (fun r k -> Cpu.set_ymm_high cpu (key_reg r) k) keys;
  { keys }

(* The sealed bundle is AES(key, ptr64 || slot32 || tag32): decryption
   both recovers the pointer and authenticates it, because a forged or
   relocated ciphertext decrypts to a bundle whose slot/tag check fails. *)
let tag = 0x0CF1

let plaintext ~slot ptr =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int ptr);
  Bytes.set_int64_le b 8 (Int64.of_int ((slot lsl 16) lor tag));
  b

let seal t ~slot ptr =
  if slot < 0 then invalid_arg "Ccfi.seal: negative slot";
  { cipher = Aesni.Aes.encrypt_block ~key:t.keys (plaintext ~slot ptr) }

let unseal t ~slot sealed =
  let plain = Aesni.Aes.decrypt_block ~key:t.keys sealed.cipher in
  let meta = Int64.to_int (Bytes.get_int64_le plain 8) in
  if meta land 0xFFFF <> tag || meta lsr 16 <> slot then raise (Mac_failure { slot });
  Int64.to_int (Bytes.get_int64_le plain 0)
