open X86sim
open Ms_util

exception Heap_error of string

type t = {
  cpu : Cpu.t;
  rng : Prng.t;
  base : int;
  slot_size : int;
  slots : int;
  meta : Memsentry.Safe_region.region;
}

let heap_area = 0x34_0000_0000

let create cpu ?(seed = 7) ~slot_size ~slots ~meta_region () =
  if slot_size <= 0 || slot_size mod 8 <> 0 then
    invalid_arg "Safe_alloc.create: slot_size must be a positive multiple of 8";
  if slots <= 0 then invalid_arg "Safe_alloc.create: need at least one slot";
  if meta_region.Memsentry.Safe_region.size < 8 * slots then
    invalid_arg "Safe_alloc.create: metadata region too small";
  Mmu.map_range cpu.Cpu.mmu ~va:heap_area ~len:(slot_size * slots) ~writable:true;
  { cpu; rng = Prng.create ~seed; base = heap_area; slot_size; slots; meta = meta_region }

(* Metadata accessors: one word per slot in the safe region (0 = free). *)
let meta_va t slot = t.meta.Memsentry.Safe_region.va + (8 * slot)
let slot_used t slot = Mmu.peek64 t.cpu.Cpu.mmu ~va:(meta_va t slot) <> 0
let set_slot t slot v = Mmu.poke64 t.cpu.Cpu.mmu ~va:(meta_va t slot) v

let live_count t =
  let n = ref 0 in
  for s = 0 to t.slots - 1 do
    if slot_used t s then incr n
  done;
  !n

let heap_base t = t.base
let contains t addr = addr >= t.base && addr < t.base + (t.slot_size * t.slots)

(* DieHard-style: sample random slots until a free one is found (the heap
   is meant to be over-provisioned, so this terminates quickly), with a
   bounded linear fallback for nearly-full heaps. *)
let malloc t =
  let rec sample attempts =
    if attempts = 0 then
      let rec linear s =
        if s = t.slots then raise (Heap_error "out of memory")
        else if not (slot_used t s) then s
        else linear (s + 1)
      in
      linear 0
    else
      let s = Prng.int t.rng t.slots in
      if slot_used t s then sample (attempts - 1) else s
  in
  let slot = sample (4 * t.slots) in
  set_slot t slot 1;
  t.base + (slot * t.slot_size)

let free t addr =
  if not (contains t addr) then raise (Heap_error "free of non-heap pointer");
  if (addr - t.base) mod t.slot_size <> 0 then raise (Heap_error "free of interior pointer");
  let slot = (addr - t.base) / t.slot_size in
  if not (slot_used t slot) then raise (Heap_error "double free");
  set_slot t slot 0
