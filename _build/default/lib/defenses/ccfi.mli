(** CCFI-style cryptographically enforced pointer integrity (Mashtizadeh
    et al. \[44\], paper §2.2).

    Every stored code pointer is replaced by an AES-MAC'd bundle: the
    pointer block carries the pointer value, its storage location (so a
    valid bundle cannot be replayed at another slot) and a class tag. The
    AES key lives in registers (here: ymm high halves on the CPU) and
    never in memory. Verification recomputes the MAC; a corrupted or
    relocated bundle raises {!Mac_failure}.

    Compared with {!Ptr_encrypt} (ASLR-Guard's xor scheme) this is the
    expensive-but-stronger end of the spectrum the paper sketches —
    per-operation AES instead of xor (CCFI measured 3.5x on SPEC). *)

exception Mac_failure of { slot : int }

type t

type sealed = { cipher : Bytes.t }
(** An opaque 16-byte sealed pointer as stored in memory. *)

val create : X86sim.Cpu.t -> ?seed:int -> unit -> t
(** Derive the MAC key and park its schedule in ymm high halves
    (ymm4-14, like crypt). *)

val seal : t -> slot:int -> int -> sealed
(** Seal pointer value for storage location [slot]. *)

val unseal : t -> slot:int -> sealed -> int
(** Verify and recover. Raises {!Mac_failure} on tampering or on replay
    at a different slot. *)

val aes_ops_per_seal : int
(** Cost in AES rounds of one seal (= one unseal): 10, the per-pointer
    price that made CCFI 3.5x. *)
