open X86sim
open Ms_util

type t = { secret_va : int; size : int; entropy_bits : int }

let range_base = 0x40_0000_0000

let hide cpu ?(seed = 1337) ?(entropy_bits = 28) ~size ~secret () =
  if entropy_bits < 4 || entropy_bits > 34 then
    invalid_arg "Info_hiding.hide: entropy_bits out of range";
  let rng = Prng.create ~seed in
  let page = Physmem.page_size in
  let slots = 1 lsl entropy_bits in
  let secret_va = range_base + (Prng.int rng slots * page) in
  Mmu.map_range cpu.Cpu.mmu ~va:secret_va ~len:size ~writable:true;
  Mmu.poke64 cpu.Cpu.mmu ~va:secret_va secret;
  { secret_va; size; entropy_bits }

let probe_space t = (range_base, range_base + ((1 lsl t.entropy_bits) * Physmem.page_size))
