(** Timely rerandomization (TASR \[7\] / Shuffler \[67\] style): instead of
    hiding the safe region once, keep {e moving} it — classically at every
    I/O event — so a leaked address goes stale before it can be used.

    The moving-target defense narrows but does not close the window: any
    leak-to-use race that fits between two moves still wins, and oracles
    that are faster than the move cadence (the allocation oracle needs
    ~log2(entropy) probes) re-locate the region at will. The attacks tests
    demonstrate both outcomes; MemSentry's deterministic isolation has no
    window at all. *)

type t

val create :
  X86sim.Cpu.t -> ?seed:int -> ?entropy_bits:int -> size:int -> secret:int -> unit -> t
(** Place the region randomly (like {!Info_hiding.hide}) and remember how
    to move it. *)

val current_va : t -> int
(** Defense-internal knowledge; attack code must not call this. *)

val probe_space : t -> int * int

val rerandomize : t -> unit
(** Move the region to a fresh random address: map the new location, copy
    the contents, unmap the old one (TASR's remap-on-I/O). *)

val moves : t -> int
(** How many times the region has moved. *)
