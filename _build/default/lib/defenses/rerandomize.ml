open X86sim
open Ms_util

type t = {
  cpu : Cpu.t;
  rng : Prng.t;
  size : int;
  entropy_bits : int;
  mutable va : int;
  mutable move_count : int;
}

let range_base = 0x48_0000_0000

let place rng entropy_bits =
  range_base + (Prng.int rng (1 lsl entropy_bits) * Physmem.page_size)

let create cpu ?(seed = 4242) ?(entropy_bits = 24) ~size ~secret () =
  if entropy_bits < 4 || entropy_bits > 34 then
    invalid_arg "Rerandomize.create: entropy_bits out of range";
  let rng = Prng.create ~seed in
  let va = place rng entropy_bits in
  Mmu.map_range cpu.Cpu.mmu ~va ~len:size ~writable:true;
  Mmu.poke64 cpu.Cpu.mmu ~va secret;
  { cpu; rng; size; entropy_bits; va; move_count = 0 }

let current_va t = t.va

let probe_space t =
  (range_base, range_base + ((1 lsl t.entropy_bits) * Physmem.page_size))

let rerandomize t =
  let fresh =
    (* Avoid landing on the current spot so a move always invalidates
       leaked addresses. *)
    let rec pick () =
      let va = place t.rng t.entropy_bits in
      if va = t.va then pick () else va
    in
    pick ()
  in
  let contents = Mmu.peek_bytes t.cpu.Cpu.mmu ~va:t.va ~len:t.size in
  Mmu.map_range t.cpu.Cpu.mmu ~va:fresh ~len:t.size ~writable:true;
  Mmu.poke_bytes t.cpu.Cpu.mmu ~va:fresh contents;
  Mmu.unmap_range t.cpu.Cpu.mmu ~va:t.va ~len:t.size;
  t.va <- fresh;
  t.move_count <- t.move_count + 1

let moves t = t.move_count
