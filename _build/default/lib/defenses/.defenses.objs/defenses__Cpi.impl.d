lib/defenses/cpi.ml: Hashtbl Ir List
