lib/defenses/rerandomize.ml: Cpu Mmu Ms_util Physmem Prng X86sim
