lib/defenses/info_hiding.ml: Cpu Mmu Ms_util Physmem Prng X86sim
