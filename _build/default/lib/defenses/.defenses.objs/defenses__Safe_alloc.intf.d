lib/defenses/safe_alloc.mli: Memsentry X86sim
