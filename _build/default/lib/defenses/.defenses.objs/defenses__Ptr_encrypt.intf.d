lib/defenses/ptr_encrypt.mli: Memsentry X86sim
