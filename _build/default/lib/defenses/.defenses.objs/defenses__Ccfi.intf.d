lib/defenses/ccfi.mli: Bytes X86sim
