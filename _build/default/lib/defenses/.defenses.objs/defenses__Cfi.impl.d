lib/defenses/cfi.ml: Insn Ir List Printf Program String X86sim
