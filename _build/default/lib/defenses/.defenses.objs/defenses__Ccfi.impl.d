lib/defenses/ccfi.ml: Aesni Array Bytes Cpu Int64 Ms_util X86sim
