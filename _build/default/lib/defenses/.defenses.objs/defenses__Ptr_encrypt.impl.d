lib/defenses/ptr_encrypt.ml: Cpu Int64 Memsentry Mmu Ms_util Prng X86sim
