lib/defenses/shadow_stack.ml: Cpu Insn Ir List Mmu Printf Program Reg X86sim
