lib/defenses/cpi.mli: Ir
