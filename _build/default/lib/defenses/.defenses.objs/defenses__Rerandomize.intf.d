lib/defenses/rerandomize.mli: X86sim
