lib/defenses/info_hiding.mli: X86sim
