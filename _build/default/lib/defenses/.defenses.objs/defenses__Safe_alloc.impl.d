lib/defenses/safe_alloc.ml: Cpu Memsentry Mmu Ms_util Prng X86sim
