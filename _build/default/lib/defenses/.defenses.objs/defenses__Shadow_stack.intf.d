lib/defenses/shadow_stack.mli: Ir X86sim
