lib/defenses/cfi.mli: Ir
