(** Coarse-grained CFI with a protected target table (paper §2.2
    "Control-flow integrity": CCFIR's springboard / O-CFI's BLT).

    Valid indirect-branch targets live in a table inside a safe region;
    every indirect call is instrumented to verify its target against the
    table and halts on a mismatch. The table reads carry the [safe] flag:
    under MemSentry the table gains {e read} protection too, closing the
    leak the paper warns about ("isolation of these structures is
    essential"). *)

val violation_label : string

val table_capacity : int
(** 16 entries. *)

val apply : region_va:int -> Ir.Lower.t -> Ir.Lower.t
(** Fill the table (at program entry) with the entry points of every
    lowered function and guard each [Call_r]/[Jmp_r]. The region must be
    mapped by the caller and at least [8 * table_capacity] bytes. *)
