(** A SafeStack-style shadow stack (paper §2.2 "Code-pointer separation",
    §4, §6.2).

    Every call site saves its return address to a shadow stack in a safe
    region; every return verifies the on-stack return address against it
    and halts on mismatch (a detected stack-smashing attempt). The shadow
    accesses are emitted with the [safe] flag, so any MemSentry technique
    can be layered on top: address-based passes leave them alone while
    masking everything else (integrity needs [Writes] only), domain-based
    passes bracket exactly them.

    Layout of the region: slot 0 holds the shadow stack pointer; entries
    grow upward from [region_va + 8]. The pass uses the reserved r12/r13
    scratch registers. *)

val default_region_size : int
(** 4 KiB: SSP slot + ~500 frames. *)

val violation_label : string
(** Label of the halt stub reached on a return-address mismatch. *)

val apply : region_va:int -> Ir.Lower.t -> Ir.Lower.t
(** Instrument every call and ret of the lowered module. The caller is
    responsible for making [\[region_va, region_va + default_region_size)]
    a mapped safe region (e.g. {!Memsentry.Safe_region.alloc} and
    [Framework.prepare ~extra_regions]). *)

val shadow_depth : X86sim.Cpu.t -> region_va:int -> int
(** Current number of live shadow entries (for tests). *)
