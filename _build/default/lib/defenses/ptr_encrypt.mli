(** ASLR-Guard-style pointer encryption (paper §2.2): code pointers are
    stored xor-encrypted with a {e per-entry} key from a preallocated key
    table (the AG-RandMap); the table itself is the safe region.

    Per-entry keys make this stronger than PointGuard's single global xor
    key, and cheaper than CCFI's AES. The paper's warning applies
    unchanged: "it is essential to isolate the AG-RandMap not just against
    information disclosures, but also against writes" — a reader learns
    every key; a writer redirects every protected pointer. *)

type t

val create :
  X86sim.Cpu.t -> ?seed:int -> key_table:Memsentry.Safe_region.region -> unit -> t
(** One 64-bit key per 8-byte table slot, generated eagerly. *)

val capacity : t -> int

val encrypt : t -> slot:int -> int -> int
(** [encrypt t ~slot ptr]: xor with the slot's key. Out-of-range slots
    raise [Invalid_argument]. *)

val decrypt : t -> slot:int -> int -> int
(** Inverse of {!encrypt} (xor is an involution, but reads the key from
    the table through the simulated memory, so protection applies). *)
