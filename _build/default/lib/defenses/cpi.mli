(** Code-pointer-integrity-style protection of pointer stores (paper §2.2:
    CPI keeps sensitive code pointers in a safe region; §5.5: finding the
    accesses requires points-to analysis).

    Given the names of globals that hold code pointers, the pass marks
    them [sensitive] (so the backend places them above the 64 TiB split)
    and annotates every access that {e may} touch them — using the static
    points-to analysis, or its PIN-style dynamic refinement — as
    [safe_access], i.e. an authorized instrumentation point.

    This is an IR pass (unlike the machine-level shadow stack/CFI passes):
    it must run before lowering, because moving a global into the
    sensitive partition changes the addresses the backend emits. *)

type analysis = Static | Dynamic
(** [Static]: conservative DSA-style (may over-annotate: [Anything]
    accesses are authorized too). [Dynamic]: interpreter-profiled
    (may under-annotate on unexercised paths — the paper's caveat). *)

val apply : ?analysis:analysis -> pointer_globals:string list -> Ir.Ir_types.modul -> int
(** Mark and annotate; returns the number of accesses annotated.
    Raises [Not_found] for unknown global names. *)
