type analysis = Static | Dynamic

let apply ?(analysis = Static) ~pointer_globals m =
  List.iter
    (fun name -> (Ir.Ir_types.find_global m name).Ir.Ir_types.sensitive <- true)
    pointer_globals;
  let touches_protected ids =
    List.exists (fun g -> List.mem g pointer_globals) ids
  in
  let annotate_ids =
    match analysis with
    | Static ->
      let pt = Ir.Pointsto.analyze m in
      let ids = ref [] in
      Ir.Ir_types.iter_instrs m (fun _ _ ins ->
          match Ir.Pointsto.access_target pt ins.Ir.Ir_types.id with
          | Some Ir.Pointsto.Anything -> ids := ins.Ir.Ir_types.id :: !ids
          | Some (Ir.Pointsto.Objects s) ->
            if touches_protected (Ir.Pointsto.Obj_set.elements s) then
              ids := ins.Ir.Ir_types.id :: !ids
          | None -> ());
      !ids
    | Dynamic ->
      let observed = Ir.Pointsto_dynamic.profile m in
      Hashtbl.fold
        (fun id s acc ->
          if touches_protected (Ir.Pointsto.Obj_set.elements s) then id :: acc else acc)
        observed []
  in
  List.iter (fun id -> Ir.Ir_types.mark_safe_access m id) annotate_ids;
  List.length annotate_ids
