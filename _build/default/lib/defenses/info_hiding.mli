(** Information hiding: the probabilistic baseline every deterministic
    technique replaces (paper §2.1, §2.3).

    The safe region is mapped at a random, unreferenced address in the
    huge 64-bit address space; its secrecy {e is} the protection. The
    attacks library demonstrates the paper's point: allocation oracles,
    spraying and crash-resistant probing all locate the region, after
    which the "defense" is over. *)

type t = {
  secret_va : int;  (** where the region actually is (the hidden fact) *)
  size : int;
  entropy_bits : int;
}

val hide :
  X86sim.Cpu.t -> ?seed:int -> ?entropy_bits:int -> size:int -> secret:int -> unit -> t
(** Map [size] bytes at a page-aligned address with [entropy_bits]
    (default 28, mmap-ASLR-like) of randomness inside the nonsensitive
    partition, and plant [secret] in the first word. Returns the record a
    {e defense} would keep internally — attack code must not read
    [secret_va]; it gets the CPU only. *)

val probe_space : t -> int * int
(** [(lo, hi)] bounds of the randomized placement range (public knowledge:
    the attacker knows the ASLR scheme, not the draw). *)
