(** A DieHard-style randomized heap allocator with isolated metadata
    (paper §2.2 "Sensitive non-control data", §4).

    Placement is uniformly random over an over-provisioned heap
    (probabilistic safety against overflows and reuse), and the
    {e metadata} — the slot occupancy table — lives in a safe region,
    because "the metadata is only used by the allocator; other parts of
    the program and libraries should not be able to access it" (§4).
    Metadata reads/writes go through the simulated machine's memory so a
    MemSentry technique protecting the region genuinely covers them.

    Detected misuse (double free, foreign pointer) raises {!Heap_error};
    the randomized placement is deterministic per seed. *)

exception Heap_error of string

type t

val create :
  X86sim.Cpu.t ->
  ?seed:int ->
  slot_size:int ->
  slots:int ->
  meta_region:Memsentry.Safe_region.region ->
  unit ->
  t
(** Heap of [slots * slot_size] bytes (mapped fresh); metadata bitmap in
    [meta_region] (needs [>= 8 * slots] bytes... one word per slot).
    [slot_size] must be a positive multiple of 8. *)

val malloc : t -> int
(** Address of a fresh randomly-placed slot. Raises {!Heap_error} when
    full. *)

val free : t -> int -> unit
(** Raises {!Heap_error} on double free or a pointer that is not a live
    slot address. *)

val live_count : t -> int

val heap_base : t -> int

val contains : t -> int -> bool
(** Is the address inside the heap area? *)
