open X86sim

let default_region_size = 4096
let violation_label = "ss_violation"

let ssp = Ir.Lower.scratch2 (* r13 holds the shadow stack pointer briefly *)
let tmp = Ir.Lower.scratch1 (* r12 holds the expected return address *)

let safe insn = { Ir.Lower.item = Program.I insn; cls = Ir.Lower.Data_access; safe = true }
let plain insn = { Ir.Lower.item = Program.I insn; cls = Ir.Lower.Plain; safe = false }
let spill insn = { Ir.Lower.item = Program.I insn; cls = Ir.Lower.Spill; safe = false }
let label l = { Ir.Lower.item = Program.Label l; cls = Ir.Lower.Plain; safe = false }

(* Push the address of [ret_label] onto the shadow stack. *)
let push_seq ~region_va ~ret_label =
  [
    plain (Insn.Mov_label (tmp, Insn.target ret_label));
    safe (Insn.Load (ssp, Insn.mem_abs region_va));
    safe (Insn.Store (Insn.mem ~base:ssp 0, tmp));
    plain (Insn.Alu_ri (Insn.Add, ssp, 8));
    safe (Insn.Store (Insn.mem_abs region_va, ssp));
  ]

(* Pop the expected return address and compare it with the one about to be
   consumed by ret (at [rsp]). *)
let check_seq ~region_va =
  [
    safe (Insn.Load (ssp, Insn.mem_abs region_va));
    plain (Insn.Alu_ri (Insn.Sub, ssp, 8));
    safe (Insn.Store (Insn.mem_abs region_va, ssp));
    safe (Insn.Load (tmp, Insn.mem ~base:ssp 0));
    spill (Insn.Load (ssp, Insn.mem ~base:Reg.rsp 0));
    plain (Insn.Cmp_rr (tmp, ssp));
    plain (Insn.Jcc (Insn.Ne, Insn.target violation_label));
  ]

let apply ~region_va (lowered : Ir.Lower.t) =
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "ssret%d" !counter
  in
  let rewritten =
    List.concat_map
      (fun (mi : Ir.Lower.mitem) ->
        match mi.Ir.Lower.item with
        | Program.Label "main" ->
          (* Initialize the shadow stack pointer at program entry. *)
          [
            mi;
            plain (Insn.Mov_ri (tmp, region_va + 8));
            safe (Insn.Store (Insn.mem_abs region_va, tmp));
          ]
        | Program.I (Insn.Call _ | Insn.Call_r _) ->
          let ret_label = fresh () in
          push_seq ~region_va ~ret_label @ [ mi; label ret_label ]
        | Program.I Insn.Ret -> check_seq ~region_va @ [ mi ]
        | Program.I _ | Program.Label _ -> [ mi ])
      lowered.Ir.Lower.mitems
  in
  let stub = [ label violation_label; plain Insn.Halt ] in
  { lowered with Ir.Lower.mitems = rewritten @ stub }

let shadow_depth cpu ~region_va =
  let ssp_value = Mmu.peek64 cpu.Cpu.mmu ~va:region_va in
  (ssp_value - (region_va + 8)) / 8
