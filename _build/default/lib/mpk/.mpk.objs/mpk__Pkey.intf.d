lib/mpk/pkey.mli: X86sim
