lib/mpk/pkey.ml: Cpu Insn Mmu Reg X86sim
