(** MPK system-software layer: key allocation, page tagging, and the
    user-space domain-switch sequences.

    A safe region gets a protection key; its pages are tagged via the
    (kernel-side) [pkey_mprotect] path; the default [pkru] value disables
    access to that key. A domain switch is a [wrpkru] that re-enables (or
    re-disables) the key — pure user-space register traffic, no kernel, no
    TLB work, which is why MPK wins the paper's domain-based comparison.

    [wrpkru] requires rax/rcx/rdx in a fixed state, so the switch sequences
    clobber those registers; the paper notes this clobbering (and the
    resulting spills) as MPK's main hidden cost. Sequences that preserve
    the registers via stack save/restore are provided for use inside
    instrumentation where the registers may be live. *)

type protection = No_access | Read_only | Read_write
(** What the {e default} (closed) state of the safe region permits:
    [No_access] protects confidentiality + integrity, [Read_only]
    protects integrity only (shadow-stack style). *)

val alloc_key : unit -> int
(** Next free key from a process-global allocator (1..15; key 0 is the
    default key). Raises [Failure] when exhausted — the 16-domain limit of
    Table 3. *)

val reset_allocator : unit -> unit
(** Tests/benchmarks: return the allocator to "all keys free". *)

val assign : X86sim.Cpu.t -> va:int -> len:int -> key:int -> unit
(** Tag pages with [key] (kernel-side; flushes the TLB like the real
    syscall's shootdown). *)

val pkru_close : key:int -> protection:protection -> int
(** pkru value that {e disables} the safe region per [protection]
    (all other keys fully enabled). *)

val pkru_open : int
(** pkru value enabling everything (inside an instrumentation point). *)

val close_default : X86sim.Cpu.t -> key:int -> protection:protection -> unit
(** Set the CPU's initial pkru to the closed state. *)

val open_seq : X86sim.Insn.t list
(** Instructions to open the sensitive domain (clobbers rax/rcx/rdx). *)

val close_seq : key:int -> protection:protection -> X86sim.Insn.t list
(** Instructions to close it again (clobbers rax/rcx/rdx). *)

val open_seq_preserving : X86sim.Insn.t list
(** {!open_seq} bracketed by push/pop of the clobbered registers. *)

val close_seq_preserving : key:int -> protection:protection -> X86sim.Insn.t list
