open X86sim

type protection = No_access | Read_only | Read_write

let next_key = ref 1

let alloc_key () =
  if !next_key > 15 then failwith "Pkey.alloc_key: all 16 protection keys in use";
  let k = !next_key in
  incr next_key;
  k

let reset_allocator () = next_key := 1

let assign cpu ~va ~len ~key = Mmu.set_pkey_range cpu.Cpu.mmu ~va ~len ~key

let pkru_close ~key ~protection =
  match protection with
  | No_access -> 1 lsl (2 * key) (* AD *)
  | Read_only -> 1 lsl ((2 * key) + 1) (* WD *)
  | Read_write -> 0

let pkru_open = 0

let close_default cpu ~key ~protection = Cpu.set_pkru cpu (pkru_close ~key ~protection)

let wrpkru_with value =
  [
    Insn.Mov_ri (Reg.rax, value);
    Insn.Mov_ri (Reg.rcx, 0);
    Insn.Mov_ri (Reg.rdx, 0);
    Insn.Wrpkru;
  ]

let open_seq = wrpkru_with pkru_open

let close_seq ~key ~protection = wrpkru_with (pkru_close ~key ~protection)

let preserving seq =
  [ Insn.Push Reg.rax; Insn.Push Reg.rcx; Insn.Push Reg.rdx ]
  @ seq
  @ [ Insn.Pop Reg.rdx; Insn.Pop Reg.rcx; Insn.Pop Reg.rax ]

let open_seq_preserving = preserving open_seq

let close_seq_preserving ~key ~protection = preserving (close_seq ~key ~protection)
