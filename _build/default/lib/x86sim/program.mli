(** Assembled code: a flat instruction array with resolved labels.

    Code lives outside the simulated data address space (Harvard-style):
    a "code address" is an instruction index, which is what call pushes on
    the stack and what function pointers stored in data memory contain.
    Instrumentation passes rewrite item lists before assembly. *)

type item = Label of string | I of Insn.t

type t

val assemble : item list -> t
(** Resolve every {!Insn.target} against the labels in the list.
    Raises [Invalid_argument] on duplicate or undefined labels. Target
    records are patched in place, so an instruction list belongs to the
    one program assembled from it. *)

val code : t -> Insn.t array

val length : t -> int

val label_index : t -> string -> int
(** Instruction index of a label. Raises [Not_found] if absent. *)

val has_label : t -> string -> bool

val labels : t -> (string * int) list
(** All labels, unordered. *)

val fetch : t -> int -> Insn.t
(** [fetch t idx]; raises [Fault.Fault (Gp_fault _)] when [idx] is outside
    the code (wild indirect branch). *)

val pp : Format.formatter -> t -> unit
(** Disassembly listing with label annotations. *)
