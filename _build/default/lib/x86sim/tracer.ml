type entry = { seq : int; rip : int; insn : Insn.t }

type t = {
  cpu : Cpu.t;
  ring : entry option array;
  mutable next : int;
  mutable count : int;
  mutable attached : bool;
}

let attach ?(capacity = 256) ?(filter = fun _ -> true) cpu =
  if capacity <= 0 then invalid_arg "Tracer.attach: capacity must be positive";
  if cpu.Cpu.on_step <> None then
    invalid_arg "Tracer.attach: the CPU already has an on_step hook";
  let t = { cpu; ring = Array.make capacity None; next = 0; count = 0; attached = true } in
  cpu.Cpu.on_step <-
    Some
      (fun c insn ->
        if filter insn then begin
          t.ring.(t.next) <- Some { seq = t.count; rip = c.Cpu.rip; insn };
          t.next <- (t.next + 1) mod capacity;
          t.count <- t.count + 1
        end);
  t

let detach t =
  if t.attached then begin
    t.cpu.Cpu.on_step <- None;
    t.attached <- false
  end

let entries t =
  let cap = Array.length t.ring in
  let ordered = ref [] in
  for k = 0 to cap - 1 do
    match t.ring.((t.next + cap - 1 - k) mod cap) with
    | Some e -> ordered := e :: !ordered
    | None -> ()
  done;
  !ordered

let total t = t.count

let to_string t =
  String.concat "\n"
    (List.map
       (fun e -> Printf.sprintf "%8d  @%-6d %s" e.seq e.rip (Insn.to_string_named e.insn))
       (entries t))
