type mem = { base : Reg.gpr; index : Reg.gpr; scale : int; disp : int }
type target = { tname : string; mutable tidx : int }
type alu = Add | Sub | And | Or | Xor | Shl | Shr | Imul
type cond = Eq | Ne | Lt | Le | Gt | Ge

type t =
  | Nop
  | Halt
  | Mov_rr of Reg.gpr * Reg.gpr
  | Mov_ri of Reg.gpr * int
  | Mov_label of Reg.gpr * target
  | Load of Reg.gpr * mem
  | Store of mem * Reg.gpr
  | Store_i of mem * int
  | Lea of Reg.gpr * mem
  | Lea32 of Reg.gpr * mem
  | Alu_rr of alu * Reg.gpr * Reg.gpr
  | Alu_ri of alu * Reg.gpr * int
  | Cmp_rr of Reg.gpr * Reg.gpr
  | Cmp_ri of Reg.gpr * int
  | Test_rr of Reg.gpr * Reg.gpr
  | Jmp of target
  | Jcc of cond * target
  | Jmp_r of Reg.gpr
  | Call of target
  | Call_r of Reg.gpr
  | Ret
  | Push of Reg.gpr
  | Pop of Reg.gpr
  | Syscall
  | Mfence
  | Cpuid
  | Bnd_set of Reg.bnd * int * int
  | Bndcu of Reg.bnd * Reg.gpr
  | Bndcl of Reg.bnd * Reg.gpr
  | Bndmov_store of mem * Reg.bnd
  | Bndmov_load of Reg.bnd * mem
  | Wrpkru
  | Rdpkru
  | Vmfunc
  | Vmcall
  | Movdqa_load of Reg.xmm * mem
  | Movdqa_store of mem * Reg.xmm
  | Movq_xr of Reg.xmm * Reg.gpr
  | Movq_rx of Reg.gpr * Reg.xmm
  | Pxor of Reg.xmm * Reg.xmm
  | Aesenc of Reg.xmm * Reg.xmm
  | Aesenclast of Reg.xmm * Reg.xmm
  | Aesdec of Reg.xmm * Reg.xmm
  | Aesdeclast of Reg.xmm * Reg.xmm
  | Aeskeygenassist of Reg.xmm * Reg.xmm * int
  | Aesimc of Reg.xmm * Reg.xmm
  | Vext_high of Reg.xmm * Reg.xmm
  | Vins_high of Reg.xmm * Reg.xmm
  | Fp_arith of Reg.xmm * Reg.xmm

let mem ?(base = -1) ?(index = -1) ?(scale = 1) disp = { base; index; scale; disp }
let mem_abs disp = { base = -1; index = -1; scale = 1; disp }
let target tname = { tname; tidx = -1 }

let targets = function
  | Jmp t | Jcc (_, t) | Call t | Mov_label (_, t) -> [ t ]
  | Nop | Halt | Mov_rr _ | Mov_ri _ | Load _ | Store _ | Store_i _ | Lea _ | Lea32 _
  | Alu_rr _ | Alu_ri _ | Cmp_rr _ | Cmp_ri _ | Test_rr _ | Jmp_r _ | Call_r _
  | Ret | Push _ | Pop _ | Syscall | Mfence | Cpuid | Bnd_set _ | Bndcu _
  | Bndcl _ | Bndmov_store _ | Bndmov_load _ | Wrpkru | Rdpkru | Vmfunc | Vmcall
  | Movdqa_load _ | Movdqa_store _ | Movq_xr _ | Movq_rx _ | Pxor _ | Aesenc _
  | Aesenclast _ | Aesdec _ | Aesdeclast _ | Aeskeygenassist _ | Aesimc _
  | Vext_high _ | Vins_high _ | Fp_arith _ -> []

let is_mem_read = function
  | Load _ | Pop _ | Ret | Movdqa_load _ | Bndmov_load _ -> true
  | Nop | Halt | Mov_rr _ | Mov_ri _ | Mov_label _ | Store _ | Store_i _ | Lea _ | Lea32 _
  | Alu_rr _ | Alu_ri _ | Cmp_rr _ | Cmp_ri _ | Test_rr _ | Jmp _ | Jcc _ | Jmp_r _
  | Call _ | Call_r _ | Push _ | Syscall | Mfence | Cpuid | Bnd_set _
  | Bndcu _ | Bndcl _ | Bndmov_store _ | Wrpkru | Rdpkru | Vmfunc | Vmcall
  | Movdqa_store _ | Movq_xr _ | Movq_rx _ | Pxor _ | Aesenc _ | Aesenclast _
  | Aesdec _ | Aesdeclast _ | Aeskeygenassist _ | Aesimc _ | Vext_high _
  | Vins_high _ | Fp_arith _ -> false

let is_mem_write = function
  | Store _ | Store_i _ | Push _ | Call _ | Call_r _ | Movdqa_store _ | Bndmov_store _ -> true
  | Nop | Halt | Mov_rr _ | Mov_ri _ | Mov_label _ | Load _ | Lea _ | Lea32 _ | Alu_rr _
  | Alu_ri _ | Cmp_rr _ | Cmp_ri _ | Test_rr _ | Jmp _ | Jcc _ | Jmp_r _ | Ret | Pop _
  | Syscall | Mfence | Cpuid | Bnd_set _ | Bndcu _ | Bndcl _ | Bndmov_load _
  | Wrpkru | Rdpkru | Vmfunc | Vmcall | Movdqa_load _ | Movq_xr _ | Movq_rx _
  | Pxor _ | Aesenc _ | Aesenclast _ | Aesdec _ | Aesdeclast _
  | Aeskeygenassist _ | Aesimc _ | Vext_high _ | Vins_high _ | Fp_arith _ -> false

let alu_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Or -> "or"
  | Xor -> "xor" | Shl -> "shl" | Shr -> "shr" | Imul -> "imul"

let cond_name = function
  | Eq -> "e" | Ne -> "ne" | Lt -> "l" | Le -> "le" | Gt -> "g" | Ge -> "ge"

let mem_string m =
  let buf = Buffer.create 16 in
  Buffer.add_char buf '[';
  if m.base >= 0 then Buffer.add_string buf (Reg.gpr_name m.base);
  if m.index >= 0 then
    Buffer.add_string buf (Printf.sprintf "+%s*%d" (Reg.gpr_name m.index) m.scale);
  (if m.disp <> 0 || (m.base < 0 && m.index < 0) then
     let has_regs = m.base >= 0 || m.index >= 0 in
     Buffer.add_string buf
       (if m.disp >= 0 then Printf.sprintf (if has_regs then "+%#x" else "%#x") m.disp
        else Printf.sprintf "-%#x" (-m.disp)));
  Buffer.add_char buf ']';
  Buffer.contents buf

let target_string t =
  if t.tidx >= 0 then Printf.sprintf "%s(@%d)" t.tname t.tidx else t.tname

let g = Reg.gpr_name
let x i = Printf.sprintf "xmm%d" i

(* Negative immediates print in decimal so the text round-trips through
   the assembler (hex of a negative int would re-parse as a huge positive). *)
let imm i = if i < 0 then string_of_int i else Printf.sprintf "%#x" i

let to_string_gen tgt = function
  | Nop -> "nop"
  | Halt -> "hlt"
  | Mov_rr (d, s) -> Printf.sprintf "mov %s, %s" (g d) (g s)
  | Mov_ri (d, i) -> Printf.sprintf "mov %s, %s" (g d) (imm i)
  | Mov_label (d, t) -> Printf.sprintf "lea %s, [%s]" (g d) (tgt t)
  | Load (d, m) -> Printf.sprintf "mov %s, %s" (g d) (mem_string m)
  | Store (m, s) -> Printf.sprintf "mov %s, %s" (mem_string m) (g s)
  | Store_i (m, i) -> Printf.sprintf "mov %s, %s" (mem_string m) (imm i)
  | Lea (d, m) -> Printf.sprintf "lea %s, %s" (g d) (mem_string m)
  | Lea32 (d, m) -> Printf.sprintf "lea32 %s, %s" (g d) (mem_string m)
  | Alu_rr (op, d, s) -> Printf.sprintf "%s %s, %s" (alu_name op) (g d) (g s)
  | Alu_ri (op, d, i) -> Printf.sprintf "%s %s, %s" (alu_name op) (g d) (imm i)
  | Cmp_rr (a, b) -> Printf.sprintf "cmp %s, %s" (g a) (g b)
  | Cmp_ri (a, i) -> Printf.sprintf "cmp %s, %s" (g a) (imm i)
  | Test_rr (a, b) -> Printf.sprintf "test %s, %s" (g a) (g b)
  | Jmp t -> Printf.sprintf "jmp %s" (tgt t)
  | Jcc (c, t) -> Printf.sprintf "j%s %s" (cond_name c) (tgt t)
  | Jmp_r r -> Printf.sprintf "jmp %s" (g r)
  | Call t -> Printf.sprintf "call %s" (tgt t)
  | Call_r r -> Printf.sprintf "call %s" (g r)
  | Ret -> "ret"
  | Push r -> Printf.sprintf "push %s" (g r)
  | Pop r -> Printf.sprintf "pop %s" (g r)
  | Syscall -> "syscall"
  | Mfence -> "mfence"
  | Cpuid -> "cpuid"
  | Bnd_set (b, lo, hi) -> Printf.sprintf "bndmk bnd%d, %s, %s" b (imm lo) (imm hi)
  | Bndcu (b, r) -> Printf.sprintf "bndcu %s, bnd%d" (g r) b
  | Bndcl (b, r) -> Printf.sprintf "bndcl %s, bnd%d" (g r) b
  | Bndmov_store (m, b) -> Printf.sprintf "bndmov %s, bnd%d" (mem_string m) b
  | Bndmov_load (b, m) -> Printf.sprintf "bndmov bnd%d, %s" b (mem_string m)
  | Wrpkru -> "wrpkru"
  | Rdpkru -> "rdpkru"
  | Vmfunc -> "vmfunc"
  | Vmcall -> "vmcall"
  | Movdqa_load (d, m) -> Printf.sprintf "movdqa %s, %s" (x d) (mem_string m)
  | Movdqa_store (m, s) -> Printf.sprintf "movdqa %s, %s" (mem_string m) (x s)
  | Movq_xr (d, s) -> Printf.sprintf "movq %s, %s" (x d) (g s)
  | Movq_rx (d, s) -> Printf.sprintf "movq %s, %s" (g d) (x s)
  | Pxor (d, s) -> Printf.sprintf "pxor %s, %s" (x d) (x s)
  | Aesenc (d, s) -> Printf.sprintf "aesenc %s, %s" (x d) (x s)
  | Aesenclast (d, s) -> Printf.sprintf "aesenclast %s, %s" (x d) (x s)
  | Aesdec (d, s) -> Printf.sprintf "aesdec %s, %s" (x d) (x s)
  | Aesdeclast (d, s) -> Printf.sprintf "aesdeclast %s, %s" (x d) (x s)
  | Aeskeygenassist (d, s, i) -> Printf.sprintf "aeskeygenassist %s, %s, %s" (x d) (x s) (imm i)
  | Aesimc (d, s) -> Printf.sprintf "aesimc %s, %s" (x d) (x s)
  | Vext_high (d, s) -> Printf.sprintf "vextracti128 %s, ymm%d, 1" (x d) s
  | Vins_high (d, s) -> Printf.sprintf "vinserti128 ymm%d, %s, 1" d (x s)
  | Fp_arith (d, s) -> Printf.sprintf "mulpd %s, %s" (x d) (x s)

let to_string = to_string_gen target_string
let to_string_named = to_string_gen (fun t -> t.tname)

let pp fmt t = Format.pp_print_string fmt (to_string t)
