type perm = { readable : bool; writable : bool }

type entry = { mutable hfn : int; mutable perm : perm; mutable present : bool }

type t = { entries : (int, entry) Hashtbl.t; mutable gen : int }

let create () = { entries = Hashtbl.create 1024; gen = 0 }

let bump t = t.gen <- t.gen + 1

let map t ~gfn ~hfn ~readable ~writable =
  bump t;
  let perm = { readable; writable } in
  match Hashtbl.find_opt t.entries gfn with
  | Some e ->
    e.hfn <- hfn;
    e.perm <- perm;
    e.present <- true
  | None -> Hashtbl.add t.entries gfn { hfn; perm; present = true }

let unmap t ~gfn =
  bump t;
  match Hashtbl.find_opt t.entries gfn with
  | Some e -> e.present <- false
  | None -> ()

let find t ~gfn =
  match Hashtbl.find_opt t.entries gfn with
  | Some e when e.present -> Some (e.hfn, e.perm)
  | Some _ | None -> None

let generation t = t.gen

let mapped_count t =
  Hashtbl.fold (fun _ e n -> if e.present then n + 1 else n) t.entries 0

let iter t f = Hashtbl.iter (fun gfn e -> if e.present then f gfn (e.hfn, e.perm)) t.entries
