type gpr = int
type xmm = int
type bnd = int

(* Numbering follows hardware encoding order. *)
let rax = 0
let rcx = 1
let rdx = 2
let rbx = 3
let rsp = 4
let rbp = 5
let rsi = 6
let rdi = 7
let r8 = 8
let r9 = 9
let r10 = 10
let r11 = 11
let r12 = 12
let r13 = 13
let r14 = 14
let r15 = 15

let gpr_count = 16
let xmm_count = 16
let bnd_count = 4

let names =
  [| "rax"; "rcx"; "rdx"; "rbx"; "rsp"; "rbp"; "rsi"; "rdi";
     "r8"; "r9"; "r10"; "r11"; "r12"; "r13"; "r14"; "r15" |]

let gpr_name r =
  if r < 0 || r >= gpr_count then invalid_arg "Reg.gpr_name: out of range";
  names.(r)

let caller_saved = [ rax; rcx; rdx; rsi; rdi; r8; r9; r10; r11 ]
let arg_regs = [ rdi; rsi; rdx; rcx; r8; r9 ]

let pipe_gpr r = r
let pipe_xmm x = 16 + x
let pipe_bnd b = 32 + b
let pipe_flags = 36
let pipe_pkru = 37
let pipe_none = -1
let pipe_count = 38
