(** The instruction set of the simulated machine.

    A pragmatic subset of x86-64 sufficient for the paper's experiments:
    integer data movement and ALU, memory accesses with the usual
    base+index*scale+disp addressing, control flow (direct, conditional,
    indirect, call/ret via the simulated stack), [syscall], and the four
    feature families MemSentry builds on — MPX ([bndcu]/[bndcl]), MPK
    ([wrpkru]/[rdpkru]), virtualization ([vmfunc]/[vmcall]) and AES-NI.

    Values are native OCaml [int]s (addresses are 48-bit; no workload in
    this repository needs bit 63). Code addresses are instruction indices
    into the containing {!Program}; an indirect branch target stored in
    memory is simply such an index.

    Legacy-SSE semantics are modeled for the vector unit: an instruction
    writing [xmm i] leaves the upper 128 bits of [ymm i] intact — the
    property the paper's "crypt" technique relies on to keep AES round keys
    live in ymm high halves. *)

type mem = { base : Reg.gpr; index : Reg.gpr; scale : int; disp : int }
(** Effective address [base + index*scale + disp]. [base]/[index] are
    [-1] when absent. Build with {!mem}. *)

type target = { tname : string; mutable tidx : int }
(** A branch target: a label name, resolved to an instruction index by
    {!Program.assemble}. [tidx] is [-1] until resolved. A target value
    belongs to exactly one program. *)

type alu = Add | Sub | And | Or | Xor | Shl | Shr | Imul

type cond = Eq | Ne | Lt | Le | Gt | Ge
(** Conditions test the last compare result against zero (signed). *)

type t =
  | Nop
  | Halt  (** Stop the machine (simulated program exit). *)
  | Mov_rr of Reg.gpr * Reg.gpr  (** dst, src *)
  | Mov_ri of Reg.gpr * int  (** dst, immediate (movabs) *)
  | Mov_label of Reg.gpr * target
      (** dst <- code address of a label (RIP-relative lea in real x86);
          how function pointers are materialized. *)
  | Load of Reg.gpr * mem  (** dst <- \[mem\] (64-bit) *)
  | Store of mem * Reg.gpr  (** \[mem\] <- src (64-bit) *)
  | Store_i of mem * int  (** \[mem\] <- immediate *)
  | Lea of Reg.gpr * mem  (** address computation, no memory access *)
  | Lea32 of Reg.gpr * mem
      (** [lea] with the 0x67 address-size prefix: the effective address is
          truncated to 32 bits at no extra cost — the ISBoxing trick
          (paper related work [23]). *)
  | Alu_rr of alu * Reg.gpr * Reg.gpr  (** dst <- dst op src; sets flags *)
  | Alu_ri of alu * Reg.gpr * int
  | Cmp_rr of Reg.gpr * Reg.gpr
  | Cmp_ri of Reg.gpr * int
  | Test_rr of Reg.gpr * Reg.gpr
  | Jmp of target
  | Jcc of cond * target
  | Jmp_r of Reg.gpr  (** indirect jump to instruction index in register *)
  | Call of target
  | Call_r of Reg.gpr  (** indirect call *)
  | Ret
  | Push of Reg.gpr
  | Pop of Reg.gpr
  | Syscall  (** SysV convention: nr in rax, args rdi/rsi/rdx/r10/r8/r9. *)
  | Mfence  (** Serializes the memory pipeline. *)
  | Cpuid  (** Fully serializing no-op. *)
  | Bnd_set of Reg.bnd * int * int
      (** Pseudo-op standing for the [bndmk] setup the loader performs:
          load (lower, upper) into a bound register. *)
  | Bndcu of Reg.bnd * Reg.gpr  (** #BR if reg > upper bound (one-sided check). *)
  | Bndcl of Reg.bnd * Reg.gpr  (** #BR if reg < lower bound. *)
  | Bndmov_store of mem * Reg.bnd  (** Spill a bound register (16 bytes). *)
  | Bndmov_load of Reg.bnd * mem  (** Reload a spilled bound register. *)
  | Wrpkru  (** pkru <- eax; requires rcx = rdx = 0; serializing. *)
  | Rdpkru  (** rax <- pkru; requires rcx = 0. *)
  | Vmfunc  (** rax = 0: switch EPTP to index in rcx. Guest mode only. *)
  | Vmcall  (** Hypercall: exits to the hypervisor. Guest mode only. *)
  | Movdqa_load of Reg.xmm * mem  (** 16-byte aligned vector load. *)
  | Movdqa_store of mem * Reg.xmm
  | Movq_xr of Reg.xmm * Reg.gpr  (** xmm\[63:0\] <- gpr; \[127:64\] <- 0. *)
  | Movq_rx of Reg.gpr * Reg.xmm
  | Pxor of Reg.xmm * Reg.xmm  (** dst <- dst xor src (low 128 bits). *)
  | Aesenc of Reg.xmm * Reg.xmm  (** dst <- aesenc dst, key=src *)
  | Aesenclast of Reg.xmm * Reg.xmm
  | Aesdec of Reg.xmm * Reg.xmm
  | Aesdeclast of Reg.xmm * Reg.xmm
  | Aeskeygenassist of Reg.xmm * Reg.xmm * int
  | Aesimc of Reg.xmm * Reg.xmm
  | Vext_high of Reg.xmm * Reg.xmm
      (** dst\[127:0\] <- src\[255:128\] (vextracti128): fetch a key stashed
          in a ymm high half. *)
  | Vins_high of Reg.xmm * Reg.xmm  (** dst\[255:128\] <- src\[127:0\]. *)
  | Fp_arith of Reg.xmm * Reg.xmm
      (** Opaque floating-point/vector arithmetic (stand-in for mulpd and
          friends): dst <- dst op src, 4-cycle latency on the FP ports.
          Exists so workloads can exert xmm register pressure. *)

val mem : ?base:Reg.gpr -> ?index:Reg.gpr -> ?scale:int -> int -> mem
(** [mem ?base ?index ?scale disp]. [scale] defaults to 1. *)

val mem_abs : int -> mem
(** Absolute address operand. *)

val target : string -> target
(** Fresh unresolved target for label [name]. *)

val targets : t -> target list
(** The branch targets embedded in an instruction (for the assembler). *)

val is_mem_read : t -> bool
(** Does the instruction read data memory? (Loads, pops, rets, vector
    loads, bound reloads — the accesses SFI/MPX "-r" variants instrument.) *)

val is_mem_write : t -> bool
(** Does the instruction write data memory? *)

val pp : Format.formatter -> t -> unit

val to_string : t -> string
(** Debug rendering (branch targets show their resolved index). *)

val to_string_named : t -> string
(** Assembler-compatible rendering (targets by label name); accepted
    verbatim by {!Asm.parse}. *)
