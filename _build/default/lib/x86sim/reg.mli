(** Register identifiers of the simulated machine.

    General-purpose registers are small integers so the register file can be
    a flat array; named constants follow the System V AMD64 convention
    (return value in {!rax}, arguments in {!rdi}, {!rsi}, ... , stack pointer
    in {!rsp}). Vector registers ([xmm0]-[xmm15], with [ymm] upper halves)
    and MPX bound registers ([bnd0]-[bnd3]) are indices into their own files.

    {!pipe_gpr} and friends map every architectural register onto a single
    dense id space used by the {!Pipeline} dependency tracker. *)

type gpr = int
(** 0..15. Use the named constants below. *)

type xmm = int
(** 0..15. The 256-bit ymm register [i] shares the id with [xmm i]. *)

type bnd = int
(** 0..3. MPX bound registers. *)

val rax : gpr
val rcx : gpr
val rdx : gpr
val rbx : gpr
val rsp : gpr
val rbp : gpr
val rsi : gpr
val rdi : gpr
val r8 : gpr
val r9 : gpr
val r10 : gpr
val r11 : gpr
val r12 : gpr
val r13 : gpr
val r14 : gpr
val r15 : gpr

val gpr_count : int
val xmm_count : int
val bnd_count : int

val gpr_name : gpr -> string
(** ["rax"], ["r10"], ... Raises [Invalid_argument] outside 0..15. *)

val caller_saved : gpr list
(** Scratch registers a compiler may clobber across calls (SysV). *)

val arg_regs : gpr list
(** The six integer argument registers in order. *)

(** {2 Pipeline id space} *)

val pipe_gpr : gpr -> int
val pipe_xmm : xmm -> int
val pipe_bnd : bnd -> int
val pipe_flags : int
val pipe_pkru : int
val pipe_none : int
(** Sentinel (-1): "no register". *)

val pipe_count : int
(** Size of the dense id space. *)
