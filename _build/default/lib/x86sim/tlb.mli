(** Translation lookaside buffer.

    Entries are tagged with the active EPT index (modeling VPID/EPT-tagged
    TLBs: a [vmfunc] EPT switch does {e not} flush the TLB — a key reason
    VMFUNC switching is cheap). Entries record the page-table and EPT
    generations they were filled under and self-invalidate when either
    structure has changed since, so [mprotect]-style updates are observed
    without an explicit flush at every probe site.

    Protection-key bits are {e not} checked here: like hardware, the pkey
    of the entry is returned and checked against [pkru] on every access,
    which is why [wrpkru] needs no TLB flush. *)

type hit = {
  hfn : int;  (** host-physical frame *)
  readable : bool;  (** false for PROT_NONE pages *)
  writable : bool;  (** page-table and EPT write permission combined *)
  pkey : int;
}

type t

val create : ?slots:int -> unit -> t
(** Direct-mapped with [slots] entries (default 1024, power of two). *)

val probe : t -> vpn:int -> ept:int -> pt_gen:int -> ept_gen:int -> hit option
(** Lookup; counts a hit or miss. Entries from other EPT indices or stale
    generations miss. *)

val insert : t -> vpn:int -> ept:int -> pt_gen:int -> ept_gen:int -> hit -> unit

val flush : t -> unit
(** Full invalidation (CR3 write / mprotect shootdown). *)

val flush_page : t -> vpn:int -> unit
(** invlpg: drop any entry for one page, all EPT tags. *)

val hits : t -> int
val misses : t -> int
val reset_stats : t -> unit
