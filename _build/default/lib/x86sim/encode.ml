(* Sizes follow the canonical Intel encodings: REX.W + opcode + modrm
   [+ sib] [+ disp] [+ imm]. Displacements use the short form when they
   fit a signed byte. New registers (r8-r15) need a REX prefix anyway in
   64-bit operand size, which we always use. *)

let disp_bytes d = if d = 0 then 0 else if d >= -128 && d <= 127 then 1 else 4

let imm_bytes i = if i >= -0x8000_0000 && i <= 0x7FFF_FFFF then 4 else 8

let mem_bytes (m : Insn.mem) =
  (* modrm + optional sib + displacement *)
  let sib = if m.Insn.index >= 0 || m.Insn.base = Reg.rsp || m.Insn.base < 0 then 1 else 0 in
  let disp =
    if m.Insn.base < 0 && m.Insn.index < 0 then 4 (* absolute: disp32 *)
    else disp_bytes m.Insn.disp
  in
  1 + sib + disp

let rr = 3 (* rex + opcode + modrm *)

let insn_bytes (i : Insn.t) =
  match i with
  | Insn.Nop -> 1
  | Insn.Halt -> 1
  | Insn.Mov_rr _ -> rr
  | Insn.Mov_ri (_, imm) -> if imm_bytes imm = 8 then 10 (* movabs *) else 7
  | Insn.Mov_label _ -> 7 (* lea r, [rip+disp32] *)
  | Insn.Load (_, m) | Insn.Store (m, _) -> 2 + mem_bytes m
  | Insn.Store_i (m, _) -> 2 + mem_bytes m + 4
  | Insn.Lea (_, m) -> 2 + mem_bytes m
  | Insn.Lea32 (_, m) -> 3 + mem_bytes m (* 0x67 address-size prefix *)
  | Insn.Alu_rr _ -> rr
  | Insn.Alu_ri (op, _, imm) -> (
    match op with
    | Insn.Shl | Insn.Shr -> 4 (* shift r, imm8 *)
    | _ -> if imm >= -128 && imm <= 127 then 4 else if imm_bytes imm = 8 then 13 else 7)
  | Insn.Cmp_rr _ | Insn.Test_rr _ -> rr
  | Insn.Cmp_ri (_, imm) -> if imm >= -128 && imm <= 127 then 4 else 7
  | Insn.Jmp _ -> 5 (* jmp rel32 *)
  | Insn.Jcc _ -> 6 (* 0f 8x rel32 *)
  | Insn.Jmp_r _ | Insn.Call_r _ -> 3
  | Insn.Call _ -> 5
  | Insn.Ret -> 1
  | Insn.Push _ | Insn.Pop _ -> 2 (* rex + opcode for r8+; 1 for classics *)
  | Insn.Syscall -> 2
  | Insn.Mfence -> 3
  | Insn.Cpuid -> 2
  | Insn.Bnd_set _ -> 2 * (4 + 10) (* bndmk needs the bound materialized: approx *)
  | Insn.Bndcu (_, _) | Insn.Bndcl (_, _) -> 4 (* f2/f3 0f 1a/1b modrm *)
  | Insn.Bndmov_store (m, _) | Insn.Bndmov_load (_, m) -> 3 + mem_bytes m
  | Insn.Wrpkru | Insn.Rdpkru -> 3
  | Insn.Vmfunc -> 3
  | Insn.Vmcall -> 3
  | Insn.Movdqa_load (_, m) | Insn.Movdqa_store (m, _) -> 3 + mem_bytes m
  | Insn.Movq_xr _ | Insn.Movq_rx _ -> 5
  | Insn.Pxor _ -> 4
  | Insn.Aesenc _ | Insn.Aesenclast _ | Insn.Aesdec _ | Insn.Aesdeclast _ | Insn.Aesimc _ -> 5
  | Insn.Aeskeygenassist _ -> 6
  | Insn.Vext_high _ | Insn.Vins_high _ -> 6 (* VEX 3-byte + opcode + modrm + imm8 *)
  | Insn.Fp_arith _ -> 4

let program_bytes p = Array.fold_left (fun acc i -> acc + insn_bytes i) 0 (Program.code p)

let items_bytes items =
  List.fold_left
    (fun acc -> function Program.Label _ -> acc | Program.I i -> acc + insn_bytes i)
    0 items
