exception Parse_error of { line : int; msg : string }

let fail line fmt = Printf.ksprintf (fun msg -> raise (Parse_error { line; msg })) fmt

(* --- lexical helpers --------------------------------------------------- *)

let strip_comment s =
  match String.index_opt s ';' with Some i -> String.sub s 0 i | None -> s

let trim = String.trim

let gpr_of_name =
  let tbl = Hashtbl.create 16 in
  for r = 0 to Reg.gpr_count - 1 do
    Hashtbl.add tbl (Reg.gpr_name r) r
  done;
  fun name -> Hashtbl.find_opt tbl name

let prefixed_index ~prefix ~max name =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    match int_of_string_opt (String.sub name pl (String.length name - pl)) with
    | Some i when i >= 0 && i < max -> Some i
    | Some _ | None -> None
  else None

let xmm_of_name n = prefixed_index ~prefix:"xmm" ~max:Reg.xmm_count n
let ymm_of_name n = prefixed_index ~prefix:"ymm" ~max:Reg.xmm_count n
let bnd_of_name n = prefixed_index ~prefix:"bnd" ~max:Reg.bnd_count n

let int_of_token line tok =
  match int_of_string_opt tok with
  | Some v -> v
  | None -> fail line "expected an integer, got %S" tok

(* Memory operand: the text between the brackets, e.g. "rbx+rcx*8+16",
   "rbx-0x8", "0x1000". Terms separated by +/-; each term is a register,
   register*scale, or a displacement. *)
let parse_mem line inner =
  let base = ref (-1) and index = ref (-1) and scale = ref 1 and disp = ref 0 in
  let add_term sign term =
    let term = trim term in
    if term = "" then fail line "empty term in memory operand"
    else
      match String.index_opt term '*' with
      | Some star ->
        let rname = trim (String.sub term 0 star) in
        let sc = int_of_token line (trim (String.sub term (star + 1) (String.length term - star - 1))) in
        (match gpr_of_name rname with
        | Some r when sign > 0 ->
          if !index >= 0 then fail line "two index registers in memory operand";
          index := r;
          scale := sc
        | Some _ -> fail line "negative index register"
        | None -> fail line "unknown index register %S" rname)
      | None -> (
        match gpr_of_name term with
        | Some r when sign > 0 ->
          if !base < 0 then base := r
          else if !index < 0 then index := r (* second plain register: index*1 *)
          else fail line "too many registers in memory operand"
        | Some _ -> fail line "negative base register"
        | None -> disp := !disp + (sign * int_of_token line term))
  in
  (* Split on +/-, keeping the sign of each term. *)
  let n = String.length inner in
  let rec go start sign i =
    if i >= n then add_term sign (String.sub inner start (i - start))
    else
      match inner.[i] with
      | '+' ->
        add_term sign (String.sub inner start (i - start));
        go (i + 1) 1 (i + 1)
      | '-' when i > start ->
        add_term sign (String.sub inner start (i - start));
        go (i + 1) (-1) (i + 1)
      | _ -> go start sign (i + 1)
  in
  go 0 1 0;
  { Insn.base = !base; index = !index; scale = !scale; disp = !disp }

type operand =
  | Gpr of Reg.gpr
  | Xmm of Reg.xmm
  | Ymm of Reg.xmm
  | Bnd of Reg.bnd
  | Imm of int
  | Mem of Insn.mem
  | Ident of string  (** bare identifier: a label *)
  | Mem_ident of string  (** [label] *)

let parse_operand line tok =
  let tok = trim tok in
  if tok = "" then fail line "empty operand"
  else if tok.[0] = '[' then begin
    if tok.[String.length tok - 1] <> ']' then fail line "unterminated memory operand";
    let inner = trim (String.sub tok 1 (String.length tok - 2)) in
    match (gpr_of_name inner, int_of_string_opt inner) with
    | None, None
      when inner <> "" && (not (String.contains inner '+')) && not (String.contains inner '*')
      ->
      if String.contains inner '-' then Mem (parse_mem line inner) else Mem_ident inner
    | _ -> Mem (parse_mem line inner)
  end
  else
    match gpr_of_name tok with
    | Some r -> Gpr r
    | None -> (
      match xmm_of_name tok with
      | Some x -> Xmm x
      | None -> (
        match ymm_of_name tok with
        | Some y -> Ymm y
        | None -> (
          match bnd_of_name tok with
          | Some b -> Bnd b
          | None -> (
            match int_of_string_opt tok with
            | Some v -> Imm v
            | None -> Ident tok))))

(* --- per-mnemonic dispatch --------------------------------------------- *)

let alu_of_mnemonic = function
  | "add" -> Some Insn.Add
  | "sub" -> Some Insn.Sub
  | "and" -> Some Insn.And
  | "or" -> Some Insn.Or
  | "xor" -> Some Insn.Xor
  | "shl" -> Some Insn.Shl
  | "shr" -> Some Insn.Shr
  | "imul" -> Some Insn.Imul
  | _ -> None

let cond_of_mnemonic = function
  | "je" -> Some Insn.Eq
  | "jne" -> Some Insn.Ne
  | "jl" -> Some Insn.Lt
  | "jle" -> Some Insn.Le
  | "jg" -> Some Insn.Gt
  | "jge" -> Some Insn.Ge
  | _ -> None

let aes_of_mnemonic = function
  | "pxor" -> Some (fun d s -> Insn.Pxor (d, s))
  | "aesenc" -> Some (fun d s -> Insn.Aesenc (d, s))
  | "aesenclast" -> Some (fun d s -> Insn.Aesenclast (d, s))
  | "aesdec" -> Some (fun d s -> Insn.Aesdec (d, s))
  | "aesdeclast" -> Some (fun d s -> Insn.Aesdeclast (d, s))
  | "aesimc" -> Some (fun d s -> Insn.Aesimc (d, s))
  | "mulpd" -> Some (fun d s -> Insn.Fp_arith (d, s))
  | _ -> None

let parse_insn line mnemonic operands =
  let open Insn in
  let two () =
    match operands with [ a; b ] -> (a, b) | _ -> fail line "%s takes two operands" mnemonic
  in
  let one () =
    match operands with [ a ] -> a | _ -> fail line "%s takes one operand" mnemonic
  in
  let none () =
    match operands with [] -> () | _ -> fail line "%s takes no operands" mnemonic
  in
  match mnemonic with
  | "nop" -> none (); Nop
  | "hlt" -> none (); Halt
  | "ret" -> none (); Ret
  | "syscall" -> none (); Syscall
  | "mfence" -> none (); Mfence
  | "cpuid" -> none (); Cpuid
  | "wrpkru" -> none (); Wrpkru
  | "rdpkru" -> none (); Rdpkru
  | "vmfunc" -> none (); Vmfunc
  | "vmcall" -> none (); Vmcall
  | "push" -> (match one () with Gpr r -> Push r | _ -> fail line "push takes a register")
  | "pop" -> (match one () with Gpr r -> Pop r | _ -> fail line "pop takes a register")
  | "jmp" -> (
    match one () with
    | Ident l -> Jmp (target l)
    | Gpr r -> Jmp_r r
    | _ -> fail line "jmp takes a label or register")
  | "call" -> (
    match one () with
    | Ident l -> Call (target l)
    | Gpr r -> Call_r r
    | _ -> fail line "call takes a label or register")
  | "mov" -> (
    match two () with
    | Gpr d, Gpr s -> Mov_rr (d, s)
    | Gpr d, Imm i -> Mov_ri (d, i)
    | Gpr d, Mem m -> Load (d, m)
    | Mem m, Gpr s -> Store (m, s)
    | Mem m, Imm i -> Store_i (m, i)
    | _ -> fail line "unsupported mov operands")
  | "lea" -> (
    match two () with
    | Gpr d, Mem m -> Lea (d, m)
    | Gpr d, Mem_ident l -> Mov_label (d, target l)
    | _ -> fail line "lea takes a register and a memory operand")
  | "lea32" -> (
    match two () with
    | Gpr d, Mem m -> Lea32 (d, m)
    | _ -> fail line "lea32 takes a register and a memory operand")
  | "cmp" -> (
    match two () with
    | Gpr a, Gpr b -> Cmp_rr (a, b)
    | Gpr a, Imm i -> Cmp_ri (a, i)
    | _ -> fail line "unsupported cmp operands")
  | "test" -> (
    match two () with
    | Gpr a, Gpr b -> Test_rr (a, b)
    | _ -> fail line "test takes two registers")
  | "bndcu" -> (
    match two () with
    | Gpr r, Bnd b -> Bndcu (b, r)
    | _ -> fail line "bndcu takes a register and a bound register")
  | "bndcl" -> (
    match two () with
    | Gpr r, Bnd b -> Bndcl (b, r)
    | _ -> fail line "bndcl takes a register and a bound register")
  | "bndmk" -> (
    match operands with
    | [ Bnd b; Imm lo; Imm hi ] -> Bnd_set (b, lo, hi)
    | _ -> fail line "bndmk takes bndN and two immediates")
  | "bndmov" -> (
    match two () with
    | Mem m, Bnd b -> Bndmov_store (m, b)
    | Bnd b, Mem m -> Bndmov_load (b, m)
    | _ -> fail line "unsupported bndmov operands")
  | "movdqa" -> (
    match two () with
    | Xmm x, Mem m -> Movdqa_load (x, m)
    | Mem m, Xmm x -> Movdqa_store (m, x)
    | _ -> fail line "unsupported movdqa operands")
  | "movq" -> (
    match two () with
    | Xmm x, Gpr r -> Movq_xr (x, r)
    | Gpr r, Xmm x -> Movq_rx (r, x)
    | _ -> fail line "unsupported movq operands")
  | "aeskeygenassist" -> (
    match operands with
    | [ Xmm d; Xmm s; Imm i ] -> Aeskeygenassist (d, s, i)
    | _ -> fail line "aeskeygenassist takes xmm, xmm, imm")
  | "vextracti128" -> (
    match operands with
    | [ Xmm d; Ymm s; Imm 1 ] -> Vext_high (d, s)
    | _ -> fail line "vextracti128 takes xmm, ymm, 1")
  | "vinserti128" -> (
    match operands with
    | [ Ymm d; Xmm s; Imm 1 ] -> Vins_high (d, s)
    | _ -> fail line "vinserti128 takes ymm, xmm, 1")
  | m -> (
    match (alu_of_mnemonic m, cond_of_mnemonic m, aes_of_mnemonic m) with
    | Some op, _, _ -> (
      match two () with
      | Gpr d, Gpr s -> Alu_rr (op, d, s)
      | Gpr d, Imm i -> Alu_ri (op, d, i)
      | _ -> fail line "unsupported %s operands" m)
    | None, Some c, _ -> (
      match one () with
      | Ident l -> Jcc (c, target l)
      | _ -> fail line "%s takes a label" m)
    | None, None, Some mk -> (
      match two () with
      | Xmm d, Xmm s -> mk d s
      | _ -> fail line "%s takes two xmm registers" m)
    | None, None, None -> fail line "unknown mnemonic %S" m)

let parse_line lineno raw =
  let s = trim (strip_comment raw) in
  if s = "" then None
  else if String.length s >= 2 && s.[String.length s - 1] = ':' then
    Some (Program.Label (trim (String.sub s 0 (String.length s - 1))))
  else begin
    let mnemonic, rest =
      match String.index_opt s ' ' with
      | None -> (s, "")
      | Some i -> (String.sub s 0 i, String.sub s (i + 1) (String.length s - i - 1))
    in
    let operands =
      if trim rest = "" then []
      else List.map (parse_operand lineno) (String.split_on_char ',' rest)
    in
    Some (Program.I (parse_insn lineno (String.lowercase_ascii mnemonic) operands))
  end

let parse text =
  let lines = String.split_on_char '\n' text in
  List.concat (List.mapi (fun i l -> Option.to_list (parse_line (i + 1) l)) lines)

let parse_program text = Program.assemble (parse text)

let print_items items =
  let buf = Buffer.create 1024 in
  List.iter
    (fun item ->
      (match item with
      | Program.Label l -> Buffer.add_string buf (l ^ ":")
      | Program.I insn -> Buffer.add_string buf ("  " ^ Insn.to_string_named insn));
      Buffer.add_char buf '\n')
    items;
  Buffer.contents buf

let print_program p =
  let labels = List.sort compare (List.map (fun (n, i) -> (i, n)) (Program.labels p)) in
  let buf = Buffer.create 1024 in
  let rec emit_labels idx = function
    | (i, name) :: rest when i = idx ->
      Buffer.add_string buf (name ^ ":\n");
      emit_labels idx rest
    | rest -> rest
  in
  let remaining = ref labels in
  Array.iteri
    (fun idx insn ->
      remaining := emit_labels idx !remaining;
      Buffer.add_string buf ("  " ^ Insn.to_string_named insn ^ "\n"))
    (Program.code p);
  remaining := emit_labels (Program.length p) !remaining;
  Buffer.contents buf
