(** Extended page tables: guest-physical -> host-physical with EPT
    permissions.

    The hardware side of the paper's VMFUNC technique. The hypervisor (in
    the [vmx] library) maintains a list of EPTs; the guest switches the
    active one with [vmfunc]. Mappings for sensitive pages are installed
    only in the "sensitive" EPT, so accesses under the default EPT raise
    {!Fault.Ept_violation} (a VM exit the hypervisor refuses to fix). *)

type perm = { readable : bool; writable : bool }

type t

val create : unit -> t

val map : t -> gfn:int -> hfn:int -> readable:bool -> writable:bool -> unit

val unmap : t -> gfn:int -> unit

val find : t -> gfn:int -> (int * perm) option
(** [(hfn, perm)] for a mapped guest frame. *)

val generation : t -> int
(** Bumped on every change, consulted by the TLB for self-invalidation. *)

val mapped_count : t -> int

val iter : t -> (int -> int * perm -> unit) -> unit
