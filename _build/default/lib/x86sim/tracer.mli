(** Execution tracing over the CPU's [on_step] hook — the machine-level
    analogue of the PIN instrumentation the paper uses for dynamic
    analysis (§5.5).

    A tracer keeps the most recent [capacity] executed instructions in a
    ring buffer (optionally filtered), cheap enough to leave attached for
    a whole run; [entries] then reconstructs the tail of the execution —
    the first thing one wants when a simulated program misbehaves, and the
    mechanism behind the CLI's [trace] command. *)

type entry = {
  seq : int;  (** 0-based position in the dynamic instruction stream *)
  rip : int;  (** instruction index *)
  insn : Insn.t;
}

type t

val attach : ?capacity:int -> ?filter:(Insn.t -> bool) -> Cpu.t -> t
(** Install on [cpu] (capacity defaults to 256). Raises [Invalid_argument]
    if some [on_step] hook is already installed — tracing does not
    silently displace an analysis. *)

val detach : t -> unit
(** Remove the hook; the collected entries remain readable. *)

val entries : t -> entry list
(** Buffered entries, oldest first. *)

val total : t -> int
(** How many instructions matched the filter over the whole run (not just
    those still buffered). *)

val to_string : t -> string
(** One line per buffered entry: [seq rip insn]. *)
