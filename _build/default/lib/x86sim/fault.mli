(** Architectural faults raised by the simulated machine.

    Deterministic isolation is the paper's whole point: an unauthorized
    access to a safe region must {e fault}, not silently succeed. Every
    isolation technique in this repository ultimately funnels into one of
    these fault kinds (MPX raises [Bound_violation] / #BR, MPK raises
    [Pkey_violation], EPT switching raises [Ept_violation], plain paging
    raises [Page_fault]). *)

type access = Read | Write | Exec

type t =
  | Page_fault of { va : int; access : access; reason : string }
      (** Not-present or permission-violating access through the page tables
          (also the mprotect-baseline fault). *)
  | Pkey_violation of { va : int; key : int; access : access }
      (** Access blocked by the MPK [pkru] access/write-disable bits. *)
  | Ept_violation of { gpa : int; ept_index : int; access : access }
      (** Guest-physical access not permitted by the active EPT. *)
  | Bound_violation of { value : int; lower : int; upper : int; reg : int }
      (** MPX #BR: [bndcl]/[bndcu] check failed against bound register [reg]. *)
  | Gp_fault of string  (** General protection (bad register state, misalignment). *)
  | Undefined of string  (** Instruction not available in the current mode. *)

exception Fault of t

val raise_fault : t -> 'a
(** Raise [Fault]. *)

val access_to_string : access -> string

val to_string : t -> string
(** Human-readable one-line rendering. *)

val pp : Format.formatter -> t -> unit
