type hit = { hfn : int; readable : bool; writable : bool; pkey : int }

type t = {
  slots : int;
  vpns : int array; (* -1 = invalid *)
  epts : int array;
  pt_gens : int array;
  ept_gens : int array;
  hfns : int array;
  readables : bool array;
  writables : bool array;
  pkeys : int array;
  mutable hit_count : int;
  mutable miss_count : int;
}

let create ?(slots = 1024) () =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Tlb.create: slots must be a positive power of two";
  {
    slots;
    vpns = Array.make slots (-1);
    epts = Array.make slots 0;
    pt_gens = Array.make slots 0;
    ept_gens = Array.make slots 0;
    hfns = Array.make slots 0;
    readables = Array.make slots false;
    writables = Array.make slots false;
    pkeys = Array.make slots 0;
    hit_count = 0;
    miss_count = 0;
  }

let slot_of t vpn = vpn land (t.slots - 1)

let probe t ~vpn ~ept ~pt_gen ~ept_gen =
  let s = slot_of t vpn in
  if
    t.vpns.(s) = vpn && t.epts.(s) = ept && t.pt_gens.(s) = pt_gen
    && t.ept_gens.(s) = ept_gen
  then begin
    t.hit_count <- t.hit_count + 1;
    Some
      {
        hfn = t.hfns.(s);
        readable = t.readables.(s);
        writable = t.writables.(s);
        pkey = t.pkeys.(s);
      }
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    None
  end

let insert t ~vpn ~ept ~pt_gen ~ept_gen hit =
  let s = slot_of t vpn in
  t.vpns.(s) <- vpn;
  t.epts.(s) <- ept;
  t.pt_gens.(s) <- pt_gen;
  t.ept_gens.(s) <- ept_gen;
  t.hfns.(s) <- hit.hfn;
  t.readables.(s) <- hit.readable;
  t.writables.(s) <- hit.writable;
  t.pkeys.(s) <- hit.pkey

let flush t = Array.fill t.vpns 0 t.slots (-1)

let flush_page t ~vpn =
  let s = slot_of t vpn in
  if t.vpns.(s) = vpn then t.vpns.(s) <- -1

let hits t = t.hit_count
let misses t = t.miss_count

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0
