(** Instruction-size model: how many bytes each instruction would occupy
    as real x86-64 machine code.

    Instrumentation costs more than cycles: every inserted check inflates
    the text segment, pressures the instruction cache and lengthens
    mmap'd binaries. This module assigns each {!Insn.t} the size of its
    canonical x86-64 encoding (movabs = 10 bytes, a bndcu = 3 + the 0xF2
    prefix, a vmfunc = 3-byte opcode + register setup, ...), so the
    [codesize] report can compare techniques on binary bloat — a metric
    deployments care about even when run-time overhead is equal. *)

val insn_bytes : Insn.t -> int
(** Encoded size in bytes of one instruction (1..15, as on x86-64). *)

val program_bytes : Program.t -> int
(** Total text-segment size of an assembled program. *)

val items_bytes : Program.item list -> int
(** Same, before assembly (labels are free). *)
