(** Textual assembly for the simulated machine.

    A small Intel-flavoured syntax covering the whole {!Insn} set, so
    programs can be written, dumped and diffed as text — handy for the
    CLI's [disasm], for golden tests, and for writing machine-level
    experiments without OCaml plumbing.

    Grammar (one item per line; [;] starts a comment; blank lines ok):

    {v
    label:                     ; label definition
    mov rax, 0x10              ; immediate (also negative / decimal)
    mov rax, rbx               ; register move
    mov rax, [rbx+rcx*8+16]    ; load
    mov [rbx+8], rdx           ; store
    mov [rbx], 42              ; store immediate
    lea rax, [rbx+8]           ; address computation
    lea rax, [somelabel]       ; code address of a label
    add|sub|and|or|xor|shl|shr|imul rax, rbx|imm
    cmp rax, rbx|imm
    test rax, rbx
    jmp label     | jmp rax
    je|jne|jl|jle|jg|jge label
    call label    | call rax
    ret | push rax | pop rax | syscall | mfence | cpuid | hlt | nop
    bndmk bnd0, 0x0, 0x3fffffffffff
    bndcl rax, bnd0 | bndcu rax, bnd0
    bndmov [rbx], bnd0 | bndmov bnd0, [rbx]
    wrpkru | rdpkru | vmfunc | vmcall
    movdqa xmm0, [rbx] | movdqa [rbx], xmm0
    movq xmm0, rax | movq rax, xmm0
    pxor|aesenc|aesenclast|aesdec|aesdeclast|aesimc|mulpd xmm0, xmm1
    aeskeygenassist xmm0, xmm1, 1
    vextracti128 xmm1, ymm4, 1
    vinserti128 ymm4, xmm1, 1
    v} *)

exception Parse_error of { line : int; msg : string }

val parse : string -> Program.item list
(** Parse a whole listing. Raises {!Parse_error} with a 1-based line
    number. The result still needs {!Program.assemble}. *)

val parse_program : string -> Program.t
(** [Program.assemble (parse s)]. *)

val print_items : Program.item list -> string
(** Render items in the accepted syntax (targets by name). *)

val print_program : Program.t -> string
(** Disassemble an assembled program, reconstructing label definitions.
    [parse_program (print_program p)] is structurally equal to [p]. *)
