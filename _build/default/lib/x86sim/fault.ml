type access = Read | Write | Exec

type t =
  | Page_fault of { va : int; access : access; reason : string }
  | Pkey_violation of { va : int; key : int; access : access }
  | Ept_violation of { gpa : int; ept_index : int; access : access }
  | Bound_violation of { value : int; lower : int; upper : int; reg : int }
  | Gp_fault of string
  | Undefined of string

exception Fault of t

let raise_fault f = raise (Fault f)

let access_to_string = function Read -> "read" | Write -> "write" | Exec -> "exec"

let to_string = function
  | Page_fault { va; access; reason } ->
    Printf.sprintf "#PF %s at 0x%x (%s)" (access_to_string access) va reason
  | Pkey_violation { va; key; access } ->
    Printf.sprintf "#PF(pkey) %s at 0x%x blocked by protection key %d" (access_to_string access) va key
  | Ept_violation { gpa; ept_index; access } ->
    Printf.sprintf "EPT violation: %s of gpa 0x%x under EPT #%d" (access_to_string access) gpa ept_index
  | Bound_violation { value; lower; upper; reg } ->
    Printf.sprintf "#BR: 0x%x outside [0x%x, 0x%x) of bnd%d" value lower upper reg
  | Gp_fault msg -> Printf.sprintf "#GP: %s" msg
  | Undefined msg -> Printf.sprintf "#UD: %s" msg

let pp fmt t = Format.pp_print_string fmt (to_string t)
