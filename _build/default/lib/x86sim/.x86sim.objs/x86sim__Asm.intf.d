lib/x86sim/asm.mli: Program
