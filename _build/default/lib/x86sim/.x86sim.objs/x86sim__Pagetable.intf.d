lib/x86sim/pagetable.mli: Physmem
