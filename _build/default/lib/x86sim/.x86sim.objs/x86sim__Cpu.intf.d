lib/x86sim/cpu.mli: Bytes Fault Hashtbl Insn Mmu Pipeline Program Reg
