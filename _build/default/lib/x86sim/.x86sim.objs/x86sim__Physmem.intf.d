lib/x86sim/physmem.mli: Bytes
