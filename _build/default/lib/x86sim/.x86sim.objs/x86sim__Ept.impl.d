lib/x86sim/ept.ml: Hashtbl
