lib/x86sim/pipeline.ml: Array Float Reg
