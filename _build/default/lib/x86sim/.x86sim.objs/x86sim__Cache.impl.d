lib/x86sim/cache.ml: Array
