lib/x86sim/fault.ml: Format Printf
