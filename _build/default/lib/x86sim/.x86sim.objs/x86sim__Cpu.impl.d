lib/x86sim/cpu.ml: Aesni Array Bitops Bytes Fault Hashtbl Insn Int64 Layout Mmu Ms_util Physmem Pipeline Printf Program Reg
