lib/x86sim/layout.mli:
