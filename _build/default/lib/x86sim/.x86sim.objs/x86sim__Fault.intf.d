lib/x86sim/fault.mli: Format
