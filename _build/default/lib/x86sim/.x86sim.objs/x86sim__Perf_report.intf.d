lib/x86sim/perf_report.mli: Cpu
