lib/x86sim/layout.ml:
