lib/x86sim/tracer.mli: Cpu Insn
