lib/x86sim/ept.mli:
