lib/x86sim/program.mli: Format Insn
