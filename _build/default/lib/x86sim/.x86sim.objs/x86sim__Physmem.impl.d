lib/x86sim/physmem.ml: Array Bytes Int64 Printf
