lib/x86sim/tlb.mli:
