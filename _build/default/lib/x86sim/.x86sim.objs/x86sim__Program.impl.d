lib/x86sim/program.ml: Array Fault Format Hashtbl Insn List Printf
