lib/x86sim/cache.mli:
