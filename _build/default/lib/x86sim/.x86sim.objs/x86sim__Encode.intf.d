lib/x86sim/encode.mli: Insn Program
