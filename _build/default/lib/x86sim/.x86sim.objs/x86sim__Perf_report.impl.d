lib/x86sim/perf_report.ml: Cache Cpu Mmu Printf String Tlb
