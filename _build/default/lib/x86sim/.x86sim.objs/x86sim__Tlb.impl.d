lib/x86sim/tlb.ml: Array
