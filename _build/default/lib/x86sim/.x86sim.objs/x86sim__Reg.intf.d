lib/x86sim/reg.mli:
