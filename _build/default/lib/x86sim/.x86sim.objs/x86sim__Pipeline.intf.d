lib/x86sim/pipeline.mli:
