lib/x86sim/insn.mli: Format Reg
