lib/x86sim/pagetable.ml: Physmem
