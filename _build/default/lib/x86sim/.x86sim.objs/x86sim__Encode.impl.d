lib/x86sim/encode.ml: Array Insn List Program Reg
