lib/x86sim/mmu.mli: Bytes Cache Ept Fault Pagetable Physmem Tlb
