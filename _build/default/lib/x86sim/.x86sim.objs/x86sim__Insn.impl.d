lib/x86sim/insn.ml: Buffer Format Printf Reg
