lib/x86sim/mmu.ml: Array Bytes Cache Ept Fault Pagetable Physmem Printf Tlb
