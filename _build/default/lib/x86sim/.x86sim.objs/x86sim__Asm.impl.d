lib/x86sim/asm.ml: Array Buffer Hashtbl Insn List Option Printf Program Reg String
