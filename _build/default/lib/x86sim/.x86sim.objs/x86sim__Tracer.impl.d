lib/x86sim/tracer.ml: Array Cpu Insn List Printf String
