lib/x86sim/reg.ml: Array
