(** Execution summaries: one place that turns a finished {!Cpu.t} into the
    numbers a performance investigation wants — instruction mix, IPC,
    cache and TLB hit rates, protection-event counts. *)

type t = {
  insns : int;
  cycles : float;
  ipc : float;
  loads : int;
  stores : int;
  calls : int;
  rets : int;
  ind_branches : int;
  syscalls : int;
  bnd_checks : int;
  wrpkrus : int;
  vmfuncs : int;
  vmcalls : int;
  vm_exits : int;
  aes_ops : int;
  faults : int;
  l1_hit_rate : float;  (** of all data-cache accesses *)
  tlb_hit_rate : float;
  dram_accesses : int;
}

val capture : Cpu.t -> t

val to_string : t -> string
(** Multi-line human-readable rendering. *)

val print : Cpu.t -> unit
