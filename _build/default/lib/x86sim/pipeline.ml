let p_alu = 0
let p_load = 1
let p_store = 2
let p_branch = 3
let p_mpx = 4
let p_aes = 5
let p_special = 6
let p_fp = 7

let port_count = 8
let units_per_port = [| 4; 2; 1; 1; 2; 1; 1; 2 |]

(* Cycles an execution unit stays busy per operation (1 = fully pipelined).
   (aesimc overrides its occupancy via [busy]). *)
let recip_throughput = [| 1.0; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
let fetch_width = 4.0

(* Reorder-buffer depth: instruction i cannot issue before instruction
   i - rob_size has completed. Without this bound a single long dependency
   chain would hide unlimited amounts of independent work, which no real
   core can do. 224 entries approximates Skylake. *)
let rob_size = 224

type t = {
  ready : float array; (* per pipeline register id *)
  units : float array array; (* per port, per unit: next-free time *)
  rob : float array; (* completion times of the last rob_size insns *)
  mutable fetch : float;
  mutable max_completion : float;
  mutable insns : int;
}

let create () =
  {
    ready = Array.make Reg.pipe_count 0.0;
    units = Array.init port_count (fun p -> Array.make units_per_port.(p) 0.0);
    rob = Array.make rob_size 0.0;
    fetch = 0.0;
    max_completion = 0.0;
    insns = 0;
  }

let reset t =
  Array.fill t.ready 0 (Array.length t.ready) 0.0;
  Array.iter (fun u -> Array.fill u 0 (Array.length u) 0.0) t.units;
  Array.fill t.rob 0 rob_size 0.0;
  t.fetch <- 0.0;
  t.max_completion <- 0.0;
  t.insns <- 0

let src_ready t r acc = if r < 0 then acc else Float.max acc t.ready.(r)

let issue_t t ?(s1 = -1) ?(s2 = -1) ?(s3 = -1) ?(d1 = -1) ?(d2 = -1) ?(dep = 0.0) ?(lat = 1.0)
    ?busy ?(serialize = false) ~port () =
  let slot = t.insns mod rob_size in
  t.insns <- t.insns + 1;
  let floor_time = Float.max dep (Float.max t.fetch t.rob.(slot)) in
  let earliest = src_ready t s1 (src_ready t s2 (src_ready t s3 floor_time)) in
  let earliest = if serialize then Float.max earliest t.max_completion else earliest in
  (* Pick the execution unit that frees up first. *)
  let units = t.units.(port) in
  let best = ref 0 in
  for i = 1 to Array.length units - 1 do
    if units.(i) < units.(!best) then best := i
  done;
  let t0 = Float.max earliest units.(!best) in
  let completion = t0 +. lat in
  t.rob.(slot) <- completion;
  units.(!best) <- t0 +. (match busy with Some b -> b | None -> recip_throughput.(port));
  if d1 >= 0 then t.ready.(d1) <- completion;
  if d2 >= 0 then t.ready.(d2) <- completion;
  if completion > t.max_completion then t.max_completion <- completion;
  t.fetch <- t.fetch +. (1.0 /. fetch_width);
  if serialize && completion > t.fetch then t.fetch <- completion;
  completion

let issue t ?s1 ?s2 ?s3 ?d1 ?d2 ?dep ?lat ?busy ?serialize ~port () =
  ignore (issue_t t ?s1 ?s2 ?s3 ?d1 ?d2 ?dep ?lat ?busy ?serialize ~port ())

let cycles t = Float.max t.fetch t.max_completion

let instructions t = t.insns

let ipc t =
  let c = cycles t in
  if c <= 0.0 then 0.0 else float_of_int t.insns /. c
