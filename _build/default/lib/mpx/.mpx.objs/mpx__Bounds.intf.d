lib/mpx/bounds.mli: X86sim
