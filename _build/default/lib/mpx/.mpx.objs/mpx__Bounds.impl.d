lib/mpx/bounds.ml: Array Cpu Insn Layout Mmu X86sim
