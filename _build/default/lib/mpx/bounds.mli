(** MPX system-software layer: bound-register conventions and the bound
    table.

    MemSentry's MPX scheme (paper §5.4) dedicates [bnd0] to the partition
    bound: lower 0, upper {!X86sim.Layout.sensitive_base}. Because the
    lower bound is 0 and addresses are non-negative, a single [bndcu]
    before each non-allowed memory access suffices — the design insight
    that makes MPX competitive. The [bndpreserve] convention is assumed:
    bounds are never reloaded implicitly.

    The bound {e table} here supports the ablation study: GCC-style MPX
    with many fine-grained bounds continually spills/reloads bound
    registers, which is what made full MPX bounds checking notorious. *)

val partition_bnd : X86sim.Reg.bnd
(** bnd0, reserved for the 64 TiB partition bound. *)

val setup_partition : X86sim.Cpu.t -> unit
(** Load [\[0, sensitive_base)] into {!partition_bnd} directly (what the
    loader/runtime does before [main]). *)

val setup_insns : X86sim.Insn.t list
(** The same, as instructions to prepend to a program. *)

val check_before : X86sim.Reg.gpr -> X86sim.Insn.t
(** The single [bndcu ptr, bnd0] emitted before an instrumented access. *)

val check_both : X86sim.Reg.gpr -> X86sim.Insn.t list
(** Full [bndcl] + [bndcu] pair (the expensive GCC-style variant, for the
    ablation benchmark). *)

(** {2 Bound table (register spilling model)} *)

type table
(** Software bound directory for programs needing more than 4 bounds. *)

val table_create : X86sim.Cpu.t -> table
(** Allocates backing pages in the CPU's address space. *)

val table_slot_va : table -> int -> int
(** Address of the [i]-th 16-byte slot (for emitting
    [Bndmov_store]/[Bndmov_load]). Slots beyond capacity raise
    [Invalid_argument]. *)

val table_capacity : int
