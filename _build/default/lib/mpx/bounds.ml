open X86sim

let partition_bnd = 0

(* bndcu faults on [value > upper], so the inclusive upper bound is the
   last nonsensitive byte. *)
let partition_upper = Layout.sensitive_base - 1

let setup_partition cpu =
  cpu.Cpu.bnd_lower.(partition_bnd) <- 0;
  cpu.Cpu.bnd_upper.(partition_bnd) <- partition_upper

let setup_insns = [ Insn.Bnd_set (partition_bnd, 0, partition_upper) ]

let check_before reg = Insn.Bndcu (partition_bnd, reg)

let check_both reg = [ Insn.Bndcl (partition_bnd, reg); Insn.Bndcu (partition_bnd, reg) ]

let table_capacity = 256
let table_base = 0x30_0000_0000

type table = { base : int }

let table_create cpu =
  Mmu.map_range cpu.Cpu.mmu ~va:table_base ~len:(table_capacity * 16) ~writable:true;
  { base = table_base }

let table_slot_va t i =
  if i < 0 || i >= table_capacity then invalid_arg "Bounds.table_slot_va: slot out of range";
  t.base + (16 * i)
