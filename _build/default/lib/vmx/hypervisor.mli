(** A miniature per-process hypervisor, in the style of Dune [5].

    The paper deploys EPT switching per process: a stripped-down hypervisor
    runs a single process in a VM, maintains several EPTs filled on demand
    (on EPT-violation exits), and exposes a hypercall with which the
    instrumented program marks pages {e secret} — mapped only in one
    designated EPT. Guest code then uses [vmfunc] (no exit!) to switch the
    active EPT around instrumentation points.

    Attaching a hypervisor to a {!X86sim.Cpu.t}:
    - creates [num_epts] empty EPTs and installs them as the MMU's EPTP list,
    - switches the CPU into guest mode ([virtualized <- true]), after which
      every guest [syscall] pays the hypercall-conversion tax,
    - hooks EPT violations (demand-fill identity mappings, or refusal for
      secret pages under the wrong EPT) and [vmcall] hypercalls.

    Guest-physical frames map identity to host-physical frames, as Dune
    arranges for a pre-existing process image. *)

type t

val create : X86sim.Cpu.t -> num_epts:int -> t
(** Virtualize the process on [cpu]. [num_epts >= 1]; EPT 0 becomes
    active. Raises [Invalid_argument] if the CPU is already virtualized. *)

val cpu : t -> X86sim.Cpu.t

val num_epts : t -> int

val mark_secret : t -> va:int -> len:int -> ept:int -> unit
(** Host-side API: restrict the (already guest-mapped) pages of
    [\[va, va+len)] to EPT [ept]. They are unmapped from every other EPT
    and any demand-fill for them under another EPT is refused. *)

val clear_secret : t -> va:int -> len:int -> unit
(** Make the pages ordinary again (any EPT may demand-fill them). *)

val is_secret_gfn : t -> gfn:int -> bool

val secret_owner : t -> gfn:int -> int option
(** The EPT index a secret frame is restricted to, if any. *)

val ept_violations_refused : t -> int
(** How many EPT violations were refused because a secret page was touched
    under the wrong EPT (i.e. blocked attacks / bugs). *)

(** {2 Hypercall numbers (guest [vmcall] with the number in rax)} *)

val hc_ping : int
(** 101: returns 0 in rax. *)

val hc_mark_secret : int
(** 100: rdi = va, rsi = len, rdx = ept index — guest-initiated
    {!mark_secret}, the call MemSentry's instrumented startup makes. *)

(** {2 Guest code helpers} *)

val vmfunc_seq : ept:int -> X86sim.Insn.t list
(** The three-instruction EPTP-switch sequence
    ([mov rax, 0; mov rcx, ept; vmfunc]). Clobbers rax and rcx. *)
