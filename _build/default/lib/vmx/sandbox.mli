(** Dune-style process-level virtualization, packaged.

    [enter] is what MemSentry's VMFUNC backend does at startup: wrap the
    process in a two-EPT VM (EPT 0 = nonsensitive domain, EPT 1 = sensitive
    domain) so guest code can toggle domains with [vmfunc]. The cost
    consequences are modeled by the CPU: every subsequent guest [syscall]
    pays the hypercall conversion, and first-touch accesses pay an
    EPT-violation exit while the hypervisor demand-fills. *)

val nonsensitive_ept : int
(** 0 — active by default. *)

val sensitive_ept : int
(** 1 — the only EPT in which secret pages are mapped. *)

val enter : X86sim.Cpu.t -> Hypervisor.t
(** Virtualize with the standard two EPTs. *)

val enter_secret : X86sim.Cpu.t -> secret_va:int -> secret_len:int -> Hypervisor.t
(** [enter] plus marking one region secret (mapping it only into
    {!sensitive_ept}); the region must already be guest-mapped. *)

val prefault : Hypervisor.t -> va:int -> len:int -> unit
(** Warm both EPTs for a range the way long-running processes are warm,
    so measurements are not dominated by one-time demand-fill exits.
    Secret pages are filled only in their owning EPT. *)

val prefault_all : Hypervisor.t -> unit
(** [prefault] over every page currently mapped by the guest. *)
