lib/vmx/hypervisor.ml: Array Cpu Ept Fault Hashtbl Insn Logs Mmu Pagetable Physmem Reg Tlb X86sim
