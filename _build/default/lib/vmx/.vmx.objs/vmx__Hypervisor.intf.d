lib/vmx/hypervisor.mli: X86sim
