lib/vmx/sandbox.mli: Hypervisor X86sim
