lib/vmx/sandbox.ml: Array Cpu Ept Hypervisor Mmu Pagetable Physmem Tlb X86sim
