(** Safe-region allocation: the paper's [saferegion_alloc(sz)].

    Regions live in the sensitive partition (at or above the 64 TiB split)
    so that one SFI mask / one MPX bound covers all of them. Each region is
    page-aligned with a guard page after it, mapped read-write; the
    technique applied later decides how it is locked down (pkey tag, EPT
    restriction, initial encryption, PROT_NONE). *)

type region = { va : int; size : int }

type allocator

val create_allocator : X86sim.Cpu.t -> allocator

val alloc : allocator -> size:int -> region
(** Mapped and zeroed. 16-byte multiple enforced (crypt compatibility);
    raises [Invalid_argument] otherwise. *)

val regions : allocator -> region list
(** Most recent first. *)

val of_sensitive_globals : Ir.Lower.t -> region list
(** The regions corresponding to a lowered module's [sensitive] globals —
    how the framework finds what to protect when the defense declared its
    safe regions in the IR. *)

val contains : region -> int -> bool
