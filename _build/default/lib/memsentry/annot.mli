(** The paper's literal developer-facing API (§3 "Usage").

    "The developer then allocates the safe regions using
    [saferegion_alloc(sz)] ... defense passes can use the function
    [saferegion_access(ins)] for every instruction that needs access to
    the safe region." These are thin, name-faithful wrappers over
    {!Safe_region} and {!Ir.Ir_types.mark_safe_access}, plus the
    static-library auto-annotation helper ("for the common case where
    these are contained in a static library, we have included a pass to
    automatically create these annotations"). *)

val saferegion_alloc : Safe_region.allocator -> int -> Safe_region.region
(** [saferegion_alloc a sz]. *)

val saferegion_access : Ir.Ir_types.modul -> int -> unit
(** [saferegion_access m ins_id]: annotate one instruction. Raises
    [Not_found] for unknown ids. *)

val annotate_runtime_functions : Ir.Ir_types.modul -> prefix:string -> int
(** The auto-annotation pass: every instruction of every function whose
    name starts with [prefix] (the defense's static-library namespace) is
    marked as allowed to touch safe regions. Returns how many functions
    were annotated. *)

val annotation_pass : prefix:string -> Ir.Pass.pass
(** {!annotate_runtime_functions} packaged for {!Ir.Pass.run}, to be
    scheduled after the defense pass and before lowering (Fig. 1). *)
