let saferegion_alloc allocator size = Safe_region.alloc allocator ~size

let saferegion_access m ins_id = Ir.Ir_types.mark_safe_access m ins_id

let starts_with ~prefix s =
  String.length s >= String.length prefix && String.sub s 0 (String.length prefix) = prefix

let annotate_runtime_functions m ~prefix =
  let n = ref 0 in
  List.iter
    (fun (f : Ir.Ir_types.func) ->
      if starts_with ~prefix f.Ir.Ir_types.fname then begin
        Ir.Ir_types.mark_function_safe m f.Ir.Ir_types.fname;
        incr n
      end)
    m.Ir.Ir_types.funcs;
  !n

let annotation_pass ~prefix =
  Ir.Pass.make ~name:(Printf.sprintf "annotate-runtime(%s)" prefix) (fun m ->
      ignore (annotate_runtime_functions m ~prefix))
