open X86sim

let check reg =
  [
    Insn.Mov_ri (Ir.Lower.scratch2, Layout.sfi_mask);
    Insn.Alu_rr (Insn.And, reg, Ir.Lower.scratch2);
  ]

let setup _cpu = ()
