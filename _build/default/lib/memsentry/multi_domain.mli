(** Multiple disjoint protection domains (paper §3.1: the two-domain model
    "can be extended into multiple and/or disjoint domains, depending on
    the technique", with Table 3 giving each technique's ceiling).

    This module builds a machine-level benchmark kernel with [n] distinct
    safe regions, each opened, touched and closed once per loop iteration,
    under three multi-domain schemes:

    - {b MPK}: one protection key per domain (hard ceiling: 16 incl. the
      default key); a switch is one register-preserving wrpkru pair.
      Cost per switch is flat in [n].
    - {b VMFUNC}: one EPT per domain plus the default (ceiling: 512 EPTP
      slots); a switch is a vmfunc pair. Flat in [n].
    - {b MPX bounds}: per-domain bound pairs checked with
      [bndcl]+[bndcu]. Beyond the partition bound (bnd0) and a staging
      register (bnd3), only two bound registers can stay resident, so
      domains past the second continually spill/reload through the bound
      table ([bndmov]) — "MPX also becomes much less favorable when many
      different domains are required, and because bounds must continuously
      be spilled to memory" (§6.3). Cost climbs with [n].

    The [domains] benchmark sweeps [n] and prints the three curves. *)

type scheme = Mpk_keys | Vmfunc_epts | Mpx_bounds

val scheme_name : scheme -> string

val max_domains : scheme -> int
(** MPK 15 usable keys, VMFUNC 511 usable EPTs, MPX bound-table capacity. *)

type prepared = { cpu : X86sim.Cpu.t; program : X86sim.Program.t }

val build : ?scheme:scheme -> ndomains:int -> iterations:int -> unit -> prepared
(** The kernel under a scheme ([None] via [build_baseline] for the 1.0
    reference). Raises [Invalid_argument] when [ndomains] exceeds the
    scheme's ceiling — the Table 3 limits, enforced. *)

val build_baseline : ndomains:int -> iterations:int -> unit -> prepared
(** Same accesses, no protection (regions still exist and are touched). *)

val run_cycles : prepared -> float
(** Execute to completion and return cycles; raises on fault. *)

val overhead : scheme -> ndomains:int -> iterations:int -> float
(** Convenience: protected vs baseline cycle ratio of the kernel. *)

val cost_per_access : scheme -> ndomains:int -> iterations:int -> float
(** Marginal cycles per protected domain access — flat in [n] for MPK and
    VMFUNC, climbing for MPX once bounds spill. *)
