(** The isolation techniques and their capability envelope (paper Table 3).

    The metadata here is not decorative: {!max_domains} and {!granularity}
    are enforced by the implementations (the MPK key allocator fails at 16
    domains, VMFUNC secrets are page-granular, crypt works on 128-bit
    chunks), and the report tests cross-check the two. *)

type t =
  | Sfi  (** address-based masking (software only) *)
  | Mpx  (** address-based single-bound check *)
  | Mpk of Mpk.Pkey.protection  (** domain-based protection keys *)
  | Vmfunc  (** domain-based EPT switching *)
  | Crypt  (** domain-based AES-NI in-place encryption *)
  | Sgx  (** domain-based enclave (restructuring, not instrumentation) *)
  | Mprotect  (** the traditional POSIX baseline *)
  | Isboxing
      (** extension: address-size-prefix sandboxing (ISBoxing, related
          work \[23\]): truncating the effective address to 32 bits is
          free, but confines the program to 4 GiB of address space *)

type isolation_class = Address_based | Domain_based

type granularity = Byte | Chunk16 | Page | Any

val name : t -> string

val isolation_class : t -> isolation_class

val max_domains : t -> int option
(** [None] = effectively unlimited. SFI: 48 (mask bit positions);
    MPX: 4 in registers (more via memory); MPK: 16; VMFUNC: 512 (EPTP
    list); crypt/SGX/mprotect: unlimited. *)

val granularity : t -> granularity
(** Minimum size/alignment of an isolated datum (Table 3). *)

val requires_kernel_or_hypervisor : t -> bool
(** VMFUNC needs a (small) privileged component; mprotect needs the
    kernel on every switch; the rest are pure user-space after setup. *)

val hardware_since : t -> string
(** Earliest commodity availability, per the paper's discussion. *)

val all : t list
(** One representative per technique (MPK with [No_access]); the paper's
    set — the ISBoxing extension is excluded. *)
