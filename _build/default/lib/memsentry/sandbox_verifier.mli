(** NaCl-style static verification of address-based instrumentation.

    Native Client's key idea (paper §7 \[56, 70\]) is to {e verify} the
    sandboxed binary instead of trusting the compiler: a small checker
    proves that every memory access is confined. This module provides that
    checker for this machine: a linear abstract interpretation over the
    final instruction stream which tracks, per register, whether it
    provably holds a pointer confined to the nonsensitive partition —
    established by the recognized patterns:

    - SFI: [mov r13, 0x3fffffffffff] followed by [and r, r13] (or the
      immediate form [and r, mask]);
    - MPX: [bndcu r, bnd0] under the stated [bnd0] bound;
    - ISBoxing: [lea32 r, ...] (a 32-bit address is below any split);
    - constants: [mov r, imm] with [0 <= imm < split].

    The analysis is deliberately conservative: all knowledge is dropped at
    labels (anything can jump there) and after calls and branches, so a
    clean verdict holds on every execution path. Stack traffic
    (rsp-relative with a bounded displacement, push/pop/call/ret) is
    accepted, matching the paper's observation that spills need no
    instrumentation.

    Accesses that do not verify are returned as {!violation}s. For a
    program instrumented with no [safe] annotations the list is empty; a
    defense's own safe-region accesses are reported — which is the point:
    the checker shrinks the trusted computing base to an audit of exactly
    those locations. *)

type policy = Sfi_policy | Mpx_policy | Isboxing_policy

type violation = { index : int; insn : string; reason : string }

type result = Clean | Violations of violation list

val verify :
  ?split:int ->
  ?bnd0_upper:int ->
  ?kind:Instr.access_kind ->
  policy:policy ->
  X86sim.Program.t ->
  result
(** [split] defaults to {!X86sim.Layout.sensitive_base}; [bnd0_upper] is
    the bound the loader is assumed to put in bnd0 (defaults to
    [split - 1]) and must satisfy [bnd0_upper < split] for MPX verification
    to be sound — checked, [Invalid_argument] otherwise. [kind] restricts
    which accesses must verify (default all): an integrity-only deployment
    (shadow stack) only needs [Writes] confined. *)

val violation_count : result -> int

val pp_result : Format.formatter -> result -> unit
