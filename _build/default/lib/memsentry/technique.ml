type t =
  | Sfi
  | Mpx
  | Mpk of Mpk.Pkey.protection
  | Vmfunc
  | Crypt
  | Sgx
  | Mprotect
  | Isboxing

type isolation_class = Address_based | Domain_based

type granularity = Byte | Chunk16 | Page | Any

let name = function
  | Sfi -> "SFI"
  | Mpx -> "MPX"
  | Mpk Mpk.Pkey.No_access -> "MPK"
  | Mpk Mpk.Pkey.Read_only -> "MPK (integrity)"
  | Mpk Mpk.Pkey.Read_write -> "MPK (off)"
  | Vmfunc -> "VMFUNC"
  | Crypt -> "crypt"
  | Sgx -> "SGX"
  | Mprotect -> "mprotect"
  | Isboxing -> "ISBoxing"

let isolation_class = function
  | Sfi | Mpx | Isboxing -> Address_based
  | Mpk _ | Vmfunc | Crypt | Sgx | Mprotect -> Domain_based

let max_domains = function
  | Sfi -> Some 48
  | Mpx -> Some 4 (* in registers; unbounded when spilled to memory *)
  | Mpk _ -> Some 16
  | Vmfunc -> Some 512
  | Isboxing -> Some 1 (* everything above 4 GiB is one sealed partition *)
  | Crypt | Sgx | Mprotect -> None

let granularity = function
  | Sfi | Isboxing -> Any (* depends on the least significant bit of the mask *)
  | Mpx -> Byte
  | Mpk _ -> Page
  | Vmfunc -> Page
  | Crypt -> Chunk16
  | Sgx -> Page
  | Mprotect -> Page

let requires_kernel_or_hypervisor = function
  | Vmfunc | Mprotect | Sgx -> true
  | Sfi | Mpx | Mpk _ | Crypt | Isboxing -> false

let hardware_since = function
  | Sfi -> "any x86-64"
  | Mpx -> "Intel Skylake (2015)"
  | Mpk _ -> "announced (no shipping CPU at publication)"
  | Vmfunc -> "Intel Haswell (2013)"
  | Crypt -> "Intel Westmere (2010, AES-NI)"
  | Sgx -> "Intel Skylake (2015, SGX1)"
  | Mprotect -> "any"
  | Isboxing -> "any x86-64 (0x67 prefix)"

let all = [ Sfi; Mpx; Mpk Mpk.Pkey.No_access; Vmfunc; Crypt; Sgx; Mprotect ]
