open X86sim
open Ms_util

type t = { regions : Safe_region.region list }

let mapped_len (r : Safe_region.region) = Bitops.align_up Physmem.page_size r.Safe_region.size

let mprotect_seq (r : Safe_region.region) ~prot =
  [
    Insn.Push Reg.rax;
    Insn.Push Reg.rdi;
    Insn.Push Reg.rsi;
    Insn.Push Reg.rdx;
    Insn.Mov_ri (Reg.rax, Cpu.sys_mprotect);
    Insn.Mov_ri (Reg.rdi, r.Safe_region.va);
    Insn.Mov_ri (Reg.rsi, mapped_len r);
    Insn.Mov_ri (Reg.rdx, prot);
    Insn.Syscall;
    Insn.Pop Reg.rdx;
    Insn.Pop Reg.rsi;
    Insn.Pop Reg.rdi;
    Insn.Pop Reg.rax;
  ]

let setup cpu regions =
  List.iter
    (fun (r : Safe_region.region) ->
      Mmu.protect_range cpu.Cpu.mmu ~va:r.Safe_region.va ~len:(mapped_len r) ~readable:false
        ~writable:false)
    regions;
  { regions }

let enter t = List.concat_map (fun r -> mprotect_seq r ~prot:3) t.regions
let leave t = List.concat_map (fun r -> mprotect_seq r ~prot:0) t.regions
