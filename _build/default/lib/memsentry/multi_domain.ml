open X86sim

type scheme = Mpk_keys | Vmfunc_epts | Mpx_bounds

let scheme_name = function
  | Mpk_keys -> "MPK (1 key/domain)"
  | Vmfunc_epts -> "VMFUNC (1 EPT/domain)"
  | Mpx_bounds -> "MPX (1 bound/domain)"

let max_domains = function
  | Mpk_keys -> 15
  | Vmfunc_epts -> 511
  | Mpx_bounds -> Mpx.Bounds.table_capacity

type prepared = { cpu : Cpu.t; program : Program.t }

let region_size = 64
let filler_chain = 1

(* pkru that access-disables every domain key except [except] (0-based
   domain index; -1 = close everything). Keys are 1..n. *)
let pkru_closing_all ~n ~except =
  let v = ref 0 in
  for d = 0 to n - 1 do
    if d <> except then v := !v lor (1 lsl (2 * (d + 1)))
  done;
  !v

let preserving3 seq =
  [ Insn.Push Reg.rax; Insn.Push Reg.rcx; Insn.Push Reg.rdx ]
  @ seq
  @ [ Insn.Pop Reg.rdx; Insn.Pop Reg.rcx; Insn.Pop Reg.rax ]

let wrpkru_seq value =
  preserving3
    [
      Insn.Mov_ri (Reg.rax, value);
      Insn.Mov_ri (Reg.rcx, 0);
      Insn.Mov_ri (Reg.rdx, 0);
      Insn.Wrpkru;
    ]

let vmfunc_seq idx =
  [ Insn.Push Reg.rax; Insn.Push Reg.rcx ]
  @ Vmx.Hypervisor.vmfunc_seq ~ept:idx
  @ [ Insn.Pop Reg.rcx; Insn.Pop Reg.rax ]

let check_limit scheme ndomains =
  if ndomains < 1 then invalid_arg "Multi_domain: need at least one domain";
  if ndomains > max_domains scheme then
    invalid_arg
      (Printf.sprintf "Multi_domain: %s supports at most %d domains (Table 3)"
         (scheme_name scheme) (max_domains scheme))

(* The shared kernel: per iteration, one store into each domain's region,
   bracketed/checked per [protect]. *)
let assemble_kernel ~iterations ~regions ~protect =
  let access d (r : Safe_region.region) =
    let open_seq, check_seq, close_seq = protect d r in
    open_seq
    @ [ Insn.Mov_ri (Ir.Lower.scratch1, r.Safe_region.va) ]
    @ check_seq
    @ [ Insn.Load (Reg.rbx, Insn.mem ~base:Ir.Lower.scratch1 0) ]
    @ close_seq
  in
  let body = List.concat (List.mapi access regions) in
  let items =
    [
      Program.Label "main";
      Program.I (Insn.Mov_ri (Reg.rbx, 42));
      Program.I (Insn.Mov_ri (Reg.r14, 1));
      Program.I (Insn.Mov_ri (Reg.r15, iterations));
      Program.Label "loop";
    ]
    @ List.init filler_chain (fun _ -> Program.I (Insn.Alu_ri (Insn.Imul, Reg.r14, 3)))
    @ List.map (fun i -> Program.I i) body
    @ [
        Program.I (Insn.Alu_ri (Insn.Sub, Reg.r15, 1));
        Program.I (Insn.Jcc (Insn.Ne, Insn.target "loop"));
        Program.I Insn.Halt;
      ]
  in
  Program.assemble items

let fresh_regions ~ndomains =
  let cpu = Cpu.create () in
  let alloc = Safe_region.create_allocator cpu in
  let regions = List.init ndomains (fun _ -> Safe_region.alloc alloc ~size:region_size) in
  (cpu, regions)

let build_baseline ~ndomains ~iterations () =
  let cpu, regions = fresh_regions ~ndomains in
  let program =
    assemble_kernel ~iterations ~regions ~protect:(fun _ _ -> ([], [], []))
  in
  Cpu.load_program cpu program;
  { cpu; program }

let build ?(scheme = Mpk_keys) ~ndomains ~iterations () =
  check_limit scheme ndomains;
  let cpu, regions = fresh_regions ~ndomains in
  let protect =
    match scheme with
    | Mpk_keys ->
      List.iteri
        (fun d (r : Safe_region.region) ->
          Mpk.Pkey.assign cpu ~va:r.Safe_region.va ~len:r.Safe_region.size ~key:(d + 1))
        regions;
      Cpu.set_pkru cpu (pkru_closing_all ~n:ndomains ~except:(-1));
      fun d _ ->
        ( wrpkru_seq (pkru_closing_all ~n:ndomains ~except:d),
          [],
          wrpkru_seq (pkru_closing_all ~n:ndomains ~except:(-1)) )
    | Vmfunc_epts ->
      let hv = Vmx.Hypervisor.create cpu ~num_epts:(ndomains + 1) in
      List.iteri
        (fun d (r : Safe_region.region) ->
          Vmx.Hypervisor.mark_secret hv ~va:r.Safe_region.va ~len:r.Safe_region.size
            ~ept:(d + 1))
        regions;
      Vmx.Sandbox.prefault_all hv;
      fun d _ -> (vmfunc_seq (d + 1), [], vmfunc_seq 0)
    | Mpx_bounds ->
      (* Per-domain bounds: bnd1-2 hold the first two domains resident;
         every further domain reloads the staging register bnd3 from the
         bound table before checking (GCC-style spilling). The table also
         holds the resident ones so the split is purely a register-count
         effect. *)
      let table = Mpx.Bounds.table_create cpu in
      List.iteri
        (fun d (r : Safe_region.region) ->
          let lo = r.Safe_region.va and hi = r.Safe_region.va + r.Safe_region.size - 1 in
          let slot = Mpx.Bounds.table_slot_va table d in
          Mmu.poke64 cpu.Cpu.mmu ~va:slot lo;
          Mmu.poke64 cpu.Cpu.mmu ~va:(slot + 8) hi;
          if d < 2 then begin
            cpu.Cpu.bnd_lower.(d + 1) <- lo;
            cpu.Cpu.bnd_upper.(d + 1) <- hi
          end)
        regions;
      fun d _ ->
        if d < 2 then
          ([], [ Insn.Bndcl (d + 1, Ir.Lower.scratch1); Insn.Bndcu (d + 1, Ir.Lower.scratch1) ], [])
        else
          ( [],
            [
              Insn.Bndmov_load (3, Insn.mem_abs (Mpx.Bounds.table_slot_va table d));
              Insn.Bndcl (3, Ir.Lower.scratch1);
              Insn.Bndcu (3, Ir.Lower.scratch1);
            ],
            [] )
  in
  let program = assemble_kernel ~iterations ~regions ~protect in
  Cpu.load_program cpu program;
  { cpu; program }

let run_cycles p =
  match Cpu.run p.cpu with
  | Cpu.Halted -> Cpu.cycles p.cpu
  | Cpu.Out_of_fuel -> failwith "Multi_domain: kernel did not terminate"

let overhead scheme ~ndomains ~iterations =
  let base = run_cycles (build_baseline ~ndomains ~iterations ()) in
  let prot = run_cycles (build ~scheme ~ndomains ~iterations ()) in
  prot /. base

let cost_per_access scheme ~ndomains ~iterations =
  let base = run_cycles (build_baseline ~ndomains ~iterations ()) in
  let prot = run_cycles (build ~scheme ~ndomains ~iterations ()) in
  (prot -. base) /. float_of_int (iterations * ndomains)
