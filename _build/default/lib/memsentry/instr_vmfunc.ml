open X86sim

type t = { hv : Vmx.Hypervisor.t }

let preserving seq =
  [ Insn.Push Reg.rax; Insn.Push Reg.rcx ] @ seq @ [ Insn.Pop Reg.rcx; Insn.Pop Reg.rax ]

let enter = preserving (Vmx.Hypervisor.vmfunc_seq ~ept:Vmx.Sandbox.sensitive_ept)
let leave = preserving (Vmx.Hypervisor.vmfunc_seq ~ept:Vmx.Sandbox.nonsensitive_ept)

let setup cpu regions =
  let hv = Vmx.Sandbox.enter cpu in
  List.iter
    (fun (r : Safe_region.region) ->
      Vmx.Hypervisor.mark_secret hv ~va:r.Safe_region.va ~len:r.Safe_region.size
        ~ept:Vmx.Sandbox.sensitive_ept)
    regions;
  Vmx.Sandbox.prefault_all hv;
  { hv }

let hypervisor t = t.hv
