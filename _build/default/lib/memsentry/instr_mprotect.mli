(** The traditional POSIX baseline: toggle page permissions per access.

    Safe regions sit PROT_NONE by default; a switch is an [mprotect]
    syscall pair (make accessible / make inaccessible). Every switch pays
    two kernel entries plus TLB shootdowns — the paper's introduction
    quotes 20-50x slowdowns for this strategy, which the [extras]
    benchmark reproduces. *)

type t

val setup : X86sim.Cpu.t -> Safe_region.region list -> t
(** Map the regions PROT_NONE. *)

val enter : t -> X86sim.Insn.t list
(** mprotect(PROT_READ|PROT_WRITE) each region; preserves registers. *)

val leave : t -> X86sim.Insn.t list
(** mprotect(PROT_NONE) each region. *)
