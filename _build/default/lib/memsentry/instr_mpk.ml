type t = { key : int; protection : Mpk.Pkey.protection }

let setup cpu ?(key = 1) ~protection regions =
  List.iter
    (fun (r : Safe_region.region) ->
      Mpk.Pkey.assign cpu ~va:r.Safe_region.va ~len:r.Safe_region.size ~key)
    regions;
  Mpk.Pkey.close_default cpu ~key ~protection;
  { key; protection }

let enter _t = Mpk.Pkey.open_seq_preserving

let leave t = Mpk.Pkey.close_seq_preserving ~key:t.key ~protection:t.protection

let key t = t.key
