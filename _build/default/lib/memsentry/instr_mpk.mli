(** Domain-based isolation via protection keys (paper §3.1 "MPK").

    Setup tags every safe region with one protection key and closes it in
    [pkru]; a domain switch is a [wrpkru] pair. The switch sequences
    save/restore rax/rcx/rdx (which [wrpkru] needs in fixed states) — the
    register-clobbering cost the paper highlights. The [protection]
    parameter selects what the {e closed} state forbids: [No_access] for
    confidentiality + integrity, [Read_only] for integrity-only defenses
    such as shadow stacks. *)

type t

val setup :
  X86sim.Cpu.t -> ?key:int -> protection:Mpk.Pkey.protection ->
  Safe_region.region list -> t
(** Tag all regions with [key] (default 1) and close the domain. *)

val enter : t -> X86sim.Insn.t list
(** Open the sensitive domain (register-preserving wrpkru sequence). *)

val leave : t -> X86sim.Insn.t list

val key : t -> int
