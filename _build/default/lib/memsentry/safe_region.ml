open X86sim
open Ms_util

type region = { va : int; size : int }

type allocator = { cpu : Cpu.t; mutable cursor : int; mutable allocated : region list }

(* Keep allocator-created regions clear of Glayout's sensitive globals by
   starting a healthy distance into the sensitive partition. *)
let allocator_base = Layout.sensitive_base + 0x1000_0000

let create_allocator cpu = { cpu; cursor = allocator_base; allocated = [] }

let alloc a ~size =
  if size <= 0 || size mod 16 <> 0 then
    invalid_arg "Safe_region.alloc: size must be a positive multiple of 16";
  let va = a.cursor in
  let mapped = Bitops.align_up Physmem.page_size size in
  a.cursor <- a.cursor + mapped + Physmem.page_size;
  Mmu.map_range a.cpu.Cpu.mmu ~va ~len:mapped ~writable:true;
  let r = { va; size } in
  a.allocated <- r :: a.allocated;
  r

let regions a = a.allocated

let of_sensitive_globals (lowered : Ir.Lower.t) =
  List.filter_map
    (fun (e : Ir.Glayout.entry) ->
      if e.Ir.Glayout.sensitive then Some { va = e.Ir.Glayout.va; size = e.Ir.Glayout.size }
      else None)
    lowered.Ir.Lower.layout

let contains r addr = addr >= r.va && addr < r.va + r.size
