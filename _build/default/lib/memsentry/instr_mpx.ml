let check reg = [ Mpx.Bounds.check_before reg ]

let check_full reg = Mpx.Bounds.check_both reg

let setup cpu = Mpx.Bounds.setup_partition cpu
