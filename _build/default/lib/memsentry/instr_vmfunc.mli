(** Domain-based isolation via EPT switching (paper §3.1, §5.1).

    Setup virtualizes the process Dune-style (two EPTs), marks the safe
    regions secret (mapped only in the sensitive EPT) and prefaults every
    currently-mapped page so steady-state measurements are not dominated
    by one-time demand-fill exits. A switch is a register-preserving
    [vmfunc] — no VM exit — but the process pays the sandbox tax: every
    syscall becomes a hypercall. *)

type t

val setup : X86sim.Cpu.t -> Safe_region.region list -> t
(** Raises [Invalid_argument] if the CPU is already virtualized. *)

val enter : X86sim.Insn.t list
(** Switch to the sensitive EPT (preserves rax/rcx via the stack). *)

val leave : X86sim.Insn.t list

val hypervisor : t -> Vmx.Hypervisor.t
