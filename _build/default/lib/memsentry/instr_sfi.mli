(** Address-based isolation by software fault isolation (paper Fig. 2c).

    Before each instrumented access the pointer is ANDed with the partition
    mask, unconditionally forcing it below the 64 TiB split. Purely
    software — runs on any x86-64 — but the mask load + [and] sit on the
    address dependency chain, and a masked wild pointer silently becomes a
    {e different valid pointer} instead of faulting (the paper's
    determinism caveat, demonstrated in the tests). *)

val check : X86sim.Reg.gpr -> X86sim.Insn.t list
(** [movabs r13, 0x3fffffffffff; and reg, r13]. *)

val setup : X86sim.Cpu.t -> unit
(** Nothing to do (software only); present for interface uniformity. *)
