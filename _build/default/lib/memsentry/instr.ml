open X86sim

type access_kind = Reads | Writes | Reads_and_writes

type switch_policy =
  | At_call_ret
  | At_indirect_branches
  | At_syscalls
  | At_safe_accesses

let scratch = Ir.Lower.scratch1

let kind_matches kind insn =
  match kind with
  | Reads -> Insn.is_mem_read insn
  | Writes -> Insn.is_mem_write insn
  | Reads_and_writes -> Insn.is_mem_read insn || Insn.is_mem_write insn

(* Rewrite one data access: split the effective address into scratch,
   run the check on it, then access through the verified pointer. *)
let rewrite_access check insn =
  match insn with
  | Insn.Load (d, m) ->
    (Insn.Lea (scratch, m) :: check scratch) @ [ Insn.Load (d, Insn.mem ~base:scratch 0) ]
  | Insn.Store (m, s) ->
    (Insn.Lea (scratch, m) :: check scratch) @ [ Insn.Store (Insn.mem ~base:scratch 0, s) ]
  | Insn.Store_i (m, v) ->
    (Insn.Lea (scratch, m) :: check scratch) @ [ Insn.Store_i (Insn.mem ~base:scratch 0, v) ]
  | Insn.Movdqa_load (x, m) ->
    (Insn.Lea (scratch, m) :: check scratch)
    @ [ Insn.Movdqa_load (x, Insn.mem ~base:scratch 0) ]
  | Insn.Movdqa_store (m, x) ->
    (Insn.Lea (scratch, m) :: check scratch)
    @ [ Insn.Movdqa_store (Insn.mem ~base:scratch 0, x) ]
  | other -> [ other ]

(* ISBoxing: replace the address computation with its 32-bit-prefixed
   form; the access itself is unchanged. *)
let rewrite_access_lea32 insn =
  match insn with
  | Insn.Load (d, m) ->
    [ Insn.Lea32 (scratch, m); Insn.Load (d, Insn.mem ~base:scratch 0) ]
  | Insn.Store (m, s) ->
    [ Insn.Lea32 (scratch, m); Insn.Store (Insn.mem ~base:scratch 0, s) ]
  | Insn.Store_i (m, v) ->
    [ Insn.Lea32 (scratch, m); Insn.Store_i (Insn.mem ~base:scratch 0, v) ]
  | Insn.Movdqa_load (x, m) ->
    [ Insn.Lea32 (scratch, m); Insn.Movdqa_load (x, Insn.mem ~base:scratch 0) ]
  | Insn.Movdqa_store (m, x) ->
    [ Insn.Lea32 (scratch, m); Insn.Movdqa_store (Insn.mem ~base:scratch 0, x) ]
  | other -> [ other ]

let address_based_gen ~rewrite ~kind mitems =
  List.concat_map
    (fun (mi : Ir.Lower.mitem) ->
      match mi.Ir.Lower.item with
      | Program.Label _ as l -> [ l ]
      | Program.I insn ->
        if
          mi.Ir.Lower.cls = Ir.Lower.Data_access
          && (not mi.Ir.Lower.safe)
          && kind_matches kind insn
        then List.map (fun x -> Program.I x) (rewrite insn)
        else [ Program.I insn ])
    mitems

let address_based_lea32 ~kind mitems = address_based_gen ~rewrite:rewrite_access_lea32 ~kind mitems

let address_based ~check ~kind mitems =
  address_based_gen ~rewrite:(rewrite_access check) ~kind mitems

let is_switch_point policy (mi : Ir.Lower.mitem) insn =
  match policy with
  | At_call_ret -> (
    match insn with Insn.Call _ | Insn.Call_r _ | Insn.Ret -> true | _ -> false)
  | At_indirect_branches -> (
    match insn with Insn.Call_r _ | Insn.Jmp_r _ -> true | _ -> false)
  | At_syscalls -> ( match insn with Insn.Syscall -> true | _ -> false)
  | At_safe_accesses -> mi.Ir.Lower.cls = Ir.Lower.Data_access && mi.Ir.Lower.safe

let domain_based ~enter ~leave ~policy mitems =
  let wrap = List.map (fun x -> Program.I x) in
  List.concat_map
    (fun (mi : Ir.Lower.mitem) ->
      match mi.Ir.Lower.item with
      | Program.Label _ as l -> [ l ]
      | Program.I insn ->
        if is_switch_point policy mi insn then
          match policy with
          | At_safe_accesses ->
            (* Semantically meaningful bracketing: open, access, close. *)
            wrap enter @ [ Program.I insn ] @ wrap leave
          | At_call_ret | At_indirect_branches | At_syscalls ->
            (* Cost-equivalent placement of one open+close pair per switch
               point (the Figures 4-6 methodology): the pair runs before
               the instruction so control transfers never leave the
               sensitive domain enabled. *)
            wrap enter @ wrap leave @ [ Program.I insn ]
        else [ Program.I insn ])
    mitems

let strip mitems = List.map (fun (mi : Ir.Lower.mitem) -> mi.Ir.Lower.item) mitems

let count_instrumentable ~kind mitems =
  List.length
    (List.filter
       (fun (mi : Ir.Lower.mitem) ->
         match mi.Ir.Lower.item with
         | Program.Label _ -> false
         | Program.I insn ->
           mi.Ir.Lower.cls = Ir.Lower.Data_access
           && (not mi.Ir.Lower.safe)
           && kind_matches kind insn)
       mitems)

let count_switch_points ~policy mitems =
  List.length
    (List.filter
       (fun (mi : Ir.Lower.mitem) ->
         match mi.Ir.Lower.item with
         | Program.Label _ -> false
         | Program.I insn -> is_switch_point policy mi insn)
       mitems)
