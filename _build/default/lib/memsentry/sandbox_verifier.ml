open X86sim

type policy = Sfi_policy | Mpx_policy | Isboxing_policy

type violation = { index : int; insn : string; reason : string }

type result = Clean | Violations of violation list

(* Abstract register state. [Holds_mask] marks a register that provably
   contains the partition mask constant; [Confined] a register that
   provably holds a pointer below the split. *)
type aval = Unknown | Holds_mask | Confined

let max_stack_disp = 4096

let verify ?split ?bnd0_upper ?(kind = Instr.Reads_and_writes) ~policy prog =
  let split = Option.value split ~default:Layout.sensitive_base in
  let bnd0_upper = Option.value bnd0_upper ~default:(split - 1) in
  if policy = Mpx_policy && bnd0_upper >= split then
    invalid_arg "Sandbox_verifier.verify: bnd0 bound does not confine to the split";
  let code = Program.code prog in
  let label_indices =
    List.fold_left (fun acc (_, i) -> i :: acc) [] (Program.labels prog)
  in
  let is_label_target = Array.make (Array.length code + 1) false in
  List.iter (fun i -> if i <= Array.length code then is_label_target.(i) <- true) label_indices;
  let state = Array.make Reg.gpr_count Unknown in
  let reset () = Array.fill state 0 Reg.gpr_count Unknown in
  let violations = ref [] in
  let report index insn reason =
    violations := { index; insn = Insn.to_string_named insn; reason } :: !violations
  in
  let confines_mask imm = imm >= 0 && imm < split in
  (* Is [m] an acceptable stack access? *)
  let is_stack (m : Insn.mem) =
    m.Insn.base = Reg.rsp && m.Insn.index < 0 && m.Insn.disp >= 0
    && m.Insn.disp <= max_stack_disp
  in
  (* Is [m] verified under the current abstract state? *)
  let access_ok (m : Insn.mem) =
    if is_stack m then true
    else if m.Insn.base >= 0 && m.Insn.index < 0 && m.Insn.disp = 0 then
      state.(m.Insn.base) = Confined
    else if m.Insn.base < 0 && m.Insn.index < 0 then
      (* absolute address *)
      confines_mask m.Insn.disp
    else false
  in
  let kind_matches insn =
    match kind with
    | Instr.Reads -> Insn.is_mem_read insn
    | Instr.Writes -> Insn.is_mem_write insn
    | Instr.Reads_and_writes -> true
  in
  let check_access idx insn m =
    if kind_matches insn && not (access_ok m) then
      report idx insn "memory access through an unverified pointer"
  in
  let clobber r = if r >= 0 then state.(r) <- Unknown in
  let step idx (insn : Insn.t) =
    (* Accesses are checked against the state *before* the instruction's
       own register effects. *)
    (match insn with
    | Insn.Load (_, m)
    | Insn.Store (m, _)
    | Insn.Store_i (m, _)
    | Insn.Movdqa_load (_, m)
    | Insn.Movdqa_store (m, _)
    | Insn.Bndmov_store (m, _)
    | Insn.Bndmov_load (_, m) -> check_access idx insn m
    | _ -> ());
    (* Transfer function. *)
    match insn with
    | Insn.Mov_ri (d, imm) ->
      state.(d) <-
        (if imm = Layout.sfi_mask && Layout.sfi_mask < split then Holds_mask
         else if confines_mask imm then Confined
         else Unknown)
    | Insn.Mov_rr (d, s) -> state.(d) <- state.(s)
    | Insn.Lea (d, _) -> clobber d
    | Insn.Lea32 (d, _) ->
      (* 32-bit effective addresses are below any realistic split. *)
      state.(d) <- (if policy = Isboxing_policy && split > 0x1_0000_0000 then Confined else Unknown)
    | Insn.Load (d, _) | Insn.Pop d | Insn.Movq_rx (d, _) | Insn.Mov_label (d, _) -> clobber d
    | Insn.Rdpkru -> clobber Reg.rax
    | Insn.Alu_rr (Insn.And, d, s) ->
      if policy = Sfi_policy && state.(s) = Holds_mask then state.(d) <- Confined
      else clobber d
    | Insn.Alu_ri (Insn.And, d, imm) ->
      if policy = Sfi_policy && confines_mask imm && imm >= 0 then state.(d) <- Confined
      else clobber d
    | Insn.Alu_rr (_, d, _) | Insn.Alu_ri (_, d, _) -> clobber d
    | Insn.Bndcu (0, r) ->
      (* A survived bndcu proves r <= bnd0_upper < split. *)
      if policy = Mpx_policy then state.(r) <- Confined
    | Insn.Bndcu _ | Insn.Bndcl _ | Insn.Bnd_set _ | Insn.Bndmov_store _ -> ()
    | Insn.Bndmov_load _ -> ()
    | Insn.Syscall ->
      (* Kernel may write rax. *)
      clobber Reg.rax
    | Insn.Call _ | Insn.Call_r _ | Insn.Ret | Insn.Jmp _ | Insn.Jmp_r _ | Insn.Jcc _
    | Insn.Vmcall | Insn.Cpuid ->
      (* Control transfer or black box: drop everything. *)
      reset ()
    | Insn.Wrpkru | Insn.Vmfunc ->
      (* These require fixed rax/rcx/rdx and do not write GPRs. *)
      ()
    | Insn.Store _ | Insn.Store_i _ | Insn.Push _ | Insn.Movdqa_load _ | Insn.Movdqa_store _
    | Insn.Movq_xr _ | Insn.Pxor _ | Insn.Aesenc _ | Insn.Aesenclast _ | Insn.Aesdec _
    | Insn.Aesdeclast _ | Insn.Aeskeygenassist _ | Insn.Aesimc _ | Insn.Vext_high _
    | Insn.Vins_high _ | Insn.Fp_arith _ | Insn.Nop | Insn.Halt | Insn.Mfence | Insn.Cmp_rr _
    | Insn.Cmp_ri _ | Insn.Test_rr _ -> ()
  in
  Array.iteri
    (fun idx insn ->
      if is_label_target.(idx) then reset ();
      step idx insn)
    code;
  match List.rev !violations with [] -> Clean | vs -> Violations vs

let violation_count = function Clean -> 0 | Violations vs -> List.length vs

let pp_result fmt = function
  | Clean -> Format.pp_print_string fmt "clean: every access is provably confined"
  | Violations vs ->
    Format.fprintf fmt "%d unverified access(es):@." (List.length vs);
    List.iter
      (fun v -> Format.fprintf fmt "  @%d  %s  (%s)@." v.index v.insn v.reason)
      vs
