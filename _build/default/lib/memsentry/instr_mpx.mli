(** Address-based isolation via MPX (paper §5.4, Fig. 2b).

    One [bndcu ptr, bnd0] before each instrumented access, with bnd0 =
    [\[0, 64 TiB)] loaded once at startup. Because the partition's lower
    bound is zero and addresses are unsigned, no [bndcl] is needed — the
    single-check design that makes MPX cheaper than SFI (the check has no
    dependent consumer, unlike SFI's [and]). Violations raise a precise
    #BR, unlike SFI's silent redirection. Assumes bnd0 is otherwise unused
    and the [bndpreserve] convention (no implicit bound reloads). *)

val check : X86sim.Reg.gpr -> X86sim.Insn.t list
(** The single [bndcu]. *)

val check_full : X86sim.Reg.gpr -> X86sim.Insn.t list
(** [bndcl] + [bndcu] — the GCC-style double check, kept for the ablation
    benchmark that reproduces the paper's "full bounds check" comparison. *)

val setup : X86sim.Cpu.t -> unit
(** Load the partition bound into bnd0 (loader-side). *)
