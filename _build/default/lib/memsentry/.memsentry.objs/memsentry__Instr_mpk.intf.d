lib/memsentry/instr_mpk.mli: Mpk Safe_region X86sim
