lib/memsentry/framework.ml: Cpu Instr Instr_crypt Instr_mpk Instr_mprotect Instr_mpx Instr_sfi Instr_vmfunc Ir List Logs Mmu Ms_util Program Safe_region Technique Vmx X86sim
