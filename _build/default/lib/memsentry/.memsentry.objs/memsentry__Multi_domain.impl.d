lib/memsentry/multi_domain.ml: Array Cpu Insn Ir List Mmu Mpk Mpx Printf Program Reg Safe_region Vmx X86sim
