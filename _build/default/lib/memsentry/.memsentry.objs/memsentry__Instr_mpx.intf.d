lib/memsentry/instr_mpx.mli: X86sim
