lib/memsentry/technique.ml: Mpk
