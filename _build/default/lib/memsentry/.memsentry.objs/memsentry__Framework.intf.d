lib/memsentry/framework.mli: Cpu Instr Instr_crypt Ir Program Safe_region Technique Vmx X86sim
