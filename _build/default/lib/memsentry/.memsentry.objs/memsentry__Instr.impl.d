lib/memsentry/instr.ml: Insn Ir List Program X86sim
