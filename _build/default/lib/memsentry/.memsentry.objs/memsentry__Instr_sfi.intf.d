lib/memsentry/instr_sfi.mli: X86sim
