lib/memsentry/instr_vmfunc.mli: Safe_region Vmx X86sim
