lib/memsentry/multi_domain.mli: X86sim
