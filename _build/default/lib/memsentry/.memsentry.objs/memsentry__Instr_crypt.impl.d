lib/memsentry/instr_crypt.ml: Aesni Array Bytes Cpu Insn Ir List Mmu Ms_util Safe_region X86sim
