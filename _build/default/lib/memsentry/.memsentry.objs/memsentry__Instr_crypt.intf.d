lib/memsentry/instr_crypt.mli: Aesni Safe_region X86sim
