lib/memsentry/instr_sfi.ml: Insn Ir Layout X86sim
