lib/memsentry/instr_mpk.ml: List Mpk Safe_region
