lib/memsentry/technique.mli: Mpk
