lib/memsentry/safe_region.ml: Bitops Cpu Ir Layout List Mmu Ms_util Physmem X86sim
