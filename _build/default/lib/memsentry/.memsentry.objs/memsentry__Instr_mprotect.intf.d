lib/memsentry/instr_mprotect.mli: Safe_region X86sim
