lib/memsentry/sandbox_verifier.mli: Format Instr X86sim
