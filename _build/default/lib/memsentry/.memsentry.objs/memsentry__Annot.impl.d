lib/memsentry/annot.ml: Ir List Printf Safe_region String
