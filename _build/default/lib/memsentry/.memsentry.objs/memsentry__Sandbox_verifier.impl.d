lib/memsentry/sandbox_verifier.ml: Array Format Insn Instr Layout List Option Program Reg X86sim
