lib/memsentry/instr_mpx.ml: Mpx
