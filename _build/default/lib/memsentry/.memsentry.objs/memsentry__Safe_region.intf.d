lib/memsentry/safe_region.mli: Ir X86sim
