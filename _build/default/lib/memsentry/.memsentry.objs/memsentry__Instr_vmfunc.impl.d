lib/memsentry/instr_vmfunc.ml: Insn List Reg Safe_region Vmx X86sim
