lib/memsentry/annot.mli: Ir Safe_region
