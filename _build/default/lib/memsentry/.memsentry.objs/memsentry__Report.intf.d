lib/memsentry/report.mli:
