lib/memsentry/report.ml: List Ms_util Table_fmt Technique
