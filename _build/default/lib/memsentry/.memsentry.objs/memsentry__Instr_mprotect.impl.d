lib/memsentry/instr_mprotect.ml: Bitops Cpu Insn List Mmu Ms_util Physmem Reg Safe_region X86sim
