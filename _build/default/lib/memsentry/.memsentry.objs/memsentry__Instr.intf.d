lib/memsentry/instr.mli: Insn Ir Program Reg X86sim
