(** SGX enclave model.

    Captures exactly the properties the paper evaluates and argues from
    (§3.1 "SGX"): enclave memory is inaccessible to the rest of the
    process (here it is not even part of the simulated address space);
    mappings are {e fixed at finalization} — no growth; total enclave
    memory is bounded by the EPC; entry/exit transitions cost ~7664 cycles
    (Table 4, empty ECALL on the Intel SDK); and code touching secrets
    must be {e moved into} the enclave rather than merely bracketed, which
    is why the interface takes enclave functions rather than
    instrumentation sequences.

    Enclave code is represented as registered OCaml functions over the
    enclave's private memory — the moral equivalent of the
    statically-linked, measured enclave binary blob. *)

type t

val epc_capacity : int
(** Total enclave page cache modeled: 96 MiB (the usable part of the
    128 MiB PRM on contemporary parts). *)

val epc_in_use : unit -> int

val reset_epc : unit -> unit
(** Tests/benchmarks: release all EPC accounting. *)

exception Enclave_violation of string
(** Raised on attempts to grow a finalized enclave, exceed the EPC, or
    call an unregistered entry point. *)

val create : X86sim.Cpu.t -> size:int -> init:Bytes.t -> t
(** Build and finalize an enclave of [size] bytes, initialized with a copy
    of [init] (shorter [init] zero-fills). Counts against the EPC. *)

val measurement : t -> string
(** Hex digest of the initial contents (MRENCLAVE stand-in); stable
    across identical builds. *)

val register_ecall : t -> name:string -> (Bytes.t -> int -> int) -> unit
(** Register an entry point: [f enclave_memory arg]. Must happen before
    any [ecall]; entry points are part of the measured blob, so
    registering after the first call raises {!Enclave_violation}. *)

val ecall : t -> X86sim.Cpu.t -> name:string -> arg:int -> int
(** Synchronous enclave call: pays the enter+exit transition cost on the
    CPU's pipeline, runs the entry point on the private memory, returns
    its result. *)

val transition_cost : float
(** Cycles per enter+exit pair (Table 4: 7664). *)

val destroy : t -> unit
(** Release the EPC pages (EREMOVE). Further ecalls raise. *)
