open X86sim

exception Enclave_violation of string

let epc_capacity = 96 * 1024 * 1024
let epc_used = ref 0
let epc_in_use () = !epc_used
let reset_epc () = epc_used := 0

let transition_cost = 7664.0

type t = {
  memory : Bytes.t;
  digest : string;
  ecalls : (string, Bytes.t -> int -> int) Hashtbl.t;
  mutable called : bool; (* entry points freeze after first use *)
  mutable alive : bool;
  size : int;
}

(* FNV-1a over the initial image; a stand-in for MRENCLAVE. *)
let fnv_digest b =
  let h = ref 0x3bf29ce484222325 in
  Bytes.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    b;
  Printf.sprintf "%016x" (!h land max_int)

let create _cpu ~size ~init =
  if size <= 0 then invalid_arg "Enclave.create: size must be positive";
  if Bytes.length init > size then
    raise (Enclave_violation "initial image larger than enclave");
  if !epc_used + size > epc_capacity then raise (Enclave_violation "EPC exhausted");
  epc_used := !epc_used + size;
  let memory = Bytes.make size '\000' in
  Bytes.blit init 0 memory 0 (Bytes.length init);
  { memory; digest = fnv_digest memory; ecalls = Hashtbl.create 8; called = false; alive = true; size }

let measurement t = t.digest

let register_ecall t ~name f =
  if t.called then
    raise (Enclave_violation "cannot add entry points to a finalized, running enclave");
  Hashtbl.replace t.ecalls name f

let ecall t cpu ~name ~arg =
  if not t.alive then raise (Enclave_violation "enclave destroyed");
  t.called <- true;
  match Hashtbl.find_opt t.ecalls name with
  | None -> raise (Enclave_violation (Printf.sprintf "no such ECALL: %s" name))
  | Some f ->
    Pipeline.issue cpu.Cpu.pipe ~serialize:true ~lat:(transition_cost /. 2.0)
      ~port:Pipeline.p_special ();
    let result = f t.memory arg in
    Pipeline.issue cpu.Cpu.pipe ~serialize:true ~lat:(transition_cost /. 2.0)
      ~port:Pipeline.p_special ();
    result

let destroy t =
  if t.alive then begin
    t.alive <- false;
    epc_used := !epc_used - t.size
  end
