lib/sgx_sim/enclave.ml: Bytes Char Cpu Hashtbl Pipeline Printf X86sim
