lib/sgx_sim/enclave.mli: Bytes X86sim
