open Ms_util

type entry = { name : string; va : int; size : int; sensitive : bool }

let page = X86sim.Physmem.page_size

let assign (m : Ir_types.modul) =
  let normal = ref (X86sim.Layout.heap_base + page) in
  let sens = ref X86sim.Layout.sensitive_base in
  List.map
    (fun (g : Ir_types.global) ->
      let cursor = if g.sensitive then sens else normal in
      let va = !cursor in
      cursor := !cursor + Bitops.align_up page g.gsize + page;
      { name = g.gname; va; size = g.gsize; sensitive = g.sensitive })
    m.globals

let find entries name = List.find (fun e -> e.name = name) entries

let find_by_addr entries addr =
  List.find_opt (fun e -> addr >= e.va && addr < e.va + e.size) entries
