(** Pass manager.

    MemSentry's usage model (paper Fig. 1): defense passes run first and
    annotate the IR; the MemSentry isolation pass runs {e after} them and
    consumes the annotations. The manager enforces that ordering, verifies
    the module between passes, and records what ran. *)

type pass = { pname : string; transform : Ir_types.modul -> unit }

val make : name:string -> (Ir_types.modul -> unit) -> pass

val run : ?verify_between:bool -> pass list -> Ir_types.modul -> string list
(** Apply in order; returns the names that ran. With [verify_between]
    (default true) raises [Invalid_argument] naming the offending pass if
    it left the module malformed. *)
