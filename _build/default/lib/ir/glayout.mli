(** Address assignment for module globals.

    Shared by the interpreter and the backend so both agree on where data
    lives: ordinary globals are laid out page-aligned from
    {!X86sim.Layout.heap_base}; sensitive globals (safe regions) from
    {!X86sim.Layout.sensitive_base}, above the 64 TiB partition split. *)

type entry = { name : string; va : int; size : int; sensitive : bool }

val assign : Ir_types.modul -> entry list
(** Deterministic: module order within each partition. *)

val find : entry list -> string -> entry
(** Raises [Not_found]. *)

val find_by_addr : entry list -> int -> entry option
(** The global whose [\[va, va+size)] range contains the address. *)
