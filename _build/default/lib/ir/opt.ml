open Ir_types

type stats = { folded : int; propagated : int; eliminated : int }

let apply_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)

let constant_fold m =
  let folded = ref 0 in
  iter_instrs m (fun _ _ ins ->
      match ins.kind with
      | Binop (op, d, Const a, Const b) ->
        ins.kind <- Assign (d, Const (apply_binop op a b));
        incr folded
      | _ -> ());
  !folded

(* Block-local copy propagation: after [d = v], uses of [Var d] become [v]
   until d (or, when v is a variable, v itself) is redefined. *)
let copy_propagate m =
  let rewrites = ref 0 in
  let defs_of = function
    | Assign (d, _) | Binop (_, d, _, _) | Addr_of_global (d, _) | Addr_of_func (d, _) ->
      Some d
    | Load { dst; _ } -> Some dst
    | Call { dst; _ } | Call_ind { dst; _ } | Syscall { dst; _ } -> dst
    | Store _ | Ret _ | Br _ | Cbr _ | Fp _ -> None
  in
  List.iter
    (fun f ->
      List.iter
        (fun b ->
          (* copies: var -> value it currently equals *)
          let copies : (var, value) Hashtbl.t = Hashtbl.create 8 in
          let invalidate d =
            Hashtbl.remove copies d;
            Hashtbl.iter
              (fun k v -> match v with Var s when s = d -> Hashtbl.remove copies k | _ -> ())
              copies
          in
          let subst v =
            match v with
            | Var x -> (
              match Hashtbl.find_opt copies x with
              | Some replacement ->
                incr rewrites;
                replacement
              | None -> v)
            | Const _ -> v
          in
          List.iter
            (fun ins ->
              (* Rewrite uses first. *)
              (match ins.kind with
              | Assign (d, v) -> ins.kind <- Assign (d, subst v)
              | Binop (op, d, a, b2) -> ins.kind <- Binop (op, d, subst a, subst b2)
              | Load { dst; base; offset } -> ins.kind <- Load { dst; base = subst base; offset }
              | Store { base; offset; src } ->
                ins.kind <- Store { base = subst base; offset; src = subst src }
              | Call { callee; args; dst } ->
                ins.kind <- Call { callee; args = List.map subst args; dst }
              | Call_ind { callee; args; dst } ->
                ins.kind <- Call_ind { callee = subst callee; args = List.map subst args; dst }
              | Syscall { nr; args; dst } ->
                ins.kind <- Syscall { nr = subst nr; args = List.map subst args; dst }
              | Ret (Some v) -> ins.kind <- Ret (Some (subst v))
              | Cbr { cmp; lhs; rhs; if_true; if_false } ->
                ins.kind <- Cbr { cmp; lhs = subst lhs; rhs = subst rhs; if_true; if_false }
              | Addr_of_global _ | Addr_of_func _ | Ret None | Br _ | Fp _ -> ());
              (* Then update the copy environment. *)
              match defs_of ins.kind with
              | Some d -> (
                invalidate d;
                match ins.kind with
                | Assign (d2, (Const _ as v)) -> Hashtbl.replace copies d2 v
                | Assign (d2, (Var s as v)) when s <> d2 -> Hashtbl.replace copies d2 v
                | _ -> ())
              | None -> ())
            b.instrs)
        f.blocks)
    m.funcs;
  !rewrites

let dead_code_elim m =
  let removed = ref 0 in
  let changed = ref true in
  while !changed do
    changed := false;
    (* Flow-insensitive: any use anywhere keeps a definition alive. *)
    let used = Hashtbl.create 64 in
    let use = function Var v -> Hashtbl.replace used v () | Const _ -> () in
    iter_instrs m (fun _ _ ins ->
        match ins.kind with
        | Assign (_, v) -> use v
        | Binop (_, _, a, b) ->
          use a;
          use b
        | Load { base; _ } -> use base
        | Store { base; src; _ } ->
          use base;
          use src
        | Call { args; _ } -> List.iter use args
        | Call_ind { callee; args; _ } ->
          use callee;
          List.iter use args
        | Syscall { nr; args; _ } ->
          use nr;
          List.iter use args
        | Ret (Some v) -> use v
        | Cbr { lhs; rhs; _ } ->
          use lhs;
          use rhs
        | Addr_of_global _ | Addr_of_func _ | Ret None | Br _ | Fp _ -> ());
    (* Parameters are always live (the caller wrote them). *)
    let pure_and_dead f ins =
      let dead d = not (Hashtbl.mem used d) && d >= f.nparams in
      match ins.kind with
      | Assign (d, _) | Binop (_, d, _, _) | Addr_of_global (d, _) | Addr_of_func (d, _) ->
        dead d
      | Load _ | Store _ | Call _ | Call_ind _ | Syscall _ | Ret _ | Br _ | Cbr _ | Fp _ ->
        false
    in
    List.iter
      (fun f ->
        List.iter
          (fun b ->
            let before = List.length b.instrs in
            b.instrs <- List.filter (fun ins -> not (pure_and_dead f ins)) b.instrs;
            let delta = before - List.length b.instrs in
            if delta > 0 then begin
              removed := !removed + delta;
              changed := true
            end)
          f.blocks)
      m.funcs
  done;
  !removed

let optimize m =
  let folded = ref 0 and propagated = ref 0 and eliminated = ref 0 in
  let rec go rounds =
    if rounds > 0 then begin
      let f1 = constant_fold m in
      let p = copy_propagate m in
      let f2 = constant_fold m in
      let e = dead_code_elim m in
      folded := !folded + f1 + f2;
      propagated := !propagated + p;
      eliminated := !eliminated + e;
      if f1 + p + f2 + e > 0 then go (rounds - 1)
    end
  in
  go 8;
  Verifier.verify_exn m;
  { folded = !folded; propagated = !propagated; eliminated = !eliminated }
