type var = int
type value = Var of var | Const of int
type binop = Add | Sub | Mul | And | Or | Xor | Shl | Shr
type cmp = Eq | Ne | Lt | Le | Gt | Ge

type instr_kind =
  | Assign of var * value
  | Binop of binop * var * value * value
  | Load of { dst : var; base : value; offset : int }
  | Store of { base : value; offset : int; src : value }
  | Addr_of_global of var * string
  | Addr_of_func of var * string
  | Call of { callee : string; args : value list; dst : var option }
  | Call_ind of { callee : value; args : value list; dst : var option }
  | Syscall of { nr : value; args : value list; dst : var option }
  | Ret of value option
  | Br of string
  | Cbr of { cmp : cmp; lhs : value; rhs : value; if_true : string; if_false : string }
  | Fp of int

type instr = { id : int; mutable kind : instr_kind; mutable safe_access : bool }
type block = { blabel : string; mutable instrs : instr list }

type func = {
  fname : string;
  nparams : int;
  mutable blocks : block list;
  mutable vreg_count : int;
}

type global = { gname : string; gsize : int; mutable sensitive : bool }

type modul = {
  mutable funcs : func list;
  mutable globals : global list;
  mutable next_instr_id : int;
}

let max_params = 3

let find_func m name = List.find (fun f -> f.fname = name) m.funcs
let find_global m name = List.find (fun g -> g.gname = name) m.globals
let find_block f label = List.find (fun b -> b.blabel = label) f.blocks

let iter_instrs m k =
  List.iter
    (fun f -> List.iter (fun b -> List.iter (fun ins -> k f b ins) b.instrs) f.blocks)
    m.funcs

let instr_count m =
  let n = ref 0 in
  iter_instrs m (fun _ _ _ -> incr n);
  !n

let mark_safe_access m id =
  let found = ref false in
  iter_instrs m (fun _ _ ins ->
      if ins.id = id then begin
        ins.safe_access <- true;
        found := true
      end);
  if not !found then raise Not_found

let mark_function_safe m name =
  let f = find_func m name in
  List.iter (fun b -> List.iter (fun ins -> ins.safe_access <- true) b.instrs) f.blocks
