open Ir_types

let value_to_string = function Var v -> Printf.sprintf "%%%d" v | Const c -> string_of_int c

let binop_name = function
  | Add -> "add" | Sub -> "sub" | Mul -> "mul" | And -> "and"
  | Or -> "or" | Xor -> "xor" | Shl -> "shl" | Shr -> "shr"

let cmp_name = function
  | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Le -> "le" | Gt -> "gt" | Ge -> "ge"

let v = value_to_string

let args_to_string args = String.concat ", " (List.map v args)

let dst_prefix = function Some d -> Printf.sprintf "%%%d = " d | None -> ""

let kind_to_string = function
  | Assign (d, x) -> Printf.sprintf "%%%d = %s" d (v x)
  | Binop (op, d, a, b) -> Printf.sprintf "%%%d = %s %s, %s" d (binop_name op) (v a) (v b)
  | Load { dst; base; offset } -> Printf.sprintf "%%%d = load [%s + %d]" dst (v base) offset
  | Store { base; offset; src } -> Printf.sprintf "store [%s + %d], %s" (v base) offset (v src)
  | Addr_of_global (d, g) -> Printf.sprintf "%%%d = addrof @%s" d g
  | Addr_of_func (d, f) -> Printf.sprintf "%%%d = funcaddr @%s" d f
  | Call { callee; args; dst } ->
    Printf.sprintf "%scall @%s(%s)" (dst_prefix dst) callee (args_to_string args)
  | Call_ind { callee; args; dst } ->
    Printf.sprintf "%scall *%s(%s)" (dst_prefix dst) (v callee) (args_to_string args)
  | Syscall { nr; args; dst } ->
    Printf.sprintf "%ssyscall %s(%s)" (dst_prefix dst) (v nr) (args_to_string args)
  | Ret None -> "ret"
  | Ret (Some x) -> Printf.sprintf "ret %s" (v x)
  | Br l -> Printf.sprintf "br %s" l
  | Cbr { cmp; lhs; rhs; if_true; if_false } ->
    Printf.sprintf "br (%s %s %s) %s, %s" (v lhs) (cmp_name cmp) (v rhs) if_true if_false
  | Fp hint -> Printf.sprintf "fp.op #%d" hint

let instr_to_string ins =
  Printf.sprintf "  %s%s ; #%d" (kind_to_string ins.kind)
    (if ins.safe_access then " !safe" else "")
    ins.id

let func_to_string f =
  let buf = Buffer.create 256 in
  Buffer.add_string buf (Printf.sprintf "func @%s(%d params):\n" f.fname f.nparams);
  List.iter
    (fun b ->
      Buffer.add_string buf (Printf.sprintf " %s:\n" b.blabel);
      List.iter (fun ins -> Buffer.add_string buf (" " ^ instr_to_string ins ^ "\n")) b.instrs)
    f.blocks;
  Buffer.contents buf

let modul_to_string m =
  let buf = Buffer.create 1024 in
  List.iter
    (fun g ->
      Buffer.add_string buf
        (Printf.sprintf "global @%s : %d bytes%s\n" g.gname g.gsize
           (if g.sensitive then " (sensitive)" else "")))
    m.globals;
  List.iter (fun f -> Buffer.add_string buf (func_to_string f)) m.funcs;
  Buffer.contents buf

let pp_modul fmt m = Format.pp_print_string fmt (modul_to_string m)
