(** Structural well-formedness checks for IR modules.

    Run before lowering or interpretation; a module that verifies cleanly
    cannot make the backend or interpreter fail on malformed structure
    (dangling branch targets, unknown callees, out-of-range variables,
    fall-through block ends, duplicate names). *)

type error = { where : string; what : string }

val verify : Ir_types.modul -> error list
(** Empty list = well-formed. *)

val verify_exn : Ir_types.modul -> unit
(** Raises [Invalid_argument] with a rendered report if not well-formed. *)

val error_to_string : error -> string
