let profile ?fuel ?entry ?args m =
  let observed : (int, Pointsto.Obj_set.t) Hashtbl.t = Hashtbl.create 256 in
  let on_access (a : Interp.access) =
    let prev =
      match Hashtbl.find_opt observed a.Interp.instr_id with
      | Some s -> s
      | None -> Pointsto.Obj_set.empty
    in
    Hashtbl.replace observed a.Interp.instr_id (Pointsto.Obj_set.add a.Interp.global prev)
  in
  ignore (Interp.run ?fuel ?entry ?args ~on_access m);
  observed

let observed_sensitive observed (m : Ir_types.modul) =
  let sensitive =
    List.filter_map
      (fun (g : Ir_types.global) -> if g.Ir_types.sensitive then Some g.Ir_types.gname else None)
      m.Ir_types.globals
  in
  Hashtbl.fold
    (fun id s acc ->
      if List.exists (fun g -> Pointsto.Obj_set.mem g s) sensitive then id :: acc else acc)
    observed []
  |> List.sort compare
