type pass = { pname : string; transform : Ir_types.modul -> unit }

let make ~name transform = { pname = name; transform }

let run ?(verify_between = true) passes m =
  List.map
    (fun p ->
      p.transform m;
      if verify_between then begin
        match Verifier.verify m with
        | [] -> ()
        | errs ->
          invalid_arg
            (Printf.sprintf "pass %S broke the module:\n%s" p.pname
               (String.concat "\n" (List.map Verifier.error_to_string errs)))
      end;
      p.pname)
    passes
