(** PIN-style dynamic points-to analysis (paper §5.5).

    Runs the module under the {!Interp} with an access-recording hook and
    returns, per instruction id, the set of globals actually touched. This
    under-approximates — "there is a high chance of under-approximating
    memory accesses, since only accesses related to particular inputs
    (i.e., execution paths) are recorded" — which the tests demonstrate
    against the static analysis. *)

val profile :
  ?fuel:int -> ?entry:string -> ?args:int list -> Ir_types.modul ->
  (int, Pointsto.Obj_set.t) Hashtbl.t
(** Map from instruction id to observed object set. Instructions never
    executed (or that never touched memory) are absent. *)

val observed_sensitive : (int, Pointsto.Obj_set.t) Hashtbl.t -> Ir_types.modul -> int list
(** Ids observed touching a sensitive global, sorted. *)
