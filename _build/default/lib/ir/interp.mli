(** Direct IR interpreter.

    Two jobs: executing defense logic at the IR level in tests, and the
    PIN-style {e dynamic} points-to analysis — the [on_access] hook reports,
    for every executed load/store, which global object was touched. That
    stream (collected by {!Pointsto_dynamic}) under-approximates the true
    points-to relation exactly as the paper describes: only objects on the
    exercised paths are seen.

    Semantics mirror the backend: 64-bit integers, globals at the
    {!Glayout} addresses, function addresses as opaque handles usable by
    [Call_ind]. Syscalls return 0 (the interpreter has no OS). Memory
    outside any global traps with [Interp_fault]. *)

exception Interp_fault of string

type access = { instr_id : int; global : string; offset : int; is_write : bool }

type result = {
  return_value : int option;
  instrs_executed : int;
  memory : (string * Bytes.t) list;  (** final contents of every global *)
}

val run :
  ?fuel:int ->
  ?on_access:(access -> unit) ->
  ?entry:string ->
  ?args:int list ->
  Ir_types.modul ->
  result
(** Execute [entry] (default ["main"]). [fuel] defaults to 10 million
    instructions; exhaustion — like runaway recursion past 10k frames —
    raises [Interp_fault]. *)

val read_word : result -> string -> int -> int
(** [read_word r global offset]: a 64-bit word from the final memory image. *)
