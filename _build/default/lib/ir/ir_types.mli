(** A small LLVM-flavoured intermediate representation.

    MemSentry is an LLVM pass: defenses annotate IR instructions that may
    touch safe regions, and the isolation pass instruments everything (or
    everything else) before code generation. This IR plays the same role:
    virtual registers, basic blocks, direct/indirect calls, explicit
    loads/stores with a base+offset shape (so the backend can split address
    computation from access, as in the paper's Fig. 2), named global
    regions, and a per-instruction [safe_access] flag — the moral
    equivalent of the paper's [saferegion_access(ins)] LLVM metadata.

    Instruction [id]s are unique within a module and are the keys used by
    the points-to analyses and the annotation API. *)

type var = int
(** Virtual register, function-scoped, starting at 0. *)

type value = Var of var | Const of int

type binop = Add | Sub | Mul | And | Or | Xor | Shl | Shr

type cmp = Eq | Ne | Lt | Le | Gt | Ge

type instr_kind =
  | Assign of var * value
  | Binop of binop * var * value * value
  | Load of { dst : var; base : value; offset : int }
  | Store of { base : value; offset : int; src : value }
  | Addr_of_global of var * string  (** v <- &global *)
  | Addr_of_func of var * string  (** v <- &function (a code address) *)
  | Call of { callee : string; args : value list; dst : var option }
  | Call_ind of { callee : value; args : value list; dst : var option }
  | Syscall of { nr : value; args : value list; dst : var option }
  | Ret of value option
  | Br of string
  | Cbr of { cmp : cmp; lhs : value; rhs : value; if_true : string; if_false : string }
  | Fp of int
      (** Opaque floating-point work (the int is a scheduling hint). No
          integer semantics; lowers to vector-register arithmetic and
          exists so workloads model xmm register pressure — the resource
          the crypt technique competes for. *)

type instr = {
  id : int;
  mutable kind : instr_kind;  (** mutable so {!Opt} passes can rewrite in place *)
  mutable safe_access : bool;
      (** True when this instruction is {e allowed} to access safe regions:
          address-based passes skip it, domain-based passes bracket it. *)
}

type block = { blabel : string; mutable instrs : instr list }

type func = {
  fname : string;
  nparams : int;  (** Parameters are vars [0 .. nparams-1]; at most 3. *)
  mutable blocks : block list;  (** head = entry block *)
  mutable vreg_count : int;
}

type global = {
  gname : string;
  gsize : int;  (** bytes *)
  mutable sensitive : bool;
      (** Safe-region globals: allocated above the 64 TiB split by the
          backend (the paper's [saferegion_alloc]). *)
}

type modul = {
  mutable funcs : func list;
  mutable globals : global list;
  mutable next_instr_id : int;
}

val max_params : int
(** 3 (rdi/rsi/rdx in the lowered convention). *)

val find_func : modul -> string -> func
(** Raises [Not_found]. *)

val find_global : modul -> string -> global

val find_block : func -> string -> block

val iter_instrs : modul -> (func -> block -> instr -> unit) -> unit

val instr_count : modul -> int

val mark_safe_access : modul -> int -> unit
(** The [saferegion_access] API: flag the instruction with this id.
    Raises [Not_found] for unknown ids. *)

val mark_function_safe : modul -> string -> unit
(** Annotate every instruction of a function (the paper's static-library
    auto-annotation: defense runtime functions may touch the safe region
    wholesale). *)
