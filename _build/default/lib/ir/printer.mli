(** Textual rendering of IR modules, LLVM-assembly flavoured. Useful in
    error messages, tests and the CLI's [inspect] command. *)

val value_to_string : Ir_types.value -> string

val instr_to_string : Ir_types.instr -> string
(** One line, annotated with [!safe] when the instruction is marked. *)

val func_to_string : Ir_types.func -> string

val modul_to_string : Ir_types.modul -> string

val pp_modul : Format.formatter -> Ir_types.modul -> unit
