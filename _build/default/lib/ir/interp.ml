open Ir_types

exception Interp_fault of string

type access = { instr_id : int; global : string; offset : int; is_write : bool }

type result = {
  return_value : int option;
  instrs_executed : int;
  memory : (string * Bytes.t) list;
}

let fault fmt = Printf.ksprintf (fun s -> raise (Interp_fault s)) fmt

(* Function handles live far above any data address. *)
let func_base = 0x7F00_0000_0000

let max_call_depth = 10_000

type state = {
  m : modul;
  layout : Glayout.entry list;
  mem : (string, Bytes.t) Hashtbl.t;
  funcs_arr : func array;
  on_access : access -> unit;
  mutable fuel : int;
  mutable depth : int;
}

let global_bytes st name =
  match Hashtbl.find_opt st.mem name with
  | Some b -> b
  | None -> fault "unknown global %s" name

let resolve_addr st addr =
  match Glayout.find_by_addr st.layout addr with
  | Some e -> (e, addr - e.Glayout.va)
  | None -> fault "access to address 0x%x outside any global" addr

let func_index st name =
  let rec go i =
    if i >= Array.length st.funcs_arr then fault "unknown function %s" name
    else if st.funcs_arr.(i).fname = name then i
    else go (i + 1)
  in
  go 0

let eval env = function Var v -> env.(v) | Const c -> c

let apply_binop op a b =
  match op with
  | Add -> a + b
  | Sub -> a - b
  | Mul -> a * b
  | And -> a land b
  | Or -> a lor b
  | Xor -> a lxor b
  | Shl -> a lsl (b land 63)
  | Shr -> a lsr (b land 63)

let eval_cmp cmp a b =
  match cmp with
  | Eq -> a = b
  | Ne -> a <> b
  | Lt -> a < b
  | Le -> a <= b
  | Gt -> a > b
  | Ge -> a >= b

let do_load st ins_id addr =
  let e, off = resolve_addr st addr in
  if off + 8 > e.Glayout.size then fault "load past end of %s" e.Glayout.name;
  st.on_access { instr_id = ins_id; global = e.Glayout.name; offset = off; is_write = false };
  Int64.to_int (Bytes.get_int64_le (global_bytes st e.Glayout.name) off)

let do_store st ins_id addr v =
  let e, off = resolve_addr st addr in
  if off + 8 > e.Glayout.size then fault "store past end of %s" e.Glayout.name;
  st.on_access { instr_id = ins_id; global = e.Glayout.name; offset = off; is_write = true };
  Bytes.set_int64_le (global_bytes st e.Glayout.name) off (Int64.of_int v)

let rec exec_func st f args =
  st.depth <- st.depth + 1;
  if st.depth > max_call_depth then fault "call stack exceeded %d frames" max_call_depth;
  let env = Array.make (max f.vreg_count 1) 0 in
  List.iteri (fun i a -> if i < f.nparams then env.(i) <- a) args;
  let r = exec_block st f env (List.hd f.blocks) in
  st.depth <- st.depth - 1;
  r

and exec_block st f env block =
  (* Tail-call style block execution; returns Some v / None from Ret. *)
  let rec go = function
    | [] -> fault "block %s of %s fell through" block.blabel f.fname
    | ins :: rest -> (
      if st.fuel <= 0 then fault "out of fuel";
      st.fuel <- st.fuel - 1;
      match ins.kind with
      | Assign (d, x) ->
        env.(d) <- eval env x;
        go rest
      | Binop (op, d, a, b) ->
        env.(d) <- apply_binop op (eval env a) (eval env b);
        go rest
      | Load { dst; base; offset } ->
        env.(dst) <- do_load st ins.id (eval env base + offset);
        go rest
      | Store { base; offset; src } ->
        do_store st ins.id (eval env base + offset) (eval env src);
        go rest
      | Addr_of_global (d, g) ->
        env.(d) <- (Glayout.find st.layout g).Glayout.va;
        go rest
      | Addr_of_func (d, fn) ->
        env.(d) <- func_base + func_index st fn;
        go rest
      | Call { callee; args; dst } ->
        let f' = st.funcs_arr.(func_index st callee) in
        let r = exec_func st f' (List.map (eval env) args) in
        (match (dst, r) with
        | Some d, Some v -> env.(d) <- v
        | Some d, None -> env.(d) <- 0
        | None, _ -> ());
        go rest
      | Call_ind { callee; args; dst } ->
        let handle = eval env callee in
        let idx = handle - func_base in
        if idx < 0 || idx >= Array.length st.funcs_arr then
          fault "indirect call to non-function value 0x%x" handle;
        let r = exec_func st st.funcs_arr.(idx) (List.map (eval env) args) in
        (match (dst, r) with
        | Some d, Some v -> env.(d) <- v
        | Some d, None -> env.(d) <- 0
        | None, _ -> ());
        go rest
      | Syscall { dst; _ } ->
        Option.iter (fun d -> env.(d) <- 0) dst;
        go rest
      | Fp _ -> go rest
      | Ret v -> Option.map (eval env) v
      | Br l -> exec_block st f env (find_block f l)
      | Cbr { cmp; lhs; rhs; if_true; if_false } ->
        let taken = eval_cmp cmp (eval env lhs) (eval env rhs) in
        exec_block st f env (find_block f (if taken then if_true else if_false)))
  in
  go block.instrs

let run ?(fuel = 10_000_000) ?(on_access = fun _ -> ()) ?(entry = "main") ?(args = []) m =
  let layout = Glayout.assign m in
  let mem = Hashtbl.create 16 in
  List.iter (fun (e : Glayout.entry) -> Hashtbl.add mem e.name (Bytes.make e.size '\000')) layout;
  let st =
    { m; layout; mem; funcs_arr = Array.of_list m.funcs; on_access; fuel; depth = 0 }
  in
  let f = try find_func m entry with Not_found -> fault "no entry function %s" entry in
  let return_value = exec_func st f args in
  {
    return_value;
    instrs_executed = fuel - st.fuel;
    memory = List.map (fun (e : Glayout.entry) -> (e.name, global_bytes st e.name)) layout;
  }

let read_word r name offset =
  match List.assoc_opt name r.memory with
  | Some b -> Int64.to_int (Bytes.get_int64_le b offset)
  | None -> raise (Interp_fault (Printf.sprintf "read_word: unknown global %s" name))
