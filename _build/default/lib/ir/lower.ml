open X86sim
open Ir_types

type mclass = Data_access | Spill | Plain

type mitem = { item : Program.item; cls : mclass; safe : bool }

type t = { mitems : mitem list; layout : Glayout.entry list }

let scratch1 = Reg.r12
let scratch2 = Reg.r13

(* Callee-saved allocation pool; r10 stays free for syscall arg 4, rax/rcx/rdx
   are codegen scratch, rdi/rsi/rdx carry arguments, r12/r13 are reserved. *)
let pool = [| Reg.rbx; Reg.r8; Reg.r9; Reg.r11; Reg.rbp; Reg.r14; Reg.r15 |]
let arg_regs = [| Reg.rdi; Reg.rsi; Reg.rdx |]
let syscall_arg_regs = [| Reg.rdi; Reg.rsi; Reg.rdx; Reg.r10 |]

let func_label name = "fn_" ^ name
let block_label fname blabel = Printf.sprintf "%s.%s" fname blabel

type home = Hreg of Reg.gpr | Hslot of int

let cmp_to_cond = function
  | Eq -> Insn.Eq
  | Ne -> Insn.Ne
  | Lt -> Insn.Lt
  | Le -> Insn.Le
  | Gt -> Insn.Gt
  | Ge -> Insn.Ge

let binop_to_alu = function
  | Add -> Insn.Add
  | Sub -> Insn.Sub
  | Mul -> Insn.Imul
  | And -> Insn.And
  | Or -> Insn.Or
  | Xor -> Insn.Xor
  | Shl -> Insn.Shl
  | Shr -> Insn.Shr

(* Per-function lowering context. *)
type ctx = {
  homes : home array;
  nslots : int;
  used_pool : Reg.gpr list;
  gaddr : string -> int;
  xmm_pool : Reg.xmm array;
  buf : mitem list ref; (* reversed *)
}

let default_xmm_pool = List.init 16 (fun i -> i)
let crypt_xmm_pool = [ 0; 1; 2; 3; 15 ]

(* How many simultaneously-live vector values fp-heavy code wants; pools
   smaller than this force spills. *)
let fp_live_values = 12
let fp_spill_slots = 8
let fp_spill_base = 0x2C_0000_0000

let emit ctx ?(cls = Plain) ?(safe = false) insn =
  ctx.buf := { item = Program.I insn; cls; safe } :: !(ctx.buf)

let emit_label ctx l = ctx.buf := { item = Program.Label l; cls = Plain; safe = false } :: !(ctx.buf)

let slot_mem s = Insn.mem ~base:Reg.rsp (8 * s)

(* Materialize a value in [into]. *)
let load_value ctx v ~into =
  match v with
  | Const c -> emit ctx (Insn.Mov_ri (into, c))
  | Var x -> (
    match ctx.homes.(x) with
    | Hreg r -> if r <> into then emit ctx (Insn.Mov_rr (into, r))
    | Hslot s -> emit ctx ~cls:Spill (Insn.Load (into, slot_mem s)))

(* Register currently holding [v], loading spills/constants into [scratch]. *)
let reg_of_value ctx v ~scratch =
  match v with
  | Const c ->
    emit ctx (Insn.Mov_ri (scratch, c));
    scratch
  | Var x -> (
    match ctx.homes.(x) with
    | Hreg r -> r
    | Hslot s ->
      emit ctx ~cls:Spill (Insn.Load (scratch, slot_mem s));
      scratch)

(* Write register [from] into variable [d]'s home. *)
let store_var ctx d ~from =
  match ctx.homes.(d) with
  | Hreg r -> if r <> from then emit ctx (Insn.Mov_rr (r, from))
  | Hslot s -> emit ctx ~cls:Spill (Insn.Store (slot_mem s, from))

let emit_epilogue ctx =
  if ctx.nslots > 0 then emit ctx (Insn.Alu_ri (Insn.Add, Reg.rsp, 8 * ctx.nslots));
  List.iter (fun r -> emit ctx (Insn.Pop r)) (List.rev ctx.used_pool);
  emit ctx Insn.Ret

let lower_instr ctx fname (ins : instr) =
  let safe = ins.safe_access in
  match ins.kind with
  | Assign (d, x) -> (
    match ctx.homes.(d) with
    | Hreg r -> load_value ctx x ~into:r
    | Hslot _ ->
      load_value ctx x ~into:Reg.rax;
      store_var ctx d ~from:Reg.rax)
  | Binop (op, d, a, b) -> (
    (* In-place update of a register-resident variable lowers to a single
       ALU instruction, like real codegen for [x op= k]. *)
    match (ctx.homes.(d), a) with
    | Hreg r, Var av when av = d -> (
      match b with
      | Const c -> emit ctx (Insn.Alu_ri (binop_to_alu op, r, c))
      | Var _ ->
        let rb = reg_of_value ctx b ~scratch:Reg.rcx in
        emit ctx (Insn.Alu_rr (binop_to_alu op, r, rb)))
    | Hreg r, Var av
      when (match ctx.homes.(av) with Hreg _ -> true | Hslot _ -> false)
           && (match b with Var bv -> bv <> d | Const _ -> true) ->
      (* dst and lhs both in registers (and rhs does not read the dst):
         mov + alu, like real codegen. *)
      load_value ctx a ~into:r;
      (match b with
      | Const c -> emit ctx (Insn.Alu_ri (binop_to_alu op, r, c))
      | Var _ ->
        let rb = reg_of_value ctx b ~scratch:Reg.rcx in
        emit ctx (Insn.Alu_rr (binop_to_alu op, r, rb)))
    | _ ->
      load_value ctx a ~into:Reg.rax;
      (match b with
      | Const c -> emit ctx (Insn.Alu_ri (binop_to_alu op, Reg.rax, c))
      | Var _ ->
        let rb = reg_of_value ctx b ~scratch:Reg.rcx in
        emit ctx (Insn.Alu_rr (binop_to_alu op, Reg.rax, rb)));
      store_var ctx d ~from:Reg.rax)
  | Load { dst; base; offset } -> (
    let rb = reg_of_value ctx base ~scratch:Reg.rax in
    match ctx.homes.(dst) with
    | Hreg r -> emit ctx ~cls:Data_access ~safe (Insn.Load (r, Insn.mem ~base:rb offset))
    | Hslot _ ->
      emit ctx ~cls:Data_access ~safe (Insn.Load (Reg.rax, Insn.mem ~base:rb offset));
      store_var ctx dst ~from:Reg.rax)
  | Store { base; offset; src } ->
    let rb = reg_of_value ctx base ~scratch:Reg.rax in
    let rs = reg_of_value ctx src ~scratch:Reg.rcx in
    emit ctx ~cls:Data_access ~safe (Insn.Store (Insn.mem ~base:rb offset, rs))
  | Addr_of_global (d, g) -> (
    let addr = ctx.gaddr g in
    match ctx.homes.(d) with
    | Hreg r -> emit ctx (Insn.Mov_ri (r, addr))
    | Hslot _ ->
      emit ctx (Insn.Mov_ri (Reg.rax, addr));
      store_var ctx d ~from:Reg.rax)
  | Addr_of_func (d, fn) -> (
    match ctx.homes.(d) with
    | Hreg r -> emit ctx (Insn.Mov_label (r, Insn.target (func_label fn)))
    | Hslot _ ->
      emit ctx (Insn.Mov_label (Reg.rax, Insn.target (func_label fn)));
      store_var ctx d ~from:Reg.rax)
  | Call { callee; args; dst } ->
    List.iteri (fun i a -> load_value ctx a ~into:arg_regs.(i)) args;
    emit ctx (Insn.Call (Insn.target (func_label callee)));
    Option.iter (fun d -> store_var ctx d ~from:Reg.rax) dst
  | Call_ind { callee; args; dst } ->
    List.iteri (fun i a -> load_value ctx a ~into:arg_regs.(i)) args;
    load_value ctx callee ~into:Reg.rax;
    emit ctx (Insn.Call_r Reg.rax);
    Option.iter (fun d -> store_var ctx d ~from:Reg.rax) dst
  | Syscall { nr; args; dst } ->
    List.iteri (fun i a -> load_value ctx a ~into:syscall_arg_regs.(i)) args;
    load_value ctx nr ~into:Reg.rax;
    emit ctx Insn.Syscall;
    Option.iter (fun d -> store_var ctx d ~from:Reg.rax) dst
  | Ret v ->
    Option.iter (fun x -> load_value ctx x ~into:Reg.rax) v;
    emit_epilogue ctx
  | Fp hint ->
    (* Round-robin over the permitted vector registers. When the pool is
       small (crypt reserving ymm4-14), code that wants ~12 live vector
       values must spill: each op then pays slot traffic with real
       store-to-load dependencies — the register-reservation cost the
       paper observes on xmm-heavy benchmarks. *)
    let n = Array.length ctx.xmm_pool in
    let dst = ctx.xmm_pool.(hint mod n) and src = ctx.xmm_pool.((hint + (n / 2) + 1) mod n) in
    if n < fp_live_values then begin
      let slot k = Insn.mem_abs (fp_spill_base + (16 * (k mod fp_spill_slots))) in
      if hint mod 2 = 0 then
        emit ctx ~cls:Spill (Insn.Movdqa_load (src, slot (hint + (fp_spill_slots / 2))));
      emit ctx (Insn.Fp_arith (dst, src));
      emit ctx ~cls:Spill (Insn.Movdqa_store (slot hint, dst))
    end
    else emit ctx (Insn.Fp_arith (dst, src))
  | Br l -> emit ctx (Insn.Jmp (Insn.target (block_label fname l)))
  | Cbr { cmp; lhs; rhs; if_true; if_false } ->
    load_value ctx lhs ~into:Reg.rax;
    (match rhs with
    | Const c -> emit ctx (Insn.Cmp_ri (Reg.rax, c))
    | Var _ ->
      let rr = reg_of_value ctx rhs ~scratch:Reg.rcx in
      emit ctx (Insn.Cmp_rr (Reg.rax, rr)));
    emit ctx (Insn.Jcc (cmp_to_cond cmp, Insn.target (block_label fname if_true)));
    emit ctx (Insn.Jmp (Insn.target (block_label fname if_false)))

let lower_func buf gaddr xmm_pool (f : func) =
  let npool = Array.length pool in
  let homes =
    Array.init (max f.vreg_count 1) (fun v ->
        if v < npool then Hreg pool.(v) else Hslot (v - npool))
  in
  let nslots = max 0 (f.vreg_count - npool) in
  let used_pool =
    List.filteri (fun i _ -> i < f.vreg_count) (Array.to_list pool)
  in
  let ctx = { homes; nslots; used_pool; gaddr; xmm_pool; buf } in
  emit_label ctx (func_label f.fname);
  List.iter (fun r -> emit ctx (Insn.Push r)) used_pool;
  if nslots > 0 then emit ctx (Insn.Alu_ri (Insn.Sub, Reg.rsp, 8 * nslots));
  for p = 0 to f.nparams - 1 do
    store_var ctx p ~from:arg_regs.(p)
  done;
  List.iter
    (fun b ->
      emit_label ctx (block_label f.fname b.blabel);
      List.iter (lower_instr ctx f.fname) b.instrs)
    f.blocks

let lower ?(xmm_pool = default_xmm_pool) m =
  Verifier.verify_exn m;
  if xmm_pool = [] then invalid_arg "Lower.lower: empty xmm pool";
  let xmm_pool = Array.of_list xmm_pool in
  let layout = Glayout.assign m in
  let gaddr name = (Glayout.find layout name).Glayout.va in
  let buf = ref [] in
  let ctx0 = { homes = [||]; nslots = 0; used_pool = []; gaddr; xmm_pool; buf } in
  (* Entry wrapper. *)
  emit_label ctx0 "main";
  emit ctx0 (Insn.Call (Insn.target (func_label "main")));
  emit ctx0 Insn.Halt;
  List.iter (lower_func buf gaddr xmm_pool) m.funcs;
  { mitems = List.rev !buf; layout }

let items t = List.map (fun mi -> mi.item) t.mitems

let assemble t = Program.assemble (items t)

let setup_memory cpu t =
  Mmu.map_range cpu.Cpu.mmu ~va:fp_spill_base ~len:Physmem.page_size ~writable:true;
  List.iter
    (fun (e : Glayout.entry) -> Mmu.map_range cpu.Cpu.mmu ~va:e.va ~len:e.size ~writable:true)
    t.layout

let global_va t name = (Glayout.find t.layout name).Glayout.va
