(** Conservative static points-to analysis (DSA-flavoured).

    Flow-insensitive, per-function fixpoint over a simple lattice: each
    variable may point to a set of named globals, or to {e anything}. A
    value loaded from memory, received as a parameter, or returned from a
    call is [Anything] — this is the over-approximation the paper observes
    in LLVM's DSA ("overly conservative, often yielding undesirable results
    where most memory accesses are classified as being able to touch
    sensitive data"). Our tests demonstrate the same effect, and
    {!Pointsto_dynamic} provides the PIN-style refinement. *)

module Obj_set : Set.S with type elt = string

type target = Objects of Obj_set.t | Anything

type t
(** Analysis result for a module. *)

val analyze : Ir_types.modul -> t

val access_target : t -> int -> target option
(** What the load/store with the given instruction id may touch;
    [None] for ids that are not memory accesses. *)

val may_touch : t -> int -> string -> bool
(** [may_touch t id g]: may instruction [id] access global [g]?
    (True whenever the target is [Anything].) *)

val accesses_possibly_sensitive : t -> Ir_types.modul -> int list
(** Ids of all loads/stores that may touch some sensitive global —
    the instrumentation-point set a defense would feed MemSentry when
    protecting arbitrary program data. *)

val precision : t -> Ir_types.modul -> exact:int -> anything:int -> unit
(** Unit-returning shape guard used by tests; counts accesses with exact
    object sets vs [Anything] and raises [Invalid_argument] on mismatch. *)
