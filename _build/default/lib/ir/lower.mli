(** Backend: IR -> machine items, with instrumentation metadata.

    Design decisions that mirror the paper's setting:

    - Virtual registers are allocated to a pool of callee-saved GPRs
      (rbx, r8, r9, r11, rbp, r14, r15); the overflow lives in rsp-relative
      {e spill slots}. Spill accesses are emitted with class {!Spill} and
      are never instrumented — "variable spills to the stack ... access a
      fixed place in memory and thus do not need isolation instrumentation"
      (§5.5).
    - r12/r13 are reserved as instrumentation scratch (the backend never
      allocates them), like LLVM register reservation.
    - Every IR load/store becomes exactly one machine access of class
      {!Data_access}, carrying the IR instruction's [safe_access] flag, so
      the MemSentry passes know what to instrument (address-based: all
      unsafe accesses) or bracket (domain-based: the safe ones).
    - Calls pass up to 3 arguments in rdi/rsi/rdx and return in rax;
      syscall arguments go to rdi/rsi/rdx/r10.
    - The module entry is a ["main"] wrapper that calls the IR [main] and
      executes [Halt]. *)

type mclass =
  | Data_access  (** an IR-level load/store — instrumentable *)
  | Spill  (** fixed rsp-relative slot traffic — never instrumented *)
  | Plain

type mitem = { item : X86sim.Program.item; cls : mclass; safe : bool }

type t = { mitems : mitem list; layout : Glayout.entry list }

val scratch1 : X86sim.Reg.gpr
(** r12: first reserved instrumentation scratch register. *)

val scratch2 : X86sim.Reg.gpr
(** r13. *)

val func_label : string -> string
(** ["fn_<name>"], the label of a lowered function (also what
    [Addr_of_func] materializes). *)

val default_xmm_pool : X86sim.Reg.xmm list
(** All 16 vector registers — what an unconstrained compiler uses. *)

val crypt_xmm_pool : X86sim.Reg.xmm list
(** xmm0-3 and xmm15: the pool left when ymm4-ymm14 are reserved for crypt
    round keys. Rebuilding a workload with this pool models the global
    register-reservation cost the paper observes for xmm-heavy benchmarks. *)

val lower : ?xmm_pool:X86sim.Reg.xmm list -> Ir_types.modul -> t
(** Verifies the module first ([Invalid_argument] on malformed IR).
    [xmm_pool] (default {!default_xmm_pool}, must be non-empty) is the set
    of vector registers [Fp] instructions may use. *)

val items : t -> X86sim.Program.item list
(** Strip metadata (for assembling an uninstrumented baseline). *)

val assemble : t -> X86sim.Program.t

val setup_memory : X86sim.Cpu.t -> t -> unit
(** Map every global of the layout into the CPU's address space
    (writable, zero-filled). *)

val global_va : t -> string -> int
(** Address assigned to a global. Raises [Not_found]. *)
