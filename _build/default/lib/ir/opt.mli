(** IR optimization passes (the "Optimizer" stage of the paper's Fig. 1).

    MemSentry runs {e after} the defense passes and benefits from the
    optimizer having already cleaned the IR — in particular, "LLVM will
    have eliminated all register spilling to the stack, thus making sure
    we only see (and instrument) necessary memory accesses" (§5.5). These
    passes play that role for this IR:

    - {!constant_fold}: binops over two constants become constants;
    - {!copy_propagate}: uses of a copied value read the original while
      neither side has been redefined (block-local);
    - {!dead_code_elim}: pure instructions whose results are never used
      are dropped. Loads are conservatively kept (they can fault — and an
      instrumented load is exactly what MemSentry measures); stores,
      calls and control flow are always side-effecting.

    Passes never remove or reorder memory accesses and never touch the
    [safe_access] flag, so instrumentation decisions survive optimization
    — asserted by the test suite via differential execution. *)

type stats = { folded : int; propagated : int; eliminated : int }

val constant_fold : Ir_types.modul -> int
(** Returns the number of instructions rewritten. *)

val copy_propagate : Ir_types.modul -> int
(** Returns the number of operand uses rewritten. *)

val dead_code_elim : Ir_types.modul -> int
(** Returns the number of instructions removed. *)

val optimize : Ir_types.modul -> stats
(** fold -> propagate -> fold -> eliminate, to a fixpoint (bounded).
    Verifies the module afterwards ([Invalid_argument] on a pass bug). *)
