open Ir_types

module Obj_set = Set.Make (String)

type target = Objects of Obj_set.t | Anything

(* Per-variable abstract value. *)
type aval = Bot | Objs of Obj_set.t | Top

let join a b =
  match (a, b) with
  | Bot, x | x, Bot -> x
  | Top, _ | _, Top -> Top
  | Objs s1, Objs s2 -> Objs (Obj_set.union s1 s2)

let aval_eq a b =
  match (a, b) with
  | Bot, Bot | Top, Top -> true
  | Objs s1, Objs s2 -> Obj_set.equal s1 s2
  | _ -> false

type t = { access : (int, target) Hashtbl.t }

let target_of_aval = function
  | Bot -> Objects Obj_set.empty (* dead pointer: touches nothing *)
  | Objs s -> Objects s
  | Top -> Anything

(* Flow-insensitive fixpoint per function. Parameters and values read from
   memory or returned by calls are Top (no interprocedural tracking). *)
let analyze_func (f : func) (access : (int, target) Hashtbl.t) =
  let env = Array.make (max f.vreg_count 1) Bot in
  for p = 0 to f.nparams - 1 do
    env.(p) <- Top
  done;
  let eval = function Var v -> env.(v) | Const _ -> Objs Obj_set.empty in
  let assign v a =
    let joined = join env.(v) a in
    if not (aval_eq joined env.(v)) then begin
      env.(v) <- joined;
      true
    end
    else false
  in
  let step () =
    let changed = ref false in
    List.iter
      (fun b ->
        List.iter
          (fun ins ->
            match ins.kind with
            | Assign (d, x) -> if assign d (eval x) then changed := true
            | Binop (op, d, a, c) ->
              (* Pointer arithmetic keeps the target set; combining two
                 may-pointers (or any op that can forge) is Top-joined. *)
              let av = eval a and cv = eval c in
              let r =
                match op with
                | Add | Sub | And | Or -> join av cv
                | Mul | Xor | Shl | Shr -> (
                  match join av cv with
                  | Bot -> Bot
                  | Objs s when Obj_set.is_empty s -> Objs s
                  | _ -> Top)
              in
              if assign d r then changed := true
            | Load { dst; _ } -> if assign dst Top then changed := true
            | Addr_of_global (d, g) ->
              if assign d (Objs (Obj_set.singleton g)) then changed := true
            | Addr_of_func (d, _) -> if assign d (Objs Obj_set.empty) then changed := true
            | Call { dst; _ } | Call_ind { dst; _ } | Syscall { dst; _ } ->
              Option.iter (fun d -> if assign d Top then changed := true) dst
            | Store _ | Ret _ | Br _ | Cbr _ | Fp _ -> ())
          b.instrs)
      f.blocks;
    !changed
  in
  while step () do
    ()
  done;
  (* Record access targets. *)
  List.iter
    (fun b ->
      List.iter
        (fun ins ->
          match ins.kind with
          | Load { base; _ } -> Hashtbl.replace access ins.id (target_of_aval (eval base))
          | Store { base; _ } -> Hashtbl.replace access ins.id (target_of_aval (eval base))
          | _ -> ())
        b.instrs)
    f.blocks

let analyze m =
  let access = Hashtbl.create 256 in
  List.iter (fun f -> analyze_func f access) m.funcs;
  { access }

let access_target t id = Hashtbl.find_opt t.access id

let may_touch t id g =
  match access_target t id with
  | None -> false
  | Some Anything -> true
  | Some (Objects s) -> Obj_set.mem g s

let accesses_possibly_sensitive t m =
  let sensitive =
    List.filter_map (fun g -> if g.sensitive then Some g.gname else None) m.globals
  in
  Hashtbl.fold
    (fun id target acc ->
      let hits =
        match target with
        | Anything -> sensitive <> []
        | Objects s -> List.exists (fun g -> Obj_set.mem g s) sensitive
      in
      if hits then id :: acc else acc)
    t.access []
  |> List.sort compare

let precision t m ~exact ~anything =
  ignore m;
  let e = ref 0 and a = ref 0 in
  Hashtbl.iter
    (fun _ target -> match target with Objects _ -> incr e | Anything -> incr a)
    t.access;
  if !e <> exact || !a <> anything then
    invalid_arg
      (Printf.sprintf "Pointsto.precision: got exact=%d anything=%d, expected %d/%d" !e !a
         exact anything)
