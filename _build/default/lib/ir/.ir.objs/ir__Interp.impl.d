lib/ir/interp.ml: Array Bytes Glayout Hashtbl Int64 Ir_types List Option Printf
