lib/ir/ir_types.mli:
