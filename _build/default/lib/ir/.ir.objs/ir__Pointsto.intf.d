lib/ir/pointsto.mli: Ir_types Set
