lib/ir/lower.mli: Glayout Ir_types X86sim
