lib/ir/printer.mli: Format Ir_types
