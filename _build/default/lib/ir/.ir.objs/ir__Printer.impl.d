lib/ir/printer.ml: Buffer Format Ir_types List Printf String
