lib/ir/verifier.ml: Hashtbl Ir_types List Option Printf String
