lib/ir/opt.mli: Ir_types
