lib/ir/pass.mli: Ir_types
