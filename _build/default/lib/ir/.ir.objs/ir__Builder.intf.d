lib/ir/builder.mli: Ir_types
