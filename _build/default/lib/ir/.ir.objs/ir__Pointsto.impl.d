lib/ir/pointsto.ml: Array Hashtbl Ir_types List Option Printf Set String
