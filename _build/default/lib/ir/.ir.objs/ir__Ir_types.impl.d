lib/ir/ir_types.ml: List
