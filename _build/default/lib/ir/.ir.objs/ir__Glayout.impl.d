lib/ir/glayout.ml: Bitops Ir_types List Ms_util X86sim
