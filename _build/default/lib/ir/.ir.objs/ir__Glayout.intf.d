lib/ir/glayout.mli: Ir_types
