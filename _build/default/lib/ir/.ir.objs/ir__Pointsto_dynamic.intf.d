lib/ir/pointsto_dynamic.mli: Hashtbl Ir_types Pointsto
