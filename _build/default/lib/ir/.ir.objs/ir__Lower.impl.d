lib/ir/lower.ml: Array Cpu Glayout Insn Ir_types List Mmu Option Physmem Printf Program Reg Verifier X86sim
