lib/ir/opt.ml: Hashtbl Ir_types List Verifier
