lib/ir/builder.ml: Ir_types List Printf
