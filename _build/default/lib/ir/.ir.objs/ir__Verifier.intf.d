lib/ir/verifier.mli: Ir_types
