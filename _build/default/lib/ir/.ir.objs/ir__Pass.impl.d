lib/ir/pass.ml: Ir_types List Printf String Verifier
