lib/ir/pointsto_dynamic.ml: Hashtbl Interp Ir_types List Pointsto
