lib/ir/interp.mli: Bytes Ir_types
