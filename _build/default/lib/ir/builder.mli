(** Imperative construction of IR modules.

    A builder holds a current module / function / block cursor; emit
    functions append to the current block and return the fresh destination
    variable where one is produced. The typical shape:

    {[
      let b = Builder.create () in
      Builder.add_global b ~name:"table" ~size:4096 ();
      Builder.start_func b ~name:"main" ~nparams:0;
      let p = Builder.emit_addr_of_global b "table" in
      ignore (Builder.emit_load b ~base:(Var p) ~offset:0);
      Builder.emit_ret b None;
      let m = Builder.finish b
    ]} *)

open Ir_types

type t

val create : unit -> t

val add_global : t -> name:string -> size:int -> ?sensitive:bool -> unit -> unit

val start_func : t -> name:string -> nparams:int -> unit
(** Opens function [name] with an entry block named ["entry"]; parameters
    become vars [0..nparams-1]. Raises [Invalid_argument] on duplicates or
    [nparams > max_params]. *)

val start_block : t -> string -> unit
(** Open (and append) a new block in the current function. *)

val fresh_var : t -> var

val emit_assign : t -> value -> var
val emit_binop : t -> binop -> value -> value -> var
val emit_load : t -> base:value -> offset:int -> var

(** The [_into] variants update an {e existing} variable instead of minting
    a fresh one — how loop-carried state (accumulators, induction
    variables) is expressed, and what keeps synthetic workloads
    register-resident rather than spill-bound. *)

val emit_assign_into : t -> var -> value -> unit
val emit_binop_into : t -> var -> binop -> value -> value -> unit
val emit_load_into : t -> var -> base:value -> offset:int -> unit
val emit_store : t -> base:value -> offset:int -> src:value -> unit
val emit_addr_of_global : t -> string -> var
val emit_addr_of_func : t -> string -> var
val emit_call : t -> ?dst:bool -> string -> value list -> var option
val emit_call_ind : t -> ?dst:bool -> value -> value list -> var option
val emit_syscall : t -> ?dst:bool -> value -> value list -> var option
val emit_ret : t -> value option -> unit
val emit_br : t -> string -> unit
val emit_cbr : t -> cmp -> value -> value -> if_true:string -> if_false:string -> unit
val emit_fp : t -> int -> unit

val last_id : t -> int
(** Id of the most recently emitted instruction (for annotation). *)

val finish : t -> modul
(** Returns the module. The builder may not be reused afterwards. *)
