open Ir_types

type t = {
  m : modul;
  mutable cur_func : func option;
  mutable cur_block : block option;
  mutable finished : bool;
  mutable last : int;
}

let create () =
  {
    m = { funcs = []; globals = []; next_instr_id = 0 };
    cur_func = None;
    cur_block = None;
    finished = false;
    last = -1;
  }

let check_open t = if t.finished then invalid_arg "Builder: already finished"

let add_global t ~name ~size ?(sensitive = false) () =
  check_open t;
  if List.exists (fun g -> g.gname = name) t.m.globals then
    invalid_arg (Printf.sprintf "Builder.add_global: duplicate %S" name);
  if size <= 0 then invalid_arg "Builder.add_global: size must be positive";
  t.m.globals <- t.m.globals @ [ { gname = name; gsize = size; sensitive } ]

let start_func t ~name ~nparams =
  check_open t;
  if List.exists (fun f -> f.fname = name) t.m.funcs then
    invalid_arg (Printf.sprintf "Builder.start_func: duplicate %S" name);
  if nparams < 0 || nparams > max_params then
    invalid_arg "Builder.start_func: at most 3 parameters";
  let entry = { blabel = "entry"; instrs = [] } in
  let f = { fname = name; nparams; blocks = [ entry ]; vreg_count = nparams } in
  t.m.funcs <- t.m.funcs @ [ f ];
  t.cur_func <- Some f;
  t.cur_block <- Some entry

let cur_func t =
  match t.cur_func with Some f -> f | None -> invalid_arg "Builder: no current function"

let cur_block t =
  match t.cur_block with Some b -> b | None -> invalid_arg "Builder: no current block"

let start_block t label =
  check_open t;
  let f = cur_func t in
  if List.exists (fun b -> b.blabel = label) f.blocks then
    invalid_arg (Printf.sprintf "Builder.start_block: duplicate %S" label);
  let b = { blabel = label; instrs = [] } in
  f.blocks <- f.blocks @ [ b ];
  t.cur_block <- Some b

let fresh_var t =
  let f = cur_func t in
  let v = f.vreg_count in
  f.vreg_count <- v + 1;
  v

let emit t kind =
  check_open t;
  let b = cur_block t in
  let id = t.m.next_instr_id in
  t.m.next_instr_id <- id + 1;
  b.instrs <- b.instrs @ [ { id; kind; safe_access = false } ];
  t.last <- id

let emit_assign t v =
  let dst = fresh_var t in
  emit t (Assign (dst, v));
  dst

let emit_binop t op a b =
  let dst = fresh_var t in
  emit t (Binop (op, dst, a, b));
  dst

let emit_load t ~base ~offset =
  let dst = fresh_var t in
  emit t (Load { dst; base; offset });
  dst

let check_var t v =
  if v < 0 || v >= (cur_func t).vreg_count then
    invalid_arg (Printf.sprintf "Builder: variable %%%d not allocated" v)

let emit_assign_into t dst v =
  check_var t dst;
  emit t (Assign (dst, v))

let emit_binop_into t dst op a b =
  check_var t dst;
  emit t (Binop (op, dst, a, b))

let emit_load_into t dst ~base ~offset =
  check_var t dst;
  emit t (Load { dst; base; offset })

let emit_store t ~base ~offset ~src = emit t (Store { base; offset; src })

let emit_addr_of_global t name =
  let dst = fresh_var t in
  emit t (Addr_of_global (dst, name));
  dst

let emit_addr_of_func t name =
  let dst = fresh_var t in
  emit t (Addr_of_func (dst, name));
  dst

let with_dst t dst f =
  let d = if dst then Some (fresh_var t) else None in
  f d;
  d

let emit_call t ?(dst = false) callee args =
  with_dst t dst (fun d -> emit t (Call { callee; args; dst = d }))

let emit_call_ind t ?(dst = false) callee args =
  with_dst t dst (fun d -> emit t (Call_ind { callee; args; dst = d }))

let emit_syscall t ?(dst = false) nr args =
  with_dst t dst (fun d -> emit t (Syscall { nr; args; dst = d }))

let emit_ret t v = emit t (Ret v)
let emit_br t label = emit t (Br label)

let emit_cbr t cmp lhs rhs ~if_true ~if_false =
  emit t (Cbr { cmp; lhs; rhs; if_true; if_false })

let emit_fp t hint = emit t (Fp hint)

let last_id t = t.last

let finish t =
  check_open t;
  t.finished <- true;
  t.m
