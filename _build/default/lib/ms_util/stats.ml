let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geomean = function
  | [] -> invalid_arg "Stats.geomean: empty"
  | xs ->
    let sum_logs =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geomean: non-positive element";
          acc +. log x)
        0.0 xs
    in
    exp (sum_logs /. float_of_int (List.length xs))

let sorted xs = List.sort compare xs

let median xs =
  match sorted xs with
  | [] -> invalid_arg "Stats.median: empty"
  | s ->
    let n = List.length s in
    let a = Array.of_list s in
    if n mod 2 = 1 then a.(n / 2) else (a.((n / 2) - 1) +. a.(n / 2)) /. 2.0

let percentile p xs =
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  match sorted xs with
  | [] -> invalid_arg "Stats.percentile: empty"
  | s ->
    let a = Array.of_list s in
    let n = Array.length a in
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int n)) in
    let idx = max 0 (min (n - 1) (rank - 1)) in
    a.(idx)

let stddev xs =
  let m = mean xs in
  let var = mean (List.map (fun x -> (x -. m) ** 2.0) xs) in
  sqrt var

let overhead ~baseline ~measured =
  if baseline <= 0.0 then invalid_arg "Stats.overhead: baseline must be positive";
  measured /. baseline

let overhead_pct ~baseline ~measured = ((overhead ~baseline ~measured) -. 1.0) *. 100.0
