(** Plain-text table rendering for benchmark and report output.

    All paper tables and figure data are printed through this module so the
    harness output is uniform and diffable. Columns are sized to their widest
    cell; alignment is per-column. *)

type align = Left | Right

type t
(** A table under construction. *)

val create : ?align:align list -> string list -> t
(** [create ~align headers] starts a table. [align] defaults to [Left] for
    the first column and [Right] for the rest (the common "name, numbers"
    layout of the paper's tables). *)

val add_row : t -> string list -> unit
(** Append a row. Rows shorter than the header are padded with empty cells;
    longer rows raise [Invalid_argument]. *)

val add_sep : t -> unit
(** Append a horizontal separator (used before geomean rows). *)

val render : t -> string
(** Render to a string, including a trailing newline. *)

val print : t -> unit
(** [print t] writes [render t] to stdout. *)

val cell_pct : float -> string
(** Format a normalized overhead (e.g. 1.147) as a percentage ["+14.7%"]. *)

val cell_x : float -> string
(** Format a ratio as a multiplier, e.g. ["20.8x"]. *)

val cell_f : ?digits:int -> float -> string
(** Fixed-point float cell; [digits] defaults to 2. *)
