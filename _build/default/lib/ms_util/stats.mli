(** Small statistics toolkit used by the benchmark harnesses.

    The paper reports per-benchmark normalized overheads and the geometric
    mean over the SPEC suite; this module provides those reductions plus a
    few robustness helpers for the wall-clock benches. *)

val mean : float list -> float
(** Arithmetic mean. Raises [Invalid_argument] on the empty list. *)

val geomean : float list -> float
(** Geometric mean; all inputs must be strictly positive. *)

val median : float list -> float
(** Median (average of the two middle elements for even lengths). *)

val percentile : float -> float list -> float
(** [percentile p xs] with [p] in [\[0,100\]], nearest-rank on the sorted list. *)

val stddev : float list -> float
(** Population standard deviation. *)

val overhead : baseline:float -> measured:float -> float
(** Normalized run-time overhead: [measured /. baseline]. A value of 1.10
    means "+10%". Raises [Invalid_argument] if baseline is not positive. *)

val overhead_pct : baseline:float -> measured:float -> float
(** Overhead as a percentage: [(measured /. baseline -. 1.) *. 100.]. *)
