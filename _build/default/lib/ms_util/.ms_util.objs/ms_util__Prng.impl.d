lib/ms_util/prng.ml: Array Int64
