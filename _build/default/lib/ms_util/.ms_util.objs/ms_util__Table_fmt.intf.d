lib/ms_util/table_fmt.mli:
