lib/ms_util/prng.mli:
