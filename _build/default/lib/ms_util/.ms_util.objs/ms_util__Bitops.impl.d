lib/ms_util/bitops.ml: Int64
