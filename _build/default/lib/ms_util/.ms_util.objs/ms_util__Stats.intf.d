lib/ms_util/stats.mli:
