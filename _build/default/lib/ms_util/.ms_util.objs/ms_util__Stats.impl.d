lib/ms_util/stats.ml: Array List
