lib/ms_util/bitops.mli:
