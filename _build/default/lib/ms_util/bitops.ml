let mask48 v = Int64.logand v 0xFFFF_FFFF_FFFFL
let to_addr v = Int64.to_int (mask48 v)
let of_addr a = Int64.of_int a

let bits ~lo ~hi v =
  if lo < 0 || lo > hi || hi > 62 then invalid_arg "Bitops.bits: bad range";
  let width = hi - lo + 1 in
  let shifted = Int64.shift_right_logical v lo in
  Int64.to_int (Int64.logand shifted (Int64.sub (Int64.shift_left 1L width) 1L))

let set_bit i b v =
  let m = Int64.shift_left 1L i in
  if b then Int64.logor v m else Int64.logand v (Int64.lognot m)

let get_bit i v = Int64.logand (Int64.shift_right_logical v i) 1L = 1L

let align_down a x = x land lnot (a - 1)
let align_up a x = (x + a - 1) land lnot (a - 1)
let is_aligned a x = x land (a - 1) = 0
