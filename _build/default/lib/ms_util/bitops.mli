(** 64-bit bit manipulation helpers shared by the simulator libraries.

    Register values and memory words are [int64] throughout the machine model;
    virtual addresses are plain [int] (x86-64 canonical addresses fit in 48
    bits, comfortably inside OCaml's native int). These helpers convert
    between the two and extract common fields. *)

val mask48 : int64 -> int64
(** Keep the low 48 bits (the architectural virtual-address width). *)

val to_addr : int64 -> int
(** Truncate a register value to a 48-bit address as a native int. *)

val of_addr : int -> int64
(** Widen an address to a register value (zero-extended). *)

val bits : lo:int -> hi:int -> int64 -> int
(** [bits ~lo ~hi v] extracts bits [lo..hi] inclusive as an int.
    Requires [0 <= lo <= hi <= 62] so the result fits a native int. *)

val set_bit : int -> bool -> int64 -> int64
(** [set_bit i b v] returns [v] with bit [i] forced to [b]. *)

val get_bit : int -> int64 -> bool
(** Test bit [i]. *)

val align_down : int -> int -> int
(** [align_down a x] rounds [x] down to a multiple of alignment [a]
    (a power of two). *)

val align_up : int -> int -> int
(** Round up to a multiple of a power-of-two alignment. *)

val is_aligned : int -> int -> bool
(** [is_aligned a x] is true when [x] is a multiple of [a]. *)
