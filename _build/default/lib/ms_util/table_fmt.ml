type align = Left | Right

type row = Cells of string list | Sep

type t = {
  headers : string list;
  align : align list;
  mutable rows : row list; (* reversed *)
}

let default_align n = List.init n (fun i -> if i = 0 then Left else Right)

let create ?align headers =
  let n = List.length headers in
  let align = match align with Some a -> a | None -> default_align n in
  if List.length align <> n then invalid_arg "Table_fmt.create: align length mismatch";
  { headers; align; rows = [] }

let add_row t cells =
  let n = List.length t.headers in
  let c = List.length cells in
  if c > n then invalid_arg "Table_fmt.add_row: too many cells";
  let padded = cells @ List.init (n - c) (fun _ -> "") in
  t.rows <- Cells padded :: t.rows

let add_sep t = t.rows <- Sep :: t.rows

let render t =
  let rows = List.rev t.rows in
  let all_cell_rows = t.headers :: List.filter_map (function Cells c -> Some c | Sep -> None) rows in
  let ncols = List.length t.headers in
  let widths = Array.make ncols 0 in
  let note_row cells =
    List.iteri (fun i c -> if String.length c > widths.(i) then widths.(i) <- String.length c) cells
  in
  List.iter note_row all_cell_rows;
  let buf = Buffer.create 1024 in
  let pad align width s =
    let fill = String.make (width - String.length s) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let emit_cells cells =
    List.iteri
      (fun i c ->
        if i > 0 then Buffer.add_string buf "  ";
        let align = List.nth t.align i in
        Buffer.add_string buf (pad align widths.(i) c))
      cells;
    Buffer.add_char buf '\n'
  in
  let total_width = Array.fold_left ( + ) 0 widths + (2 * (ncols - 1)) in
  let emit_sep () =
    Buffer.add_string buf (String.make total_width '-');
    Buffer.add_char buf '\n'
  in
  emit_cells t.headers;
  emit_sep ();
  List.iter (function Cells c -> emit_cells c | Sep -> emit_sep ()) rows;
  Buffer.contents buf

let print t = print_string (render t)

let cell_pct v = Printf.sprintf "%+.1f%%" ((v -. 1.0) *. 100.0)
let cell_x v = Printf.sprintf "%.1fx" v
let cell_f ?(digits = 2) v = Printf.sprintf "%.*f" digits v
