(** Deterministic pseudo-random number generation.

    All randomized components of the repository (workload synthesis, the
    DieHard-style allocator, attack simulations, ASLR placement) draw from
    this module so that every experiment is reproducible from a seed. The
    implementation is splitmix64 feeding xoshiro256**, which is fast,
    well-distributed and has no shared global state. *)

type t
(** A self-contained generator. Mutated in place by the sampling functions. *)

val create : seed:int -> t
(** [create ~seed] builds a generator; equal seeds give equal streams. *)

val copy : t -> t
(** Independent duplicate that continues from the current state. *)

val next_int64 : t -> int64
(** Uniform over all 2^64 bit patterns. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. Requires [lo <= hi]. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to [\[0,1\]]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniform element of a non-empty array. Raises [Invalid_argument] on [||]. *)

val split : t -> t
(** Derive a new generator from [t]; both may be used independently. *)
