(** Crash-resistant probing (Gawlik et al. [29]): scan candidate addresses
    with a primitive that survives faults, until a mapped one answers.

    Without crash resistance each miss kills the process; with it, misses
    are merely slow. Either way the expected probe count is proportional
    to the entropy — feasible for the paper's 28-bit mmap ranges, and the
    harness shows the crash count that a hiding-based defense would have
    had to notice. *)

val scan : Primitives.t -> lo:int -> hi:int -> step:int -> int option
(** Linear sweep reading one word every [step] bytes; the first readable
    address wins. *)

val scan_sampled : Primitives.t -> seed:int -> lo:int -> hi:int -> attempts:int -> int option
(** Random sampling (defeats defenses that watch for linear scans). *)
