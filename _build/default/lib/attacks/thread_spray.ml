open X86sim

let spray_and_find prim cpu ~lo ~hi ~spray_pages ~marker =
  let page = Physmem.page_size in
  let slots = (hi - lo) / page in
  if spray_pages <= 0 || spray_pages > slots then
    invalid_arg "Thread_spray: spray_pages out of range";
  let stride = slots / spray_pages * page in
  (* Spray: allocate our "thread stacks" evenly across the range (the
     attacker controls thread creation, hence placement density). *)
  for k = 0 to spray_pages - 1 do
    let va = lo + (k * stride) in
    if not (Mmu.is_mapped cpu.Cpu.mmu ~va) then begin
      Mmu.map_range cpu.Cpu.mmu ~va ~len:page ~writable:true;
      Mmu.poke64 cpu.Cpu.mmu ~va marker
    end
  done;
  (* Hunt: every mapped page is now either ours (marker) or the prey.
     Reads of our own pages never crash; the region reveals itself by
     contents (or by faulting under a deterministic technique). *)
  let rec hunt va =
    if va >= hi then None
    else if Primitives.is_mapped_oracle prim va then
      match Primitives.try_read prim va with
      | Some v when v <> marker -> Some va
      | Some _ -> hunt (va + page)
      | None -> Some va (* mapped but unreadable: deterministic isolation *)
    else hunt (va + page)
  in
  hunt lo
