lib/attacks/alloc_oracle.ml: Physmem Primitives X86sim
