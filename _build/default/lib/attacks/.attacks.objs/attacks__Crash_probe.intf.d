lib/attacks/crash_probe.mli: Primitives
