lib/attacks/harness.mli:
