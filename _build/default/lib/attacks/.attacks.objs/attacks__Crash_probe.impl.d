lib/attacks/crash_probe.ml: Ms_util Primitives Prng X86sim
