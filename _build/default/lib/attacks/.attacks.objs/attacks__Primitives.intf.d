lib/attacks/primitives.mli: X86sim
