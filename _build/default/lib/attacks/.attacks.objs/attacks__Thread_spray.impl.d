lib/attacks/thread_spray.ml: Cpu Mmu Physmem Primitives X86sim
