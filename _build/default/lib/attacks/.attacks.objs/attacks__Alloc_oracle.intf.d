lib/attacks/alloc_oracle.mli: Primitives
