lib/attacks/thread_spray.mli: Primitives X86sim
