lib/attacks/primitives.ml: Array Cpu Fault Layout Mmu Mpx Pagetable Physmem X86sim
