open Ms_util

let scan prim ~lo ~hi ~step =
  if step <= 0 then invalid_arg "Crash_probe.scan: step must be positive";
  let rec go va =
    if va >= hi then None
    else
      match Primitives.try_read prim va with
      | Some _ -> Some va
      | None -> go (va + step)
  in
  go lo

let scan_sampled prim ~seed ~lo ~hi ~attempts =
  let rng = Prng.create ~seed in
  let page = X86sim.Physmem.page_size in
  let slots = (hi - lo) / page in
  let rec go n =
    if n = 0 then None
    else
      let va = lo + (Prng.int rng slots * page) in
      match Primitives.try_read prim va with Some _ -> Some va | None -> go (n - 1)
  in
  go attempts
