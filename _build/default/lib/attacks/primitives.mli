(** The attacker of the paper's threat model (§2.3): an arbitrary
    read/write primitive inside the victim process, unable to execute
    injected code, trying to locate and access a safe region.

    Reads and writes go through the {e architectural} access path of the
    victim CPU — page tables, protection keys, active EPT — so whatever
    MemSentry technique is installed genuinely applies to the attacker.
    Two refinements model published attack machinery:

    - crash resistance ([try_read]/[try_write]): a fault is absorbed
      (Gawlik et al. [29]) and reported as [None] rather than killing the
      process; the harness counts how many such "crashes" the attack
      needed;
    - a masked mode standing for victims whose gadgets were SFI/MPX
      instrumented: the pointer the attacker controls is masked (SFI) or
      checked (MPX) before the dereference, exactly like Fig. 2. *)

type gadget =
  | Raw  (** uninstrumented read/write gadget *)
  | Sfi_masked  (** the gadget's pointer is ANDed with the partition mask *)
  | Mpx_checked  (** the gadget executes a [bndcu] first *)
  | Isboxing_prefixed  (** the gadget's address is truncated to 32 bits *)

type t

val create : ?gadget:gadget -> X86sim.Cpu.t -> t

val probes : t -> int
(** Total read/write attempts so far. *)

val crashes : t -> int
(** How many attempts faulted (absorbed by crash resistance). *)

val try_read : t -> int -> int option
(** Architectural 64-bit read at an attacker-chosen address.
    [None] = the access faulted (page/pkey/EPT/bound violation). Under
    [Sfi_masked] the read {e succeeds} but may be silently redirected. *)

val try_write : t -> int -> int -> bool
(** Architectural write; [false] = faulted. *)

val is_mapped_oracle : t -> int -> bool
(** A no-crash mapping oracle (the kind allocation primitives provide):
    consults the page table without touching data. Counts as a probe. *)

val range_mapped_oracle : t -> lo:int -> hi:int -> bool
(** "Does anything live in [\[lo, hi)]?" in a single probe — the power a
    failed fixed-address allocation of [hi - lo] bytes gives an attacker
    (Oikonomopoulos et al. [52]). *)
