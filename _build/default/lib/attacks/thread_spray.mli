(** Thread/allocation spraying (Göktaş et al., "Undermining entropy-based
    information hiding" [32]).

    The attacker exhausts the randomized range with its own allocations
    (sprayed thread stacks); the hidden region becomes the needle in a
    haystack the attacker {e owns} — any mapped page that does not contain
    the attacker's spray marker is the safe region. Finding it then takes
    a bounded scan over attacker-known addresses with no crashes at all. *)

val spray_and_find :
  Primitives.t -> X86sim.Cpu.t -> lo:int -> hi:int -> spray_pages:int -> marker:int -> int option
(** Map [spray_pages] pages across [\[lo, hi)] filled with [marker], then
    scan the range for a mapped page holding something else. *)
