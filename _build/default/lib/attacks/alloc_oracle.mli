(** Allocation-oracle attack on information hiding (Oikonomopoulos et al.,
    "Poking holes into information hiding" [52]).

    The attacker never dereferences anything: it uses a {e mapping oracle}
    (does address X belong to a mapping? — derivable from allocation
    primitives' success/failure) and binary-searches the hiding range for
    the hidden region. Zero crashes, logarithmic probes: the paper's
    argument that entropy alone cannot protect a safe region. *)

val locate : Primitives.t -> lo:int -> hi:int -> int option
(** Find the start of a mapped region inside [\[lo, hi)] (page granular).
    [None] when the range contains no mapping. *)
