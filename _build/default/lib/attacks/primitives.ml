open X86sim

type gadget = Raw | Sfi_masked | Mpx_checked | Isboxing_prefixed

type t = { cpu : Cpu.t; gadget : gadget; mutable probes : int; mutable crashes : int }

let create ?(gadget = Raw) cpu = { cpu; gadget; probes = 0; crashes = 0 }

let probes t = t.probes
let crashes t = t.crashes

let effective_addr t va =
  match t.gadget with
  | Raw -> Some va
  | Sfi_masked -> Some (va land Layout.sfi_mask)
  | Isboxing_prefixed -> Some (va land 0xFFFFFFFF)
  | Mpx_checked ->
    (* bndcu against bnd0 as the instrumented victim would execute. *)
    if t.cpu.Cpu.bnd_enabled && va > t.cpu.Cpu.bnd_upper.(Mpx.Bounds.partition_bnd) then None
    else Some va

let try_read t va =
  t.probes <- t.probes + 1;
  match effective_addr t va with
  | None ->
    t.crashes <- t.crashes + 1;
    None
  | Some addr -> (
    match Mmu.read64 t.cpu.Cpu.mmu ~va:addr with
    | v, _lat -> Some v
    | exception Fault.Fault _ ->
      t.crashes <- t.crashes + 1;
      None)

let try_write t va v =
  t.probes <- t.probes + 1;
  match effective_addr t va with
  | None ->
    t.crashes <- t.crashes + 1;
    false
  | Some addr -> (
    match Mmu.write64 t.cpu.Cpu.mmu ~va:addr v with
    | _lat -> true
    | exception Fault.Fault _ ->
      t.crashes <- t.crashes + 1;
      false)

let is_mapped_oracle t va =
  t.probes <- t.probes + 1;
  Mmu.is_mapped t.cpu.Cpu.mmu ~va

let range_mapped_oracle t ~lo ~hi =
  t.probes <- t.probes + 1;
  let found = ref false in
  Pagetable.iter t.cpu.Cpu.mmu.Mmu.pt (fun vpn _ ->
      let va = vpn * Physmem.page_size in
      if va >= lo && va < hi then found := true);
  !found
