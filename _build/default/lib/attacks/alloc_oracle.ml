open X86sim

(* Binary search over the one-probe range oracle: a failed fixed-address
   allocation of N bytes at X reveals that [X, X+N) intersects a mapping.
   log2(entropy) probes, zero dereferences, zero crashes. *)

let page = Physmem.page_size

let locate prim ~lo ~hi =
  if not (Primitives.range_mapped_oracle prim ~lo ~hi) then None
  else begin
    let rec bisect lo hi =
      if hi - lo <= page then lo
      else
        let mid = lo + (((hi - lo) / 2 / page) * page) in
        if Primitives.range_mapped_oracle prim ~lo ~hi:mid then bisect lo mid
        else bisect mid hi
    in
    Some (bisect lo hi)
  end
