(* Wall-clock microbenchmarks of the harnesses themselves via Bechamel:
   one Test.make per table/figure pipeline, so regressions in simulator
   performance are visible. These measure host seconds, not simulated
   cycles. *)

open Bechamel
open Toolkit

let quick_profile () = Workloads.Spec2006.find "hmmer"

let test_of_config name cfg =
  Test.make ~name (Staged.stage (fun () ->
      ignore (Workloads.Runner.overhead_of ~iterations:5 (quick_profile ()) cfg)))

let tests () =
  Test.make_grouped ~name:"memsentry"
    [
      Test.make ~name:"table4:microbench"
        (Staged.stage (fun () ->
             ignore
               (Workloads.Runner.run_baseline ~iterations:5 (quick_profile ()))));
      test_of_config "fig3:mpx-rw" (Memsentry.Framework.config Memsentry.Technique.Mpx);
      test_of_config "fig3:sfi-rw" (Memsentry.Framework.config Memsentry.Technique.Sfi);
      test_of_config "fig4:mpk" (Bench_common.mpk_cfg Memsentry.Instr.At_call_ret);
      test_of_config "fig4:vmfunc" (Bench_common.vmfunc_cfg Memsentry.Instr.At_call_ret);
      test_of_config "fig4:crypt" (Bench_common.crypt_cfg Memsentry.Instr.At_call_ret);
      test_of_config "fig6:mpk" (Bench_common.mpk_cfg Memsentry.Instr.At_syscalls);
    ]

let run () =
  let ols = Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |] in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances (tests ()) in
  let results = Analyze.all ols Instance.monotonic_clock raw in
  print_endline "Bechamel wall-clock microbenchmarks (ns per run):";
  Hashtbl.iter
    (fun name ols_result ->
      match Analyze.OLS.estimates ols_result with
      | Some [ est ] -> Printf.printf "  %-28s %12.0f ns\n" name est
      | Some _ | None -> Printf.printf "  %-28s (no estimate)\n" name)
    results;
  print_newline ()
