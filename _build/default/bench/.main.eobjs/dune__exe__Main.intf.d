bench/main.mli:
