bench/domains.ml: List Memsentry Ms_util Multi_domain Table_fmt
