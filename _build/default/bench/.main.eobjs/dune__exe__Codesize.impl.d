bench/codesize.ml: Bench_common Framework Instr Ir List Memsentry Ms_util Stats Table_fmt Technique Workloads X86sim
