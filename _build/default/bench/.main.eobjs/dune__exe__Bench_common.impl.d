bench/bench_common.ml: Framework List Memsentry Mpk Ms_util Printf String Table_fmt Technique Workloads
