bench/ablations.ml: Bench_common Cpu Framework Instr Instr_crypt Instr_mpx Instr_sfi Ir List Memsentry Ms_util Printf Program Stats Table_fmt Technique Workloads X86sim
