bench/fig3.ml: Bench_common Framework Instr Memsentry Technique
