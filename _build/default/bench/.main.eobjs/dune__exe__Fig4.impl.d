bench/fig4.ml: Bench_common Instr Memsentry
