bench/bechamel_suite.ml: Analyze Bechamel Bench_common Benchmark Hashtbl Instance Measure Memsentry Printf Staged Test Time Toolkit Workloads
