bench/fig5.ml: Bench_common Instr Memsentry
