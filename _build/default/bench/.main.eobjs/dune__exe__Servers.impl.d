bench/servers.ml: Bench_common Framework Instr List Memsentry Ms_util Printf Table_fmt Technique Workloads
