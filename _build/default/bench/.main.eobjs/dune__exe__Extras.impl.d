bench/extras.ml: Bench_common Bytes Framework Instr Ir List Memsentry Ms_util Multi_domain Printf Sgx_sim Stats Table_fmt Technique Workloads X86sim
