bench/fig6.ml: Bench_common Instr Memsentry
