bench/main.ml: Ablations Array Attacks Bechamel_suite Bench_common Codesize Domains Extras Fig3 Fig4 Fig5 Fig6 List Memsentry Printf Servers Sys Table4
