bench/table4.ml: Aesni Array Bytes Cpu Insn Layout List Mmu Mpk Mpx Ms_util Program Reg Sgx_sim Table_fmt Vmx X86sim
