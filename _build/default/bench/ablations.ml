(* Ablations of the design choices DESIGN.md calls out:
   1. MPX single upper-bound check vs GCC-style full (both-bounds) check —
      the paper's central MPX insight (§5.4, §6.3: the full check is
      "slightly worse than our SFI results").
   2. MPK with vs without the wrpkru ordering fence.
   3. VMFUNC with vs without Dune's syscall->hypercall conversion.
   4. crypt with round keys in ymm high halves vs spilled to memory
      (§5.3: memory keys are both insecure and slower). *)

open Ms_util
open Memsentry
open X86sim

let profiles () = List.map Workloads.Spec2006.find [ "perlbench"; "gcc"; "hmmer"; "povray" ]

let iterations () = !Bench_common.iterations

(* Run one lowered workload under an address-based check function. *)
let addr_based_overhead prof ~check =
  let lowered = Workloads.Synth.lowered ~iterations:(iterations ()) prof in
  let base = Workloads.Runner.run_baseline ~iterations:(iterations ()) prof in
  let cpu = Cpu.create () in
  Ir.Lower.setup_memory cpu lowered;
  Instr_mpx.setup cpu;
  let items = Instr.address_based ~check ~kind:Instr.Reads_and_writes lowered.Ir.Lower.mitems in
  Cpu.load_program cpu (Program.assemble items);
  (match Cpu.run cpu with
  | Cpu.Halted -> ()
  | Cpu.Out_of_fuel -> failwith "ablation: out of fuel");
  Cpu.cycles cpu /. base.Workloads.Runner.cycles

let mpx_single_vs_full () =
  let t = Table_fmt.create [ "benchmark"; "MPX single"; "MPX full"; "SFI" ] in
  let rows =
    List.map
      (fun prof ->
        let single = addr_based_overhead prof ~check:Instr_mpx.check in
        let full = addr_based_overhead prof ~check:Instr_mpx.check_full in
        let sfi = addr_based_overhead prof ~check:Instr_sfi.check in
        Table_fmt.add_row t
          [
            Bench_common.short prof.Workloads.Profile.name;
            Table_fmt.cell_f single;
            Table_fmt.cell_f full;
            Table_fmt.cell_f sfi;
          ];
        (single, full, sfi))
      (profiles ())
  in
  Table_fmt.add_sep t;
  let g f = Stats.geomean (List.map f rows) in
  Table_fmt.add_row t
    [
      "geomean";
      Table_fmt.cell_f (g (fun (a, _, _) -> a));
      Table_fmt.cell_f (g (fun (_, b, _) -> b));
      Table_fmt.cell_f (g (fun (_, _, c) -> c));
    ];
  print_endline "Ablation 1: MPX single-bound check vs full check vs SFI (rw)";
  print_endline "(paper: the full check is slightly worse than SFI; the single check wins)";
  Table_fmt.print t;
  print_newline ()

(* Helper: run a workload under a config but with a CPU tweak applied
   post-prepare (timing-model flags only; instrumentation unchanged). *)
let overhead_with_tweak prof cfg tweak =
  let base = Workloads.Runner.run_baseline ~iterations:(iterations ()) prof in
  let lowered = Workloads.Synth.lowered ~iterations:(iterations ()) prof in
  let p = Framework.prepare cfg lowered in
  tweak p.Framework.cpu;
  (match Framework.run p with
  | Cpu.Halted -> ()
  | Cpu.Out_of_fuel -> failwith "ablation: out of fuel");
  Cpu.cycles p.Framework.cpu /. base.Workloads.Runner.cycles

let two_column ~title ~cols f =
  let c1, c2 = cols in
  let t = Table_fmt.create [ "benchmark"; c1; c2 ] in
  let rows =
    List.map
      (fun prof ->
        let a, b = f prof in
        Table_fmt.add_row t
          [ Bench_common.short prof.Workloads.Profile.name; Table_fmt.cell_f a; Table_fmt.cell_f b ];
        (a, b))
      (profiles ())
  in
  Table_fmt.add_sep t;
  Table_fmt.add_row t
    [
      "geomean";
      Table_fmt.cell_f (Stats.geomean (List.map fst rows));
      Table_fmt.cell_f (Stats.geomean (List.map snd rows));
    ];
  print_endline title;
  Table_fmt.print t;
  print_newline ()

let mpk_fence () =
  let cfg = Bench_common.mpk_cfg Instr.At_call_ret in
  two_column ~title:"Ablation 2: MPK call/ret switching, with vs without the wrpkru fence"
    ~cols:("fenced", "unfenced") (fun prof ->
      ( overhead_with_tweak prof cfg (fun _ -> ()),
        overhead_with_tweak prof cfg (fun cpu -> cpu.Cpu.wrpkru_serialize <- false) ))

let vmfunc_dune_tax () =
  (* SPEC makes almost no syscalls, so the sandbox tax needs server-like
     workloads to show — exactly the paper's remark that the conversion is
     "especially noticeable for syscall-heavy benchmarks, and not as much
     on SPEC". *)
  let server syscalls seed =
    {
      Workloads.Profile.name = Printf.sprintf "server (%.0f sc/1k)" syscalls;
      loads = 300;
      stores = 120;
      call_ret = 8;
      indirect = 2;
      syscalls;
      io_bound = false;
      fp_ops = 5;
      working_set_bits = 20;
      dep_chain = Workloads.Profile.Med_ilp;
      seed;
    }
  in
  let cfg = Bench_common.vmfunc_cfg Instr.At_syscalls in
  let t = Table_fmt.create [ "workload"; "Dune"; "in-kernel" ] in
  List.iter
    (fun prof ->
      let dune_oh = overhead_with_tweak prof cfg (fun _ -> ()) in
      let kern_oh =
        overhead_with_tweak prof cfg (fun cpu -> cpu.Cpu.syscall_hypercall_tax <- false)
      in
      Table_fmt.add_row t
        [ prof.Workloads.Profile.name; Table_fmt.cell_f dune_oh; Table_fmt.cell_f kern_oh ])
    [
      Workloads.Spec2006.find "gcc";
      server 0.3 9001;
      server 1.0 9002;
      server 3.0 9003;
    ];
  print_endline
    "Ablation 3: VMFUNC at syscall granularity, Dune sandbox (syscall=hypercall) vs in-kernel \
     hypervisor";
  Table_fmt.print t;
  print_newline ()

let crypt_key_location () =
  let ymm = Bench_common.crypt_cfg Instr.At_call_ret in
  let mem =
    Framework.config ~switch_policy:Instr.At_call_ret ~crypt_keys:Instr_crypt.Key_table
      Technique.Crypt
  in
  let run prof cfg =
    let base = Workloads.Runner.run_baseline ~iterations:(iterations ()) prof in
    let r = Workloads.Runner.run_with ~iterations:(iterations ()) prof cfg in
    r.Workloads.Runner.cycles /. base.Workloads.Runner.cycles
  in
  two_column
    ~title:"Ablation 4: crypt round keys in ymm high halves vs spilled to memory"
    ~cols:("ymm keys", "memory keys") (fun prof -> (run prof ymm, run prof mem))

let run () =
  mpx_single_vs_full ();
  mpk_fence ();
  vmfunc_dune_tax ();
  crypt_key_location ()
