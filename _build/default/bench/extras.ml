(* Experiments the paper reports in prose rather than a numbered figure:
   - the mprotect baseline ("20-50x in our experiments", §1);
   - crypt's cost growing linearly with region size, ~15x at 1024 bytes
     (§6.2);
   - SafeStack hardened with address-based write protection, which the
     paper found to match the Figure 3 "-w" results (§6.2). *)

open Ms_util
open Memsentry

let sample_profiles = [ "perlbench"; "gcc"; "povray"; "xalancbmk" ]

let mprotect_baseline () =
  let t = Table_fmt.create [ "benchmark"; "mprotect overhead" ] in
  let cfg = Framework.config ~switch_policy:Instr.At_call_ret Technique.Mprotect in
  let overheads =
    List.map
      (fun name ->
        let prof = Workloads.Spec2006.find name in
        let o = Workloads.Runner.overhead_of ~iterations:!Bench_common.iterations prof cfg in
        Table_fmt.add_row t [ name; Table_fmt.cell_x o ];
        o)
      sample_profiles
  in
  Table_fmt.add_sep t;
  Table_fmt.add_row t [ "geomean"; Table_fmt.cell_x (Stats.geomean overheads) ];
  Table_fmt.add_row t [ "paper"; "20-50x" ];
  print_endline "mprotect-per-switch baseline (call/ret granularity)";
  Table_fmt.print t;
  print_newline ()

let crypt_scaling () =
  (* A moderate-call-density benchmark: the paper's ~15x at 1024 bytes is a
     suite-level number, not the povray worst case. *)
  let prof = Workloads.Spec2006.find "hmmer" in
  let t = Table_fmt.create [ "region size"; "crypt overhead" ] in
  let cfg = Framework.config ~switch_policy:Instr.At_call_ret Technique.Crypt in
  List.iter
    (fun size ->
      let base =
        Workloads.Runner.run_baseline ~iterations:!Bench_common.iterations prof
      in
      let lowered =
        Workloads.Synth.lowered ~iterations:!Bench_common.iterations ~region_size:size
          ~xmm_pool:Ir.Lower.crypt_xmm_pool prof
      in
      let p = Framework.prepare cfg lowered in
      (match Framework.run p with
      | X86sim.Cpu.Halted -> ()
      | X86sim.Cpu.Out_of_fuel -> failwith "crypt scaling: out of fuel");
      let o = X86sim.Cpu.cycles p.Framework.cpu /. base.Workloads.Runner.cycles in
      Table_fmt.add_row t [ Printf.sprintf "%d B" size; Table_fmt.cell_x o ])
    [ 16; 64; 256; 1024 ];
  Table_fmt.add_sep t;
  Table_fmt.add_row t [ "paper @1024 B"; "~15x" ];
  print_endline "crypt cost vs safe-region size (call/ret switching, 456.hmmer)";
  Table_fmt.print t;
  print_newline ()

let safestack () =
  (* SafeStack = protect the safe stack against writes: Figure 3 "-w". *)
  let t = Table_fmt.create [ "benchmark"; "SafeStack+MPX"; "SafeStack+SFI" ] in
  let mpx = Framework.config ~address_kind:Instr.Writes Technique.Mpx in
  let sfi = Framework.config ~address_kind:Instr.Writes Technique.Sfi in
  let pairs =
    List.map
      (fun name ->
        let prof = Workloads.Spec2006.find name in
        let om = Workloads.Runner.overhead_of ~iterations:!Bench_common.iterations prof mpx in
        let os = Workloads.Runner.overhead_of ~iterations:!Bench_common.iterations prof sfi in
        Table_fmt.add_row t [ name; Table_fmt.cell_f om; Table_fmt.cell_f os ];
        (om, os))
      sample_profiles
  in
  Table_fmt.add_sep t;
  Table_fmt.add_row t
    [
      "geomean";
      Table_fmt.cell_f (Stats.geomean (List.map fst pairs));
      Table_fmt.cell_f (Stats.geomean (List.map snd pairs));
    ];
  print_endline "SafeStack hardening (write-only instrumentation; paper: identical to Fig. 3 -w)";
  Table_fmt.print t;
  print_newline ()

let isboxing_extension () =
  (* Extension (related work [23]): address-size-prefix sandboxing — the
     cheapest address-based scheme, paid for in address space (4 GiB). *)
  let t = Table_fmt.create [ "benchmark"; "ISBoxing"; "MPX"; "SFI" ] in
  let cfgs =
    [
      Framework.config Technique.Isboxing;
      Framework.config Technique.Mpx;
      Framework.config Technique.Sfi;
    ]
  in
  let rows =
    List.map
      (fun name ->
        let prof = Workloads.Spec2006.find name in
        let os =
          List.map
            (fun c -> Workloads.Runner.overhead_of ~iterations:!Bench_common.iterations prof c)
            cfgs
        in
        Table_fmt.add_row t (name :: List.map Table_fmt.cell_f os);
        os)
      sample_profiles
  in
  Table_fmt.add_sep t;
  let col i = Stats.geomean (List.map (fun r -> List.nth r i) rows) in
  Table_fmt.add_row t
    [ "geomean"; Table_fmt.cell_f (col 0); Table_fmt.cell_f (col 1); Table_fmt.cell_f (col 2) ];
  print_endline
    "Extension: ISBoxing (0x67-prefix sandboxing) vs MPX vs SFI, reads+writes
     (free truncation beats both, but caps the program at 4 GiB of address space)";
  Table_fmt.print t;
  print_newline ()

let sgx_comparison () =
  (* §3.1's dismissal, quantified: the cost of reaching a safe region via
     an SGX ECALL vs the other domain switches (per access, in cycles). *)
  let t = Table_fmt.create [ "mechanism"; "cycles/access" ] in
  let iterations = 300 in
  let cost scheme = Multi_domain.cost_per_access scheme ~ndomains:1 ~iterations in
  Table_fmt.add_row t [ "MPX bounds check"; Table_fmt.cell_f (cost Multi_domain.Mpx_bounds) ];
  Table_fmt.add_row t [ "MPK wrpkru pair"; Table_fmt.cell_f (cost Multi_domain.Mpk_keys) ];
  Table_fmt.add_row t [ "VMFUNC pair"; Table_fmt.cell_f (cost Multi_domain.Vmfunc_epts) ];
  (* SGX: enter+exit per access, measured on an enclave. *)
  Sgx_sim.Enclave.reset_epc ();
  let cpu = X86sim.Cpu.create () in
  let e = Sgx_sim.Enclave.create cpu ~size:4096 ~init:Bytes.empty in
  Sgx_sim.Enclave.register_ecall e ~name:"touch" (fun mem _ ->
      Bytes.set_uint8 mem 0 1;
      0);
  let before = X86sim.Cpu.cycles cpu in
  let n = 200 in
  for _ = 1 to n do
    ignore (Sgx_sim.Enclave.ecall e cpu ~name:"touch" ~arg:0)
  done;
  Sgx_sim.Enclave.reset_epc ();
  Table_fmt.add_row t
    [ "SGX ECALL round trip"; Table_fmt.cell_f ((X86sim.Cpu.cycles cpu -. before) /. float_of_int n) ];
  print_endline
    "SGX vs the lightweight switches (paper §3.1: \"markedly inferior ... for the\n\
     relatively lightweight isolation as discussed in this paper\")";
  Table_fmt.print t;
  print_newline ()

let run () =
  mprotect_baseline ();
  crypt_scaling ();
  safestack ();
  isboxing_extension ();
  sgx_comparison ()
