(* Server workloads: the paper's §6 remark — "the overhead for I/O bound
   applications such as servers will be lower" — measured. The same
   configurations as Figures 3 and 4, over I/O-bound request loops. *)

open Ms_util
open Memsentry

let configs =
  [
    ("MPX-rw", Framework.config Technique.Mpx);
    ("SFI-rw", Framework.config Technique.Sfi);
    ("MPK c/r", Bench_common.mpk_cfg Instr.At_call_ret);
    ("VMFUNC c/r", Bench_common.vmfunc_cfg Instr.At_call_ret);
    ("crypt c/r", Bench_common.crypt_cfg Instr.At_call_ret);
  ]

let run () =
  let iterations = !Bench_common.iterations in
  let rows = Workloads.Runner.sweep ~iterations Workloads.Servers.all configs in
  let t = Table_fmt.create ("workload" :: List.map fst configs) in
  List.iter
    (fun (name, row) ->
      Table_fmt.add_row t (name :: List.map (fun (_, v) -> Table_fmt.cell_f v) row))
    rows;
  Table_fmt.add_sep t;
  let geo = Workloads.Runner.geomean_overheads rows in
  Table_fmt.add_row t ("server geomean" :: List.map (fun (_, v) -> Table_fmt.cell_f v) geo);
  (* SPEC geomeans under the same configs, for the dilution comparison. *)
  let spec_rows = Workloads.Runner.sweep ~iterations Workloads.Spec2006.all configs in
  let spec_geo = Workloads.Runner.geomean_overheads spec_rows in
  Table_fmt.add_row t
    ("SPEC geomean" :: List.map (fun (_, v) -> Table_fmt.cell_f v) spec_geo);
  print_endline
    "Server (I/O-bound) workloads vs SPEC under the same instrumentation\n\
     (paper §6: overhead for I/O-bound applications is lower)";
  Table_fmt.print t;
  List.iter2
    (fun (name, sv) (_, cv) ->
      Printf.printf "  %-10s overhead diluted %.1fx (%.1f%% -> %.1f%%)\n" name
        (if sv -. 1.0 > 0.001 then (cv -. 1.0) /. (sv -. 1.0) else 1.0)
        ((cv -. 1.0) *. 100.0) ((sv -. 1.0) *. 100.0))
    geo spec_geo;
  print_newline ()
