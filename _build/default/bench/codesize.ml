(* Code-size overhead: an extension metric. Run-time cost is only half of
   an instrumentation's price — every inserted check also grows the text
   segment (i-cache pressure, binary distribution size). Address-based
   techniques pay per memory access; domain-based techniques pay per
   switch point, with crypt's inline AES sequences by far the largest. *)

open Ms_util
open Memsentry

let configs =
  [
    ("ISBoxing", Framework.config Technique.Isboxing);
    ("MPX-rw", Framework.config Technique.Mpx);
    ("SFI-rw", Framework.config Technique.Sfi);
    ("MPK c/r", Bench_common.mpk_cfg Instr.At_call_ret);
    ("VMFUNC c/r", Bench_common.vmfunc_cfg Instr.At_call_ret);
    ("crypt c/r", Bench_common.crypt_cfg Instr.At_call_ret);
  ]

let profiles () = List.map Workloads.Spec2006.find [ "perlbench"; "bzip2"; "povray"; "lbm" ]

let size_ratio prof cfg =
  let lowered = Workloads.Synth.lowered ~iterations:2 prof in
  let base = X86sim.Encode.items_bytes (Instr.strip lowered.Ir.Lower.mitems) in
  let p = Framework.prepare cfg lowered in
  let inst = X86sim.Encode.program_bytes p.Framework.program in
  float_of_int inst /. float_of_int base

let run () =
  let t = Table_fmt.create ("benchmark" :: List.map fst configs) in
  let rows =
    List.map
      (fun prof ->
        let row = List.map (fun (_, cfg) -> size_ratio prof cfg) configs in
        Table_fmt.add_row t
          (Bench_common.short prof.Workloads.Profile.name
          :: List.map Table_fmt.cell_f row);
        row)
      (profiles ())
  in
  Table_fmt.add_sep t;
  let ncols = List.length configs in
  Table_fmt.add_row t
    ("geomean"
    :: List.init ncols (fun c ->
           Table_fmt.cell_f (Stats.geomean (List.map (fun r -> List.nth r c) rows))));
  print_endline "Code-size overhead (text bytes, instrumented / baseline)";
  Table_fmt.print t;
  print_newline ()
