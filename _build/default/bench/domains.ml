(* Domain-count sweep: how each technique's switching cost scales with the
   number of disjoint protection domains (paper §3.1, Table 3, §6.3).

   Expected shape: MPK and VMFUNC are flat per switch (until their hard
   ceilings at 16 keys / 512 EPTs, which Multi_domain enforces); MPX is
   competitive while domains fit the 3 free bound registers and degrades
   once every check must reload bounds from the spilled bound table. *)

open Ms_util
open Memsentry

let sweep_points = [ 1; 2; 3; 4; 6; 8; 12; 15 ]

let run () =
  let iterations = 400 in
  let t = Table_fmt.create [ "domains"; "MPK"; "VMFUNC"; "MPX bounds"; "note" ] in
  List.iter
    (fun n ->
      let c scheme = Multi_domain.cost_per_access scheme ~ndomains:n ~iterations in
      let note = if n <= 2 then "bounds in registers" else "MPX spills bounds" in
      Table_fmt.add_row t
        [
          string_of_int n;
          Table_fmt.cell_f (c Multi_domain.Mpk_keys);
          Table_fmt.cell_f (c Multi_domain.Vmfunc_epts);
          Table_fmt.cell_f (c Multi_domain.Mpx_bounds);
          note;
        ])
    sweep_points;
  print_endline "Domain-count sweep: marginal cycles per protected access";
  Table_fmt.print t;
  print_endline "(MPK stops at 15 keys and VMFUNC at 511 EPTs — Table 3's ceilings are enforced\n\
                 by the implementation; MPX has no ceiling but pays bound-table traffic.)";
  print_newline ()
