(** Thread/allocation spraying (Göktaş et al., "Undermining entropy-based
    information hiding" [32]).

    The attacker exhausts the randomized range with its own allocations
    (sprayed thread stacks); the hidden region becomes the needle in a
    haystack the attacker {e owns} — any mapped page that does not contain
    the attacker's spray marker is the safe region. Finding it then takes
    a bounded scan over attacker-known addresses with no crashes at all. *)

val spray_and_find :
  Primitives.t -> X86sim.Cpu.t -> lo:int -> hi:int -> spray_pages:int -> marker:int -> int option
(** Map [spray_pages] pages across [\[lo, hi)] filled with [marker], then
    scan the range for a mapped page holding something else. *)

(** {2 Cross-core gate-window race}

    A victim on vCPU 0 loops \{open gate; store secret; spin; close
    gate\} while a sibling attacker thread on vCPU 1 hammers the safe
    region with loads (crash-resistant: faulting probes are skipped).
    Deterministic round-robin interleaving makes the race reproducible.

    The result separates the two threat models the paper's single-core
    evaluation conflates: a [Wrpkru_gate] is {e per-core register state},
    so the attacker faults on every probe no matter how wide the victim's
    window ([rr_leaks = 0]); an [Mprotect_gate] lives in the {e shared
    page table}, so every probe scheduled inside the victim's open window
    reads the secret ([rr_leaks > 0]). *)

type gate =
  | Wrpkru_gate  (** MPK: victim toggles its own PKRU (key 1, [No_access]). *)
  | Mprotect_gate  (** mprotect: victim toggles shared page permissions. *)

type race_result = {
  rr_probes : int;  (** attacker loads issued *)
  rr_hits : int;  (** probes that read {e something} (no fault) *)
  rr_leaks : int;  (** probes that read the secret value *)
  rr_faults : int;  (** probes that faulted (skipped) *)
}

val race_gate_window :
  ?iters:int ->
  ?spin:int ->
  ?probes:int ->
  ?quantum:int ->
  gate:gate ->
  secret:int ->
  unit ->
  race_result
(** Defaults: 8 victim open/close iterations with an 80-instruction spin
    inside the window, 400 attacker probes, quantum 50. The machine is
    private to the call and runs to completion deterministically. *)
