open X86sim
open Memsentry

let secret_value = 0x5EC12E7

type result = {
  scenario : string;
  attack : string;
  outcome : string;
  probes : int;
  crashes : int;
  leaked : bool;
}

let page = Physmem.page_size

(* --- attacks against information hiding --- *)

let hiding_victim ?(entropy_bits = 16) ~seed () =
  let cpu = Cpu.create () in
  let hidden = Defenses.Info_hiding.hide cpu ~seed ~entropy_bits ~size:page ~secret:secret_value () in
  (cpu, hidden)

let judge prim ~scenario ~attack ~found cpu =
  ignore cpu;
  match found with
  | None ->
    {
      scenario;
      attack;
      outcome = "region not located";
      probes = Primitives.probes prim;
      crashes = Primitives.crashes prim;
      leaked = false;
    }
  | Some va -> (
    match Primitives.try_read prim va with
    | Some v when v = secret_value ->
      {
        scenario;
        attack;
        outcome = Printf.sprintf "SECRET LEAKED (0x%x)" v;
        probes = Primitives.probes prim;
        crashes = Primitives.crashes prim;
        leaked = true;
      }
    | Some v ->
      {
        scenario;
        attack;
        outcome = Printf.sprintf "located, read denied (got 0x%x)" v;
        probes = Primitives.probes prim;
        crashes = Primitives.crashes prim;
        leaked = false;
      }
    | None ->
      {
        scenario;
        attack;
        outcome = "located, access faulted";
        probes = Primitives.probes prim;
        crashes = Primitives.crashes prim;
        leaked = false;
      })

let run_hiding_attacks ?(entropy_bits = 16) () =
  let scenario = Printf.sprintf "info hiding (%d-bit)" entropy_bits in
  (* Allocation oracle: no dereference until the final read. *)
  let cpu, hidden = hiding_victim ~entropy_bits ~seed:101 () in
  let lo, hi = Defenses.Info_hiding.probe_space hidden in
  let prim = Primitives.create cpu in
  let oracle = judge prim ~scenario ~attack:"allocation oracle"
      ~found:(Alloc_oracle.locate prim ~lo ~hi) cpu
  in
  (* Crash-resistant probing. *)
  let cpu, hidden = hiding_victim ~entropy_bits ~seed:202 () in
  let lo, hi = Defenses.Info_hiding.probe_space hidden in
  let prim = Primitives.create cpu in
  let probe =
    judge prim ~scenario ~attack:"crash-resistant probe"
      ~found:(Crash_probe.scan prim ~lo ~hi ~step:page)
      cpu
  in
  (* Thread spraying. *)
  let cpu, hidden = hiding_victim ~entropy_bits ~seed:303 () in
  let lo, hi = Defenses.Info_hiding.probe_space hidden in
  let prim = Primitives.create cpu in
  let spray =
    judge prim ~scenario ~attack:"thread spray"
      ~found:
        (Thread_spray.spray_and_find prim cpu ~lo ~hi ~spray_pages:((hi - lo) / page / 2)
           ~marker:0x11111111)
      cpu
  in
  [ oracle; probe; spray ]

(* --- the deterministic scenarios: the address is public --- *)

let deterministic_victim () =
  let cpu = Cpu.create () in
  let alloc = Safe_region.create_allocator cpu in
  let region = Safe_region.alloc alloc ~size:page in
  Mmu.poke64 cpu.Cpu.mmu ~va:region.Safe_region.va secret_value;
  (cpu, region)

let run_deterministic () =
  let direct name ~gadget ~setup =
    let cpu, region = deterministic_victim () in
    setup cpu region;
    let prim = Primitives.create ~gadget cpu in
    judge prim ~scenario:name ~attack:"direct read (address public)"
      ~found:(Some region.Safe_region.va) cpu
  in
  let mpk =
    direct "MPK" ~gadget:Primitives.Raw ~setup:(fun cpu region ->
        let st = Instr_mpk.setup cpu ~protection:Mpk.Pkey.No_access [ region ] in
        ignore st)
  in
  let vmfunc =
    direct "VMFUNC" ~gadget:Primitives.Raw ~setup:(fun cpu region -> ignore (Instr_vmfunc.setup cpu [ region ]))
  in
  let crypt =
    direct "crypt" ~gadget:Primitives.Raw ~setup:(fun cpu region ->
        ignore (Instr_crypt.setup cpu ~seed:5 [ region ]))
  in
  let mprotect =
    direct "mprotect" ~gadget:Primitives.Raw ~setup:(fun cpu region ->
        ignore (Instr_mprotect.setup cpu [ region ]))
  in
  let sfi =
    direct "SFI" ~gadget:Primitives.Sfi_masked ~setup:(fun cpu region ->
        (* The masked alias must exist so the redirected read lands. *)
        let alias = region.Safe_region.va land Layout.sfi_mask in
        Mmu.map_range cpu.Cpu.mmu ~va:alias ~len:page ~writable:true)
  in
  let mpx =
    direct "MPX" ~gadget:Primitives.Mpx_checked ~setup:(fun cpu _ -> Instr_mpx.setup cpu)
  in
  (* SGX: the secret never enters the address space at all. *)
  let sgx =
    let cpu = Cpu.create () in
    Sgx_sim.Enclave.reset_epc ();
    let img = Bytes.create 8 in
    Bytes.set_int64_le img 0 (Int64.of_int secret_value);
    let _enclave = Sgx_sim.Enclave.create cpu ~size:page ~init:img in
    let prim = Primitives.create cpu in
    let found =
      Crash_probe.scan_sampled prim ~seed:9 ~lo:Layout.sensitive_base
        ~hi:(Layout.sensitive_base + (1 lsl 24))
        ~attempts:2048
    in
    judge prim ~scenario:"SGX" ~attack:"address-space scan" ~found cpu
  in
  [ mpk; vmfunc; crypt; mprotect; sfi; mpx; sgx ]

(* --- the concurrency scenario: a sibling core races the gate window --- *)

let race_attack = "sibling-core race (2 vCPUs)"

let is_race r = r.attack = race_attack

let run_races () =
  let race name gate =
    let r = Thread_spray.race_gate_window ~gate ~secret:secret_value () in
    let leaked = r.Thread_spray.rr_leaks > 0 in
    {
      scenario = name;
      attack = race_attack;
      outcome =
        (if leaked then
           Printf.sprintf "SECRET LEAKED (%d/%d probes in open window)" r.Thread_spray.rr_leaks
             r.Thread_spray.rr_probes
         else "every probe faulted (per-core gate)");
      probes = r.Thread_spray.rr_probes;
      crashes = r.Thread_spray.rr_faults;
      leaked;
    }
  in
  [
    race "MPK (racing sibling)" Thread_spray.Wrpkru_gate;
    race "mprotect (racing sibling)" Thread_spray.Mprotect_gate;
  ]

let run_all ?entropy_bits () =
  run_hiding_attacks ?entropy_bits () @ run_deterministic () @ run_races ()

let print_table results =
  let t =
    Ms_util.Table_fmt.create
      ~align:
        [ Ms_util.Table_fmt.Left; Ms_util.Table_fmt.Left; Ms_util.Table_fmt.Left;
          Ms_util.Table_fmt.Right; Ms_util.Table_fmt.Right ]
      [ "victim"; "attack"; "outcome"; "probes"; "crashes" ]
  in
  List.iter
    (fun r ->
      Ms_util.Table_fmt.add_row t
        [ r.scenario; r.attack; r.outcome; string_of_int r.probes; string_of_int r.crashes ])
    results;
  print_endline "Threat-model experiment: information hiding vs deterministic isolation";
  Ms_util.Table_fmt.print t

(* Race rows are excluded: the mprotect race leaking is the experiment's
   finding (a shared page-table gate is unsafe under concurrency), not a
   failure of the single-threaded deterministic-isolation claim. *)
let any_deterministic_leak results =
  List.exists
    (fun r ->
      r.leaked
      && (not (String.length r.scenario > 4 && String.sub r.scenario 0 4 = "info"))
      && not (is_race r))
    results
