open X86sim

let spray_and_find prim cpu ~lo ~hi ~spray_pages ~marker =
  let page = Physmem.page_size in
  let slots = (hi - lo) / page in
  if spray_pages <= 0 || spray_pages > slots then
    invalid_arg "Thread_spray: spray_pages out of range";
  let stride = slots / spray_pages * page in
  (* Spray: allocate our "thread stacks" evenly across the range (the
     attacker controls thread creation, hence placement density). *)
  for k = 0 to spray_pages - 1 do
    let va = lo + (k * stride) in
    if not (Mmu.is_mapped cpu.Cpu.mmu ~va) then begin
      Mmu.map_range cpu.Cpu.mmu ~va ~len:page ~writable:true;
      Mmu.poke64 cpu.Cpu.mmu ~va marker
    end
  done;
  (* Hunt: every mapped page is now either ours (marker) or the prey.
     Reads of our own pages never crash; the region reveals itself by
     contents (or by faulting under a deterministic technique). *)
  let rec hunt va =
    if va >= hi then None
    else if Primitives.is_mapped_oracle prim va then
      match Primitives.try_read prim va with
      | Some v when v <> marker -> Some va
      | Some _ -> hunt (va + page)
      | None -> Some va (* mapped but unreadable: deterministic isolation *)
    else hunt (va + page)
  in
  hunt lo

(* ------------------------------------------------------------------ *)
(* Cross-core gate-window race                                         *)
(* ------------------------------------------------------------------ *)

type gate = Wrpkru_gate | Mprotect_gate

type race_result = {
  rr_probes : int;
  rr_hits : int;
  rr_leaks : int;
  rr_faults : int;
}

(* The concurrency attack the single-core simulator could not express:
   a victim on core 0 repeatedly opens its gate, touches the safe region,
   and closes the gate again, while a sibling thread on core 1 hammers
   the region with loads the whole time. Under MPK the gate is the
   victim's *own* PKRU — per-core register state — so the attacker's
   probes fault regardless of the victim's window. Under an mprotect gate
   the permission lives in the *shared* page table: every probe that
   lands inside the victim's open window reads the secret. This is the
   multi-threaded argument for register-state gates (ERIM's per-thread
   PKRU observation) made measurable. *)
let race_gate_window ?(iters = 8) ?(spin = 80) ?(probes = 400) ?(quantum = 50) ~gate ~secret () =
  let page = Physmem.page_size in
  let region = 0x5000_0000 in
  let buf = 0x5100_0000 in
  let sentinel = 0x5E17151 in
  if secret = sentinel || secret = 0 then
    invalid_arg "Thread_spray.race_gate_window: secret collides with sentinel/zero";
  let m = Machine.create ~vcpus:2 () in
  let victim = Machine.cpu m 0 and attacker = Machine.cpu m 1 in
  Mmu.map_range victim.Cpu.mmu ~va:region ~len:page ~writable:true;
  let buf_len = (((probes * 8) + page - 1) / page) * page in
  Mmu.map_range victim.Cpu.mmu ~va:buf ~len:buf_len ~writable:true;
  let key = 1 in
  let open_gate, close_gate =
    match gate with
    | Wrpkru_gate ->
      Mpk.Pkey.assign victim ~va:region ~len:page ~key;
      (* The attacker thread lives in the closed domain; the victim's
         wrpkru toggles only core 0's PKRU. *)
      Mpk.Pkey.close_default victim ~key ~protection:Mpk.Pkey.No_access;
      Mpk.Pkey.close_default attacker ~key ~protection:Mpk.Pkey.No_access;
      (Mpk.Pkey.open_seq, Mpk.Pkey.close_seq ~key ~protection:Mpk.Pkey.No_access)
    | Mprotect_gate ->
      Mmu.protect_range victim.Cpu.mmu ~va:region ~len:page ~readable:false ~writable:false;
      let seq prot =
        [
          Insn.Mov_ri (Reg.rax, Cpu.sys_mprotect);
          Insn.Mov_ri (Reg.rdi, region);
          Insn.Mov_ri (Reg.rsi, page);
          Insn.Mov_ri (Reg.rdx, prot);
          Insn.Syscall;
        ]
      in
      (seq 3, seq 0)
  in
  let i x = Program.I x in
  let victim_program =
    Program.assemble
      ([ Program.Label "main"; i (Insn.Mov_ri (Reg.rbx, iters)); Program.Label "vloop" ]
      @ List.map i open_gate
      @ [
          i (Insn.Store_i (Insn.mem_abs region, secret));
          i (Insn.Mov_ri (Reg.rsi, spin));
          Program.Label "vspin";
          i (Insn.Alu_ri (Insn.Sub, Reg.rsi, 1));
          i (Insn.Jcc (Insn.Gt, Insn.target "vspin"));
        ]
      @ List.map i close_gate
      @ [
          i (Insn.Alu_ri (Insn.Sub, Reg.rbx, 1));
          i (Insn.Jcc (Insn.Gt, Insn.target "vloop"));
          i Insn.Halt;
        ])
  in
  let attacker_program =
    Program.assemble
      [
        Program.Label "main";
        i (Insn.Mov_ri (Reg.rbx, probes));
        i (Insn.Mov_ri (Reg.rdi, buf));
        Program.Label "aloop";
        i (Insn.Mov_ri (Reg.rcx, sentinel));
        i (Insn.Load (Reg.rcx, Insn.mem_abs region));
        i (Insn.Store (Insn.mem ~base:Reg.rdi 0, Reg.rcx));
        i (Insn.Alu_ri (Insn.Add, Reg.rdi, 8));
        i (Insn.Alu_ri (Insn.Sub, Reg.rbx, 1));
        i (Insn.Jcc (Insn.Gt, Insn.target "aloop"));
        i Insn.Halt;
      ]
  in
  Cpu.load_program victim victim_program;
  Cpu.load_program attacker attacker_program;
  (* The attacker survives its faulting probes (crash-resistant thread). *)
  attacker.Cpu.fault_handler <- (fun _ _ -> Cpu.Fault_skip);
  (match Machine.run ~quantum m with
  | Cpu.Halted -> ()
  | Cpu.Out_of_fuel -> failwith "Thread_spray.race_gate_window: machine did not terminate");
  let hits = ref 0 and leaks = ref 0 and faults = ref 0 in
  for k = 0 to probes - 1 do
    let v = Mmu.peek64 attacker.Cpu.mmu ~va:(buf + (8 * k)) in
    if v = sentinel then incr faults
    else begin
      incr hits;
      if v = secret then incr leaks
    end
  done;
  { rr_probes = probes; rr_hits = !hits; rr_leaks = !leaks; rr_faults = !faults }
