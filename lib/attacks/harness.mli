(** The paper's §2.3 threat-model experiment, end to end.

    A victim process holds a 64-bit secret in a safe region. Against
    {e information hiding}, the published attacks (allocation oracle,
    thread spraying, crash-resistant probing) locate the region and leak
    the secret. Against every MemSentry technique the region's address is
    {e not even hidden} — the attacker reads it directly — and the access
    is denied deterministically: a fault (MPK/VMFUNC/MPX/mprotect), a
    silent redirect (SFI), ciphertext (crypt), or no mapping at all (SGX).
    "No need to hide." *)

val secret_value : int

type result = {
  scenario : string;
  attack : string;
  outcome : string;  (** human-readable: what the attacker got *)
  probes : int;
  crashes : int;
  leaked : bool;  (** did the attacker obtain {!secret_value}? *)
}

val run_hiding_attacks : ?entropy_bits:int -> unit -> result list
(** The three attacks against an information-hiding victim
    ([entropy_bits] defaults to 16 to keep the crash-probe sweep quick;
    the allocation oracle's probe count shows why 28 or 46 bits would not
    help). *)

val run_deterministic : unit -> result list
(** A direct read of the (publicly known) safe-region address under each
    MemSentry technique, plus the SGX variant. *)

val run_races : unit -> result list
(** The concurrency experiment: a sibling vCPU races the victim's gate
    open/close window ({!Thread_spray.race_gate_window}). The MPK row
    stays leak-free (the PKRU is per-core register state); the mprotect
    row leaks (page permissions are shared) — the multi-threaded argument
    for register-state gates. *)

val is_race : result -> bool
(** Whether a row came from {!run_races}. *)

val run_all : ?entropy_bits:int -> unit -> result list
(** {!run_hiding_attacks} @ {!run_deterministic} @ {!run_races}. *)

val print_table : result list -> unit

val any_deterministic_leak : result list -> bool
(** True if any deterministic {e single-threaded} scenario leaked — the
    property the test suite asserts to be false. Race rows are excluded:
    the mprotect race leaking is the finding, not a regression. *)
