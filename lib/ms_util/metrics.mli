(** Counter and histogram registry — the accounting substrate of the
    telemetry subsystem.

    A {!registry} holds named instruments, each optionally carrying label
    dimensions ([("site", "3"); ("technique", "mpk")]), so the same metric
    name can be recorded per gate site, per technique, per workload.
    Registration is idempotent: asking for an existing (name, labels) pair
    returns the same instrument, so instrumentation sites do not need to
    coordinate. Re-registering a name with a different instrument kind
    raises [Invalid_argument].

    Counters are monotonic (increments must be non-negative). Histograms
    are log-scaled: observations are binned by rounding in log space with
    a per-bucket relative error of about 4.5%, which keeps p50/p95/p99 of
    latency distributions accurate enough for attribution while using O(1)
    memory per decade. This is the same sketch idea production metric
    pipelines use (DDSketch-style), sized for cycle-valued latencies. *)

type registry

val registry : unit -> registry

(** {2 Counters} *)

type counter

val counter : registry -> ?labels:(string * string) list -> string -> counter
(** Find-or-create. [labels] default to []. *)

val incr : ?by:int -> counter -> unit
(** Add [by] (default 1). Raises [Invalid_argument] on negative [by] —
    counters are monotonic. *)

val value : counter -> int

(** {2 Histograms} *)

type histogram

val histogram : registry -> ?labels:(string * string) list -> string -> histogram
(** Find-or-create. *)

val observe : histogram -> float -> unit
(** Record one observation. Non-positive and non-finite values all land in
    a dedicated zero bucket (latencies are non-negative by construction;
    a zero-cycle span is still an observation). *)

val count : histogram -> int
val sum : histogram -> float
val mean : histogram -> float
(** 0.0 when empty. *)

val percentile : histogram -> float -> float
(** [percentile h p] with [p] in [\[0, 100\]]; nearest-rank over the
    bucketed distribution, so the result is a bucket representative within
    ~4.5% of the true order statistic. Returns 0.0 for an empty histogram.
    Raises [Invalid_argument] if [p] is outside [\[0, 100\]]. *)

val p50 : histogram -> float
val p95 : histogram -> float
val p99 : histogram -> float

(** {2 Inspection and export} *)

val counters : registry -> ((string * (string * string) list) * int) list
(** All counters as [((name, labels), value)], sorted by name then labels. *)

val to_json : registry -> Json.t
(** [{ "counters": [...], "histograms": [...] }]; each entry carries name,
    labels, and value (counters) or count/sum/p50/p95/p99/max (histograms). *)

val to_string : registry -> string
(** Human-readable listing, one instrument per line. *)
