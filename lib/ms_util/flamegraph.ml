let sanitize_frame s =
  let b = Bytes.of_string (String.trim s) in
  for i = 0 to Bytes.length b - 1 do
    match Bytes.get b i with
    | ';' | '\n' | '\r' -> Bytes.set b i '_'
    | _ -> ()
  done;
  let s = Bytes.to_string b in
  if s = "" then "_" else s

let round_weight w = int_of_float (Float.round w)

let emit_collapsed stacks =
  (* Merge repeated stacks (first-occurrence order) so the folded output
     is canonical even when the caller emits one entry per source row. *)
  let order = ref [] in
  let weights : (string, float ref) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (frames, w) ->
      if frames <> [] && w > 0.0 then begin
        let key = String.concat ";" (List.map sanitize_frame frames) in
        match Hashtbl.find_opt weights key with
        | Some cell -> cell := !cell +. w
        | None ->
          Hashtbl.add weights key (ref w);
          order := key :: !order
      end)
    stacks;
  let buf = Buffer.create 256 in
  List.iter
    (fun key ->
      let w = round_weight !(Hashtbl.find weights key) in
      if w > 0 then Buffer.add_string buf (Printf.sprintf "%s %d\n" key w))
    (List.rev !order);
  Buffer.contents buf

let to_speedscope ~name ~unit stacks =
  let frames_rev = ref [] in
  let n_frames = ref 0 in
  let intern : (string, int) Hashtbl.t = Hashtbl.create 64 in
  let frame_id fname =
    match Hashtbl.find_opt intern fname with
    | Some i -> i
    | None ->
      let i = !n_frames in
      Hashtbl.add intern fname i;
      frames_rev := fname :: !frames_rev;
      incr n_frames;
      i
  in
  let live = List.filter (fun (frames, w) -> frames <> [] && w > 0.0) stacks in
  let samples =
    List.map
      (fun (frames, _) ->
        Json.List (List.map (fun f -> Json.Int (frame_id (sanitize_frame f))) frames))
      live
  in
  let weights = List.map (fun (_, w) -> Json.Float w) live in
  let total = List.fold_left (fun a (_, w) -> a +. w) 0.0 live in
  Json.Obj
    [
      ("$schema", Json.String "https://www.speedscope.app/file-format-schema.json");
      ("name", Json.String name);
      ("activeProfileIndex", Json.Int 0);
      ("exporter", Json.String "memsentry");
      ( "shared",
        Json.Obj
          [
            ( "frames",
              Json.List
                (List.rev_map (fun f -> Json.Obj [ ("name", Json.String f) ]) !frames_rev) );
          ] );
      ( "profiles",
        Json.List
          [
            Json.Obj
              [
                ("type", Json.String "sampled");
                ("name", Json.String name);
                ("unit", Json.String unit);
                ("startValue", Json.Float 0.0);
                ("endValue", Json.Float total);
                ("samples", Json.List samples);
                ("weights", Json.List weights);
              ];
          ] );
    ]
