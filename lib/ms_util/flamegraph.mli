(** Flamegraph emitters for weighted stack profiles.

    A profile here is a list of [(frames, weight)] pairs — an outermost-
    first frame stack and a non-negative weight (cycles, samples, bytes).
    Two output formats cover the common viewers:

    - {!emit_collapsed}: Brendan Gregg's "folded stacks" text format
      ([frame;frame;frame weight] per line), the input of
      [flamegraph.pl] and of most flamegraph web viewers;
    - {!to_speedscope}: the speedscope JSON file format
      (https://www.speedscope.app), as an importable "sampled" profile.

    Emission is deterministic: stacks appear in input order (collapsed
    output merges repeated identical stacks by summing their weights
    at first position), frames are interned in first-use order. *)

val emit_collapsed : (string list * float) list -> string
(** One folded line per distinct stack: [a;b;c 123\n]. Weights are
    rounded to the nearest integer; stacks whose rounded weight is 0 (or
    with no frames) are dropped. Frame names have [';'], newlines and
    leading/trailing spaces replaced with ['_'] so they cannot corrupt
    the framing. *)

val to_speedscope : name:string -> unit:string -> (string list * float) list -> Json.t
(** A complete speedscope file holding one sampled profile called
    [name], with per-stack weights in [unit] (e.g. ["none"] for
    simulated cycles — speedscope's unit vocabulary has no cycles).
    Zero-weight and empty stacks are dropped. *)
