type counter = { mutable n : int }

(* Log-scaled histogram: bucket i holds observations whose log_gamma rounds
   to i, so every bucket's representative value gamma^i is within
   sqrt(gamma) of any member. gamma = 2^(1/8) gives ~4.5% relative error
   and ~266 buckets over the full positive float range actually used. *)
let gamma = Float.pow 2.0 0.125
let log_gamma = Float.log gamma

type histogram = {
  buckets : (int, int ref) Hashtbl.t;
  mutable zeros : int;  (* non-positive / non-finite observations *)
  mutable hcount : int;
  mutable hsum : float;
  mutable hmax : float;
}

type instrument = Counter of counter | Histogram of histogram

type registry = { tbl : (string * (string * string) list, instrument) Hashtbl.t }

let registry () = { tbl = Hashtbl.create 64 }

let canonical_labels labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let find_or_create reg ~labels name ~make ~cast =
  let key = (name, canonical_labels labels) in
  match Hashtbl.find_opt reg.tbl key with
  | Some inst -> cast inst
  | None ->
    let inst = make () in
    Hashtbl.add reg.tbl key inst;
    cast inst

let counter reg ?(labels = []) name =
  find_or_create reg ~labels name
    ~make:(fun () -> Counter { n = 0 })
    ~cast:(function
      | Counter c -> c
      | Histogram _ ->
        invalid_arg (Printf.sprintf "Metrics.counter: %S is registered as a histogram" name))

let incr ?(by = 1) c =
  if by < 0 then invalid_arg "Metrics.incr: counters are monotonic";
  c.n <- c.n + by

let value c = c.n

let histogram reg ?(labels = []) name =
  find_or_create reg ~labels name
    ~make:(fun () ->
      Histogram { buckets = Hashtbl.create 32; zeros = 0; hcount = 0; hsum = 0.0; hmax = 0.0 })
    ~cast:(function
      | Histogram h -> h
      | Counter _ ->
        invalid_arg (Printf.sprintf "Metrics.histogram: %S is registered as a counter" name))

let bucket_of v = int_of_float (Float.round (Float.log v /. log_gamma))

let representative i = Float.pow gamma (float_of_int i)

let observe h v =
  h.hcount <- h.hcount + 1;
  if Float.is_nan v || v <= 0.0 || v = Float.infinity then h.zeros <- h.zeros + 1
  else begin
    h.hsum <- h.hsum +. v;
    if v > h.hmax then h.hmax <- v;
    let b = bucket_of v in
    match Hashtbl.find_opt h.buckets b with
    | Some r -> r := !r + 1
    | None -> Hashtbl.add h.buckets b (ref 1)
  end

let count h = h.hcount
let sum h = h.hsum
let mean h = if h.hcount = 0 then 0.0 else h.hsum /. float_of_int h.hcount

let percentile h p =
  if p < 0.0 || p > 100.0 then invalid_arg "Metrics.percentile: p out of range";
  if h.hcount = 0 then 0.0
  else begin
    let rank = max 1 (int_of_float (Float.ceil (p /. 100.0 *. float_of_int h.hcount))) in
    if rank <= h.zeros then 0.0
    else begin
      let ordered =
        List.sort compare (Hashtbl.fold (fun b r acc -> (b, !r) :: acc) h.buckets [])
      in
      let rec walk cumulative = function
        | [] -> h.hmax (* rank beyond the last bucket: numeric slack *)
        | (b, n) :: rest ->
          let cumulative = cumulative + n in
          if rank <= cumulative then representative b else walk cumulative rest
      in
      walk h.zeros ordered
    end
  end

let p50 h = percentile h 50.0
let p95 h = percentile h 95.0
let p99 h = percentile h 99.0

let sorted_entries reg =
  List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) reg.tbl [])

let counters reg =
  List.filter_map
    (function key, Counter c -> Some (key, c.n) | _, Histogram _ -> None)
    (sorted_entries reg)

let labels_to_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.String v)) labels)

let to_json reg =
  let cs = ref [] and hs = ref [] in
  List.iter
    (fun ((name, labels), inst) ->
      match inst with
      | Counter c ->
        cs :=
          Json.Obj
            [ ("name", Json.String name); ("labels", labels_to_json labels);
              ("value", Json.Int c.n) ]
          :: !cs
      | Histogram h ->
        hs :=
          Json.Obj
            [
              ("name", Json.String name);
              ("labels", labels_to_json labels);
              ("count", Json.Int h.hcount);
              ("sum", Json.Float h.hsum);
              ("mean", Json.Float (mean h));
              ("p50", Json.Float (p50 h));
              ("p95", Json.Float (p95 h));
              ("p99", Json.Float (p99 h));
              ("max", Json.Float h.hmax);
            ]
          :: !hs)
    (sorted_entries reg);
  Json.Obj [ ("counters", Json.List (List.rev !cs)); ("histograms", Json.List (List.rev !hs)) ]

let label_string labels =
  if labels = [] then ""
  else
    "{" ^ String.concat "," (List.map (fun (k, v) -> Printf.sprintf "%s=%s" k v) labels) ^ "}"

let to_string reg =
  String.concat "\n"
    (List.map
       (fun ((name, labels), inst) ->
         match inst with
         | Counter c -> Printf.sprintf "%s%s %d" name (label_string labels) c.n
         | Histogram h ->
           Printf.sprintf "%s%s count=%d mean=%.1f p50=%.1f p95=%.1f p99=%.1f max=%.1f" name
             (label_string labels) h.hcount (mean h) (p50 h) (p95 h) (p99 h) h.hmax)
       (sorted_entries reg))
