(** Minimal JSON tree, printer and parser.

    The telemetry surfaces (profile output, Chrome trace-event files, the
    benchmark harness's [--json] mode) need machine-readable output, and the
    toolchain ships no JSON library — so this module is the repo's JSON
    substrate. It covers the full data model (objects, arrays, strings with
    escapes, ints, floats, bools, null) and round-trips its own output:
    [of_string (to_string v)] is structurally equal to [v] for every value
    this repository emits. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string
(** Raised by {!of_string} with a position-annotated message. *)

val to_string : ?pretty:bool -> t -> string
(** Serialize. [pretty] (default false) adds newlines and two-space
    indentation. Floats are printed with enough digits to round-trip;
    non-finite floats are emitted as [null] (JSON has no representation
    for them). *)

val of_string : string -> t
(** Parse one JSON value (leading/trailing whitespace allowed).
    Numbers without [.], [e] or [E] parse as [Int]; others as [Float].
    Raises {!Parse_error} on malformed input or trailing garbage. *)

val member : string -> t -> t option
(** Field lookup in an [Obj]; [None] for absent fields or non-objects. *)

val equal : t -> t -> bool
(** Structural equality. [Int] and [Float] never compare equal (parse
    preserves the distinction); float comparison is exact. *)

val to_file : string -> t -> unit
(** Write [to_string ~pretty:true] plus a trailing newline to a file. *)
