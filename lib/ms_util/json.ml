type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ------------------------------------------------------------------ *)
(* Printing                                                            *)
(* ------------------------------------------------------------------ *)

let escape_string b s =
  Buffer.add_char b '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string b "\\\""
      | '\\' -> Buffer.add_string b "\\\\"
      | '\n' -> Buffer.add_string b "\\n"
      | '\r' -> Buffer.add_string b "\\r"
      | '\t' -> Buffer.add_string b "\\t"
      | c when Char.code c < 0x20 -> Buffer.add_string b (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char b c)
    s;
  Buffer.add_char b '"'

let float_repr f =
  if Float.is_nan f || f = Float.infinity || f = Float.neg_infinity then "null"
  else
    (* Shortest representation that round-trips, kept recognizably a float
       (a bare "1" would re-parse as Int). *)
    let s = Printf.sprintf "%.12g" f in
    let s = if float_of_string s = f then s else Printf.sprintf "%.17g" f in
    if String.exists (fun c -> c = '.' || c = 'e' || c = 'E' || c = 'n') s then s else s ^ ".0"

let to_string ?(pretty = false) v =
  let b = Buffer.create 256 in
  let indent n = Buffer.add_string b (String.make (2 * n) ' ') in
  let nl d =
    if pretty then begin
      Buffer.add_char b '\n';
      indent d
    end
  in
  let rec go d = function
    | Null -> Buffer.add_string b "null"
    | Bool true -> Buffer.add_string b "true"
    | Bool false -> Buffer.add_string b "false"
    | Int i -> Buffer.add_string b (string_of_int i)
    | Float f -> Buffer.add_string b (float_repr f)
    | String s -> escape_string b s
    | List [] -> Buffer.add_string b "[]"
    | List items ->
      Buffer.add_char b '[';
      List.iteri
        (fun i x ->
          if i > 0 then Buffer.add_char b ',';
          nl (d + 1);
          go (d + 1) x)
        items;
      nl d;
      Buffer.add_char b ']'
    | Obj [] -> Buffer.add_string b "{}"
    | Obj fields ->
      Buffer.add_char b '{';
      List.iteri
        (fun i (k, x) ->
          if i > 0 then Buffer.add_char b ',';
          nl (d + 1);
          escape_string b k;
          Buffer.add_char b ':';
          if pretty then Buffer.add_char b ' ';
          go (d + 1) x)
        fields;
      nl d;
      Buffer.add_char b '}'
  in
  go 0 v;
  Buffer.contents b

(* ------------------------------------------------------------------ *)
(* Parsing: recursive descent over a string with one index.            *)
(* ------------------------------------------------------------------ *)

type parser_state = { src : string; mutable pos : int }

let fail st msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg st.pos))

let peek st = if st.pos < String.length st.src then Some st.src.[st.pos] else None

let advance st = st.pos <- st.pos + 1

let rec skip_ws st =
  match peek st with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance st;
    skip_ws st
  | _ -> ()

let expect st c =
  match peek st with
  | Some x when x = c -> advance st
  | _ -> fail st (Printf.sprintf "expected %C" c)

let literal st word value =
  let n = String.length word in
  if st.pos + n <= String.length st.src && String.sub st.src st.pos n = word then begin
    st.pos <- st.pos + n;
    value
  end
  else fail st (Printf.sprintf "expected %s" word)

let parse_string st =
  expect st '"';
  let b = Buffer.create 16 in
  let rec go () =
    match peek st with
    | None -> fail st "unterminated string"
    | Some '"' -> advance st
    | Some '\\' ->
      advance st;
      (match peek st with
      | Some '"' -> Buffer.add_char b '"'; advance st
      | Some '\\' -> Buffer.add_char b '\\'; advance st
      | Some '/' -> Buffer.add_char b '/'; advance st
      | Some 'n' -> Buffer.add_char b '\n'; advance st
      | Some 'r' -> Buffer.add_char b '\r'; advance st
      | Some 't' -> Buffer.add_char b '\t'; advance st
      | Some 'b' -> Buffer.add_char b '\b'; advance st
      | Some 'f' -> Buffer.add_char b '\012'; advance st
      | Some 'u' ->
        advance st;
        if st.pos + 4 > String.length st.src then fail st "truncated \\u escape";
        let hex = String.sub st.src st.pos 4 in
        let code =
          try int_of_string ("0x" ^ hex) with _ -> fail st "bad \\u escape"
        in
        st.pos <- st.pos + 4;
        (* Encode the code point as UTF-8 (BMP only; surrogate pairs are
           not produced by our printer). *)
        if code < 0x80 then Buffer.add_char b (Char.chr code)
        else if code < 0x800 then begin
          Buffer.add_char b (Char.chr (0xC0 lor (code lsr 6)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
        else begin
          Buffer.add_char b (Char.chr (0xE0 lor (code lsr 12)));
          Buffer.add_char b (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
          Buffer.add_char b (Char.chr (0x80 lor (code land 0x3F)))
        end
      | _ -> fail st "bad escape");
      go ()
    | Some c ->
      Buffer.add_char b c;
      advance st;
      go ()
  in
  go ();
  Buffer.contents b

let parse_number st =
  let start = st.pos in
  let is_num_char c =
    match c with '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true | _ -> false
  in
  let rec go () =
    match peek st with
    | Some c when is_num_char c ->
      advance st;
      go ()
    | _ -> ()
  in
  go ();
  let text = String.sub st.src start (st.pos - start) in
  if text = "" then fail st "expected a number";
  let is_float = String.exists (fun c -> c = '.' || c = 'e' || c = 'E') text in
  if is_float then
    match float_of_string_opt text with
    | Some f -> Float f
    | None -> fail st (Printf.sprintf "bad number %S" text)
  else
    match int_of_string_opt text with
    | Some i -> Int i
    | None -> (
      (* Integer overflow: fall back to float like other parsers do. *)
      match float_of_string_opt text with
      | Some f -> Float f
      | None -> fail st (Printf.sprintf "bad number %S" text))

let rec parse_value st =
  skip_ws st;
  match peek st with
  | None -> fail st "unexpected end of input"
  | Some 'n' -> literal st "null" Null
  | Some 't' -> literal st "true" (Bool true)
  | Some 'f' -> literal st "false" (Bool false)
  | Some '"' -> String (parse_string st)
  | Some '[' ->
    advance st;
    skip_ws st;
    if peek st = Some ']' then begin
      advance st;
      List []
    end
    else begin
      let rec items acc =
        let v = parse_value st in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          items (v :: acc)
        | Some ']' ->
          advance st;
          List.rev (v :: acc)
        | _ -> fail st "expected ',' or ']'"
      in
      List (items [])
    end
  | Some '{' ->
    advance st;
    skip_ws st;
    if peek st = Some '}' then begin
      advance st;
      Obj []
    end
    else begin
      let field () =
        skip_ws st;
        let k = parse_string st in
        skip_ws st;
        expect st ':';
        let v = parse_value st in
        (k, v)
      in
      let rec fields acc =
        let f = field () in
        skip_ws st;
        match peek st with
        | Some ',' ->
          advance st;
          fields (f :: acc)
        | Some '}' ->
          advance st;
          List.rev (f :: acc)
        | _ -> fail st "expected ',' or '}'"
      in
      Obj (fields [])
    end
  | Some _ -> parse_number st

let of_string s =
  let st = { src = s; pos = 0 } in
  let v = parse_value st in
  skip_ws st;
  if st.pos <> String.length s then fail st "trailing garbage";
  v

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let rec equal a b =
  match (a, b) with
  | Null, Null -> true
  | Bool x, Bool y -> x = y
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | String x, String y -> String.equal x y
  | List xs, List ys ->
    List.length xs = List.length ys && List.for_all2 equal xs ys
  | Obj xs, Obj ys ->
    List.length xs = List.length ys
    && List.for_all2 (fun (k1, v1) (k2, v2) -> String.equal k1 k2 && equal v1 v2) xs ys
  | _ -> false

let to_file path v =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc (to_string ~pretty:true v);
      output_char oc '\n')
