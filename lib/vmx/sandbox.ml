open X86sim

let nonsensitive_ept = 0
let sensitive_ept = 1

let enter cpu = Hypervisor.create cpu ~num_epts:2

let enter_secret cpu ~secret_va ~secret_len =
  let hv = enter cpu in
  Hypervisor.mark_secret hv ~va:secret_va ~len:secret_len ~ept:sensitive_ept;
  hv

let fill_gfn hv mmu gfn =
  let epts = Mmu.ept_list mmu in
  let fill i = Ept.map epts.(i) ~gfn ~hfn:gfn ~readable:true ~writable:true in
  match Hypervisor.secret_owner hv ~gfn with
  | Some owner -> fill owner
  | None ->
    for i = 0 to Array.length epts - 1 do
      fill i
    done

let prefault hv ~va ~len =
  let cpu = Hypervisor.cpu hv in
  let mmu = cpu.Cpu.mmu in
  if len <= 0 then invalid_arg "Sandbox.prefault: length must be positive";
  let first = va / Physmem.page_size and last = (va + len - 1) / Physmem.page_size in
  for vpn = first to last do
    match Pagetable.find mmu.Mmu.pt ~vpn with
    | None -> ()
    | Some pte -> fill_gfn hv mmu pte.Pagetable.frame
  done;
  Tlb.flush mmu.Mmu.tlb

let prefault_all hv =
  let cpu = Hypervisor.cpu hv in
  let mmu = cpu.Cpu.mmu in
  Pagetable.iter mmu.Mmu.pt (fun _ pte -> fill_gfn hv mmu pte.Pagetable.frame);
  Tlb.flush mmu.Mmu.tlb
