open X86sim

let src = Logs.Src.create "memsentry.vmx" ~doc:"hypervisor events (EPT fills, refusals, hypercalls)"

module Log = (val Logs.src_log src : Logs.LOG)

type t = {
  cpu : Cpu.t;
  epts : Ept.t array;
  secret_owner : (int, int) Hashtbl.t; (* gfn -> owning EPT index *)
  mutable refused : int;
}

let hc_ping = 101
let hc_mark_secret = 100

let cpu t = t.cpu
let num_epts t = Array.length t.epts
let is_secret_gfn t ~gfn = Hashtbl.mem t.secret_owner gfn
let secret_owner t ~gfn = Hashtbl.find_opt t.secret_owner gfn

let ept_violations_refused t = t.refused

(* Translate a guest virtual page to its guest-physical frame by walking the
   guest page table (the hypervisor can always do this). *)
let gfn_of_va t ~va =
  match Pagetable.find t.cpu.Cpu.mmu.Mmu.pt ~vpn:(va / Physmem.page_size) with
  | Some pte -> pte.Pagetable.frame
  | None ->
    Fault.raise_fault
      (Fault.Page_fault { va; access = Fault.Read; reason = "hypervisor: guest page unmapped" })

let iter_gfns t ~va ~len f =
  if len <= 0 then invalid_arg "Hypervisor: length must be positive";
  let first = va / Physmem.page_size and last = (va + len - 1) / Physmem.page_size in
  for vpn = first to last do
    f (gfn_of_va t ~va:(vpn * Physmem.page_size))
  done

let mark_secret t ~va ~len ~ept =
  if ept < 0 || ept >= Array.length t.epts then
    invalid_arg "Hypervisor.mark_secret: bad EPT index";
  Log.info (fun m -> m "marking [0x%x, 0x%x) secret, owner EPT %d" va (va + len) ept);
  iter_gfns t ~va ~len (fun gfn ->
      Hashtbl.replace t.secret_owner gfn ept;
      Array.iteri
        (fun i e ->
          if i = ept then Ept.map e ~gfn ~hfn:gfn ~readable:true ~writable:true
          else Ept.unmap e ~gfn)
        t.epts);
  Tlb.flush t.cpu.Cpu.mmu.Mmu.tlb

let clear_secret t ~va ~len =
  iter_gfns t ~va ~len (fun gfn -> Hashtbl.remove t.secret_owner gfn);
  Tlb.flush t.cpu.Cpu.mmu.Mmu.tlb

(* Demand-fill policy on EPT violation: identity-map unless the frame is a
   secret owned by a different EPT. *)
let handle_ept_violation t cpu ~gpa ~access =
  ignore access;
  let gfn = gpa / Physmem.page_size in
  let active = cpu.Cpu.mmu.Mmu.ept_index in
  match Hashtbl.find_opt t.secret_owner gfn with
  | Some owner when owner <> active ->
    t.refused <- t.refused + 1;
    Log.info (fun m ->
        m "refused EPT fill: secret gfn 0x%x (owner EPT %d) touched under EPT %d" gfn owner
          active);
    false
  | Some _ | None ->
    Log.debug (fun m -> m "demand-fill gfn 0x%x into EPT %d" gfn active);
    Ept.map t.epts.(active) ~gfn ~hfn:gfn ~readable:true ~writable:true;
    true

let handle_vmcall t cpu =
  let nr = Cpu.get_gpr cpu Reg.rax in
  if nr = hc_ping then Cpu.set_gpr cpu Reg.rax 0
  else if nr = hc_mark_secret then begin
    let va = Cpu.get_gpr cpu Reg.rdi
    and len = Cpu.get_gpr cpu Reg.rsi
    and ept = Cpu.get_gpr cpu Reg.rdx in
    mark_secret t ~va ~len ~ept;
    Cpu.set_gpr cpu Reg.rax 0
  end
  else Cpu.set_gpr cpu Reg.rax (-38)

let create cpu ~num_epts =
  if num_epts < 1 then invalid_arg "Hypervisor.create: need at least one EPT";
  if cpu.Cpu.virtualized then invalid_arg "Hypervisor.create: CPU already virtualized";
  let t =
    {
      cpu;
      epts = Array.init num_epts (fun _ -> Ept.create ());
      secret_owner = Hashtbl.create 64;
      refused = 0;
    }
  in
  Mmu.set_ept_list cpu.Cpu.mmu t.epts;
  cpu.Cpu.mmu.Mmu.ept_index <- 0;
  cpu.Cpu.mmu.Mmu.ept_on <- true;
  cpu.Cpu.virtualized <- true;
  cpu.Cpu.ept_violation_handler <- (fun c ~gpa ~access -> handle_ept_violation t c ~gpa ~access);
  cpu.Cpu.vmcall_handler <- (fun c -> handle_vmcall t c);
  Tlb.flush cpu.Cpu.mmu.Mmu.tlb;
  t

let vmfunc_seq ~ept =
  [ Insn.Mov_ri (Reg.rax, 0); Insn.Mov_ri (Reg.rcx, ept); Insn.Vmfunc ]
