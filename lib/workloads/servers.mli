(** Server-style workload profiles.

    The paper evaluates on SPEC and notes: "SPEC is very memory and CPU
    intensive, and thus the overhead for I/O bound applications such as
    servers will be lower" (§6). These profiles make that claim testable:
    request-loop shapes with realistic syscall rates whose syscalls are
    {e blocking I/O} ([sys_io], paying kernel/device time), so a large
    share of wall-clock lives outside the instrumented user code.

    The [servers] benchmark runs the same technique configurations as
    Figures 3/4 over these profiles and prints the dilution factor against
    the SPEC geomeans. *)

val all : Profile.t list
(** nginx-like (event loop, moderate calls, heavy I/O), redis-like
    (hash-table heavy, fast request loop), memcached-like (slab reads),
    postgres-like (call-heavy query execution, buffered I/O). *)

val find : string -> Profile.t
(** Raises [Not_found]. *)

val names : string list

val parallel :
  ?iterations:int ->
  ?optimize:bool ->
  ?quantum:int ->
  vcpus:int ->
  Profile.t ->
  Memsentry.Framework.config ->
  Runner.smp_result
(** Run [vcpus] identical request-processing workers on one shared-memory
    machine under the given technique — the multi-worker server deployment
    (see {!Runner.run_smp}). *)

val parallel_baseline :
  ?iterations:int -> ?quantum:int -> vcpus:int -> Profile.t -> Runner.smp_result
