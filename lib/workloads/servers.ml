open Profile

let p ~name ~loads ~stores ~call_ret ~indirect ~syscalls ~fp_ops ~ws ~ilp ~seed =
  let prof =
    {
      name;
      loads;
      stores;
      call_ret;
      indirect;
      syscalls;
      io_bound = true;
      fp_ops;
      working_set_bits = ws;
      dep_chain = ilp;
      seed;
    }
  in
  validate prof;
  prof

let all =
  [
    (* Event-loop web server: epoll/read/write on most requests. *)
    p ~name:"nginx-like" ~loads:280 ~stores:120 ~call_ret:10 ~indirect:3 ~syscalls:6.0
      ~fp_ops:2 ~ws:21 ~ilp:Med_ilp ~seed:8001;
    (* In-memory KV store: tight dictionary loop, one I/O pair per command. *)
    p ~name:"redis-like" ~loads:340 ~stores:140 ~call_ret:8 ~indirect:2 ~syscalls:4.0
      ~fp_ops:1 ~ws:24 ~ilp:Low_ilp ~seed:8002;
    (* Slab-cache reads: large working set, short handlers. *)
    p ~name:"memcached-like" ~loads:320 ~stores:90 ~call_ret:6 ~indirect:2 ~syscalls:5.0
      ~fp_ops:1 ~ws:25 ~ilp:Med_ilp ~seed:8003;
    (* Query executor: call-heavy plan interpretation, buffered I/O. *)
    p ~name:"postgres-like" ~loads:310 ~stores:130 ~call_ret:16 ~indirect:5 ~syscalls:2.5
      ~fp_ops:4 ~ws:23 ~ilp:Med_ilp ~seed:8004;
  ]

let find short = List.find (fun prof -> prof.name = short) all

let names = List.map (fun prof -> prof.name) all

(* N identical request-processing workers on one machine: the deployment
   shape the paper's single-core evaluation cannot express. The returned
   result carries per-core cycles/IPC, utilization against the makespan,
   and machine-wide gate-crossing and shootdown totals. *)
let parallel ?iterations ?optimize ?quantum ~vcpus prof cfg =
  Runner.run_smp ?iterations ?optimize ?quantum ~vcpus prof cfg

let parallel_baseline ?iterations ?quantum ~vcpus prof =
  Runner.run_baseline_smp ?iterations ?quantum ~vcpus prof
