open X86sim
open Memsentry

type run_result = { cycles : float; insns : int; ipc : float; switch_count : int }

let result_of_cpu (cpu : Cpu.t) =
  let c = cpu.Cpu.counters in
  {
    cycles = Cpu.cycles cpu;
    insns = c.Cpu.insns;
    ipc = (if Cpu.cycles cpu > 0.0 then float_of_int c.Cpu.insns /. Cpu.cycles cpu else 0.0);
    switch_count = c.Cpu.wrpkrus + c.Cpu.vmfuncs;
  }

let finish name (p : Framework.prepared) =
  match Framework.run p with
  | Cpu.Halted -> result_of_cpu p.Framework.cpu
  | Cpu.Out_of_fuel -> failwith (Printf.sprintf "Runner: %s did not terminate" name)

let run_baseline ?iterations prof =
  let lowered = Synth.lowered ?iterations prof in
  finish prof.Profile.name (Framework.prepare_baseline lowered)

let pool_for (cfg : Framework.config) =
  match cfg.Framework.technique with
  | Technique.Crypt -> Some Ir.Lower.crypt_xmm_pool
  | Technique.Sfi | Technique.Mpx | Technique.Mpk _ | Technique.Vmfunc | Technique.Sgx
  | Technique.Mprotect | Technique.Isboxing -> None

let run_with ?iterations ?optimize prof (cfg : Framework.config) =
  let lowered = Synth.lowered ?iterations ?xmm_pool:(pool_for cfg) prof in
  finish prof.Profile.name (Framework.prepare ?optimize cfg lowered)

let prepare_instrumented ?iterations ?optimize prof (cfg : Framework.config) =
  Framework.prepare ?optimize cfg (Synth.lowered ?iterations ?xmm_pool:(pool_for cfg) prof)

let profile ?iterations ?optimize prof (cfg : Framework.config) =
  let p = prepare_instrumented ?iterations ?optimize prof cfg in
  let profiler = Profiler.attach p in
  let r = finish prof.Profile.name p in
  Profiler.stop profiler;
  (profiler, r)

let overhead_of ?iterations ?optimize prof cfg =
  let base = run_baseline ?iterations prof in
  let inst = run_with ?iterations ?optimize prof cfg in
  inst.cycles /. base.cycles

let sweep_row ?iterations prof configs =
  let base = run_baseline ?iterations prof in
  let row =
    List.map
      (fun (cname, cfg) ->
        let r = run_with ?iterations prof cfg in
        (cname, r.cycles /. base.cycles))
      configs
  in
  (prof.Profile.name, row)

(* With [jobs] > 1, profiles are claimed from a shared atomic counter by
   that many worker domains. Every simulation builds its own machine
   (Cpu/Mmu/caches), so rows are independent; results land in an array
   indexed by profile position and are read back in order after all
   domains join, which makes the output bit-identical to a [jobs:1] run
   regardless of scheduling. *)
let sweep ?iterations ?(jobs = 1) profiles configs =
  if jobs <= 1 then List.map (fun prof -> sweep_row ?iterations prof configs) profiles
  else begin
    let profs = Array.of_list profiles in
    let n = Array.length profs in
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec claim () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (sweep_row ?iterations profs.(i) configs);
          claim ()
        end
      in
      claim ()
    in
    let domains = List.init (min jobs n) (fun _ -> Domain.spawn worker) in
    List.iter Domain.join domains;
    Array.to_list
      (Array.map (function Some row -> row | None -> assert false) results)
  end

(* ------------------------------------------------------------------ *)
(* Multi-vCPU runs                                                     *)
(* ------------------------------------------------------------------ *)

type smp_result = {
  per_core : run_result array;
  total_insns : int;
  makespan : float;  (* slowest core's cycles *)
  utilization : float array;  (* per-core cycles / makespan *)
  switches : int;  (* gate crossings summed over cores *)
  shootdowns : int;  (* TLB-shootdown broadcasts machine-wide *)
}

let smp_result_of_machine m =
  let per_core = Array.map result_of_cpu (Machine.cpus m) in
  let makespan = Machine.max_cycles m in
  {
    per_core;
    total_insns = Machine.total_insns m;
    makespan;
    utilization =
      Array.map (fun r -> if makespan > 0.0 then r.cycles /. makespan else 1.0) per_core;
    switches = Array.fold_left (fun a r -> a + r.switch_count) 0 per_core;
    shootdowns = Mmu.shootdown_count (Machine.cpu m 0).Cpu.mmu;
  }

let finish_smp name ?quantum (s : Framework.smp) =
  match Framework.run_smp ?quantum s with
  | Cpu.Halted -> smp_result_of_machine s.Framework.machine
  | Cpu.Out_of_fuel -> failwith (Printf.sprintf "Runner: %s (smp) did not terminate" name)

(* Every vCPU runs the same request-processing program — the paper's
   server scenario scaled out to N workers over one shared memory system.
   Each core's stack is private; globals/heap/safe regions are shared. *)
let prepare_smp_instrumented ?iterations ?optimize ~vcpus prof (cfg : Framework.config) =
  Framework.prepare_smp ~vcpus ?optimize cfg
    (Synth.lowered ?iterations ?xmm_pool:(pool_for cfg) prof)

let run_smp ?iterations ?optimize ?quantum ~vcpus prof (cfg : Framework.config) =
  finish_smp prof.Profile.name ?quantum
    (prepare_smp_instrumented ?iterations ?optimize ~vcpus prof cfg)

let run_baseline_smp ?iterations ?quantum ~vcpus prof =
  let lowered = Synth.lowered ?iterations prof in
  finish_smp prof.Profile.name ?quantum (Framework.prepare_baseline_smp ~vcpus lowered)

let geomean_overheads rows =
  match rows with
  | [] -> []
  | (_, first) :: _ ->
    List.map
      (fun (cname, _) ->
        let column = List.map (fun (_, row) -> List.assoc cname row) rows in
        (cname, Ms_util.Stats.geomean column))
      first
