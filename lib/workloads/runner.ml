open X86sim
open Memsentry

type run_result = { cycles : float; insns : int; ipc : float; switch_count : int }

let result_of_cpu (cpu : Cpu.t) =
  let c = cpu.Cpu.counters in
  {
    cycles = Cpu.cycles cpu;
    insns = c.Cpu.insns;
    ipc = (if Cpu.cycles cpu > 0.0 then float_of_int c.Cpu.insns /. Cpu.cycles cpu else 0.0);
    switch_count = c.Cpu.wrpkrus + c.Cpu.vmfuncs;
  }

let finish name (p : Framework.prepared) =
  match Framework.run p with
  | Cpu.Halted -> result_of_cpu p.Framework.cpu
  | Cpu.Out_of_fuel -> failwith (Printf.sprintf "Runner: %s did not terminate" name)

let run_baseline ?iterations prof =
  let lowered = Synth.lowered ?iterations prof in
  finish prof.Profile.name (Framework.prepare_baseline lowered)

let pool_for (cfg : Framework.config) =
  match cfg.Framework.technique with
  | Technique.Crypt -> Some Ir.Lower.crypt_xmm_pool
  | Technique.Sfi | Technique.Mpx | Technique.Mpk _ | Technique.Vmfunc | Technique.Sgx
  | Technique.Mprotect | Technique.Isboxing -> None

let run_with ?iterations prof (cfg : Framework.config) =
  let lowered = Synth.lowered ?iterations ?xmm_pool:(pool_for cfg) prof in
  finish prof.Profile.name (Framework.prepare cfg lowered)

let profile ?iterations prof (cfg : Framework.config) =
  let lowered = Synth.lowered ?iterations ?xmm_pool:(pool_for cfg) prof in
  let p = Framework.prepare cfg lowered in
  let profiler = Profiler.attach p in
  let r = finish prof.Profile.name p in
  Profiler.stop profiler;
  (profiler, r)

let overhead_of ?iterations prof cfg =
  let base = run_baseline ?iterations prof in
  let inst = run_with ?iterations prof cfg in
  inst.cycles /. base.cycles

let sweep ?iterations profiles configs =
  List.map
    (fun prof ->
      let base = run_baseline ?iterations prof in
      let row =
        List.map
          (fun (cname, cfg) ->
            let r = run_with ?iterations prof cfg in
            (cname, r.cycles /. base.cycles))
          configs
      in
      (prof.Profile.name, row))
    profiles

let geomean_overheads rows =
  match rows with
  | [] -> []
  | (_, first) :: _ ->
    List.map
      (fun (cname, _) ->
        let column = List.map (fun (_, row) -> List.assoc cname row) rows in
        (cname, Ms_util.Stats.geomean column))
      first
