(** Measurement harness: run a profile's synthetic program uninstrumented
    and under a MemSentry configuration, and report normalized overhead —
    the quantity on the y-axis of the paper's Figures 3-6.

    The crypt technique gets its workload rebuilt with the restricted xmm
    pool ({!Ir.Lower.crypt_xmm_pool}), modeling the system-wide register
    reservation for the ymm-resident round keys; the baseline it is
    normalized against keeps the full pool, exactly like the paper's
    uninstrumented baseline builds. *)

type run_result = {
  cycles : float;
  insns : int;
  ipc : float;
  switch_count : int;  (** executed domain switches (0 for address-based) *)
}

val run_baseline : ?iterations:int -> Profile.t -> run_result

val run_with :
  ?iterations:int -> ?optimize:bool -> Profile.t -> Memsentry.Framework.config -> run_result
(** [optimize] (default false) runs {!Memsentry.Gate_opt} on the
    instrumented output before loading it. *)

val prepare_instrumented :
  ?iterations:int ->
  ?optimize:bool ->
  Profile.t ->
  Memsentry.Framework.config ->
  Memsentry.Framework.prepared
(** The prepared machine {!run_with} would execute, not yet run — for
    callers that want the program/sitemap (static analysis, cost models)
    with the workload built identically to the measured builds. *)

val overhead_of :
  ?iterations:int -> ?optimize:bool -> Profile.t -> Memsentry.Framework.config -> float
(** [run_with / run_baseline] cycle ratio (1.0 = no overhead). *)

val profile :
  ?iterations:int ->
  ?optimize:bool ->
  Profile.t ->
  Memsentry.Framework.config ->
  Memsentry.Profiler.t * run_result
(** Like {!run_with}, but with a {!Memsentry.Profiler} attached for the
    whole run. The returned profiler is already stopped: its per-site
    table, spans and JSON/trace exports are ready to read. *)

val sweep :
  ?iterations:int ->
  ?jobs:int ->
  Profile.t list ->
  (string * Memsentry.Framework.config) list ->
  (string * (string * float) list) list
(** [sweep profiles configs]: for each profile, the overhead under every
    named config — the data behind one figure. Result: per-profile rows
    [(profile, [(config_name, overhead); ...])].

    [jobs] (default 1) fans the per-profile work out over that many
    domains. Each simulation owns its machine state, and rows are joined
    in profile order, so the result — and therefore every figure and
    [--json] byte — is identical for any [jobs] value. *)

val geomean_overheads : (string * (string * float) list) list -> (string * float) list
(** Column geomeans of a {!sweep} result. *)

(** {2 Multi-vCPU runs} *)

type smp_result = {
  per_core : run_result array;
  total_insns : int;
  makespan : float;  (** slowest core's cycles — the wall-clock analogue *)
  utilization : float array;  (** per-core cycles / makespan *)
  switches : int;  (** gate crossings summed over all cores *)
  shootdowns : int;  (** TLB-shootdown broadcasts, machine-wide *)
}

val prepare_smp_instrumented :
  ?iterations:int ->
  ?optimize:bool ->
  vcpus:int ->
  Profile.t ->
  Memsentry.Framework.config ->
  Memsentry.Framework.smp
(** The multi-core machine {!run_smp} would execute, not yet run — for
    callers that want to instrument it first (e.g.
    {!Memsentry.Fastprof.install_smp}). *)

val run_smp :
  ?iterations:int ->
  ?optimize:bool ->
  ?quantum:int ->
  vcpus:int ->
  Profile.t ->
  Memsentry.Framework.config ->
  smp_result
(** Run the profile's program on every one of [vcpus] cores of one shared
    machine (deterministic round-robin interleaving) — N server workers
    over shared memory. Raises [Invalid_argument] for [Vmfunc]/[Sgx]
    (see {!Memsentry.Framework.prepare_smp}). *)

val run_baseline_smp : ?iterations:int -> ?quantum:int -> vcpus:int -> Profile.t -> smp_result
