(** Data-cache hierarchy latency model.

    Three inclusive set-associative levels over DRAM with the latencies the
    paper's Table 4 takes from Intel's optimization manual: L1 4 cycles,
    L2 12, L3 44, DRAM 251. The model only produces {e latencies} (data
    lives in {!Physmem}); it exists because the cost of register spills and
    of crypt's extra memory traffic — effects the paper calls out — depend
    on locality. *)

type t
(** One core's view of the hierarchy: private L1/L2 plus a reference to a
    {!shared_l3} tier. *)

type shared_l3
(** The socket-level tier — one L3 and one DRAM access counter shared by
    every core attached to it. It keeps its own LRU clock (advanced once
    per L3-tier access) so victim selection reflects socket-wide access
    order; with a single core attached, behavior is bit-identical to the
    pre-split private hierarchy. *)

type served = L1 | L2 | L3 | Dram
(** The level that finally served an access — the telemetry subsystem's
    per-access miss attribution. *)

val create : unit -> t
(** Skylake-like geometry: L1 32 KiB/8-way, L2 256 KiB/8-way,
    L3 8 MiB/16-way, 64-byte lines. Equivalent to
    [create_core (create_shared_l3 ())]. *)

val create_shared_l3 : unit -> shared_l3
(** A fresh L3 (8 MiB/16-way) + DRAM tier with no cores attached. *)

val create_core : shared_l3 -> t
(** A core view with fresh private L1/L2 over the given shared tier. *)

val shared_tier : t -> shared_l3
(** The tier this core view misses into — physical identity matters:
    [shared_tier a == shared_tier b] iff [a] and [b] contend. *)

val access : t -> addr:int -> int
(** Latency in cycles for a data access to physical address [addr],
    updating LRU state and filling on miss (write-allocate; writes and
    reads cost the same here, store latency being hidden by the pipeline
    model). *)

val last_served : t -> served
(** Which level served the most recent {!access} ([L1] before any access).
    Read by the CPU right after the access to emit miss events. *)

val served_name : served -> string

val flush : t -> unit

val l1_hits : t -> int
val l2_hits : t -> int

val l3_hits : t -> int
(** Counted on the {e shared} tier: with several cores attached this is the
    socket-wide total, not one core's share (same for [dram_accesses] and
    [l3_evictions]). Machine-level reports must count it once, not once
    per core. *)

val dram_accesses : t -> int

val l1_evictions : t -> int
(** Line installs that displaced a valid line (conflict/capacity victims).
    Observability only; never consulted by the model. *)

val l2_evictions : t -> int
val l3_evictions : t -> int
val reset_stats : t -> unit

val lat_l1 : int
val lat_l2 : int
val lat_l3 : int
val lat_dram : int
