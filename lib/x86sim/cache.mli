(** Data-cache hierarchy latency model.

    Three inclusive set-associative levels over DRAM with the latencies the
    paper's Table 4 takes from Intel's optimization manual: L1 4 cycles,
    L2 12, L3 44, DRAM 251. The model only produces {e latencies} (data
    lives in {!Physmem}); it exists because the cost of register spills and
    of crypt's extra memory traffic — effects the paper calls out — depend
    on locality. *)

type t

type served = L1 | L2 | L3 | Dram
(** The level that finally served an access — the telemetry subsystem's
    per-access miss attribution. *)

val create : unit -> t
(** Skylake-like geometry: L1 32 KiB/8-way, L2 256 KiB/8-way,
    L3 8 MiB/16-way, 64-byte lines. *)

val access : t -> addr:int -> int
(** Latency in cycles for a data access to physical address [addr],
    updating LRU state and filling on miss (write-allocate; writes and
    reads cost the same here, store latency being hidden by the pipeline
    model). *)

val last_served : t -> served
(** Which level served the most recent {!access} ([L1] before any access).
    Read by the CPU right after the access to emit miss events. *)

val served_name : served -> string

val flush : t -> unit

val l1_hits : t -> int
val l2_hits : t -> int
val l3_hits : t -> int
val dram_accesses : t -> int

val l1_evictions : t -> int
(** Line installs that displaced a valid line (conflict/capacity victims).
    Observability only; never consulted by the model. *)

val l2_evictions : t -> int
val l3_evictions : t -> int
val reset_stats : t -> unit

val lat_l1 : int
val lat_l2 : int
val lat_l3 : int
val lat_dram : int
