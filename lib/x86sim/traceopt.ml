(* Trace-lane uop optimizer: rewrites a formed trace's flat uop segments
   before install, so the trace tier's steady-state loop dispatches fewer,
   fatter uops. Four cooperating, individually-legal rewrites:

   - macro-fusion of adjacent dependent pairs (cmp/test feeding the jcc
     exit, the SFI and-mask feeding its own access, lea feeding an MPX
     bound check);
   - inline translation slots on every 64-bit load/store uop, keyed on the
     {!Mmu.generation_token} contract;
   - dead-flag elimination on ALU uops whose flag result is provably
     overwritten before any observation point;
   - (enabling the above) segment shapes the executor can run with lazy
     rip materialization — no per-uop rip re-arm; the fault handler
     reconstructs the architectural rip from the issue delta.

   Everything here is observationally identical to the unoptimized
   segment: same architectural state, same fault points and faulting-rip
   values, same pipeline issues in the same order, same TLB/cache
   statistics. The fusion-on/off three-tier differential sweeps pin that.

   Layering: this module is {e below} [Trace] ([Trace.try_form] calls it),
   so it speaks only in uop arrays plus per-segment exit-shape booleans —
   it never sees [Trace.seg] or [exit_kind]. *)

type oseg = {
  os_uops : Ublock.uop array;
  os_flags : Ublock.uop option;
  os_m : int;
  os_pend : int;
}

type result = {
  r_segs : oseg array;
  r_slots : int;
  r_fused : int;
  r_nf : int;
}

(* Whether [u] can raise a fault (or, more broadly, has an observation
   point where architectural state — including [cmp] — becomes visible
   mid-segment). Conservative: anything not provably pure is capable.
   Memory uops fault on translation/permission, push/pop on the stack
   access, bndc raises Bound_violation. The optimizer's own shapes are
   listed capable too for totality, though its input never contains
   them. *)
let can_fault (u : Ublock.uop) =
  match u with
  | Ublock.Unop _ | Ublock.Umov_rr _ | Ublock.Umov_ri _ | Ublock.Ulea _ | Ublock.Ulea32 _
  | Ublock.Ualu_rr _ | Ublock.Ualu_ri _ | Ublock.Ualu_rr_nf _ | Ublock.Ualu_ri_nf _
  | Ublock.Ucmp_rr _ | Ublock.Ucmp_ri _ | Ublock.Utest_rr _ | Ublock.Ubnd_set _
  | Ublock.Umovq_xr _ | Ublock.Umovq_rx _ | Ublock.Uxmm_xor _ | Ublock.Uaes _
  | Ublock.Uaeskeygen _ | Ublock.Uaesimc _ | Ublock.Uvext_high _ | Ublock.Uvins_high _ ->
    false
  | _ -> true

(* Whether [u] unconditionally overwrites the flag register ([Cpu.t.cmp]).
   The [_nf] and [nf]-marked shapes do not write, but they only appear in
   already-optimized bodies, never in this module's input. *)
let writes_flags (u : Ublock.uop) =
  match u with
  | Ublock.Ualu_rr _ | Ublock.Ualu_ri _ | Ublock.Ucmp_rr _ | Ublock.Ucmp_ri _
  | Ublock.Utest_rr _ -> true
  | Ublock.Ufuse_mask_load { nf; _ }
  | Ublock.Ufuse_mask_store { nf; _ }
  | Ublock.Ufuse_mask_storei { nf; _ } -> not nf
  | _ -> false

(* Whether [u] writes general register [r]. Superset of [Trace.writes_gpr]
   covering the optimizer shapes and the implicit rsp updates of
   push/pop — the dead-flag pend check needs the register to be byte-
   stable to the end of the segment, so implicit writes count. *)
let writes_gpr (u : Ublock.uop) r =
  match u with
  | Ublock.Umov_rr { d; _ }
  | Ublock.Umov_ri { d; _ }
  | Ublock.Uload_bd { d; _ }
  | Ublock.Uload_gen { d; _ }
  | Ublock.Uload_bd_c { d; _ }
  | Ublock.Uload_gen_c { d; _ }
  | Ublock.Ulea { d; _ }
  | Ublock.Ulea32 { d; _ }
  | Ublock.Ualu_rr { d; _ }
  | Ublock.Ualu_ri { d; _ }
  | Ublock.Ualu_rr_nf { d; _ }
  | Ublock.Ualu_ri_nf { d; _ }
  | Ublock.Ufuse_mask_store { d; _ }
  | Ublock.Ufuse_mask_storei { d; _ }
  | Ublock.Ufuse_lea_bndc { d; _ }
  | Ublock.Umovq_rx { r = d; _ } -> d = r
  | Ublock.Ufuse_mask_load { d; ld; _ } -> d = r || ld = r
  | Ublock.Upop { d } -> d = r || r = Reg.rsp
  | Ublock.Upush _ -> r = Reg.rsp
  | Ublock.Urdpkru _ -> r = Reg.rax
  | _ -> false

(* Dead-flag marking for one segment body. [nf.(i)] is set for an ALU uop
   whose flag write is provably never observed: a later uop in the same
   segment unconditionally overwrites the flags, with no fault-capable uop
   (= no mid-segment observation point) strictly in between. When the scan
   runs off the end of the segment without meeting either, the write may
   still be dead {e across} the segment boundary — but only over an
   unconditional-jump exit (a side exit would leave the trace with stale
   flags), and only when the successor segment's {e first} uop overwrites
   the flags (so zero-or-all: either the successor body never starts and
   the executor re-materializes the flags from the register file, or its
   first — necessarily non-faulting — uop makes the elision invisible).
   That re-materialization is what [os_pend] requests: the destination
   register of the elided ALU, whose value must therefore be stable from
   the elision point to the end of the segment.

   Marks compose: if i's overwriter k is itself later elided, k's own
   legality extends the fault-free window to k's overwriter, so by
   induction the first {e executed} write still precedes any observation
   of i's value. *)
let mark_dead_flags ~body ~exit_jmp_here ~succ_body =
  let n = Array.length body in
  let nf = Array.make n false in
  let pend = ref (-1) in
  for i = 0 to n - 1 do
    match body.(i) with
    | Ublock.Ualu_rr { d; _ } | Ublock.Ualu_ri { d; _ } ->
      let rec scan k =
        if k >= n then -2 (* clean run-off: cross-boundary candidate *)
        else if writes_flags body.(k) then k
        else if can_fault body.(k) then -1 (* observation point first *)
        else scan (k + 1)
      in
      let k = scan (i + 1) in
      if k >= 0 then nf.(i) <- true
      else if k = -2 && exit_jmp_here then begin
        match succ_body with
        | Some (sb : Ublock.uop array) when Array.length sb > 0 && writes_flags sb.(0) ->
          let stable = ref true in
          for j = i + 1 to n - 1 do
            if writes_gpr body.(j) d then stable := false
          done;
          if !stable then begin
            nf.(i) <- true;
            pend := d
          end
        | _ -> ()
      end
    | _ -> ()
  done;
  (nf, !pend)

(* The rewrite proper for one segment: consume the dead-flag marks, fuse
   adjacent pairs (greedy, non-overlapping, left to right), and attach an
   inline translation slot to every 64-bit memory uop. [slots] is the
   trace-wide slot counter (each static uop site gets its own slot). *)
let rewrite_body ~body ~nf ~slots ~fused ~nfc =
  let n = Array.length body in
  (* Build into a pre-sized scratch array (output never exceeds input —
     fusion only shrinks it) and trim once: formation runs inside the
     timed phase of every speed measurement, and the list-cons/reverse
     idiom here showed up as the dominant allocation of the whole
     benchmark (tens of words per rewritten uop). *)
  let out = Array.make (max n 1) (Ublock.Unop { meta = 0 }) in
  let k = ref 0 in
  let emit u =
    Array.unsafe_set out !k u;
    incr k
  in
  let fresh_slot () =
    let s = !slots in
    slots := s + 1;
    s
  in
  let i = ref 0 in
  while !i < n do
    let u = body.(!i) in
    let nxt = if !i + 1 < n then Some body.(!i + 1) else None in
    (match (u, nxt) with
    (* SFI mask-then-access: alu_ri writing the base of the very next
       base+disp access. The fused uop re-uses the just-computed value as
       the address, saving the register re-read and a dispatch. *)
    | Ublock.Ualu_ri { op; d; imm; meta = m1 },
      Some (Ublock.Uload_bd { d = ld; base; disp; meta = m2 })
      when base = d ->
      incr fused;
      if nf.(!i) then incr nfc;
      emit
        (Ublock.Ufuse_mask_load
           { op; d; imm; nf = nf.(!i); m1; ld; disp; slot = fresh_slot (); m2 });
      i := !i + 2
    | Ublock.Ualu_ri { op; d; imm; meta = m1 },
      Some (Ublock.Ustore_bd { s; base; disp; meta = m2 })
      when base = d ->
      incr fused;
      if nf.(!i) then incr nfc;
      emit
        (Ublock.Ufuse_mask_store
           { op; d; imm; nf = nf.(!i); m1; s; disp; slot = fresh_slot (); m2 });
      i := !i + 2
    | Ublock.Ualu_ri { op; d; imm; meta = m1 },
      Some (Ublock.Ustorei_bd { imm = simm; base; disp; meta = m2 })
      when base = d ->
      incr fused;
      if nf.(!i) then incr nfc;
      emit
        (Ublock.Ufuse_mask_storei
           { op; d; imm; nf = nf.(!i); m1; simm; disp; slot = fresh_slot (); m2 });
      i := !i + 2
    (* MPX gate: lea computing exactly the value the adjacent bound check
       tests. Both issues become one packed pair; the fault point stays
       after both, as in the interpreter. *)
    | Ublock.Ulea { d; base; index; scale; disp; meta = m1 },
      Some (Ublock.Ubndc { upper; b; r; meta = m2 })
      when r = d ->
      incr fused;
      emit
        (Ublock.Ufuse_lea_bndc
           { d; base; index; scale; disp; w32 = false; m1; upper; b; m2 });
      i := !i + 2
    | Ublock.Ulea32 { d; base; index; scale; disp; meta = m1 },
      Some (Ublock.Ubndc { upper; b; r; meta = m2 })
      when r = d ->
      incr fused;
      emit
        (Ublock.Ufuse_lea_bndc { d; base; index; scale; disp; w32 = true; m1; upper; b; m2 });
      i := !i + 2
    | Ublock.Ualu_rr { op; d; s; meta }, _ when nf.(!i) ->
      incr nfc;
      emit (Ublock.Ualu_rr_nf { op; d; s; meta });
      incr i
    | Ublock.Ualu_ri { op; d; imm; meta }, _ when nf.(!i) ->
      incr nfc;
      emit (Ublock.Ualu_ri_nf { op; d; imm; meta });
      incr i
    | Ublock.Uload_bd { d; base; disp; meta }, _ ->
      emit (Ublock.Uload_bd_c { d; base; disp; slot = fresh_slot (); meta });
      incr i
    | Ublock.Uload_gen { d; base; index; scale; disp; meta }, _ ->
      emit (Ublock.Uload_gen_c { d; base; index; scale; disp; slot = fresh_slot (); meta });
      incr i
    | Ublock.Ustore_bd { s; base; disp; meta }, _ ->
      emit (Ublock.Ustore_bd_c { s; base; disp; slot = fresh_slot (); meta });
      incr i
    | Ublock.Ustore_gen { s; base; index; scale; disp; meta }, _ ->
      emit (Ublock.Ustore_gen_c { s; base; index; scale; disp; slot = fresh_slot (); meta });
      incr i
    | Ublock.Ustorei_bd { imm; base; disp; meta }, _ ->
      emit (Ublock.Ustorei_bd_c { imm; base; disp; slot = fresh_slot (); meta });
      incr i
    | Ublock.Ustorei_gen { imm; base; index; scale; disp; meta }, _ ->
      emit (Ublock.Ustorei_gen_c { imm; base; index; scale; disp; slot = fresh_slot (); meta });
      incr i
    | u, _ ->
      emit u;
      incr i)
  done;
  if !k = n then out else Array.sub out 0 !k

(* Whether the trailing uop is a pure flag producer the jcc exit consumes
   directly — the cmp/test+jcc macro-fusion. The producer moves to the
   executor's exit stage (still before the condition is evaluated and
   before any exit is taken, so ordering and the architectural [cmp] store
   are unchanged); what fusion buys is that the body loop ends one uop
   earlier and the exit stage can consume the freshly-computed value. *)
let flag_producer (u : Ublock.uop) =
  match u with Ublock.Ucmp_rr _ | Ublock.Ucmp_ri _ | Ublock.Utest_rr _ -> true | _ -> false

let optimize ~(bodies : Ublock.uop array array) ~(exit_jcc : bool array)
    ~(exit_jmp : bool array) ~loops : result =
  let nsegs = Array.length bodies in
  let slots = ref 0 and fused = ref 0 and nfc = ref 0 in
  let segs =
    Array.init nsegs (fun s ->
      let body = bodies.(s) in
      let m = Array.length body in
      let succ =
        if s < nsegs - 1 then Some bodies.(s + 1)
        else if loops then Some bodies.(0)
        else None
      in
      let nf, pend = mark_dead_flags ~body ~exit_jmp_here:exit_jmp.(s) ~succ_body:succ in
      (* cmp/test+jcc fusion: split the trailing flag producer off into
         the exit stage. *)
      let body, flags =
        if m > 0 && exit_jcc.(s) && flag_producer body.(m - 1) then begin
          incr fused;
          (Array.sub body 0 (m - 1), Some body.(m - 1))
        end
        else (body, None)
      in
      let uops = rewrite_body ~body ~nf ~slots ~fused ~nfc in
      { os_uops = uops; os_flags = flags; os_m = m; os_pend = pend })
  in
  { r_segs = segs; r_slots = !slots; r_fused = !fused; r_nf = !nfc }
