(** Predecoded basic-block translation cache.

    [Cpu.run]'s no-hook fast loop used to re-fetch an {!Insn.t} and walk
    the full constructor match on every step, re-resolving operands,
    pipeline ports and memory-op shape that are static for the lifetime of
    a program. This module is the classic interpreter → threaded-code
    step: each basic block of a {!Program.t} is compiled once into a flat
    array of {!uop} micro-ops — operands resolved to register ids, issue
    metadata ({!Pipeline.pack}ed register ids/port/latency) precomputed,
    memory-op shape flattened into [base+disp] vs general addressing — and
    the CPU executes cached blocks by direct array dispatch.

    Structure:
    - {b Keying}: blocks are keyed by entry instruction index in a
      per-program array ([blocks]); jumping into the middle of an existing
      block simply compiles a new (overlapping) block at that entry —
      translations are pure functions of the code array, so overlap is
      harmless.
    - {b Chaining}: a block ends at its terminator (branch, call, ret,
      halt, or a serializing instruction that must run through the
      interpreter). Static terminators cache direct links to their
      successor blocks ([succ_taken]/[succ_fall]), so steady-state
      execution follows block→block pointers without re-looking-up the
      cache.
    - {b Invalidation}: the cache carries a generation counter; each block
      records the generation it was compiled under, and blocks (and
      chain links) whose generation is stale are recompiled on next entry.
      [Cpu.load_program] switches caches when the program changes
      identity; [Cpu.flush_translations] bumps the generation for the rare
      case of in-place mutation of the code array.

    The slow paths keep interpreter semantics by construction: attached
    step/event hooks bypass translation entirely ([Cpu.step]), faults
    unwind out of block execution with [Cpu.rip] still naming the faulting
    instruction (every uop re-arms [rip] before executing), and
    serializing/handler instructions ([syscall], [vmcall], [wrpkru], …)
    are block terminators executed by the interpreter's own [exec]. *)

(** One predecoded micro-op: one non-terminator instruction with operands
    resolved and issue metadata precomputed. [meta] fields are
    {!Pipeline.pack} words; memory operands appear either flattened
    ([base]+[disp], the [_bd] shapes) or general ([base]/[index]/[scale]/
    [disp] with -1 = absent register, as in {!Insn.mem}). *)
type uop =
  | Unop of { meta : int }
  | Umov_rr of { d : int; s : int; meta : int }
  | Umov_ri of { d : int; imm : int; meta : int }
      (** Also [Mov_label], with the resolved target index as [imm]. *)
  | Uload_bd of { d : int; base : int; disp : int; meta : int }
  | Uload_gen of { d : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ustore_bd of { s : int; base : int; disp : int; meta : int }
  | Ustore_gen of { s : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ustorei_bd of { imm : int; base : int; disp : int; meta : int }
  | Ustorei_gen of { imm : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ulea of { d : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ulea32 of { d : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ualu_rr of { op : Insn.alu; d : int; s : int; meta : int }
  | Ualu_ri of { op : Insn.alu; d : int; imm : int; meta : int }
  | Ucmp_rr of { a : int; b : int; meta : int }
  | Ucmp_ri of { a : int; imm : int; meta : int }
  | Utest_rr of { a : int; b : int; meta : int }
  | Upush of { s : int }
  | Upop of { d : int }
  | Ubnd_set of { b : int; lo : int; hi : int; meta : int }
  | Ubndc of { upper : bool; b : int; r : int; meta : int }
  | Ubndmov_store of { b : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ubndmov_load of { b : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Urdpkru of { meta : int }
  | Umovdqa_load of { x : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Umovdqa_store of { x : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Umovq_xr of { x : int; r : int; meta : int }
  | Umovq_rx of { r : int; x : int; meta : int }
  | Uxmm_xor of { d : int; s : int; meta : int }
      (** [Pxor] (lat 1, ALU port) and [Fp_arith] (lat 4, FP port) share
          xor-into semantics; the packed [meta] carries the difference. *)
  | Uaes of { f : Bytes.t -> Bytes.t -> Bytes.t; d : int; s : int }
      (** aesenc/aesenclast/aesdec/aesdeclast: the AES-NI binop resolved
          to its implementation function (latency 4, AES port). *)
  | Uaeskeygen of { d : int; s : int; imm : int; meta : int }
  | Uaesimc of { d : int; s : int }
  | Uvext_high of { d : int; s : int; meta : int }
  | Uvins_high of { d : int; s : int; meta : int }
  | Ualu_rr_nf of { op : Insn.alu; d : int; s : int; meta : int }
      (** {!Ualu_rr} whose flag result is provably dead (a later flag
          write is observed first on every path out of the trace): the
          [cmp] store is elided. Built only by [Traceopt]; appears only in
          optimized trace bodies, like every constructor below. *)
  | Ualu_ri_nf of { op : Insn.alu; d : int; imm : int; meta : int }
  | Uload_bd_c of { d : int; base : int; disp : int; slot : int; meta : int }
      (** {!Uload_bd} with an inline translation slot: [slot] indexes the
          owning trace's vpn/info/token arrays ({!Mmu.generation_token}
          contract). On a token-valid vpn match the TLB probe and walk are
          short-circuited (the hit is still posted so statistics and
          timing are unchanged); otherwise the full path runs and
          recharges the slot. The [_c] variants below follow suit. *)
  | Uload_gen_c of
      { d : int; base : int; index : int; scale : int; disp : int; slot : int; meta : int }
  | Ustore_bd_c of { s : int; base : int; disp : int; slot : int; meta : int }
  | Ustore_gen_c of
      { s : int; base : int; index : int; scale : int; disp : int; slot : int; meta : int }
  | Ustorei_bd_c of { imm : int; base : int; disp : int; slot : int; meta : int }
  | Ustorei_gen_c of
      { imm : int; base : int; index : int; scale : int; disp : int; slot : int; meta : int }
  | Ufuse_mask_load of
      { op : Insn.alu; d : int; imm : int; nf : bool; m1 : int; ld : int; disp : int;
        slot : int; m2 : int }
      (** Macro-fused [alu_ri op d, imm] + [load ld, [d+disp]] — the SFI
          mask-then-access idiom. One dispatch: apply the ALU, write [d]
          (and [cmp] unless [nf]), issue [m1] {e before} the access's
          fault point, then run the slot-cached access on the just-
          computed value and issue [m2]. Architecturally identical to the
          unfused pair. *)
  | Ufuse_mask_store of
      { op : Insn.alu; d : int; imm : int; nf : bool; m1 : int; s : int; disp : int;
        slot : int; m2 : int }
  | Ufuse_mask_storei of
      { op : Insn.alu; d : int; imm : int; nf : bool; m1 : int; simm : int; disp : int;
        slot : int; m2 : int }
  | Ufuse_lea_bndc of
      { d : int; base : int; index : int; scale : int; disp : int; w32 : bool; m1 : int;
        upper : bool; b : int; m2 : int }
      (** Macro-fused [lea]/[lea32] ([w32]) + MPX bound check on its
          result — the MemSentry MPX gate idiom. Both halves issue back to
          back ({!Pipeline.issue_packed_pair_static}; the eager path has
          only a counter bump between them); the [Bound_violation] fault
          point stays {e after} both issues, as in the interpreter. *)

(** How a block ends, with branch targets resolved to instruction
    indices. [Term_exec] instructions (serializing/handler instructions:
    [Syscall], [Mfence], [Cpuid], [Wrpkru], [Vmfunc], [Vmcall]) are
    executed by the interpreter and end the chain, because their handlers
    may attach hooks or swap the program. [Term_fall_off] marks a block
    that runs off the end of the code array: executing it re-raises the
    fetch fault of [Program.fetch]. *)
type terminator =
  | Term_halt
  | Term_jmp of { target : int }
  | Term_jcc of { cond : Insn.cond; target : int }
  | Term_call of { target : int }
  | Term_call_r of { r : int }
  | Term_jmp_r of { r : int }
  | Term_ret
  | Term_exec of Insn.t
  | Term_fall_off

type block = {
  entry : int;  (** instruction index of the first covered instruction *)
  uops : uop array;
      (** the straight-line body: uop [i] is instruction [entry + i] *)
  term : terminator;
  term_idx : int;  (** instruction index of the terminator, [entry + Array.length uops] *)
  bgen : int;  (** generation this block was compiled under *)
  mutable succ_taken : block;
      (** chained successor for the taken branch direction (or the only
          successor of jmp/call); {!dummy_block} until first followed,
          honored only while [succ.bgen] matches the cache generation *)
  mutable succ_fall : block;  (** chained fall-through successor *)
  mutable exec_count : int;
      (** always-on fast-path profile: times this block was entered.
          Saturating (never wraps); incremented by the CPU's block loop. *)
  mutable taken_count : int;
      (** taken-direction exits (jmp / call / taken jcc) *)
  mutable fall_count : int;  (** fall-through exits (untaken jcc) *)
  mutable dyn_target : int;
      (** indirect-edge majority-vote candidate (Boyer–Moore): the entry
          index most indirect exits targeted, [-1] before any *)
  mutable dyn_votes : int;  (** vote excess held by [dyn_target] *)
  mutable dyn_total : int;  (** total indirect exits (ret / call_r / jmp_r) *)
}

type cache

val dummy_block : block
(** The "absent" sentinel used for unfilled cache slots and chain links;
    never executed. *)

val create : Program.t -> cache
(** An empty translation cache for [program]. Blocks are compiled on
    first entry. *)

val owns : cache -> Program.t -> bool
(** Whether this cache translates exactly that program (physical
    identity). *)

val code_length : cache -> int

val get : cache -> int -> block
(** The block entered at instruction index [entry] (must be within the
    code array), compiling it now if absent or generation-stale. *)

val generation : cache -> int

val invalidate : cache -> unit
(** Bump the generation: every cached block and chain link becomes stale
    and is recompiled on next entry. For in-place mutation of the code
    array; program swaps are handled by cache identity ({!owns}). *)

val drop_links : cache -> unit
(** Eagerly sever every cached chained-successor link (reset to
    {!dummy_block}). Called by [Cpu.flush_translations] right after
    {!invalidate}: generation checks already keep stale links from being
    followed lazily, but the trace tier bakes block references into
    superblocks, so flushes must leave no dangling successor behind. *)

val peek : cache -> int -> block option
(** The cached, generation-fresh block at [entry], without compiling.
    [None] for empty slots, stale generations, or out-of-range entries.
    Introspection for tests and reports; execution uses {!get}. *)

(** {2 Fast-path profile}

    Always-on, allocation-free counters maintained by the translated
    execution loop: block execution counts and CFG edge profiles keyed by
    block entry — the input the superblock/trace tier needs to pick hot
    chains. *)

val compiles : cache -> int
(** Blocks compiled (including recompilations after invalidation). *)

val invalidations : cache -> int
(** {!invalidate} calls (generation bumps) on this cache. *)

val bump : int -> int
(** Saturating increment: [bump max_int = max_int]. The increment used by
    every profile counter, exposed for the overflow tests. *)

val note_dyn : block -> int -> unit
(** Record one indirect exit of [block] to entry index [target]:
    increments [dyn_total] and updates the Boyer–Moore majority vote in
    [dyn_target]/[dyn_votes]. If one target has an absolute majority over
    the block's lifetime it is guaranteed to end up as [dyn_target]. *)

(** One block's profile snapshot, with static edge targets resolved:
    [s_taken_target]/[s_fall_target] are successor entry indices or [-1],
    [s_dyn_target] the hot indirect successor (or [-1]). *)
type stat = {
  s_entry : int;
  s_insns : int;  (** instructions covered (uops + terminator) *)
  s_exec : int;
  s_taken : int;
  s_fall : int;
  s_taken_target : int;
  s_fall_target : int;
  s_dyn_target : int;
  s_dyn_votes : int;
  s_dyn_total : int;
}

val stats : cache -> stat list
(** Every block that executed at least once, in entry order. Blocks from
    stale generations are included until their slot is recompiled: the
    profile describes what ran. *)
