type t = {
  phys : Physmem.t;
  pt : Pagetable.t;
  tlb : Tlb.t;
  cache : Cache.t;
  mutable pkru : int;
  mutable ept_list : Ept.t array;
  mutable ept_index : int;
  mutable ept_on : bool;
  mutable last_tlb_miss : bool;
}

let page_size = Physmem.page_size
let page_bits = 12

let create () =
  let phys = Physmem.create () in
  {
    phys;
    (* The radix tables live in the machine's own frame pool, as a real
       kernel's do. *)
    pt = Pagetable.create ~phys ();
    tlb = Tlb.create ();
    cache = Cache.create ();
    pkru = 0;
    ept_list = [||];
    ept_index = 0;
    ept_on = false;
    last_tlb_miss = false;
  }

let walk_cost t =
  let native = 4 * Pagetable.walk_levels in
  if t.ept_on then native * 5 / 2 else native

let map_page t ~va ~writable =
  let vpn = va lsr page_bits in
  match Pagetable.find t.pt ~vpn with
  | Some pte ->
    if pte.writable <> writable || not pte.readable then
      Pagetable.protect t.pt ~vpn ~readable:true ~writable
  | None ->
    let frame = Physmem.alloc_frame t.phys in
    Pagetable.map t.pt ~vpn ~frame ~writable

let iter_pages ~va ~len f =
  if len <= 0 then invalid_arg "Mmu: length must be positive";
  let first = va lsr page_bits and last = (va + len - 1) lsr page_bits in
  for vpn = first to last do
    f vpn
  done

let map_range t ~va ~len ~writable =
  iter_pages ~va ~len (fun vpn -> map_page t ~va:(vpn lsl page_bits) ~writable)

let unmap_range t ~va ~len =
  iter_pages ~va ~len (fun vpn -> Pagetable.unmap t.pt ~vpn);
  Tlb.flush t.tlb

let protect_range t ~va ~len ~readable ~writable =
  iter_pages ~va ~len (fun vpn -> Pagetable.protect t.pt ~vpn ~readable ~writable);
  Tlb.flush t.tlb

let set_pkey_range t ~va ~len ~key =
  iter_pages ~va ~len (fun vpn -> Pagetable.set_pkey t.pt ~vpn ~key);
  Tlb.flush t.tlb

let is_mapped t ~va = Pagetable.find t.pt ~vpn:(va lsr page_bits) <> None

(* pkru layout: bit 2k = access-disable, bit 2k+1 = write-disable for key k. *)
let pkey_allows t ~key ~(access : Fault.access) =
  if key = 0 && t.pkru land 3 = 0 then true
  else
    let ad = t.pkru lsr (2 * key) land 1 = 1 in
    let wd = t.pkru lsr ((2 * key) + 1) land 1 = 1 in
    match access with
    | Fault.Read | Fault.Exec -> not ad
    | Fault.Write -> not (ad || wd)

let fill t ~vpn ~(access : Fault.access) =
  let va = vpn lsl page_bits in
  match Pagetable.find t.pt ~vpn with
  | None -> Fault.raise_fault (Fault.Page_fault { va; access; reason = "not present" })
  | Some pte ->
    let gfn = pte.frame in
    if t.ept_on then begin
      let ept = t.ept_list.(t.ept_index) in
      match Ept.find ept ~gfn with
      | None ->
        Fault.raise_fault (Fault.Ept_violation { gpa = gfn lsl page_bits; ept_index = t.ept_index; access })
      | Some (hfn, perm) ->
        if not perm.Ept.readable then
          Fault.raise_fault
            (Fault.Ept_violation { gpa = gfn lsl page_bits; ept_index = t.ept_index; access });
        {
          Tlb.hfn;
          readable = pte.readable;
          writable = pte.writable && perm.Ept.writable;
          pkey = pte.pkey;
        }
    end
    else { Tlb.hfn = gfn; readable = pte.readable; writable = pte.writable; pkey = pte.pkey }

let ept_gen t = if t.ept_on then Ept.generation t.ept_list.(t.ept_index) else 0

let translate t ~va ~access =
  let vpn = va lsr page_bits in
  let pt_gen = Pagetable.generation t.pt and ept_gen = ept_gen t in
  let entry, latency =
    match Tlb.probe t.tlb ~vpn ~ept:t.ept_index ~pt_gen ~ept_gen with
    | Some hit ->
      t.last_tlb_miss <- false;
      (hit, 0)
    | None ->
      let hit = fill t ~vpn ~access in
      Tlb.insert t.tlb ~vpn ~ept:t.ept_index ~pt_gen ~ept_gen hit;
      t.last_tlb_miss <- true;
      (hit, walk_cost t)
  in
  if not (pkey_allows t ~key:entry.Tlb.pkey ~access) then
    Fault.raise_fault (Fault.Pkey_violation { va; key = entry.Tlb.pkey; access });
  if not entry.Tlb.readable then
    Fault.raise_fault (Fault.Page_fault { va; access; reason = "PROT_NONE page" });
  (match access with
  | Fault.Write when not entry.Tlb.writable ->
    Fault.raise_fault (Fault.Page_fault { va; access; reason = "write to read-only page" })
  | Fault.Write | Fault.Read | Fault.Exec -> ());
  ((entry.Tlb.hfn lsl page_bits) lor (va land (page_size - 1)), latency)

let read64 t ~va =
  let pa, lat = translate t ~va ~access:Fault.Read in
  let lat = lat + Cache.access t.cache ~addr:pa in
  (Physmem.read64 t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)), lat)

let write64 t ~va v =
  let pa, lat = translate t ~va ~access:Fault.Write in
  let lat = lat + Cache.access t.cache ~addr:pa in
  Physmem.write64 t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)) v;
  lat

let check_block16 va =
  if va land 15 <> 0 then
    Fault.raise_fault (Fault.Gp_fault (Printf.sprintf "unaligned 16-byte access at 0x%x" va))

let read_block16 t ~va =
  check_block16 va;
  let pa, lat = translate t ~va ~access:Fault.Read in
  let lat = lat + Cache.access t.cache ~addr:pa in
  (Physmem.read_block16 t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)), lat)

let write_block16 t ~va b =
  check_block16 va;
  let pa, lat = translate t ~va ~access:Fault.Write in
  let lat = lat + Cache.access t.cache ~addr:pa in
  Physmem.write_block16 t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)) b;
  lat

(* Raw access path: page-table only, no pkey/EPT/permission checks, no cost.
   Models kernel access and pre-established attacker read/write primitives. *)
let raw_frame t ~va ~access =
  match Pagetable.find t.pt ~vpn:(va lsr page_bits) with
  | Some pte -> pte.frame
  | None -> Fault.raise_fault (Fault.Page_fault { va; access; reason = "not present" })

let peek64 t ~va =
  let f = raw_frame t ~va ~access:Fault.Read in
  Physmem.read64 t.phys ~frame:f ~off:(va land (page_size - 1))

let poke64 t ~va v =
  let f = raw_frame t ~va ~access:Fault.Write in
  Physmem.write64 t.phys ~frame:f ~off:(va land (page_size - 1)) v

let peek_bytes t ~va ~len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    let a = va + i in
    let f = raw_frame t ~va:a ~access:Fault.Read in
    Bytes.set_uint8 out i (Physmem.read8 t.phys ~frame:f ~off:(a land (page_size - 1)))
  done;
  out

let poke_bytes t ~va b =
  for i = 0 to Bytes.length b - 1 do
    let a = va + i in
    let f = raw_frame t ~va:a ~access:Fault.Write in
    Physmem.write8 t.phys ~frame:f ~off:(a land (page_size - 1)) (Bytes.get_uint8 b i)
  done
