(* The machine-wide memory system: everything below the core boundary.
   One [shared] feeds every vCPU's [t]; a single-core machine is just the
   degenerate case with one view attached. *)
type shared = {
  s_phys : Physmem.t;
  s_pt : Pagetable.t;
  s_pt_gen : int ref; (* Pagetable.generation_cell s_pt, cached *)
  s_l3 : Cache.shared_l3;
  mutable s_ept_list : Ept.t array; (* EPTP list; empty unless virtualized *)
  mutable s_mmap_cursor : int; (* next anonymous-mmap address *)
  mutable s_cores : int; (* views attached so far *)
  s_shoot_gen : int ref;
      (* TLB-shootdown generation: bumped by the initiating core on every
         mapping/permission change; a remote core whose [shoot_seen] lags
         has a pending IPI to acknowledge (flush TLB + translation cache). *)
  mutable s_shootdowns : int; (* total shootdown broadcasts, telemetry *)
}

type t = {
  (* Aliases into [shared], cached at attach time: the translation hot path
     and a dozen external readers (profilers, vmx, tests) reach physical
     memory and the page table through these names. *)
  phys : Physmem.t;
  pt : Pagetable.t;
  pt_gen_cell : int ref;
  shared : shared;
  core : int; (* this view's core id, 0-based attach order *)
  (* Per-core state proper: what a context switch would save/restore. *)
  tlb : Tlb.t;
  cache : Cache.t; (* private L1/L2 over the shared L3 tier *)
  mutable pkru : int;
  mutable ept_index : int;
  mutable ept_on : bool;
  mutable shoot_seen : int; (* last shootdown generation acknowledged *)
  mutable last_tlb_miss : bool;
  mutable last_lat : int;
  mutable walk_cycles : int;
      (* cumulative page-table-walk latency charged so far — the TLB slice
         of the CPI stack, cross-checkable against Tlb.misses * walk_cost *)
}

let page_size = Physmem.page_size
let page_bits = 12

let create_shared ?max_frames () =
  let phys = Physmem.create ?max_frames () in
  (* The radix tables live in the machine's own frame pool, as a real
     kernel's do. *)
  let pt = Pagetable.create ~phys () in
  {
    s_phys = phys;
    s_pt = pt;
    s_pt_gen = Pagetable.generation_cell pt;
    s_l3 = Cache.create_shared_l3 ();
    s_ept_list = [||];
    s_mmap_cursor = Layout.mmap_base;
    s_cores = 0;
    s_shoot_gen = ref 0;
    s_shootdowns = 0;
  }

let attach shared =
  let core = shared.s_cores in
  shared.s_cores <- core + 1;
  {
    phys = shared.s_phys;
    pt = shared.s_pt;
    pt_gen_cell = shared.s_pt_gen;
    shared;
    core;
    tlb = Tlb.create ();
    cache = Cache.create_core shared.s_l3;
    pkru = 0;
    ept_index = 0;
    ept_on = false;
    shoot_seen = !(shared.s_shoot_gen);
    last_tlb_miss = false;
    last_lat = 0;
    walk_cycles = 0;
  }

let create () = attach (create_shared ())

let core_id t = t.core
let core_count t = t.shared.s_cores
let shootdown_count t = t.shared.s_shootdowns
let ept_list t = t.shared.s_ept_list
let set_ept_list t epts = t.shared.s_ept_list <- epts

let walk_cost t =
  let native = 4 * Pagetable.walk_levels in
  if t.ept_on then native * 5 / 2 else native

(* A mapping or permission change just went live in the shared page table
   (its generation bump already de-validated every core's TLB entries —
   the generation check is part of every probe). What remains to model is
   the IPI protocol around it: the initiator flushes its own TLB
   synchronously, as the kernel does, and bumps the shootdown generation
   so each sibling pays delivery cost + flush when it next runs. The
   initiator marks itself caught up — it never IPIs itself. *)
let shoot t =
  Tlb.flush t.tlb;
  let s = t.shared in
  if s.s_cores > 1 then begin
    incr s.s_shoot_gen;
    s.s_shootdowns <- s.s_shootdowns + 1;
    t.shoot_seen <- !(s.s_shoot_gen)
  end

let shootdown_pending t = t.shoot_seen <> !(t.shared.s_shoot_gen)

let acknowledge_shootdown t =
  if shootdown_pending t then begin
    Tlb.flush t.tlb;
    t.shoot_seen <- !(t.shared.s_shoot_gen);
    true
  end
  else false

let map_page t ~va ~writable =
  let vpn = va lsr page_bits in
  match Pagetable.find t.pt ~vpn with
  | Some pte ->
    if pte.writable <> writable || not pte.readable then
      Pagetable.protect t.pt ~vpn ~readable:true ~writable
  | None ->
    let frame = Physmem.alloc_frame t.phys in
    Pagetable.map t.pt ~vpn ~frame ~writable

let iter_pages ~va ~len f =
  if len <= 0 then invalid_arg "Mmu: length must be positive";
  let first = va lsr page_bits and last = (va + len - 1) lsr page_bits in
  for vpn = first to last do
    f vpn
  done

let map_range t ~va ~len ~writable =
  iter_pages ~va ~len (fun vpn -> map_page t ~va:(vpn lsl page_bits) ~writable)

let unmap_range t ~va ~len =
  iter_pages ~va ~len (fun vpn -> Pagetable.unmap t.pt ~vpn);
  shoot t

let protect_range t ~va ~len ~readable ~writable =
  iter_pages ~va ~len (fun vpn -> Pagetable.protect t.pt ~vpn ~readable ~writable);
  shoot t

let set_pkey_range t ~va ~len ~key =
  iter_pages ~va ~len (fun vpn -> Pagetable.set_pkey t.pt ~vpn ~key);
  shoot t

let mmap_alloc t ~len ~writable =
  if len <= 0 then invalid_arg "Mmu.mmap_alloc: length must be positive";
  let s = t.shared in
  let addr = s.s_mmap_cursor in
  let span = (len + page_size - 1) land lnot (page_size - 1) in
  (* one guard page between allocations *)
  s.s_mmap_cursor <- addr + span + page_size;
  map_range t ~va:addr ~len ~writable;
  addr

let is_mapped t ~va = Pagetable.find t.pt ~vpn:(va lsr page_bits) <> None

(* pkru layout: bit 2k = access-disable, bit 2k+1 = write-disable for key k. *)
let pkey_allows t ~key ~(access : Fault.access) =
  if key = 0 && t.pkru land 3 = 0 then true
  else
    let ad = t.pkru lsr (2 * key) land 1 = 1 in
    let wd = t.pkru lsr ((2 * key) + 1) land 1 = 1 in
    match access with
    | Fault.Read | Fault.Exec -> not ad
    | Fault.Write -> not (ad || wd)

(* Walk the page table (and EPT when on) for [vpn] and install the result
   into the TLB, without materializing pte/hit records: the raw encoded
   leaf entry is decoded field-wise straight into {!Tlb.insert_fields}.
   One call per TLB miss. *)
let fill t ~vpn ~(access : Fault.access) ~pt_gen ~ept_gen =
  let va = vpn lsl page_bits in
  let e = Pagetable.find_entry t.pt ~vpn in
  if not (Pagetable.entry_present e) then
    Fault.raise_fault (Fault.Page_fault { va; access; reason = "not present" });
  let gfn = Pagetable.entry_frame e in
  if t.ept_on then begin
    let ept = t.shared.s_ept_list.(t.ept_index) in
    match Ept.find ept ~gfn with
    | None ->
      Fault.raise_fault
        (Fault.Ept_violation { gpa = gfn lsl page_bits; ept_index = t.ept_index; access })
    | Some (hfn, perm) ->
      if not perm.Ept.readable then
        Fault.raise_fault
          (Fault.Ept_violation { gpa = gfn lsl page_bits; ept_index = t.ept_index; access });
      Tlb.insert_fields t.tlb ~vpn ~ept:t.ept_index ~pt_gen ~ept_gen ~hfn
        ~readable:(Pagetable.entry_readable e)
        ~writable:(Pagetable.entry_writable e && perm.Ept.writable)
        ~pkey:(Pagetable.entry_pkey e)
  end
  else
    Tlb.insert_fields t.tlb ~vpn ~ept:t.ept_index ~pt_gen ~ept_gen ~hfn:gfn
      ~readable:(Pagetable.entry_readable e)
      ~writable:(Pagetable.entry_writable e)
      ~pkey:(Pagetable.entry_pkey e)

let ept_gen t = if t.ept_on then Ept.generation t.shared.s_ept_list.(t.ept_index) else 0

(* Allocation-free translation: the result physical address is returned
   directly and the TLB-walk latency is left in [t.last_lat]. The hot path
   (one call per simulated memory access) must not build the tuple/record
   results the convenience wrappers below expose. *)
(* [@inline always]: one inline copy per memory-access entry point (the
   two 64-bit movers, the two 16-byte movers, and [translate]) removes a
   call frame from every simulated memory access. The TLB probe inside is
   itself inlined ({!Tlb.probe_info}), so the hit path runs straight-line
   from uop to physical address. *)
let[@inline always] translate_va t ~va ~(access : Fault.access) =
  let vpn = va lsr page_bits in
  let pt_gen = !(t.pt_gen_cell) in
  (* [ept_gen t] open-coded: with EPT off (the common configuration) the
     generation is the constant 0 and the call was pure per-access
     overhead. *)
  let ept_gen = if t.ept_on then Ept.generation t.shared.s_ept_list.(t.ept_index) else 0 in
  (* One fused call on the hit path; after a miss the freshly-filled entry
     sits in the vpn's (direct-mapped) slot, so both arms produce the
     packed entry word and no intermediate record/tuple is materialized. *)
  let info = Tlb.probe_info t.tlb ~vpn ~ept:t.ept_index ~pt_gen ~ept_gen in
  let info =
    if info >= 0 then begin
      t.last_tlb_miss <- false;
      t.last_lat <- 0;
      info
    end
    else begin
      fill t ~vpn ~access ~pt_gen ~ept_gen;
      t.last_tlb_miss <- true;
      let wc = walk_cost t in
      t.last_lat <- wc;
      t.walk_cycles <- t.walk_cycles + wc;
      Tlb.slot_info t.tlb (Tlb.slot_index t.tlb ~vpn)
    end
  in
  let pkey = (info lsr 2) land 0xF in
  (* Inlined [pkey_allows] fast case (key 0, permissive pkru) so the
     overwhelmingly common access pays no call here. *)
  if (pkey <> 0 || t.pkru land 3 <> 0) && not (pkey_allows t ~key:pkey ~access) then
    Fault.raise_fault (Fault.Pkey_violation { va; key = pkey; access });
  if info land 2 = 0 then
    Fault.raise_fault (Fault.Page_fault { va; access; reason = "PROT_NONE page" });
  (match access with
  | Fault.Write when info land 1 = 0 ->
    Fault.raise_fault (Fault.Page_fault { va; access; reason = "write to read-only page" })
  | Fault.Write | Fault.Read | Fault.Exec -> ());
  ((info lsr 6) lsl page_bits) lor (va land (page_size - 1))

let translate t ~va ~access =
  let pa = translate_va t ~va ~access in
  (pa, t.last_lat)

let read64_fast t ~va =
  let pa = translate_va t ~va ~access:Fault.Read in
  t.last_lat <- t.last_lat + Cache.access t.cache ~addr:pa;
  Physmem.read64_trusted t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1))

let write64_fast t ~va v =
  let pa = translate_va t ~va ~access:Fault.Write in
  t.last_lat <- t.last_lat + Cache.access t.cache ~addr:pa;
  Physmem.write64_trusted t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)) v

let read64 t ~va =
  let v = read64_fast t ~va in
  (v, t.last_lat)

let write64 t ~va v =
  write64_fast t ~va v;
  t.last_lat

(* --- Generation token: the one staleness rule for translation-derived
   caches.

   Historically three consumers each read the generation cells with
   slightly different rules (the block tier re-probed the TLB per access,
   trace guards compared the page-table generation alone, and the inline
   slots need TLB-content stability too). They now share this pair: a
   token captured right after a successful translation stays valid exactly
   while (a) the page table has not changed — pt generation — and (b) this
   core's TLB contents have not changed — the monotone Tlb mutation
   counter, which any fill, conflict eviction, full flush or shootdown
   acknowledgment bumps. Both are monotone, so their sum changes whenever
   either does. Under EPT the token is never valid (EPT generations are
   deliberately not folded in; vmfunc switching must not revalidate stale
   views). PKRU is deliberately NOT captured: like hardware, consumers
   re-check protection keys against the live [pkru] on every access. *)
let[@inline always] generation_token t = !(t.pt_gen_cell) + Tlb.mutations t.tlb
let[@inline always] token_valid t ~token = (not t.ept_on) && generation_token t = token

(* Inline-translation fast path for the trace tier's per-uop slots: the
   caller holds a packed {!Tlb.slot_info} word captured together with a
   still-valid token for this page, which proves a real probe would hit
   with exactly this entry — so the probe is short-circuited (the hit is
   still posted to the TLB statistics) and every architectural check runs
   against the cached word in {!translate_va}'s exact order. *)
let[@inline always] translate_cached t ~va ~info ~(access : Fault.access) =
  Tlb.note_hit t.tlb;
  t.last_tlb_miss <- false;
  t.last_lat <- 0;
  let pkey = (info lsr 2) land 0xF in
  if (pkey <> 0 || t.pkru land 3 <> 0) && not (pkey_allows t ~key:pkey ~access) then
    Fault.raise_fault (Fault.Pkey_violation { va; key = pkey; access });
  if info land 2 = 0 then
    Fault.raise_fault (Fault.Page_fault { va; access; reason = "PROT_NONE page" });
  (match access with
  | Fault.Write when info land 1 = 0 ->
    Fault.raise_fault (Fault.Page_fault { va; access; reason = "write to read-only page" })
  | Fault.Write | Fault.Read | Fault.Exec -> ());
  ((info lsr 6) lsl page_bits) lor (va land (page_size - 1))

let[@inline always] read64_cached t ~va ~info =
  let pa = translate_cached t ~va ~info ~access:Fault.Read in
  t.last_lat <- t.last_lat + Cache.access t.cache ~addr:pa;
  Physmem.read64_trusted t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1))

let[@inline always] write64_cached t ~va ~info v =
  let pa = translate_cached t ~va ~info ~access:Fault.Write in
  t.last_lat <- t.last_lat + Cache.access t.cache ~addr:pa;
  Physmem.write64_trusted t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)) v

(* The packed entry the last successful translation left in [vpn]'s
   (direct-mapped) TLB slot — what an inline slot caches alongside the
   token it just captured. *)
let slot_info_for t ~vpn = Tlb.slot_info t.tlb (Tlb.slot_index t.tlb ~vpn)

let check_block16 va =
  if va land 15 <> 0 then
    Fault.raise_fault (Fault.Gp_fault (Printf.sprintf "unaligned 16-byte access at 0x%x" va))

(* 16-byte accesses are alignment-checked, so they never cross a page:
   one translation covers the whole block, and the blit-through variants
   below move it without allocating an intermediate buffer. *)
let read_block16_into t ~va ~dst ~dpos =
  check_block16 va;
  let pa = translate_va t ~va ~access:Fault.Read in
  t.last_lat <- t.last_lat + Cache.access t.cache ~addr:pa;
  Physmem.read_block16_into t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)) ~dst
    ~dpos

let write_block16_from t ~va ~src ~spos =
  check_block16 va;
  let pa = translate_va t ~va ~access:Fault.Write in
  t.last_lat <- t.last_lat + Cache.access t.cache ~addr:pa;
  Physmem.write_block16_from t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)) ~src
    ~spos

let read_block16_fast t ~va =
  let b = Bytes.create 16 in
  read_block16_into t ~va ~dst:b ~dpos:0;
  b

let write_block16_fast t ~va b = write_block16_from t ~va ~src:b ~spos:0

let read_block16 t ~va =
  let b = read_block16_fast t ~va in
  (b, t.last_lat)

let write_block16 t ~va b =
  write_block16_fast t ~va b;
  t.last_lat

(* Raw access path: page-table only, no pkey/EPT/permission checks, no cost.
   Models kernel access and pre-established attacker read/write primitives. *)
let raw_frame t ~va ~access =
  match Pagetable.find t.pt ~vpn:(va lsr page_bits) with
  | Some pte -> pte.frame
  | None -> Fault.raise_fault (Fault.Page_fault { va; access; reason = "not present" })

let peek64 t ~va =
  let f = raw_frame t ~va ~access:Fault.Read in
  Physmem.read64 t.phys ~frame:f ~off:(va land (page_size - 1))

let poke64 t ~va v =
  let f = raw_frame t ~va ~access:Fault.Write in
  Physmem.write64 t.phys ~frame:f ~off:(va land (page_size - 1)) v

let peek_bytes t ~va ~len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    let a = va + i in
    let f = raw_frame t ~va:a ~access:Fault.Read in
    Bytes.set_uint8 out i (Physmem.read8 t.phys ~frame:f ~off:(a land (page_size - 1)))
  done;
  out

let poke_bytes t ~va b =
  for i = 0 to Bytes.length b - 1 do
    let a = va + i in
    let f = raw_frame t ~va:a ~access:Fault.Write in
    Physmem.write8 t.phys ~frame:f ~off:(a land (page_size - 1)) (Bytes.get_uint8 b i)
  done
