type t = {
  phys : Physmem.t;
  pt : Pagetable.t;
  pt_gen_cell : int ref; (* Pagetable.generation_cell pt, cached *)
  tlb : Tlb.t;
  cache : Cache.t;
  mutable pkru : int;
  mutable ept_list : Ept.t array;
  mutable ept_index : int;
  mutable ept_on : bool;
  mutable last_tlb_miss : bool;
  mutable last_lat : int;
  mutable walk_cycles : int;
      (* cumulative page-table-walk latency charged so far — the TLB slice
         of the CPI stack, cross-checkable against Tlb.misses * walk_cost *)
}

let page_size = Physmem.page_size
let page_bits = 12

let create () =
  let phys = Physmem.create () in
  (* The radix tables live in the machine's own frame pool, as a real
     kernel's do. *)
  let pt = Pagetable.create ~phys () in
  {
    phys;
    pt;
    pt_gen_cell = Pagetable.generation_cell pt;
    tlb = Tlb.create ();
    cache = Cache.create ();
    pkru = 0;
    ept_list = [||];
    ept_index = 0;
    ept_on = false;
    last_tlb_miss = false;
    last_lat = 0;
    walk_cycles = 0;
  }

let walk_cost t =
  let native = 4 * Pagetable.walk_levels in
  if t.ept_on then native * 5 / 2 else native

let map_page t ~va ~writable =
  let vpn = va lsr page_bits in
  match Pagetable.find t.pt ~vpn with
  | Some pte ->
    if pte.writable <> writable || not pte.readable then
      Pagetable.protect t.pt ~vpn ~readable:true ~writable
  | None ->
    let frame = Physmem.alloc_frame t.phys in
    Pagetable.map t.pt ~vpn ~frame ~writable

let iter_pages ~va ~len f =
  if len <= 0 then invalid_arg "Mmu: length must be positive";
  let first = va lsr page_bits and last = (va + len - 1) lsr page_bits in
  for vpn = first to last do
    f vpn
  done

let map_range t ~va ~len ~writable =
  iter_pages ~va ~len (fun vpn -> map_page t ~va:(vpn lsl page_bits) ~writable)

let unmap_range t ~va ~len =
  iter_pages ~va ~len (fun vpn -> Pagetable.unmap t.pt ~vpn);
  Tlb.flush t.tlb

let protect_range t ~va ~len ~readable ~writable =
  iter_pages ~va ~len (fun vpn -> Pagetable.protect t.pt ~vpn ~readable ~writable);
  Tlb.flush t.tlb

let set_pkey_range t ~va ~len ~key =
  iter_pages ~va ~len (fun vpn -> Pagetable.set_pkey t.pt ~vpn ~key);
  Tlb.flush t.tlb

let is_mapped t ~va = Pagetable.find t.pt ~vpn:(va lsr page_bits) <> None

(* pkru layout: bit 2k = access-disable, bit 2k+1 = write-disable for key k. *)
let pkey_allows t ~key ~(access : Fault.access) =
  if key = 0 && t.pkru land 3 = 0 then true
  else
    let ad = t.pkru lsr (2 * key) land 1 = 1 in
    let wd = t.pkru lsr ((2 * key) + 1) land 1 = 1 in
    match access with
    | Fault.Read | Fault.Exec -> not ad
    | Fault.Write -> not (ad || wd)

(* Walk the page table (and EPT when on) for [vpn] and install the result
   into the TLB, without materializing pte/hit records: the raw encoded
   leaf entry is decoded field-wise straight into {!Tlb.insert_fields}.
   One call per TLB miss. *)
let fill t ~vpn ~(access : Fault.access) ~pt_gen ~ept_gen =
  let va = vpn lsl page_bits in
  let e = Pagetable.find_entry t.pt ~vpn in
  if not (Pagetable.entry_present e) then
    Fault.raise_fault (Fault.Page_fault { va; access; reason = "not present" });
  let gfn = Pagetable.entry_frame e in
  if t.ept_on then begin
    let ept = t.ept_list.(t.ept_index) in
    match Ept.find ept ~gfn with
    | None ->
      Fault.raise_fault
        (Fault.Ept_violation { gpa = gfn lsl page_bits; ept_index = t.ept_index; access })
    | Some (hfn, perm) ->
      if not perm.Ept.readable then
        Fault.raise_fault
          (Fault.Ept_violation { gpa = gfn lsl page_bits; ept_index = t.ept_index; access });
      Tlb.insert_fields t.tlb ~vpn ~ept:t.ept_index ~pt_gen ~ept_gen ~hfn
        ~readable:(Pagetable.entry_readable e)
        ~writable:(Pagetable.entry_writable e && perm.Ept.writable)
        ~pkey:(Pagetable.entry_pkey e)
  end
  else
    Tlb.insert_fields t.tlb ~vpn ~ept:t.ept_index ~pt_gen ~ept_gen ~hfn:gfn
      ~readable:(Pagetable.entry_readable e)
      ~writable:(Pagetable.entry_writable e)
      ~pkey:(Pagetable.entry_pkey e)

let ept_gen t = if t.ept_on then Ept.generation t.ept_list.(t.ept_index) else 0

(* Allocation-free translation: the result physical address is returned
   directly and the TLB-walk latency is left in [t.last_lat]. The hot path
   (one call per simulated memory access) must not build the tuple/record
   results the convenience wrappers below expose. *)
let translate_va t ~va ~(access : Fault.access) =
  let vpn = va lsr page_bits in
  let pt_gen = !(t.pt_gen_cell) in
  (* [ept_gen t] open-coded: with EPT off (the common configuration) the
     generation is the constant 0 and the call was pure per-access
     overhead. *)
  let ept_gen = if t.ept_on then Ept.generation t.ept_list.(t.ept_index) else 0 in
  (* One fused call on the hit path; after a miss the freshly-filled entry
     sits in the vpn's (direct-mapped) slot, so both arms produce the
     packed entry word and no intermediate record/tuple is materialized. *)
  let info = Tlb.probe_info t.tlb ~vpn ~ept:t.ept_index ~pt_gen ~ept_gen in
  let info =
    if info >= 0 then begin
      t.last_tlb_miss <- false;
      t.last_lat <- 0;
      info
    end
    else begin
      fill t ~vpn ~access ~pt_gen ~ept_gen;
      t.last_tlb_miss <- true;
      let wc = walk_cost t in
      t.last_lat <- wc;
      t.walk_cycles <- t.walk_cycles + wc;
      Tlb.slot_info t.tlb (Tlb.slot_index t.tlb ~vpn)
    end
  in
  let pkey = (info lsr 2) land 0xF in
  (* Inlined [pkey_allows] fast case (key 0, permissive pkru) so the
     overwhelmingly common access pays no call here. *)
  if (pkey <> 0 || t.pkru land 3 <> 0) && not (pkey_allows t ~key:pkey ~access) then
    Fault.raise_fault (Fault.Pkey_violation { va; key = pkey; access });
  if info land 2 = 0 then
    Fault.raise_fault (Fault.Page_fault { va; access; reason = "PROT_NONE page" });
  (match access with
  | Fault.Write when info land 1 = 0 ->
    Fault.raise_fault (Fault.Page_fault { va; access; reason = "write to read-only page" })
  | Fault.Write | Fault.Read | Fault.Exec -> ());
  ((info lsr 6) lsl page_bits) lor (va land (page_size - 1))

let translate t ~va ~access =
  let pa = translate_va t ~va ~access in
  (pa, t.last_lat)

let read64_fast t ~va =
  let pa = translate_va t ~va ~access:Fault.Read in
  t.last_lat <- t.last_lat + Cache.access t.cache ~addr:pa;
  Physmem.read64_trusted t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1))

let write64_fast t ~va v =
  let pa = translate_va t ~va ~access:Fault.Write in
  t.last_lat <- t.last_lat + Cache.access t.cache ~addr:pa;
  Physmem.write64_trusted t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)) v

let read64 t ~va =
  let v = read64_fast t ~va in
  (v, t.last_lat)

let write64 t ~va v =
  write64_fast t ~va v;
  t.last_lat

let check_block16 va =
  if va land 15 <> 0 then
    Fault.raise_fault (Fault.Gp_fault (Printf.sprintf "unaligned 16-byte access at 0x%x" va))

(* 16-byte accesses are alignment-checked, so they never cross a page:
   one translation covers the whole block, and the blit-through variants
   below move it without allocating an intermediate buffer. *)
let read_block16_into t ~va ~dst ~dpos =
  check_block16 va;
  let pa = translate_va t ~va ~access:Fault.Read in
  t.last_lat <- t.last_lat + Cache.access t.cache ~addr:pa;
  Physmem.read_block16_into t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)) ~dst
    ~dpos

let write_block16_from t ~va ~src ~spos =
  check_block16 va;
  let pa = translate_va t ~va ~access:Fault.Write in
  t.last_lat <- t.last_lat + Cache.access t.cache ~addr:pa;
  Physmem.write_block16_from t.phys ~frame:(pa lsr page_bits) ~off:(pa land (page_size - 1)) ~src
    ~spos

let read_block16_fast t ~va =
  let b = Bytes.create 16 in
  read_block16_into t ~va ~dst:b ~dpos:0;
  b

let write_block16_fast t ~va b = write_block16_from t ~va ~src:b ~spos:0

let read_block16 t ~va =
  let b = read_block16_fast t ~va in
  (b, t.last_lat)

let write_block16 t ~va b =
  write_block16_fast t ~va b;
  t.last_lat

(* Raw access path: page-table only, no pkey/EPT/permission checks, no cost.
   Models kernel access and pre-established attacker read/write primitives. *)
let raw_frame t ~va ~access =
  match Pagetable.find t.pt ~vpn:(va lsr page_bits) with
  | Some pte -> pte.frame
  | None -> Fault.raise_fault (Fault.Page_fault { va; access; reason = "not present" })

let peek64 t ~va =
  let f = raw_frame t ~va ~access:Fault.Read in
  Physmem.read64 t.phys ~frame:f ~off:(va land (page_size - 1))

let poke64 t ~va v =
  let f = raw_frame t ~va ~access:Fault.Write in
  Physmem.write64 t.phys ~frame:f ~off:(va land (page_size - 1)) v

let peek_bytes t ~va ~len =
  let out = Bytes.create len in
  for i = 0 to len - 1 do
    let a = va + i in
    let f = raw_frame t ~va:a ~access:Fault.Read in
    Bytes.set_uint8 out i (Physmem.read8 t.phys ~frame:f ~off:(a land (page_size - 1)))
  done;
  out

let poke_bytes t ~va b =
  for i = 0 to Bytes.length b - 1 do
    let a = va + i in
    let f = raw_frame t ~va:a ~access:Fault.Write in
    Physmem.write8 t.phys ~frame:f ~off:(a land (page_size - 1)) (Bytes.get_uint8 b i)
  done
