(** Guest page tables: a real 4-level radix structure.

    The tables live in {!Physmem} frames, exactly like hardware: a root
    frame of 512 8-byte entries, each pointing at the next level, with the
    leaf level holding PTEs. Entry encoding (loosely following x86-64):

    - bit 0: present
    - bit 1: writable
    - bit 2: readable (clear = PROT_NONE; real x86 overloads other bits)
    - bits 12..58: frame number of the next level / final frame
    - bits 59..62: MPK protection key (leaf only; Intel SDM §4.6.2)

    The MMU performs {!find} on TLB misses (the 4-level walk whose cost
    model is [4 * walk_levels] cycles); a generation counter bumped by
    every structural change lets TLB entries self-invalidate. The [pte]
    view returned by [find] is decoded from (and written back to) the
    in-memory entry, so inspecting physical frames shows real tables. *)

type pte = {
  frame : int;  (** guest-physical frame number *)
  present : bool;
  readable : bool;  (** false models PROT_NONE *)
  writable : bool;
  pkey : int;  (** 0..15; key 0 is the default-accessible key *)
}

type t

val walk_levels : int
(** 4, as on x86-64. Used by the TLB-miss latency model. *)

val create : ?phys:Physmem.t -> unit -> t
(** Allocate the root table. With [phys], table frames come from the given
    physical memory (sharing the machine's frame pool, as real kernels
    do); without it a private pool is used. *)

val root_frame : t -> int
(** Frame number of the top-level table (the CR3 value). *)

val map : t -> vpn:int -> frame:int -> writable:bool -> unit
(** Install or replace a translation (readable, pkey 0), allocating
    intermediate tables on demand. *)

val unmap : t -> vpn:int -> unit
(** Clear the present bit. *)

val find : t -> vpn:int -> pte option

val find_entry : t -> vpn:int -> int
(** Allocation-free {!find}: the raw encoded leaf entry for [vpn], or [0]
    when the page is unmapped or not present. Decode with the [entry_*]
    accessors below; called once per TLB miss. *)

val entry_present : int -> bool
val entry_readable : int -> bool
val entry_writable : int -> bool
val entry_frame : int -> int
val entry_pkey : int -> int
(** Walk the four levels; [None] when any level is missing or the leaf is
    not present. *)

val protect : t -> vpn:int -> readable:bool -> writable:bool -> unit
(** Change permissions (mprotect). Raises [Not_found] for unmapped pages. *)

val set_pkey : t -> vpn:int -> key:int -> unit
(** Tag the page with a protection key (0..15); kernel-only operation in
    the real ISA. Raises [Invalid_argument] for out-of-range keys,
    [Not_found] for unmapped pages. *)

val generation : t -> int
(** Incremented by every [map]/[unmap]/[protect]/[set_pkey]. *)

val generation_cell : t -> int ref
(** The generation counter itself, for callers (the MMU) that read it on
    every translation: dereferencing the cached cell replaces a
    cross-module call per access. Treat as read-only. *)

val mapped_count : t -> int

val iter : t -> (int -> pte -> unit) -> unit
(** Iterate present leaf entries as [(vpn, pte)], in ascending vpn order. *)

val table_frames : t -> int
(** How many physical frames the radix structure itself occupies
    (root + intermediate + leaf tables) — kernel bookkeeping overhead. *)
