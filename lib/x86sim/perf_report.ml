type t = {
  insns : int;
  cycles : float;
  ipc : float;
  loads : int;
  stores : int;
  calls : int;
  rets : int;
  ind_branches : int;
  syscalls : int;
  bnd_checks : int;
  wrpkrus : int;
  vmfuncs : int;
  vmcalls : int;
  vm_exits : int;
  aes_ops : int;
  faults : int;
  l1_hit_rate : float;
  l2_hit_rate : float;
  l3_hit_rate : float;
  tlb_hit_rate : float;
  dram_accesses : int;
  l1_evictions : int;
  l2_evictions : int;
  l3_evictions : int;
  tlb_evictions : int;
  tlb_walk_cycles : int;
}

(* A level nothing reached served every request it got: report 1.0, not a
   0/0 nan that poisons downstream aggregation. *)
let ratio num den = if den = 0 then 1.0 else float_of_int num /. float_of_int den

let capture (cpu : Cpu.t) =
  let c = cpu.Cpu.counters in
  let cache = cpu.Cpu.mmu.Mmu.cache in
  let tlb = cpu.Cpu.mmu.Mmu.tlb in
  let l1 = Cache.l1_hits cache
  and l2 = Cache.l2_hits cache
  and l3 = Cache.l3_hits cache
  and dram = Cache.dram_accesses cache in
  {
    insns = c.Cpu.insns;
    cycles = Cpu.cycles cpu;
    ipc = (if Cpu.cycles cpu > 0.0 then float_of_int c.Cpu.insns /. Cpu.cycles cpu else 0.0);
    loads = c.Cpu.loads;
    stores = c.Cpu.stores;
    calls = c.Cpu.calls;
    rets = c.Cpu.rets;
    ind_branches = c.Cpu.ind_branches;
    syscalls = c.Cpu.syscalls;
    bnd_checks = c.Cpu.bnd_checks;
    wrpkrus = c.Cpu.wrpkrus;
    vmfuncs = c.Cpu.vmfuncs;
    vmcalls = c.Cpu.vmcalls;
    vm_exits = c.Cpu.vm_exits;
    aes_ops = c.Cpu.aes_ops;
    faults = c.Cpu.faults;
    l1_hit_rate = ratio l1 (l1 + l2 + l3 + dram);
    l2_hit_rate = ratio l2 (l2 + l3 + dram);
    l3_hit_rate = ratio l3 (l3 + dram);
    tlb_hit_rate = ratio (Tlb.hits tlb) (Tlb.hits tlb + Tlb.misses tlb);
    dram_accesses = dram;
    l1_evictions = Cache.l1_evictions cache;
    l2_evictions = Cache.l2_evictions cache;
    l3_evictions = Cache.l3_evictions cache;
    tlb_evictions = Tlb.evictions tlb;
    tlb_walk_cycles = cpu.Cpu.mmu.Mmu.walk_cycles;
  }

(* Machine-wide rollup. Per-core private state (L1/L2, TLB, counters) sums
   across cores; the L3/DRAM numbers are *shared-tier* counters that every
   core's accessors alias, so they are read once — summing them would
   multiply socket traffic by the core count. Cycles are the makespan (the
   slowest core), matching what a wall clock would see. *)
let capture_machine (cpus : Cpu.t array) =
  if Array.length cpus = 0 then invalid_arg "Perf_report.capture_machine: no cores";
  let sum f = Array.fold_left (fun a c -> a + f c) 0 cpus in
  let ci f = sum (fun (c : Cpu.t) -> f c.Cpu.counters) in
  let insns = ci (fun c -> c.Cpu.insns) in
  let makespan = Array.fold_left (fun a c -> Float.max a (Cpu.cycles c)) 0.0 cpus in
  let l1 = sum (fun c -> Cache.l1_hits c.Cpu.mmu.Mmu.cache)
  and l2 = sum (fun c -> Cache.l2_hits c.Cpu.mmu.Mmu.cache)
  and l3 = Cache.l3_hits cpus.(0).Cpu.mmu.Mmu.cache
  and dram = Cache.dram_accesses cpus.(0).Cpu.mmu.Mmu.cache in
  let tlb_hits = sum (fun c -> Tlb.hits c.Cpu.mmu.Mmu.tlb)
  and tlb_misses = sum (fun c -> Tlb.misses c.Cpu.mmu.Mmu.tlb) in
  {
    insns;
    cycles = makespan;
    ipc = (if makespan > 0.0 then float_of_int insns /. makespan else 0.0);
    loads = ci (fun c -> c.Cpu.loads);
    stores = ci (fun c -> c.Cpu.stores);
    calls = ci (fun c -> c.Cpu.calls);
    rets = ci (fun c -> c.Cpu.rets);
    ind_branches = ci (fun c -> c.Cpu.ind_branches);
    syscalls = ci (fun c -> c.Cpu.syscalls);
    bnd_checks = ci (fun c -> c.Cpu.bnd_checks);
    wrpkrus = ci (fun c -> c.Cpu.wrpkrus);
    vmfuncs = ci (fun c -> c.Cpu.vmfuncs);
    vmcalls = ci (fun c -> c.Cpu.vmcalls);
    vm_exits = ci (fun c -> c.Cpu.vm_exits);
    aes_ops = ci (fun c -> c.Cpu.aes_ops);
    faults = ci (fun c -> c.Cpu.faults);
    l1_hit_rate = ratio l1 (l1 + l2 + l3 + dram);
    l2_hit_rate = ratio l2 (l2 + l3 + dram);
    l3_hit_rate = ratio l3 (l3 + dram);
    tlb_hit_rate = ratio tlb_hits (tlb_hits + tlb_misses);
    dram_accesses = dram;
    l1_evictions = sum (fun c -> Cache.l1_evictions c.Cpu.mmu.Mmu.cache);
    l2_evictions = sum (fun c -> Cache.l2_evictions c.Cpu.mmu.Mmu.cache);
    l3_evictions = Cache.l3_evictions cpus.(0).Cpu.mmu.Mmu.cache;
    tlb_evictions = sum (fun c -> Tlb.evictions c.Cpu.mmu.Mmu.tlb);
    tlb_walk_cycles = sum (fun c -> c.Cpu.mmu.Mmu.walk_cycles);
  }

let to_string r =
  String.concat "\n"
    [
      Printf.sprintf "instructions   %12d" r.insns;
      Printf.sprintf "cycles         %12.0f   (ipc %.2f)" r.cycles r.ipc;
      Printf.sprintf "loads/stores   %8d / %d" r.loads r.stores;
      Printf.sprintf "calls/rets     %8d / %d   (indirect branches %d)" r.calls r.rets
        r.ind_branches;
      Printf.sprintf "syscalls       %12d" r.syscalls;
      Printf.sprintf "L1 hit rate    %12.1f%%   (L2 %.1f%%, L3 %.1f%%, DRAM accesses %d)"
        (100.0 *. r.l1_hit_rate) (100.0 *. r.l2_hit_rate) (100.0 *. r.l3_hit_rate)
        r.dram_accesses;
      Printf.sprintf "TLB hit rate   %12.1f%%   (%d evictions, %d walk cycles)"
        (100.0 *. r.tlb_hit_rate) r.tlb_evictions r.tlb_walk_cycles;
      Printf.sprintf "evictions      %8d L1 / %d L2 / %d L3" r.l1_evictions r.l2_evictions
        r.l3_evictions;
      Printf.sprintf "protection     %d bndck, %d wrpkru, %d vmfunc, %d vmcall, %d vmexit, %d aes"
        r.bnd_checks r.wrpkrus r.vmfuncs r.vmcalls r.vm_exits r.aes_ops;
      Printf.sprintf "faults         %12d" r.faults;
    ]

let to_json r =
  Ms_util.Json.Obj
    [
      ("insns", Ms_util.Json.Int r.insns);
      ("cycles", Ms_util.Json.Float r.cycles);
      ("ipc", Ms_util.Json.Float r.ipc);
      ("loads", Ms_util.Json.Int r.loads);
      ("stores", Ms_util.Json.Int r.stores);
      ("calls", Ms_util.Json.Int r.calls);
      ("rets", Ms_util.Json.Int r.rets);
      ("ind_branches", Ms_util.Json.Int r.ind_branches);
      ("syscalls", Ms_util.Json.Int r.syscalls);
      ("bnd_checks", Ms_util.Json.Int r.bnd_checks);
      ("wrpkrus", Ms_util.Json.Int r.wrpkrus);
      ("vmfuncs", Ms_util.Json.Int r.vmfuncs);
      ("vmcalls", Ms_util.Json.Int r.vmcalls);
      ("vm_exits", Ms_util.Json.Int r.vm_exits);
      ("aes_ops", Ms_util.Json.Int r.aes_ops);
      ("faults", Ms_util.Json.Int r.faults);
      ("l1_hit_rate", Ms_util.Json.Float r.l1_hit_rate);
      ("l2_hit_rate", Ms_util.Json.Float r.l2_hit_rate);
      ("l3_hit_rate", Ms_util.Json.Float r.l3_hit_rate);
      ("tlb_hit_rate", Ms_util.Json.Float r.tlb_hit_rate);
      ("dram_accesses", Ms_util.Json.Int r.dram_accesses);
      ("l1_evictions", Ms_util.Json.Int r.l1_evictions);
      ("l2_evictions", Ms_util.Json.Int r.l2_evictions);
      ("l3_evictions", Ms_util.Json.Int r.l3_evictions);
      ("tlb_evictions", Ms_util.Json.Int r.tlb_evictions);
      ("tlb_walk_cycles", Ms_util.Json.Int r.tlb_walk_cycles);
    ]

let print cpu = print_endline (to_string (capture cpu))
