let p_alu = 0
let p_load = 1
let p_store = 2
let p_branch = 3
let p_mpx = 4
let p_aes = 5
let p_special = 6
let p_fp = 7

let port_count = 8
let units_per_port = [| 4; 2; 1; 1; 2; 1; 1; 2 |]

(* Cycles an execution unit stays busy per operation (1 = fully pipelined).
   (aesimc overrides its occupancy via [busy]). *)
let recip_throughput = [| 1.0; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
let fetch_width = 4.0

(* Evaluated once at module init: without flambda, [1.0 /. fetch_width]
   inside {!issue_core} is a hardware float divide per simulated
   instruction. Exact (power-of-two divisor), so timings are unchanged. *)
let fetch_step = 1.0 /. fetch_width

(* Reorder-buffer depth: instruction i cannot issue before instruction
   i - rob_size has completed. Without this bound a single long dependency
   chain would hide unlimited amounts of independent work, which no real
   core can do. 224 entries approximates Skylake. *)
let rob_size = 224

(* Indices into [clk]. All per-issue float state lives in one float array
   rather than mutable record fields or function arguments: OCaml (without
   flambda) boxes every float stored to a mixed record field, passed to, or
   returned from a non-inlined function — several heap allocations per
   simulated instruction. Float-array loads and stores are always unboxed,
   so [clk] doubles as the parameter/result channel of {!issue_core}:
   callers deposit dep/lat/busy, the core leaves the completion time. *)
let i_fetch = 0 (* fetch front *)
let i_maxc = 1 (* latest completion *)
let io_dep = 2 (* in: extra dependency floor (store-to-load forwarding) *)
let io_lat = 3 (* in: result latency *)
let io_busy = 4 (* in: unit occupancy *)
let io_comp = 5 (* out: completion time of the last issued instruction *)
let i_cyc = 6 (* cached [cycles] as of the last issue (CPI-stack deltas) *)
let clk_size = 7

(* CPI-stack classes: every elapsed cycle is attributed to exactly one.
   [cls_base] doubles as "no hint" for the per-issue override channel
   ([set_cls]), so it must stay 0. The memory classes name the level that
   *served* the access (an L1 miss is a hit in L2, and so on). *)
let cls_base = 0 (* steady-state issue: fetch width, dependency chains, L1 hits *)
let cls_l1_miss = 1 (* served by L2 *)
let cls_l2_miss = 2 (* served by L3 *)
let cls_l3_miss = 3 (* served by DRAM *)
let cls_tlb = 4 (* TLB miss: page-table walk on the access path *)
let cls_sb = 5 (* store-buffer: store-to-load forwarding floor was binding *)
let cls_port = 6 (* port contention: no free execution unit at readiness *)
let cls_gate = 7 (* gate/serializing instruction: wrpkru, vmfunc, bnd, aes, syscall *)
let cls_count = 8

let cls_names =
  [|
    "base"; "l1_miss"; "l2_miss"; "l3_miss"; "tlb_walk"; "store_buffer"; "port_contention";
    "gate";
  |]

(* port → default CPI class: the gate ports (MPX/AES/special) issue gate
   instructions, every other port defaults to base. A table load keeps
   the per-issue classification free of compare-and-branch. *)
let port_cls = [| 0; 0; 0; 0; cls_gate; cls_gate; cls_gate; 0 |]

type t = {
  ready : float array; (* per pipeline register id *)
  units : float array array; (* per port, per unit: next-free time *)
  rob : float array; (* completion times of the last rob_size insns *)
  clk : float array; (* clocks + issue parameter/result slots, see above *)
  mutable insns : int;
  mutable rob_next : int;
      (* insns mod rob_size, maintained incrementally: rob_size is not a
         power of two, so the direct mod is a hardware divide on every
         issued instruction *)
  mutable hint : int;
      (* CPI class override for the next issue (cls_tlb / cls_l*_miss,
         deposited by the CPU right after an MMU access); self-resets to
         cls_base after each issue so only memory ops pay the store *)
  mutable row_base : int;
      (* current attribution row premultiplied by cls_count; row 0 is the
         un-attributed ("application") row *)
  mutable cpi : float array;
      (* per-row, per-class cycle accumulators, [n_rows * cls_count] long.
         Always at least one row, so the accounting in issue_core is
         unconditional — the common un-instrumented case simply never
         leaves row 0. *)
}

let io t = t.clk

let create () =
  {
    ready = Array.make Reg.pipe_count 0.0;
    units = Array.init port_count (fun p -> Array.make units_per_port.(p) 0.0);
    rob = Array.make rob_size 0.0;
    clk = Array.make clk_size 0.0;
    insns = 0;
    rob_next = 0;
    hint = cls_base;
    row_base = 0;
    cpi = Array.make cls_count 0.0;
  }

let reset t =
  Array.fill t.ready 0 (Array.length t.ready) 0.0;
  Array.iter (fun u -> Array.fill u 0 (Array.length u) 0.0) t.units;
  Array.fill t.rob 0 rob_size 0.0;
  Array.fill t.clk 0 clk_size 0.0;
  t.insns <- 0;
  t.rob_next <- 0;
  t.hint <- cls_base;
  t.row_base <- 0;
  (* Keep the installed row geometry (sites are a property of the loaded
     program, not of the measurement window); just zero the cycles. *)
  Array.fill t.cpi 0 (Array.length t.cpi) 0.0

(* {2 CPI-stack channel} *)

let[@inline] set_cls t c = t.hint <- c

let[@inline] set_row t r =
  let base = r * cls_count in
  if base >= 0 && base + cls_count <= Array.length t.cpi then t.row_base <- base

let install_rows t n =
  t.cpi <- Array.make (max 1 n * cls_count) 0.0;
  t.row_base <- 0;
  (* Fresh accumulators start accounting from the current clock: any
     pending application-base gap belongs to the discarded ones. *)
  let clk = t.clk in
  let f = clk.(i_fetch) and m = clk.(i_maxc) in
  clk.(i_cyc) <- (if f >= m then f else m)

(* Base-class cycles on the application row are accounted lazily (see the
   tail of [issue_core]): the delta of a (row 0, base) issue is left
   pending and materialized in one lump at the next non-base charge.
   Readers flush the pending gap first so they always see fully-summed
   accumulators. *)
let flush_cpi t =
  let clk = t.clk in
  let f = clk.(i_fetch) and m = clk.(i_maxc) in
  let cyc = if f >= m then f else m in
  let prev = clk.(i_cyc) in
  if cyc > prev then begin
    t.cpi.(cls_base) <- t.cpi.(cls_base) +. (cyc -. prev);
    clk.(i_cyc) <- cyc
  end

let cpi_rows t =
  flush_cpi t;
  t.cpi

let cpi_row_count t = Array.length t.cpi / cls_count

let cpi_totals t =
  flush_cpi t;
  let tot = Array.make cls_count 0.0 in
  Array.iteri (fun i v -> tot.(i mod cls_count) <- tot.(i mod cls_count) +. v) t.cpi;
  tot

let cycles_accounted t =
  flush_cpi t;
  Array.fold_left ( +. ) 0.0 t.cpi

(* Stdlib [Float.max] is a function call, which boxes both arguments and
   the result; this stays local (and small enough to inline) so the floats
   stay in registers. Identical to [Float.max] on our domain: completion
   times are never NaN and never negative zero. *)
let[@inline] fmax (a : float) (b : float) = if a >= b then a else b

(* Bool.to_int without the cross-module call (no flambda): a bool already
   is 0/1 at runtime, so this compiles to the comparison's set result. *)
let[@inline] b2i (b : bool) = if b then 1 else 0

(* The one scoreboard update. Reads dep/lat/busy from the io slots, leaves
   the completion time in [clk.(io_comp)], and re-arms [io_dep] to 0 so
   only consumers with a real memory dependency pay a store to set it.
   Shared by the fast path and the labeled wrappers so the two can never
   drift numerically. *)
(* Register/port/slot indices are validated at construction time (pack
   asserts its ranges; ports are module constants; the rob slot is
   maintained in [0, rob_size)), so the accesses below are unchecked:
   at one call per simulated instruction, the bounds checks and the
   [mod] divide were a measurable slice of whole-simulator time. *)
let[@inline always] issue_core_f t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize ~port ~(dep : float)
    ~(lat : float) ~(busy : float) =
  let clk = t.clk in
  let ready = t.ready in
  let slot = t.rob_next in
  let nxt = slot + 1 in
  t.rob_next <- (if nxt = rob_size then 0 else nxt);
  t.insns <- t.insns + 1;
  let fpre = Array.unsafe_get clk i_fetch in
  let floor_time = fmax dep (fmax fpre (Array.unsafe_get t.rob slot)) in
  let earliest = if s3 >= 0 then fmax floor_time (Array.unsafe_get ready s3) else floor_time in
  let earliest = if s2 >= 0 then fmax earliest (Array.unsafe_get ready s2) else earliest in
  let earliest = if s1 >= 0 then fmax earliest (Array.unsafe_get ready s1) else earliest in
  let earliest = if serialize then fmax earliest (Array.unsafe_get clk i_maxc) else earliest in
  (* Pick the execution unit that frees up first. *)
  let units = Array.unsafe_get t.units port in
  let n_units = Array.length units in
  let best = ref 0 in
  if n_units > 1 then begin
    if Array.unsafe_get units 1 < Array.unsafe_get units 0 then best := 1;
    if n_units > 2 then begin
      if Array.unsafe_get units 2 < Array.unsafe_get units !best then best := 2;
      if Array.unsafe_get units 3 < Array.unsafe_get units !best then best := 3
    end
  end;
  let ufree = Array.unsafe_get units !best in
  let t0 = fmax earliest ufree in
  let completion = t0 +. lat in
  Array.unsafe_set t.rob slot completion;
  Array.unsafe_set units !best (t0 +. busy);
  if d1 >= 0 then Array.unsafe_set ready d1 completion;
  if d2 >= 0 then Array.unsafe_set ready d2 completion;
  let m0 = Array.unsafe_get clk i_maxc in
  let m =
    if completion > m0 then begin
      Array.unsafe_set clk i_maxc completion;
      completion
    end
    else m0
  in
  let f0 = fpre +. fetch_step in
  Array.unsafe_set clk i_fetch f0;
  let f =
    if serialize && completion > f0 then begin
      Array.unsafe_set clk i_fetch completion;
      completion
    end
    else f0
  in
  Array.unsafe_set clk io_comp completion;
  (* CPI-stack accounting — pure observation, computed from values the
     scoreboard update already produced, so timing is bit-identical with
     or without consumers. The elapsed-cycle delta of this issue (cycles
     is the max of fetch front and latest completion) is charged to
     exactly one class: an explicit memory hint if the CPU deposited one,
     else gate ports (MPX/AES/special: checks, crypt ops,
     wrpkru/vmfunc/syscall), else the store-buffer forwarding floor if it
     was the binding constraint ([dep >= t0] implies dep was the max
     forming t0), else port contention if the instruction was ready
     before a unit was, else steady-state issue. Deltas telescope, so
     per-class (and per-row) totals always sum to [cycles] up to float
     addition rounding.

     The hot case — base class on the application row — does not touch
     the accumulators at all: its delta is left pending ([i_cyc] lags at
     the clock of the last materialized charge) and charged in one lump
     to the (row 0, base) cell at the next non-base charge or at
     [flush_cpi]. The lump is exact: only (row 0, base) issues ever skip,
     so the whole gap belongs to that one cell. A non-base charge first
     settles the gap up to this issue's entry clock [cyc_pre], then
     charges its own [cyc - cyc_pre] advance to its class's cell. *)
  let h = t.hint in
  t.hint <- cls_base;
  let g = Array.unsafe_get port_cls port in
  let sb = b2i (dep > 0.0) land b2i (dep >= t0) in
  let pc = b2i (ufree > earliest) in
  (* Priority select, lowest first: port contention, store-buffer, gate,
     then an explicit hint overrides everything. Arithmetic instead of an
     if-chain: the conditions are data-dependent, so branches here would
     mispredict on exactly the irregular workloads worth profiling. *)
  let cls = pc * cls_port in
  let cls = cls + (sb * (cls_sb - cls)) in
  let cls = cls + ((g land 1) * (cls_gate - cls)) in
  let cls = cls + (b2i (h <> cls_base) * (h - cls)) in
  let cyc = if f >= m then f else m in
  let prev = Array.unsafe_get clk i_cyc in
  Array.unsafe_set clk i_cyc cyc;
  let cpi = t.cpi in
  let ri = t.row_base + cls in
  Array.unsafe_set cpi ri (Array.unsafe_get cpi ri +. (cyc -. prev))

(* Read-and-reset the store-forwarding dependency floor: only set by
   [set_load_dep]-style callers immediately before a load's issue, and
   self-resetting so every other issue sees 0. *)
let[@inline always] take_dep clk =
  let d = Array.unsafe_get clk io_dep in
  Array.unsafe_set clk io_dep 0.0;
  d

let[@inline] issue_core t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize ~port =
  let clk = t.clk in
  issue_core_f t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize ~port ~dep:(take_dep clk)
    ~lat:(Array.unsafe_get clk io_lat)
    ~busy:(Array.unsafe_get clk io_busy)

let issue_fast t ~s1 ~s2 ~s3 ~d1 ~d2 ~lat ~port =
  issue_core_f t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize:false ~port ~dep:(take_dep t.clk)
    ~lat:(float_of_int lat) ~busy:(Array.unsafe_get recip_throughput port)

(* Predecoded issue metadata: the five pipeline-register ids, the port and
   (for static-latency instructions) the latency of one instruction packed
   into a single immediate int at translation time, so the per-uop hot path
   carries one word instead of six. Register ids are stored +1 (pipe_none =
   -1 encodes as 0) in 6-bit fields; the port gets 3 bits; the latency
   occupies the bits above [meta_lat_shift]. *)
let meta_lat_shift = 33

let pack ~s1 ~s2 ~s3 ~d1 ~d2 ~lat ~port =
  assert (s1 >= -1 && s1 < 63 && s2 >= -1 && s2 < 63 && s3 >= -1 && s3 < 63);
  assert (d1 >= -1 && d1 < 63 && d2 >= -1 && d2 < 63);
  assert (port >= 0 && port < port_count);
  assert (lat >= 0);
  (s1 + 1)
  lor ((s2 + 1) lsl 6)
  lor ((s3 + 1) lsl 12)
  lor ((d1 + 1) lsl 18)
  lor ((d2 + 1) lsl 24)
  lor (port lsl 30)
  lor (lat lsl meta_lat_shift)

let issue_packed t ~meta ~lat =
  let port = (meta lsr 30) land 7 in
  issue_core_f t
    ~s1:((meta land 0x3F) - 1)
    ~s2:(((meta lsr 6) land 0x3F) - 1)
    ~s3:(((meta lsr 12) land 0x3F) - 1)
    ~d1:(((meta lsr 18) land 0x3F) - 1)
    ~d2:(((meta lsr 24) land 0x3F) - 1)
    ~serialize:false ~port ~dep:(take_dep t.clk) ~lat:(float_of_int lat)
    ~busy:(Array.unsafe_get recip_throughput port)

(* Not expressed via [issue_packed]: this is the single hottest call in
   translated execution, and flattening it drops one call frame per
   executed uop. *)
let issue_packed_static t ~meta =
  let port = (meta lsr 30) land 7 in
  issue_core_f t
    ~s1:((meta land 0x3F) - 1)
    ~s2:(((meta lsr 6) land 0x3F) - 1)
    ~s3:(((meta lsr 12) land 0x3F) - 1)
    ~d1:(((meta lsr 18) land 0x3F) - 1)
    ~d2:(((meta lsr 24) land 0x3F) - 1)
    ~serialize:false ~port ~dep:0.0 ~lat:(float_of_int (meta lsr meta_lat_shift))
    ~busy:(Array.unsafe_get recip_throughput port)

(* Both halves of a macro-fused uop pair, back to back. Nothing but the
   two [issue_core_f] updates happens in between, so the scoreboard state
   is bit-identical to two separate [issue_packed_static] calls — the
   trace optimizer's fused arms pay one cross-module call instead of two.
   The differential sweeps (fusion on vs off) pin the equivalence. *)
let issue_packed_pair_static t ~m1 ~m2 =
  let port1 = (m1 lsr 30) land 7 in
  issue_core_f t
    ~s1:((m1 land 0x3F) - 1)
    ~s2:(((m1 lsr 6) land 0x3F) - 1)
    ~s3:(((m1 lsr 12) land 0x3F) - 1)
    ~d1:(((m1 lsr 18) land 0x3F) - 1)
    ~d2:(((m1 lsr 24) land 0x3F) - 1)
    ~serialize:false ~port:port1 ~dep:0.0
    ~lat:(float_of_int (m1 lsr meta_lat_shift))
    ~busy:(Array.unsafe_get recip_throughput port1);
  let port2 = (m2 lsr 30) land 7 in
  issue_core_f t
    ~s1:((m2 land 0x3F) - 1)
    ~s2:(((m2 lsr 6) land 0x3F) - 1)
    ~s3:(((m2 lsr 12) land 0x3F) - 1)
    ~d1:(((m2 lsr 18) land 0x3F) - 1)
    ~d2:(((m2 lsr 24) land 0x3F) - 1)
    ~serialize:false ~port:port2 ~dep:0.0
    ~lat:(float_of_int (m2 lsr meta_lat_shift))
    ~busy:(Array.unsafe_get recip_throughput port2)

let issue_t t ?(s1 = -1) ?(s2 = -1) ?(s3 = -1) ?(d1 = -1) ?(d2 = -1) ?(dep = 0.0) ?(lat = 1.0)
    ?busy ?(serialize = false) ~port () =
  let clk = t.clk in
  clk.(io_dep) <- dep;
  clk.(io_lat) <- lat;
  clk.(io_busy) <- (match busy with Some b -> b | None -> recip_throughput.(port));
  issue_core t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize ~port;
  clk.(io_comp)

let issue t ?s1 ?s2 ?s3 ?d1 ?d2 ?dep ?lat ?busy ?serialize ~port () =
  ignore (issue_t t ?s1 ?s2 ?s3 ?d1 ?d2 ?dep ?lat ?busy ?serialize ~port ())

let cycles t = fmax t.clk.(i_fetch) t.clk.(i_maxc)

let instructions t = t.insns

let ipc t =
  let c = cycles t in
  if c <= 0.0 then 0.0 else float_of_int t.insns /. c

