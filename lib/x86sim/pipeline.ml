let p_alu = 0
let p_load = 1
let p_store = 2
let p_branch = 3
let p_mpx = 4
let p_aes = 5
let p_special = 6
let p_fp = 7

let port_count = 8
let units_per_port = [| 4; 2; 1; 1; 2; 1; 1; 2 |]

(* Cycles an execution unit stays busy per operation (1 = fully pipelined).
   (aesimc overrides its occupancy via [busy]). *)
let recip_throughput = [| 1.0; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
let fetch_width = 4.0

(* Reorder-buffer depth: instruction i cannot issue before instruction
   i - rob_size has completed. Without this bound a single long dependency
   chain would hide unlimited amounts of independent work, which no real
   core can do. 224 entries approximates Skylake. *)
let rob_size = 224

(* Indices into [clk]. All per-issue float state lives in one float array
   rather than mutable record fields or function arguments: OCaml (without
   flambda) boxes every float stored to a mixed record field, passed to, or
   returned from a non-inlined function — several heap allocations per
   simulated instruction. Float-array loads and stores are always unboxed,
   so [clk] doubles as the parameter/result channel of {!issue_core}:
   callers deposit dep/lat/busy, the core leaves the completion time. *)
let i_fetch = 0 (* fetch front *)
let i_maxc = 1 (* latest completion *)
let io_dep = 2 (* in: extra dependency floor (store-to-load forwarding) *)
let io_lat = 3 (* in: result latency *)
let io_busy = 4 (* in: unit occupancy *)
let io_comp = 5 (* out: completion time of the last issued instruction *)
let clk_size = 6

type t = {
  ready : float array; (* per pipeline register id *)
  units : float array array; (* per port, per unit: next-free time *)
  rob : float array; (* completion times of the last rob_size insns *)
  clk : float array; (* clocks + issue parameter/result slots, see above *)
  mutable insns : int;
}

let io t = t.clk

let create () =
  {
    ready = Array.make Reg.pipe_count 0.0;
    units = Array.init port_count (fun p -> Array.make units_per_port.(p) 0.0);
    rob = Array.make rob_size 0.0;
    clk = Array.make clk_size 0.0;
    insns = 0;
  }

let reset t =
  Array.fill t.ready 0 (Array.length t.ready) 0.0;
  Array.iter (fun u -> Array.fill u 0 (Array.length u) 0.0) t.units;
  Array.fill t.rob 0 rob_size 0.0;
  Array.fill t.clk 0 clk_size 0.0;
  t.insns <- 0

(* Stdlib [Float.max] is a function call, which boxes both arguments and
   the result; this stays local (and small enough to inline) so the floats
   stay in registers. Identical to [Float.max] on our domain: completion
   times are never NaN and never negative zero. *)
let[@inline] fmax (a : float) (b : float) = if a >= b then a else b

(* The one scoreboard update. Reads dep/lat/busy from the io slots, leaves
   the completion time in [clk.(io_comp)], and re-arms [io_dep] to 0 so
   only consumers with a real memory dependency pay a store to set it.
   Shared by the fast path and the labeled wrappers so the two can never
   drift numerically. *)
let issue_core t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize ~port =
  let clk = t.clk in
  let slot = t.insns mod rob_size in
  t.insns <- t.insns + 1;
  let floor_time = fmax clk.(io_dep) (fmax clk.(i_fetch) t.rob.(slot)) in
  clk.(io_dep) <- 0.0;
  let earliest = if s3 >= 0 then fmax floor_time t.ready.(s3) else floor_time in
  let earliest = if s2 >= 0 then fmax earliest t.ready.(s2) else earliest in
  let earliest = if s1 >= 0 then fmax earliest t.ready.(s1) else earliest in
  let earliest = if serialize then fmax earliest clk.(i_maxc) else earliest in
  (* Pick the execution unit that frees up first. *)
  let units = t.units.(port) in
  let best = ref 0 in
  for i = 1 to Array.length units - 1 do
    if units.(i) < units.(!best) then best := i
  done;
  let t0 = fmax earliest units.(!best) in
  let completion = t0 +. clk.(io_lat) in
  t.rob.(slot) <- completion;
  units.(!best) <- t0 +. clk.(io_busy);
  if d1 >= 0 then t.ready.(d1) <- completion;
  if d2 >= 0 then t.ready.(d2) <- completion;
  if completion > clk.(i_maxc) then clk.(i_maxc) <- completion;
  clk.(i_fetch) <- clk.(i_fetch) +. (1.0 /. fetch_width);
  if serialize && completion > clk.(i_fetch) then clk.(i_fetch) <- completion;
  clk.(io_comp) <- completion

let issue_fast t ~s1 ~s2 ~s3 ~d1 ~d2 ~lat ~port =
  let clk = t.clk in
  clk.(io_lat) <- float_of_int lat;
  clk.(io_busy) <- recip_throughput.(port);
  issue_core t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize:false ~port

let issue_t t ?(s1 = -1) ?(s2 = -1) ?(s3 = -1) ?(d1 = -1) ?(d2 = -1) ?(dep = 0.0) ?(lat = 1.0)
    ?busy ?(serialize = false) ~port () =
  let clk = t.clk in
  clk.(io_dep) <- dep;
  clk.(io_lat) <- lat;
  clk.(io_busy) <- (match busy with Some b -> b | None -> recip_throughput.(port));
  issue_core t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize ~port;
  clk.(io_comp)

let issue t ?s1 ?s2 ?s3 ?d1 ?d2 ?dep ?lat ?busy ?serialize ~port () =
  ignore (issue_t t ?s1 ?s2 ?s3 ?d1 ?d2 ?dep ?lat ?busy ?serialize ~port ())

let cycles t = fmax t.clk.(i_fetch) t.clk.(i_maxc)

let instructions t = t.insns

let ipc t =
  let c = cycles t in
  if c <= 0.0 then 0.0 else float_of_int t.insns /. c

