let p_alu = 0
let p_load = 1
let p_store = 2
let p_branch = 3
let p_mpx = 4
let p_aes = 5
let p_special = 6
let p_fp = 7

let port_count = 8
let units_per_port = [| 4; 2; 1; 1; 2; 1; 1; 2 |]

(* Cycles an execution unit stays busy per operation (1 = fully pipelined).
   (aesimc overrides its occupancy via [busy]). *)
let recip_throughput = [| 1.0; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0; 1.0 |]
let fetch_width = 4.0

(* Evaluated once at module init: without flambda, [1.0 /. fetch_width]
   inside {!issue_core} is a hardware float divide per simulated
   instruction. Exact (power-of-two divisor), so timings are unchanged. *)
let fetch_step = 1.0 /. fetch_width

(* Reorder-buffer depth: instruction i cannot issue before instruction
   i - rob_size has completed. Without this bound a single long dependency
   chain would hide unlimited amounts of independent work, which no real
   core can do. 224 entries approximates Skylake. *)
let rob_size = 224

(* Indices into [clk]. All per-issue float state lives in one float array
   rather than mutable record fields or function arguments: OCaml (without
   flambda) boxes every float stored to a mixed record field, passed to, or
   returned from a non-inlined function — several heap allocations per
   simulated instruction. Float-array loads and stores are always unboxed,
   so [clk] doubles as the parameter/result channel of {!issue_core}:
   callers deposit dep/lat/busy, the core leaves the completion time. *)
let i_fetch = 0 (* fetch front *)
let i_maxc = 1 (* latest completion *)
let io_dep = 2 (* in: extra dependency floor (store-to-load forwarding) *)
let io_lat = 3 (* in: result latency *)
let io_busy = 4 (* in: unit occupancy *)
let io_comp = 5 (* out: completion time of the last issued instruction *)
let clk_size = 6

type t = {
  ready : float array; (* per pipeline register id *)
  units : float array array; (* per port, per unit: next-free time *)
  rob : float array; (* completion times of the last rob_size insns *)
  clk : float array; (* clocks + issue parameter/result slots, see above *)
  mutable insns : int;
  mutable rob_next : int;
      (* insns mod rob_size, maintained incrementally: rob_size is not a
         power of two, so the direct mod is a hardware divide on every
         issued instruction *)
}

let io t = t.clk

let create () =
  {
    ready = Array.make Reg.pipe_count 0.0;
    units = Array.init port_count (fun p -> Array.make units_per_port.(p) 0.0);
    rob = Array.make rob_size 0.0;
    clk = Array.make clk_size 0.0;
    insns = 0;
    rob_next = 0;
  }

let reset t =
  Array.fill t.ready 0 (Array.length t.ready) 0.0;
  Array.iter (fun u -> Array.fill u 0 (Array.length u) 0.0) t.units;
  Array.fill t.rob 0 rob_size 0.0;
  Array.fill t.clk 0 clk_size 0.0;
  t.insns <- 0;
  t.rob_next <- 0

(* Stdlib [Float.max] is a function call, which boxes both arguments and
   the result; this stays local (and small enough to inline) so the floats
   stay in registers. Identical to [Float.max] on our domain: completion
   times are never NaN and never negative zero. *)
let[@inline] fmax (a : float) (b : float) = if a >= b then a else b

(* The one scoreboard update. Reads dep/lat/busy from the io slots, leaves
   the completion time in [clk.(io_comp)], and re-arms [io_dep] to 0 so
   only consumers with a real memory dependency pay a store to set it.
   Shared by the fast path and the labeled wrappers so the two can never
   drift numerically. *)
(* Register/port/slot indices are validated at construction time (pack
   asserts its ranges; ports are module constants; the rob slot is
   maintained in [0, rob_size)), so the accesses below are unchecked:
   at one call per simulated instruction, the bounds checks and the
   [mod] divide were a measurable slice of whole-simulator time. *)
let issue_core t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize ~port =
  let clk = t.clk in
  let ready = t.ready in
  let slot = t.rob_next in
  let nxt = slot + 1 in
  t.rob_next <- (if nxt = rob_size then 0 else nxt);
  t.insns <- t.insns + 1;
  let floor_time =
    fmax (Array.unsafe_get clk io_dep)
      (fmax (Array.unsafe_get clk i_fetch) (Array.unsafe_get t.rob slot))
  in
  Array.unsafe_set clk io_dep 0.0;
  let earliest = if s3 >= 0 then fmax floor_time (Array.unsafe_get ready s3) else floor_time in
  let earliest = if s2 >= 0 then fmax earliest (Array.unsafe_get ready s2) else earliest in
  let earliest = if s1 >= 0 then fmax earliest (Array.unsafe_get ready s1) else earliest in
  let earliest = if serialize then fmax earliest (Array.unsafe_get clk i_maxc) else earliest in
  (* Pick the execution unit that frees up first. *)
  let units = Array.unsafe_get t.units port in
  let best = ref 0 in
  for i = 1 to Array.length units - 1 do
    if Array.unsafe_get units i < Array.unsafe_get units !best then best := i
  done;
  let t0 = fmax earliest (Array.unsafe_get units !best) in
  let completion = t0 +. Array.unsafe_get clk io_lat in
  Array.unsafe_set t.rob slot completion;
  Array.unsafe_set units !best (t0 +. Array.unsafe_get clk io_busy);
  if d1 >= 0 then Array.unsafe_set ready d1 completion;
  if d2 >= 0 then Array.unsafe_set ready d2 completion;
  if completion > Array.unsafe_get clk i_maxc then Array.unsafe_set clk i_maxc completion;
  Array.unsafe_set clk i_fetch (Array.unsafe_get clk i_fetch +. fetch_step);
  if serialize && completion > Array.unsafe_get clk i_fetch then
    Array.unsafe_set clk i_fetch completion;
  Array.unsafe_set clk io_comp completion

let issue_fast t ~s1 ~s2 ~s3 ~d1 ~d2 ~lat ~port =
  let clk = t.clk in
  clk.(io_lat) <- float_of_int lat;
  clk.(io_busy) <- Array.unsafe_get recip_throughput port;
  issue_core t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize:false ~port

(* Predecoded issue metadata: the five pipeline-register ids, the port and
   (for static-latency instructions) the latency of one instruction packed
   into a single immediate int at translation time, so the per-uop hot path
   carries one word instead of six. Register ids are stored +1 (pipe_none =
   -1 encodes as 0) in 6-bit fields; the port gets 3 bits; the latency
   occupies the bits above [meta_lat_shift]. *)
let meta_lat_shift = 33

let pack ~s1 ~s2 ~s3 ~d1 ~d2 ~lat ~port =
  assert (s1 >= -1 && s1 < 63 && s2 >= -1 && s2 < 63 && s3 >= -1 && s3 < 63);
  assert (d1 >= -1 && d1 < 63 && d2 >= -1 && d2 < 63);
  assert (port >= 0 && port < port_count);
  assert (lat >= 0);
  (s1 + 1)
  lor ((s2 + 1) lsl 6)
  lor ((s3 + 1) lsl 12)
  lor ((d1 + 1) lsl 18)
  lor ((d2 + 1) lsl 24)
  lor (port lsl 30)
  lor (lat lsl meta_lat_shift)

let issue_packed t ~meta ~lat =
  let clk = t.clk in
  clk.(io_lat) <- float_of_int lat;
  let port = (meta lsr 30) land 7 in
  clk.(io_busy) <- Array.unsafe_get recip_throughput port;
  issue_core t
    ~s1:((meta land 0x3F) - 1)
    ~s2:(((meta lsr 6) land 0x3F) - 1)
    ~s3:(((meta lsr 12) land 0x3F) - 1)
    ~d1:(((meta lsr 18) land 0x3F) - 1)
    ~d2:(((meta lsr 24) land 0x3F) - 1)
    ~serialize:false ~port

(* Not expressed via [issue_packed]: this is the single hottest call in
   translated execution, and flattening it drops one call frame per
   executed uop. *)
let issue_packed_static t ~meta =
  let clk = t.clk in
  clk.(io_lat) <- float_of_int (meta lsr meta_lat_shift);
  let port = (meta lsr 30) land 7 in
  clk.(io_busy) <- Array.unsafe_get recip_throughput port;
  issue_core t
    ~s1:((meta land 0x3F) - 1)
    ~s2:(((meta lsr 6) land 0x3F) - 1)
    ~s3:(((meta lsr 12) land 0x3F) - 1)
    ~d1:(((meta lsr 18) land 0x3F) - 1)
    ~d2:(((meta lsr 24) land 0x3F) - 1)
    ~serialize:false ~port

let issue_t t ?(s1 = -1) ?(s2 = -1) ?(s3 = -1) ?(d1 = -1) ?(d2 = -1) ?(dep = 0.0) ?(lat = 1.0)
    ?busy ?(serialize = false) ~port () =
  let clk = t.clk in
  clk.(io_dep) <- dep;
  clk.(io_lat) <- lat;
  clk.(io_busy) <- (match busy with Some b -> b | None -> recip_throughput.(port));
  issue_core t ~s1 ~s2 ~s3 ~d1 ~d2 ~serialize ~port;
  clk.(io_comp)

let issue t ?s1 ?s2 ?s3 ?d1 ?d2 ?dep ?lat ?busy ?serialize ~port () =
  ignore (issue_t t ?s1 ?s2 ?s3 ?d1 ?d2 ?dep ?lat ?busy ?serialize ~port ())

let cycles t = fmax t.clk.(i_fetch) t.clk.(i_maxc)

let instructions t = t.insns

let ipc t =
  let c = cycles t in
  if c <= 0.0 then 0.0 else float_of_int t.insns /. c

