let page_size = 4096

type t = { mutable frames : Bytes.t array; mutable used : int; max_frames : int }

(* 1M frames = 4 GiB of simulated physical memory. Single-core runs never
   came near the bound; a shared pool feeding N cores' stacks and heaps can,
   and must fail with a diagnosis rather than an array bound fault. *)
let default_max_frames = 1 lsl 20

let create ?(max_frames = default_max_frames) () =
  if max_frames < 1 then invalid_arg "Physmem.create: max_frames must be positive";
  { frames = Array.make (min 64 max_frames) Bytes.empty; used = 0; max_frames }

let alloc_frame t =
  if t.used >= t.max_frames then
    failwith
      (Printf.sprintf "Physmem.alloc_frame: out of physical frames (limit %d = %d MiB)"
         t.max_frames (t.max_frames * page_size / (1024 * 1024)));
  if t.used = Array.length t.frames then begin
    let bigger = Array.make (min (2 * t.used) t.max_frames) Bytes.empty in
    Array.blit t.frames 0 bigger 0 t.used;
    t.frames <- bigger
  end;
  let n = t.used in
  t.frames.(n) <- Bytes.make page_size '\000';
  t.used <- n + 1;
  n

let max_frames t = t.max_frames

let frame_count t = t.used

let frame_bytes t n =
  if n < 0 || n >= t.used then invalid_arg (Printf.sprintf "Physmem.frame_bytes: frame %d" n);
  t.frames.(n)

(* Bounds-checked 64-bit native-endian access as compiler primitives.
   [Bytes.get_int64_le] is an ordinary stdlib function, so calling it
   boxes its [int64] result — one heap allocation per simulated memory
   access. Used as primitives chained into [Int64.to_int]/[of_int], the
   value stays unboxed. The big-endian fallback keeps the little-endian
   simulated memory image portable. *)
external get_64ne : Bytes.t -> int -> int64 = "%caml_bytes_get64"
external set_64ne : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64"

let read64 t ~frame ~off =
  if Sys.big_endian then Int64.to_int (Bytes.get_int64_le (frame_bytes t frame) off)
  else Int64.to_int (get_64ne (frame_bytes t frame) off)

let write64 t ~frame ~off v =
  if Sys.big_endian then Bytes.set_int64_le (frame_bytes t frame) off (Int64.of_int v)
  else set_64ne (frame_bytes t frame) off (Int64.of_int v)

(* Trusted-frame variants for the MMU's per-access hot path: the frame
   number there comes out of a TLB entry, which only ever holds frames
   handed out by [alloc_frame] (the pool never shrinks), so the
   [frame_bytes] range check and its extra call are redundant. The byte
   offset stays bounds-checked by the access primitive. *)
let[@inline always] read64_trusted t ~frame ~off =
  if Sys.big_endian then Int64.to_int (Bytes.get_int64_le (Array.unsafe_get t.frames frame) off)
  else Int64.to_int (get_64ne (Array.unsafe_get t.frames frame) off)

let[@inline always] write64_trusted t ~frame ~off v =
  if Sys.big_endian then Bytes.set_int64_le (Array.unsafe_get t.frames frame) off (Int64.of_int v)
  else set_64ne (Array.unsafe_get t.frames frame) off (Int64.of_int v)

let read8 t ~frame ~off = Bytes.get_uint8 (frame_bytes t frame) off
let write8 t ~frame ~off v = Bytes.set_uint8 (frame_bytes t frame) off v

let read_block16 t ~frame ~off = Bytes.sub (frame_bytes t frame) off 16

(* Blit-through variants: move a 16-byte block between frame memory and a
   caller-owned buffer without materializing an intermediate [Bytes.t] —
   the vector-register file is such a buffer, so xmm loads/stores stay
   allocation-free. *)
let read_block16_into t ~frame ~off ~dst ~dpos = Bytes.blit (frame_bytes t frame) off dst dpos 16
let write_block16_from t ~frame ~off ~src ~spos = Bytes.blit src spos (frame_bytes t frame) off 16

let write_block16 t ~frame ~off b =
  if Bytes.length b <> 16 then invalid_arg "Physmem.write_block16: need 16 bytes";
  Bytes.blit b 0 (frame_bytes t frame) off 16
