(** Typed machine events — the telemetry channel of the simulator.

    Every event carries the [rip] (instruction index) of the responsible
    instruction, which is what lets the MemSentry profiler attribute cost
    back to the gate site the instrumentation pass inserted — the repo's
    analogue of the paper's PIN-based per-site dynamic analysis (§5.5).

    The CPU emits hardware-observable events: gate transitions for
    instructions with an architectural gate semantic ([wrpkru], [vmfunc]),
    fault deliveries, TLB misses and the cache level that served each data
    access (from the MMU/cache models), and VM exits (from the
    virtualization path). Software layers may inject their own gate events
    through {!Cpu.emit} for techniques whose gates are instruction
    {e sequences} rather than single instructions (crypt's AES bracketing,
    mprotect's syscalls). *)

type gate =
  | Pkru of int  (** [wrpkru]: the new pkru value (0 = domain open). *)
  | Ept of int  (** [vmfunc]: the new EPT index (0 = non-sensitive). *)
  | Seq of string
      (** A software-sequence gate (e.g. ["crypt"], ["mprotect"]), injected
          by the instrumentation-aware profiler rather than the CPU. *)

type t =
  | Gate_enter of { rip : int; gate : gate }
      (** The sensitive domain opened (pkru fully permissive, EPT switched
          to a sensitive view, or a software open-sequence began). *)
  | Gate_exit of { rip : int; gate : gate }
  | Fault of { rip : int; fault : Fault.t }
  | Tlb_miss of { rip : int; va : int }
  | Cache_miss of { rip : int; va : int; level : Cache.served }
      (** A data access served below L1; [level] is where it finally hit
          ([L2], [L3] or [Dram]). *)
  | Vm_exit of { rip : int; reason : string }

val rip : t -> int
(** The responsible instruction of any event. *)

val gate_name : gate -> string
(** Stable label for a gate, e.g. ["pkru=0"], ["ept=1"], ["crypt"]. *)

val to_string : t -> string
(** One-line rendering for logs and traces. *)
