module J = Ms_util.Json

let span_event ?(annotate = fun _ -> []) (s : Tracer.span) =
  let args =
    [
      ("enter_rip", J.Int s.Tracer.enter_rip);
      ("exit_rip", J.Int s.Tracer.exit_rip);
      ("depth", J.Int s.Tracer.depth);
      ("closed", J.Bool s.Tracer.closed);
    ]
    @ annotate s
  in
  J.Obj
    [
      ("name", J.String s.Tracer.gate);
      ("cat", J.String "domain-residency");
      ("ph", J.String "X");
      (* The trace-event clock is microseconds; we map one simulated cycle
         to one "microsecond" so durations read directly as cycles. *)
      ("ts", J.Float s.Tracer.enter_cycles);
      ("dur", J.Float (Tracer.span_cycles s));
      ("pid", J.Int 1);
      ("tid", J.Int 1);
      ("args", J.Obj args);
    ]

let metadata_event ~name ~value =
  J.Obj
    [
      ("name", J.String name);
      ("ph", J.String "M");
      ("pid", J.Int 1);
      ("tid", J.Int 1);
      ("args", J.Obj [ ("name", J.String value) ]);
    ]

let to_json ?(process_name = "memsentry-sim") ?annotate spans =
  let events =
    metadata_event ~name:"process_name" ~value:process_name
    :: metadata_event ~name:"thread_name" ~value:"safe-region residency"
    :: List.map (span_event ?annotate) spans
  in
  J.Obj [ ("traceEvents", J.List events); ("displayTimeUnit", J.String "ms") ]

let to_string ?process_name ?annotate spans =
  J.to_string ~pretty:true (to_json ?process_name ?annotate spans)

let write ?process_name ?annotate ~file spans =
  J.to_file file (to_json ?process_name ?annotate spans)
