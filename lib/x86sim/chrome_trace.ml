module J = Ms_util.Json

(* Nested residency spans render on one Perfetto track per nesting depth;
   tid 1 is the outermost domain entry. *)
let tid_of (s : Tracer.span) = s.Tracer.depth + 1

let span_event ?(annotate = fun _ -> []) (s : Tracer.span) =
  let args =
    [
      ("enter_rip", J.Int s.Tracer.enter_rip);
      ("exit_rip", J.Int s.Tracer.exit_rip);
      ("depth", J.Int s.Tracer.depth);
      ("closed", J.Bool s.Tracer.closed);
    ]
    @ annotate s
  in
  J.Obj
    [
      ("name", J.String s.Tracer.gate);
      ("cat", J.String "domain-residency");
      ("ph", J.String "X");
      (* The trace-event clock is microseconds; we map one simulated cycle
         to one "microsecond" so durations read directly as cycles. *)
      ("ts", J.Float s.Tracer.enter_cycles);
      ("dur", J.Float (Tracer.span_cycles s));
      ("pid", J.Int 1);
      ("tid", J.Int (tid_of s));
      ("args", J.Obj args);
    ]

let metadata_event ~name ~tid ~args =
  J.Obj
    [
      ("name", J.String name);
      ("ph", J.String "M");
      ("pid", J.Int 1);
      ("tid", J.Int tid);
      ("args", J.Obj args);
    ]

(* One thread_name/thread_sort_index pair per depth present in the trace,
   so Perfetto labels each nesting level and keeps them in depth order. *)
let thread_metadata spans =
  let tids = List.sort_uniq compare (List.map tid_of spans) in
  List.concat_map
    (fun tid ->
      let label =
        if tid = 1 then "safe-region residency"
        else Printf.sprintf "safe-region residency (depth %d)" (tid - 1)
      in
      [
        metadata_event ~name:"thread_name" ~tid ~args:[ ("name", J.String label) ];
        metadata_event ~name:"thread_sort_index" ~tid
          ~args:[ ("sort_index", J.Int tid) ];
      ])
    (if tids = [] then [ 1 ] else tids)

let to_json ?(process_name = "memsentry-sim") ?annotate spans =
  let events =
    metadata_event ~name:"process_name" ~tid:1
      ~args:[ ("name", J.String process_name) ]
    :: metadata_event ~name:"process_sort_index" ~tid:1
         ~args:[ ("sort_index", J.Int 1) ]
    :: (thread_metadata spans @ List.map (span_event ?annotate) spans)
  in
  J.Obj [ ("traceEvents", J.List events); ("displayTimeUnit", J.String "ms") ]

let to_string ?process_name ?annotate spans =
  J.to_string ~pretty:true (to_json ?process_name ?annotate spans)

let write ?process_name ?annotate ~file spans =
  J.to_file file (to_json ?process_name ?annotate spans)
