(** Profile-guided trace tier: superblocks over {!Ublock}.

    The block tier re-enters the dispatcher at every terminator: follow a
    chain link, re-check its generation, re-arm the per-block uop loop.
    For hot code the control-flow trajectory is almost always the same one
    the edge profile already recorded, so this module stitches a hot
    block's dominant successor chain into a {e superblock}: a flat
    sequence of segments (one per fused basic block) executed by a single
    loop in [Cpu.exec_trace], with the predicted exit direction baked in
    and a {e side exit} back to the block tier whenever the prediction
    misses. A trace whose predicted chain closes back on its own entry is
    a {e looping} trace: the executor restarts it without ever returning
    to the dispatcher, which is where the hot-loop win comes from.

    {b Formation policy.} Formation is triggered by the block tier the
    moment a block's [exec_count] crosses [hot_threshold]. The chain is
    grown from the {!Ublock} profile:
    - [Term_jmp]/[Term_call]: always followed (unconditional edges).
    - [Term_jcc]: followed in its dominant direction once the branch has
      at least [min_samples] recorded exits and one direction outnumbers
      the other [bias_num]:[bias_den] (default 3:1). The baked direction
      is re-checked at run time; the cold direction is a side exit.
    - [Term_ret]/[Term_call_r]/[Term_jmp_r]: followed to the Boyer–Moore
      majority target once it holds an absolute majority over at least
      [min_samples] samples. The target is re-checked at run time
      against the actual value (popped return address / register); a
      mismatch is a side exit with the architecturally-correct rip.
    Growth stops at unpredictable exits ([Term_halt], [Term_exec],
    [Term_fall_off], cold branches), at revisited entries (except the
    trace's own entry, which closes a loop), and at [max_segs]/
    [max_insns]. Single-segment traces are kept only when they loop.

    {b Semantics.} Executing a trace is observationally identical to
    running the same blocks through the block tier: same retired-insn
    counts, same fuel decrements, same pipeline issues (so same cycles
    and CPI stack), same profile updates, same fault behavior ([rip] is
    re-armed per uop; the executor's batched counter accounting is
    reconciled from [rip] before a fault propagates). Runtime prediction
    guards and trace formation itself cost zero {e simulated} cycles:
    the tier models a software-dispatch optimization of the simulator,
    not a microarchitectural feature of the modeled CPU.

    {b Gate-check hoisting} (opt-in): when the embedding layer installs
    per-rip facts ({!install_hoist_facts}) asserting that a check site is
    loop-invariant — derived from the same conditions [Gate_opt]'s
    CFG-scope check motion proves — formation lifts the fact-marked site
    uops (the [lea] computing the checked address together with the
    [Ubndc] it feeds) into a prologue executed once per trace {e entry};
    internal loop restarts skip it, and the in-body access reads the
    prologue-computed scratch value. Formation re-verifies the facts
    against the trace body (no uop outside the hoisted group may write
    any register the group touches, nor the check's bound register)
    before trusting them. This intentionally changes the modeled cost
    (fewer retired checks — the pay-once-per-window story), so it is off
    unless facts are installed.

    {b Invalidation} is eager: {!invalidate_all} (wired through
    [Cpu.flush_translations]) unregisters every live trace, so a stale
    superblock — including its side-exit stubs — can never execute after
    a flush. Dispatch additionally re-checks the trace's recorded
    {!Ublock} generation, so even a registry race would fall back to the
    block tier (which recompiles) rather than run stale code. *)

(** How a segment's fused terminator exits, with the predicted
    continuation baked in at formation time. *)
type exit_kind =
  | X_jmp of { target : int }
  | X_jcc of { cond : Insn.cond; target : int; fall : int; predict_taken : bool }
      (** Direction re-evaluated at run time; the unpredicted direction
          side-exits. *)
  | X_call of { target : int; retaddr : int }
  | X_call_r of { r : int; retaddr : int; predicted : int }
  | X_jmp_r of { r : int; predicted : int }
  | X_ret of { predicted : int }
      (** Indirect exits compare the actual target against [predicted];
          a mismatch side-exits with [rip] already set to the actual
          target. *)

(** One fused basic block inside a trace. *)
type seg = {
  sg_blk : Ublock.block;  (** the underlying block (profile counters live here) *)
  sg_uops : Ublock.uop array;
      (** shares [sg_blk.uops] unless hoisting elided checks *)
  sg_rips : int array;
      (** per-uop instruction indices; {!no_rips} means the identity
          mapping [sg_blk.entry + i] (no uop was elided) *)
  sg_exit : exit_kind;
  sg_opt : Traceopt.oseg option;
      (** the {!Traceopt}-rewritten body (fused pairs, inline translation
          slots, dead flags elided) the executor's lazy-rip fast path
          runs; [None] when the optimizer is off. The careful path (and
          every mid-segment resume) always runs [sg_uops]. *)
}

type trace = {
  tr_entry : int;
  tr_gen : int;  (** {!Ublock} generation the trace was formed under *)
  tr_segs : seg array;
  tr_loops : bool;
      (** last segment's predicted exit returns to [tr_entry]: the
          executor restarts the trace without re-dispatching *)
  tr_prologue : Ublock.uop array;  (** hoisted checks, run once per trace entry *)
  tr_prologue_rips : int array;
  tr_insns : int;  (** static instructions covered (uops + terminators) *)
  tr_slot_vpn : int array;
      (** inline translation slots, indexed by the [slot] field of the
          optimized bodies' [U*_c]/[Ufuse_mask_*] uops: cached vpn (-1 =
          never charged), packed {!Tlb.slot_info} word, and the
          {!Mmu.generation_token} the entry was charged under. The CPU
          aliases these three into its own fields on trace entry. *)
  tr_slot_info : int array;
  tr_slot_tok : int array;
  mutable tr_execs : int;  (** entries (not loop restarts); saturating *)
  mutable tr_side_exits : int;
  mutable tr_cycles : float;  (** simulated cycles retired inside this trace *)
  mutable tr_live : bool;  (** false once invalidated *)
}

val dummy_trace : trace
(** The "absent" registry sentinel; never executed. *)

val no_rips : int array
(** Shared empty array marking identity rip mapping in [sg_rips]. *)

(** Per-CPU tier state: the entry-indexed registry, formation parameters,
    cumulative statistics, and the executor's fault-reconciliation
    scratch. Fields are mutable and exposed: the CPU's inner loop reads
    them directly, and tests tune the formation parameters. *)
type tier = {
  code_len : int;
  mutable enabled : bool;
  mutable optimize : bool;
      (** run {!Traceopt} at formation (default true); toggled via
          {!set_optimize} *)
  mutable hot_threshold : int;
      (** exec-count at which the block tier attempts formation;
          [max_int] when the tier is disabled *)
  mutable min_samples : int;  (** edge samples required to trust a profile *)
  mutable jcc_bias : int;
      (** direction-bias numerator for baking a jcc exit: the winning
          side must outnumber the other [jcc_bias]:1 (default 3) *)
  mutable by_entry : trace array;  (** registry, {!dummy_trace} = absent *)
  mutable formed : trace list;  (** live traces, most recent first *)
  mutable formed_count : int;  (** cumulative, survives invalidation *)
  mutable invalidated_count : int;
  mutable covered_insns : int;
      (** retired instructions executed from inside superblocks *)
  mutable hoisted_checks : int;
      (** check uops elided into prologues, cumulative over formation *)
  mutable fused_uops : int;
      (** macro-fused pairs installed, cumulative over formation *)
  mutable cached_slots : int;  (** inline translation slots installed *)
  mutable dead_flags : int;  (** dead flag writes elided *)
  mutable inline_hits : int;
      (** inline-slot short-circuits taken by the executor (runtime) *)
  mutable inline_misses : int;
      (** inline-slot misses (full translation path taken; runtime) *)
  mutable inline_dead : bool;
      (** adaptive kill switch: set by the executor once the miss count
          vastly outruns the hits (a TLB-thrashing workload bumps
          [Mmu.generation_token] on every fill, so no token ever
          revalidates and every probe+recharge is pure overhead). Once
          set, optimized memory uops skip the slot probe and take the
          eager path directly; per-program (the tier is re-created per
          program), and observationally free either way (the miss path
          {e is} the eager path). *)
  (* Chain-end reason counters: why formation walks stopped where they
     did — the trace-coverage diagnosis signal. Cumulative over every
     formation attempt. *)
  mutable abort_cold_branch : int;
      (** jcc below [min_samples] or without a [jcc_bias]:1 direction *)
  mutable abort_indirect_minority : int;
      (** ret/call_r/jmp_r without a Boyer–Moore absolute majority *)
  mutable abort_cap_hit : int;  (** [max_segs]/[max_insns] reached *)
  mutable abort_handler_term : int;
      (** halt / serializing-handler / fall-off terminator *)
  mutable hoist_facts : bool array;
      (** per-rip loop-invariance facts; [[||]] = none installed *)
  (* Fault-reconciliation scratch for the batched executor (lives here so
     the executor allocates nothing). *)
  mutable rec_entry : int;
  mutable rec_rips : int array;
  mutable rec_active : bool;
  mutable rec_lazy : bool;
      (** the active segment runs an optimized body with no per-uop rip
          re-arm: reconstruct the faulting rip from the issue delta
          against [rec_issue0] instead of reading [Cpu.rip] *)
  mutable rec_issue0 : int;  (** [Pipeline.instructions] at segment start *)
}

val default_hot_threshold : int
val default_min_samples : int
val default_jcc_bias : int

val create : code_len:int -> tier
(** A fresh, enabled tier with default parameters and an empty registry
    sized for a [code_len]-instruction program. *)

val recreate : tier -> code_len:int -> tier
(** A fresh tier for a new program, inheriting [enabled]/[optimize]/
    [hot_threshold]/[min_samples]/[jcc_bias] from [old] (statistics and
    registry start empty). *)

val set_enabled : tier -> bool -> unit
(** Enable/disable formation {e and} dispatch. Disabling sets
    [hot_threshold] to [max_int] (so the block tier's trigger compare
    never fires) and invalidates live traces; enabling restores
    {!default_hot_threshold} unless a custom threshold was set. *)

val set_hot_threshold : tier -> int -> unit
val set_min_samples : tier -> int -> unit

val set_optimize : tier -> bool -> unit
(** Toggle the {!Traceopt} formation pass. Invalidates live traces on a
    change (installed bodies were rewritten under the other setting);
    re-formation is driven by the block tier's trigger as usual. *)

val set_jcc_bias : tier -> int -> unit
(** Set the jcc direction-bias numerator (clamped to at least 1). Affects
    future formation only: already-installed traces keep their baked
    direction, which remains correct (the cold direction side-exits). *)

val install_hoist_facts : tier -> bool array -> unit
(** Install per-rip loop-invariance facts ([facts.(rip) = true] means the
    check at [rip] may be hoisted to trace entry). Invalidates live
    traces so they re-form under the new facts. Facts are cleared by
    {!invalidate_all} (a flush means the code changed under them). *)

val at : tier -> int -> trace
(** Registry lookup: the live trace entered at instruction index [entry],
    or {!dummy_trace}. The caller must still check [tr_gen]. *)

val try_form : tier -> Ublock.cache -> Ublock.block -> unit
(** Attempt to form (and register) a trace entered at [block]. No-op if
    the tier is disabled, a trace is already registered there, or the
    profile does not support a chain (see formation policy above). *)

val invalidate_all : tier -> unit
(** Eagerly unregister every live trace and clear installed hoist facts.
    Wired through [Cpu.flush_translations]. *)

(** {2 Observability} *)

type stat = {
  t_entry : int;
  t_blocks : int list;  (** fused block entries, in execution order *)
  t_insns : int;
  t_execs : int;
  t_side_exits : int;
  t_cycles : float;
  t_loops : bool;
  t_hoisted : int;  (** prologue length (hoisted checks) *)
}

val stats : tier -> stat list
(** Live traces in formation order. *)

val live_count : tier -> int
