type uop =
  | Unop of { meta : int }
  | Umov_rr of { d : int; s : int; meta : int }
  | Umov_ri of { d : int; imm : int; meta : int }
  | Uload_bd of { d : int; base : int; disp : int; meta : int }
  | Uload_gen of { d : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ustore_bd of { s : int; base : int; disp : int; meta : int }
  | Ustore_gen of { s : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ustorei_bd of { imm : int; base : int; disp : int; meta : int }
  | Ustorei_gen of { imm : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ulea of { d : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ulea32 of { d : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ualu_rr of { op : Insn.alu; d : int; s : int; meta : int }
  | Ualu_ri of { op : Insn.alu; d : int; imm : int; meta : int }
  | Ucmp_rr of { a : int; b : int; meta : int }
  | Ucmp_ri of { a : int; imm : int; meta : int }
  | Utest_rr of { a : int; b : int; meta : int }
  | Upush of { s : int }
  | Upop of { d : int }
  | Ubnd_set of { b : int; lo : int; hi : int; meta : int }
  | Ubndc of { upper : bool; b : int; r : int; meta : int }
  | Ubndmov_store of { b : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Ubndmov_load of { b : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Urdpkru of { meta : int }
  | Umovdqa_load of { x : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Umovdqa_store of { x : int; base : int; index : int; scale : int; disp : int; meta : int }
  | Umovq_xr of { x : int; r : int; meta : int }
  | Umovq_rx of { r : int; x : int; meta : int }
  | Uxmm_xor of { d : int; s : int; meta : int }
  | Uaes of { f : Bytes.t -> Bytes.t -> Bytes.t; d : int; s : int }
  | Uaeskeygen of { d : int; s : int; imm : int; meta : int }
  | Uaesimc of { d : int; s : int }
  | Uvext_high of { d : int; s : int; meta : int }
  | Uvins_high of { d : int; s : int; meta : int }
  (* ---- Trace-lane optimizer shapes (built by Traceopt, never by
     [uop_of]). They only appear inside optimized trace bodies, which are
     executed exclusively by the trace tier's fast path; the block tier
     and the careful trace path never see them. Each is observationally
     identical to the uop (or adjacent uop pair) it replaces — the
     fusion-on/off differential sweeps pin that. *)
  (* ALU with a dead flag result: the [d2:flags] write is elided because a
     later flag write is provably observed first. Same [meta]. *)
  | Ualu_rr_nf of { op : Insn.alu; d : int; s : int; meta : int }
  | Ualu_ri_nf of { op : Insn.alu; d : int; imm : int; meta : int }
  (* Memory uops with an inline translation slot: [slot] indexes the
     owning trace's vpn/info/token arrays; on a token-valid vpn match the
     TLB probe and page walk are short-circuited (the hit is still
     posted), otherwise the full path runs and recharges the slot. *)
  | Uload_bd_c of { d : int; base : int; disp : int; slot : int; meta : int }
  | Uload_gen_c of
      { d : int; base : int; index : int; scale : int; disp : int; slot : int; meta : int }
  | Ustore_bd_c of { s : int; base : int; disp : int; slot : int; meta : int }
  | Ustore_gen_c of
      { s : int; base : int; index : int; scale : int; disp : int; slot : int; meta : int }
  | Ustorei_bd_c of { imm : int; base : int; disp : int; slot : int; meta : int }
  | Ustorei_gen_c of
      { imm : int; base : int; index : int; scale : int; disp : int; slot : int; meta : int }
  (* Macro-fused [alu_ri d, imm] + base+disp access through [d] (the SFI
     mask-then-access idiom): one dispatch computes the masked address,
     issues the ALU half ([m1], before the access's fault point), then
     performs the slot-cached access and issues [m2]. [nf] carries the
     dead-flag marking of the ALU half. *)
  | Ufuse_mask_load of
      { op : Insn.alu; d : int; imm : int; nf : bool; m1 : int; ld : int; disp : int;
        slot : int; m2 : int }
  | Ufuse_mask_store of
      { op : Insn.alu; d : int; imm : int; nf : bool; m1 : int; s : int; disp : int;
        slot : int; m2 : int }
  | Ufuse_mask_storei of
      { op : Insn.alu; d : int; imm : int; nf : bool; m1 : int; simm : int; disp : int;
        slot : int; m2 : int }
  (* Macro-fused [lea]/[lea32] + MPX bound check on its result (the MemSentry
     MPX gate idiom). Both halves issue back to back (the eager path has
     only a counter bump between them); the Bound_violation fault point is
     after both issues, matching [Cpu.exec]'s Bndcu ordering. *)
  | Ufuse_lea_bndc of
      { d : int; base : int; index : int; scale : int; disp : int; w32 : bool; m1 : int;
        upper : bool; b : int; m2 : int }

type terminator =
  | Term_halt
  | Term_jmp of { target : int }
  | Term_jcc of { cond : Insn.cond; target : int }
  | Term_call of { target : int }
  | Term_call_r of { r : int }
  | Term_jmp_r of { r : int }
  | Term_ret
  | Term_exec of Insn.t
  | Term_fall_off

type block = {
  entry : int;
  uops : uop array;
  term : terminator;
  term_idx : int;
  bgen : int;
  mutable succ_taken : block;
  mutable succ_fall : block;
  mutable exec_count : int;
  mutable taken_count : int;
  mutable fall_count : int;
  mutable dyn_target : int;
  mutable dyn_votes : int;
  mutable dyn_total : int;
}

type cache = {
  program : Program.t;
  code : Insn.t array;
  blocks : block array;  (* indexed by entry; dummy_block = not compiled *)
  mutable gen : int;
  mutable compile_count : int;
  mutable invalidation_count : int;
}

let rec dummy_block =
  {
    entry = -1;
    uops = [||];
    term = Term_fall_off;
    term_idx = -1;
    bgen = -1;
    succ_taken = dummy_block;
    succ_fall = dummy_block;
    exec_count = 0;
    taken_count = 0;
    fall_count = 0;
    dyn_target = -1;
    dyn_votes = 0;
    dyn_total = 0;
  }

let create program =
  {
    program;
    code = Program.code program;
    blocks = Array.make (Program.length program) dummy_block;
    gen = 0;
    compile_count = 0;
    invalidation_count = 0;
  }

let owns cache program = cache.program == program
let code_length cache = Array.length cache.code
let generation cache = cache.gen

let invalidate cache =
  cache.gen <- cache.gen + 1;
  cache.invalidation_count <- cache.invalidation_count + 1

(* Eagerly sever every chained-successor link. Generation checks already
   keep a stale link from being *followed* lazily, but the trace tier
   compiles direct block references into superblocks, so invalidation for
   it must be eager — and once it is, leaving generation-dead chain links
   dangling in the block tier buys nothing. One O(code) walk per
   [invalidate]; flushes are rare (in-place code mutation, TLB
   shootdowns). *)
let drop_links cache =
  Array.iter
    (fun b ->
      if b != dummy_block then begin
        b.succ_taken <- dummy_block;
        b.succ_fall <- dummy_block
      end)
    cache.blocks

(* The cached block at [entry] without compiling: [None] when the slot is
   empty or holds a stale generation. Introspection for tests and
   reports; the execution path uses [get]. *)
let peek cache entry =
  if entry < 0 || entry >= Array.length cache.blocks then None
  else
    let b = cache.blocks.(entry) in
    if b != dummy_block && b.bgen = cache.gen then Some b else None

let compiles cache = cache.compile_count
let invalidations cache = cache.invalidation_count

(* ------------------------------------------------------------------ *)
(* Fast-path profile counters                                          *)
(* ------------------------------------------------------------------ *)

(* Saturating increment: profile counters must never wrap into garbage on
   arbitrarily long runs, and the compare is one predictable branch per
   block entry/exit (not per instruction). *)
let[@inline] bump c = if c = max_int then c else c + 1

(* Indirect-edge inline cache, Boyer–Moore majority vote: [dyn_target]
   holds the current majority candidate with [dyn_votes] excess votes,
   [dyn_total] every indirect exit. One compare + one store per indirect
   branch, no per-target table — and if one target dominates (the common
   monomorphic case: returns to a single caller, one hot jump table slot)
   it provably survives as the candidate. The superblock tier needs
   exactly this: "is there a dominant successor worth chaining?" *)
let note_dyn (b : block) target =
  b.dyn_total <- bump b.dyn_total;
  if b.dyn_votes = 0 then begin
    b.dyn_target <- target;
    b.dyn_votes <- 1
  end
  else if b.dyn_target = target then b.dyn_votes <- bump b.dyn_votes
  else b.dyn_votes <- b.dyn_votes - 1

type stat = {
  s_entry : int;
  s_insns : int;
  s_exec : int;
  s_taken : int;
  s_fall : int;
  s_taken_target : int;
  s_fall_target : int;
  s_dyn_target : int;
  s_dyn_votes : int;
  s_dyn_total : int;
}

let stat_of (b : block) =
  let taken_target, fall_target =
    match b.term with
    | Term_jmp { target } | Term_call { target } -> (target, -1)
    | Term_jcc { target; _ } -> (target, b.term_idx + 1)
    | Term_halt | Term_call_r _ | Term_jmp_r _ | Term_ret | Term_exec _ | Term_fall_off ->
      (-1, -1)
  in
  {
    s_entry = b.entry;
    s_insns = Array.length b.uops + (match b.term with Term_fall_off -> 0 | _ -> 1);
    s_exec = b.exec_count;
    s_taken = b.taken_count;
    s_fall = b.fall_count;
    s_taken_target = taken_target;
    s_fall_target = fall_target;
    s_dyn_target = b.dyn_target;
    s_dyn_votes = b.dyn_votes;
    s_dyn_total = b.dyn_total;
  }

(* Every block that executed at least once, in entry order. Stale-
   generation blocks are included until their slot is recompiled: the
   profile describes what ran, not what is currently cached. *)
let stats cache =
  let acc = ref [] in
  for i = Array.length cache.blocks - 1 downto 0 do
    let b = cache.blocks.(i) in
    if b != dummy_block && b.exec_count > 0 then acc := stat_of b :: !acc
  done;
  !acc

(* ------------------------------------------------------------------ *)
(* The translator                                                      *)
(* ------------------------------------------------------------------ *)

let nr = Reg.pipe_none

(* Pipeline source ids of a memory operand, exactly as [Cpu.mem_src1/2]. *)
let msrc1 (m : Insn.mem) = if m.base >= 0 then Reg.pipe_gpr m.base else nr
let msrc2 (m : Insn.mem) = if m.index >= 0 then Reg.pipe_gpr m.index else nr

let alu_lat (op : Insn.alu) = match op with Insn.Imul -> 3 | _ -> 1

(* Issue metadata for the common shapes. Latencies and port assignments
   transcribe [Cpu.exec]'s [issue_fast] calls one-to-one; the differential
   per-opcode sweep in test_fastpath.ml pins the correspondence. *)
let m_alu0 = Pipeline.pack ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:0 ~port:Pipeline.p_alu

let m_load (m : Insn.mem) d1 =
  (* Latency is dynamic (left by the MMU); the packed lat field is unused. *)
  Pipeline.pack ~s1:(msrc1 m) ~s2:(msrc2 m) ~s3:nr ~d1 ~d2:nr ~lat:0 ~port:Pipeline.p_load

let m_store (m : Insn.mem) s3 =
  Pipeline.pack ~s1:(msrc1 m) ~s2:(msrc2 m) ~s3 ~d1:nr ~d2:nr ~lat:1 ~port:Pipeline.p_store

(* Whether a memory operand is the flattened base+displacement shape. *)
let is_bd (m : Insn.mem) = m.base >= 0 && m.index < 0

let uop_of (insn : Insn.t) : uop =
  match insn with
  | Insn.Nop -> Unop { meta = m_alu0 }
  | Insn.Mov_rr (d, s) ->
    Umov_rr
      {
        d;
        s;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_gpr s) ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr d) ~d2:nr
            ~lat:1 ~port:Pipeline.p_alu;
      }
  | Insn.Mov_ri (d, imm) ->
    Umov_ri
      {
        d;
        imm;
        meta =
          Pipeline.pack ~s1:nr ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr d) ~d2:nr ~lat:1
            ~port:Pipeline.p_alu;
      }
  | Insn.Mov_label (d, tgt) ->
    (* Targets are resolved at assembly; predecode freezes the index. *)
    Umov_ri
      {
        d;
        imm = tgt.Insn.tidx;
        meta =
          Pipeline.pack ~s1:nr ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr d) ~d2:nr ~lat:1
            ~port:Pipeline.p_alu;
      }
  | Insn.Load (d, m) ->
    let meta = m_load m (Reg.pipe_gpr d) in
    if is_bd m then Uload_bd { d; base = m.base; disp = m.disp; meta }
    else Uload_gen { d; base = m.base; index = m.index; scale = m.scale; disp = m.disp; meta }
  | Insn.Store (m, s) ->
    let meta = m_store m (Reg.pipe_gpr s) in
    if is_bd m then Ustore_bd { s; base = m.base; disp = m.disp; meta }
    else Ustore_gen { s; base = m.base; index = m.index; scale = m.scale; disp = m.disp; meta }
  | Insn.Store_i (m, imm) ->
    let meta = m_store m nr in
    if is_bd m then Ustorei_bd { imm; base = m.base; disp = m.disp; meta }
    else
      Ustorei_gen { imm; base = m.base; index = m.index; scale = m.scale; disp = m.disp; meta }
  | Insn.Lea (d, m) ->
    Ulea
      {
        d;
        base = m.base;
        index = m.index;
        scale = m.scale;
        disp = m.disp;
        meta =
          Pipeline.pack ~s1:(msrc1 m) ~s2:(msrc2 m) ~s3:nr ~d1:(Reg.pipe_gpr d) ~d2:nr
            ~lat:1 ~port:Pipeline.p_alu;
      }
  | Insn.Lea32 (d, m) ->
    Ulea32
      {
        d;
        base = m.base;
        index = m.index;
        scale = m.scale;
        disp = m.disp;
        meta =
          Pipeline.pack ~s1:(msrc1 m) ~s2:(msrc2 m) ~s3:nr ~d1:(Reg.pipe_gpr d) ~d2:nr
            ~lat:1 ~port:Pipeline.p_alu;
      }
  | Insn.Alu_rr (op, d, s) ->
    Ualu_rr
      {
        op;
        d;
        s;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_gpr d) ~s2:(Reg.pipe_gpr s) ~s3:nr
            ~d1:(Reg.pipe_gpr d) ~d2:Reg.pipe_flags ~lat:(alu_lat op) ~port:Pipeline.p_alu;
      }
  | Insn.Alu_ri (op, d, imm) ->
    Ualu_ri
      {
        op;
        d;
        imm;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_gpr d) ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr d)
            ~d2:Reg.pipe_flags ~lat:(alu_lat op) ~port:Pipeline.p_alu;
      }
  | Insn.Cmp_rr (a, b) ->
    Ucmp_rr
      {
        a;
        b;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_gpr a) ~s2:(Reg.pipe_gpr b) ~s3:nr ~d1:Reg.pipe_flags
            ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
      }
  | Insn.Cmp_ri (a, imm) ->
    Ucmp_ri
      {
        a;
        imm;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_gpr a) ~s2:nr ~s3:nr ~d1:Reg.pipe_flags ~d2:nr ~lat:1
            ~port:Pipeline.p_alu;
      }
  | Insn.Test_rr (a, b) ->
    Utest_rr
      {
        a;
        b;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_gpr a) ~s2:(Reg.pipe_gpr b) ~s3:nr ~d1:Reg.pipe_flags
            ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
      }
  | Insn.Push r -> Upush { s = r }
  | Insn.Pop r -> Upop { d = r }
  | Insn.Bnd_set (b, lo, hi) ->
    Ubnd_set
      {
        b;
        lo;
        hi;
        meta =
          Pipeline.pack ~s1:nr ~s2:nr ~s3:nr ~d1:(Reg.pipe_bnd b) ~d2:nr ~lat:1
            ~port:Pipeline.p_mpx;
      }
  | Insn.Bndcu (b, r) ->
    Ubndc
      {
        upper = true;
        b;
        r;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_gpr r) ~s2:(Reg.pipe_bnd b) ~s3:nr ~d1:nr ~d2:nr
            ~lat:1 ~port:Pipeline.p_mpx;
      }
  | Insn.Bndcl (b, r) ->
    Ubndc
      {
        upper = false;
        b;
        r;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_gpr r) ~s2:(Reg.pipe_bnd b) ~s3:nr ~d1:nr ~d2:nr
            ~lat:1 ~port:Pipeline.p_mpx;
      }
  | Insn.Bndmov_store (m, b) ->
    Ubndmov_store
      {
        b;
        base = m.base;
        index = m.index;
        scale = m.scale;
        disp = m.disp;
        meta = m_store m (Reg.pipe_bnd b);
      }
  | Insn.Bndmov_load (b, m) ->
    Ubndmov_load
      {
        b;
        base = m.base;
        index = m.index;
        scale = m.scale;
        disp = m.disp;
        meta = m_load m (Reg.pipe_bnd b);
      }
  | Insn.Rdpkru ->
    Urdpkru
      {
        meta =
          Pipeline.pack ~s1:Reg.pipe_pkru ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr Reg.rax) ~d2:nr
            ~lat:1 ~port:Pipeline.p_alu;
      }
  | Insn.Movdqa_load (x, m) ->
    Umovdqa_load
      {
        x;
        base = m.base;
        index = m.index;
        scale = m.scale;
        disp = m.disp;
        meta = m_load m (Reg.pipe_xmm x);
      }
  | Insn.Movdqa_store (m, x) ->
    Umovdqa_store
      {
        x;
        base = m.base;
        index = m.index;
        scale = m.scale;
        disp = m.disp;
        meta = m_store m (Reg.pipe_xmm x);
      }
  | Insn.Movq_xr (x, r) ->
    Umovq_xr
      {
        x;
        r;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_gpr r) ~s2:nr ~s3:nr ~d1:(Reg.pipe_xmm x) ~d2:nr
            ~lat:2 ~port:Pipeline.p_alu;
      }
  | Insn.Movq_rx (r, x) ->
    Umovq_rx
      {
        r;
        x;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_xmm x) ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr r) ~d2:nr
            ~lat:2 ~port:Pipeline.p_alu;
      }
  | Insn.Pxor (d, s) ->
    Uxmm_xor
      {
        d;
        s;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_xmm d) ~s2:(Reg.pipe_xmm s) ~s3:nr
            ~d1:(Reg.pipe_xmm d) ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
      }
  | Insn.Fp_arith (d, s) ->
    Uxmm_xor
      {
        d;
        s;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_xmm d) ~s2:(Reg.pipe_xmm s) ~s3:nr
            ~d1:(Reg.pipe_xmm d) ~d2:nr ~lat:4 ~port:Pipeline.p_fp;
      }
  | Insn.Aesenc (d, s) -> Uaes { f = Aesni.Aes.aesenc; d; s }
  | Insn.Aesenclast (d, s) -> Uaes { f = Aesni.Aes.aesenclast; d; s }
  | Insn.Aesdec (d, s) -> Uaes { f = Aesni.Aes.aesdec; d; s }
  | Insn.Aesdeclast (d, s) -> Uaes { f = Aesni.Aes.aesdeclast; d; s }
  | Insn.Aeskeygenassist (d, s, imm) ->
    Uaeskeygen
      {
        d;
        s;
        imm;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_xmm s) ~s2:nr ~s3:nr ~d1:(Reg.pipe_xmm d) ~d2:nr
            ~lat:12 ~port:Pipeline.p_aes;
      }
  | Insn.Aesimc (d, s) -> Uaesimc { d; s }
  | Insn.Vext_high (d, s) ->
    Uvext_high
      {
        d;
        s;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_xmm s) ~s2:nr ~s3:nr ~d1:(Reg.pipe_xmm d) ~d2:nr
            ~lat:3 ~port:Pipeline.p_special;
      }
  | Insn.Vins_high (d, s) ->
    Uvins_high
      {
        d;
        s;
        meta =
          Pipeline.pack ~s1:(Reg.pipe_xmm s) ~s2:(Reg.pipe_xmm d) ~s3:nr
            ~d1:(Reg.pipe_xmm d) ~d2:nr ~lat:3 ~port:Pipeline.p_special;
      }
  | Insn.Halt | Insn.Jmp _ | Insn.Jcc _ | Insn.Jmp_r _ | Insn.Call _ | Insn.Call_r _
  | Insn.Ret | Insn.Syscall | Insn.Mfence | Insn.Cpuid | Insn.Wrpkru | Insn.Vmfunc
  | Insn.Vmcall ->
    (* Terminators; [terminator_of] handles them. *)
    assert false

let is_terminator (insn : Insn.t) =
  match insn with
  | Insn.Halt | Insn.Jmp _ | Insn.Jcc _ | Insn.Jmp_r _ | Insn.Call _ | Insn.Call_r _
  | Insn.Ret | Insn.Syscall | Insn.Mfence | Insn.Cpuid | Insn.Wrpkru | Insn.Vmfunc
  | Insn.Vmcall -> true
  | _ -> false

let terminator_of (insn : Insn.t) : terminator =
  match insn with
  | Insn.Halt -> Term_halt
  | Insn.Jmp tgt -> Term_jmp { target = tgt.Insn.tidx }
  | Insn.Jcc (cond, tgt) -> Term_jcc { cond; target = tgt.Insn.tidx }
  | Insn.Call tgt -> Term_call { target = tgt.Insn.tidx }
  | Insn.Call_r r -> Term_call_r { r }
  | Insn.Jmp_r r -> Term_jmp_r { r }
  | Insn.Ret -> Term_ret
  | Insn.Syscall | Insn.Mfence | Insn.Cpuid | Insn.Wrpkru | Insn.Vmfunc | Insn.Vmcall ->
    (* Serializing/handler instructions: interpreter semantics, and the
       chain must end because their handlers may attach hooks or swap the
       program. *)
    Term_exec insn
  | _ -> assert false

let compile cache entry =
  let code = cache.code in
  let len = Array.length code in
  (* Straight-line extent: [entry, stop) are uops, [stop] the terminator. *)
  let stop = ref entry in
  while !stop < len && not (is_terminator code.(!stop)) do
    incr stop
  done;
  let n = !stop - entry in
  cache.compile_count <- cache.compile_count + 1;
  {
    entry;
    uops = Array.init n (fun i -> uop_of code.(entry + i));
    term = (if !stop < len then terminator_of code.(!stop) else Term_fall_off);
    term_idx = !stop;
    bgen = cache.gen;
    succ_taken = dummy_block;
    succ_fall = dummy_block;
    exec_count = 0;
    taken_count = 0;
    fall_count = 0;
    dyn_target = -1;
    dyn_votes = 0;
    dyn_total = 0;
  }

let get cache entry =
  let b = cache.blocks.(entry) in
  if b != dummy_block && b.bgen = cache.gen then b
  else begin
    let b = compile cache entry in
    cache.blocks.(entry) <- b;
    b
  end
