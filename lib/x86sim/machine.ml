type t = {
  shared : Mmu.shared;
  cpus : Cpu.t array;
}

let create ?(vcpus = 1) ?stack_pages ?max_frames () =
  if vcpus < 1 then invalid_arg "Machine.create: need at least one vCPU";
  let shared = Mmu.create_shared ?max_frames () in
  (* Explicit order: core ids are attach order, and stacks derive from
     core ids, so construction must be index order — [Array.init]'s
     application order is unspecified. *)
  let cpu0 = Cpu.create_on ?stack_pages (Mmu.attach shared) in
  let cpus = Array.make vcpus cpu0 in
  for i = 1 to vcpus - 1 do
    cpus.(i) <- Cpu.create_on ?stack_pages (Mmu.attach shared)
  done;
  { shared; cpus }

let vcpus t = Array.length t.cpus
let cpu t i = t.cpus.(i)
let cpus t = t.cpus
let shared t = t.shared

let default_quantum = 1000

(* Take a pending TLB-shootdown interrupt, if any, before the core runs
   its quantum: flush the TLB (via acknowledge), drop the translated-code
   cache (a real shootdown's munmap/mprotect can retarget code pages, and
   the predecoded blocks cache permission-dependent fast paths), and
   charge delivery cost. *)
let deliver_shootdown cpu =
  if Mmu.acknowledge_shootdown cpu.Cpu.mmu then begin
    Cpu.flush_translations cpu;
    Pipeline.issue cpu.Cpu.pipe ~serialize:true ~lat:Cpu.ipi_deliver_cost
      ~port:Pipeline.p_special ()
  end

let run ?(fuel = 50_000_000) ?(quantum = default_quantum) t =
  if quantum < 1 then invalid_arg "Machine.run: quantum must be positive";
  if fuel < 0 then invalid_arg "Machine.run: fuel must be non-negative";
  let n = Array.length t.cpus in
  let remaining = Array.make n fuel in
  (* Round-robin, deterministically: core 0 runs a quantum, then core 1,
     ... wrapping until every core is halted or out of fuel. Each core's
     fuel consumption is measured as its retired-instruction delta —
     [Cpu.run]'s budget accounting decrements exactly once per retired
     instruction (EPT-retried attempts are cancelled on both sides), so
     chaining quanta is observationally identical to one long run. *)
  let continue = ref true in
  while !continue do
    let progressed = ref false in
    for i = 0 to n - 1 do
      let cpu = t.cpus.(i) in
      if (not cpu.Cpu.halted) && remaining.(i) > 0 then begin
        deliver_shootdown cpu;
        let before = cpu.Cpu.counters.Cpu.insns in
        let status = Cpu.run ~fuel:(min quantum remaining.(i)) cpu in
        let consumed = cpu.Cpu.counters.Cpu.insns - before in
        remaining.(i) <- remaining.(i) - consumed;
        if consumed > 0 || status = Cpu.Halted then progressed := true
      end
    done;
    let live = ref false in
    for i = 0 to n - 1 do
      if (not t.cpus.(i).Cpu.halted) && remaining.(i) > 0 then live := true
    done;
    (* The progress guard can only trip if a core burns zero fuel without
       halting — impossible today, but it turns any future accounting bug
       into termination rather than a hang. *)
    continue := !live && !progressed
  done;
  let all_halted = Array.for_all (fun c -> c.Cpu.halted) t.cpus in
  if all_halted then Cpu.Halted else Cpu.Out_of_fuel

let total_insns t = Array.fold_left (fun a c -> a + c.Cpu.counters.Cpu.insns) 0 t.cpus

let max_cycles t =
  Array.fold_left (fun a c -> Float.max a (Cpu.cycles c)) 0.0 t.cpus
