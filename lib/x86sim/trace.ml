(* Profile-guided superblock formation and registry. The hot executor
   lives in Cpu.exec_trace (it needs the uop interpreter); everything
   that can be decided off the hot path — which chains to stitch, which
   checks to hoist, when to tear traces down — lives here. *)

type exit_kind =
  | X_jmp of { target : int }
  | X_jcc of { cond : Insn.cond; target : int; fall : int; predict_taken : bool }
  | X_call of { target : int; retaddr : int }
  | X_call_r of { r : int; retaddr : int; predicted : int }
  | X_jmp_r of { r : int; predicted : int }
  | X_ret of { predicted : int }

type seg = {
  sg_blk : Ublock.block;
  sg_uops : Ublock.uop array;
  sg_rips : int array;
  sg_exit : exit_kind;
}

type trace = {
  tr_entry : int;
  tr_gen : int;
  tr_segs : seg array;
  tr_loops : bool;
  tr_prologue : Ublock.uop array;
  tr_prologue_rips : int array;
  tr_insns : int;
  mutable tr_execs : int;
  mutable tr_side_exits : int;
  mutable tr_cycles : float;
  mutable tr_live : bool;
}

(* Zero-length arrays are shared atoms, but the executor compares with
   physical equality, so pin one canonical instance. *)
let no_rips : int array = [||]

let dummy_trace =
  {
    tr_entry = -1;
    tr_gen = -1;
    tr_segs = [||];
    tr_loops = false;
    tr_prologue = [||];
    tr_prologue_rips = no_rips;
    tr_insns = 0;
    tr_execs = 0;
    tr_side_exits = 0;
    tr_cycles = 0.0;
    tr_live = false;
  }

type tier = {
  code_len : int;
  mutable enabled : bool;
  mutable hot_threshold : int;
  mutable min_samples : int;
  mutable by_entry : trace array;
  mutable formed : trace list;
  mutable formed_count : int;
  mutable invalidated_count : int;
  mutable covered_insns : int;
  mutable hoisted_checks : int;
  mutable hoist_facts : bool array;
  mutable rec_entry : int;
  mutable rec_rips : int array;
  mutable rec_active : bool;
}

(* 64 block entries before a chain is considered hot: low enough that a
   benchmark's main loop tiers up almost immediately, high enough that
   one-shot startup code never pays formation. *)
let default_hot_threshold = 64

(* Edge-profile confidence floor: a jcc direction or indirect majority is
   trusted once this many exits were recorded (with a 3:1 direction bias,
   below). *)
let default_min_samples = 12

(* Growth bounds. 32 segments / 4096 instructions comfortably cover every
   loop body in the benchmark suite while keeping a single trace's
   metadata small. *)
let max_segs = 32
let max_insns = 4096

let create ~code_len =
  {
    code_len;
    enabled = true;
    hot_threshold = default_hot_threshold;
    min_samples = default_min_samples;
    by_entry = Array.make (max code_len 1) dummy_trace;
    formed = [];
    formed_count = 0;
    invalidated_count = 0;
    covered_insns = 0;
    hoisted_checks = 0;
    hoist_facts = [||];
    rec_entry = 0;
    rec_rips = no_rips;
    rec_active = false;
  }

let recreate old ~code_len =
  let t = create ~code_len in
  t.enabled <- old.enabled;
  t.hot_threshold <- old.hot_threshold;
  t.min_samples <- old.min_samples;
  t

let[@inline] at tier entry = Array.unsafe_get tier.by_entry entry

let invalidate_all tier =
  (match tier.formed with
  | [] -> ()
  | live ->
    List.iter
      (fun tr ->
        tr.tr_live <- false;
        tier.by_entry.(tr.tr_entry) <- dummy_trace;
        tier.invalidated_count <- tier.invalidated_count + 1)
      live;
    tier.formed <- []);
  (* A flush means the code may have changed under the facts. *)
  tier.hoist_facts <- [||]

let set_hot_threshold tier n = tier.hot_threshold <- max 1 n

let set_enabled tier on =
  if on && not tier.enabled then begin
    tier.enabled <- true;
    if tier.hot_threshold = max_int then tier.hot_threshold <- default_hot_threshold
  end
  else if (not on) && tier.enabled then begin
    tier.enabled <- false;
    tier.hot_threshold <- max_int;
    invalidate_all tier
  end

let set_min_samples tier n = tier.min_samples <- max 1 n

let install_hoist_facts tier facts =
  (* Re-form under the new facts; live traces were built without them. *)
  invalidate_all tier;
  tier.hoist_facts <- facts

(* ------------------------------------------------------------------ *)
(* Formation                                                           *)
(* ------------------------------------------------------------------ *)

(* The predicted exit of [b] plus the predicted next entry, or [None] if
   the profile doesn't support baking a direction. *)
let predict tier (b : Ublock.block) : (exit_kind * int) option =
  let ms = tier.min_samples in
  match b.Ublock.term with
  | Ublock.Term_jmp { target } -> Some (X_jmp { target }, target)
  | Ublock.Term_call { target } ->
    Some (X_call { target; retaddr = b.Ublock.term_idx + 1 }, target)
  | Ublock.Term_jcc { cond; target } ->
    let fall = b.Ublock.term_idx + 1 in
    let tk = b.Ublock.taken_count and fl = b.Ublock.fall_count in
    if tk + fl >= ms && tk >= 3 * fl then
      Some (X_jcc { cond; target; fall; predict_taken = true }, target)
    else if tk + fl >= ms && fl >= 3 * tk then
      Some (X_jcc { cond; target; fall; predict_taken = false }, fall)
    else None
  | Ublock.Term_call_r { r } ->
    if b.Ublock.dyn_total >= ms && 2 * b.Ublock.dyn_votes >= b.Ublock.dyn_total
       && b.Ublock.dyn_target >= 0
    then
      Some
        ( X_call_r { r; retaddr = b.Ublock.term_idx + 1; predicted = b.Ublock.dyn_target },
          b.Ublock.dyn_target )
    else None
  | Ublock.Term_jmp_r { r } ->
    if b.Ublock.dyn_total >= ms && 2 * b.Ublock.dyn_votes >= b.Ublock.dyn_total
       && b.Ublock.dyn_target >= 0
    then Some (X_jmp_r { r; predicted = b.Ublock.dyn_target }, b.Ublock.dyn_target)
    else None
  | Ublock.Term_ret ->
    if b.Ublock.dyn_total >= ms && 2 * b.Ublock.dyn_votes >= b.Ublock.dyn_total
       && b.Ublock.dyn_target >= 0
    then Some (X_ret { predicted = b.Ublock.dyn_target }, b.Ublock.dyn_target)
    else None
  | Ublock.Term_halt | Ublock.Term_exec _ | Ublock.Term_fall_off -> None

(* {2 Gate-check hoisting} *)

(* Whether [u] writes general register [r] / bound register [b]: the
   kill-set test behind hoist soundness. Conservative by construction —
   anything not listed is assumed to write nothing relevant (stores,
   compares, checks), and vector ops touch only xmm state. *)
let writes_gpr (u : Ublock.uop) r =
  match u with
  | Ublock.Umov_rr { d; _ }
  | Ublock.Umov_ri { d; _ }
  | Ublock.Uload_bd { d; _ }
  | Ublock.Uload_gen { d; _ }
  | Ublock.Ulea { d; _ }
  | Ublock.Ulea32 { d; _ }
  | Ublock.Ualu_rr { d; _ }
  | Ublock.Ualu_ri { d; _ }
  | Ublock.Upop { d }
  | Ublock.Umovq_rx { r = d; _ } -> d = r
  | Ublock.Urdpkru _ -> r = Reg.rax
  | _ -> false

let writes_bnd (u : Ublock.uop) b =
  match u with
  | Ublock.Ubnd_set { b = d; _ } | Ublock.Ubndmov_load { b = d; _ } -> d = b
  | _ -> false

(* Uop kinds eligible for prologue motion: the MPX check-site shape
   ([lea scratch, ea; bndcu b, scratch] — the lea must travel with the
   check it feeds, and the in-body access through scratch then reads the
   prologue-computed value). All are free of memory writes and flag
   ([cmp]) effects, so running them once at entry instead of every
   restart perturbs nothing but their own cost — which is the point. *)
let hoist_candidate (u : Ublock.uop) =
  match u with Ublock.Ulea _ | Ublock.Ulea32 _ | Ublock.Ubndc _ -> true | _ -> false

(* gprs a candidate reads / writes: the registers whose stability across
   loop restarts the installed fact asserts and [plan_hoist] re-verifies. *)
let candidate_regs (u : Ublock.uop) =
  match u with
  | Ublock.Ulea { d; base; index; _ } | Ublock.Ulea32 { d; base; index; _ } ->
    d :: List.filter (fun r -> r >= 0) [ base; index ]
  | Ublock.Ubndc { r; _ } -> [ r ]
  | _ -> []

(* Decide the hoist set for a candidate trace: every fact-marked
   candidate uop across all [blocks], taken as one group, or [None] if
   the group fails the defensive soundness check. Facts assert
   loop-invariance (the embedding layer derived them from the same
   conditions [Gate_opt]'s static check motion proves); this check
   re-establishes the part that matters for trace semantics without
   trusting the fact blindly:
   - the group must contain a bounds check (hoisting a bare lea is not
     check motion), and no register the group reads or writes may be
     written by any uop {e outside} the group, anywhere in the trace
     body — so the prologue-computed scratch value is exactly what every
     restart would have recomputed;
   - no uop in the body may write a hoisted check's bound register;
   - rsp never qualifies: call/ret/push/pop move it implicitly, past
     [writes_gpr]'s sight. *)
let plan_hoist tier (blocks : Ublock.block list) =
  let facts = tier.hoist_facts in
  let nfacts = Array.length facts in
  let flags =
    List.map
      (fun (blk : Ublock.block) ->
        let body = blk.Ublock.uops in
        Array.init (Array.length body) (fun i ->
          let rip = blk.Ublock.entry + i in
          rip < nfacts && Array.unsafe_get facts rip && hoist_candidate body.(i)))
      blocks
  in
  let hoisted =
    List.concat
      (List.map2
         (fun (blk : Ublock.block) fl ->
           List.filteri (fun i _ -> fl.(i)) (Array.to_list blk.Ublock.uops))
         blocks flags)
  in
  let bnds = List.filter_map (function Ublock.Ubndc { b; _ } -> Some b | _ -> None) hoisted in
  let regs = List.concat_map candidate_regs hoisted in
  let sound =
    bnds <> []
    && List.for_all (fun r -> r <> Reg.rsp) regs
    && List.for_all2
         (fun (blk : Ublock.block) fl ->
           let body = blk.Ublock.uops in
           let ok = ref true in
           for i = 0 to Array.length body - 1 do
             if not fl.(i) then begin
               let v = Array.unsafe_get body i in
               if List.exists (fun r -> writes_gpr v r) regs
                  || List.exists (fun b -> writes_bnd v b) bnds
               then ok := false
             end
           done;
           !ok)
         blocks flags
  in
  if sound then Some flags else None

(* Split [blk]'s body along the planned hoist [flags] into (kept uops +
   their rips, hoisted uops + rips). Identity mapping is preserved
   ([no_rips]) when nothing was hoisted from this block. *)
let apply_hoist (blk : Ublock.block) flags =
  let body = blk.Ublock.uops in
  let n = Array.length body in
  if not (Array.exists (fun x -> x) flags) then (body, no_rips, [], [])
  else begin
    let kept = ref [] and kept_rips = ref [] and pro = ref [] and pro_rips = ref [] in
    for i = n - 1 downto 0 do
      let rip = blk.Ublock.entry + i in
      if flags.(i) then begin
        pro := body.(i) :: !pro;
        pro_rips := rip :: !pro_rips
      end
      else begin
        kept := body.(i) :: !kept;
        kept_rips := rip :: !kept_rips
      end
    done;
    (Array.of_list !kept, Array.of_list !kept_rips, !pro, !pro_rips)
  end

let static_insns (b : Ublock.block) =
  Array.length b.Ublock.uops
  + (match b.Ublock.term with Ublock.Term_fall_off -> 0 | _ -> 1)

let try_form tier cache (b0 : Ublock.block) =
  let entry = b0.Ublock.entry in
  if tier.enabled
     && tier.code_len = Ublock.code_length cache
     && entry >= 0 && entry < tier.code_len
     && at tier entry == dummy_trace
  then begin
    (* Walk the predicted chain, collecting (block, exit) pairs. A block
       whose exit is unpredictable is NOT included: the previous
       segment's exit already leaves rip at its entry, and the block
       tier takes over from there. *)
    let rec walk (blk : Ublock.block) acc n_insns visited =
      if List.length acc >= max_segs || n_insns > max_insns then (List.rev acc, false)
      else
        match predict tier blk with
        | None -> (List.rev acc, false)
        | Some (x, next) ->
          let acc = (blk, x) :: acc in
          if next = entry then (List.rev acc, true)
          else if next < 0 || next >= tier.code_len || List.mem next visited then
            (List.rev acc, false)
          else
            walk (Ublock.get cache next) acc (n_insns + static_insns blk) (next :: visited)
    in
    let chain, loops = walk b0 [] 0 [ entry ] in
    let n = List.length chain in
    if n >= 2 || (n = 1 && loops) then begin
      let blocks = List.map fst chain in
      let plan =
        if Array.length tier.hoist_facts > 0 then plan_hoist tier blocks else None
      in
      let pro = ref [] and pro_rips = ref [] in
      let segs =
        match plan with
        | None ->
          List.map
            (fun ((blk : Ublock.block), x) ->
              { sg_blk = blk; sg_uops = blk.Ublock.uops; sg_rips = no_rips; sg_exit = x })
            chain
        | Some flags ->
          List.map2
            (fun ((blk : Ublock.block), x) fl ->
              let kept, kept_rips, p, pr = apply_hoist blk fl in
              pro := !pro @ p;
              pro_rips := !pro_rips @ pr;
              { sg_blk = blk; sg_uops = kept; sg_rips = kept_rips; sg_exit = x })
            chain flags
      in
      let tr =
        {
          tr_entry = entry;
          tr_gen = Ublock.generation cache;
          tr_segs = Array.of_list segs;
          tr_loops = loops;
          tr_prologue = Array.of_list !pro;
          tr_prologue_rips = Array.of_list !pro_rips;
          tr_insns = List.fold_left (fun a b -> a + static_insns b) 0 blocks;
          tr_execs = 0;
          tr_side_exits = 0;
          tr_cycles = 0.0;
          tr_live = true;
        }
      in
      tier.by_entry.(entry) <- tr;
      tier.formed <- tr :: tier.formed;
      tier.formed_count <- tier.formed_count + 1;
      tier.hoisted_checks <- tier.hoisted_checks + Array.length tr.tr_prologue
    end
  end

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

type stat = {
  t_entry : int;
  t_blocks : int list;
  t_insns : int;
  t_execs : int;
  t_side_exits : int;
  t_cycles : float;
  t_loops : bool;
  t_hoisted : int;
}

let stat_of (tr : trace) =
  {
    t_entry = tr.tr_entry;
    t_blocks =
      Array.to_list (Array.map (fun s -> s.sg_blk.Ublock.entry) tr.tr_segs);
    t_insns = tr.tr_insns;
    t_execs = tr.tr_execs;
    t_side_exits = tr.tr_side_exits;
    t_cycles = tr.tr_cycles;
    t_loops = tr.tr_loops;
    t_hoisted = Array.length tr.tr_prologue;
  }

let stats tier = List.rev_map stat_of tier.formed
let live_count tier = List.length tier.formed
