(* Profile-guided superblock formation and registry. The hot executor
   lives in Cpu.exec_trace (it needs the uop interpreter); everything
   that can be decided off the hot path — which chains to stitch, which
   checks to hoist, when to tear traces down — lives here. *)

type exit_kind =
  | X_jmp of { target : int }
  | X_jcc of { cond : Insn.cond; target : int; fall : int; predict_taken : bool }
  | X_call of { target : int; retaddr : int }
  | X_call_r of { r : int; retaddr : int; predicted : int }
  | X_jmp_r of { r : int; predicted : int }
  | X_ret of { predicted : int }

type seg = {
  sg_blk : Ublock.block;
  sg_uops : Ublock.uop array;
  sg_rips : int array;
  sg_exit : exit_kind;
  sg_opt : Traceopt.oseg option;
}

type trace = {
  tr_entry : int;
  tr_gen : int;
  tr_segs : seg array;
  tr_loops : bool;
  tr_prologue : Ublock.uop array;
  tr_prologue_rips : int array;
  tr_insns : int;
  tr_slot_vpn : int array;
  tr_slot_info : int array;
  tr_slot_tok : int array;
  mutable tr_execs : int;
  mutable tr_side_exits : int;
  mutable tr_cycles : float;
  mutable tr_live : bool;
}

(* Zero-length arrays are shared atoms, but the executor compares with
   physical equality, so pin one canonical instance. *)
let no_rips : int array = [||]

let dummy_trace =
  {
    tr_entry = -1;
    tr_gen = -1;
    tr_segs = [||];
    tr_loops = false;
    tr_prologue = [||];
    tr_prologue_rips = no_rips;
    tr_insns = 0;
    tr_slot_vpn = [||];
    tr_slot_info = [||];
    tr_slot_tok = [||];
    tr_execs = 0;
    tr_side_exits = 0;
    tr_cycles = 0.0;
    tr_live = false;
  }

type tier = {
  code_len : int;
  mutable enabled : bool;
  mutable optimize : bool;
  mutable hot_threshold : int;
  mutable min_samples : int;
  mutable jcc_bias : int;
  mutable by_entry : trace array;
  mutable formed : trace list;
  mutable formed_count : int;
  mutable invalidated_count : int;
  mutable covered_insns : int;
  mutable hoisted_checks : int;
  mutable fused_uops : int;
  mutable cached_slots : int;
  mutable dead_flags : int;
  mutable inline_hits : int;
  mutable inline_misses : int;
  mutable inline_dead : bool;
  mutable abort_cold_branch : int;
  mutable abort_indirect_minority : int;
  mutable abort_cap_hit : int;
  mutable abort_handler_term : int;
  mutable hoist_facts : bool array;
  mutable rec_entry : int;
  mutable rec_rips : int array;
  mutable rec_active : bool;
  mutable rec_lazy : bool;
  mutable rec_issue0 : int;
}

(* 64 block entries before a chain is considered hot: low enough that a
   benchmark's main loop tiers up almost immediately, high enough that
   one-shot startup code never pays formation. *)
let default_hot_threshold = 64

(* Edge-profile confidence floor: a jcc direction or indirect majority is
   trusted once this many exits were recorded (with a 3:1 direction bias,
   below). *)
let default_min_samples = 12

(* Growth bounds. 32 segments / 4096 instructions comfortably cover every
   loop body in the benchmark suite while keeping a single trace's
   metadata small. *)
let max_segs = 32
let max_insns = 4096

(* Direction-bias numerator for baking a jcc exit direction: the winning
   side must outnumber the other [jcc_bias]:1. 3:1 keeps side-exit rates
   low on the benchmark suite without freezing out skewed-but-hot loop
   branches. *)
let default_jcc_bias = 3

let create ~code_len =
  {
    code_len;
    enabled = true;
    optimize = true;
    hot_threshold = default_hot_threshold;
    min_samples = default_min_samples;
    jcc_bias = default_jcc_bias;
    by_entry = Array.make (max code_len 1) dummy_trace;
    formed = [];
    formed_count = 0;
    invalidated_count = 0;
    covered_insns = 0;
    hoisted_checks = 0;
    fused_uops = 0;
    cached_slots = 0;
    dead_flags = 0;
    inline_hits = 0;
    inline_misses = 0;
    inline_dead = false;
    abort_cold_branch = 0;
    abort_indirect_minority = 0;
    abort_cap_hit = 0;
    abort_handler_term = 0;
    hoist_facts = [||];
    rec_entry = 0;
    rec_rips = no_rips;
    rec_active = false;
    rec_lazy = false;
    rec_issue0 = 0;
  }

let recreate old ~code_len =
  let t = create ~code_len in
  t.enabled <- old.enabled;
  t.optimize <- old.optimize;
  t.hot_threshold <- old.hot_threshold;
  t.min_samples <- old.min_samples;
  t.jcc_bias <- old.jcc_bias;
  t

let[@inline] at tier entry = Array.unsafe_get tier.by_entry entry

let invalidate_all tier =
  (match tier.formed with
  | [] -> ()
  | live ->
    List.iter
      (fun tr ->
        tr.tr_live <- false;
        tier.by_entry.(tr.tr_entry) <- dummy_trace;
        tier.invalidated_count <- tier.invalidated_count + 1)
      live;
    tier.formed <- []);
  (* A flush means the code may have changed under the facts. *)
  tier.hoist_facts <- [||]

let set_hot_threshold tier n = tier.hot_threshold <- max 1 n

let set_enabled tier on =
  if on && not tier.enabled then begin
    tier.enabled <- true;
    if tier.hot_threshold = max_int then tier.hot_threshold <- default_hot_threshold
  end
  else if (not on) && tier.enabled then begin
    tier.enabled <- false;
    tier.hot_threshold <- max_int;
    invalidate_all tier
  end

let set_min_samples tier n = tier.min_samples <- max 1 n

let set_optimize tier on =
  if on <> tier.optimize then begin
    tier.optimize <- on;
    (* Installed bodies were rewritten under the other setting. *)
    invalidate_all tier
  end

let set_jcc_bias tier n = tier.jcc_bias <- max 1 n

let install_hoist_facts tier facts =
  (* Re-form under the new facts; live traces were built without them. *)
  invalidate_all tier;
  tier.hoist_facts <- facts

(* ------------------------------------------------------------------ *)
(* Formation                                                           *)
(* ------------------------------------------------------------------ *)

(* The predicted exit of [b] plus the predicted next entry, or [None] if
   the profile doesn't support baking a direction. A [None] ends the
   formation walk; the per-reason counters below record {e why} chains
   stop where they do — the coverage-diagnosis signal [report] and
   [edgeprof] surface (low trace coverage is almost always one of these
   four reasons dominating). *)
let predict tier (b : Ublock.block) : (exit_kind * int) option =
  let ms = tier.min_samples in
  match b.Ublock.term with
  | Ublock.Term_jmp { target } -> Some (X_jmp { target }, target)
  | Ublock.Term_call { target } ->
    Some (X_call { target; retaddr = b.Ublock.term_idx + 1 }, target)
  | Ublock.Term_jcc { cond; target } ->
    let fall = b.Ublock.term_idx + 1 in
    let bias = tier.jcc_bias in
    let tk = b.Ublock.taken_count and fl = b.Ublock.fall_count in
    if tk + fl >= ms && tk >= bias * fl then
      Some (X_jcc { cond; target; fall; predict_taken = true }, target)
    else if tk + fl >= ms && fl >= bias * tk then
      Some (X_jcc { cond; target; fall; predict_taken = false }, fall)
    else begin
      tier.abort_cold_branch <- tier.abort_cold_branch + 1;
      None
    end
  | Ublock.Term_call_r { r } ->
    if b.Ublock.dyn_total >= ms && 2 * b.Ublock.dyn_votes >= b.Ublock.dyn_total
       && b.Ublock.dyn_target >= 0
    then
      Some
        ( X_call_r { r; retaddr = b.Ublock.term_idx + 1; predicted = b.Ublock.dyn_target },
          b.Ublock.dyn_target )
    else begin
      tier.abort_indirect_minority <- tier.abort_indirect_minority + 1;
      None
    end
  | Ublock.Term_jmp_r { r } ->
    if b.Ublock.dyn_total >= ms && 2 * b.Ublock.dyn_votes >= b.Ublock.dyn_total
       && b.Ublock.dyn_target >= 0
    then Some (X_jmp_r { r; predicted = b.Ublock.dyn_target }, b.Ublock.dyn_target)
    else begin
      tier.abort_indirect_minority <- tier.abort_indirect_minority + 1;
      None
    end
  | Ublock.Term_ret ->
    if b.Ublock.dyn_total >= ms && 2 * b.Ublock.dyn_votes >= b.Ublock.dyn_total
       && b.Ublock.dyn_target >= 0
    then Some (X_ret { predicted = b.Ublock.dyn_target }, b.Ublock.dyn_target)
    else begin
      tier.abort_indirect_minority <- tier.abort_indirect_minority + 1;
      None
    end
  | Ublock.Term_halt | Ublock.Term_exec _ | Ublock.Term_fall_off ->
    tier.abort_handler_term <- tier.abort_handler_term + 1;
    None

(* {2 Gate-check hoisting} *)

(* Whether [u] writes general register [r] / bound register [b]: the
   kill-set test behind hoist soundness. Conservative by construction —
   anything not listed is assumed to write nothing relevant (stores,
   compares, checks), and vector ops touch only xmm state. *)
let writes_gpr (u : Ublock.uop) r =
  match u with
  | Ublock.Umov_rr { d; _ }
  | Ublock.Umov_ri { d; _ }
  | Ublock.Uload_bd { d; _ }
  | Ublock.Uload_gen { d; _ }
  | Ublock.Ulea { d; _ }
  | Ublock.Ulea32 { d; _ }
  | Ublock.Ualu_rr { d; _ }
  | Ublock.Ualu_ri { d; _ }
  | Ublock.Upop { d }
  | Ublock.Umovq_rx { r = d; _ } -> d = r
  | Ublock.Urdpkru _ -> r = Reg.rax
  | _ -> false

let writes_bnd (u : Ublock.uop) b =
  match u with
  | Ublock.Ubnd_set { b = d; _ } | Ublock.Ubndmov_load { b = d; _ } -> d = b
  | _ -> false

(* Uop kinds eligible for prologue motion: the MPX check-site shape
   ([lea scratch, ea; bndcu b, scratch] — the lea must travel with the
   check it feeds, and the in-body access through scratch then reads the
   prologue-computed value). All are free of memory writes and flag
   ([cmp]) effects, so running them once at entry instead of every
   restart perturbs nothing but their own cost — which is the point. *)
let hoist_candidate (u : Ublock.uop) =
  match u with Ublock.Ulea _ | Ublock.Ulea32 _ | Ublock.Ubndc _ -> true | _ -> false

(* gprs a candidate reads / writes: the registers whose stability across
   loop restarts the installed fact asserts and [plan_hoist] re-verifies. *)
let candidate_regs (u : Ublock.uop) =
  match u with
  | Ublock.Ulea { d; base; index; _ } | Ublock.Ulea32 { d; base; index; _ } ->
    d :: List.filter (fun r -> r >= 0) [ base; index ]
  | Ublock.Ubndc { r; _ } -> [ r ]
  | _ -> []

(* Decide the hoist set for a candidate trace: every fact-marked
   candidate uop across all [blocks], taken as one group, or [None] if
   the group fails the defensive soundness check. Facts assert
   loop-invariance (the embedding layer derived them from the same
   conditions [Gate_opt]'s static check motion proves); this check
   re-establishes the part that matters for trace semantics without
   trusting the fact blindly:
   - the group must contain a bounds check (hoisting a bare lea is not
     check motion), and no register the group reads or writes may be
     written by any uop {e outside} the group, anywhere in the trace
     body — so the prologue-computed scratch value is exactly what every
     restart would have recomputed;
   - no uop in the body may write a hoisted check's bound register;
   - rsp never qualifies: call/ret/push/pop move it implicitly, past
     [writes_gpr]'s sight. *)
let plan_hoist tier (blocks : Ublock.block list) =
  let facts = tier.hoist_facts in
  let nfacts = Array.length facts in
  let flags =
    List.map
      (fun (blk : Ublock.block) ->
        let body = blk.Ublock.uops in
        Array.init (Array.length body) (fun i ->
          let rip = blk.Ublock.entry + i in
          rip < nfacts && Array.unsafe_get facts rip && hoist_candidate body.(i)))
      blocks
  in
  let hoisted =
    List.concat
      (List.map2
         (fun (blk : Ublock.block) fl ->
           List.filteri (fun i _ -> fl.(i)) (Array.to_list blk.Ublock.uops))
         blocks flags)
  in
  let bnds = List.filter_map (function Ublock.Ubndc { b; _ } -> Some b | _ -> None) hoisted in
  let regs = List.concat_map candidate_regs hoisted in
  let sound =
    bnds <> []
    && List.for_all (fun r -> r <> Reg.rsp) regs
    && List.for_all2
         (fun (blk : Ublock.block) fl ->
           let body = blk.Ublock.uops in
           let ok = ref true in
           for i = 0 to Array.length body - 1 do
             if not fl.(i) then begin
               let v = Array.unsafe_get body i in
               if List.exists (fun r -> writes_gpr v r) regs
                  || List.exists (fun b -> writes_bnd v b) bnds
               then ok := false
             end
           done;
           !ok)
         blocks flags
  in
  if sound then Some flags else None

(* Split [blk]'s body along the planned hoist [flags] into (kept uops +
   their rips, hoisted uops + rips). Identity mapping is preserved
   ([no_rips]) when nothing was hoisted from this block. *)
let apply_hoist (blk : Ublock.block) flags =
  let body = blk.Ublock.uops in
  let n = Array.length body in
  if not (Array.exists (fun x -> x) flags) then (body, no_rips, [], [])
  else begin
    let kept = ref [] and kept_rips = ref [] and pro = ref [] and pro_rips = ref [] in
    for i = n - 1 downto 0 do
      let rip = blk.Ublock.entry + i in
      if flags.(i) then begin
        pro := body.(i) :: !pro;
        pro_rips := rip :: !pro_rips
      end
      else begin
        kept := body.(i) :: !kept;
        kept_rips := rip :: !kept_rips
      end
    done;
    (Array.of_list !kept, Array.of_list !kept_rips, !pro, !pro_rips)
  end

let static_insns (b : Ublock.block) =
  Array.length b.Ublock.uops
  + (match b.Ublock.term with Ublock.Term_fall_off -> 0 | _ -> 1)

let try_form tier cache (b0 : Ublock.block) =
  let entry = b0.Ublock.entry in
  if tier.enabled
     && tier.code_len = Ublock.code_length cache
     && entry >= 0 && entry < tier.code_len
     && at tier entry == dummy_trace
  then begin
    (* Walk the predicted chain, collecting (block, exit) pairs. A block
       whose exit is unpredictable is NOT included: the previous
       segment's exit already leaves rip at its entry, and the block
       tier takes over from there. *)
    let rec walk (blk : Ublock.block) acc n_insns visited =
      if List.length acc >= max_segs || n_insns > max_insns then begin
        tier.abort_cap_hit <- tier.abort_cap_hit + 1;
        (List.rev acc, false)
      end
      else
        match predict tier blk with
        | None -> (List.rev acc, false)
        | Some (x, next) ->
          let acc = (blk, x) :: acc in
          if next = entry then (List.rev acc, true)
          else if next < 0 || next >= tier.code_len || List.mem next visited then
            (List.rev acc, false)
          else
            walk (Ublock.get cache next) acc (n_insns + static_insns blk) (next :: visited)
    in
    let chain, loops = walk b0 [] 0 [ entry ] in
    let n = List.length chain in
    if n >= 2 || (n = 1 && loops) then begin
      let blocks = List.map fst chain in
      let plan =
        if Array.length tier.hoist_facts > 0 then plan_hoist tier blocks else None
      in
      let pro = ref [] and pro_rips = ref [] in
      (* (block, post-hoist body, body rips, exit) per segment. *)
      let raw =
        match plan with
        | None ->
          List.map
            (fun ((blk : Ublock.block), x) -> (blk, blk.Ublock.uops, no_rips, x))
            chain
        | Some flags ->
          List.map2
            (fun ((blk : Ublock.block), x) fl ->
              let kept, kept_rips, p, pr = apply_hoist blk fl in
              pro := !pro @ p;
              pro_rips := !pro_rips @ pr;
              (blk, kept, kept_rips, x))
            chain flags
      in
      (* Optimize the flat bodies before install. The rewritten bodies
         are observationally identical (Traceopt's contract); turning the
         pass off yields [sg_opt = None] everywhere and the executor runs
         the eager path on the raw bodies. *)
      let opt =
        if tier.optimize then begin
          let bodies = Array.of_list (List.map (fun (_, u, _, _) -> u) raw) in
          let exit_jcc =
            Array.of_list
              (List.map (fun (_, _, _, x) -> match x with X_jcc _ -> true | _ -> false) raw)
          in
          let exit_jmp =
            Array.of_list
              (List.map (fun (_, _, _, x) -> match x with X_jmp _ -> true | _ -> false) raw)
          in
          let r = Traceopt.optimize ~bodies ~exit_jcc ~exit_jmp ~loops in
          tier.fused_uops <- tier.fused_uops + r.Traceopt.r_fused;
          tier.cached_slots <- tier.cached_slots + r.Traceopt.r_slots;
          tier.dead_flags <- tier.dead_flags + r.Traceopt.r_nf;
          Some r
        end
        else None
      in
      let segs =
        List.mapi
          (fun i (blk, uops, rips, x) ->
            {
              sg_blk = blk;
              sg_uops = uops;
              sg_rips = rips;
              sg_exit = x;
              sg_opt =
                (match opt with
                | Some r -> Some r.Traceopt.r_segs.(i)
                | None -> None);
            })
          raw
      in
      let n_slots = match opt with Some r -> r.Traceopt.r_slots | None -> 0 in
      let tr =
        {
          tr_entry = entry;
          tr_gen = Ublock.generation cache;
          tr_segs = Array.of_list segs;
          tr_loops = loops;
          tr_prologue = Array.of_list !pro;
          tr_prologue_rips = Array.of_list !pro_rips;
          tr_insns = List.fold_left (fun a b -> a + static_insns b) 0 blocks;
          (* vpn -1 can never match a real page, so fresh slots miss. *)
          tr_slot_vpn = Array.make (max n_slots 1) (-1);
          tr_slot_info = Array.make (max n_slots 1) 0;
          tr_slot_tok = Array.make (max n_slots 1) 0;
          tr_execs = 0;
          tr_side_exits = 0;
          tr_cycles = 0.0;
          tr_live = true;
        }
      in
      tier.by_entry.(entry) <- tr;
      tier.formed <- tr :: tier.formed;
      tier.formed_count <- tier.formed_count + 1;
      tier.hoisted_checks <- tier.hoisted_checks + Array.length tr.tr_prologue
    end
  end

(* ------------------------------------------------------------------ *)
(* Observability                                                       *)
(* ------------------------------------------------------------------ *)

type stat = {
  t_entry : int;
  t_blocks : int list;
  t_insns : int;
  t_execs : int;
  t_side_exits : int;
  t_cycles : float;
  t_loops : bool;
  t_hoisted : int;
}

let stat_of (tr : trace) =
  {
    t_entry = tr.tr_entry;
    t_blocks =
      Array.to_list (Array.map (fun s -> s.sg_blk.Ublock.entry) tr.tr_segs);
    t_insns = tr.tr_insns;
    t_execs = tr.tr_execs;
    t_side_exits = tr.tr_side_exits;
    t_cycles = tr.tr_cycles;
    t_loops = tr.tr_loops;
    t_hoisted = Array.length tr.tr_prologue;
  }

let stats tier = List.rev_map stat_of tier.formed
let live_count tier = List.length tier.formed
