(** Execution summaries: one place that turns a finished {!Cpu.t} into the
    numbers a performance investigation wants — instruction mix, IPC,
    cache and TLB hit rates, protection-event counts. *)

type t = {
  insns : int;
  cycles : float;
  ipc : float;
  loads : int;
  stores : int;
  calls : int;
  rets : int;
  ind_branches : int;
  syscalls : int;
  bnd_checks : int;
  wrpkrus : int;
  vmfuncs : int;
  vmcalls : int;
  vm_exits : int;
  aes_ops : int;
  faults : int;
  l1_hit_rate : float;  (** of all data-cache accesses *)
  l2_hit_rate : float;  (** of accesses that missed L1 *)
  l3_hit_rate : float;  (** of accesses that missed L2 *)
  tlb_hit_rate : float;
  dram_accesses : int;
  l1_evictions : int;  (** live lines displaced per level (capacity/conflict) *)
  l2_evictions : int;
  l3_evictions : int;
  tlb_evictions : int;  (** live translations displaced by TLB fills *)
  tlb_walk_cycles : int;  (** total page-table-walk latency charged by TLB misses *)
}

val capture : Cpu.t -> t
(** On a multi-core machine, note that this core's L3/DRAM numbers are the
    {e shared tier's} socket-wide counters (see {!Cache.l3_hits}). *)

val capture_machine : Cpu.t array -> t
(** Machine-wide rollup over cores sharing one memory system: per-core
    state (L1/L2, TLB, instruction counters) sums; shared L3/DRAM counters
    are counted once; [cycles] is the makespan (slowest core) and [ipc]
    the aggregate throughput against it. Raises [Invalid_argument] on an
    empty array. *)

val to_string : t -> string
(** Multi-line human-readable rendering. *)

val to_json : t -> Ms_util.Json.t
(** Stable machine-readable form: an object with one field per record
    field, counters as [Int], rates/cycles as [Float]. Hit rates for
    levels that saw no traffic are 1.0 (never nan), so the JSON is always
    valid and aggregatable. *)

val print : Cpu.t -> unit
