(** Address-space layout conventions shared by the whole framework.

    Following the paper's address-based partitioning scheme (§5.4, Fig. 2),
    the 48-bit user address space is split at 64 TiB: everything below is
    the {e nonsensitive partition} (ordinary program data, stack, heap);
    safe regions live at or above {!sensitive_base}. The SFI mask forces
    any pointer below the split; the MPX scheme checks pointers against a
    single upper bound of {!sensitive_base}. *)

val sensitive_base : int
(** 64 TiB = [0x4000_0000_0000]: the partition split. *)

val sfi_mask : int
(** [0x3FFF_FFFF_FFFF]: ANDing any pointer with this confines it to the
    nonsensitive partition (the paper's [movabs]+[and] sequence). *)

val stack_top : int
(** Top of the initial stack (exclusive), just below the split. On a
    multi-core machine this is core 0's stack; core [i] stacks top out at
    [stack_top - i * stack_stride]. *)

val stack_stride : int
(** 16 MiB between per-core stack tops — far more than any stack grows, so
    sibling stacks (and their guard gaps) never collide. *)

val heap_base : int
(** Start of the conventional data/heap area. *)

val mmap_base : int
(** Where anonymous [mmap] allocations begin. *)

val addr_limit : int
(** Exclusive upper bound of the canonical user space modeled (128 TiB). *)
