(** Trace-lane uop optimizer.

    Rewrites a formed trace's flat uop segments before install
    ([Trace.try_form] calls {!optimize} once per formation), so the trace
    tier's steady-state loop dispatches fewer, fatter uops:

    - {b macro-fusion} of adjacent dependent pairs: a trailing cmp/test
      feeding the segment's jcc exit moves into the executor's exit stage
      ([os_flags]); the SFI [and]-mask feeding its own base+disp access
      and a [lea] feeding an MPX bound check each collapse into one fused
      uop ({!Ublock.uop}'s [Ufuse_*] shapes) that still performs both
      pipeline issues in the original order;
    - {b inline translation slots} on every 64-bit load/store uop
      ([U*_c] shapes): [r_slots] per-site slots, keyed on the
      {!Mmu.generation_token} contract, let a token-valid re-execution
      skip the TLB probe and walk while still posting the hit;
    - {b dead-flag elimination} ([U*_nf] shapes): an ALU flag write is
      elided when a later write provably reaches every observation point
      first — within a segment, or across an unconditional-jump boundary
      when the successor's first (non-faulting) uop overwrites the flags.
      In the boundary case [os_pend] names the elided write's destination
      register so the executor can re-materialize [cmp] from the register
      file in the one reachable stop point (fuel exhausted exactly at the
      successor's top, zero successor uops run).

    Every rewrite is observationally identical to the unoptimized
    segment: same architectural state, same fault points and faulting-rip
    values, same pipeline issues in the same order, same TLB/cache
    statistics and timing. The optimized body additionally supports lazy
    rip materialization: exactly one pipeline issue per covered
    instruction, in program order, so a fault's architectural rip is
    reconstructible from the issue delta alone (see [Cpu.exec_trace]).

    This module sits {e below} [Trace]: it speaks in raw uop arrays plus
    per-segment exit-shape booleans and never sees [Trace.seg]. *)

(** One optimized segment body. *)
type oseg = {
  os_uops : Ublock.uop array;  (** rewritten body (possibly shorter than the original) *)
  os_flags : Ublock.uop option;
      (** trailing cmp/test fused with a jcc exit, to run in the exit
          stage — after the body, before the condition is evaluated *)
  os_m : int;
      (** architectural instructions covered by [os_uops] + [os_flags]:
          the original (post-hoist) body length. The executor's batch
          settle and its fast-path fuel gate both use this. *)
  os_pend : int;
      (** destination register of a cross-boundary dead-flag elision, or
          [-1]: if the trace stops at the {e next} segment's top with zero
          of its uops run, the executor must do [cmp <- gpr.(os_pend)] *)
}

type result = {
  r_segs : oseg array;  (** one per input segment, same order *)
  r_slots : int;  (** inline translation slots assigned (trace-wide) *)
  r_fused : int;  (** macro-fused pairs (incl. exit-stage cmp/jcc fusions) *)
  r_nf : int;  (** dead flag writes elided *)
}

val optimize :
  bodies:Ublock.uop array array ->
  exit_jcc:bool array ->
  exit_jmp:bool array ->
  loops:bool ->
  result
(** Optimize one trace's segment bodies (the post-hoist [sg_uops] arrays,
    in segment order). [exit_jcc.(s)] / [exit_jmp.(s)] say whether segment
    [s] exits on a conditional branch / an unconditional jump (the only
    exit kind that can never side-exit — the precondition for
    cross-boundary flag elision); [loops] whether the last segment's exit
    re-enters segment 0. *)
