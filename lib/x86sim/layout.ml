let sensitive_base = 0x4000_0000_0000
let sfi_mask = 0x3FFF_FFFF_FFFF
let stack_top = 0x3FFF_FFFF_F000
let stack_stride = 0x100_0000
let heap_base = 0x1000_0000
let mmap_base = 0x20_0000_0000
let addr_limit = 0x8000_0000_0000
