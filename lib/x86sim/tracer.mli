(** Execution tracing and domain-residency spans — the machine-level
    analogue of the PIN instrumentation the paper uses for dynamic
    analysis (§5.5).

    The instruction tracer keeps the most recent [capacity] executed
    instructions in a ring buffer (optionally filtered), cheap enough to
    leave attached for a whole run; [entries] then reconstructs the tail
    of the execution — the first thing one wants when a simulated program
    misbehaves, and the mechanism behind the CLI's [trace] command.

    The span recorder subscribes to the CPU's typed {!Event.t} stream and
    pairs gate enters with gate exits into {e domain-residency spans}: the
    windows during which the safe region was accessible. Spans are what
    the Chrome-trace export renders and what the profiler feeds into
    residency histograms. *)

type entry = {
  seq : int;  (** 0-based position in the dynamic instruction stream *)
  rip : int;  (** instruction index *)
  insn : Insn.t;
}

type t

val attach : ?capacity:int -> ?filter:(Insn.t -> bool) -> Cpu.t -> t
(** Install on [cpu] (capacity defaults to 256) via {!Cpu.add_step_hook}.
    Tracing composes with any other step hooks — analyses, profilers and
    additional tracers all observe the same stream. *)

val detach : t -> unit
(** Remove the hook; the collected entries remain readable. *)

val entries : t -> entry list
(** Buffered entries, oldest first. *)

val total : t -> int
(** How many instructions matched the filter over the whole run (not just
    those still buffered). *)

val to_string : t -> string
(** One line per buffered entry: [seq rip insn]. *)

(** {2 Domain-residency spans} *)

type span = {
  gate : string;  (** {!Event.gate_name} of the {e entering} gate. *)
  enter_rip : int;
  exit_rip : int;
  enter_cycles : float;
  exit_cycles : float;
  depth : int;  (** 0 = outermost; >0 inside another open residency. *)
  closed : bool;
      (** [false] when the program stopped with the domain still open and
          the span was force-closed by {!stop} at the final clock. *)
}

val span_cycles : span -> float
(** Residency duration, [exit_cycles - enter_cycles]. *)

type spans

val record_spans : Cpu.t -> spans
(** Subscribe to gate events and match enters to exits LIFO: an exit
    closes the most recent open enter (nesting — e.g. a crypt gate inside
    an MPK residency — yields inner spans with larger [depth]). Exits
    with no open enter are counted in {!unmatched_exits}, not paired. *)

val stop : spans -> unit
(** Unsubscribe and force-close any still-open spans at the current cycle
    count (marked [closed = false]). Idempotent. *)

val spans : spans -> span list
(** Completed spans in completion order ({!stop} appends force-closed
    ones last). *)

val unmatched_exits : spans -> int
(** Gate exits observed while no residency was open — a sign the program
    closes a domain it never opened (or that recording started mid-span). *)

val open_spans : spans -> int
(** Residencies currently open (0 after {!stop}). *)
