type pte = { frame : int; present : bool; readable : bool; writable : bool; pkey : int }

let walk_levels = 4

(* 48-bit VA = 12 page-offset bits + 4 levels x 9 index bits. *)
let level_shift level = 9 * level
let index_of vpn level = (vpn lsr level_shift level) land 511

(* Entry encoding: bit 0 present, bit 1 writable, bit 2 readable,
   bits 12..58 frame number, bits 59..62 protection key. *)
let e_present = 1
let e_writable = 2
let e_readable = 4

let encode ~frame ~present ~readable ~writable ~pkey =
  (if present then e_present else 0)
  lor (if writable then e_writable else 0)
  lor (if readable then e_readable else 0)
  lor (frame lsl 12)
  lor (pkey lsl 59)

(* Field accessors on the raw encoding: the page-walk hot path decodes
   entries with these instead of materializing a [pte] record. *)
let entry_present entry = entry land e_present <> 0
let entry_readable entry = entry land e_readable <> 0
let entry_writable entry = entry land e_writable <> 0
let entry_frame entry = (entry lsr 12) land 0x7FFF_FFFF_FFFF
let entry_pkey entry = (entry lsr 59) land 0xF

let decode entry =
  {
    frame = entry_frame entry;
    present = entry_present entry;
    readable = entry_readable entry;
    writable = entry_writable entry;
    pkey = entry_pkey entry;
  }

(* Software paging-structure cache (the hardware analogue: PML4/PDPT/PDE
   caches): a direct-mapped map from a vpn's upper index bits to the leaf
   table frame the three non-leaf levels resolve to, validated against the
   table generation. [find_entry] — one call per simulated TLB miss — hits
   it and reads only the leaf entry (one access instead of four). Purely a
   simulator-speed structure: the {e modeled} walk cost is a constant
   ([Mmu.walk_cost]) independent of how the software walk resolves, and
   the generation check makes a stale leaf frame unobservable (any [map]/
   [unmap]/[protect] bumps the generation, which already de-validates
   every TLB entry for the same reason). *)
let wc_slots = 256

type t = {
  phys : Physmem.t;
  root : int;
  gen : int ref; (* shared with MMUs via [generation_cell] *)
  mutable nframes : int;
  mutable live : int;  (* present leaf entries *)
  wc_tag : int array;  (* vpn lsr 9, -1 = empty *)
  wc_leaf : int array;  (* leaf table frame *)
  wc_gen : int array;  (* generation the entry was filled under *)
}

let create ?phys () =
  let phys = match phys with Some p -> p | None -> Physmem.create () in
  let root = Physmem.alloc_frame phys in
  {
    phys;
    root;
    gen = ref 0;
    nframes = 1;
    live = 0;
    wc_tag = Array.make wc_slots (-1);
    wc_leaf = Array.make wc_slots 0;
    wc_gen = Array.make wc_slots 0;
  }

let root_frame t = t.root
let generation t = !(t.gen)

(* The generation counter as a shared cell: the MMU reads it on every
   translation, and dereferencing a cached ref is one load where the
   [generation] call is a cross-module application. *)
let generation_cell t = t.gen
let table_frames t = t.nframes
let mapped_count t = t.live

let bump t = incr t.gen

let read_entry t ~table ~idx = Physmem.read64 t.phys ~frame:table ~off:(8 * idx)
let write_entry t ~table ~idx v = Physmem.write64 t.phys ~frame:table ~off:(8 * idx) v

(* Descend to the leaf table, optionally allocating missing levels.
   Returns the leaf table frame, or None when absent and not allocating. *)
let rec descend t ~table ~vpn ~level ~alloc =
  if level = 0 then Some table
  else begin
    let idx = index_of vpn level in
    let entry = read_entry t ~table ~idx in
    if entry land e_present <> 0 then
      descend t ~table:(entry_frame entry) ~vpn ~level:(level - 1) ~alloc
    else if not alloc then None
    else begin
      let next = Physmem.alloc_frame t.phys in
      t.nframes <- t.nframes + 1;
      write_entry t ~table ~idx
        (encode ~frame:next ~present:true ~readable:true ~writable:true ~pkey:0);
      descend t ~table:next ~vpn ~level:(level - 1) ~alloc
    end
  end

let leaf_entry t ~vpn ~alloc =
  match descend t ~table:t.root ~vpn ~level:(walk_levels - 1) ~alloc with
  | None -> None
  | Some leaf -> Some (leaf, index_of vpn 0)

let map t ~vpn ~frame ~writable =
  bump t;
  match leaf_entry t ~vpn ~alloc:true with
  | None -> assert false (* alloc:true always yields a leaf *)
  | Some (leaf, idx) ->
    let old = read_entry t ~table:leaf ~idx in
    if old land e_present = 0 then t.live <- t.live + 1;
    write_entry t ~table:leaf ~idx
      (encode ~frame ~present:true ~readable:true ~writable ~pkey:0)

let unmap t ~vpn =
  bump t;
  match leaf_entry t ~vpn ~alloc:false with
  | None -> ()
  | Some (leaf, idx) ->
    let old = read_entry t ~table:leaf ~idx in
    if old land e_present <> 0 then begin
      t.live <- t.live - 1;
      write_entry t ~table:leaf ~idx (old land lnot e_present)
    end

(* Allocation-free walk: the raw encoded leaf entry, or 0 when any level
   is absent or the leaf is not present (0 has the present bit clear, so
   the two cases need no distinguishing). One call per TLB miss — the
   option/tuple/record tower of {!find} would be several heap blocks per
   walk. *)
let find_entry t ~vpn =
  let region = vpn lsr 9 in
  let s = region land (wc_slots - 1) in
  let g = !(t.gen) in
  if Array.unsafe_get t.wc_tag s = region && Array.unsafe_get t.wc_gen s = g then
    let e = read_entry t ~table:(Array.unsafe_get t.wc_leaf s) ~idx:(index_of vpn 0) in
    if e land e_present = 0 then 0 else e
  else begin
    let table = ref t.root in
    let level = ref (walk_levels - 1) in
    let dead = ref false in
    while !level > 0 && not !dead do
      let e = read_entry t ~table:!table ~idx:(index_of vpn !level) in
      if e land e_present = 0 then dead := true
      else begin
        table := entry_frame e;
        decr level
      end
    done;
    if !dead then 0
    else begin
      Array.unsafe_set t.wc_tag s region;
      Array.unsafe_set t.wc_leaf s !table;
      Array.unsafe_set t.wc_gen s g;
      let e = read_entry t ~table:!table ~idx:(index_of vpn 0) in
      if e land e_present = 0 then 0 else e
    end
  end

let find t ~vpn =
  let e = find_entry t ~vpn in
  if entry_present e then Some (decode e) else None

let update_leaf t ~vpn f =
  bump t;
  match leaf_entry t ~vpn ~alloc:false with
  | None -> raise Not_found
  | Some (leaf, idx) ->
    let old = read_entry t ~table:leaf ~idx in
    if old land e_present = 0 then raise Not_found;
    write_entry t ~table:leaf ~idx (f old)

let protect t ~vpn ~readable ~writable =
  update_leaf t ~vpn (fun old ->
      let old = old land lnot (e_readable lor e_writable) in
      old lor (if readable then e_readable else 0) lor if writable then e_writable else 0)

let set_pkey t ~vpn ~key =
  if key < 0 || key > 15 then invalid_arg "Pagetable.set_pkey: key must be 0..15";
  update_leaf t ~vpn (fun old -> old land lnot (0xF lsl 59) lor (key lsl 59))

let iter t f =
  let rec walk table level vpn_prefix =
    for idx = 0 to 511 do
      let entry = read_entry t ~table ~idx in
      if entry land e_present <> 0 then
        let vpn = (vpn_prefix lsl 9) lor idx in
        if level = 0 then f vpn (decode entry)
        else walk (decode entry).frame (level - 1) vpn
    done
  in
  walk t.root (walk_levels - 1) 0
