type hit = { hfn : int; readable : bool; writable : bool; pkey : int }

type t = {
  slots : int;
  vpns : int array; (* -1 = invalid *)
  epts : int array;
  pt_gens : int array;
  ept_gens : int array;
  hfns : int array;
  readables : bool array;
  writables : bool array;
  pkeys : int array;
  infos : int array; (* packed hfn/pkey/permission mirror, see slot_info *)
  mutable hit_count : int;
  mutable miss_count : int;
  mutable eviction_count : int;
      (* inserts that displaced a live translation for a different page
         (direct-mapped conflict) — observability only *)
  mutable mutation_count : int;
      (* monotone content-change counter: bumped on every insert and every
         (full or per-page) flush, never reset — the Mmu generation-token
         ingredient that lets derived caches observe "this TLB's contents
         may differ from when you last looked" with a single int compare *)
}

let create ?(slots = 1024) () =
  if slots <= 0 || slots land (slots - 1) <> 0 then
    invalid_arg "Tlb.create: slots must be a positive power of two";
  {
    slots;
    vpns = Array.make slots (-1);
    epts = Array.make slots 0;
    pt_gens = Array.make slots 0;
    ept_gens = Array.make slots 0;
    hfns = Array.make slots 0;
    readables = Array.make slots false;
    writables = Array.make slots false;
    pkeys = Array.make slots 0;
    infos = Array.make slots 0;
    hit_count = 0;
    miss_count = 0;
    eviction_count = 0;
    mutation_count = 0;
  }

let slot_of t vpn = vpn land (t.slots - 1)

(* Allocation-free probe: the hot path calls this once per memory access,
   so a hit must not build a [hit] record (one heap block per simulated
   load/store otherwise). Returns the slot index, or -1 on miss; the
   caller reads the entry's fields through the slot accessors below. *)
let probe_slot t ~vpn ~ept ~pt_gen ~ept_gen =
  (* [slot_of] masks into [0, slots), so the four lookups are unchecked:
     this probe runs once per simulated memory access. *)
  let s = slot_of t vpn in
  if
    Array.unsafe_get t.vpns s = vpn
    && Array.unsafe_get t.epts s = ept
    && Array.unsafe_get t.pt_gens s = pt_gen
    && Array.unsafe_get t.ept_gens s = ept_gen
  then begin
    t.hit_count <- t.hit_count + 1;
    s
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    -1
  end

let slot_index t ~vpn = slot_of t vpn

(* {!probe_slot} and {!slot_info} fused: the translation hot path pays
   one cross-module call per hit instead of two. Returns the packed
   {!slot_info} word (always >= 0), or -1 on miss. *)
let[@inline always] probe_info t ~vpn ~ept ~pt_gen ~ept_gen =
  let s = slot_of t vpn in
  if
    Array.unsafe_get t.vpns s = vpn
    && Array.unsafe_get t.epts s = ept
    && Array.unsafe_get t.pt_gens s = pt_gen
    && Array.unsafe_get t.ept_gens s = ept_gen
  then begin
    t.hit_count <- t.hit_count + 1;
    Array.unsafe_get t.infos s
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    -1
  end

(* Packed entry: hfn lsl 6 | pkey lsl 2 | readable lsl 1 | writable.
   Computed once at insert so the translation hot path reads the whole
   entry with a single cross-module call (the per-field accessors below
   would be four). *)
let slot_info t s = t.infos.(s)

let slot_hfn t s = t.hfns.(s)
let slot_readable t s = t.readables.(s)
let slot_writable t s = t.writables.(s)
let slot_pkey t s = t.pkeys.(s)

let probe t ~vpn ~ept ~pt_gen ~ept_gen =
  let s = probe_slot t ~vpn ~ept ~pt_gen ~ept_gen in
  if s < 0 then None
  else
    Some
      {
        hfn = t.hfns.(s);
        readable = t.readables.(s);
        writable = t.writables.(s);
        pkey = t.pkeys.(s);
      }

let insert_fields t ~vpn ~ept ~pt_gen ~ept_gen ~hfn ~readable ~writable ~pkey =
  let s = slot_of t vpn in
  let prev = t.vpns.(s) in
  if prev >= 0 && prev <> vpn then t.eviction_count <- t.eviction_count + 1;
  t.mutation_count <- t.mutation_count + 1;
  t.vpns.(s) <- vpn;
  t.epts.(s) <- ept;
  t.pt_gens.(s) <- pt_gen;
  t.ept_gens.(s) <- ept_gen;
  t.hfns.(s) <- hfn;
  t.readables.(s) <- readable;
  t.writables.(s) <- writable;
  t.pkeys.(s) <- pkey;
  t.infos.(s) <-
    (hfn lsl 6) lor (pkey lsl 2)
    lor (if readable then 2 else 0)
    lor if writable then 1 else 0

let insert t ~vpn ~ept ~pt_gen ~ept_gen hit =
  insert_fields t ~vpn ~ept ~pt_gen ~ept_gen ~hfn:hit.hfn ~readable:hit.readable
    ~writable:hit.writable ~pkey:hit.pkey

let flush t =
  Array.fill t.vpns 0 t.slots (-1);
  t.mutation_count <- t.mutation_count + 1

let flush_page t ~vpn =
  let s = slot_of t vpn in
  if t.vpns.(s) = vpn then begin
    t.vpns.(s) <- -1;
    t.mutation_count <- t.mutation_count + 1
  end

(* An external cache (the trace tier's inline translation slots) proved —
   via the mutation counter — that a probe for its cached page would have
   hit with the same entry; it posts the hit here so TLB statistics are
   identical whether or not the probe was short-circuited. *)
let note_hit t = t.hit_count <- t.hit_count + 1

let hits t = t.hit_count
let misses t = t.miss_count
let evictions t = t.eviction_count
let mutations t = t.mutation_count

let reset_stats t =
  t.hit_count <- 0;
  t.miss_count <- 0;
  t.eviction_count <- 0
