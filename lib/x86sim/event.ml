type gate = Pkru of int | Ept of int | Seq of string

type t =
  | Gate_enter of { rip : int; gate : gate }
  | Gate_exit of { rip : int; gate : gate }
  | Fault of { rip : int; fault : Fault.t }
  | Tlb_miss of { rip : int; va : int }
  | Cache_miss of { rip : int; va : int; level : Cache.served }
  | Vm_exit of { rip : int; reason : string }

let rip = function
  | Gate_enter { rip; _ }
  | Gate_exit { rip; _ }
  | Fault { rip; _ }
  | Tlb_miss { rip; _ }
  | Cache_miss { rip; _ }
  | Vm_exit { rip; _ } -> rip

let gate_name = function
  | Pkru v -> Printf.sprintf "pkru=0x%x" v
  | Ept i -> Printf.sprintf "ept=%d" i
  | Seq s -> s

let to_string = function
  | Gate_enter { rip; gate } -> Printf.sprintf "@%-6d gate-enter %s" rip (gate_name gate)
  | Gate_exit { rip; gate } -> Printf.sprintf "@%-6d gate-exit  %s" rip (gate_name gate)
  | Fault { rip; fault } -> Printf.sprintf "@%-6d fault      %s" rip (Fault.to_string fault)
  | Tlb_miss { rip; va } -> Printf.sprintf "@%-6d tlb-miss   va=0x%x" rip va
  | Cache_miss { rip; va; level } ->
    Printf.sprintf "@%-6d %s-fill    va=0x%x" rip (Cache.served_name level) va
  | Vm_exit { rip; reason } -> Printf.sprintf "@%-6d vm-exit    %s" rip reason
