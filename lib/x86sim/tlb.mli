(** Translation lookaside buffer.

    Entries are tagged with the active EPT index (modeling VPID/EPT-tagged
    TLBs: a [vmfunc] EPT switch does {e not} flush the TLB — a key reason
    VMFUNC switching is cheap). Entries record the page-table and EPT
    generations they were filled under and self-invalidate when either
    structure has changed since, so [mprotect]-style updates are observed
    without an explicit flush at every probe site.

    Protection-key bits are {e not} checked here: like hardware, the pkey
    of the entry is returned and checked against [pkru] on every access,
    which is why [wrpkru] needs no TLB flush. *)

type hit = {
  hfn : int;  (** host-physical frame *)
  readable : bool;  (** false for PROT_NONE pages *)
  writable : bool;  (** page-table and EPT write permission combined *)
  pkey : int;
}

type t

val create : ?slots:int -> unit -> t
(** Direct-mapped with [slots] entries (default 1024, power of two). *)

val probe : t -> vpn:int -> ept:int -> pt_gen:int -> ept_gen:int -> hit option
(** Lookup; counts a hit or miss. Entries from other EPT indices or stale
    generations miss. *)

val probe_slot : t -> vpn:int -> ept:int -> pt_gen:int -> ept_gen:int -> int
(** Allocation-free {!probe}: returns the slot index on a hit (read it with
    the [slot_*] accessors before any other TLB operation) or [-1] on a
    miss. Same hit/miss accounting as {!probe}. *)

val slot_index : t -> vpn:int -> int
(** The (direct-mapped) slot a vpn maps to — where {!insert} just put it. *)

val probe_info : t -> vpn:int -> ept:int -> pt_gen:int -> ept_gen:int -> int
(** {!probe_slot} and {!slot_info} fused into one call: returns the packed
    {!slot_info} word on a hit (always non-negative) or [-1] on a miss.
    Same hit/miss accounting as {!probe}. The per-access translation path
    uses this so a TLB hit costs a single call. *)

val slot_info : t -> int -> int
(** The whole entry packed into one int —
    [hfn lsl 6 lor pkey lsl 2 lor readable lsl 1 lor writable] — so the
    per-access translation path pays one call, not four. *)

val slot_hfn : t -> int -> int
val slot_readable : t -> int -> bool
val slot_writable : t -> int -> bool
val slot_pkey : t -> int -> int

val insert : t -> vpn:int -> ept:int -> pt_gen:int -> ept_gen:int -> hit -> unit

val insert_fields :
  t ->
  vpn:int ->
  ept:int ->
  pt_gen:int ->
  ept_gen:int ->
  hfn:int ->
  readable:bool ->
  writable:bool ->
  pkey:int ->
  unit
(** {!insert} with the entry spread into scalar arguments, so the TLB-fill
    path need not build a [hit] record. *)

val flush : t -> unit
(** Full invalidation (CR3 write / mprotect shootdown). *)

val flush_page : t -> vpn:int -> unit
(** invlpg: drop any entry for one page, all EPT tags. *)

val hits : t -> int
val misses : t -> int

val evictions : t -> int
(** Inserts that displaced a live translation for a {e different} page
    (direct-mapped conflicts). Observability only. *)

val note_hit : t -> unit
(** Record a hit without probing. Used by derived caches (the trace tier's
    inline translation slots) that have proven — via {!mutations} — that a
    real probe would hit with an identical entry: the probe is
    short-circuited but the statistics stay indistinguishable from the
    un-cached run. *)

val mutations : t -> int
(** Monotone count of content changes: every {!insert}/{!insert_fields},
    every {!flush}, and every effective {!flush_page} bumps it; nothing —
    not even {!reset_stats} — ever resets it. Two equal readings therefore
    guarantee the TLB's contents are unchanged in between; derived caches
    ({!Mmu.generation_token}) fold this into their validity token so any
    fill, conflict eviction or shootdown flush conservatively invalidates
    them. *)

val reset_stats : t -> unit
(** Zero the hit/miss/eviction statistics. Does {e not} touch
    {!mutations}, which must stay monotone for token validity. *)
