(** Chrome trace-event export of domain-residency spans.

    Produces the JSON object format understood by [chrome://tracing] and
    Perfetto: a [traceEvents] array of complete ("ph":"X") events, one per
    {!Tracer.span}, with [ts]/[dur] in simulated cycles (mapped 1:1 onto
    the format's microsecond clock). Loading the file shows when the safe
    region was open over the run — the visual counterpart of the paper's
    observation that domain-crossing frequency dominates overhead. *)

val span_event : ?annotate:(Tracer.span -> (string * Ms_util.Json.t) list) -> Tracer.span -> Ms_util.Json.t
(** One complete event. [annotate] appends extra ["args"] fields (the
    profiler adds the gate-site id and technique label). *)

val to_json :
  ?process_name:string ->
  ?annotate:(Tracer.span -> (string * Ms_util.Json.t) list) ->
  Tracer.span list ->
  Ms_util.Json.t
(** The whole trace: "M" metadata events naming the process and one
    thread track per nesting depth (Perfetto shows them as labeled,
    depth-sorted rows), then one "X" event per span on its depth's
    track. *)

val to_string :
  ?process_name:string ->
  ?annotate:(Tracer.span -> (string * Ms_util.Json.t) list) ->
  Tracer.span list ->
  string

val write :
  ?process_name:string ->
  ?annotate:(Tracer.span -> (string * Ms_util.Json.t) list) ->
  file:string ->
  Tracer.span list ->
  unit
