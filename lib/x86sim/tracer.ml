type entry = { seq : int; rip : int; insn : Insn.t }

type t = {
  cpu : Cpu.t;
  ring : entry option array;
  mutable next : int;
  mutable count : int;
  mutable hook : int option;
}

let attach ?(capacity = 256) ?(filter = fun _ -> true) cpu =
  if capacity <= 0 then invalid_arg "Tracer.attach: capacity must be positive";
  let t = { cpu; ring = Array.make capacity None; next = 0; count = 0; hook = None } in
  let id =
    Cpu.add_step_hook cpu (fun c insn ->
        if filter insn then begin
          t.ring.(t.next) <- Some { seq = t.count; rip = c.Cpu.rip; insn };
          t.next <- (t.next + 1) mod capacity;
          t.count <- t.count + 1
        end)
  in
  t.hook <- Some id;
  t

let detach t =
  match t.hook with
  | Some id ->
    Cpu.remove_step_hook t.cpu id;
    t.hook <- None
  | None -> ()

let entries t =
  let cap = Array.length t.ring in
  let ordered = ref [] in
  for k = 0 to cap - 1 do
    match t.ring.((t.next + cap - 1 - k) mod cap) with
    | Some e -> ordered := e :: !ordered
    | None -> ()
  done;
  !ordered

let total t = t.count

let to_string t =
  String.concat "\n"
    (List.map
       (fun e -> Printf.sprintf "%8d  @%-6d %s" e.seq e.rip (Insn.to_string_named e.insn))
       (entries t))

(* {2 Domain-residency spans} *)

type span = {
  gate : string;
  enter_rip : int;
  exit_rip : int;
  enter_cycles : float;
  exit_cycles : float;
  depth : int;
  closed : bool;
}

let span_cycles s = s.exit_cycles -. s.enter_cycles

type open_span = { o_gate : string; o_rip : int; o_cycles : float }

type spans = {
  s_cpu : Cpu.t;
  mutable stack : open_span list;
  mutable done_ : span list;  (** reverse completion order *)
  mutable unmatched_exits : int;
  mutable s_hook : int option;
}

let record_spans cpu =
  let t =
    { s_cpu = cpu; stack = []; done_ = []; unmatched_exits = 0; s_hook = None }
  in
  let on_event ev =
    match ev with
    | Event.Gate_enter { rip; gate } ->
      t.stack <-
        { o_gate = Event.gate_name gate; o_rip = rip; o_cycles = Cpu.cycles cpu } :: t.stack
    | Event.Gate_exit { rip; _ } -> (
      match t.stack with
      | o :: rest ->
        t.stack <- rest;
        t.done_ <-
          {
            gate = o.o_gate;
            enter_rip = o.o_rip;
            exit_rip = rip;
            enter_cycles = o.o_cycles;
            exit_cycles = Cpu.cycles cpu;
            depth = List.length rest;
            closed = true;
          }
          :: t.done_
      | [] -> t.unmatched_exits <- t.unmatched_exits + 1)
    | Event.Fault _ | Event.Tlb_miss _ | Event.Cache_miss _ | Event.Vm_exit _ -> ()
  in
  t.s_hook <- Some (Cpu.add_event_hook cpu on_event);
  t

let stop t =
  (match t.s_hook with
  | Some id ->
    Cpu.remove_event_hook t.s_cpu id;
    t.s_hook <- None
  | None -> ());
  (* Close still-open residencies at the current clock so a program that
     halts inside the sensitive domain still accounts for the time. *)
  let now = Cpu.cycles t.s_cpu in
  List.iteri
    (fun i o ->
      t.done_ <-
        {
          gate = o.o_gate;
          enter_rip = o.o_rip;
          exit_rip = o.o_rip;
          enter_cycles = o.o_cycles;
          exit_cycles = now;
          depth = List.length t.stack - 1 - i;
          closed = false;
        }
        :: t.done_)
    t.stack;
  t.stack <- []

let spans t = List.rev t.done_
let unmatched_exits t = t.unmatched_exits
let open_spans t = List.length t.stack
