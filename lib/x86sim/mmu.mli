(** Memory management unit: the data path every simulated access takes.

    Translation order mirrors hardware:
    TLB probe -> (miss: page-table walk, then nested EPT walk when
    virtualization is on) -> protection-key check against [pkru] ->
    page/EPT write-permission check -> physical access through the cache
    model.

    The protection-key check happens on {e every} access, including TLB
    hits, because [pkru] is register state — that is what makes [wrpkru]
    domain switches cheap (no TLB maintenance). Conversely [mprotect]-style
    permission changes bump the page-table generation and are modeled with
    an explicit TLB shootdown cost at the syscall site.

    All access functions return the access latency in cycles alongside any
    value, so the CPU can feed the pipeline model. *)

type t = {
  phys : Physmem.t;
  pt : Pagetable.t;
  pt_gen_cell : int ref;
      (** [Pagetable.generation_cell pt], cached at creation: the
          translation hot path reads the generation through this cell. *)
  tlb : Tlb.t;
  cache : Cache.t;
  mutable pkru : int;  (** 32-bit: bits 2k / 2k+1 = AD / WD for key k. *)
  mutable ept_list : Ept.t array;  (** EPTP list; empty unless virtualized. *)
  mutable ept_index : int;  (** Active EPT (set by [vmfunc]). *)
  mutable ept_on : bool;
  mutable last_tlb_miss : bool;
      (** Whether the most recent {!translate} missed the TLB and walked the
          tables. Read by the CPU right after an access to emit telemetry
          events. *)
  mutable last_lat : int;
      (** Latency in cycles of the most recent access (TLB walk plus cache,
          for the [*_fast] accessors). Scratch result field: the CPU's
          per-instruction path reads it instead of receiving a freshly
          allocated tuple. *)
  mutable walk_cycles : int;
      (** Cumulative page-table-walk latency charged by TLB misses so far —
          the TLB-walk slice of the CPI stack, cross-checkable against
          [Tlb.misses * walk_cost]. *)
}

val create : unit -> t

val walk_cost : t -> int
(** TLB-miss penalty in cycles: [4 * levels] for a native walk, roughly
    2.5x that under nested EPT paging. *)

(** {2 Mapping management (the simulated kernel's job)} *)

val map_page : t -> va:int -> writable:bool -> unit
(** Allocate a frame and map the page containing [va]. Idempotent for
    already-present pages (permissions updated). *)

val map_range : t -> va:int -> len:int -> writable:bool -> unit

val unmap_range : t -> va:int -> len:int -> unit

val protect_range : t -> va:int -> len:int -> readable:bool -> writable:bool -> unit
(** mprotect semantics ([readable:false] = PROT_NONE); flushes the TLB.
    Raises [Not_found] on unmapped pages in the range. *)

val set_pkey_range : t -> va:int -> len:int -> key:int -> unit
(** pkey_mprotect semantics; flushes the TLB. *)

val is_mapped : t -> va:int -> bool

(** {2 Translation and access} *)

val translate : t -> va:int -> access:Fault.access -> int * int
(** [(pa, latency)] or a fault. The latency covers TLB miss cost only;
    cache latency is added by the word accessors. *)

val translate_va : t -> va:int -> access:Fault.access -> int
(** Allocation-free {!translate}: returns the physical address and leaves
    the walk latency in [last_lat]. *)

val read64 : t -> va:int -> int * int
(** [(value, latency)]. *)

val write64 : t -> va:int -> int -> int
(** Returns latency. *)

val read64_fast : t -> va:int -> int
(** {!read64} without the result tuple: the value is returned, the total
    latency (walk + cache) is left in [last_lat]. The simulator hot loop
    uses these; the tuple-returning forms are wrappers for everyone else. *)

val write64_fast : t -> va:int -> int -> unit
(** {!write64} with the latency left in [last_lat]. *)

val read_block16 : t -> va:int -> Bytes.t * int
(** 16-byte read; must not cross a page boundary (GP fault otherwise,
    matching movdqa's 16-byte alignment requirement). *)

val write_block16 : t -> va:int -> Bytes.t -> int

val read_block16_into : t -> va:int -> dst:Bytes.t -> dpos:int -> unit
(** Allocation-free {!read_block16_fast}: blit the block straight into
    [dst] at [dpos]; latency left in [last_lat]. *)

val write_block16_from : t -> va:int -> src:Bytes.t -> spos:int -> unit
(** Allocation-free {!write_block16_fast}: blit the block straight from
    [src] at [spos]; latency left in [last_lat]. *)

val read_block16_fast : t -> va:int -> Bytes.t
(** {!read_block16} with the latency left in [last_lat]. *)

val write_block16_fast : t -> va:int -> Bytes.t -> unit
(** {!write_block16} with the latency left in [last_lat]. *)

(** {2 Raw access (no permission checks, no timing)}

    Used by the simulated kernel/hypervisor and by attack oracles that
    model an "arbitrary read/write primitive" the attacker already has. *)

val peek64 : t -> va:int -> int
(** Raises {!Fault.Fault} [Page_fault] if unmapped (an attacker probing an
    unmapped hole crashes — the basis of crash-resistance experiments). *)

val poke64 : t -> va:int -> int -> unit

val peek_bytes : t -> va:int -> len:int -> Bytes.t
val poke_bytes : t -> va:int -> Bytes.t -> unit
