(** Memory management unit: the data path every simulated access takes.

    Translation order mirrors hardware:
    TLB probe -> (miss: page-table walk, then nested EPT walk when
    virtualization is on) -> protection-key check against [pkru] ->
    page/EPT write-permission check -> physical access through the cache
    model.

    The protection-key check happens on {e every} access, including TLB
    hits, because [pkru] is register state — that is what makes [wrpkru]
    domain switches cheap (no TLB maintenance). Conversely [mprotect]-style
    permission changes bump the page-table generation and are modeled with
    an explicit TLB shootdown cost at the syscall site.

    The module is split into a machine-wide {!shared} layer (physical
    memory, page table, EPTP list, mmap cursor, L3+DRAM cache tier,
    shootdown generation) and per-core views [t] (TLB, private L1/L2,
    PKRU, active-EPT selection, walk scratch). [create] builds the
    degenerate one-core machine; {!create_shared} + {!attach} build an SMP
    one.

    All access functions return the access latency in cycles alongside any
    value, so the CPU can feed the pipeline model. *)

type shared
(** The machine-wide memory system every attached core shares. *)

type t = {
  phys : Physmem.t;  (** Alias of the shared frame pool, cached at attach. *)
  pt : Pagetable.t;  (** Alias of the shared page table. *)
  pt_gen_cell : int ref;
      (** [Pagetable.generation_cell pt], cached at creation: the
          translation hot path reads the generation through this cell. *)
  shared : shared;
  core : int;  (** This view's core id (0-based attach order). *)
  tlb : Tlb.t;
  cache : Cache.t;  (** Private L1/L2 over the shared L3+DRAM tier. *)
  mutable pkru : int;  (** 32-bit: bits 2k / 2k+1 = AD / WD for key k. *)
  mutable ept_index : int;  (** Active EPT (set by [vmfunc]). *)
  mutable ept_on : bool;
  mutable shoot_seen : int;
      (** Last shootdown generation this core acknowledged; lagging the
          shared generation means an IPI is pending delivery. *)
  mutable last_tlb_miss : bool;
      (** Whether the most recent {!translate} missed the TLB and walked the
          tables. Read by the CPU right after an access to emit telemetry
          events. *)
  mutable last_lat : int;
      (** Latency in cycles of the most recent access (TLB walk plus cache,
          for the [*_fast] accessors). Scratch result field: the CPU's
          per-instruction path reads it instead of receiving a freshly
          allocated tuple. *)
  mutable walk_cycles : int;
      (** Cumulative page-table-walk latency charged by TLB misses so far —
          the TLB-walk slice of the CPI stack, cross-checkable against
          [Tlb.misses * walk_cost]. *)
}

val create : unit -> t
(** A one-core machine: [attach (create_shared ())]. *)

val create_shared : ?max_frames:int -> unit -> shared
(** A fresh machine-wide memory system with no cores attached.
    [max_frames] bounds the physical frame pool (see {!Physmem.create}). *)

val attach : shared -> t
(** A new core view (fresh TLB, L1/L2, PKRU=0) over [shared]; core ids are
    assigned in attach order. *)

val core_id : t -> int

val core_count : t -> int
(** Number of views attached to this core's shared layer. *)

val walk_cost : t -> int
(** TLB-miss penalty in cycles: [4 * levels] for a native walk, roughly
    2.5x that under nested EPT paging. *)

(** {2 EPTP list (shared; per-core selection lives in [ept_index]/[ept_on])} *)

val ept_list : t -> Ept.t array
val set_ept_list : t -> Ept.t array -> unit

(** {2 Mapping management (the simulated kernel's job)}

    Any operation that revokes translations ([unmap_range],
    [protect_range], [set_pkey_range]) flushes the calling core's TLB
    synchronously and, on a multi-core machine, broadcasts a TLB shootdown:
    the shared generation is bumped so every sibling core has
    {!shootdown_pending} until it calls {!acknowledge_shootdown}. The
    {e correctness} of remote translations never depends on the IPI — the
    page-table generation check on every TLB probe already de-validates
    stale entries the instant the table changes — so the shootdown protocol
    is purely the cost and cache-invalidation model. *)

val map_page : t -> va:int -> writable:bool -> unit
(** Allocate a frame and map the page containing [va]. Idempotent for
    already-present pages (permissions updated). *)

val map_range : t -> va:int -> len:int -> writable:bool -> unit

val unmap_range : t -> va:int -> len:int -> unit

val protect_range : t -> va:int -> len:int -> readable:bool -> writable:bool -> unit
(** mprotect semantics ([readable:false] = PROT_NONE); flushes the TLB.
    Raises [Not_found] on unmapped pages in the range. *)

val set_pkey_range : t -> va:int -> len:int -> key:int -> unit
(** pkey_mprotect semantics; flushes the TLB. *)

val mmap_alloc : t -> len:int -> writable:bool -> int
(** Anonymous mmap: carve [len] bytes (page-rounded, plus a guard page)
    from the machine-wide mmap cursor, map them, and return the base
    address. Cores share one address space, so concurrent allocations
    never overlap. *)

val is_mapped : t -> va:int -> bool

(** {2 TLB shootdown protocol} *)

val shootdown_pending : t -> bool
(** A sibling core revoked translations since this core last acknowledged. *)

val acknowledge_shootdown : t -> bool
(** Deliver a pending shootdown IPI: flush this core's TLB and catch up to
    the shared generation. Returns whether anything was pending — the
    scheduler charges IPI delivery cost and invalidates the translated-code
    cache exactly when this returns [true]. *)

val shootdown_count : t -> int
(** Total shootdown broadcasts on this machine (telemetry). *)

(** {2 Generation token: staleness contract for translation-derived caches}

    Any cache derived from a translation (the trace tier's inline
    per-uop slots, trace entry guards, block-tier shortcuts) must key its
    entries on {!generation_token} and treat them as usable only while
    {!token_valid} holds. The contract:

    - The token captured immediately after a successful translation stays
      valid exactly while the page table is unchanged (its generation,
      bumped by every mapping/permission/pkey change — which is also what
      shootdowns broadcast) {e and} this core's TLB contents are unchanged
      (the monotone {!Tlb.mutations} counter: any fill, conflict eviction,
      full flush or shootdown acknowledgment bumps it). While valid, a
      real TLB probe for the cached page is guaranteed to hit with the
      identical entry, so timing and statistics are preserved.
    - Under EPT the token is {e never} valid: a [vmfunc] EPT switch must
      not revalidate views cached under another EPT, so EPT consumers
      always take the full translation path.
    - PKRU is deliberately {e not} part of the token — like hardware,
      consumers must re-check protection keys against the live [pkru] on
      every access (that is what keeps [wrpkru] switches cheap).

    Invalidation is therefore purely observational: nothing registers or
    flushes derived caches; they self-invalidate on the next token
    comparison, conservatively (a token mismatch never means the cached
    data is wrong, only that it must be re-proven). *)

val page_bits : int
(** log2 of the page size; [va lsr page_bits] is the vpn an inline slot
    is keyed on. *)

val generation_token : t -> int
val token_valid : t -> token:int -> bool

val translate_cached : t -> va:int -> info:int -> access:Fault.access -> int
(** Translation from a cached packed {!Tlb.slot_info} word whose token the
    caller has just validated: posts the TLB hit, re-runs the pkey /
    PROT_NONE / write-permission checks in {!translate_va}'s order against
    the live [pkru], and returns the physical address with the walk
    latency (0 — it is a proven hit) in [last_lat]. *)

val read64_cached : t -> va:int -> info:int -> int
(** {!read64_fast} through {!translate_cached}. *)

val write64_cached : t -> va:int -> info:int -> int -> unit
(** {!write64_fast} through {!translate_cached}. *)

val slot_info_for : t -> vpn:int -> int
(** The packed entry the most recent successful translation of a [va] on
    this page left in the TLB — captured together with
    {!generation_token} to charge an inline slot. *)

(** {2 Translation and access} *)

val translate : t -> va:int -> access:Fault.access -> int * int
(** [(pa, latency)] or a fault. The latency covers TLB miss cost only;
    cache latency is added by the word accessors. *)

val translate_va : t -> va:int -> access:Fault.access -> int
(** Allocation-free {!translate}: returns the physical address and leaves
    the walk latency in [last_lat]. *)

val read64 : t -> va:int -> int * int
(** [(value, latency)]. *)

val write64 : t -> va:int -> int -> int
(** Returns latency. *)

val read64_fast : t -> va:int -> int
(** {!read64} without the result tuple: the value is returned, the total
    latency (walk + cache) is left in [last_lat]. The simulator hot loop
    uses these; the tuple-returning forms are wrappers for everyone else. *)

val write64_fast : t -> va:int -> int -> unit
(** {!write64} with the latency left in [last_lat]. *)

val read_block16 : t -> va:int -> Bytes.t * int
(** 16-byte read; must not cross a page boundary (GP fault otherwise,
    matching movdqa's 16-byte alignment requirement). *)

val write_block16 : t -> va:int -> Bytes.t -> int

val read_block16_into : t -> va:int -> dst:Bytes.t -> dpos:int -> unit
(** Allocation-free {!read_block16_fast}: blit the block straight into
    [dst] at [dpos]; latency left in [last_lat]. *)

val write_block16_from : t -> va:int -> src:Bytes.t -> spos:int -> unit
(** Allocation-free {!write_block16_fast}: blit the block straight from
    [src] at [spos]; latency left in [last_lat]. *)

val read_block16_fast : t -> va:int -> Bytes.t
(** {!read_block16} with the latency left in [last_lat]. *)

val write_block16_fast : t -> va:int -> Bytes.t -> unit
(** {!write_block16} with the latency left in [last_lat]. *)

(** {2 Raw access (no permission checks, no timing)}

    Used by the simulated kernel/hypervisor and by attack oracles that
    model an "arbitrary read/write primitive" the attacker already has. *)

val peek64 : t -> va:int -> int
(** Raises {!Fault.Fault} [Page_fault] if unmapped (an attacker probing an
    unmapped hole crashes — the basis of crash-resistance experiments). *)

val poke64 : t -> va:int -> int -> unit

val peek_bytes : t -> va:int -> len:int -> Bytes.t
val poke_bytes : t -> va:int -> Bytes.t -> unit
