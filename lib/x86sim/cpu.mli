(** The simulated processor: architectural state, execution and timing.

    [Cpu.t] bundles the register files (GPRs, xmm/ymm, MPX bounds, pkru via
    the MMU), the memory system, the {!Pipeline} timing model and a small
    "operating system" surface (syscall table). Programs are
    {!Program.t} values; [run] executes until [Halt], fault, or fuel
    exhaustion while the pipeline accumulates cycle counts.

    Hypervisor integration (the [vmx] library) happens through three hooks:
    [vmcall_handler] receives explicit hypercalls, [ept_violation_handler]
    receives EPT-violation VM exits and may fix the EPT and retry, and
    [virtualized] switches the CPU into guest mode (in which [syscall]
    additionally pays the hypercall-conversion cost of Dune-style
    process-level virtualization, and [vmfunc]/[vmcall] become available).

    Fault delivery: a faulting instruction increments [counters.faults] and
    consults [fault_handler]; the default re-raises {!Fault.Fault} out of
    [run]. Crash-resistant attack primitives install a [`Skip] handler. *)

type counters = {
  mutable insns : int;
  mutable loads : int;
  mutable stores : int;
  mutable calls : int;
  mutable rets : int;
  mutable ind_branches : int;
  mutable syscalls : int;
  mutable vmfuncs : int;
  mutable vmcalls : int;
  mutable wrpkrus : int;
  mutable aes_ops : int;
  mutable bnd_checks : int;
  mutable faults : int;
  mutable vm_exits : int;
}

type fault_action = Fault_halt | Fault_skip | Fault_reraise

type status = Halted | Out_of_fuel

type t = {
  gpr : int array;
  xmm : Bytes.t;  (** 16 ymm registers x 32 bytes *)
  bnd_lower : int array;
  bnd_upper : int array;
  mutable bnd_enabled : bool;
  mutable cmp : int;  (** flags: last compare/ALU result *)
  mutable rip : int;
  mutable halted : bool;
  mutable virtualized : bool;
  mutable syscall_hypercall_tax : bool;
      (** In guest mode, convert every syscall into a hypercall-priced exit
          (Dune behaviour; default). The VMFUNC ablation clears it to model
          a hypervisor-integrated deployment (e.g. KVM-based). *)
  mutable wrpkru_serialize : bool;
      (** Model wrpkru's ordering requirement (default). The MPK ablation
          clears it to quantify what the implicit fence costs. *)
  mmu : Mmu.t;
  pipe : Pipeline.t;
  pio : float array;
      (** [Pipeline.io pipe], cached at creation: the unboxed float
          parameter/result channel shared with {!Pipeline.issue_fast}. *)
  sb_line : int array;
      (** Store-to-load ordering, as a bounded direct-mapped store buffer:
          [sb_line.(s)] is the 64-byte line address occupying slot [s]
          ([-1] = empty), [sb_ready.(s)] its store completion time
          (VA-keyed; the machine has no aliasing). A colliding store evicts
          the previous occupant, which can only drop an ordering edge for a
          line whose store retired at least {!val-sb_slots} lines ago. *)
  sb_ready : float array;
  counters : counters;
  mutable site_of : int array;
      (** CPI-stack attribution map: [site_of.(rip)] is the {!Pipeline}
          row charged for instruction [rip] (0 = the un-attributed
          application row). [[||]] (the default) disables per-site
          attribution. Install via {!set_site_rows}. *)
  mutable program : Program.t;
  mutable tcache : Ublock.cache;
      (** Predecoded basic-block translations of [program] (see
          {!Ublock}): the no-hook fast loop executes these instead of
          re-decoding [Insn.t]s. Swapped automatically when [program]
          changes identity; {!flush_translations} invalidates it after
          in-place mutation of the code array. *)
  mutable traces : Trace.tier;
      (** Profile-guided superblocks stitched over [tcache] (see
          {!Trace}): once a block's exec counter crosses the tier's hot
          threshold, its dominant successor chain executes as one flat
          superblock with side exits back to the block tier. Swapped
          together with [tcache] on program-identity change; torn down
          eagerly by {!flush_translations}. Exposed for observability
          ({!Trace.stats}) and for tests tuning the formation policy. *)
  mutable sl_vpn : int array;
      (** Inline-translation slot arrays of the trace currently executing
          — aliases of that trace's [tr_slot_*] arrays, installed by the
          trace executor on entry so the optimized memory uops index them
          without an extra indirection. [[||]] outside trace execution. *)
  mutable sl_info : int array;
  mutable sl_tok : int array;
  mutable syscall_handler : t -> unit;
  mutable vmcall_handler : t -> unit;
  mutable ept_violation_handler : t -> gpa:int -> access:Fault.access -> bool;
  mutable fault_handler : t -> Fault.t -> fault_action;
  mutable step_hooks : (int * (t -> Insn.t -> unit)) array;
      (** Pre-execution observers, run in registration order on every
          instruction. Dense prefix of length [n_step_hooks]; slots past
          that hold a dummy. Managed with {!add_step_hook} /
          {!remove_step_hook}; several observers (tracer, profiler,
          analyses) coexist. *)
  mutable n_step_hooks : int;
  mutable event_hooks : (int * (Event.t -> unit)) array;
      (** Subscribers to typed machine {!Event.t}s, same dense-prefix
          layout. When [n_event_hooks] is 0 (the default) the CPU skips
          all event construction, keeping the uninstrumented hot path free
          of telemetry cost. *)
  mutable n_event_hooks : int;
  mutable next_hook_id : int;
}

val sb_slots : int
(** Store-buffer capacity (power of two). *)

val create : ?stack_pages:int -> unit -> t
(** A fresh single-core machine with a mapped stack ([stack_pages] pages,
    default 64), [rsp] initialized, an empty program, and the default
    syscall table. Equivalent to [create_on (Mmu.create ())]. *)

val create_on : ?stack_pages:int -> Mmu.t -> t
(** A core over an existing MMU view — how {!Machine} builds vCPUs that
    share one memory system. Core [i]'s stack is mapped at
    [Layout.stack_top - i * Layout.stack_stride], so siblings get disjoint
    stacks in the shared address space. *)

val load_program : t -> Program.t -> unit
(** Install a program and set [rip] to the ["main"] label (or 0). *)

val flush_translations : t -> unit
(** Invalidate every cached translation, eagerly: bump the block cache's
    generation, sever every cached block→block successor link, and tear
    down all superblocks (plus installed hoist facts). After a flush no
    stale block, chain link, trace, or side-exit stub can execute — not
    even transiently. Required only after mutating the installed
    program's code array in place; installing a different program via
    {!load_program} or assigning [program] re-keys both tiers
    automatically. *)

val set_traces_enabled : t -> bool -> unit
(** Enable (default) or disable the trace tier; disabling also
    invalidates live superblocks so execution falls back to the block
    tier immediately. See {!Trace.set_enabled}. *)

val traces_enabled : t -> bool

val set_trace_fusion : t -> bool -> unit
(** Enable (default) or disable the {!Traceopt} formation pass — macro-
    fusion, inline translation slots, dead-flag elision and the lazy-rip
    fast path that runs the rewritten bodies. Disabling invalidates live
    traces (they re-form unoptimized) and pins the executor to the
    careful per-uop-rip path; results are byte-identical either way. See
    {!Trace.set_optimize}. *)

val trace_fusion : t -> bool

val install_trace_hoist_facts : t -> bool array -> unit
(** Install per-rip loop-invariance facts licensing gate-check hoisting
    to trace entry ([facts.(rip) = true] ⇒ the bounds check at [rip] may
    run once per trace entry instead of once per iteration). Off by
    default; intended to be fed from [Gate_analysis]-derived facts by the
    memsentry layer. Changes modeled cost (that is the point), so leave
    uninstalled for byte-identical tier comparisons. *)

(** {2 Hooks and events}

    Both hook lists are composable: any number of observers may attach,
    each gets back an id for targeted removal, and registration order is
    call order. *)

val add_step_hook : t -> (t -> Insn.t -> unit) -> int
(** Attach an observer called before each instruction executes (with the
    machine state as of fetch: [rip] still points at the instruction). *)

val remove_step_hook : t -> int -> unit
(** Remove by id; unknown ids are ignored. *)

val add_event_hook : t -> (Event.t -> unit) -> int
(** Subscribe to typed events: gate enters/exits ([wrpkru]/[vmfunc]),
    faults, TLB misses, cache fills below L1, and VM exits. *)

val remove_event_hook : t -> int -> unit

val has_event_hooks : t -> bool

val emit : t -> Event.t -> unit
(** Broadcast an event to all subscribers. The CPU calls this internally
    for hardware-observable events; software layers (the MemSentry
    profiler) use it to inject [Event.Seq] gate events for techniques
    whose gates are instruction sequences with no architectural marker. *)

val cycles : t -> float
(** Cycles accumulated by the pipeline model. *)

val reset_measurement : t -> unit
(** Zero the pipeline clock and counters (not the memory system) so a
    measurement can exclude setup work. *)

val set_site_rows : t -> int array -> rows:int -> unit
(** Install a per-instruction CPI-stack attribution map: [map.(rip)] is
    the pipeline row (in [0, rows)) charged for every cycle instruction
    [rip] spends issuing; row 0 is the un-attributed application row.
    [map] must cover the installed program's whole code array, and every
    value must be a valid row. Installs [rows] accumulation rows in the
    pipeline ({!Pipeline.install_rows}), zeroing any prior CPI data.
    Raises [Invalid_argument] on a short map or out-of-range row. *)

val clear_site_rows : t -> unit
(** Drop the attribution map and return the pipeline to a single
    aggregate CPI row. *)

(** {2 Register access} *)

val get_gpr : t -> Reg.gpr -> int
val set_gpr : t -> Reg.gpr -> int -> unit

val get_xmm : t -> Reg.xmm -> Bytes.t
(** Low 128 bits, as a fresh 16-byte buffer. *)

val set_xmm : t -> Reg.xmm -> Bytes.t -> unit

val get_ymm_high : t -> Reg.xmm -> Bytes.t
(** Upper 128 bits of the ymm register (where crypt stashes round keys). *)

val set_ymm_high : t -> Reg.xmm -> Bytes.t -> unit

val pkru : t -> int
val set_pkru : t -> int -> unit
(** Kernel-style direct update (tests and setup); programs use [wrpkru]. *)

(** {2 Execution} *)

val step : t -> unit
(** Execute one instruction (with fault handling and EPT-retry). *)

val run : ?fuel:int -> t -> status
(** Execute until [Halt] or [fuel] instructions (default 50 million). *)

(** {2 The built-in syscall table}

    Numbers follow Linux x86-64 where one exists. The default handler
    implements them; custom handlers (e.g. the Dune sandbox) can delegate
    to {!default_syscall_handler}. *)

val sys_write : int
(** 1 — accepted and discarded. *)

val sys_mmap : int
(** 9 — anonymous, returns fresh pages. *)

val sys_mprotect : int
(** 10 — rdi=addr, rsi=len, rdx=prot (1=r, 2=w). *)

val sys_munmap : int
(** 11 — rdi=addr, rsi=len. Pays the kernel cost plus, on a multi-core
    machine, the TLB-shootdown IPI round trips (as do [mprotect] and
    [pkey_mprotect]). *)

val sys_exit : int
(** 60. *)

val sys_pkey_mprotect : int
(** 329 — r10 = key. *)

val sys_nop : int
(** 0 (read): accepted and ignored, pure cost. *)

val sys_io : int
(** 17 (pread64 stand-in): a blocking I/O syscall — pays the syscall cost
    plus {!io_kernel_cost} of kernel/device time. What makes server
    workloads I/O-bound. *)

val default_syscall_handler : t -> unit

(** {2 Cost-model constants (cycles)} *)

val syscall_cost : float
val vmfunc_cost : float
val vmcall_cost : float
val wrpkru_cost : float
val ept_violation_cost : float
val mprotect_kernel_cost : float
val io_kernel_cost : float

val ipi_cost : float
(** Per-remote-core TLB-shootdown round trip charged to the initiating
    core (send IPI + spin for the ack), serializing. Zero remote cores —
    any single-core machine — charge nothing. *)

val ipi_deliver_cost : float
(** Charged to a remote core when it takes a pending shootdown interrupt
    (delivery + local flush), at its next scheduling quantum. *)
