(** Out-of-order timing model (scoreboard with execution ports).

    The paper's central microarchitectural observations are all dependency
    effects: an SFI [and] feeding a {e load} costs ~0.2 cycles while the
    same [and] feeding a {e store} costs nothing; a single [bndcu] is nearly
    free because nothing consumes its (nonexistent) result; serializing
    instructions ([wrpkru]+[mfence], [vmfunc], [syscall]) are cheap in an
    empty microbenchmark loop but expensive amid real memory traffic. A
    cycle counter per instruction cannot reproduce any of that; this
    scoreboard does.

    Model: 4-wide in-order fetch, unlimited window, per-port execution
    units, register-ready times, and serializing instructions that wait for
    (and hold back) all in-flight work. Time is a [float] so fractional
    fetch bandwidth and sub-cycle marginal costs are representable.

    Register identifiers are the dense ids of {!Reg.pipe_gpr} etc.;
    [Reg.pipe_none] means "no register". *)

type t

(** Execution ports. Unit counts approximate Skylake: 4 ALU, 2 load,
    1 store-address, 1 branch, 2 MPX check, 1 AES, 1 "special". *)

val p_alu : int
val p_load : int
val p_store : int
val p_branch : int
val p_mpx : int
val p_aes : int
val p_special : int
val p_fp : int

val create : unit -> t

val reset : t -> unit

val issue_t :
  t ->
  ?s1:int ->
  ?s2:int ->
  ?s3:int ->
  ?d1:int ->
  ?d2:int ->
  ?dep:float ->
  ?lat:float ->
  ?busy:float ->
  ?serialize:bool ->
  port:int ->
  unit ->
  float
(** Record one executed instruction: source registers [s1..s3], destination
    registers [d1..d2], result latency [lat] (default 1.0) on [port].
    [serialize] makes it wait for all prior completions and stalls
    subsequent fetch until it completes. [dep] is an extra time floor used
    for non-register dependencies (store-to-load ordering through memory).
    [busy] overrides the port's default occupancy for microcoded
    instructions. Returns the completion time — what a dependent consumer
    would use as its [dep]. *)

val issue :
  t ->
  ?s1:int ->
  ?s2:int ->
  ?s3:int ->
  ?d1:int ->
  ?d2:int ->
  ?dep:float ->
  ?lat:float ->
  ?busy:float ->
  ?serialize:bool ->
  port:int ->
  unit ->
  unit
(** {!issue_t} with the completion time discarded. *)

val issue_fast :
  t -> s1:int -> s2:int -> s3:int -> d1:int -> d2:int -> lat:int -> port:int -> unit
(** {!issue_t} for the per-instruction hot path: every argument is a
    mandatory immediate (pass [Reg.pipe_none] explicitly; [lat] in whole
    cycles), so no [Some] boxes — and no float boxes — are built per call.
    Floats cross the boundary through the {!io} scratch array instead:
    write a store-to-load forwarding floor to [io.(io_dep)] before the
    call (it self-resets to 0 after each issue), read the completion time
    from [io.(io_comp)] after. Covers the non-serializing,
    default-occupancy case — serializing or microcoded instructions use
    the labeled forms. Numerically identical to {!issue_t}: both delegate
    to one core. *)

val pack : s1:int -> s2:int -> s3:int -> d1:int -> d2:int -> lat:int -> port:int -> int
(** Pack one instruction's issue metadata (pipeline-register ids as in
    {!issue_fast}, port, and a static whole-cycle latency) into a single
    immediate int. Computed once per instruction by the {!Ublock}
    translator; consumed by {!issue_packed_static}. *)

val issue_packed : t -> meta:int -> lat:int -> unit
(** {!issue_fast} with the register ids and port taken from a {!pack}ed
    [meta] word and the latency passed explicitly — the form used by
    translated memory operations, whose latency is only known after the
    MMU access. Numerically identical to {!issue_fast}: both delegate to
    the same core. *)

val issue_packed_static : t -> meta:int -> unit
(** {!issue_packed} with the latency also taken from [meta] — the form
    used by translated ALU-like operations whose latency is static. *)

val issue_packed_pair_static : t -> m1:int -> m2:int -> unit
(** Two {!issue_packed_static} issues back to back, bit-identically — the
    form used by a macro-fused uop pair whose halves have no fault point
    (and no other architectural effect) between their issues. *)

val io : t -> float array
(** The float parameter/result channel shared with {!issue_fast}. Fetch it
    once and keep it: float-array indexing never boxes, unlike float
    returns from accessor functions. Slots other than [io_dep]/[io_comp]
    are private to the pipeline. *)

val io_dep : int
(** [io] slot: extra dependency floor consumed by the next issue. *)

val io_comp : int
(** [io] slot: completion time left by the last issue. *)

(** {2 CPI-stack accounting}

    Always-on, allocation-free cycle attribution: every issue charges its
    elapsed-cycle delta (change in {!cycles}) to exactly one class below,
    in the current attribution {e row}. Rows let a caller aggregate per
    gate site: install one row per site (plus row 0 for un-attributed
    application cycles) and point {!set_row} at the right one before each
    instruction. With no rows installed everything lands in the single
    default row, so the global CPI stack is available even for
    uninstrumented runs. Deltas telescope: the sum over all rows and
    classes equals {!cycles} up to float-addition rounding. *)

val cls_base : int
(** Steady-state issue: fetch width, dependency chains, L1 hits. Always 0. *)

val cls_l1_miss : int
(** Memory access served by L2. *)

val cls_l2_miss : int
(** Memory access served by L3. *)

val cls_l3_miss : int
(** Memory access served by DRAM. *)

val cls_tlb : int
(** TLB miss: a page-table walk was on the access path. *)

val cls_sb : int
(** Store-buffer: the store-to-load forwarding floor was the binding
    constraint on issue time. *)

val cls_port : int
(** Port contention: the instruction was ready before an execution unit
    on its port was free. *)

val cls_gate : int
(** Gate/serializing instruction: MPX checks, AES crypt ops, and the
    special port (wrpkru, vmfunc, vmcall, syscall, fences). *)

val cls_count : int

val cls_names : string array
(** Human-readable class labels, indexed by class id. *)

val set_cls : t -> int -> unit
(** Override the class of the {e next} issue (used by the CPU to deposit
    the memory-level outcome of an MMU access). Self-resets after one
    issue. *)

val set_row : t -> int -> unit
(** Select the attribution row for subsequent issues. Out-of-range rows
    are ignored (the current row keeps accumulating). *)

val install_rows : t -> int -> unit
(** Allocate [n] fresh attribution rows (at least 1) and select row 0.
    Row 0 is conventionally the un-attributed application row. *)

val cpi_rows : t -> float array
(** The live accumulator: row-major [n_rows * cls_count] cycle totals. *)

val cpi_row_count : t -> int

val cpi_totals : t -> float array
(** Per-class totals summed over all rows (a fresh [cls_count] array). *)

val cycles_accounted : t -> float
(** Sum of every accumulator cell — equals {!cycles} up to float-addition
    rounding (invariant-tested). *)

val cycles : t -> float
(** Total cycles elapsed so far (max of fetch front and latest completion). *)

val instructions : t -> int
(** Instructions issued since creation/reset. *)

val ipc : t -> float
(** Instructions per cycle so far (0 when no time has passed). *)
