(** Host-physical memory: a sparse pool of 4 KiB frames.

    Frames are allocated on demand and addressed by frame number. Word
    accesses are 64-bit little-endian; values are native [int]s (bit 63 is
    not representable, which no workload here requires — see {!Insn}). *)

val page_size : int
(** 4096. *)

type t

val create : ?max_frames:int -> unit -> t
(** [max_frames] (default [2^20] = 4 GiB) caps the pool; the frame table
    itself starts small and doubles on demand up to the cap. *)

val alloc_frame : t -> int
(** A fresh zeroed frame; returns its frame number. Raises [Failure] with
    an "out of physical frames" message once [max_frames] frames are live —
    a shared pool feeding several cores exhausts memory as a policy matter,
    not as an array bound fault. *)

val frame_count : t -> int

val max_frames : t -> int

val frame_bytes : t -> int -> Bytes.t
(** Raw backing store of a frame (for block operations such as the crypt
    technique's in-place encryption). Raises [Invalid_argument] for an
    unallocated frame. *)

val read64 : t -> frame:int -> off:int -> int
val write64 : t -> frame:int -> off:int -> int -> unit

val read64_trusted : t -> frame:int -> off:int -> int
(** {!read64} minus the frame range check: for callers whose frame number
    provably came from {!alloc_frame} (the MMU's TLB-backed hot path).
    The byte offset remains bounds-checked. *)

val write64_trusted : t -> frame:int -> off:int -> int -> unit
(** {!write64} minus the frame range check; see {!read64_trusted}. *)

val read8 : t -> frame:int -> off:int -> int
val write8 : t -> frame:int -> off:int -> int -> unit

val read_block16 : t -> frame:int -> off:int -> Bytes.t
(** 16-byte read (xmm load); [off] must be within the frame. *)

val read_block16_into : t -> frame:int -> off:int -> dst:Bytes.t -> dpos:int -> unit
(** Blit a 16-byte block into [dst] at [dpos] — no intermediate buffer. *)

val write_block16_from : t -> frame:int -> off:int -> src:Bytes.t -> spos:int -> unit
(** Blit a 16-byte block from [src] at [spos] — no intermediate buffer. *)

val write_block16 : t -> frame:int -> off:int -> Bytes.t -> unit
