let lat_l1 = 4
let lat_l2 = 12
let lat_l3 = 44
let lat_dram = 251

let line_bits = 6 (* 64-byte lines *)

type level = {
  sets : int;
  ways : int;
  tags : int array; (* sets*ways, -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mru : int array;
      (* per set: the way hit or installed last. Purely an access hint —
         probes check it before scanning, and with temporal locality it
         almost always matches, collapsing the common L1 hit from an
         up-to-[ways] tag scan to one compare. Never consulted for
         hit/miss or victim decisions, so outcomes are identical with or
         without it (a stale hint just falls back to the scan). *)
  mutable hits : int;
  mutable evictions : int;
      (* installs that displaced a valid line (conflict/capacity victim) —
         observability only, never consulted by the model *)
}

type served = L1 | L2 | L3 | Dram

(* The socket-level tier: one L3 and one DRAM counter shared by every
   core's cache view. It keeps its own LRU clock, advanced once per
   L3-tier access; within the tier the stamp order is the access order,
   which is all LRU victim selection compares — so a single-core machine
   behaves bit-for-bit as it did when L3 shared the core clock. *)
type shared_l3 = {
  l3 : level;
  mutable dram : int;
  mutable sclock : int;
}

type t = {
  l1 : level;
  l2 : level;
  shared : shared_l3;
  mutable clock : int;
  mutable last : served;
}

let level ~sets ~ways =
  {
    sets;
    ways;
    tags = Array.make (sets * ways) (-1);
    stamps = Array.make (sets * ways) 0;
    mru = Array.make sets 0;
    hits = 0;
    evictions = 0;
  }

let create_shared_l3 () = { l3 = level ~sets:8192 ~ways:16; dram = 0; sclock = 0 }

let create_core shared =
  {
    l1 = level ~sets:64 ~ways:8;
    l2 = level ~sets:512 ~ways:8;
    shared;
    clock = 0;
    last = L1;
  }

let create () = create_core (create_shared_l3 ())

let shared_tier t = t.shared

(* Probe one level; on hit refresh LRU, on miss install with LRU eviction. *)
let probe lvl line clock =
  let set = line land (lvl.sets - 1) in
  let base = set * lvl.ways in
  let tags = lvl.tags and stamps = lvl.stamps in
  let h = Array.unsafe_get lvl.mru set in
  if Array.unsafe_get tags (base + h) = line then begin
    (* MRU hint hit: with temporal locality this is the overwhelmingly
       common case, one compare instead of the scan below. *)
    Array.unsafe_set stamps (base + h) clock;
    lvl.hits <- lvl.hits + 1;
    true
  end
  else begin
    (* Linear scan as a loop, not a local [rec] function: a local recursive
       function becomes a heap closure over [lvl]/[line]/[base] on every
       probe, the last allocation on the memory fast path. The refs compile
       to registers. Accesses are unchecked: [base + i < sets * ways], the
       array length, by construction — and this scan runs once per level per
       simulated memory access. *)
    let w = ref (-1) in
    let i = ref 0 in
    while !w < 0 && !i < lvl.ways do
      if Array.unsafe_get tags (base + !i) = line then w := !i;
      incr i
    done;
    let w = !w in
    if w >= 0 then begin
      Array.unsafe_set stamps (base + w) clock;
      Array.unsafe_set lvl.mru set w;
      lvl.hits <- lvl.hits + 1;
      true
    end
    else begin
      (* install over LRU victim *)
      let victim = ref 0 in
      for i = 1 to lvl.ways - 1 do
        if Array.unsafe_get stamps (base + i) < Array.unsafe_get stamps (base + !victim) then
          victim := i
      done;
      if Array.unsafe_get tags (base + !victim) >= 0 then lvl.evictions <- lvl.evictions + 1;
      Array.unsafe_set tags (base + !victim) line;
      Array.unsafe_set stamps (base + !victim) clock;
      Array.unsafe_set lvl.mru set !victim;
      false
    end
  end

(* Everything past an L1 MRU-hint hit: the L1 scan, then the lower
   levels. Outlined so {!access}'s inlined fast path stays a handful of
   instructions. *)
let access_below_l1_mru t line =
  if probe t.l1 line t.clock then begin
    t.last <- L1;
    lat_l1
  end
  else if probe t.l2 line t.clock then begin
    t.last <- L2;
    lat_l2
  end
  else begin
    (* Below L2 the access leaves the core: the shared tier stamps with
       its own clock so LRU order reflects socket-wide access order, not
       one core's private instruction count. *)
    let s = t.shared in
    s.sclock <- s.sclock + 1;
    if probe s.l3 line s.sclock then begin
      t.last <- L3;
      lat_l3
    end
    else begin
      s.dram <- s.dram + 1;
      t.last <- Dram;
      lat_dram
    end
  end

(* The L1 MRU-hint hit — the overwhelmingly common access under temporal
   locality — inlined into the caller (one mask, one compare, two
   stores); everything else takes the outlined call. Identical outcomes
   and statistics to running {!probe} directly: the fast path is
   [probe]'s first branch verbatim. *)
let[@inline always] access t ~addr =
  t.clock <- t.clock + 1;
  let line = addr lsr line_bits in
  let lvl = t.l1 in
  let set = line land (lvl.sets - 1) in
  let slot = (set * lvl.ways) + Array.unsafe_get lvl.mru set in
  if Array.unsafe_get lvl.tags slot = line then begin
    Array.unsafe_set lvl.stamps slot t.clock;
    lvl.hits <- lvl.hits + 1;
    t.last <- L1;
    lat_l1
  end
  else access_below_l1_mru t line

let last_served t = t.last

let served_name = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | Dram -> "DRAM"

let flush t =
  Array.fill t.l1.tags 0 (Array.length t.l1.tags) (-1);
  Array.fill t.l2.tags 0 (Array.length t.l2.tags) (-1);
  Array.fill t.shared.l3.tags 0 (Array.length t.shared.l3.tags) (-1)

let l1_hits t = t.l1.hits
let l2_hits t = t.l2.hits
let l3_hits t = t.shared.l3.hits
let dram_accesses t = t.shared.dram
let l1_evictions t = t.l1.evictions
let l2_evictions t = t.l2.evictions
let l3_evictions t = t.shared.l3.evictions

let reset_stats t =
  t.l1.hits <- 0;
  t.l2.hits <- 0;
  t.shared.l3.hits <- 0;
  t.shared.dram <- 0;
  t.l1.evictions <- 0;
  t.l2.evictions <- 0;
  t.shared.l3.evictions <- 0
