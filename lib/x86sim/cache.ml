let lat_l1 = 4
let lat_l2 = 12
let lat_l3 = 44
let lat_dram = 251

let line_bits = 6 (* 64-byte lines *)

type level = {
  sets : int;
  ways : int;
  tags : int array; (* sets*ways, -1 = invalid *)
  stamps : int array; (* LRU timestamps *)
  mutable hits : int;
}

type served = L1 | L2 | L3 | Dram

type t = {
  l1 : level;
  l2 : level;
  l3 : level;
  mutable dram : int;
  mutable clock : int;
  mutable last : served;
}

let create () =
  {
    l1 = { sets = 64; ways = 8; tags = Array.make 512 (-1); stamps = Array.make 512 0; hits = 0 };
    l2 = { sets = 512; ways = 8; tags = Array.make 4096 (-1); stamps = Array.make 4096 0; hits = 0 };
    l3 = { sets = 8192; ways = 16; tags = Array.make 131072 (-1); stamps = Array.make 131072 0; hits = 0 };
    dram = 0;
    clock = 0;
    last = L1;
  }

(* Probe one level; on hit refresh LRU, on miss install with LRU eviction. *)
let probe lvl line clock =
  let set = line land (lvl.sets - 1) in
  let base = set * lvl.ways in
  (* Linear scan as a loop, not a local [rec] function: a local recursive
     function becomes a heap closure over [lvl]/[line]/[base] on every
     probe, the last allocation on the memory fast path. The refs compile
     to registers. *)
  let w = ref (-1) in
  let i = ref 0 in
  while !w < 0 && !i < lvl.ways do
    if lvl.tags.(base + !i) = line then w := !i;
    incr i
  done;
  let w = !w in
  if w >= 0 then begin
    lvl.stamps.(base + w) <- clock;
    lvl.hits <- lvl.hits + 1;
    true
  end
  else begin
    (* install over LRU victim *)
    let victim = ref 0 in
    for i = 1 to lvl.ways - 1 do
      if lvl.stamps.(base + i) < lvl.stamps.(base + !victim) then victim := i
    done;
    lvl.tags.(base + !victim) <- line;
    lvl.stamps.(base + !victim) <- clock;
    false
  end

let access t ~addr =
  t.clock <- t.clock + 1;
  let line = addr lsr line_bits in
  if probe t.l1 line t.clock then begin
    t.last <- L1;
    lat_l1
  end
  else if probe t.l2 line t.clock then begin
    t.last <- L2;
    lat_l2
  end
  else if probe t.l3 line t.clock then begin
    t.last <- L3;
    lat_l3
  end
  else begin
    t.dram <- t.dram + 1;
    t.last <- Dram;
    lat_dram
  end

let last_served t = t.last

let served_name = function L1 -> "L1" | L2 -> "L2" | L3 -> "L3" | Dram -> "DRAM"

let flush t =
  Array.fill t.l1.tags 0 (Array.length t.l1.tags) (-1);
  Array.fill t.l2.tags 0 (Array.length t.l2.tags) (-1);
  Array.fill t.l3.tags 0 (Array.length t.l3.tags) (-1)

let l1_hits t = t.l1.hits
let l2_hits t = t.l2.hits
let l3_hits t = t.l3.hits
let dram_accesses t = t.dram

let reset_stats t =
  t.l1.hits <- 0;
  t.l2.hits <- 0;
  t.l3.hits <- 0;
  t.dram <- 0
