(** A multi-vCPU machine: N {!Cpu} cores over one shared memory system.

    The shared layer ({!Mmu.shared}) owns physical memory, the page table,
    the EPTP list, the mmap cursor, and the L3+DRAM cache tier; each vCPU
    owns its registers, TLB, PKRU, private L1/L2, pipeline, store buffer,
    and translated-code cache (see DESIGN.md, "Machine model").

    Execution is a deterministic round-robin quantum scheduler: core 0
    runs up to [quantum] instructions, then core 1, and so on, wrapping
    until every core halts or exhausts its fuel. There is no wall-clock or
    host-thread nondeterminism anywhere — two runs of the same machine are
    byte-identical, which is what makes cross-core interleavings (gate
    races, shootdown windows) reproducible and differentially testable.

    Before each quantum, a core takes any pending TLB-shootdown IPI:
    {!Mmu.acknowledge_shootdown} (TLB flush), {!Cpu.flush_translations}
    (predecoded-block cache), and {!Cpu.ipi_deliver_cost} cycles.

    A 1-vCPU machine is behaviorally identical to calling {!Cpu.run}
    directly (invariant-tested in [test_fastpath.ml]): the quantum
    chaining is invisible because fuel accounting is exact, and none of
    the SMP costs arm with a single core attached. *)

type t

val create : ?vcpus:int -> ?stack_pages:int -> ?max_frames:int -> unit -> t
(** [vcpus] cores (default 1) over a fresh shared memory system. Core [i]
    gets a [stack_pages]-page stack topping out at
    [Layout.stack_top - i * Layout.stack_stride]. [max_frames] bounds the
    shared frame pool. *)

val vcpus : t -> int
val cpu : t -> int -> Cpu.t
val cpus : t -> Cpu.t array
val shared : t -> Mmu.shared

val default_quantum : int
(** 1000 instructions. *)

val run : ?fuel:int -> ?quantum:int -> t -> Cpu.status
(** Run every core round-robin in [quantum]-instruction slices until all
    halt ([Halted]) or each has retired [fuel] instructions
    ([Out_of_fuel]; default 50 million {e per core}). Cores that halt or
    exhaust fuel early are skipped; the rest keep interleaving. *)

val deliver_shootdown : Cpu.t -> unit
(** Take a pending TLB-shootdown IPI on this core if one is outstanding:
    TLB flush + translated-code invalidation + delivery cost. {!run} calls
    this at every quantum boundary; exposed for harnesses that interleave
    cores manually. *)

val total_insns : t -> int
(** Sum of retired instructions over all cores. *)

val max_cycles : t -> float
(** The slowest core's cycle count — the machine's makespan. *)
