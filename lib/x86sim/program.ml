type item = Label of string | I of Insn.t

type t = { code : Insn.t array; label_tbl : (string, int) Hashtbl.t }

let assemble items =
  let label_tbl = Hashtbl.create 64 in
  let count = List.fold_left (fun n -> function Label _ -> n | I _ -> n + 1) 0 items in
  (* No padding for the empty program: [Array.make (max count 1)] would
     give a label-only listing a phantom Nop at index 0, so executing it
     silently retired an instruction instead of faulting at fetch. *)
  let code = Array.make count Insn.Nop in
  let idx = ref 0 in
  List.iter
    (function
      | Label name ->
        if Hashtbl.mem label_tbl name then
          invalid_arg (Printf.sprintf "Program.assemble: duplicate label %S" name);
        Hashtbl.add label_tbl name !idx
      | I insn ->
        code.(!idx) <- insn;
        incr idx)
    items;
  let resolve (tgt : Insn.target) =
    match Hashtbl.find_opt label_tbl tgt.tname with
    | Some i -> tgt.tidx <- i
    | None -> invalid_arg (Printf.sprintf "Program.assemble: undefined label %S" tgt.tname)
  in
  Array.iter (fun insn -> List.iter resolve (Insn.targets insn)) code;
  { code; label_tbl }

let code t = t.code
let length t = Array.length t.code

let label_index t name =
  match Hashtbl.find_opt t.label_tbl name with
  | Some i -> i
  | None -> raise Not_found

let has_label t name = Hashtbl.mem t.label_tbl name

let labels t = Hashtbl.fold (fun k v acc -> (k, v) :: acc) t.label_tbl []

let fetch t idx =
  if idx < 0 || idx >= Array.length t.code then
    Fault.raise_fault (Fault.Gp_fault (Printf.sprintf "instruction fetch outside code at %d" idx))
  else t.code.(idx)

let pp fmt t =
  let by_index = Hashtbl.create 64 in
  Hashtbl.iter
    (fun name idx ->
      let prev = try Hashtbl.find by_index idx with Not_found -> [] in
      Hashtbl.replace by_index idx (name :: prev))
    t.label_tbl;
  Array.iteri
    (fun i insn ->
      (match Hashtbl.find_opt by_index i with
      | Some names -> List.iter (fun n -> Format.fprintf fmt "%s:@." n) names
      | None -> ());
      Format.fprintf fmt "  %4d  %s@." i (Insn.to_string insn))
    t.code
