open Ms_util

type counters = {
  mutable insns : int;
  mutable loads : int;
  mutable stores : int;
  mutable calls : int;
  mutable rets : int;
  mutable ind_branches : int;
  mutable syscalls : int;
  mutable vmfuncs : int;
  mutable vmcalls : int;
  mutable wrpkrus : int;
  mutable aes_ops : int;
  mutable bnd_checks : int;
  mutable faults : int;
  mutable vm_exits : int;
}

type fault_action = Fault_halt | Fault_skip | Fault_reraise
type status = Halted | Out_of_fuel

type t = {
  gpr : int array;
  xmm : Bytes.t;
  bnd_lower : int array;
  bnd_upper : int array;
  mutable bnd_enabled : bool;
  mutable cmp : int;
  mutable rip : int;
  mutable halted : bool;
  mutable virtualized : bool;
  mutable syscall_hypercall_tax : bool;
  mutable wrpkru_serialize : bool;
  mmu : Mmu.t;
  pipe : Pipeline.t;
  pio : float array;
      (* [Pipeline.io pipe], cached: the float parameter/result channel of
         [Pipeline.issue_fast]. Indexed reads/writes never box, unlike
         float-returning accessors. *)
  sb_line : int array;
      (* store buffer, direct-mapped by 64-byte line (VA-keyed; there is no
         aliasing in this machine): [sb_line] holds the line tag (-1 =
         empty), [sb_ready] the cycle the stored data becomes forwardable.
         Bounded, unlike the Hashtbl it replaces, so memory stays flat on
         arbitrarily long runs; a colliding store simply evicts the older
         line's entry, which can only relax (never add) an ordering edge
         for a store so old it no longer constrains the present. *)
  sb_ready : float array;
  counters : counters;
  mutable site_of : int array;
      (* CPI attribution map: [site_of.(rip)] is the Pipeline row charged
         for instruction [rip] (0 = un-attributed application row). [||]
         (the default) disables per-site attribution: everything lands in
         the pipeline's single default row, and the per-instruction cost
         is one length compare per block chain. Installed by
         [set_site_rows]; must cover the whole code array. *)
  mutable program : Program.t;
  mutable tcache : Ublock.cache;
      (* predecoded basic-block translations of [program]; swapped when
         the program changes identity, generation-bumped by
         [flush_translations] *)
  mutable traces : Trace.tier;
      (* profile-guided superblocks over [tcache]; swapped with it on
         program-identity change, torn down eagerly by
         [flush_translations] *)
  mutable sl_vpn : int array;
      (* the executing trace's inline translation slots
         ([Trace.tr_slot_vpn]/[_info]/[_tok]), aliased here by
         [exec_trace] on entry so the cached-uop arms of [exec_uop] reach
         them without threading the trace through every call. [||] when no
         trace is executing — safe, because the [U*_c] shapes only occur
         inside optimized trace bodies. *)
  mutable sl_info : int array;
  mutable sl_tok : int array;
  mutable syscall_handler : t -> unit;
  mutable vmcall_handler : t -> unit;
  mutable ept_violation_handler : t -> gpa:int -> access:Fault.access -> bool;
  mutable fault_handler : t -> Fault.t -> fault_action;
  mutable step_hooks : (int * (t -> Insn.t -> unit)) array;
      (* registered hooks live in [0, n_step_hooks); the arrays are
         append-amortized dynamic arrays so registration is O(1) and
         iteration is index-based (no per-step closure or list walk) *)
  mutable n_step_hooks : int;
  mutable event_hooks : (int * (Event.t -> unit)) array;
  mutable n_event_hooks : int;
  mutable next_hook_id : int;
}

(* Store-buffer capacity in 64-byte lines. Power of two (direct-mapped
   index is a mask). 4096 lines = 256 KiB of tracked stores — far beyond
   the window in which a store's completion time can still gate a load. *)
let sb_slots = 4096

(* Cost-model constants, calibrated against the paper's Table 4. *)
let syscall_cost = 108.0
let vmfunc_cost = 147.0
let vmcall_cost = 613.0
let wrpkru_cost = 55.0
let ept_violation_cost = 1200.0
let mprotect_kernel_cost = 1000.0
let io_kernel_cost = 4000.0

(* Cross-core TLB shootdown: the initiator spins until every remote core
   acknowledges its IPI (send + wait, charged per remote core); each
   remote pays interrupt delivery + the flush on its side when it next
   runs. Magnitudes follow the kernel-mediated costs above — a shootdown
   round trip is somewhat heavier than the local mprotect kernel work. *)
let ipi_cost = 1500.0
let ipi_deliver_cost = 500.0

let sys_nop = 0
let sys_write = 1
let sys_mmap = 9
let sys_mprotect = 10
let sys_munmap = 11
let sys_exit = 60
let sys_pkey_mprotect = 329
let sys_io = 17

let new_counters () =
  {
    insns = 0; loads = 0; stores = 0; calls = 0; rets = 0; ind_branches = 0;
    syscalls = 0; vmfuncs = 0; vmcalls = 0; wrpkrus = 0; aes_ops = 0;
    bnd_checks = 0; faults = 0; vm_exits = 0;
  }

let get_gpr t r = t.gpr.(r)
let set_gpr t r v = t.gpr.(r) <- v

let get_xmm t i = Bytes.sub t.xmm (32 * i) 16
let set_xmm t i b = Bytes.blit b 0 t.xmm (32 * i) 16
let get_ymm_high t i = Bytes.sub t.xmm ((32 * i) + 16) 16
let set_ymm_high t i b = Bytes.blit b 0 t.xmm ((32 * i) + 16) 16

(* Unboxed 64-bit access into the vector-register file. As compiler
   primitives chained through [Int64] primitives, the values stay in
   registers (see the note in physmem.ml); the stdlib [Bytes.get_int64_le]
   equivalents would box one [int64] per lane. Offsets into [t.xmm] are
   8-aligned by construction. *)
external xmm_get64 : Bytes.t -> int -> int64 = "%caml_bytes_get64"
external xmm_set64 : Bytes.t -> int -> int64 -> unit = "%caml_bytes_set64"

(* dst <- dst xor src over one 16-byte lane, in place: the hot vector op
   ([Fp_arith]/[Pxor] stand-in semantics) without the three 16-byte
   temporaries that [get_xmm]/[Aes.xor_block]/[set_xmm] would allocate.
   xor is endianness-agnostic, so native-endian lanes are fine. *)
let xmm_xor_into t d s =
  let xmm = t.xmm in
  let db = 32 * d and sb = 32 * s in
  xmm_set64 xmm db (Int64.logxor (xmm_get64 xmm db) (xmm_get64 xmm sb));
  xmm_set64 xmm (db + 8) (Int64.logxor (xmm_get64 xmm (db + 8)) (xmm_get64 xmm (sb + 8)))

let pkru t = t.mmu.Mmu.pkru
let set_pkru t v = t.mmu.Mmu.pkru <- v land 0xFFFFFFFF

(* Charge the initiating core for waiting out the shootdown IPIs its
   mapping change just broadcast: one send+acknowledge round trip per
   remote core, serializing (the kernel spins with interrupts off until
   all acks arrive). On a single-core machine this is a no-op, so the
   single-core cycle stream is untouched by the SMP model. *)
let charge_shootdown_ipis t =
  let remotes = Mmu.core_count t.mmu - 1 in
  if remotes > 0 then
    Pipeline.issue t.pipe ~serialize:true
      ~lat:(float_of_int remotes *. ipi_cost)
      ~port:Pipeline.p_special ()

let default_syscall_handler t =
  let nr = t.gpr.(Reg.rax) in
  if nr = sys_exit then t.halted <- true
  else if nr = sys_mmap then begin
    let len = Bitops.align_up Physmem.page_size (max t.gpr.(Reg.rsi) Physmem.page_size) in
    (* Machine-level cursor: cores share one address space, so sibling
       mmaps interleave without overlapping (guard page included). *)
    t.gpr.(Reg.rax) <- Mmu.mmap_alloc t.mmu ~len ~writable:true
  end
  else if nr = sys_mprotect then begin
    let addr = t.gpr.(Reg.rdi) and len = t.gpr.(Reg.rsi) and prot = t.gpr.(Reg.rdx) in
    Mmu.protect_range t.mmu ~va:addr ~len ~readable:(prot land 1 = 1)
      ~writable:(prot land 2 = 2);
    Pipeline.issue t.pipe ~serialize:true ~lat:mprotect_kernel_cost ~port:Pipeline.p_special ();
    charge_shootdown_ipis t;
    t.gpr.(Reg.rax) <- 0
  end
  else if nr = sys_munmap then begin
    let addr = t.gpr.(Reg.rdi) and len = t.gpr.(Reg.rsi) in
    Mmu.unmap_range t.mmu ~va:addr ~len;
    Pipeline.issue t.pipe ~serialize:true ~lat:mprotect_kernel_cost ~port:Pipeline.p_special ();
    charge_shootdown_ipis t;
    t.gpr.(Reg.rax) <- 0
  end
  else if nr = sys_pkey_mprotect then begin
    let addr = t.gpr.(Reg.rdi) and len = t.gpr.(Reg.rsi) and key = t.gpr.(Reg.r10) in
    Mmu.set_pkey_range t.mmu ~va:addr ~len ~key;
    Pipeline.issue t.pipe ~serialize:true ~lat:mprotect_kernel_cost ~port:Pipeline.p_special ();
    charge_shootdown_ipis t;
    t.gpr.(Reg.rax) <- 0
  end
  else if nr = sys_io then begin
    Pipeline.issue t.pipe ~serialize:true ~lat:io_kernel_cost ~port:Pipeline.p_special ();
    t.gpr.(Reg.rax) <- 4096 (* bytes transferred *)
  end
  else if nr = sys_write || nr = sys_nop then t.gpr.(Reg.rax) <- 0
  else t.gpr.(Reg.rax) <- -38 (* ENOSYS *)

(* Build a core over an existing MMU view. Core [i]'s stack tops out at
   [Layout.stack_top - i * stack_stride], so siblings sharing the address
   space get disjoint stacks; core 0 lands exactly where the single-core
   machine always did. *)
let create_on ?(stack_pages = 64) mmu =
  let stack_top = Layout.stack_top - (Mmu.core_id mmu * Layout.stack_stride) in
  let stack_len = stack_pages * Physmem.page_size in
  Mmu.map_range mmu ~va:(stack_top - stack_len) ~len:stack_len ~writable:true;
  let pipe = Pipeline.create () in
  let program = Program.assemble [ Program.I Insn.Halt ] in
  let t =
    {
      gpr = Array.make Reg.gpr_count 0;
      xmm = Bytes.make (16 * 32) '\000';
      bnd_lower = Array.make Reg.bnd_count 0;
      bnd_upper = Array.make Reg.bnd_count max_int;
      bnd_enabled = true;
      cmp = 0;
      rip = 0;
      halted = false;
      virtualized = false;
      syscall_hypercall_tax = true;
      wrpkru_serialize = true;
      mmu;
      pipe;
      pio = Pipeline.io pipe;
      sb_line = Array.make sb_slots (-1);
      sb_ready = Array.make sb_slots 0.0;
      counters = new_counters ();
      site_of = [||];
      program;
      tcache = Ublock.create program;
      traces = Trace.create ~code_len:(Program.length program);
      sl_vpn = [||];
      sl_info = [||];
      sl_tok = [||];
      syscall_handler = default_syscall_handler;
      vmcall_handler = (fun _ -> Fault.raise_fault (Fault.Undefined "vmcall: no hypervisor"));
      ept_violation_handler = (fun _ ~gpa:_ ~access:_ -> false);
      fault_handler = (fun _ _ -> Fault_reraise);
      step_hooks = [||];
      n_step_hooks = 0;
      event_hooks = [||];
      n_event_hooks = 0;
      next_hook_id = 0;
    }
  in
  t.gpr.(Reg.rsp) <- stack_top - 64;
  t

let create ?stack_pages () = create_on ?stack_pages (Mmu.create ())

(* ------------------------------------------------------------------ *)
(* Hooks and event emission                                            *)
(* ------------------------------------------------------------------ *)

let fresh_hook_id t =
  let id = t.next_hook_id in
  t.next_hook_id <- id + 1;
  id

(* Amortized-O(1) ordered append: grow by doubling, slide on removal.
   Registration order is the array order, so iteration order matches the
   old list semantics without the old [l @ [x]] quadratic re-copying. *)
let hook_append arr n entry dummy =
  let arr =
    if n < Array.length arr then arr
    else begin
      let bigger = Array.make (max 4 (2 * Array.length arr)) dummy in
      Array.blit arr 0 bigger 0 n;
      bigger
    end
  in
  arr.(n) <- entry;
  arr

let hook_remove arr n id dummy =
  let j = ref 0 in
  for i = 0 to n - 1 do
    let (hid, _) as h = arr.(i) in
    if hid <> id then begin
      arr.(!j) <- h;
      incr j
    end
  done;
  for i = !j to n - 1 do
    arr.(i) <- dummy (* drop closure references past the live prefix *)
  done;
  !j

let dummy_step_hook : int * (t -> Insn.t -> unit) = (-1, fun _ _ -> ())
let dummy_event_hook : int * (Event.t -> unit) = (-1, fun _ -> ())

let add_step_hook t f =
  let id = fresh_hook_id t in
  t.step_hooks <- hook_append t.step_hooks t.n_step_hooks (id, f) dummy_step_hook;
  t.n_step_hooks <- t.n_step_hooks + 1;
  id

let remove_step_hook t id =
  t.n_step_hooks <- hook_remove t.step_hooks t.n_step_hooks id dummy_step_hook

let add_event_hook t f =
  let id = fresh_hook_id t in
  t.event_hooks <- hook_append t.event_hooks t.n_event_hooks (id, f) dummy_event_hook;
  t.n_event_hooks <- t.n_event_hooks + 1;
  id

let remove_event_hook t id =
  t.n_event_hooks <- hook_remove t.event_hooks t.n_event_hooks id dummy_event_hook

let has_event_hooks t = t.n_event_hooks > 0

let emit t ev =
  for i = 0 to t.n_event_hooks - 1 do
    (snd t.event_hooks.(i)) ev
  done

(* CPI-stack memory-class hint: translate the side state of the MMU/cache
   access that just happened into a one-shot Pipeline attribution class
   for the issue that follows. A TLB miss dominates (the walk is the bulk
   of the latency); otherwise the class names the cache level that missed
   (served-by-L2 = L1 miss, and so on). L1 hits leave the hint untouched
   so they attribute to base/port/store-buffer as usual. *)
let[@inline] note_mem_class t =
  let mmu = t.mmu in
  if mmu.Mmu.last_tlb_miss then Pipeline.set_cls t.pipe Pipeline.cls_tlb
  else
    match Cache.last_served mmu.Mmu.cache with
    | Cache.L1 -> ()
    | Cache.L2 -> Pipeline.set_cls t.pipe Pipeline.cls_l1_miss
    | Cache.L3 -> Pipeline.set_cls t.pipe Pipeline.cls_l2_miss
    | Cache.Dram -> Pipeline.set_cls t.pipe Pipeline.cls_l3_miss

(* Memory-event emission, called right after an MMU access while [t.rip]
   still points at the responsible instruction. The [n_event_hooks] guard
   keeps the un-instrumented hot path allocation-free; the CPI class hint
   is unconditional (a pair of scalar stores at most). *)
let emit_mem t va =
  note_mem_class t;
  if t.n_event_hooks > 0 then begin
    if t.mmu.Mmu.last_tlb_miss then emit t (Event.Tlb_miss { rip = t.rip; va });
    match Cache.last_served t.mmu.Mmu.cache with
    | Cache.L1 -> ()
    | (Cache.L2 | Cache.L3 | Cache.Dram) as level ->
      emit t (Event.Cache_miss { rip = t.rip; va; level })
  end

let load_program t prog =
  t.program <- prog;
  if not (Ublock.owns t.tcache prog) then begin
    t.tcache <- Ublock.create prog;
    t.traces <- Trace.recreate t.traces ~code_len:(Program.length prog)
  end;
  t.halted <- false;
  t.rip <- (if Program.has_label prog "main" then Program.label_index prog "main" else 0)

(* Eager invalidation. The generation bump alone keeps stale *blocks*
   from being entered (every entry re-checks [bgen]), but superblocks
   bake direct block references and side-exit stubs in, so the trace tier
   is torn down outright — a stale side-exit can never execute — and the
   block tier's cached successor links are severed rather than left
   dangling into the flushed generation. *)
let flush_translations t =
  Ublock.invalidate t.tcache;
  Ublock.drop_links t.tcache;
  Trace.invalidate_all t.traces

let set_traces_enabled t on = Trace.set_enabled t.traces on
let traces_enabled t = t.traces.Trace.enabled
let set_trace_fusion t on = Trace.set_optimize t.traces on
let trace_fusion t = t.traces.Trace.optimize

let install_trace_hoist_facts t facts = Trace.install_hoist_facts t.traces facts

let cycles t = Pipeline.cycles t.pipe

let reset_measurement t =
  Pipeline.reset t.pipe;
  let c = t.counters in
  c.insns <- 0; c.loads <- 0; c.stores <- 0; c.calls <- 0; c.rets <- 0;
  c.ind_branches <- 0; c.syscalls <- 0; c.vmfuncs <- 0; c.vmcalls <- 0;
  c.wrpkrus <- 0; c.aes_ops <- 0; c.bnd_checks <- 0; c.faults <- 0;
  c.vm_exits <- 0

let set_site_rows t map ~rows =
  if Array.length map < Program.length t.program then
    invalid_arg "Cpu.set_site_rows: map shorter than the code array";
  let bad = ref (-1) in
  Array.iter (fun r -> if r < 0 || r >= rows then bad := r) map;
  if !bad >= 0 then
    invalid_arg (Printf.sprintf "Cpu.set_site_rows: row %d out of [0, %d)" !bad rows);
  t.site_of <- map;
  Pipeline.install_rows t.pipe rows

let clear_site_rows t =
  t.site_of <- [||];
  Pipeline.install_rows t.pipe 1

(* ------------------------------------------------------------------ *)
(* Execution                                                           *)
(* ------------------------------------------------------------------ *)

let ea t (m : Insn.mem) =
  (if m.base >= 0 then t.gpr.(m.base) else 0)
  + (if m.index >= 0 then t.gpr.(m.index) * m.scale else 0)
  + m.disp

(* Store-to-load forwarding is not free: a dependent load sees the stored
   value ~5 cycles after the store executes (Skylake-like). *)
let forward_delay = 5.0

(* Record the just-issued store's completion (still sitting in the
   pipeline's io slot) against its cache line. Called right after the
   store's [Pipeline.issue_fast]. *)
let note_store t va =
  let line = va lsr 6 in
  (* [s] is masked into [0, sb_slots) and the arrays are sb_slots long by
     construction, so the accesses here and in [set_load_dep] skip the
     bounds check: together they run once per simulated load or store. *)
  let s = line land (sb_slots - 1) in
  Array.unsafe_set t.sb_line s line;
  Array.unsafe_set t.sb_ready s (t.pio.(Pipeline.io_comp) +. forward_delay)

(* Arm the next issue's dependency floor with the forwarding time of the
   youngest store to this line, if still tracked. Writes the pipeline's
   io slot (which self-resets) instead of returning a float: a float
   return from a non-inlined function is a heap allocation. *)
let set_load_dep t va =
  let line = va lsr 6 in
  let s = line land (sb_slots - 1) in
  if Array.unsafe_get t.sb_line s = line then
    t.pio.(Pipeline.io_dep) <- Array.unsafe_get t.sb_ready s

let mem_src1 (m : Insn.mem) = if m.base >= 0 then Reg.pipe_gpr m.base else Reg.pipe_none
let mem_src2 (m : Insn.mem) = if m.index >= 0 then Reg.pipe_gpr m.index else Reg.pipe_none

let eval_cond t (c : Insn.cond) =
  match c with
  | Insn.Eq -> t.cmp = 0
  | Insn.Ne -> t.cmp <> 0
  | Insn.Lt -> t.cmp < 0
  | Insn.Le -> t.cmp <= 0
  | Insn.Gt -> t.cmp > 0
  | Insn.Ge -> t.cmp >= 0

let alu_apply (op : Insn.alu) a b =
  match op with
  | Insn.Add -> a + b
  | Insn.Sub -> a - b
  | Insn.And -> a land b
  | Insn.Or -> a lor b
  | Insn.Xor -> a lxor b
  | Insn.Shl -> a lsl (b land 63)
  | Insn.Shr -> a lsr (b land 63)
  | Insn.Imul -> a * b

let alu_lat (op : Insn.alu) = match op with Insn.Imul -> 3 | _ -> 1

let nr = Reg.pipe_none

let push t v =
  t.gpr.(Reg.rsp) <- t.gpr.(Reg.rsp) - 8;
  let va = t.gpr.(Reg.rsp) in
  Mmu.write64_fast t.mmu ~va v;
  emit_mem t va;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr Reg.rsp) ~s2:nr ~s3:nr ~d1:nr ~d2:nr
      ~lat:1 ~port:Pipeline.p_store;
  note_store t va

let pop t =
  let va = t.gpr.(Reg.rsp) in
  let v = Mmu.read64_fast t.mmu ~va in
  emit_mem t va;
  set_load_dep t va;
  Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr Reg.rsp) ~s2:nr ~s3:nr ~d1:nr ~d2:nr
       ~lat:t.mmu.Mmu.last_lat ~port:Pipeline.p_load;
  t.gpr.(Reg.rsp) <- t.gpr.(Reg.rsp) + 8;
  v

let aes_binop t f d s ~lat =
  let result = f (get_xmm t d) (get_xmm t s) in
  set_xmm t d result;
  t.counters.aes_ops <- t.counters.aes_ops + 1;
  Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_xmm d) ~s2:(Reg.pipe_xmm s) ~s3:nr
       ~d1:(Reg.pipe_xmm d) ~d2:nr ~lat ~port:Pipeline.p_aes

let exec t (insn : Insn.t) =
  let c = t.counters in
  let next = t.rip + 1 in
  match insn with
  | Insn.Nop ->
    Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:0
         ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Halt -> t.halted <- true
  | Insn.Mov_rr (d, s) ->
    t.gpr.(d) <- t.gpr.(s);
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr s) ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr d)
         ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Mov_ri (d, i) ->
    t.gpr.(d) <- i;
    Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr d) ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Mov_label (d, tgt) ->
    t.gpr.(d) <- tgt.Insn.tidx;
    Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr d) ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Load (d, m) ->
    let va = ea t m in
    let v = Mmu.read64_fast t.mmu ~va in
    emit_mem t va;
    t.gpr.(d) <- v;
    c.loads <- c.loads + 1;
    set_load_dep t va;
    Pipeline.issue_fast t.pipe ~s1:(mem_src1 m) ~s2:(mem_src2 m) ~s3:nr
         ~d1:(Reg.pipe_gpr d) ~d2:nr ~lat:t.mmu.Mmu.last_lat ~port:Pipeline.p_load;
    t.rip <- next
  | Insn.Store (m, s) ->
    let va = ea t m in
    Mmu.write64_fast t.mmu ~va t.gpr.(s);
    emit_mem t va;
    c.stores <- c.stores + 1;
        Pipeline.issue_fast t.pipe ~s1:(mem_src1 m) ~s2:(mem_src2 m) ~s3:(Reg.pipe_gpr s)
        ~d1:nr ~d2:nr ~lat:1 ~port:Pipeline.p_store;
    note_store t va;
    t.rip <- next
  | Insn.Store_i (m, i) ->
    let va = ea t m in
    Mmu.write64_fast t.mmu ~va i;
    emit_mem t va;
    c.stores <- c.stores + 1;
        Pipeline.issue_fast t.pipe ~s1:(mem_src1 m) ~s2:(mem_src2 m) ~s3:nr ~d1:nr ~d2:nr
        ~lat:1 ~port:Pipeline.p_store;
    note_store t va;
    t.rip <- next
  | Insn.Lea (d, m) ->
    t.gpr.(d) <- ea t m;
    Pipeline.issue_fast t.pipe ~s1:(mem_src1 m) ~s2:(mem_src2 m) ~s3:nr
         ~d1:(Reg.pipe_gpr d) ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Lea32 (d, m) ->
    (* Address-size prefix: truncation happens in address generation. *)
    t.gpr.(d) <- ea t m land 0xFFFFFFFF;
    Pipeline.issue_fast t.pipe ~s1:(mem_src1 m) ~s2:(mem_src2 m) ~s3:nr
         ~d1:(Reg.pipe_gpr d) ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Alu_rr (op, d, s) ->
    let r = alu_apply op t.gpr.(d) t.gpr.(s) in
    t.gpr.(d) <- r;
    t.cmp <- r;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr d) ~s2:(Reg.pipe_gpr s) ~s3:nr
         ~d1:(Reg.pipe_gpr d) ~d2:Reg.pipe_flags ~lat:(alu_lat op)
         ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Alu_ri (op, d, i) ->
    let r = alu_apply op t.gpr.(d) i in
    t.gpr.(d) <- r;
    t.cmp <- r;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr d) ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr d)
         ~d2:Reg.pipe_flags ~lat:(alu_lat op) ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Cmp_rr (a, b) ->
    t.cmp <- t.gpr.(a) - t.gpr.(b);
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr a) ~s2:(Reg.pipe_gpr b) ~s3:nr
         ~d1:Reg.pipe_flags ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Cmp_ri (a, i) ->
    t.cmp <- t.gpr.(a) - i;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr a) ~s2:nr ~s3:nr ~d1:Reg.pipe_flags
         ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Test_rr (a, b) ->
    t.cmp <- t.gpr.(a) land t.gpr.(b);
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr a) ~s2:(Reg.pipe_gpr b) ~s3:nr
         ~d1:Reg.pipe_flags ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Jmp tgt ->
    Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
         ~port:Pipeline.p_branch;
    t.rip <- tgt.Insn.tidx
  | Insn.Jcc (cond, tgt) ->
    Pipeline.issue_fast t.pipe ~s1:Reg.pipe_flags ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1 ~port:Pipeline.p_branch;
    t.rip <- (if eval_cond t cond then tgt.Insn.tidx else next)
  | Insn.Jmp_r r ->
    c.ind_branches <- c.ind_branches + 1;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr r) ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1 ~port:Pipeline.p_branch;
    t.rip <- t.gpr.(r)
  | Insn.Call tgt ->
    c.calls <- c.calls + 1;
    push t next;
    Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
         ~port:Pipeline.p_branch;
    t.rip <- tgt.Insn.tidx
  | Insn.Call_r r ->
    c.calls <- c.calls + 1;
    c.ind_branches <- c.ind_branches + 1;
    push t next;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr r) ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1 ~port:Pipeline.p_branch;
    t.rip <- t.gpr.(r)
  | Insn.Ret ->
    c.rets <- c.rets + 1;
    let v = pop t in
    Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
         ~port:Pipeline.p_branch;
    t.rip <- v
  | Insn.Push r ->
    c.stores <- c.stores + 1;
    push t t.gpr.(r);
    t.rip <- next
  | Insn.Pop r ->
    c.loads <- c.loads + 1;
    t.gpr.(r) <- pop t;
    t.rip <- next
  | Insn.Syscall ->
    c.syscalls <- c.syscalls + 1;
    if t.virtualized && t.syscall_hypercall_tax then begin
      (* Dune-style process virtualization: the guest's syscall traps to the
         hypervisor and is forwarded — the paper's main source of VMFUNC
         overhead on syscall-heavy code. *)
      c.vmcalls <- c.vmcalls + 1;
      c.vm_exits <- c.vm_exits + 1;
      if t.n_event_hooks > 0 then emit t (Event.Vm_exit { rip = t.rip; reason = "syscall" });
      Pipeline.issue t.pipe ~serialize:true ~lat:vmcall_cost ~port:Pipeline.p_special ()
    end
    else Pipeline.issue t.pipe ~serialize:true ~lat:syscall_cost ~port:Pipeline.p_special ();
    t.syscall_handler t;
    t.rip <- next
  | Insn.Mfence ->
    Pipeline.issue t.pipe ~serialize:true ~lat:6.0 ~port:Pipeline.p_special ();
    t.rip <- next
  | Insn.Cpuid ->
    Pipeline.issue t.pipe ~serialize:true ~lat:100.0 ~port:Pipeline.p_special ();
    t.rip <- next
  | Insn.Bnd_set (b, lo, hi) ->
    t.bnd_lower.(b) <- lo;
    t.bnd_upper.(b) <- hi;
    Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:(Reg.pipe_bnd b) ~d2:nr ~lat:1 ~port:Pipeline.p_mpx;
    t.rip <- next
  | Insn.Bndcu (b, r) ->
    c.bnd_checks <- c.bnd_checks + 1;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr r) ~s2:(Reg.pipe_bnd b) ~s3:nr ~d1:nr
         ~d2:nr ~lat:1 ~port:Pipeline.p_mpx;
    if t.bnd_enabled && t.gpr.(r) > t.bnd_upper.(b) then
      Fault.raise_fault
        (Fault.Bound_violation
           { value = t.gpr.(r); lower = t.bnd_lower.(b); upper = t.bnd_upper.(b); reg = b });
    t.rip <- next
  | Insn.Bndcl (b, r) ->
    c.bnd_checks <- c.bnd_checks + 1;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr r) ~s2:(Reg.pipe_bnd b) ~s3:nr ~d1:nr
         ~d2:nr ~lat:1 ~port:Pipeline.p_mpx;
    if t.bnd_enabled && t.gpr.(r) < t.bnd_lower.(b) then
      Fault.raise_fault
        (Fault.Bound_violation
           { value = t.gpr.(r); lower = t.bnd_lower.(b); upper = t.bnd_upper.(b); reg = b });
    t.rip <- next
  | Insn.Bndmov_store (m, b) ->
    (* Two 8-byte stores; each gets its own memory-event attribution (the
       first access's TLB/cache outcome used to be overwritten by the
       second before the single trailing emit). *)
    let a = ea t m in
    Mmu.write64_fast t.mmu ~va:a t.bnd_lower.(b);
    emit_mem t a;
    Mmu.write64_fast t.mmu ~va:(a + 8) t.bnd_upper.(b);
    emit_mem t (a + 8);
    c.stores <- c.stores + 1;
        Pipeline.issue_fast t.pipe ~s1:(mem_src1 m) ~s2:(mem_src2 m) ~s3:(Reg.pipe_bnd b)
        ~d1:nr ~d2:nr ~lat:1 ~port:Pipeline.p_store;
    note_store t a;
    t.rip <- next
  | Insn.Bndmov_load (b, m) ->
    let a = ea t m in
    let lo = Mmu.read64_fast t.mmu ~va:a in
    let lat1 = t.mmu.Mmu.last_lat in
    emit_mem t a;
    let hi = Mmu.read64_fast t.mmu ~va:(a + 8) in
    emit_mem t (a + 8);
    t.bnd_lower.(b) <- lo;
    t.bnd_upper.(b) <- hi;
    c.loads <- c.loads + 1;
    set_load_dep t a;
    Pipeline.issue_fast t.pipe ~s1:(mem_src1 m) ~s2:(mem_src2 m) ~s3:nr
         ~d1:(Reg.pipe_bnd b) ~d2:nr ~lat:lat1
         ~port:Pipeline.p_load;
    t.rip <- next
  | Insn.Wrpkru ->
    if t.gpr.(Reg.rcx) <> 0 || t.gpr.(Reg.rdx) <> 0 then
      Fault.raise_fault (Fault.Gp_fault "wrpkru requires rcx = rdx = 0");
    c.wrpkrus <- c.wrpkrus + 1;
    set_pkru t t.gpr.(Reg.rax);
    if t.n_event_hooks > 0 then begin
      (* pkru = 0 means every key is permissive: the sensitive domain is
         open. Any restriction bit set means it is (being) closed. *)
      let gate = Event.Pkru (pkru t) in
      emit t
        (if pkru t = 0 then Event.Gate_enter { rip = t.rip; gate }
         else Event.Gate_exit { rip = t.rip; gate })
    end;
    Pipeline.issue t.pipe ~s1:(Reg.pipe_gpr Reg.rax) ~d1:Reg.pipe_pkru
      ~serialize:t.wrpkru_serialize ~lat:wrpkru_cost ~port:Pipeline.p_special ();
    t.rip <- next
  | Insn.Rdpkru ->
    if t.gpr.(Reg.rcx) <> 0 then Fault.raise_fault (Fault.Gp_fault "rdpkru requires rcx = 0");
    t.gpr.(Reg.rax) <- pkru t;
    Pipeline.issue_fast t.pipe ~s1:Reg.pipe_pkru ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr Reg.rax)
         ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Vmfunc ->
    if not t.virtualized then
      Fault.raise_fault (Fault.Undefined "vmfunc outside VMX non-root mode");
    if t.gpr.(Reg.rax) <> 0 then
      Fault.raise_fault (Fault.Gp_fault "vmfunc: only function 0 (EPTP switching) exists");
    let idx = t.gpr.(Reg.rcx) in
    if idx < 0 || idx >= Array.length (Mmu.ept_list t.mmu) then
      Fault.raise_fault (Fault.Gp_fault (Printf.sprintf "vmfunc: EPTP index %d out of range" idx));
    t.mmu.Mmu.ept_index <- idx;
    c.vmfuncs <- c.vmfuncs + 1;
    if t.n_event_hooks > 0 then begin
      (* EPT 0 is the non-sensitive view by the Vmx.Sandbox convention;
         switching to any other EPTP opens a sensitive view. *)
      let gate = Event.Ept idx in
      emit t
        (if idx <> 0 then Event.Gate_enter { rip = t.rip; gate }
         else Event.Gate_exit { rip = t.rip; gate })
    end;
    Pipeline.issue t.pipe ~s1:(Reg.pipe_gpr Reg.rax) ~s2:(Reg.pipe_gpr Reg.rcx)
      ~serialize:true ~lat:vmfunc_cost ~port:Pipeline.p_special ();
    t.rip <- next
  | Insn.Vmcall ->
    if not t.virtualized then
      Fault.raise_fault (Fault.Undefined "vmcall outside VMX non-root mode");
    c.vmcalls <- c.vmcalls + 1;
    c.vm_exits <- c.vm_exits + 1;
    if t.n_event_hooks > 0 then emit t (Event.Vm_exit { rip = t.rip; reason = "vmcall" });
    Pipeline.issue t.pipe ~serialize:true ~lat:vmcall_cost ~port:Pipeline.p_special ();
    t.vmcall_handler t;
    t.rip <- next
  | Insn.Movdqa_load (x, m) ->
    let va = ea t m in
    Mmu.read_block16_into t.mmu ~va ~dst:t.xmm ~dpos:(32 * x);
    emit_mem t va;
    c.loads <- c.loads + 1;
    set_load_dep t va;
    Pipeline.issue_fast t.pipe ~s1:(mem_src1 m) ~s2:(mem_src2 m) ~s3:nr
         ~d1:(Reg.pipe_xmm x) ~d2:nr ~lat:t.mmu.Mmu.last_lat ~port:Pipeline.p_load;
    t.rip <- next
  | Insn.Movdqa_store (m, x) ->
    let va = ea t m in
    Mmu.write_block16_from t.mmu ~va ~src:t.xmm ~spos:(32 * x);
    emit_mem t va;
    c.stores <- c.stores + 1;
        Pipeline.issue_fast t.pipe ~s1:(mem_src1 m) ~s2:(mem_src2 m) ~s3:(Reg.pipe_xmm x)
        ~d1:nr ~d2:nr ~lat:1 ~port:Pipeline.p_store;
    note_store t va;
    t.rip <- next
  | Insn.Movq_xr (x, r) ->
    (* Low lane <- gpr (little-endian, as the rest of the register file
       expects), high lane <- 0 — without building a 16-byte temporary. *)
    if Sys.big_endian then Bytes.set_int64_le t.xmm (32 * x) (Int64.of_int t.gpr.(r))
    else xmm_set64 t.xmm (32 * x) (Int64.of_int t.gpr.(r));
    xmm_set64 t.xmm ((32 * x) + 8) 0L;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr r) ~s2:nr ~s3:nr ~d1:(Reg.pipe_xmm x)
         ~d2:nr ~lat:2 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Movq_rx (r, x) ->
    t.gpr.(r) <-
      (if Sys.big_endian then Int64.to_int (Bytes.get_int64_le t.xmm (32 * x))
       else Int64.to_int (xmm_get64 t.xmm (32 * x)));
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_xmm x) ~s2:nr ~s3:nr ~d1:(Reg.pipe_gpr r)
         ~d2:nr ~lat:2 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Pxor (d, s) ->
    xmm_xor_into t d s;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_xmm d) ~s2:(Reg.pipe_xmm s) ~s3:nr
         ~d1:(Reg.pipe_xmm d) ~d2:nr ~lat:1 ~port:Pipeline.p_alu;
    t.rip <- next
  | Insn.Aesenc (d, s) ->
    aes_binop t Aesni.Aes.aesenc d s ~lat:4;
    t.rip <- next
  | Insn.Aesenclast (d, s) ->
    aes_binop t Aesni.Aes.aesenclast d s ~lat:4;
    t.rip <- next
  | Insn.Aesdec (d, s) ->
    aes_binop t Aesni.Aes.aesdec d s ~lat:4;
    t.rip <- next
  | Insn.Aesdeclast (d, s) ->
    aes_binop t Aesni.Aes.aesdeclast d s ~lat:4;
    t.rip <- next
  | Insn.Aeskeygenassist (d, s, imm) ->
    set_xmm t d (Aesni.Aes.aeskeygenassist (get_xmm t s) imm);
    c.aes_ops <- c.aes_ops + 1;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_xmm s) ~s2:nr ~s3:nr ~d1:(Reg.pipe_xmm d)
         ~d2:nr ~lat:12 ~port:Pipeline.p_aes;
    t.rip <- next
  | Insn.Aesimc (d, s) ->
    set_xmm t d (Aesni.Aes.aesimc (get_xmm t s));
    c.aes_ops <- c.aes_ops + 1;
    (* Microcoded: occupies the AES unit for its full latency. *)
    Pipeline.issue t.pipe ~s1:(Reg.pipe_xmm s) ~d1:(Reg.pipe_xmm d) ~lat:8.0 ~busy:8.0
      ~port:Pipeline.p_aes ();
    t.rip <- next
  | Insn.Vext_high (d, s) ->
    set_xmm t d (get_ymm_high t s);
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_xmm s) ~s2:nr ~s3:nr ~d1:(Reg.pipe_xmm d)
         ~d2:nr ~lat:3 ~port:Pipeline.p_special;
    t.rip <- next
  | Insn.Vins_high (d, s) ->
    set_ymm_high t d (get_xmm t s);
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_xmm s) ~s2:(Reg.pipe_xmm d) ~s3:nr
         ~d1:(Reg.pipe_xmm d) ~d2:nr ~lat:3 ~port:Pipeline.p_special;
    t.rip <- next
  | Insn.Fp_arith (d, s) ->
    (* Deterministic stand-in semantics: dst <- dst xor src (low lane). *)
    xmm_xor_into t d s;
    Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_xmm d) ~s2:(Reg.pipe_xmm s) ~s3:nr
         ~d1:(Reg.pipe_xmm d) ~d2:nr ~lat:4 ~port:Pipeline.p_fp;
    t.rip <- next

let deliver t f saved_rip =
  t.counters.faults <- t.counters.faults + 1;
  if t.n_event_hooks > 0 then emit t (Event.Fault { rip = saved_rip; fault = f });
  match t.fault_handler t f with
  | Fault_halt -> t.halted <- true
  | Fault_skip -> t.rip <- saved_rip + 1
  | Fault_reraise -> raise (Fault.Fault f)

(* Execute one fetched instruction with fault handling and EPT-retry. A
   top-level recursive function (not a closure inside [step]): the closure
   version allocated on every step, fault or not. *)
let rec exec_attempt t insn saved n =
  try exec t insn with
  | Fault.Fault (Fault.Ept_violation { gpa; access; _ } as f) ->
    t.counters.vm_exits <- t.counters.vm_exits + 1;
    if t.n_event_hooks > 0 then emit t (Event.Vm_exit { rip = saved; reason = "ept-violation" });
    Pipeline.issue t.pipe ~serialize:true ~lat:ept_violation_cost ~port:Pipeline.p_special ();
    if n < 8 && t.ept_violation_handler t ~gpa ~access then begin
      t.rip <- saved;
      exec_attempt t insn saved (n + 1)
    end
    else deliver t f saved
  | Fault.Fault f -> deliver t f saved

let step t =
  if not t.halted then begin
    let saved = t.rip in
    let insn = Program.fetch t.program saved in
    for i = 0 to t.n_step_hooks - 1 do
      (snd t.step_hooks.(i)) t insn
    done;
    (* Same per-site CPI attribution as the translated loop ([saved] is
       in-bounds here: the fetch above would have faulted otherwise). *)
    let map = t.site_of in
    if saved < Array.length map then
      Pipeline.set_row t.pipe (Array.unsafe_get map saved);
    t.counters.insns <- t.counters.insns + 1;
    exec_attempt t insn saved 0
  end

(* ------------------------------------------------------------------ *)
(* Translated execution (predecoded basic blocks)                      *)
(* ------------------------------------------------------------------ *)

(* Effective address of a general-shape predecoded memory operand
   (-1 = absent register, as in [Insn.mem]). *)
let[@inline] ea_gen t base index scale disp =
  (if base >= 0 then t.gpr.(base) else 0)
  + (if index >= 0 then t.gpr.(index) * scale else 0)
  + disp

(* Inline-translation slot access for the trace tier's optimized memory
   uops: probe the per-site slot first — a matching vpn under a
   still-valid {!Mmu.generation_token} proves a real TLB probe would hit
   with exactly the cached entry, so [Mmu.read64_cached] short-circuits
   the probe and walk (the hit is still posted to TLB statistics and
   every architectural check re-runs live). A miss takes the full eager
   path and then recharges the slot from the entry the walk just
   installed — unless EPT is on, under which tokens are never valid.

   Adaptive kill: the token covers every TLB mutation, so a workload
   whose TLB thrashes (pointer chasing past TLB reach) invalidates all
   tokens on every fill — each probe then misses and the recharge is
   wasted work on top of the full translation it just paid for.
   [slot_miss] audits the hit/miss ratio once per 8192 misses and sets
   [tier.inline_dead] when the hits aren't carrying their weight; from
   then on the optimized uops branch straight to the eager path. The
   switch is per-tier (= per program), so a thrashing profile cannot
   disable the slots of a well-behaved one, and it is observationally
   free either way (the miss path {e is} the eager path). *)
let slot_miss (tier : Trace.tier) =
  tier.Trace.inline_misses <- tier.Trace.inline_misses + 1;
  if
    tier.Trace.inline_misses land 8191 = 0
    && tier.Trace.inline_hits < 4 * tier.Trace.inline_misses
  then tier.Trace.inline_dead <- true

let[@inline] cached_load t ~va ~d ~slot ~meta =
  let mmu = t.mmu in
  let tier = t.traces in
  let v =
    if tier.Trace.inline_dead then Mmu.read64_fast mmu ~va
    else begin
      let vpn = va lsr Mmu.page_bits in
      if
        Array.unsafe_get t.sl_vpn slot = vpn
        && Mmu.token_valid mmu ~token:(Array.unsafe_get t.sl_tok slot)
      then begin
        tier.Trace.inline_hits <- tier.Trace.inline_hits + 1;
        Mmu.read64_cached mmu ~va ~info:(Array.unsafe_get t.sl_info slot)
      end
      else begin
        slot_miss tier;
        let v = Mmu.read64_fast mmu ~va in
        if not mmu.Mmu.ept_on then begin
          Array.unsafe_set t.sl_vpn slot vpn;
          Array.unsafe_set t.sl_info slot (Mmu.slot_info_for mmu ~vpn);
          Array.unsafe_set t.sl_tok slot (Mmu.generation_token mmu)
        end;
        v
      end
    end
  in
  note_mem_class t;
  t.gpr.(d) <- v;
  t.counters.loads <- t.counters.loads + 1;
  set_load_dep t va;
  Pipeline.issue_packed t.pipe ~meta ~lat:mmu.Mmu.last_lat

let[@inline] cached_store t ~va ~v ~slot ~meta =
  let mmu = t.mmu in
  let tier = t.traces in
  (if tier.Trace.inline_dead then Mmu.write64_fast mmu ~va v
   else begin
     let vpn = va lsr Mmu.page_bits in
     if
       Array.unsafe_get t.sl_vpn slot = vpn
       && Mmu.token_valid mmu ~token:(Array.unsafe_get t.sl_tok slot)
     then begin
       tier.Trace.inline_hits <- tier.Trace.inline_hits + 1;
       Mmu.write64_cached mmu ~va ~info:(Array.unsafe_get t.sl_info slot) v
     end
     else begin
       slot_miss tier;
       Mmu.write64_fast mmu ~va v;
       if not mmu.Mmu.ept_on then begin
         Array.unsafe_set t.sl_vpn slot vpn;
         Array.unsafe_set t.sl_info slot (Mmu.slot_info_for mmu ~vpn);
         Array.unsafe_set t.sl_tok slot (Mmu.generation_token mmu)
       end
     end
   end);
  note_mem_class t;
  t.counters.stores <- t.counters.stores + 1;
  Pipeline.issue_packed_static t.pipe ~meta;
  note_store t va

(* Execute one predecoded micro-op: the corresponding [exec] arm minus
   the decode (operands and issue metadata are frozen in the uop), minus
   the [rip] bookkeeping (the block loop owns it), and minus the
   [emit_mem] probes (translated execution only runs with zero event
   hooks, and nothing inside a block body can attach one) — memory arms
   call [note_mem_class] directly for the CPI-stack hint that [emit_mem]
   would have supplied. Mutation order within each arm matches [exec]
   exactly, so a fault unwinds with identical partial state. *)
let exec_uop t (u : Ublock.uop) =
  let c = t.counters in
  match u with
  | Ublock.Unop { meta } -> Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Umov_rr { d; s; meta } ->
    t.gpr.(d) <- t.gpr.(s);
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Umov_ri { d; imm; meta } ->
    t.gpr.(d) <- imm;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Uload_bd { d; base; disp; meta } ->
    let va = t.gpr.(base) + disp in
    let v = Mmu.read64_fast t.mmu ~va in
    note_mem_class t;
    t.gpr.(d) <- v;
    c.loads <- c.loads + 1;
    set_load_dep t va;
    Pipeline.issue_packed t.pipe ~meta ~lat:t.mmu.Mmu.last_lat
  | Ublock.Uload_gen { d; base; index; scale; disp; meta } ->
    let va = ea_gen t base index scale disp in
    let v = Mmu.read64_fast t.mmu ~va in
    note_mem_class t;
    t.gpr.(d) <- v;
    c.loads <- c.loads + 1;
    set_load_dep t va;
    Pipeline.issue_packed t.pipe ~meta ~lat:t.mmu.Mmu.last_lat
  | Ublock.Ustore_bd { s; base; disp; meta } ->
    let va = t.gpr.(base) + disp in
    Mmu.write64_fast t.mmu ~va t.gpr.(s);
    note_mem_class t;
    c.stores <- c.stores + 1;
    Pipeline.issue_packed_static t.pipe ~meta;
    note_store t va
  | Ublock.Ustore_gen { s; base; index; scale; disp; meta } ->
    let va = ea_gen t base index scale disp in
    Mmu.write64_fast t.mmu ~va t.gpr.(s);
    note_mem_class t;
    c.stores <- c.stores + 1;
    Pipeline.issue_packed_static t.pipe ~meta;
    note_store t va
  | Ublock.Ustorei_bd { imm; base; disp; meta } ->
    let va = t.gpr.(base) + disp in
    Mmu.write64_fast t.mmu ~va imm;
    note_mem_class t;
    c.stores <- c.stores + 1;
    Pipeline.issue_packed_static t.pipe ~meta;
    note_store t va
  | Ublock.Ustorei_gen { imm; base; index; scale; disp; meta } ->
    let va = ea_gen t base index scale disp in
    Mmu.write64_fast t.mmu ~va imm;
    note_mem_class t;
    c.stores <- c.stores + 1;
    Pipeline.issue_packed_static t.pipe ~meta;
    note_store t va
  | Ublock.Ulea { d; base; index; scale; disp; meta } ->
    t.gpr.(d) <- ea_gen t base index scale disp;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Ulea32 { d; base; index; scale; disp; meta } ->
    t.gpr.(d) <- ea_gen t base index scale disp land 0xFFFFFFFF;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Ualu_rr { op; d; s; meta } ->
    let r = alu_apply op t.gpr.(d) t.gpr.(s) in
    t.gpr.(d) <- r;
    t.cmp <- r;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Ualu_ri { op; d; imm; meta } ->
    let r = alu_apply op t.gpr.(d) imm in
    t.gpr.(d) <- r;
    t.cmp <- r;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Ucmp_rr { a; b; meta } ->
    t.cmp <- t.gpr.(a) - t.gpr.(b);
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Ucmp_ri { a; imm; meta } ->
    t.cmp <- t.gpr.(a) - imm;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Utest_rr { a; b; meta } ->
    t.cmp <- t.gpr.(a) land t.gpr.(b);
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Upush { s } ->
    c.stores <- c.stores + 1;
    push t t.gpr.(s)
  | Ublock.Upop { d } ->
    c.loads <- c.loads + 1;
    t.gpr.(d) <- pop t
  | Ublock.Ubnd_set { b; lo; hi; meta } ->
    t.bnd_lower.(b) <- lo;
    t.bnd_upper.(b) <- hi;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Ubndc { upper; b; r; meta } ->
    c.bnd_checks <- c.bnd_checks + 1;
    Pipeline.issue_packed_static t.pipe ~meta;
    if
      t.bnd_enabled
      && (if upper then t.gpr.(r) > t.bnd_upper.(b) else t.gpr.(r) < t.bnd_lower.(b))
    then
      Fault.raise_fault
        (Fault.Bound_violation
           { value = t.gpr.(r); lower = t.bnd_lower.(b); upper = t.bnd_upper.(b); reg = b })
  | Ublock.Ubndmov_store { b; base; index; scale; disp; meta } ->
    let a = ea_gen t base index scale disp in
    Mmu.write64_fast t.mmu ~va:a t.bnd_lower.(b);
    Mmu.write64_fast t.mmu ~va:(a + 8) t.bnd_upper.(b);
    note_mem_class t;
    c.stores <- c.stores + 1;
    Pipeline.issue_packed_static t.pipe ~meta;
    note_store t a
  | Ublock.Ubndmov_load { b; base; index; scale; disp; meta } ->
    let a = ea_gen t base index scale disp in
    let lo = Mmu.read64_fast t.mmu ~va:a in
    note_mem_class t;
    let lat1 = t.mmu.Mmu.last_lat in
    let hi = Mmu.read64_fast t.mmu ~va:(a + 8) in
    t.bnd_lower.(b) <- lo;
    t.bnd_upper.(b) <- hi;
    c.loads <- c.loads + 1;
    set_load_dep t a;
    Pipeline.issue_packed t.pipe ~meta ~lat:lat1
  | Ublock.Urdpkru { meta } ->
    if t.gpr.(Reg.rcx) <> 0 then Fault.raise_fault (Fault.Gp_fault "rdpkru requires rcx = 0");
    t.gpr.(Reg.rax) <- pkru t;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Umovdqa_load { x; base; index; scale; disp; meta } ->
    let va = ea_gen t base index scale disp in
    Mmu.read_block16_into t.mmu ~va ~dst:t.xmm ~dpos:(32 * x);
    note_mem_class t;
    c.loads <- c.loads + 1;
    set_load_dep t va;
    Pipeline.issue_packed t.pipe ~meta ~lat:t.mmu.Mmu.last_lat
  | Ublock.Umovdqa_store { x; base; index; scale; disp; meta } ->
    let va = ea_gen t base index scale disp in
    Mmu.write_block16_from t.mmu ~va ~src:t.xmm ~spos:(32 * x);
    note_mem_class t;
    c.stores <- c.stores + 1;
    Pipeline.issue_packed_static t.pipe ~meta;
    note_store t va
  | Ublock.Umovq_xr { x; r; meta } ->
    if Sys.big_endian then Bytes.set_int64_le t.xmm (32 * x) (Int64.of_int t.gpr.(r))
    else xmm_set64 t.xmm (32 * x) (Int64.of_int t.gpr.(r));
    xmm_set64 t.xmm ((32 * x) + 8) 0L;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Umovq_rx { r; x; meta } ->
    t.gpr.(r) <-
      (if Sys.big_endian then Int64.to_int (Bytes.get_int64_le t.xmm (32 * x))
       else Int64.to_int (xmm_get64 t.xmm (32 * x)));
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Uxmm_xor { d; s; meta } ->
    xmm_xor_into t d s;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Uaes { f; d; s } -> aes_binop t f d s ~lat:4
  | Ublock.Uaeskeygen { d; s; imm; meta } ->
    set_xmm t d (Aesni.Aes.aeskeygenassist (get_xmm t s) imm);
    c.aes_ops <- c.aes_ops + 1;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Uaesimc { d; s } ->
    set_xmm t d (Aesni.Aes.aesimc (get_xmm t s));
    c.aes_ops <- c.aes_ops + 1;
    Pipeline.issue t.pipe ~s1:(Reg.pipe_xmm s) ~d1:(Reg.pipe_xmm d) ~lat:8.0 ~busy:8.0
      ~port:Pipeline.p_aes ()
  | Ublock.Uvext_high { d; s; meta } ->
    set_xmm t d (get_ymm_high t s);
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Uvins_high { d; s; meta } ->
    set_ymm_high t d (get_xmm t s);
    Pipeline.issue_packed_static t.pipe ~meta
  (* --- Trace-lane optimized shapes (Traceopt). Each arm is the eager
     arm above with either the flag write dropped (_nf), an inline
     translation slot consulted before the full Mmu path (_c), or two
     eager arms glued into one dispatch (the fused shapes). Observable order —
     fault points, counter bumps, pipeline issues — matches the eager
     sequence exactly. *)
  | Ublock.Ualu_rr_nf { op; d; s; meta } ->
    t.gpr.(d) <- alu_apply op t.gpr.(d) t.gpr.(s);
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Ualu_ri_nf { op; d; imm; meta } ->
    t.gpr.(d) <- alu_apply op t.gpr.(d) imm;
    Pipeline.issue_packed_static t.pipe ~meta
  | Ublock.Uload_bd_c { d; base; disp; slot; meta } ->
    let va = t.gpr.(base) + disp in
    cached_load t ~va ~d ~slot ~meta
  | Ublock.Uload_gen_c { d; base; index; scale; disp; slot; meta } ->
    let va = ea_gen t base index scale disp in
    cached_load t ~va ~d ~slot ~meta
  | Ublock.Ustore_bd_c { s; base; disp; slot; meta } ->
    let va = t.gpr.(base) + disp in
    cached_store t ~va ~v:t.gpr.(s) ~slot ~meta
  | Ublock.Ustore_gen_c { s; base; index; scale; disp; slot; meta } ->
    let va = ea_gen t base index scale disp in
    cached_store t ~va ~v:t.gpr.(s) ~slot ~meta
  | Ublock.Ustorei_bd_c { imm; base; disp; slot; meta } ->
    let va = t.gpr.(base) + disp in
    cached_store t ~va ~v:imm ~slot ~meta
  | Ublock.Ustorei_gen_c { imm; base; index; scale; disp; slot; meta } ->
    let va = ea_gen t base index scale disp in
    cached_store t ~va ~v:imm ~slot ~meta
  | Ublock.Ufuse_mask_load { op; d; imm; nf; m1; ld; disp; slot; m2 } ->
    let r = alu_apply op t.gpr.(d) imm in
    t.gpr.(d) <- r;
    if not nf then t.cmp <- r;
    Pipeline.issue_packed_static t.pipe ~meta:m1;
    cached_load t ~va:(r + disp) ~d:ld ~slot ~meta:m2
  | Ublock.Ufuse_mask_store { op; d; imm; nf; m1; s; disp; slot; m2 } ->
    let r = alu_apply op t.gpr.(d) imm in
    t.gpr.(d) <- r;
    if not nf then t.cmp <- r;
    Pipeline.issue_packed_static t.pipe ~meta:m1;
    cached_store t ~va:(r + disp) ~v:t.gpr.(s) ~slot ~meta:m2
  | Ublock.Ufuse_mask_storei { op; d; imm; nf; m1; simm; disp; slot; m2 } ->
    let r = alu_apply op t.gpr.(d) imm in
    t.gpr.(d) <- r;
    if not nf then t.cmp <- r;
    Pipeline.issue_packed_static t.pipe ~meta:m1;
    cached_store t ~va:(r + disp) ~v:simm ~slot ~meta:m2
  | Ublock.Ufuse_lea_bndc { d; base; index; scale; disp; w32; m1; upper; b; m2 } ->
    let ea = ea_gen t base index scale disp in
    let ea = if w32 then ea land 0xFFFFFFFF else ea in
    t.gpr.(d) <- ea;
    c.bnd_checks <- c.bnd_checks + 1;
    Pipeline.issue_packed_pair_static t.pipe ~m1 ~m2;
    if t.bnd_enabled && (if upper then ea > t.bnd_upper.(b) else ea < t.bnd_lower.(b)) then
      Fault.raise_fault
        (Fault.Bound_violation
           { value = ea; lower = t.bnd_lower.(b); upper = t.bnd_upper.(b); reg = b })

(* Follow a static chain edge out of [blk]: honor the cached successor
   link when generation-fresh, otherwise look the target up (compiling on
   demand) and memoize the link. A target outside the code array ends the
   chain — the dispatch loop re-raises it as the fetch fault. *)
let follow_static cache (blk : Ublock.block) bcell chaining target ~taken =
  let nb = if taken then blk.Ublock.succ_taken else blk.Ublock.succ_fall in
  if nb != Ublock.dummy_block && nb.Ublock.bgen = Ublock.generation cache then bcell := nb
  else if target >= 0 && target < Ublock.code_length cache then begin
    let nb = Ublock.get cache target in
    if taken then blk.Ublock.succ_taken <- nb else blk.Ublock.succ_fall <- nb;
    bcell := nb
  end
  else chaining := false

(* Indirect-branch targets change between executions, so they are never
   memoized in the block — just looked up. *)
let follow_dynamic cache bcell chaining target =
  if target >= 0 && target < Ublock.code_length cache then bcell := Ublock.get cache target
  else chaining := false

(* Execute translated blocks starting at [b0], following chain links
   until fuel runs out, the CPU halts, a serializing terminator needs the
   interpreter, or control leaves the code array. Counting discipline is
   the interpreter loop's: [insns] incremented before executing each
   instruction (so a fault unwinds with it counted), [budget] decremented
   after it completes. [t.rip] is re-armed before every uop and before
   the terminator, so faults always unwind with [rip] naming the faulting
   instruction and the EPT-retry handler can resume precisely. *)
let exec_block_chain t cache b0 budget =
  let c = t.counters in
  (* Per-site CPI attribution is active only when an installed map covers
     this cache's whole code array; the check is hoisted to one compare
     per chain (the map cannot change mid-chain — only handlers install
     it, and every handler-running instruction ends the chain). *)
  let map = t.site_of in
  let mapped = Array.length map >= Ublock.code_length cache in
  let bcell = ref b0 in
  let chaining = ref true in
  while !chaining do
    let blk = !bcell in
    let uops = blk.Ublock.uops in
    let n = Array.length uops in
    let entry = blk.Ublock.entry in
    blk.Ublock.exec_count <- Ublock.bump blk.Ublock.exec_count;
    (* Trace-tier formation trigger: one attempt, the moment the counter
       crosses the threshold (equality, so the hot path pays a single
       compare; a disabled tier parks the threshold at [max_int], and
       [try_form] re-checks [enabled] besides). *)
    if blk.Ublock.exec_count = t.traces.Trace.hot_threshold then
      Trace.try_form t.traces cache blk;
    let i = ref 0 in
    (* Two copies of the uop loop so the un-instrumented run (no site map
       installed — the common case) pays nothing per uop for row
       attribution, not even a predictable branch. *)
    if mapped then
      while !i < n && !budget > 0 do
        let rip = entry + !i in
        t.rip <- rip;
        Pipeline.set_row t.pipe (Array.unsafe_get map rip);
        c.insns <- c.insns + 1;
        exec_uop t (Array.unsafe_get uops !i);
        decr budget;
        incr i
      done
    else
      while !i < n && !budget > 0 do
        t.rip <- entry + !i;
        c.insns <- c.insns + 1;
        exec_uop t (Array.unsafe_get uops !i);
        decr budget;
        incr i
      done;
    if !i < n || !budget <= 0 then begin
      (* Fuel exhausted: resume at the first unexecuted instruction
         (the terminator itself when [i = n], since [term_idx = entry + n]). *)
      t.rip <- entry + !i;
      chaining := false
    end
    else begin
      let ti = blk.Ublock.term_idx in
      t.rip <- ti;
      if mapped && ti < Array.length map then
        Pipeline.set_row t.pipe (Array.unsafe_get map ti);
      match blk.Ublock.term with
      | Ublock.Term_fall_off ->
        (* Ran off the end of the code array: the dispatch loop turns
           this rip into the fault [Program.fetch] raises, uncounted,
           exactly as the interpreter loop's fetch would. *)
        chaining := false
      | Ublock.Term_halt ->
        c.insns <- c.insns + 1;
        t.halted <- true;
        decr budget;
        chaining := false
      | Ublock.Term_jmp { target } ->
        c.insns <- c.insns + 1;
        blk.Ublock.taken_count <- Ublock.bump blk.Ublock.taken_count;
        Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
          ~port:Pipeline.p_branch;
        t.rip <- target;
        decr budget;
        follow_static cache blk bcell chaining target ~taken:true
      | Ublock.Term_jcc { cond; target } ->
        c.insns <- c.insns + 1;
        Pipeline.issue_fast t.pipe ~s1:Reg.pipe_flags ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
          ~port:Pipeline.p_branch;
        decr budget;
        if eval_cond t cond then begin
          blk.Ublock.taken_count <- Ublock.bump blk.Ublock.taken_count;
          t.rip <- target;
          follow_static cache blk bcell chaining target ~taken:true
        end
        else begin
          blk.Ublock.fall_count <- Ublock.bump blk.Ublock.fall_count;
          let fall = blk.Ublock.term_idx + 1 in
          t.rip <- fall;
          follow_static cache blk bcell chaining fall ~taken:false
        end
      | Ublock.Term_call { target } ->
        c.insns <- c.insns + 1;
        c.calls <- c.calls + 1;
        blk.Ublock.taken_count <- Ublock.bump blk.Ublock.taken_count;
        push t (blk.Ublock.term_idx + 1);
        Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
          ~port:Pipeline.p_branch;
        t.rip <- target;
        decr budget;
        follow_static cache blk bcell chaining target ~taken:true
      | Ublock.Term_call_r { r } ->
        c.insns <- c.insns + 1;
        c.calls <- c.calls + 1;
        c.ind_branches <- c.ind_branches + 1;
        push t (blk.Ublock.term_idx + 1);
        Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr r) ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
          ~port:Pipeline.p_branch;
        (* Read the target after the push: [r] may be rsp. *)
        let target = t.gpr.(r) in
        Ublock.note_dyn blk target;
        t.rip <- target;
        decr budget;
        follow_dynamic cache bcell chaining target
      | Ublock.Term_jmp_r { r } ->
        c.insns <- c.insns + 1;
        c.ind_branches <- c.ind_branches + 1;
        Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr r) ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
          ~port:Pipeline.p_branch;
        let target = t.gpr.(r) in
        Ublock.note_dyn blk target;
        t.rip <- target;
        decr budget;
        follow_dynamic cache bcell chaining target
      | Ublock.Term_ret ->
        c.insns <- c.insns + 1;
        c.rets <- c.rets + 1;
        let v = pop t in
        Ublock.note_dyn blk v;
        Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
          ~port:Pipeline.p_branch;
        t.rip <- v;
        decr budget;
        follow_dynamic cache bcell chaining v
      | Ublock.Term_exec insn ->
        c.insns <- c.insns + 1;
        exec t insn;
        decr budget;
        (* Serializing/handler instruction: its handler may have attached
           hooks or swapped the program, so always fall back to the
           dispatch loop, which re-checks both. *)
        chaining := false
    end;
    (* If a superblock is registered at the next block's entry, stop
       chaining so the dispatch loop tiers up ([t.rip] already names that
       entry). Cost on the no-trace path: one array load per followed
       edge. *)
    if !chaining && Trace.at t.traces (!bcell).Ublock.entry != Trace.dummy_trace then
      chaining := false
  done

(* ------------------------------------------------------------------ *)
(* Trace-tier execution (superblocks)                                  *)
(* ------------------------------------------------------------------ *)

(* Index of [rip] in a filtered segment's rip table. Cold path: only runs
   when a fault unwinds out of a hoist-filtered segment. The rip was
   armed from this very table, so the scan always terminates. *)
let rec rip_index rips rip i =
  if Array.unsafe_get rips i = rip then i else rip_index rips rip (i + 1)

(* Execute superblock [tr] from its entry until a side exit, its final
   predicted exit, fuel exhaustion, or a fault. Observationally identical
   to running the same blocks through [exec_block_chain] — same counter
   and fuel discipline, same pipeline issues, same profile updates, same
   per-uop [rip] re-arming — but the bookkeeping the block tier pays per
   instruction (insns increment, budget decrement, budget loop test) is
   batched per segment, and fused boundaries cost one segment advance
   instead of a chain-link follow + generation check + registry probe.
   The [Pipeline] scoreboard is continuous across the fused boundaries by
   construction (the block tier never reset it at terminators either), so
   register-ready state propagates through the whole superblock.

   Batching vs fault precision: the careful path arms [rip] before every
   uop (and uops never write it), so when a fault unwinds mid-segment the
   number of uops that completed before the faulting one is recoverable
   from [rip] alone. The fast path drops even that — rip is materialized
   lazily, from the pipeline's issue count, only when a fault actually
   unwinds (see the handler below). Either way the handler settles
   [insns]/[budget] to exactly what the block tier would have accumulated
   (faulting instruction counted, not yet decremented — [run_fast]'s
   delivery path decrements it) and re-raises; EPT-retry's
   [retry_marker = counters.insns] comparison therefore observes
   identical values in either tier.

   Prediction guards (the jcc direction re-check and the indirect-target
   compare) and trace formation itself cost zero simulated cycles: the
   tier models a dispatch optimization of the simulator, not a new
   microarchitectural feature — see DESIGN.md "Trace tier". *)
let exec_trace t (tr : Trace.trace) budget =
  let tier = t.traces in
  let c = t.counters in
  let map = t.site_of in
  let mapped = Array.length map >= tier.Trace.code_len in
  (* Alias this trace's inline-translation slots into the CPU so the
     optimized memory uops index them directly (one array load instead of
     a trace lookup per access). *)
  t.sl_vpn <- tr.Trace.tr_slot_vpn;
  t.sl_info <- tr.Trace.tr_slot_info;
  t.sl_tok <- tr.Trace.tr_slot_tok;
  tr.Trace.tr_execs <- Ublock.bump tr.Trace.tr_execs;
  let cyc0 = Pipeline.cycles t.pipe in
  try
    (* Hoisted-check prologue: empty unless hoist facts were installed.
       Runs once per trace entry (internal loop restarts skip it), with
       eager per-insn accounting — the dispatch guard already ensured
       fuel cannot run out inside it. *)
    let pro = tr.Trace.tr_prologue in
    let npro = Array.length pro in
    if npro > 0 then begin
      let pro_rips = tr.Trace.tr_prologue_rips in
      for i = 0 to npro - 1 do
        let rip = Array.unsafe_get pro_rips i in
        t.rip <- rip;
        if mapped then Pipeline.set_row t.pipe (Array.unsafe_get map rip);
        c.insns <- c.insns + 1;
        tier.Trace.covered_insns <- tier.Trace.covered_insns + 1;
        exec_uop t (Array.unsafe_get pro i);
        decr budget
      done
    end;
    let segs = tr.Trace.tr_segs in
    let last = Array.length segs - 1 in
    let k = ref 0 in
    let running = ref true in
    (* Cross-boundary dead-flag elision: when the previous segment's fast
       path elided its last flag write ([os_pend]), the destination
       register that would have fed [cmp] is parked here. The successor's
       first uop overwrites the flags (that is the elision's legality), so
       the note normally just clears; only when fuel runs out with zero
       successor uops executed must [cmp] be re-materialized from the
       register file before stopping. *)
    let pending = ref (-1) in
    (* Shared terminator stage: mirror of [exec_block_chain]'s terminator
       arms, with the successor lookup replaced by the baked prediction.
       [advance] follows the predicted edge: next segment, loop restart,
       or — past the final segment — fall back to dispatch with [rip]
       already at the predicted continuation. A failed prediction guard is
       a side exit: [rip] is architecturally correct either way, so the
       fall-back costs nothing but the tier switch. *)
    let exec_exit sg (blk : Ublock.block) =
      let ti = blk.Ublock.term_idx in
      t.rip <- ti;
      if mapped && ti < Array.length map then
        Pipeline.set_row t.pipe (Array.unsafe_get map ti);
      c.insns <- c.insns + 1;
      tier.Trace.covered_insns <- tier.Trace.covered_insns + 1;
      let advance () =
        if !k = last then begin
          if tr.Trace.tr_loops then k := 0 else running := false
        end
        else incr k
      in
      let side_exit () =
        tr.Trace.tr_side_exits <- Ublock.bump tr.Trace.tr_side_exits;
        running := false
      in
      match sg.Trace.sg_exit with
      | Trace.X_jmp { target } ->
        blk.Ublock.taken_count <- Ublock.bump blk.Ublock.taken_count;
        Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
          ~port:Pipeline.p_branch;
        t.rip <- target;
        decr budget;
        advance ()
      | Trace.X_jcc { cond; target; fall; predict_taken } ->
        Pipeline.issue_fast t.pipe ~s1:Reg.pipe_flags ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
          ~port:Pipeline.p_branch;
        decr budget;
        let taken = eval_cond t cond in
        if taken then begin
          blk.Ublock.taken_count <- Ublock.bump blk.Ublock.taken_count;
          t.rip <- target
        end
        else begin
          blk.Ublock.fall_count <- Ublock.bump blk.Ublock.fall_count;
          t.rip <- fall
        end;
        if taken = predict_taken then advance () else side_exit ()
      | Trace.X_call { target; retaddr } ->
        c.calls <- c.calls + 1;
        blk.Ublock.taken_count <- Ublock.bump blk.Ublock.taken_count;
        push t retaddr;
        Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
          ~port:Pipeline.p_branch;
        t.rip <- target;
        decr budget;
        advance ()
      | Trace.X_call_r { r; retaddr; predicted } ->
        c.calls <- c.calls + 1;
        c.ind_branches <- c.ind_branches + 1;
        push t retaddr;
        Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr r) ~s2:nr ~s3:nr ~d1:nr ~d2:nr
          ~lat:1 ~port:Pipeline.p_branch;
        (* Read the target after the push: [r] may be rsp. *)
        let target = t.gpr.(r) in
        Ublock.note_dyn blk target;
        t.rip <- target;
        decr budget;
        if target = predicted then advance () else side_exit ()
      | Trace.X_jmp_r { r; predicted } ->
        c.ind_branches <- c.ind_branches + 1;
        Pipeline.issue_fast t.pipe ~s1:(Reg.pipe_gpr r) ~s2:nr ~s3:nr ~d1:nr ~d2:nr
          ~lat:1 ~port:Pipeline.p_branch;
        let target = t.gpr.(r) in
        Ublock.note_dyn blk target;
        t.rip <- target;
        decr budget;
        if target = predicted then advance () else side_exit ()
      | Trace.X_ret { predicted } ->
        c.rets <- c.rets + 1;
        let v = pop t in
        Ublock.note_dyn blk v;
        Pipeline.issue_fast t.pipe ~s1:nr ~s2:nr ~s3:nr ~d1:nr ~d2:nr ~lat:1
          ~port:Pipeline.p_branch;
        t.rip <- v;
        decr budget;
        if v = predicted then advance () else side_exit ()
    in
    while !running do
      let sg = Array.unsafe_get segs !k in
      let blk = sg.Trace.sg_blk in
      blk.Ublock.exec_count <- Ublock.bump blk.Ublock.exec_count;
      let b0 = !budget in
      match sg.Trace.sg_opt with
      | Some o when (not mapped) && b0 > o.Traceopt.os_m ->
        (* Fast path: run the [Traceopt]-rewritten body with lazy rip
           materialization. Fuel strictly exceeds the segment's covered
           instructions, so neither mid-segment resume nor the
           budget-exhausted stop can occur — the terminator always runs.
           No per-uop [rip] re-arm: every optimized uop performs exactly
           one pipeline issue per covered instruction, in program order,
           so a fault's architectural rip is reconstructed in the handler
           from the issue delta against [rec_issue0]. *)
        pending := -1;
        tier.Trace.rec_entry <- blk.Ublock.entry;
        tier.Trace.rec_rips <- sg.Trace.sg_rips;
        tier.Trace.rec_issue0 <- Pipeline.instructions t.pipe;
        tier.Trace.rec_lazy <- true;
        tier.Trace.rec_active <- true;
        let ou = o.Traceopt.os_uops in
        for i = 0 to Array.length ou - 1 do
          exec_uop t (Array.unsafe_get ou i)
        done;
        (* A cmp/test fused with the jcc exit runs here — after the body,
           before the exit stage evaluates the condition: the original
           program order. *)
        (match o.Traceopt.os_flags with
         | None -> ()
         | Some u -> exec_uop t u);
        tier.Trace.rec_active <- false;
        tier.Trace.rec_lazy <- false;
        let m = o.Traceopt.os_m in
        c.insns <- c.insns + m;
        budget := b0 - m;
        tier.Trace.covered_insns <- tier.Trace.covered_insns + m;
        exec_exit sg blk;
        if o.Traceopt.os_pend >= 0 && !running then pending := o.Traceopt.os_pend
      | _ ->
        (* Careful path: the unoptimized body with eager per-uop rip
           re-arm. Taken whenever fuel could run out inside the segment,
           when per-site CPI attribution is on (row switching needs the
           per-uop rip anyway), or when the optimizer is off. *)
        let uops = sg.Trace.sg_uops in
        let rips = sg.Trace.sg_rips in
        let n = Array.length uops in
        let entry = blk.Ublock.entry in
        let lim = if b0 < n then b0 else n in
        if !pending >= 0 then begin
          (* Fuel exhausted exactly at this segment's top: the previous
             segment elided its final flag write, and the uop that would
             overwrite it won't run — re-materialize [cmp] now. *)
          if lim = 0 && n > 0 then t.cmp <- t.gpr.(!pending);
          pending := -1
        end;
        tier.Trace.rec_entry <- entry;
        tier.Trace.rec_rips <- rips;
        tier.Trace.rec_lazy <- false;
        tier.Trace.rec_active <- true;
      (* Four copies of the segment body loop: site-mapped × identity-rip,
         so the common case (no CPI attribution, nothing hoisted) runs
         with zero per-uop overhead beyond the block tier's own loop —
         minus its counter traffic. *)
      if rips == Trace.no_rips then begin
        if mapped then begin
          let i = ref 0 in
          while !i < lim do
            let rip = entry + !i in
            t.rip <- rip;
            Pipeline.set_row t.pipe (Array.unsafe_get map rip);
            exec_uop t (Array.unsafe_get uops !i);
            incr i
          done
        end
        else begin
          let i = ref 0 in
          while !i < lim do
            t.rip <- entry + !i;
            exec_uop t (Array.unsafe_get uops !i);
            incr i
          done
        end
      end
      else if mapped then begin
        let i = ref 0 in
        while !i < lim do
          let rip = Array.unsafe_get rips !i in
          t.rip <- rip;
          Pipeline.set_row t.pipe (Array.unsafe_get map rip);
          exec_uop t (Array.unsafe_get uops !i);
          incr i
        done
      end
      else begin
        let i = ref 0 in
        while !i < lim do
          t.rip <- Array.unsafe_get rips !i;
          exec_uop t (Array.unsafe_get uops !i);
          incr i
        done
      end;
      tier.Trace.rec_active <- false;
      c.insns <- c.insns + lim;
      budget := b0 - lim;
      tier.Trace.covered_insns <- tier.Trace.covered_insns + lim;
      if lim < n then begin
        (* Fuel exhausted mid-segment: resume at the first unexecuted
           instruction, exactly as the block tier does. *)
        t.rip <- (if rips == Trace.no_rips then entry + lim else Array.unsafe_get rips lim);
        running := false
      end
      else if !budget <= 0 then begin
        t.rip <- blk.Ublock.term_idx;
        running := false
      end
      else exec_exit sg blk
    done;
    tr.Trace.tr_cycles <- tr.Trace.tr_cycles +. (Pipeline.cycles t.pipe -. cyc0)
  with Fault.Fault _ as e ->
    if tier.Trace.rec_active then begin
      (* Settle the batched accounting: [j] instructions of the current
         segment completed before the faulting one. On the careful path
         [rip] was armed per uop, so [j] is read off it; on the lazy fast
         path [rip] was never armed — instead every optimized uop performs
         exactly one pipeline issue per covered instruction, in program
         order, with all faults raised before their instruction's issue
         except the MPX bound check (which issues first, hardware-style,
         then raises). The issue delta since segment start therefore
         pinpoints the faulting instruction, and [rip] is materialized
         from it here, once, on the cold path. *)
      let j =
        if tier.Trace.rec_lazy then begin
          let issued = Pipeline.instructions t.pipe - tier.Trace.rec_issue0 in
          let j =
            match e with
            | Fault.Fault (Fault.Bound_violation _) -> issued - 1
            | _ -> issued
          in
          t.rip <-
            (if tier.Trace.rec_rips == Trace.no_rips then tier.Trace.rec_entry + j
             else Array.unsafe_get tier.Trace.rec_rips j);
          j
        end
        else if tier.Trace.rec_rips == Trace.no_rips then t.rip - tier.Trace.rec_entry
        else rip_index tier.Trace.rec_rips t.rip 0
      in
      c.insns <- c.insns + j + 1;
      budget := !budget - j;
      tier.Trace.covered_insns <- tier.Trace.covered_insns + j + 1;
      tier.Trace.rec_active <- false;
      tier.Trace.rec_lazy <- false
    end;
    tr.Trace.tr_cycles <- tr.Trace.tr_cycles +. (Pipeline.cycles t.pipe -. cyc0);
    raise e

(* Raised (and translated back to [Program.fetch]'s fault) when the fast
   loop's block dispatch lands outside the code array, so that fault keeps
   propagating to [run]'s caller exactly as [step]'s out-of-try fetch
   does, instead of being delivered like an execution fault. *)
exception Fetch_out_of_code

(* The no-hook fast loop: [step] minus the hook scan, minus the
   per-instruction exception frame (one [try] per fault, not per
   instruction), and with fetch+decode amortized away entirely — control
   dispatches into predecoded basic blocks ([Ublock]) that chain to their
   successors, so the per-instruction work is a tag dispatch over uops
   rather than a fetch and a full [Insn.t] match. Unwinding to a single
   handler is sound because the block executor re-arms [t.rip] before
   every uop (and [exec] arms update it only after their last faulting
   operation), so when a [Fault.Fault] arrives here [t.rip] still names
   the faulting instruction.

   Entered only while both hook lists are empty. The emptiness re-check
   per chain entry is two integer loads — what it buys is that handlers
   (syscall/fault/vmcall) attaching a hook mid-run fall back to the
   instrumented loop at the next dispatch boundary; every instruction
   that can run a handler terminates its block chain, so no hook change
   can go unnoticed within a chain. *)
let run_fast t budget =
  (* EPT-retry bookkeeping across fault unwinds, mirroring
     [exec_attempt]'s recursion depth: a chain of consecutive retries of
     one instruction holds [t.counters.insns] constant (the retry
     decrement below cancels the re-count), so a stale marker can never
     match once any instruction has completed. *)
  let retry_marker = ref (-1) and retries = ref 0 in
  let live = ref true in
  try
    while !live do
      try
        while
          (not t.halted) && !budget > 0 && t.n_step_hooks = 0 && t.n_event_hooks = 0
        do
          (* Handlers may swap the program mid-run; cache identity is
             re-checked at every chain entry (chains end at every
             handler-running instruction). The trace tier swaps with it. *)
          if not (Ublock.owns t.tcache t.program) then begin
            t.tcache <- Ublock.create t.program;
            t.traces <- Trace.recreate t.traces ~code_len:(Program.length t.program)
          end;
          let cache = t.tcache in
          let rip = t.rip in
          if rip >= 0 && rip < Ublock.code_length cache then begin
            (* Tier dispatch: a live superblock at this entry wins over
               the block tier. The generation re-check makes stale
               dispatch impossible even if eager invalidation were ever
               bypassed; the prologue guard keeps hoisted execution out
               of quanta too small to retire the prologue plus one body
               instruction (mid-prologue has no resumable rip). *)
            let tr = Trace.at t.traces rip in
            if
              tr != Trace.dummy_trace
              && tr.Trace.tr_gen = Ublock.generation cache
              &&
              let npro = Array.length tr.Trace.tr_prologue in
              npro = 0 || npro < !budget
            then exec_trace t tr budget
            else exec_block_chain t cache (Ublock.get cache rip) budget
          end
          else raise Fetch_out_of_code
        done;
        live := false
      with
      | Fault.Fault (Fault.Ept_violation { gpa; access; _ } as f) ->
        let saved = t.rip in
        t.counters.vm_exits <- t.counters.vm_exits + 1;
        if t.n_event_hooks > 0 then
          emit t (Event.Vm_exit { rip = saved; reason = "ept-violation" });
        Pipeline.issue t.pipe ~serialize:true ~lat:ept_violation_cost ~port:Pipeline.p_special ();
        let n = if !retry_marker = t.counters.insns then !retries else 0 in
        if n < 8 && t.ept_violation_handler t ~gpa ~access then begin
          retry_marker := t.counters.insns;
          retries := n + 1;
          t.rip <- saved;
          (* The loop re-counts the instruction on retry; cancel it so a
             retried instruction is counted once, as in [exec_attempt]. *)
          t.counters.insns <- t.counters.insns - 1
        end
        else begin
          deliver t f saved;
          decr budget
        end
      | Fault.Fault f ->
        deliver t f t.rip;
        decr budget
    done
  with Fetch_out_of_code ->
    (* Re-raise as the proper fault, from outside the handler above. *)
    ignore (Program.fetch t.program t.rip)

let run ?(fuel = 50_000_000) t =
  let budget = ref fuel in
  while (not t.halted) && !budget > 0 do
    if t.n_step_hooks = 0 && t.n_event_hooks = 0 then run_fast t budget
    else begin
      step t;
      decr budget
    end
  done;
  if t.halted then Halted else Out_of_fuel
