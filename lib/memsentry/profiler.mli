(** Gate-site attributed profiling — the paper's §5.5 dynamic analysis as
    a first-class subsystem.

    Attach to a {!Framework.prepared} machine before running it; the
    profiler then

    - counts {e crossings} (executions of a gate open/close sequence) and
      {e checks} (executions of an address-based check) per
      {!Sitemap.site}, by watching step transitions into tagged ranges;
    - attributes cycles to each site: time between consecutive fetches is
      charged to the site of the instruction that just ran, so gate
      serialization and cache effects land on the gate that caused them;
    - attributes TLB misses, cache fills below L1, and faults to sites via
      the [rip] carried by typed {!X86sim.Event.t}s;
    - records domain-residency spans. For techniques whose gates the CPU
      reports ([wrpkru], [vmfunc]) the hardware events drive the spans;
      for sequence-gated techniques (crypt, mprotect) the profiler injects
      [Event.Seq] gate events at sitemap boundaries — exactly one source
      per technique, so nothing is double counted.

    For MPK, the sum of all sites' crossings equals the machine's
    [wrpkrus] counter: every crossing executes exactly one [wrpkru]. *)

open X86sim

type row = {
  site : Sitemap.site;
  mutable crossings : int;
  mutable checks : int;
  mutable cycles : float;
  mutable tlb_misses : int;
  mutable cache_misses : int;
  mutable faults : int;
}

type residual = {
  mutable r_cycles : float;
  mutable r_tlb_misses : int;
  mutable r_cache_misses : int;
  mutable r_faults : int;
}
(** Everything not attributable to a site: application code. *)

type t

val attach : Framework.prepared -> t
(** Install step and event hooks (composes with tracers and analyses).
    Attach before {!Framework.run}; cycle accounting starts at the current
    pipeline clock. *)

val attach_smp : Framework.smp -> t array
(** One profiler per vCPU (index = core id), each with its own hooks and
    row table over the shared sitemap. Stop each with {!stop}. Note that
    step hooks force every core off the translated fast loop — for
    profiling multi-core runs without perturbation, prefer
    {!Fastprof.install_smp}/{!Fastprof.capture_smp}. *)

val stop : t -> unit
(** Remove the hooks, charge the cycle tail, and force-close open spans.
    Call after the run; accessors below are meaningful afterwards. *)

val injects_seq_gates : Technique.t -> bool
(** Whether the profiler supplies [Event.Seq] gate events for this
    technique (crypt, mprotect) because the hardware reports none. *)

val rows : t -> row list
(** Per-site stats in site-id order. *)

val residual : t -> residual
val total_crossings : t -> int
val total_checks : t -> int

val overhead_cycles : t -> float
(** Cycles spent executing inserted instructions (sum over sites). *)

val spans : t -> Tracer.span list
val unmatched_exits : t -> int
val site_of_rip : t -> int -> (Sitemap.site * Sitemap.role) option

val metrics : t -> Ms_util.Metrics.registry
(** Export into a fresh registry: per-site [gate_crossings]/[checks]/
    [tlb_misses]/[cache_misses]/[faults] counters (labels: site, label,
    technique) plus a [residency_cycles] histogram over span durations. *)

val residency_histogram : t -> Ms_util.Metrics.histogram

val trace_json : t -> Ms_util.Json.t
(** Chrome trace-event JSON of the spans, each annotated with its gate
    site. *)

val to_json : t -> Ms_util.Json.t
(** Full profile: per-site table, app residual, totals, residency
    percentiles, and the machine's {!Perf_report}. *)
