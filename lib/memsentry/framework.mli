(** MemSentry's top-level API (paper Fig. 1).

    Three inputs, exactly as the paper defines them: the {e isolated data}
    (safe regions — here, the module's [sensitive] globals plus any extra
    regions), the {e instrumentation points} (the IR's [safe_access]
    annotations, or a coarse switch-point policy), and the {e isolation
    technique}. [prepare] then builds a ready-to-run machine: a CPU with
    the technique's system state installed (keys, EPTs, bound registers,
    encrypted regions, PROT_NONE mappings) and the instrumented program
    loaded.

    Typical use:
    {[
      let lowered = Ir.Lower.lower defense_module in
      let p = Framework.prepare (Framework.config (Technique.Mpk No_access)) lowered in
      Framework.run p
    ]}

    SGX is deliberately rejected here: as the paper argues (§3.1), SGX
    isolation is a program-restructuring exercise (code moves {e into} the
    enclave), not an instrumentation pass — use {!Sgx_sim.Enclave}
    directly. *)

open X86sim

type config = {
  technique : Technique.t;
  address_kind : Instr.access_kind;  (** address-based techniques *)
  switch_policy : Instr.switch_policy;  (** domain-based techniques *)
  crypt_seed : int;  (** key derivation seed for [Crypt] *)
  crypt_keys : Instr_crypt.key_location;  (** [Ymm_high] unless ablating *)
}

val config :
  ?address_kind:Instr.access_kind ->
  ?switch_policy:Instr.switch_policy ->
  ?crypt_seed:int ->
  ?crypt_keys:Instr_crypt.key_location ->
  Technique.t ->
  config
(** Defaults: [Reads_and_writes], [At_safe_accesses], seed 1, [Ymm_high]. *)

type prepared = {
  cpu : Cpu.t;
  program : Program.t;
  regions : Safe_region.region list;
  hypervisor : Vmx.Hypervisor.t option;  (** [Vmfunc] only *)
  cfg : config;
  sitemap : Sitemap.t;
      (** Where the pass put its instrumentation (empty for baselines);
          feeds {!Profiler}. *)
  opt_stats : Gate_opt.stats option;
      (** What {!Gate_opt} did, when [prepare ~optimize:true] ran it. *)
}

val prepare :
  ?extra_regions:Safe_region.region list ->
  ?verify:bool ->
  ?optimize:bool ->
  ?trace_hoist:bool ->
  config ->
  Ir.Lower.t ->
  prepared
(** Safe regions = the lowered module's sensitive globals plus
    [extra_regions] (which must already be mapped on a fresh CPU — they
    are re-mapped here). Raises [Invalid_argument] for [Technique.Sgx].

    With [~verify:true] (default false), the instrumented program is run
    through {!Gate_analysis} before loading and [Invalid_argument] is
    raised if it does not verify — the NaCl-style "check the output, not
    the compiler" deployment mode.

    With [~optimize:true] (default false), {!Gate_opt.optimize} runs
    between instrumentation and assembly: dataflow-proven checks are
    eliminated or hoisted and adjacent gate pairs coalesced, with the
    result re-verified ({!Gate_opt.Rejected} propagates if it does not).
    Techniques with no policy ([Mprotect]) are loaded unchanged.

    With [~trace_hoist:true] (default false), {!Gate_opt.hoist_facts}'s
    loop-invariance facts are installed on the CPU's trace tier
    ([X86sim.Cpu.install_trace_hoist_facts]): the program is loaded
    unmodified, and the simulator hoists the vouched-for check sites to
    superblock prologues dynamically — the run-time counterpart of
    [~optimize]'s static loop-invariant check motion. *)

val policy_of_config : config -> Gate_analysis.policy option
(** The verification policy matching a technique; [None] for techniques
    with nothing to statically verify ([Mprotect], [Sgx]). *)

val verify_prepared : prepared -> Gate_analysis.report option
(** Statically verify the prepared (already instrumented and assembled)
    program under {!policy_of_config}. [None] when the technique has no
    policy. *)

val prepare_on :
  ?extra_regions:Safe_region.region list ->
  ?verify:bool ->
  ?optimize:bool ->
  ?trace_hoist:bool ->
  Cpu.t ->
  config ->
  Ir.Lower.t ->
  prepared
(** {!prepare} onto an existing core instead of a fresh [Cpu.create ()] —
    the building block for multi-vCPU preparation. *)

val prepare_baseline : Ir.Lower.t -> prepared
(** Uninstrumented build on an identical machine (the "1.0" of every
    overhead figure). *)

val prepare_baseline_on : Cpu.t -> Ir.Lower.t -> prepared
(** {!prepare_baseline} onto an existing core. *)

val run : ?fuel:int -> prepared -> Cpu.status
(** Execute to completion; faults propagate as {!Fault.Fault}. *)

val overhead : baseline:prepared -> instrumented:prepared -> float
(** Cycle ratio after both have been run. *)

(** {2 Multi-vCPU preparation}

    [prepare_smp ~vcpus] builds an N-core {!Machine}, runs the full
    single-core preparation on core 0 (shared memory state: region
    mappings, page-table permissions, key tables, encrypted images are
    machine-wide), then replicates the {e per-core register} half of the
    technique on each sibling: the loaded program, MPX bounds, a closed
    PKRU, crypt's in-ymm round keys. [Vmfunc] is rejected — the
    hypervisor virtualizes one CPU (multi-vCPU virtualization is a
    ROADMAP item) — as is [Sgx]. *)

type smp = {
  machine : Machine.t;
  prepared : prepared;  (** Core 0's view; [prepared.cpu == Machine.cpu machine 0]. *)
}

val prepare_smp :
  ?vcpus:int ->
  ?extra_regions:Safe_region.region list ->
  ?verify:bool ->
  ?optimize:bool ->
  config ->
  Ir.Lower.t ->
  smp
(** Default [vcpus] is 1, in which case the machine is behaviorally
    identical to {!prepare}'s. *)

val prepare_baseline_smp : ?vcpus:int -> Ir.Lower.t -> smp

val run_smp : ?fuel:int -> ?quantum:int -> smp -> Cpu.status
(** {!Machine.run} on the prepared machine: deterministic round-robin
    interleaving of all vCPUs. *)
