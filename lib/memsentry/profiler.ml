open X86sim

type row = {
  site : Sitemap.site;
  mutable crossings : int;
  mutable checks : int;
  mutable cycles : float;
  mutable tlb_misses : int;
  mutable cache_misses : int;
  mutable faults : int;
}

type residual = {
  mutable r_cycles : float;
  mutable r_tlb_misses : int;
  mutable r_cache_misses : int;
  mutable r_faults : int;
}

type t = {
  prepared : Framework.prepared;
  stats : row array;
  app : residual;
  span_rec : Tracer.spans;
  synthetic : bool;
  technique : string;
  mutable prev_class : (int * Sitemap.role) option;
  mutable prev_cycles : float;
  mutable step_hook : int option;
  mutable event_hook : int option;
}

(* MPK and VMFUNC gates are single instructions the CPU itself reports;
   crypt and mprotect gates are plain instruction sequences, so the
   profiler injects [Event.Seq] gate events for them at the sitemap
   boundaries. Address-based techniques have checks, not gates. *)
let injects_seq_gates = function
  | Technique.Crypt | Technique.Mprotect -> true
  | Technique.Sfi | Technique.Mpx | Technique.Isboxing | Technique.Mpk _ | Technique.Vmfunc
  | Technique.Sgx ->
    false

let attach (p : Framework.prepared) =
  let cpu = p.Framework.cpu in
  let sm = p.Framework.sitemap in
  let stats =
    Array.of_list
      (List.map
         (fun site ->
           { site; crossings = 0; checks = 0; cycles = 0.0; tlb_misses = 0; cache_misses = 0; faults = 0 })
         (Sitemap.sites sm))
  in
  let t =
    {
      prepared = p;
      stats;
      app = { r_cycles = 0.0; r_tlb_misses = 0; r_cache_misses = 0; r_faults = 0 };
      span_rec = Tracer.record_spans cpu;
      synthetic = injects_seq_gates p.Framework.cfg.Framework.technique;
      technique = Technique.name p.Framework.cfg.Framework.technique;
      prev_class = None;
      prev_cycles = Cpu.cycles cpu;
      step_hook = None;
      event_hook = None;
    }
  in
  let on_step (c : Cpu.t) _insn =
    let now = Cpu.cycles c in
    (* The cycles since the previous fetch belong to the previous
       instruction's site (pipeline effects included). *)
    (match t.prev_class with
    | Some (id, _) -> t.stats.(id).cycles <- t.stats.(id).cycles +. (now -. t.prev_cycles)
    | None -> t.app.r_cycles <- t.app.r_cycles +. (now -. t.prev_cycles));
    t.prev_cycles <- now;
    let cls = Sitemap.classify sm c.Cpu.rip in
    (* A crossing/check fires on the transition into a tagged range, so a
       straight-line enter sequence counts once however long it is. *)
    (if cls <> t.prev_class then
       match cls with
       | Some (id, Sitemap.Gate_open) ->
         t.stats.(id).crossings <- t.stats.(id).crossings + 1;
         if t.synthetic then
           Cpu.emit c (Event.Gate_enter { rip = c.Cpu.rip; gate = Event.Seq t.technique })
       | Some (id, Sitemap.Gate_close) ->
         t.stats.(id).crossings <- t.stats.(id).crossings + 1;
         if t.synthetic then
           Cpu.emit c (Event.Gate_exit { rip = c.Cpu.rip; gate = Event.Seq t.technique })
       | Some (id, (Sitemap.Check | Sitemap.Hoisted_check)) ->
         t.stats.(id).checks <- t.stats.(id).checks + 1
       | None -> ());
    t.prev_class <- cls
  in
  let on_event ev =
    let attribute ~tlb ~cache ~fault rip =
      match Sitemap.classify sm rip with
      | Some (id, _) ->
        let s = t.stats.(id) in
        s.tlb_misses <- s.tlb_misses + tlb;
        s.cache_misses <- s.cache_misses + cache;
        s.faults <- s.faults + fault
      | None ->
        t.app.r_tlb_misses <- t.app.r_tlb_misses + tlb;
        t.app.r_cache_misses <- t.app.r_cache_misses + cache;
        t.app.r_faults <- t.app.r_faults + fault
    in
    match ev with
    | Event.Tlb_miss { rip; _ } -> attribute ~tlb:1 ~cache:0 ~fault:0 rip
    | Event.Cache_miss { rip; _ } -> attribute ~tlb:0 ~cache:1 ~fault:0 rip
    | Event.Fault { rip; _ } -> attribute ~tlb:0 ~cache:0 ~fault:1 rip
    | Event.Gate_enter _ | Event.Gate_exit _ | Event.Vm_exit _ -> ()
  in
  t.step_hook <- Some (Cpu.add_step_hook cpu on_step);
  t.event_hook <- Some (Cpu.add_event_hook cpu on_event);
  t

(* One profiler per vCPU: each core gets its own hook set and row table
   over the shared sitemap, attached through a per-core view of the
   prepared record. Index i profiles core i. *)
let attach_smp (s : Framework.smp) =
  Array.map
    (fun cpu -> attach { s.Framework.prepared with Framework.cpu })
    (Machine.cpus s.Framework.machine)

let stop t =
  let cpu = t.prepared.Framework.cpu in
  (match t.step_hook with
  | Some id ->
    Cpu.remove_step_hook cpu id;
    t.step_hook <- None;
    (* Account the tail: cycles since the last fetch. *)
    let now = Cpu.cycles cpu in
    (match t.prev_class with
    | Some (id, _) -> t.stats.(id).cycles <- t.stats.(id).cycles +. (now -. t.prev_cycles)
    | None -> t.app.r_cycles <- t.app.r_cycles +. (now -. t.prev_cycles));
    t.prev_cycles <- now
  | None -> ());
  (match t.event_hook with
  | Some id ->
    Cpu.remove_event_hook cpu id;
    t.event_hook <- None
  | None -> ());
  Tracer.stop t.span_rec

let rows t = Array.to_list t.stats
let residual t = t.app
let total_crossings t = Array.fold_left (fun acc r -> acc + r.crossings) 0 t.stats
let total_checks t = Array.fold_left (fun acc r -> acc + r.checks) 0 t.stats

let overhead_cycles t = Array.fold_left (fun acc r -> acc +. r.cycles) 0.0 t.stats

let spans t = Tracer.spans t.span_rec
let unmatched_exits t = Tracer.unmatched_exits t.span_rec

let site_of_rip t rip = Sitemap.lookup t.prepared.Framework.sitemap rip

let metrics t =
  let reg = Ms_util.Metrics.registry () in
  Array.iter
    (fun r ->
      let labels =
        [
          ("site", string_of_int r.site.Sitemap.id);
          ("label", r.site.Sitemap.label);
          ("technique", r.site.Sitemap.technique);
        ]
      in
      let set name v = Ms_util.Metrics.incr ~by:v (Ms_util.Metrics.counter reg ~labels name) in
      set "gate_crossings" r.crossings;
      set "checks" r.checks;
      set "tlb_misses" r.tlb_misses;
      set "cache_misses" r.cache_misses;
      set "faults" r.faults)
    t.stats;
  let residency =
    Ms_util.Metrics.histogram reg ~labels:[ ("technique", t.technique) ] "residency_cycles"
  in
  List.iter (fun s -> Ms_util.Metrics.observe residency (Tracer.span_cycles s)) (spans t);
  reg

let residency_histogram t =
  let reg = metrics t in
  Ms_util.Metrics.histogram reg ~labels:[ ("technique", t.technique) ] "residency_cycles"

let annotate t (s : Tracer.span) =
  match site_of_rip t s.Tracer.enter_rip with
  | Some (site, _) ->
    [
      ("site", Ms_util.Json.Int site.Sitemap.id);
      ("label", Ms_util.Json.String site.Sitemap.label);
      ("technique", Ms_util.Json.String site.Sitemap.technique);
    ]
  | None -> []

let trace_json t =
  Chrome_trace.to_json
    ~process_name:(Printf.sprintf "memsentry:%s" t.technique)
    ~annotate:(annotate t) (spans t)

let row_json r =
  let open Ms_util.Json in
  Obj
    [
      ("site", Int r.site.Sitemap.id);
      ("label", String r.site.Sitemap.label);
      ("technique", String r.site.Sitemap.technique);
      ("orig_rip", Int r.site.Sitemap.orig_rip);
      ("crossings", Int r.crossings);
      ("checks", Int r.checks);
      ("cycles", Float r.cycles);
      ("tlb_misses", Int r.tlb_misses);
      ("cache_misses", Int r.cache_misses);
      ("faults", Int r.faults);
    ]

let to_json t =
  let open Ms_util.Json in
  let residency = residency_histogram t in
  Obj
    [
      ("technique", String t.technique);
      ("sites", List (List.map row_json (rows t)));
      ( "app",
        Obj
          [
            ("cycles", Float t.app.r_cycles);
            ("tlb_misses", Int t.app.r_tlb_misses);
            ("cache_misses", Int t.app.r_cache_misses);
            ("faults", Int t.app.r_faults);
          ] );
      ( "totals",
        Obj
          [
            ("crossings", Int (total_crossings t));
            ("checks", Int (total_checks t));
            ("overhead_cycles", Float (overhead_cycles t));
            ("spans", Int (List.length (spans t)));
            ("unmatched_exits", Int (unmatched_exits t));
          ] );
      ( "residency",
        Obj
          [
            ("count", Int (Ms_util.Metrics.count residency));
            ("sum_cycles", Float (Ms_util.Metrics.sum residency));
            ("p50", Float (Ms_util.Metrics.p50 residency));
            ("p95", Float (Ms_util.Metrics.p95 residency));
            ("p99", Float (Ms_util.Metrics.p99 residency));
          ] );
      ("perf", Perf_report.to_json (Perf_report.capture t.prepared.Framework.cpu));
    ]
