(** Check-motion optimization of instrumented programs.

    Analysis-driven elimination, hoisting and coalescing of the gate
    checks {!Instr} inserts, justified by {!Gate_analysis}'s own abstract
    domain:

    - {b static elimination} deletes an address-based check (SFI mask,
      MPX [bndcu], ISBoxing [lea32]) whose effective address the interval
      domain proves already confined, restoring the pristine access;
    - {b redundancy elimination} deletes a check dominated by an
      equivalent check of the same operand with no intervening clobber
      (an available-checks forward dataflow); the access keeps going
      through the already-checked scratch register;
    - {b loop-invariant check motion} moves a check whose operand is
      invariant out of a natural loop into a preheader the pass inserts,
      retargeting outside jumps to the header;
    - {b gate coalescing} merges a domain-based close-then-reopen pair
      (MPK / VMFUNC / crypt) across straight-line gaps and diamonds whose
      instructions provably never touch the safe region.

    Every optimized program is re-verified with {!Gate_analysis.analyze};
    {!optimize} raises {!Rejected} rather than emit a program with any
    violation class absent from its input. *)

open X86sim

type stats = {
  sites_total : int;  (** instrumentation sites in the input sitemap *)
  eliminated_static : int;
  eliminated_redundant : int;
  hoisted : int;
  preheaders : int;  (** loop preheaders inserted *)
  coalesced_pairs : int;  (** close/open gate pairs merged *)
  insns_before : int;
  insns_after : int;
}

type result = {
  items : Program.item list;
  sitemap : Sitemap.t;
      (** survivors of the input sitemap, ids renumbered densely in the
          original order, rips remapped; hoisted checks are tagged
          {!Sitemap.Hoisted_check} *)
  stats : stats;
  report : Gate_analysis.report;  (** verification of the optimized program *)
}

exception Rejected of string
(** The optimized program failed re-verification; nothing is emitted. *)

val optimize :
  ?split:int ->
  ?bnd0_upper:int ->
  ?mpk_key:int ->
  policy:Gate_analysis.policy ->
  kind:Instr.access_kind ->
  Program.item list ->
  Sitemap.t ->
  result
(** [optimize ~policy ~kind items sm] optimizes an instrumented item
    stream. [kind] must match the instrumentation ([Instr.access_kind]
    used to insert the checks); analysis parameters default as in
    {!Gate_analysis.analyze}. The input items are not modified (the
    result shares unchanged instructions). *)

val hoist_facts :
  policy:Gate_analysis.policy -> Program.item list -> Sitemap.t -> bool array
(** Per-instruction loop-invariance facts for the simulator's trace tier
    ([X86sim.Trace]): [facts.(i)] marks instruction [i] as part of a
    check site that is loop-invariant and leads its natural-loop header —
    the same conditions {!optimize}'s loop-invariant check motion proves,
    decided fact-only against the unmodified program. The trace tier may
    then run the marked site once per superblock entry instead of once
    per iteration (install via [Cpu.install_trace_hoist_facts]).
    Currently derives facts for [Mpx_policy] only (the [lea; bndcu]
    shape); other policies get an all-false array. *)

val pp_stats : Format.formatter -> stats -> unit
val stats_to_json : stats -> Ms_util.Json.t
