open X86sim

type access_kind = Reads | Writes | Reads_and_writes

type switch_policy =
  | At_call_ret
  | At_indirect_branches
  | At_syscalls
  | At_safe_accesses

let scratch = Ir.Lower.scratch1

let kind_matches kind insn =
  match kind with
  | Reads -> Insn.is_mem_read insn
  | Writes -> Insn.is_mem_write insn
  | Reads_and_writes -> Insn.is_mem_read insn || Insn.is_mem_write insn

(* Rewrite one data access: split the effective address into scratch,
   run the check on it, then access through the verified pointer. *)
let rewrite_access check insn =
  match insn with
  | Insn.Load (d, m) ->
    (Insn.Lea (scratch, m) :: check scratch) @ [ Insn.Load (d, Insn.mem ~base:scratch 0) ]
  | Insn.Store (m, s) ->
    (Insn.Lea (scratch, m) :: check scratch) @ [ Insn.Store (Insn.mem ~base:scratch 0, s) ]
  | Insn.Store_i (m, v) ->
    (Insn.Lea (scratch, m) :: check scratch) @ [ Insn.Store_i (Insn.mem ~base:scratch 0, v) ]
  | Insn.Movdqa_load (x, m) ->
    (Insn.Lea (scratch, m) :: check scratch)
    @ [ Insn.Movdqa_load (x, Insn.mem ~base:scratch 0) ]
  | Insn.Movdqa_store (m, x) ->
    (Insn.Lea (scratch, m) :: check scratch)
    @ [ Insn.Movdqa_store (Insn.mem ~base:scratch 0, x) ]
  | other -> [ other ]

(* ISBoxing: replace the address computation with its 32-bit-prefixed
   form; the access itself is unchanged. *)
let rewrite_access_lea32 insn =
  match insn with
  | Insn.Load (d, m) ->
    [ Insn.Lea32 (scratch, m); Insn.Load (d, Insn.mem ~base:scratch 0) ]
  | Insn.Store (m, s) ->
    [ Insn.Lea32 (scratch, m); Insn.Store (Insn.mem ~base:scratch 0, s) ]
  | Insn.Store_i (m, v) ->
    [ Insn.Lea32 (scratch, m); Insn.Store_i (Insn.mem ~base:scratch 0, v) ]
  | Insn.Movdqa_load (x, m) ->
    [ Insn.Lea32 (scratch, m); Insn.Movdqa_load (x, Insn.mem ~base:scratch 0) ]
  | Insn.Movdqa_store (m, x) ->
    [ Insn.Lea32 (scratch, m); Insn.Movdqa_store (Insn.mem ~base:scratch 0, x) ]
  | other -> [ other ]

(* Emission context: items in reverse plus the final index of the next
   instruction, so every emitted instruction can be tagged in the sitemap
   with the rip it will have after {!Program.assemble} (labels occupy no
   slot). *)
type emitter = { sm : Sitemap.t; mutable out : Program.item list; mutable idx : int }

let emitter () = { sm = Sitemap.create (); out = []; idx = 0 }

let emit_label e l = e.out <- l :: e.out

let emit_insn e x =
  e.out <- Program.I x :: e.out;
  e.idx <- e.idx + 1

let emit_tagged e ~site ~role x =
  Sitemap.tag e.sm ~rip:e.idx ~site ~role;
  emit_insn e x

let finish e = (List.rev e.out, e.sm)

let address_based_sites_gen ~rewrite ~kind ~technique ~label mitems =
  let e = emitter () in
  List.iter
    (fun (mi : Ir.Lower.mitem) ->
      match mi.Ir.Lower.item with
      | Program.Label _ as l -> emit_label e l
      | Program.I insn ->
        let seq =
          if
            mi.Ir.Lower.cls = Ir.Lower.Data_access
            && (not mi.Ir.Lower.safe)
            && kind_matches kind insn
          then rewrite insn
          else [ insn ]
        in
        (match seq with
        | [ only ] -> emit_insn e only
        | _ ->
          (* The rewritten access is the last instruction of the sequence;
             everything before it is inserted check code. *)
          let n = List.length seq in
          let site =
            Sitemap.new_site e.sm ~label ~technique ~orig_rip:(e.idx + n - 1)
          in
          List.iteri
            (fun i x ->
              if i < n - 1 then emit_tagged e ~site ~role:Sitemap.Check x
              else emit_insn e x)
            seq))
    mitems;
  finish e

let address_based_sites ~check ~kind ~technique ?(label = "check") mitems =
  address_based_sites_gen ~rewrite:(rewrite_access check) ~kind ~technique ~label mitems

let address_based_lea32_sites ~kind ~technique ?(label = "lea32") mitems =
  address_based_sites_gen ~rewrite:rewrite_access_lea32 ~kind ~technique ~label mitems

let address_based_lea32 ~kind mitems =
  fst (address_based_lea32_sites ~kind ~technique:"ISBoxing" mitems)

let address_based ~check ~kind mitems =
  fst (address_based_sites ~check ~kind ~technique:"?" mitems)

let is_switch_point policy (mi : Ir.Lower.mitem) insn =
  match policy with
  | At_call_ret -> (
    match insn with Insn.Call _ | Insn.Call_r _ | Insn.Ret -> true | _ -> false)
  | At_indirect_branches -> (
    match insn with Insn.Call_r _ | Insn.Jmp_r _ -> true | _ -> false)
  | At_syscalls -> ( match insn with Insn.Syscall -> true | _ -> false)
  | At_safe_accesses -> mi.Ir.Lower.cls = Ir.Lower.Data_access && mi.Ir.Lower.safe

let domain_based_sites ~enter ~leave ~policy ~technique ?(label = "switch") mitems =
  let e = emitter () in
  let n_enter = List.length enter and n_leave = List.length leave in
  List.iter
    (fun (mi : Ir.Lower.mitem) ->
      match mi.Ir.Lower.item with
      | Program.Label _ as l -> emit_label e l
      | Program.I insn ->
        if is_switch_point policy mi insn then
          match policy with
          | At_safe_accesses ->
            (* Semantically meaningful bracketing: open, access, close. *)
            let site =
              Sitemap.new_site e.sm ~label ~technique ~orig_rip:(e.idx + n_enter)
            in
            List.iter (emit_tagged e ~site ~role:Sitemap.Gate_open) enter;
            emit_insn e insn;
            List.iter (emit_tagged e ~site ~role:Sitemap.Gate_close) leave
          | At_call_ret | At_indirect_branches | At_syscalls ->
            (* Cost-equivalent placement of one open+close pair per switch
               point (the Figures 4-6 methodology): the pair runs before
               the instruction so control transfers never leave the
               sensitive domain enabled. *)
            let site =
              Sitemap.new_site e.sm ~label ~technique
                ~orig_rip:(e.idx + n_enter + n_leave)
            in
            List.iter (emit_tagged e ~site ~role:Sitemap.Gate_open) enter;
            List.iter (emit_tagged e ~site ~role:Sitemap.Gate_close) leave;
            emit_insn e insn
        else emit_insn e insn)
    mitems;
  finish e

let domain_based ~enter ~leave ~policy mitems =
  fst (domain_based_sites ~enter ~leave ~policy ~technique:"?" mitems)

let strip mitems = List.map (fun (mi : Ir.Lower.mitem) -> mi.Ir.Lower.item) mitems

let count_instrumentable ~kind mitems =
  List.length
    (List.filter
       (fun (mi : Ir.Lower.mitem) ->
         match mi.Ir.Lower.item with
         | Program.Label _ -> false
         | Program.I insn ->
           mi.Ir.Lower.cls = Ir.Lower.Data_access
           && (not mi.Ir.Lower.safe)
           && kind_matches kind insn)
       mitems)

let count_switch_points ~policy mitems =
  List.length
    (List.filter
       (fun (mi : Ir.Lower.mitem) ->
         match mi.Ir.Lower.item with
         | Program.Label _ -> false
         | Program.I insn -> is_switch_point policy mi insn)
       mitems)
