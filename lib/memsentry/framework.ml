open X86sim

let src = Logs.Src.create "memsentry" ~doc:"MemSentry framework events"

module Log = (val Logs.src_log src : Logs.LOG)

type config = {
  technique : Technique.t;
  address_kind : Instr.access_kind;
  switch_policy : Instr.switch_policy;
  crypt_seed : int;
  crypt_keys : Instr_crypt.key_location;
}

let config ?(address_kind = Instr.Reads_and_writes) ?(switch_policy = Instr.At_safe_accesses)
    ?(crypt_seed = 1) ?(crypt_keys = Instr_crypt.Ymm_high) technique =
  { technique; address_kind; switch_policy; crypt_seed; crypt_keys }

type prepared = {
  cpu : Cpu.t;
  program : Program.t;
  regions : Safe_region.region list;
  hypervisor : Vmx.Hypervisor.t option;
  cfg : config;
  sitemap : Sitemap.t;
  opt_stats : Gate_opt.stats option;
}

let policy_of_config cfg =
  match cfg.technique with
  | Technique.Sfi -> Some Gate_analysis.Sfi_policy
  | Technique.Mpx -> Some Gate_analysis.Mpx_policy
  | Technique.Isboxing -> Some Gate_analysis.Isboxing_policy
  | Technique.Mpk protection -> Some (Gate_analysis.Mpk_policy protection)
  | Technique.Vmfunc -> Some Gate_analysis.Vmfunc_policy
  | Technique.Crypt -> Some Gate_analysis.Crypt_policy
  | Technique.Mprotect | Technique.Sgx -> None

let verify_prepared p =
  match policy_of_config p.cfg with
  | None -> None
  | Some policy ->
    let kind =
      match policy with
      | Gate_analysis.Sfi_policy | Gate_analysis.Mpx_policy | Gate_analysis.Isboxing_policy ->
        p.cfg.address_kind
      | _ -> Instr.Reads_and_writes
    in
    Some (Gate_analysis.analyze ~kind ~policy p.program)

let map_regions cpu regions =
  List.iter
    (fun (r : Safe_region.region) ->
      Mmu.map_range cpu.Cpu.mmu ~va:r.Safe_region.va ~len:r.Safe_region.size ~writable:true)
    regions

let prepare_on ?(extra_regions = []) ?(verify = false) ?(optimize = false)
    ?(trace_hoist = false) cpu cfg (lowered : Ir.Lower.t) =
  Ir.Lower.setup_memory cpu lowered;
  let regions = Safe_region.of_sensitive_globals lowered @ extra_regions in
  map_regions cpu extra_regions;
  let mitems = lowered.Ir.Lower.mitems in
  let technique = Technique.name cfg.technique in
  let (items, sitemap), hypervisor =
    match cfg.technique with
    | Technique.Sfi ->
      Instr_sfi.setup cpu;
      ( Instr.address_based_sites ~check:Instr_sfi.check ~kind:cfg.address_kind ~technique
          ~label:"sfi-mask" mitems,
        None )
    | Technique.Mpx ->
      Instr_mpx.setup cpu;
      ( Instr.address_based_sites ~check:Instr_mpx.check ~kind:cfg.address_kind ~technique
          ~label:"mpx-check" mitems,
        None )
    | Technique.Mpk protection ->
      let st = Instr_mpk.setup cpu ~protection regions in
      ( Instr.domain_based_sites ~enter:(Instr_mpk.enter st) ~leave:(Instr_mpk.leave st)
          ~policy:cfg.switch_policy ~technique ~label:"wrpkru-pair" mitems,
        None )
    | Technique.Vmfunc ->
      let st = Instr_vmfunc.setup cpu regions in
      ( Instr.domain_based_sites ~enter:Instr_vmfunc.enter ~leave:Instr_vmfunc.leave
          ~policy:cfg.switch_policy ~technique ~label:"vmfunc-pair" mitems,
        Some (Instr_vmfunc.hypervisor st) )
    | Technique.Crypt ->
      let st = Instr_crypt.setup cpu ~key_location:cfg.crypt_keys ~seed:cfg.crypt_seed regions in
      ( Instr.domain_based_sites ~enter:(Instr_crypt.enter st) ~leave:(Instr_crypt.leave st)
          ~policy:cfg.switch_policy ~technique ~label:"aes-bracket" mitems,
        None )
    | Technique.Mprotect ->
      let st = Instr_mprotect.setup cpu regions in
      ( Instr.domain_based_sites ~enter:(Instr_mprotect.enter st) ~leave:(Instr_mprotect.leave st)
          ~policy:cfg.switch_policy ~technique ~label:"mprotect-pair" mitems,
        None )
    | Technique.Isboxing ->
      (* Free truncation to 4 GiB; safe regions live above the 64 TiB split,
         far outside the reachable window. No machine setup needed. *)
      (Instr.address_based_lea32_sites ~kind:cfg.address_kind ~technique mitems, None)
    | Technique.Sgx ->
      invalid_arg
        "Framework.prepare: SGX isolation requires restructuring code into an enclave; use \
         Sgx_sim.Enclave directly"
  in
  let items, sitemap, opt_stats =
    if not optimize then (items, sitemap, None)
    else
      match policy_of_config cfg with
      | None -> (items, sitemap, None)
      | Some policy ->
        let kind =
          match policy with
          | Gate_analysis.Sfi_policy | Gate_analysis.Mpx_policy | Gate_analysis.Isboxing_policy
            ->
            cfg.address_kind
          | _ -> Instr.Reads_and_writes
        in
        let r = Gate_opt.optimize ~policy ~kind items sitemap in
        Log.info (fun m ->
            m "optimized %s: %a" (Technique.name cfg.technique) Gate_opt.pp_stats
              r.Gate_opt.stats);
        (r.Gate_opt.items, r.Gate_opt.sitemap, Some r.Gate_opt.stats)
  in
  let program = Program.assemble items in
  Log.info (fun m ->
      m "prepared %s: %d regions, %d instructions (%d before instrumentation)"
        (Technique.name cfg.technique) (List.length regions) (Program.length program)
        (List.length mitems));
  Cpu.load_program cpu program;
  (* Dynamic counterpart of [~optimize]'s static check motion: vouch for
     loop-invariant check sites so the trace tier hoists them to
     superblock prologues at run time (must follow [load_program], which
     re-keys the trace tier). *)
  if trace_hoist then (
    match policy_of_config cfg with
    | Some policy ->
      Cpu.install_trace_hoist_facts cpu (Gate_opt.hoist_facts ~policy items sitemap)
    | None -> ());
  let p = { cpu; program; regions; hypervisor; cfg; sitemap; opt_stats } in
  if verify then
    (match verify_prepared p with
    | Some { Gate_analysis.violations = _ :: _ as vs; _ } ->
      invalid_arg
        (Format.asprintf "Framework.prepare: instrumented output failed verification:@.%a"
           (Format.pp_print_list (fun fmt (v : Gate_analysis.finding) ->
                Format.fprintf fmt "  @%d  %s  (%s)" v.index v.insn v.reason))
           vs)
    | Some _ | None -> ());
  p

let prepare ?extra_regions ?verify ?optimize ?trace_hoist cfg lowered =
  prepare_on ?extra_regions ?verify ?optimize ?trace_hoist (Cpu.create ()) cfg lowered

let prepare_baseline_on cpu (lowered : Ir.Lower.t) =
  Ir.Lower.setup_memory cpu lowered;
  let program = Ir.Lower.assemble lowered in
  Cpu.load_program cpu program;
  {
    cpu;
    program;
    regions = Safe_region.of_sensitive_globals lowered;
    hypervisor = None;
    cfg = config Technique.Sfi;
    sitemap = Sitemap.create ();
    opt_stats = None;
  }

let prepare_baseline lowered = prepare_baseline_on (Cpu.create ()) lowered

let run ?fuel p = Cpu.run ?fuel p.cpu

let overhead ~baseline ~instrumented =
  Ms_util.Stats.overhead ~baseline:(Cpu.cycles baseline.cpu)
    ~measured:(Cpu.cycles instrumented.cpu)

(* ------------------------------------------------------------------ *)
(* Multi-vCPU preparation                                              *)
(* ------------------------------------------------------------------ *)

type smp = {
  machine : Machine.t;
  prepared : prepared;  (** core 0's view; [cpu] inside it is [Machine.cpu machine 0] *)
}

(* Memory-resident setup (region mapping, page-table permissions, key
   tables, encrypted images) is shared and was done once by [prepare_on]
   on core 0. What remains per sibling core is register state: the
   program, MPX bounds, the closed-by-default PKRU, and crypt's in-ymm
   round keys. *)
let sibling_setup cfg cpu =
  match cfg.technique with
  | Technique.Sfi | Technique.Isboxing | Technique.Mprotect -> ()
  | Technique.Mpx -> Instr_mpx.setup cpu
  | Technique.Mpk protection ->
    (* Same key as [Instr_mpk.setup]'s default assignment on core 0. *)
    Mpk.Pkey.close_default cpu ~key:1 ~protection
  | Technique.Crypt ->
    Instr_crypt.install_keys cpu ~key_location:cfg.crypt_keys ~seed:cfg.crypt_seed ()
  | Technique.Vmfunc | Technique.Sgx -> assert false (* rejected below *)

let prepare_smp ?(vcpus = 1) ?extra_regions ?verify ?optimize cfg (lowered : Ir.Lower.t) =
  if vcpus < 1 then invalid_arg "Framework.prepare_smp: need at least one vCPU";
  (match cfg.technique with
  | Technique.Vmfunc ->
    invalid_arg
      "Framework.prepare_smp: the VMFUNC hypervisor virtualizes a single CPU; multi-vCPU \
       virtualization is future work (see ROADMAP)"
  | Technique.Sgx -> invalid_arg "Framework.prepare_smp: SGX requires Sgx_sim.Enclave directly"
  | _ -> ());
  let machine = Machine.create ~vcpus () in
  let prepared = prepare_on ?extra_regions ?verify ?optimize (Machine.cpu machine 0) cfg lowered in
  for i = 1 to vcpus - 1 do
    let cpu = Machine.cpu machine i in
    Cpu.load_program cpu prepared.program;
    sibling_setup cfg cpu
  done;
  { machine; prepared }

let prepare_baseline_smp ?(vcpus = 1) (lowered : Ir.Lower.t) =
  if vcpus < 1 then invalid_arg "Framework.prepare_baseline_smp: need at least one vCPU";
  let machine = Machine.create ~vcpus () in
  let prepared = prepare_baseline_on (Machine.cpu machine 0) lowered in
  for i = 1 to vcpus - 1 do
    Cpu.load_program (Machine.cpu machine i) prepared.program
  done;
  { machine; prepared }

let run_smp ?fuel ?quantum s = Machine.run ?fuel ?quantum s.machine
