type role = Gate_open | Gate_close | Check | Hoisted_check

let role_name = function
  | Gate_open -> "gate-open"
  | Gate_close -> "gate-close"
  | Check -> "check"
  | Hoisted_check -> "hoisted-check"

type site = { id : int; label : string; technique : string; orig_rip : int }

type t = {
  mutable sites_rev : site list;
  mutable n : int;
  by_rip : (int, int * role) Hashtbl.t;
}

let create () = { sites_rev = []; n = 0; by_rip = Hashtbl.create 64 }

let new_site t ~label ~technique ~orig_rip =
  let s = { id = t.n; label; technique; orig_rip } in
  t.sites_rev <- s :: t.sites_rev;
  t.n <- t.n + 1;
  s.id

let tag t ~rip ~site ~role = Hashtbl.replace t.by_rip rip (site, role)

let n_sites t = t.n
let sites t = List.rev t.sites_rev

let site t id =
  if id < 0 || id >= t.n then invalid_arg "Sitemap.site: no such site";
  List.nth t.sites_rev (t.n - 1 - id)

let classify t rip = Hashtbl.find_opt t.by_rip rip

let lookup t rip =
  match classify t rip with Some (id, role) -> Some (site t id, role) | None -> None

let tagged_instructions t = Hashtbl.length t.by_rip

let to_json t =
  let open Ms_util.Json in
  Obj
    [
      ( "sites",
        List
          (List.map
             (fun s ->
               Obj
                 [
                   ("id", Int s.id);
                   ("label", String s.label);
                   ("technique", String s.technique);
                   ("orig_rip", Int s.orig_rip);
                 ])
             (sites t)) );
      ("tagged_instructions", Int (tagged_instructions t));
    ]
