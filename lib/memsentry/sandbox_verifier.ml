type policy = Gate_analysis.policy =
  | Sfi_policy
  | Mpx_policy
  | Isboxing_policy
  | Mpk_policy of Mpk.Pkey.protection
  | Vmfunc_policy
  | Crypt_policy

type violation = Gate_analysis.finding = {
  index : int;
  insn : string;
  reason : string;
}

type result = Clean | Violations of violation list

let verify_report ?split ?bnd0_upper ?kind ?mpk_key ~policy prog =
  Gate_analysis.analyze ?split ?bnd0_upper ?kind ?mpk_key ~policy prog

let verify ?split ?bnd0_upper ?kind ?mpk_key ~policy prog =
  match (verify_report ?split ?bnd0_upper ?kind ?mpk_key ~policy prog).Gate_analysis.violations with
  | [] -> Clean
  | vs -> Violations vs

let violation_count = function Clean -> 0 | Violations vs -> List.length vs

let pp_result fmt = function
  | Clean -> Format.pp_print_string fmt "clean: every access is provably confined"
  | Violations vs ->
    Format.fprintf fmt "%d unverified access(es):@." (List.length vs);
    List.iter
      (fun v -> Format.fprintf fmt "  @%d  %s  (%s)@." v.index v.insn v.reason)
      vs
