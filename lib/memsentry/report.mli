(** Regenerates the paper's survey tables (1, 2 and 3) as printed reports.

    Tables 1 and 2 are curated data from the paper's defense survey;
    Table 3 is derived from {!Technique} metadata (and cross-checked
    against the implementations by the test suite), so it cannot drift
    from the code. *)

type defense = {
  dname : string;
  protects_reads : bool;
  protects_writes : bool;
  probabilistic : bool;
  deterministic : bool;
  instrumentation : string;
}

val defenses : defense list
(** The thirteen systems of Table 1 (CCFIR ... LR2). *)

type application_row = {
  isolation : string;  (** "Address-based" / "Domain-based" *)
  points : string;  (** instrumentation points *)
  application : string;
}

val applications : application_row list
(** Table 2. *)

val table1 : unit -> string
val table2 : unit -> string
val table3 : unit -> string

val site_table : Profiler.t -> string
(** Per-gate-site attribution table from a stopped profiler: crossings,
    checks, cycles (plus per-event average), attributed TLB/cache misses
    and faults per site, then an application residual row and a totals
    row. The "Cycles" total is overhead cycles only (inserted code). *)

val cpi_table : Fastprof.t -> string
(** CPI-stack table from a fast-path profile: one row per attribution
    row (app + each gate site), one column per {!X86sim.Pipeline} cycle
    class, a per-row total, and a final totals row. Every simulated
    cycle appears in exactly one cell, so the grand total equals the
    run's total cycles (up to float-addition rounding). *)

val hot_blocks_table : ?top:int -> Fastprof.t -> string
(** The [top] (default 10) most-executed basic blocks: entry, covered
    instructions, executions, taken/fall exit counts, and the hot
    indirect successor with its vote share. *)

val edges_of : Fastprof.t -> (int * int * string * int) list
(** CFG edges [(src_entry, dst_entry, kind, count)] derived from the
    block profile. [kind] is ["taken"], ["fall"] or ["indirect"]; for
    indirect exits the count is the Boyer-Moore vote count of the
    majority target (a lower bound on its true frequency). *)

val hot_edges_table : ?top:int -> Fastprof.t -> string
(** The [top] (default 10) hottest CFG edges derived from the block
    profile (taken, fall-through and majority indirect edges). *)

val trace_summary : Fastprof.t -> string
(** One-line superblock-tier rollup: traces formed/live/invalidated,
    retired-instruction coverage (share of [p_insns] executed inside
    superblocks), and hoisted-check count when nonzero. *)

val trace_table : ?top:int -> Fastprof.t -> string
(** The [top] (default 10) live superblocks by attributed cycles: entry,
    fused block chain, static instructions, entries, side exits, cycles,
    hoisted prologue length, and whether the trace loops. *)

val print_all : unit -> unit
