open X86sim

(* Check-motion optimization of instrumented programs.

   Three analysis-driven passes over the instrumented item stream, all
   justified by the same abstract domain the verifier uses (the passes
   query {!Gate_analysis}'s solved fixpoint, so anything they prove is by
   construction re-provable when the result is verified):

   - {b static elimination} (address-based): a check whose effective
     address the interval domain already confines to the nonsensitive
     partition is dead work — the inserted check sequence is deleted and
     the pristine access restored.
   - {b redundancy elimination} (address-based): an available-checks
     dataflow over (operand, mask) facts finds checks dominated by an
     equivalent check with no intervening clobber of the operand
     registers or the scratch register; the dominated site keeps only its
     access through the already-checked scratch value.
   - {b loop-invariant check motion} (address-based): a kept check whose
     operand registers are loop-invariant is moved to a preheader the
     pass inserts in front of the natural-loop header; outside jumps to
     the header are retargeted through the preheader.
   - {b gate coalescing} (domain-based): a close-then-reopen pair across
     a straight-line gap or a diamond whose arms are transfer-free and
     provably never touch the safe region is merged into one open
     region, halving the crossings on that path.

   Soundness notes enforced below:
   - Only {e statically} proven checks restore the pristine operand; a
     redundancy-eliminated access keeps going through scratch (for SFI
     the mask {e enforces} confinement rather than proving it, so the
     masked pointer must remain the one dereferenced).
   - A bndcu may only be deleted/hoisted where it provably cannot fault
     (elimination) or faults no later than the original would
     (hoisting: the check must lead its loop header).
   - Coalescing refuses gaps/arms containing control transfers, labels,
     gate instructions, or accesses not provably below the split — the
     region is open across the merged gap, and under MPK/VMFUNC/crypt an
     access that originally faulted (or read ciphertext) must not start
     succeeding.

   Every optimized program is re-verified; the optimizer refuses to emit
   if verification reports any violation absent from the input. *)

type stats = {
  sites_total : int;
  eliminated_static : int;
  eliminated_redundant : int;
  hoisted : int;
  preheaders : int;
  coalesced_pairs : int;
  insns_before : int;
  insns_after : int;
}

type result = {
  items : Program.item list;
  sitemap : Sitemap.t;
  stats : stats;
  report : Gate_analysis.report;  (** verification of the optimized program *)
}

exception Rejected of string

let scratch = Ir.Lower.scratch1
let scratch2 = Ir.Lower.scratch2

let address_based = function
  | Gate_analysis.Sfi_policy | Gate_analysis.Mpx_policy | Gate_analysis.Isboxing_policy ->
    true
  | Gate_analysis.Mpk_policy _ | Gate_analysis.Vmfunc_policy | Gate_analysis.Crypt_policy ->
    false

(* --- small instruction helpers ----------------------------------------- *)

let mem_operand = function
  | Insn.Load (_, m)
  | Insn.Store (m, _)
  | Insn.Store_i (m, _)
  | Insn.Movdqa_load (_, m)
  | Insn.Movdqa_store (m, _)
  | Insn.Bndmov_load (_, m)
  | Insn.Bndmov_store (m, _) -> Some m
  | _ -> None

let with_operand insn m =
  match insn with
  | Insn.Load (d, _) -> Insn.Load (d, m)
  | Insn.Store (_, s) -> Insn.Store (m, s)
  | Insn.Store_i (_, v) -> Insn.Store_i (m, v)
  | Insn.Movdqa_load (x, _) -> Insn.Movdqa_load (x, m)
  | Insn.Movdqa_store (_, x) -> Insn.Movdqa_store (m, x)
  | other -> other

(* General registers an instruction writes (kills for the availability
   dataflow and the invariance checks). Call-like instructions havoc
   everything and are handled separately. *)
let defs = function
  | Insn.Mov_ri (d, _)
  | Insn.Mov_rr (d, _)
  | Insn.Mov_label (d, _)
  | Insn.Lea (d, _)
  | Insn.Lea32 (d, _)
  | Insn.Load (d, _)
  | Insn.Pop d
  | Insn.Movq_rx (d, _)
  | Insn.Alu_rr (_, d, _)
  | Insn.Alu_ri (_, d, _) -> [ d ]
  | Insn.Rdpkru | Insn.Syscall -> [ Reg.rax ]
  | _ -> []

let havocs_all = function
  | Insn.Call _ | Insn.Call_r _ | Insn.Vmcall | Insn.Cpuid -> true
  | _ -> false

(* Instructions a coalesced-open gap may contain: no control transfers,
   no gate/check instructions, nothing that could interact with the gate
   state. Memory safety of the gap is checked separately against the
   solved states. *)
let safe_gap_insn = function
  | Insn.Jmp _ | Insn.Jcc _ | Insn.Jmp_r _ | Insn.Call _ | Insn.Call_r _ | Insn.Ret
  | Insn.Halt | Insn.Syscall | Insn.Vmcall | Insn.Wrpkru | Insn.Rdpkru | Insn.Vmfunc
  | Insn.Cpuid | Insn.Aesenc _ | Insn.Aesenclast _ | Insn.Aesdec _ | Insn.Aesdeclast _
  | Insn.Aesimc _ | Insn.Aeskeygenassist _ | Insn.Bndcu _ | Insn.Bndcl _ | Insn.Bnd_set _
  | Insn.Bndmov_load _ | Insn.Bndmov_store _ -> false
  | _ -> true

(* --- recovered sites ---------------------------------------------------- *)

(* One address-based instrumentation site, recovered from the sitemap:
   [afirst..alast] are the inserted check instructions (the first is the
   Lea/Lea32 that splits out the effective address), [aaccess] the
   rewritten access through scratch, [aoperand] the original operand. *)
type asite = {
  aid : int;
  afirst : int;
  alast : int;
  aaccess : int;
  aoperand : Insn.mem;
  amask : int option;  (** SFI: the masking constant *)
}

type action = Keep | Drop | Replace of Insn.t

(* Availability fact: "scratch holds the checked value of this operand".
   A single shared scratch register means at most one fact is live. *)
type key = { kb : int; ki : int; ks : int; kd : int; kmask : int }

let key_of_site s =
  {
    kb = s.aoperand.Insn.base;
    ki = s.aoperand.Insn.index;
    ks = s.aoperand.Insn.scale;
    kd = s.aoperand.Insn.disp;
    kmask = (match s.amask with Some m -> m | None -> -1);
  }

let all_ones m = m >= 0 && m land (m + 1) = 0

(* Recover the address-based instrumentation sites of [code] from the
   sitemap's tag ranges, validating each against the policy's inserted
   shape (SFI: lea; mov_ri mask; and — MPX: lea; bndcu — ISBoxing:
   lea32). Malformed or non-contiguous sites are dropped: the passes
   cannot reason about them. Sorted by position. *)
let recover_sites ~policy (code : Insn.t array) (sm : Sitemap.t) =
  let n = Array.length code in
  let tag_range = Hashtbl.create 64 in
  for i = 0 to n - 1 do
    match Sitemap.classify sm i with
    | Some (id, (Sitemap.Check | Sitemap.Hoisted_check)) ->
      let lo, hi, c = try Hashtbl.find tag_range id with Not_found -> (max_int, -1, 0) in
      Hashtbl.replace tag_range id (min lo i, max hi i, c + 1)
    | _ -> ()
  done;
  let sites =
    Hashtbl.fold
      (fun id (lo, hi, c) acc ->
        if hi - lo + 1 <> c || hi + 1 >= n then acc
        else
          let access = hi + 1 in
          let shape_ok =
            (match code.(lo) with
            | Insn.Lea (d, _) | Insn.Lea32 (d, _) -> d = scratch
            | _ -> false)
            &&
            match mem_operand code.(access) with
            | Some m -> m.Insn.base = scratch && m.Insn.index < 0 && m.Insn.disp = 0
            | None -> false
          in
          if not shape_ok then acc
          else
            let operand =
              match code.(lo) with
              | Insn.Lea (_, m) | Insn.Lea32 (_, m) -> m
              | _ -> assert false
            in
            let mask =
              (* SFI shape: lea; mov_ri scratch2, mask; and scratch, scratch2 *)
              match policy with
              | Gate_analysis.Sfi_policy -> (
                match (code.(lo + 1), code.(hi)) with
                | Insn.Mov_ri (r, m), Insn.Alu_rr (Insn.And, d, s)
                  when r = scratch2 && d = scratch && s = scratch2 && c = 3 -> Some m
                | _ -> None)
              | _ -> None
            in
            (* Reject malformed SFI sites outright (can't reason about
               them); MPX/ISBoxing shapes are fixed-length. *)
            let valid =
              match policy with
              | Gate_analysis.Sfi_policy -> mask <> None
              | Gate_analysis.Mpx_policy -> (
                c = 2 && match code.(hi) with Insn.Bndcu (0, r) -> r = scratch | _ -> false)
              | Gate_analysis.Isboxing_policy -> (
                c = 1 && match code.(lo) with Insn.Lea32 _ -> true | _ -> false)
              | _ -> false
            in
            if not valid then acc
            else
              { aid = id; afirst = lo; alast = hi; aaccess = access; aoperand = operand;
                amask = mask }
              :: acc)
      tag_range []
  in
  List.sort (fun a b -> compare a.afirst b.afirst) sites

(* --- the optimizer ------------------------------------------------------ *)

let optimize ?split ?bnd0_upper ?mpk_key ~policy ~kind (items : Program.item list)
    (sm : Sitemap.t) =
  let akind = if address_based policy then kind else Instr.Reads_and_writes in
  let analyze prog =
    Gate_analysis.analyze ?split ?bnd0_upper ~kind:akind ?mpk_key ~policy prog
  in
  let prog = Program.assemble items in
  let code = Program.code prog in
  let n = Array.length code in
  let pcfg = Ir.Cfg.of_program prog in
  let g = pcfg.Ir.Cfg.graph in
  let spans = pcfg.Ir.Cfg.spans in
  let block_of i = pcfg.Ir.Cfg.block_of.(i) in
  let pre_report = analyze prog in
  let sol = Gate_analysis.solve_program ?split ?bnd0_upper ~kind:akind ?mpk_key ~policy pcfg in
  (* Per-instruction in-states from the solved fixpoint. *)
  let in_state = Array.make (max n 1) None in
  for b = 0 to g.Ir.Cfg.nnodes - 1 do
    match Gate_analysis.block_in sol b with
    | None -> ()
    | Some st0 ->
      ignore
        (List.fold_left
           (fun st (idx, insn) ->
             in_state.(idx) <- Some st;
             Gate_analysis.step_insn sol idx insn st)
           st0 (Ir.Cfg.insns_of pcfg b))
  done;
  (* Label positions in the item stream: [label_before.(i)] iff some label
     immediately precedes instruction index [i]. *)
  let label_before = Array.make (n + 1) false in
  let () =
    let i = ref 0 in
    List.iter
      (function
        | Program.Label _ -> if !i <= n then label_before.(!i) <- true
        | Program.I _ -> incr i)
      items
  in
  let actions = Array.make (max n 1) Keep in
  let nsites = Sitemap.n_sites sm in
  let site_survives = Array.make (max nsites 1) true in

  (* ---------------- address-based passes ------------------------------- *)
  let eliminated_static = ref 0 in
  let eliminated_redundant = ref 0 in
  let hoisted = ref 0 in
  let preheaders = ref 0 in
  let pre_insert : (int, (int * Insn.t list) list ref) Hashtbl.t = Hashtbl.create 8 in
  let ph_name h_first = Printf.sprintf "__gopt_ph%d" h_first in
  if address_based policy then begin
    let sites = recover_sites ~policy code sm in
    (* Instruction index -> site membership. *)
    let site_at = Array.make (max n 1) None in
    List.iter
      (fun s ->
        for i = s.afirst to s.alast do
          site_at.(i) <- Some (s, `Inserted)
        done;
        site_at.(s.aaccess) <- Some (s, `Access))
      sites;
    let static_elim = Array.make (max nsites 1) false in
    let redundant = Array.make (max nsites 1) false in
    let is_hoisted = Array.make (max nsites 1) false in

    (* Pass A: static elimination from the verifier's own fixpoint. *)
    List.iter
      (fun s ->
        match in_state.(s.afirst) with
        | None -> ()
        | Some st ->
          let ea = Gate_analysis.ea_range st s.aoperand in
          let provable =
            match policy with
            | Gate_analysis.Sfi_policy -> (
              (* Deleting the mask is the identity only for an all-ones
                 mask over an EA already inside it. *)
              match s.amask with
              | Some m -> all_ones m && Gate_analysis.within ea ~lo:0 ~hi:m
              | None -> false)
            | Gate_analysis.Mpx_policy ->
              (* The bndcu provably cannot fault, and bnd0 still holds the
                 loader's bound so the fixpoint fact is meaningful. *)
              Gate_analysis.bnd0_valid st
              && Gate_analysis.within ea ~lo:0 ~hi:(Gate_analysis.bnd0_upper_of sol)
            | Gate_analysis.Isboxing_policy ->
              (* lea32's truncation is the identity. *)
              Gate_analysis.within ea ~lo:0 ~hi:0xFFFF_FFFF
            | _ -> false
          in
          (* The restored pristine access must itself re-verify. *)
          if provable && Gate_analysis.value_confined sol ea then begin
            static_elim.(s.aid) <- true;
            incr eliminated_static;
            for i = s.afirst to s.alast do
              actions.(i) <- Drop
            done;
            actions.(s.aaccess) <- Replace (with_operand code.(s.aaccess) s.aoperand)
          end)
      sites;

    (* Pass B: available-checks dataflow. Facts key the operand + mask;
       the single scratch register means at most one fact is live. The
       transfer is independent of the keep/eliminate decision at a site
       (both leave scratch holding the checked value of the site's key),
       so the fixpoint is well-defined. *)
    let kills fact ds =
      match fact with
      | None -> None
      | Some k ->
        if List.exists (fun d -> d = k.kb || d = k.ki || d = scratch) ds then None else fact
    in
    let fact_step fact idx =
      match site_at.(idx) with
      | Some (s, `Inserted) ->
        if static_elim.(s.aid) then fact (* dropped: no machine effect *)
        else if idx = s.alast then Some (key_of_site s)
        else fact
      | Some (s, `Access) ->
        let eff = if static_elim.(s.aid) then with_operand code.(idx) s.aoperand else code.(idx) in
        kills fact (defs eff)
      | None ->
        let insn = code.(idx) in
        if havocs_all insn then None else kills fact (defs insn)
    in
    let fact_block b fact =
      let sp = spans.(b) in
      let f = ref fact in
      for i = sp.Ir.Cfg.first to sp.Ir.Cfg.last do
        f := fact_step !f i
      done;
      !f
    in
    let fact_ins =
      Ir.Cfg.solve g ~entry_state:None
        ~join:(fun a b -> if a = b then a else None)
        ~equal:( = ) ~transfer:fact_block
    in
    Array.iteri
      (fun b fact0 ->
        match fact0 with
        | None -> ()
        | Some fact0 ->
          let sp = spans.(b) in
          let f = ref fact0 in
          for i = sp.Ir.Cfg.first to sp.Ir.Cfg.last do
            (match site_at.(i) with
            | Some (s, `Inserted)
              when i = s.afirst && (not static_elim.(s.aid)) && !f = Some (key_of_site s) ->
              redundant.(s.aid) <- true
            | _ -> ());
            f := fact_step !f i
          done)
      fact_ins;
    List.iter
      (fun s ->
        if redundant.(s.aid) then begin
          incr eliminated_redundant;
          for i = s.afirst to s.alast do
            actions.(i) <- Drop
          done
          (* the access through scratch stays *)
        end)
      sites;

    (* Pass C: loop-invariant check motion. The decisions below are made
       against the pre-hoist layout (a hoisted site still counts as a
       scratch writer at its original position when other loops are
       considered), which over-approximates interference. *)
    let dropped_site s = static_elim.(s.aid) || redundant.(s.aid) in
    (* The machine effect an index has after passes A/B. *)
    let eff_insn idx =
      match site_at.(idx) with
      | Some (s, `Inserted) -> if dropped_site s then None else Some code.(idx)
      | Some (s, `Access) ->
        Some (if static_elim.(s.aid) then with_operand code.(idx) s.aoperand else code.(idx))
      | None -> Some code.(idx)
    in
    let loops = Ir.Cfg.natural_loops g in
    let entry_blocks = g.Ir.Cfg.entries in
    List.iter
      (fun (l : Ir.Cfg.loop) ->
        if not (List.mem l.Ir.Cfg.header entry_blocks) then begin
          let in_body = Array.make g.Ir.Cfg.nnodes false in
          List.iter (fun b -> in_body.(b) <- true) l.Ir.Cfg.body;
          let header_first = spans.(l.Ir.Cfg.header).Ir.Cfg.first in
          let body_idxs =
            List.concat_map
              (fun b ->
                let sp = spans.(b) in
                List.init (sp.Ir.Cfg.last - sp.Ir.Cfg.first + 1) (fun k -> sp.Ir.Cfg.first + k))
              l.Ir.Cfg.body
          in
          let candidates =
            List.filter
              (fun s ->
                in_body.(block_of s.afirst)
                && (not (dropped_site s))
                && not is_hoisted.(s.aid))
              sites
          in
          (* Redundant consumers inside the loop constrain what may be
             hoisted over them: the preheader write must produce the very
             value they reuse. *)
          let body_consumer_keys =
            List.filter_map
              (fun s ->
                if redundant.(s.aid) && in_body.(block_of s.aaccess) then Some (key_of_site s)
                else None)
              sites
          in
          let try_hoist s =
            let my_insn i = i >= s.afirst && i <= s.alast in
            let invariant_ok =
              List.for_all
                (fun i ->
                  match eff_insn i with
                  | None -> true
                  | Some insn ->
                    (not (havocs_all insn))
                    && (not (List.exists
                               (fun d ->
                                 d = s.aoperand.Insn.base || d = s.aoperand.Insn.index
                                 || d = scratch
                                 || (s.amask <> None && d = scratch2))
                               (defs insn))
                        || my_insn i))
                body_idxs
            in
            let fault_ok =
              match policy with
              | Gate_analysis.Mpx_policy ->
                (* The check must fault no later than the original: it has
                   to lead its loop header with nothing effective before
                   it. *)
                block_of s.afirst = l.Ir.Cfg.header
                && List.for_all
                     (fun i -> i >= s.afirst || eff_insn i = None)
                     (List.init (s.afirst - header_first) (fun k -> header_first + k))
              | _ -> true
            in
            let consumers_ok =
              List.for_all (fun k -> k = key_of_site s) body_consumer_keys
            in
            if invariant_ok && fault_ok && consumers_ok then begin
              is_hoisted.(s.aid) <- true;
              incr hoisted;
              for i = s.afirst to s.alast do
                actions.(i) <- Drop
              done;
              let moved = List.init (s.alast - s.afirst + 1) (fun k -> code.(s.afirst + k)) in
              let cell =
                match Hashtbl.find_opt pre_insert header_first with
                | Some r -> r
                | None ->
                  let r = ref [] in
                  Hashtbl.replace pre_insert header_first r;
                  incr preheaders;
                  (* Retarget outside jumps to the header through the new
                     preheader. *)
                  for i = 0 to n - 1 do
                    if not in_body.(block_of i) then begin
                      match code.(i) with
                      | Insn.Jmp t when t.Insn.tidx = header_first && actions.(i) = Keep ->
                        actions.(i) <- Replace (Insn.Jmp (Insn.target (ph_name header_first)))
                      | Insn.Jcc (c, t) when t.Insn.tidx = header_first && actions.(i) = Keep ->
                        actions.(i) <-
                          Replace (Insn.Jcc (c, Insn.target (ph_name header_first)))
                      | _ -> ()
                    end
                  done;
                  r
              in
              cell := (s.aid, moved) :: !cell;
              true
            end
            else false
          in
          (* The scratch-interference condition admits at most one kept
         site per loop; stop at the first success. *)
          ignore (List.exists try_hoist candidates)
        end)
      loops;
    List.iter
      (fun s -> if dropped_site s then site_survives.(s.aid) <- false)
      sites
  end;

  (* ---------------- domain-based coalescing ----------------------------- *)
  let coalesced_pairs = ref 0 in
  if not (address_based policy) then begin
    (* Complete, contiguous open/close runs per site. *)
    let runs = Hashtbl.create 32 in
    (* (site, role) -> (lo, hi, count) *)
    for i = 0 to n - 1 do
      match Sitemap.classify sm i with
      | Some (id, ((Sitemap.Gate_open | Sitemap.Gate_close) as role)) ->
        let keyr = (id, role = Sitemap.Gate_open) in
        let lo, hi, c = try Hashtbl.find runs keyr with Not_found -> (max_int, -1, 0) in
        Hashtbl.replace runs keyr (min lo i, max hi i, c + 1)
      | _ -> ()
    done;
    let run_of id is_open =
      match Hashtbl.find_opt runs (id, is_open) with
      | Some (lo, hi, c) when hi - lo + 1 = c && lo <= hi -> Some (lo, hi)
      | _ -> None
    in
    let no_labels_inside (lo, hi) =
      let ok = ref true in
      for i = lo + 1 to hi do
        if label_before.(i) then ok := false
      done;
      !ok
    in
    let run_dropped (lo, _) = actions.(lo) = Drop in
    let drop_run (lo, hi) =
      for i = lo to hi do
        actions.(i) <- Drop
      done
    in
    (* Gap instruction admissible with the gate held open? *)
    let gap_insn_ok i =
      safe_gap_insn code.(i)
      && (match (mem_operand code.(i), in_state.(i)) with
         | None, _ -> true
         | Some m, Some st -> Gate_analysis.access_below_split sol st m
         | Some _, None -> false)
    in
    (* Straight-line pass. *)
    let i = ref 0 in
    while !i < n do
      let advanced = ref false in
      (match Sitemap.classify sm !i with
      | Some (a, Sitemap.Gate_close) -> (
        match run_of a false with
        | Some (clo, chi)
          when clo = !i && no_labels_inside (clo, chi) && not (run_dropped (clo, chi)) -> (
          let k = ref (chi + 1) in
          let ok = ref true in
          while
            !ok && !k < n
            && (not label_before.(!k))
            && Sitemap.classify sm !k = None
          do
            if gap_insn_ok !k then incr k else ok := false
          done;
          if !ok && !k < n && not label_before.(!k) then
            match Sitemap.classify sm !k with
            | Some (b, Sitemap.Gate_open) when b <> a -> (
              match run_of b true with
              | Some (olo, ohi)
                when olo = !k && no_labels_inside (olo, ohi)
                     && not (run_dropped (olo, ohi)) ->
                drop_run (clo, chi);
                drop_run (olo, ohi);
                incr coalesced_pairs;
                i := ohi + 1;
                advanced := true
              | _ -> ())
            | _ -> ())
        | _ -> ())
      | _ -> ());
      if not !advanced then incr i
    done;
    (* Diamond pass: a close ending block P, transfer-free single-purpose
       arms, and a join block that immediately reopens. *)
    let entry_blocks = g.Ir.Cfg.entries in
    let block_last_insn b = spans.(b).Ir.Cfg.last in
    let succs_of b = List.sort_uniq compare g.Ir.Cfg.succs.(b) in
    let arm_ok b jb =
      (* A block whose only job is to reach [jb]: one successor, no tags,
         gap-admissible contents (its terminating jmp excepted). *)
      (not (List.mem b entry_blocks))
      && succs_of b = [ jb ]
      &&
      let sp = spans.(b) in
      let ok = ref true in
      for i = sp.Ir.Cfg.first to sp.Ir.Cfg.last do
        let is_term = i = sp.Ir.Cfg.last in
        let fine =
          Sitemap.classify sm i = None
          &&
          match code.(i) with
          | Insn.Jmp _ -> is_term
          | _ -> gap_insn_ok i
        in
        if not fine then ok := false
      done;
      !ok
    in
    for jb = 0 to g.Ir.Cfg.nnodes - 1 do
      if not (List.mem jb entry_blocks) then begin
        let jf = spans.(jb).Ir.Cfg.first in
        match Sitemap.classify sm jf with
        | Some (b_site, Sitemap.Gate_open) -> (
          match run_of b_site true with
          | Some (olo, ohi)
            when olo = jf
                 && block_of ohi = jb
                 && no_labels_inside (olo, ohi)
                 && not (run_dropped (olo, ohi)) -> (
            let preds = List.sort_uniq compare g.Ir.Cfg.preds.(jb) in
            let closer_of q = if arm_ok q jb then List.sort_uniq compare g.Ir.Cfg.preds.(q) else [ q ] in
            match List.concat_map closer_of preds |> List.sort_uniq compare with
            | [ p ] when p <> jb -> (
              let arms = List.filter (fun q -> q <> p) preds in
              let p_succs = succs_of p in
              let paths_rejoin =
                List.for_all (fun s -> s = jb || List.mem s arms) p_succs
                && List.for_all (fun q -> arm_ok q jb) arms
              in
              let p_last = block_last_insn p in
              let term_is_branch =
                match code.(p_last) with Insn.Jmp _ | Insn.Jcc _ -> true | _ -> false
              in
              let close_end = if term_is_branch then p_last - 1 else p_last in
              match Sitemap.classify sm close_end with
              | Some (a_site, Sitemap.Gate_close) when paths_rejoin && a_site <> b_site -> (
                match run_of a_site false with
                | Some (clo, chi)
                  when chi = close_end
                       && block_of clo = p
                       && no_labels_inside (clo, chi)
                       && not (run_dropped (clo, chi)) ->
                  drop_run (clo, chi);
                  drop_run (olo, ohi);
                  incr coalesced_pairs
                | _ -> ())
              | _ -> ())
            | _ -> ())
          | _ -> ())
        | _ -> ()
      end
    done;
    (* A site whose open and close runs were both merged away vanishes. *)
    for id = 0 to nsites - 1 do
      let run_alive is_open =
        match run_of id is_open with Some (lo, _) -> actions.(lo) <> Drop | None -> false
      in
      if not (run_alive true || run_alive false) then site_survives.(id) <- false
    done
  end;

  (* ---------------- rebuild items + sitemap ------------------------------ *)
  let out = ref [] in
  let pending = ref [] in
  let new_idx = ref 0 in
  let old2new = Hashtbl.create (max n 1) in
  let tags = ref [] in
  let emit insn =
    out := Program.I insn :: !out;
    incr new_idx
  in
  let flush_labels () =
    List.iter (fun l -> out := l :: !out) (List.rev !pending);
    pending := []
  in
  let oidx = ref 0 in
  List.iter
    (fun item ->
      match item with
      | Program.Label _ as l -> pending := l :: !pending
      | Program.I insn ->
        let i = !oidx in
        incr oidx;
        (match Hashtbl.find_opt pre_insert i with
        | Some entries ->
          out := Program.Label (ph_name i) :: !out;
          List.iter
            (fun (site, insns) ->
              List.iter
                (fun x ->
                  tags := (!new_idx, site, Sitemap.Hoisted_check) :: !tags;
                  emit x)
                insns)
            (List.rev !entries)
        | None -> ());
        flush_labels ();
        (match actions.(i) with
        | Drop -> ()
        | Keep ->
          Hashtbl.replace old2new i !new_idx;
          (match Sitemap.classify sm i with
          | Some (s, role) when s < nsites && site_survives.(s) ->
            tags := (!new_idx, s, role) :: !tags
          | _ -> ());
          emit insn
        | Replace insn' ->
          Hashtbl.replace old2new i !new_idx;
          emit insn'))
    items;
  flush_labels ();
  let items' = List.rev !out in
  let sm' = Sitemap.create () in
  let id_map = Hashtbl.create 16 in
  List.iter
    (fun (s : Sitemap.site) ->
      if s.Sitemap.id < nsites && site_survives.(s.Sitemap.id) then begin
        let orip =
          match Hashtbl.find_opt old2new s.Sitemap.orig_rip with Some x -> x | None -> 0
        in
        let nid =
          Sitemap.new_site sm' ~label:s.Sitemap.label ~technique:s.Sitemap.technique
            ~orig_rip:orip
        in
        Hashtbl.replace id_map s.Sitemap.id nid
      end)
    (Sitemap.sites sm);
  List.iter
    (fun (rip, old_site, role) ->
      match Hashtbl.find_opt id_map old_site with
      | Some nid -> Sitemap.tag sm' ~rip ~site:nid ~role
      | None -> ())
    !tags;

  (* ---------------- verification round-trip ----------------------------- *)
  let prog' = Program.assemble items' in
  let post_report = analyze prog' in
  let tag_of (f : Gate_analysis.finding) =
    match String.index_opt f.Gate_analysis.reason ':' with
    | Some i -> String.sub f.Gate_analysis.reason 0 i
    | None -> f.Gate_analysis.reason
  in
  let counts fs =
    let h = Hashtbl.create 8 in
    List.iter
      (fun f ->
        let t = tag_of f in
        Hashtbl.replace h t (1 + try Hashtbl.find h t with Not_found -> 0))
      fs;
    h
  in
  let pre_counts = counts pre_report.Gate_analysis.violations in
  let post_counts = counts post_report.Gate_analysis.violations in
  Hashtbl.iter
    (fun t c ->
      let before = try Hashtbl.find pre_counts t with Not_found -> 0 in
      if c > before then
        raise
          (Rejected
             (Printf.sprintf
                "Gate_opt: refusing to emit — optimization introduced %d new %S violation(s)"
                (c - before) t)))
    post_counts;
  {
    items = items';
    sitemap = sm';
    stats =
      {
        sites_total = nsites;
        eliminated_static = !eliminated_static;
        eliminated_redundant = !eliminated_redundant;
        hoisted = !hoisted;
        preheaders = !preheaders;
        coalesced_pairs = !coalesced_pairs;
        insns_before = n;
        insns_after = Program.length prog';
      };
    report = post_report;
  }

(* --- trace-tier hoist facts --------------------------------------------- *)

(* Pass C's decision procedure, re-run fact-only: which check-site
   instructions are loop-invariant and lead their natural-loop header, so
   the simulator's trace tier may run them once per superblock entry
   instead of once per iteration? No transformation, no elimination
   context (every site counts as present), and MPX only — the trace
   tier's prologue motion handles the [lea; bndcu] shape, whose site uops
   are free of flag and memory effects. The conditions are the
   no-elimination specialization of {!optimize}'s pass C:
   - nothing in the loop body outside the site writes the operand's
     base/index or the scratch register (and nothing havocs), so the
     checked address is the same on every iteration;
   - the site leads its loop header, so a hoisted check faults no later
     than the original would have;
   - one site per loop: the shared scratch register means a second
     hoisted site would clobber the first's checked value. *)
let hoist_facts ~policy (items : Program.item list) (sm : Sitemap.t) =
  let prog = Program.assemble items in
  let code = Program.code prog in
  let n = Array.length code in
  let facts = Array.make (max n 1) false in
  (match policy with
  | Gate_analysis.Mpx_policy ->
    let pcfg = Ir.Cfg.of_program prog in
    let g = pcfg.Ir.Cfg.graph in
    let spans = pcfg.Ir.Cfg.spans in
    let block_of i = pcfg.Ir.Cfg.block_of.(i) in
    let sites = recover_sites ~policy code sm in
    let loops = Ir.Cfg.natural_loops g in
    let entry_blocks = g.Ir.Cfg.entries in
    let marked = Array.make (max (Sitemap.n_sites sm) 1) false in
    List.iter
      (fun (l : Ir.Cfg.loop) ->
        if not (List.mem l.Ir.Cfg.header entry_blocks) then begin
          let in_body = Array.make g.Ir.Cfg.nnodes false in
          List.iter (fun b -> in_body.(b) <- true) l.Ir.Cfg.body;
          let header_first = spans.(l.Ir.Cfg.header).Ir.Cfg.first in
          let body_idxs =
            List.concat_map
              (fun b ->
                let sp = spans.(b) in
                List.init (sp.Ir.Cfg.last - sp.Ir.Cfg.first + 1) (fun k -> sp.Ir.Cfg.first + k))
              l.Ir.Cfg.body
          in
          let candidates =
            List.filter
              (fun s ->
                in_body.(block_of s.afirst)
                && (not marked.(s.aid))
                (* rsp moves implicitly through push/pop/call/ret, past
                   [defs]'s sight; never vouch for an rsp-based operand. *)
                && s.aoperand.Insn.base <> X86sim.Reg.rsp
                && s.aoperand.Insn.index <> X86sim.Reg.rsp)
              sites
          in
          let try_mark s =
            let my_insn i = i >= s.afirst && i <= s.alast in
            let invariant_ok =
              List.for_all
                (fun i ->
                  let insn = code.(i) in
                  (not (havocs_all insn))
                  && (not
                        (List.exists
                           (fun d ->
                             d = s.aoperand.Insn.base || d = s.aoperand.Insn.index
                             || d = scratch)
                           (defs insn))
                     || my_insn i))
                body_idxs
            in
            let fault_ok = block_of s.afirst = l.Ir.Cfg.header && s.afirst = header_first in
            if invariant_ok && fault_ok then begin
              marked.(s.aid) <- true;
              for i = s.afirst to s.alast do
                facts.(i) <- true
              done;
              true
            end
            else false
          in
          ignore (List.exists try_mark candidates)
        end)
      loops
  | _ -> ());
  facts

let pp_stats fmt s =
  Format.fprintf fmt
    "%d sites: %d static-eliminated, %d redundancy-eliminated, %d hoisted (%d preheaders), %d \
     gate pairs coalesced; %d -> %d instructions"
    s.sites_total s.eliminated_static s.eliminated_redundant s.hoisted s.preheaders
    s.coalesced_pairs s.insns_before s.insns_after

let stats_to_json s =
  let open Ms_util.Json in
  Obj
    [
      ("sites_total", Int s.sites_total);
      ("eliminated_static", Int s.eliminated_static);
      ("eliminated_redundant", Int s.eliminated_redundant);
      ("hoisted", Int s.hoisted);
      ("preheaders", Int s.preheaders);
      ("coalesced_pairs", Int s.coalesced_pairs);
      ("insns_before", Int s.insns_before);
      ("insns_after", Int s.insns_after);
    ]
