open X86sim
module Json = Ms_util.Json

type row = {
  fp_label : string;
  fp_technique : string;
  fp_rip : int;
  fp_classes : float array;
}

type t = {
  p_workload : string;
  p_technique : string;
  p_cycles : float;
  p_insns : int;
  p_rows : row list;
  p_blocks : Ublock.stat list;
  p_traces : Trace.stat list;
  p_traces_formed : int;
  p_traces_invalidated : int;
  p_trace_covered : int;
  p_trace_hoisted : int;
  p_trace_fused : int;  (** macro-fused pairs installed at formation *)
  p_trace_slots : int;  (** inline translation slots installed *)
  p_trace_dead_flags : int;  (** dead flag writes elided *)
  p_inline_hits : int;  (** runtime inline-slot short-circuits *)
  p_inline_misses : int;  (** runtime inline-slot misses (eager path) *)
  p_abort_cold : int;  (** formation walks stopped at a cold branch *)
  p_abort_indirect : int;  (** stopped at a majority-less indirect *)
  p_abort_cap : int;  (** stopped at the max_segs/max_insns cap *)
  p_abort_handler : int;  (** stopped at a halt/handler terminator *)
  p_compiles : int;
  p_invalidations : int;
  p_l1_evictions : int;
  p_l2_evictions : int;
  p_l3_evictions : int;
  p_tlb_evictions : int;
  p_walk_cycles : int;
}

let install_on cpu (sm : Sitemap.t) =
  let len = Program.length cpu.Cpu.program in
  let map = Array.make len 0 in
  for rip = 0 to len - 1 do
    match Sitemap.classify sm rip with
    | Some (site, _role) -> map.(rip) <- site + 1
    | None -> ()
  done;
  Cpu.set_site_rows cpu map ~rows:(Sitemap.n_sites sm + 1)

let install (p : Framework.prepared) = install_on p.Framework.cpu p.Framework.sitemap

let install_smp (s : Framework.smp) =
  let sm = s.Framework.prepared.Framework.sitemap in
  Array.iter (fun cpu -> install_on cpu sm) (Machine.cpus s.Framework.machine)

let row_cycles r = Array.fold_left ( +. ) 0.0 r.fp_classes

let total_cycles t = List.fold_left (fun a r -> a +. row_cycles r) 0.0 t.p_rows

let capture_cpu ?workload ~technique (sm : Sitemap.t) (cpu : Cpu.t) =
  let pipe = cpu.Cpu.pipe in
  let cpi = Pipeline.cpi_rows pipe in
  let n_rows = Pipeline.cpi_row_count pipe in
  let row_of i =
    let classes =
      Array.init Pipeline.cls_count (fun c -> cpi.((i * Pipeline.cls_count) + c))
    in
    if i = 0 then { fp_label = "app"; fp_technique = ""; fp_rip = -1; fp_classes = classes }
    else
      let s = Sitemap.site sm (i - 1) in
      {
        fp_label = s.Sitemap.label;
        fp_technique = s.Sitemap.technique;
        fp_rip = s.Sitemap.orig_rip;
        fp_classes = classes;
      }
  in
  let cache = cpu.Cpu.mmu.Mmu.cache in
  let tier = cpu.Cpu.traces in
  {
    p_workload = (match workload with Some w -> w | None -> "");
    p_technique = technique;
    p_cycles = Cpu.cycles cpu;
    p_insns = cpu.Cpu.counters.Cpu.insns;
    p_rows = List.init n_rows row_of;
    p_blocks = Ublock.stats cpu.Cpu.tcache;
    p_traces = Trace.stats tier;
    p_traces_formed = tier.Trace.formed_count;
    p_traces_invalidated = tier.Trace.invalidated_count;
    p_trace_covered = tier.Trace.covered_insns;
    p_trace_hoisted = tier.Trace.hoisted_checks;
    p_trace_fused = tier.Trace.fused_uops;
    p_trace_slots = tier.Trace.cached_slots;
    p_trace_dead_flags = tier.Trace.dead_flags;
    p_inline_hits = tier.Trace.inline_hits;
    p_inline_misses = tier.Trace.inline_misses;
    p_abort_cold = tier.Trace.abort_cold_branch;
    p_abort_indirect = tier.Trace.abort_indirect_minority;
    p_abort_cap = tier.Trace.abort_cap_hit;
    p_abort_handler = tier.Trace.abort_handler_term;
    p_compiles = Ublock.compiles cpu.Cpu.tcache;
    p_invalidations = Ublock.invalidations cpu.Cpu.tcache;
    p_l1_evictions = Cache.l1_evictions cache;
    p_l2_evictions = Cache.l2_evictions cache;
    p_l3_evictions = Cache.l3_evictions cache;
    p_tlb_evictions = Tlb.evictions cpu.Cpu.mmu.Mmu.tlb;
    p_walk_cycles = cpu.Cpu.mmu.Mmu.walk_cycles;
  }

let capture ?workload (p : Framework.prepared) =
  capture_cpu ?workload
    ~technique:(Technique.name p.Framework.cfg.Framework.technique)
    p.Framework.sitemap p.Framework.cpu

let capture_smp ?workload (s : Framework.smp) =
  let p = s.Framework.prepared in
  let technique = Technique.name p.Framework.cfg.Framework.technique in
  Array.to_list
    (Array.mapi
       (fun i cpu ->
         let workload =
           match workload with Some w -> Some (Printf.sprintf "%s/core%d" w i) | None -> None
         in
         capture_cpu ?workload ~technique p.Framework.sitemap cpu)
       (Machine.cpus s.Framework.machine))

(* Merge per-core profiles into one machine-wide profile: cycles and
   counters sum (note L3 evictions are shared-tier counters aliased into
   every core's capture, so they are taken from the first profile only),
   CPI rows merge by (label, rip) with element-wise class addition, block
   stats merge by entry. Row/block order follows the first profile, with
   rows only the later cores saw appended. *)
let merge = function
  | [] -> invalid_arg "Fastprof.merge: empty list"
  | first :: _ as all ->
    let tbl = Hashtbl.create 64 in
    let order = ref [] in
    List.iter
      (fun t ->
        List.iter
          (fun r ->
            let k = (r.fp_label, r.fp_rip) in
            match Hashtbl.find_opt tbl k with
            | Some acc ->
              Array.iteri (fun i c -> acc.fp_classes.(i) <- acc.fp_classes.(i) +. c) r.fp_classes
            | None ->
              let acc = { r with fp_classes = Array.copy r.fp_classes } in
              Hashtbl.add tbl k acc;
              order := k :: !order)
          t.p_rows)
      all;
    let rows = List.rev_map (Hashtbl.find tbl) !order in
    let btbl = Hashtbl.create 64 in
    let border = ref [] in
    List.iter
      (fun t ->
        List.iter
          (fun (s : Ublock.stat) ->
            match Hashtbl.find_opt btbl s.Ublock.s_entry with
            | Some (acc : Ublock.stat) ->
              Hashtbl.replace btbl s.Ublock.s_entry
                {
                  acc with
                  Ublock.s_exec = acc.Ublock.s_exec + s.Ublock.s_exec;
                  s_taken = acc.Ublock.s_taken + s.Ublock.s_taken;
                  s_fall = acc.Ublock.s_fall + s.Ublock.s_fall;
                  s_dyn_votes = acc.Ublock.s_dyn_votes + s.Ublock.s_dyn_votes;
                  s_dyn_total = acc.Ublock.s_dyn_total + s.Ublock.s_dyn_total;
                }
            | None ->
              Hashtbl.add btbl s.Ublock.s_entry s;
              border := s.Ublock.s_entry :: !border)
          t.p_blocks)
      all;
    let blocks = List.rev_map (Hashtbl.find btbl) !border in
    let ttbl = Hashtbl.create 16 in
    let torder = ref [] in
    List.iter
      (fun t ->
        List.iter
          (fun (s : Trace.stat) ->
            match Hashtbl.find_opt ttbl s.Trace.t_entry with
            | Some (acc : Trace.stat) ->
              Hashtbl.replace ttbl s.Trace.t_entry
                {
                  acc with
                  Trace.t_execs = acc.Trace.t_execs + s.Trace.t_execs;
                  t_side_exits = acc.Trace.t_side_exits + s.Trace.t_side_exits;
                  t_cycles = acc.Trace.t_cycles +. s.Trace.t_cycles;
                }
            | None ->
              Hashtbl.add ttbl s.Trace.t_entry s;
              torder := s.Trace.t_entry :: !torder)
          t.p_traces)
      all;
    let traces = List.rev_map (Hashtbl.find ttbl) !torder in
    let sum f = List.fold_left (fun a t -> a + f t) 0 all in
    {
      p_workload = first.p_workload;
      p_technique = first.p_technique;
      p_cycles = List.fold_left (fun a t -> a +. t.p_cycles) 0.0 all;
      p_insns = sum (fun t -> t.p_insns);
      p_rows = rows;
      p_blocks = blocks;
      p_traces = traces;
      p_traces_formed = sum (fun t -> t.p_traces_formed);
      p_traces_invalidated = sum (fun t -> t.p_traces_invalidated);
      p_trace_covered = sum (fun t -> t.p_trace_covered);
      p_trace_hoisted = sum (fun t -> t.p_trace_hoisted);
      p_trace_fused = sum (fun t -> t.p_trace_fused);
      p_trace_slots = sum (fun t -> t.p_trace_slots);
      p_trace_dead_flags = sum (fun t -> t.p_trace_dead_flags);
      p_inline_hits = sum (fun t -> t.p_inline_hits);
      p_inline_misses = sum (fun t -> t.p_inline_misses);
      p_abort_cold = sum (fun t -> t.p_abort_cold);
      p_abort_indirect = sum (fun t -> t.p_abort_indirect);
      p_abort_cap = sum (fun t -> t.p_abort_cap);
      p_abort_handler = sum (fun t -> t.p_abort_handler);
      p_compiles = sum (fun t -> t.p_compiles);
      p_invalidations = sum (fun t -> t.p_invalidations);
      p_l1_evictions = sum (fun t -> t.p_l1_evictions);
      p_l2_evictions = sum (fun t -> t.p_l2_evictions);
      p_l3_evictions = first.p_l3_evictions;
      p_tlb_evictions = sum (fun t -> t.p_tlb_evictions);
      p_walk_cycles = sum (fun t -> t.p_walk_cycles);
    }

(* ------------------------------------------------------------------ *)
(* JSON round-trip                                                     *)
(* ------------------------------------------------------------------ *)

let row_to_json r =
  Json.Obj
    [
      ("label", Json.String r.fp_label);
      ("technique", Json.String r.fp_technique);
      ("rip", Json.Int r.fp_rip);
      ("cycles", Json.List (Array.to_list (Array.map (fun c -> Json.Float c) r.fp_classes)));
    ]

let block_to_json (s : Ublock.stat) =
  Json.Obj
    [
      ("entry", Json.Int s.Ublock.s_entry);
      ("insns", Json.Int s.Ublock.s_insns);
      ("exec", Json.Int s.Ublock.s_exec);
      ("taken", Json.Int s.Ublock.s_taken);
      ("fall", Json.Int s.Ublock.s_fall);
      ("taken_target", Json.Int s.Ublock.s_taken_target);
      ("fall_target", Json.Int s.Ublock.s_fall_target);
      ("dyn_target", Json.Int s.Ublock.s_dyn_target);
      ("dyn_votes", Json.Int s.Ublock.s_dyn_votes);
      ("dyn_total", Json.Int s.Ublock.s_dyn_total);
    ]

let trace_to_json (s : Trace.stat) =
  Json.Obj
    [
      ("entry", Json.Int s.Trace.t_entry);
      ("blocks", Json.List (List.map (fun b -> Json.Int b) s.Trace.t_blocks));
      ("insns", Json.Int s.Trace.t_insns);
      ("execs", Json.Int s.Trace.t_execs);
      ("side_exits", Json.Int s.Trace.t_side_exits);
      ("cycles", Json.Float s.Trace.t_cycles);
      ("loops", Json.Bool s.Trace.t_loops);
      ("hoisted", Json.Int s.Trace.t_hoisted);
    ]

let to_json t =
  Json.Obj
    [
      ("workload", Json.String t.p_workload);
      ("technique", Json.String t.p_technique);
      ("cycles", Json.Float t.p_cycles);
      ("insns", Json.Int t.p_insns);
      ( "cpi",
        Json.Obj
          [
            ( "classes",
              Json.List
                (Array.to_list (Array.map (fun n -> Json.String n) Pipeline.cls_names)) );
            ("rows", Json.List (List.map row_to_json t.p_rows));
          ] );
      ("blocks", Json.List (List.map block_to_json t.p_blocks));
      ( "traces",
        Json.Obj
          [
            ("formed", Json.Int t.p_traces_formed);
            ("invalidated", Json.Int t.p_traces_invalidated);
            ("covered_insns", Json.Int t.p_trace_covered);
            ("hoisted_checks", Json.Int t.p_trace_hoisted);
            ("fused_uops", Json.Int t.p_trace_fused);
            ("cached_slots", Json.Int t.p_trace_slots);
            ("dead_flags", Json.Int t.p_trace_dead_flags);
            ("inline_hits", Json.Int t.p_inline_hits);
            ("inline_misses", Json.Int t.p_inline_misses);
            ( "aborts",
              Json.Obj
                [
                  ("cold_branch", Json.Int t.p_abort_cold);
                  ("indirect_minority", Json.Int t.p_abort_indirect);
                  ("cap_hit", Json.Int t.p_abort_cap);
                  ("handler_term", Json.Int t.p_abort_handler);
                ] );
            ("list", Json.List (List.map trace_to_json t.p_traces));
          ] );
      ( "tcache",
        Json.Obj
          [ ("compiles", Json.Int t.p_compiles); ("invalidations", Json.Int t.p_invalidations) ]
      );
      ( "memory",
        Json.Obj
          [
            ("l1_evictions", Json.Int t.p_l1_evictions);
            ("l2_evictions", Json.Int t.p_l2_evictions);
            ("l3_evictions", Json.Int t.p_l3_evictions);
            ("tlb_evictions", Json.Int t.p_tlb_evictions);
            ("walk_cycles", Json.Int t.p_walk_cycles);
          ] );
    ]

let fail fmt = Printf.ksprintf invalid_arg ("Fastprof.of_json: " ^^ fmt)

let get name j = match Json.member name j with Some v -> v | None -> fail "missing %S" name

let get_int name j =
  match get name j with Json.Int i -> i | _ -> fail "field %S is not an int" name

let get_float name j =
  match get name j with
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | _ -> fail "field %S is not a number" name

let get_string name j =
  match get name j with Json.String s -> s | _ -> fail "field %S is not a string" name

let get_list name j =
  match get name j with Json.List l -> l | _ -> fail "field %S is not a list" name

let row_of_json j =
  {
    fp_label = get_string "label" j;
    fp_technique = get_string "technique" j;
    fp_rip = get_int "rip" j;
    fp_classes =
      Array.of_list
        (List.map
           (function
             | Json.Float f -> f
             | Json.Int i -> float_of_int i
             | _ -> fail "row cycles entry is not a number")
           (get_list "cycles" j));
  }

let block_of_json j =
  {
    Ublock.s_entry = get_int "entry" j;
    s_insns = get_int "insns" j;
    s_exec = get_int "exec" j;
    s_taken = get_int "taken" j;
    s_fall = get_int "fall" j;
    s_taken_target = get_int "taken_target" j;
    s_fall_target = get_int "fall_target" j;
    s_dyn_target = get_int "dyn_target" j;
    s_dyn_votes = get_int "dyn_votes" j;
    s_dyn_total = get_int "dyn_total" j;
  }

let trace_of_json j =
  {
    Trace.t_entry = get_int "entry" j;
    t_blocks =
      List.map
        (function Json.Int b -> b | _ -> fail "trace blocks entry is not an int")
        (get_list "blocks" j);
    t_insns = get_int "insns" j;
    t_execs = get_int "execs" j;
    t_side_exits = get_int "side_exits" j;
    t_cycles = get_float "cycles" j;
    t_loops = (match get "loops" j with Json.Bool b -> b | _ -> fail "trace loops not a bool");
    t_hoisted = get_int "hoisted" j;
  }

let of_json j =
  let cpi = get "cpi" j in
  let tc = get "tcache" j in
  let mem = get "memory" j in
  (* Lenient on the trace section: profiles captured before the trace
     tier existed simply have no superblocks. *)
  let tr name f d = match Json.member "traces" j with None -> d | Some t -> f name t in
  {
    p_workload = get_string "workload" j;
    p_technique = get_string "technique" j;
    p_cycles = get_float "cycles" j;
    p_insns = get_int "insns" j;
    p_rows = List.map row_of_json (get_list "rows" cpi);
    p_blocks = List.map block_of_json (get_list "blocks" j);
    p_traces = List.map trace_of_json (tr "list" get_list []);
    p_traces_formed = tr "formed" get_int 0;
    p_traces_invalidated = tr "invalidated" get_int 0;
    p_trace_covered = tr "covered_insns" get_int 0;
    p_trace_hoisted = tr "hoisted_checks" get_int 0;
    (* Lenient again inside the trace section: pre-optimizer profiles
       predate these counters. *)
    p_trace_fused = tr "fused_uops" get_int 0;
    p_trace_slots = tr "cached_slots" get_int 0;
    p_trace_dead_flags = tr "dead_flags" get_int 0;
    p_inline_hits = tr "inline_hits" get_int 0;
    p_inline_misses = tr "inline_misses" get_int 0;
    p_abort_cold =
      (match Json.member "traces" j with
      | None -> 0
      | Some t -> (
        match Json.member "aborts" t with None -> 0 | Some a -> get_int "cold_branch" a));
    p_abort_indirect =
      (match Json.member "traces" j with
      | None -> 0
      | Some t -> (
        match Json.member "aborts" t with None -> 0 | Some a -> get_int "indirect_minority" a));
    p_abort_cap =
      (match Json.member "traces" j with
      | None -> 0
      | Some t -> (
        match Json.member "aborts" t with None -> 0 | Some a -> get_int "cap_hit" a));
    p_abort_handler =
      (match Json.member "traces" j with
      | None -> 0
      | Some t -> (
        match Json.member "aborts" t with None -> 0 | Some a -> get_int "handler_term" a));
    p_compiles = get_int "compiles" tc;
    p_invalidations = get_int "invalidations" tc;
    p_l1_evictions = get_int "l1_evictions" mem;
    p_l2_evictions = get_int "l2_evictions" mem;
    p_l3_evictions = get_int "l3_evictions" mem;
    p_tlb_evictions = get_int "tlb_evictions" mem;
    p_walk_cycles = get_int "walk_cycles" mem;
  }

(* ------------------------------------------------------------------ *)
(* Regression diff and flamegraph stacks                               *)
(* ------------------------------------------------------------------ *)

type regression = {
  rg_label : string;
  rg_rip : int;
  rg_before : float;
  rg_after : float;
  rg_ratio : float;
}

let diff ~threshold ~before ~after =
  let key r = (r.fp_label, r.fp_rip) in
  let base = List.map (fun r -> (key r, row_cycles r)) before.p_rows in
  let regressions =
    List.filter_map
      (fun r ->
        let cyc = row_cycles r in
        match List.assoc_opt (key r) base with
        | Some b when b > 0.0 ->
          let ratio = cyc /. b in
          if ratio > 1.0 +. threshold then
            Some { rg_label = r.fp_label; rg_rip = r.fp_rip; rg_before = b; rg_after = cyc;
                   rg_ratio = ratio }
          else None
        | Some _ | None ->
          if cyc > 0.0 then
            Some { rg_label = r.fp_label; rg_rip = r.fp_rip; rg_before = 0.0; rg_after = cyc;
                   rg_ratio = infinity }
          else None)
      after.p_rows
  in
  List.sort (fun a b -> compare b.rg_ratio a.rg_ratio) regressions

let stacks t =
  List.concat_map
    (fun r ->
      let tech = if r.fp_technique = "" then "app" else r.fp_technique in
      let site =
        if r.fp_rip < 0 then r.fp_label else Printf.sprintf "%s@%d" r.fp_label r.fp_rip
      in
      List.filter
        (fun (_, w) -> w > 0.0)
        (List.mapi
           (fun c w -> ([ tech; site; Pipeline.cls_names.(c) ], w))
           (Array.to_list r.fp_classes)))
    t.p_rows
