(** Gate-site map: which instructions of an instrumented program belong to
    which instrumentation site, and in what role.

    A {e site} is one static location where an instrumentation pass
    inserted code — a domain-switch pair around a switch point, or a
    pointer check before an access. The passes in {!Instr} allocate one
    site per rewritten location and tag every inserted instruction with
    [(site id, role)], keyed by the instruction's final index in the
    assembled program — so any observed [rip] (from a step hook or a typed
    {!X86sim.Event.t}) maps straight back to the responsible site. This is
    the repo's analogue of the paper's PIN-based attribution of overhead
    to individual gates (§5.5). *)

type role =
  | Gate_open  (** part of an [enter] sequence (domain opens). *)
  | Gate_close  (** part of a [leave] sequence. *)
  | Check  (** part of an address-based check/masking sequence. *)
  | Hoisted_check
      (** a check {!Memsentry.Gate_opt} moved to a loop preheader; counted
          like [Check] by the profiler but attributable to the motion. *)

val role_name : role -> string

type site = {
  id : int;  (** dense, 0-based, in pass emission order. *)
  label : string;  (** e.g. ["mpk-switch"], ["mpx-check"]. *)
  technique : string;  (** {!Technique.name} of the inserting pass. *)
  orig_rip : int;
      (** Final index of the original instruction this site guards (the
          switch point or the rewritten access). *)
}

type t

val create : unit -> t

val new_site : t -> label:string -> technique:string -> orig_rip:int -> int
(** Allocate the next site; returns its id. *)

val tag : t -> rip:int -> site:int -> role:role -> unit

val classify : t -> int -> (int * role) option
(** [(site id, role)] of an instruction index, or [None] for application
    code. O(1); used in the profiler's per-step hot path. *)

val lookup : t -> int -> (site * role) option

val site : t -> int -> site
(** Raises [Invalid_argument] for out-of-range ids. *)

val sites : t -> site list
(** In id order. *)

val n_sites : t -> int
val tagged_instructions : t -> int
val to_json : t -> Ms_util.Json.t
