(** Fast-path microarchitectural profiler.

    Where {!Profiler} watches a run through step/event hooks (forcing the
    CPU off its translated fast loop), this module reads the counters the
    fast path maintains {e anyway}: the per-block execution/edge profile
    kept by {!X86sim.Ublock}, and the CPI-stack cycle accounting kept by
    {!X86sim.Pipeline} — every simulated cycle attributed to exactly one
    of issue/port contention, L1/L2/L3 miss, TLB walk, store-buffer
    stall, gate instruction, or base issue. {!install} additionally maps
    each instruction to its {!Sitemap} site so the CPI stack is kept per
    gate site; without it the whole program lands in one aggregate row.

    The architectural state of a run is byte-identical with or without
    {!install} — the map changes only which accumulation row each cycle
    lands in, never the modeled numbers (invariant-tested). *)

open X86sim

type row = {
  fp_label : string;  (** site label, or ["app"] for row 0 *)
  fp_technique : string;  (** inserting technique, [""] for app *)
  fp_rip : int;  (** site's guarded instruction index, [-1] for app *)
  fp_classes : float array;  (** cycles per {!Pipeline.cls_names} class *)
}

type t = {
  p_workload : string;
  p_technique : string;
  p_cycles : float;  (** pipeline total at capture *)
  p_insns : int;
  p_rows : row list;  (** app row first, then site-id order *)
  p_blocks : Ublock.stat list;  (** executed blocks, entry order *)
  p_traces : Trace.stat list;  (** live superblocks, formation order *)
  p_traces_formed : int;  (** cumulative, includes invalidated traces *)
  p_traces_invalidated : int;
  p_trace_covered : int;  (** retired instructions executed inside superblocks *)
  p_trace_hoisted : int;  (** check uops hoisted into trace prologues *)
  p_trace_fused : int;  (** macro-fused uop pairs installed at formation *)
  p_trace_slots : int;  (** inline translation slots installed *)
  p_trace_dead_flags : int;  (** dead flag writes elided at formation *)
  p_inline_hits : int;  (** runtime inline-slot short-circuits taken *)
  p_inline_misses : int;  (** runtime inline-slot misses (eager path) *)
  (* Chain-end reason counters: why trace-formation walks stopped — the
     coverage-diagnosis signal (cumulative over every formation attempt). *)
  p_abort_cold : int;  (** stopped at a cold/unbiased conditional branch *)
  p_abort_indirect : int;  (** stopped at a majority-less indirect exit *)
  p_abort_cap : int;  (** stopped at the max_segs/max_insns cap *)
  p_abort_handler : int;  (** stopped at a halt/handler/fall-off terminator *)
  p_compiles : int;
  p_invalidations : int;
  p_l1_evictions : int;
  p_l2_evictions : int;
  p_l3_evictions : int;
  p_tlb_evictions : int;
  p_walk_cycles : int;
}

val install : Framework.prepared -> unit
(** Build the rip → site row map from the prepared sitemap and install it
    ({!Cpu.set_site_rows}): row 0 is application code, row [id + 1] is
    site [id]. Zeroes any prior CPI accumulation. Call before running. *)

val capture : ?workload:string -> Framework.prepared -> t
(** Snapshot every fast-path counter of the (finished) run. Works with or
    without a prior {!install} — without one the CPI stack has only the
    aggregate app row. *)

val install_smp : Framework.smp -> unit
(** {!install} on every vCPU of a multi-core preparation (the sitemap is
    shared — all cores run the same instrumented program). *)

val capture_smp : ?workload:string -> Framework.smp -> t list
(** One profile per vCPU, in core order; [workload] is suffixed with
    ["/coreN"]. Note each core's L3-eviction count aliases the shared
    tier's counter (see {!X86sim.Cache.l3_hits}). *)

val merge : t list -> t
(** Machine-wide rollup of per-core profiles: cycles/instruction counters
    sum, CPI rows merge by (label, rip) with element-wise class addition,
    block stats merge by entry, trace stats merge by entry (execs,
    side exits and cycles sum). Shared-tier L3 evictions are taken once
    (from the first profile), not summed. Workload/technique labels come
    from the first profile. Raises [Invalid_argument] on []. *)

val total_cycles : t -> float
(** Sum over all rows and classes — equals [p_cycles] minus only
    float-addition rounding (the per-issue deltas telescope). *)

val row_cycles : row -> float

val trace_to_json : Trace.stat -> Ms_util.Json.t
(** One formed superblock as a JSON object (the element type of the
    profile's ["traces"."list"]); exposed for artifacts that embed the
    formed-trace list without a full profile (bench edgeprof). *)

val to_json : t -> Ms_util.Json.t
(** Self-contained profile artifact: CPI rows, block/edge profile (the
    superblock tier's input), formed-superblock list with coverage
    counters, translation-cache and memory-system counters. Round-trips
    through {!of_json}. *)

val of_json : Ms_util.Json.t -> t
(** Raises [Invalid_argument] on a value not produced by {!to_json}.
    Lenient about the ["traces"] section (absent in profiles captured
    before the trace tier existed: zero counts, empty list). *)

type regression = {
  rg_label : string;
  rg_rip : int;
  rg_before : float;  (** row cycles in the baseline profile *)
  rg_after : float;
  rg_ratio : float;  (** after / before ([infinity] for a new row) *)
}

val diff : threshold:float -> before:t -> after:t -> regression list
(** Per-site cycle regressions: rows of [after] (matched to [before] by
    label and rip) whose cycles grew by more than [threshold]
    (e.g. [0.05] = 5%), worst ratio first. Rows absent from [before]
    with nonzero cycles are flagged with [rg_ratio = infinity]. *)

val stacks : t -> (string list * float) list
(** The profile as weighted [technique; site; class] frame stacks for
    {!Ms_util.Flamegraph} (one entry per nonzero row/class cell). *)
