open X86sim

type key_location = Ymm_high | Key_table

type t = {
  regions : Safe_region.region list;
  keys : Aesni.Aes.block array;
  key_location : key_location;
}

(* Where the insecure Key_table variant parks the schedule (nonsensitive
   partition, 16-byte aligned). *)
let key_table_va = 0x28_0000_0000

let round_key_regs = (4, 14)

let key_reg r = 4 + r (* ymm high half holding round key r *)
let work_reg r = 2 + r (* xmm2-12: per-switch working copy of round key r *)

let state = 0 (* xmm0: working state *)

let addr = Ir.Lower.scratch1
let kaddr = Ir.Lower.scratch2

(* Fetch round key [r] into [dst]: one vextracti128 from a ymm high half,
   or a 16-byte load from the key table. *)
let fetch_key loc r ~dst =
  match loc with
  | Ymm_high -> [ Insn.Vext_high (dst, key_reg r) ]
  | Key_table ->
    [ Insn.Mov_ri (kaddr, key_table_va + (16 * r));
      Insn.Movdqa_load (dst, Insn.mem ~base:kaddr 0) ]

(* Per-switch preparation: stage all round keys in xmm2-12, transforming
   the middle ones with aesimc when decryption keys are needed. Done once
   per switch, not per block — "encryption of larger sizes increases
   linearly on top of this initial cost" (§6.2). Clobbers xmm1-12, the
   register pressure the paper attributes to crypt. *)
let prep_keys loc ~for_decrypt =
  List.concat
    (List.init 11 (fun r ->
         fetch_key loc r ~dst:(work_reg r)
         @ (if for_decrypt && r >= 1 && r <= 9 then [ Insn.Aesimc (work_reg r, work_reg r) ]
            else [])))

let decrypt_block off =
  [ Insn.Movdqa_load (state, Insn.mem ~base:addr off); Insn.Pxor (state, work_reg 10) ]
  @ List.init 9 (fun i -> Insn.Aesdec (state, work_reg (9 - i)))
  @ [ Insn.Aesdeclast (state, work_reg 0) ]
  @ [ Insn.Movdqa_store (Insn.mem ~base:addr off, state) ]

let encrypt_block off =
  [ Insn.Movdqa_load (state, Insn.mem ~base:addr off); Insn.Pxor (state, work_reg 0) ]
  @ List.init 9 (fun i -> Insn.Aesenc (state, work_reg (i + 1)))
  @ [ Insn.Aesenclast (state, work_reg 10) ]
  @ [ Insn.Movdqa_store (Insn.mem ~base:addr off, state) ]

let per_region per_block (r : Safe_region.region) =
  Insn.Mov_ri (addr, r.Safe_region.va)
  :: List.concat (List.init (r.Safe_region.size / 16) (fun b -> per_block (16 * b)))

let enter t =
  prep_keys t.key_location ~for_decrypt:true
  @ List.concat_map (per_region decrypt_block) t.regions

let leave t =
  prep_keys t.key_location ~for_decrypt:false
  @ List.concat_map (per_region encrypt_block) t.regions

let setup cpu ?(key_location = Ymm_high) ~seed regions =
  List.iter
    (fun (r : Safe_region.region) ->
      if r.Safe_region.size mod 16 <> 0 then
        invalid_arg "Instr_crypt.setup: region size must be a multiple of 16";
      if r.Safe_region.va mod 16 <> 0 then
        invalid_arg "Instr_crypt.setup: region must be 16-byte aligned")
    regions;
  let prng = Ms_util.Prng.create ~seed in
  let keyb = Bytes.create 16 in
  Bytes.set_int64_le keyb 0 (Ms_util.Prng.next_int64 prng);
  Bytes.set_int64_le keyb 8 (Ms_util.Prng.next_int64 prng);
  let keys = Aesni.Aes.expand_key keyb in
  (match key_location with
  | Ymm_high -> Array.iteri (fun r k -> Cpu.set_ymm_high cpu (key_reg r) k) keys
  | Key_table ->
    Mmu.map_range cpu.Cpu.mmu ~va:key_table_va ~len:(16 * 11) ~writable:true;
    Array.iteri (fun r k -> Mmu.poke_bytes cpu.Cpu.mmu ~va:(key_table_va + (16 * r)) k) keys);
  (* Loader-side initial encryption of the regions. *)
  List.iter
    (fun (r : Safe_region.region) ->
      let plain = Mmu.peek_bytes cpu.Cpu.mmu ~va:r.Safe_region.va ~len:r.Safe_region.size in
      Mmu.poke_bytes cpu.Cpu.mmu ~va:r.Safe_region.va (Aesni.Aes.encrypt_bytes ~key:keys plain))
    regions;
  { regions; keys; key_location }

let key_schedule t = t.keys

(* Install the round keys on a sibling core of an already-[setup] machine.
   [Ymm_high] keys are register state, so every core needs its own copy
   (recomputed from the seed); a [Key_table] lives in shared memory and
   the regions were already encrypted once by core 0's [setup] — re-running
   [setup] would double-encrypt them. *)
let install_keys cpu ?(key_location = Ymm_high) ~seed () =
  match key_location with
  | Key_table -> ()
  | Ymm_high ->
    let prng = Ms_util.Prng.create ~seed in
    let keyb = Bytes.create 16 in
    Bytes.set_int64_le keyb 0 (Ms_util.Prng.next_int64 prng);
    Bytes.set_int64_le keyb 8 (Ms_util.Prng.next_int64 prng);
    let keys = Aesni.Aes.expand_key keyb in
    Array.iteri (fun r k -> Cpu.set_ymm_high cpu (key_reg r) k) keys
