(** The generic instrumentation engine shared by every technique.

    Two rewriting schemes over lowered machine code
    ({!Ir.Lower.mitem} lists), mirroring the paper's two isolation classes:

    {b Address-based} ({!address_based}): every data access whose direction
    matches [kind] — except those marked [safe] and except spill-slot
    traffic — is split into address computation plus a checked/masked
    access (the paper's Fig. 2): [mov rdi, [rbx+8]] becomes
    [lea r12, [rbx+8]; <check r12>; mov rdi, [r12]]. The check sequence is
    supplied by the technique (a [bndcu], or a mask load + [and]).

    {b Domain-based} ({!domain_based}): [enter]/[leave] sequences are
    inserted at the configured switch points. [At_safe_accesses] brackets
    exactly the accesses a defense annotated (the semantically meaningful
    placement); [At_call_ret] / [At_indirect_branches] / [At_syscalls]
    reproduce the paper's Figures 4/5/6 methodology of paying one
    open+close pair at every such instruction.

    Instrumentation sequences may only clobber r12/r13 (reserved by the
    backend) — techniques needing more must save/restore internally. *)

open X86sim

type access_kind = Reads | Writes | Reads_and_writes

type switch_policy =
  | At_call_ret
  | At_indirect_branches
  | At_syscalls
  | At_safe_accesses

val address_based :
  check:(Reg.gpr -> Insn.t list) ->
  kind:access_kind ->
  Ir.Lower.mitem list ->
  Program.item list
(** [check reg] receives the register holding the about-to-be-used pointer
    (always {!Ir.Lower.scratch1}) and returns the verification sequence. *)

val address_based_lea32 :
  kind:access_kind -> Ir.Lower.mitem list -> Program.item list
(** ISBoxing-style rewriting: the address computation itself carries the
    32-bit address-size prefix ([Lea32]) — no separate check instruction
    at all, at the price of a 4 GiB address space. *)

val domain_based :
  enter:Insn.t list ->
  leave:Insn.t list ->
  policy:switch_policy ->
  Ir.Lower.mitem list ->
  Program.item list

(** {2 Site-tagged variants}

    Same rewriting, but each also returns a {!Sitemap.t}: one site per
    rewritten location, every {e inserted} instruction tagged with
    [(site, role)] under the index it will have in the assembled program.
    The plain functions above are these with the sitemap discarded. *)

val address_based_sites :
  check:(Reg.gpr -> Insn.t list) ->
  kind:access_kind ->
  technique:string ->
  ?label:string ->
  Ir.Lower.mitem list ->
  Program.item list * Sitemap.t
(** Check instructions are tagged {!Sitemap.Check}; the rewritten access
    itself (original program work) stays untagged. [label] defaults to
    ["check"]. *)

val address_based_lea32_sites :
  kind:access_kind ->
  technique:string ->
  ?label:string ->
  Ir.Lower.mitem list ->
  Program.item list * Sitemap.t

val domain_based_sites :
  enter:Insn.t list ->
  leave:Insn.t list ->
  policy:switch_policy ->
  technique:string ->
  ?label:string ->
  Ir.Lower.mitem list ->
  Program.item list * Sitemap.t
(** [enter] instructions are tagged {!Sitemap.Gate_open}, [leave] ones
    {!Sitemap.Gate_close}; the switch-point instruction stays untagged.
    [label] defaults to ["switch"]. *)

val strip : Ir.Lower.mitem list -> Program.item list
(** No instrumentation (the baseline build). *)

val count_instrumentable : kind:access_kind -> Ir.Lower.mitem list -> int
(** How many accesses address-based instrumentation would rewrite. *)

val count_switch_points : policy:switch_policy -> Ir.Lower.mitem list -> int
