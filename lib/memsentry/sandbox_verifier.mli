(** NaCl-style static verification of instrumented programs.

    Native Client's key idea (paper §7 \[56, 70\]) is to {e verify} the
    sandboxed binary instead of trusting the compiler: a small checker
    proves that every memory access is confined. This module is the
    stable front door to that checker; the analysis itself lives in
    {!Gate_analysis} — a forward dataflow over the program's {!Ir.Cfg}
    which joins facts across control-flow edges, so a check in one basic
    block covers every block it dominates.

    Address-based policies accept accesses proven confined by the
    recognized patterns:

    - SFI: [mov r13, 0x3fffffffffff] followed by [and r, r13] (or the
      immediate form [and r, mask]);
    - MPX: [bndcu r, bnd0] under the stated [bnd0] bound;
    - ISBoxing: [lea32 r, ...] (a 32-bit address is below any split);
    - constants: [mov r, imm] with [0 <= imm < split].

    Domain-based policies ({!Gate_analysis.Mpk_policy},
    [Vmfunc_policy], [Crypt_policy]) instead prove ERIM-style gate
    integrity: the gate is closed on every path reaching a
    [call]/[ret]/[syscall]/indirect branch, never double-opened, and
    provably-sensitive accesses happen only under an open gate.

    Stack traffic (rsp-relative with a bounded displacement,
    push/pop/call/ret) is accepted, matching the paper's observation that
    spills need no instrumentation. Function bodies reachable only via
    [call] are analyzed as secondary entry points with havocked registers
    and a closed gate.

    Accesses that do not verify are returned as {!violation}s. For a
    program instrumented with no [safe] annotations the list is empty; a
    defense's own safe-region accesses are reported — which is the point:
    the checker shrinks the trusted computing base to an audit of exactly
    those locations. *)

type policy = Gate_analysis.policy =
  | Sfi_policy
  | Mpx_policy
  | Isboxing_policy
  | Mpk_policy of Mpk.Pkey.protection
  | Vmfunc_policy
  | Crypt_policy

type violation = Gate_analysis.finding = {
  index : int;
  insn : string;
  reason : string;
}

type result = Clean | Violations of violation list

val verify :
  ?split:int ->
  ?bnd0_upper:int ->
  ?kind:Instr.access_kind ->
  ?mpk_key:int ->
  policy:policy ->
  X86sim.Program.t ->
  result
(** [split] defaults to {!X86sim.Layout.sensitive_base}; [bnd0_upper] is
    the bound the loader is assumed to put in bnd0 (defaults to
    [split - 1]) and must satisfy [bnd0_upper < split] for MPX verification
    to be sound — checked, [Invalid_argument] otherwise. [kind] restricts
    which accesses must verify (default all): an integrity-only deployment
    (shadow stack) only needs [Writes] confined. [mpk_key] is the pkey
    guarding the safe region (default 1, matching {!Instr_mpk.setup}).

    [Clean] means no violations; lints do not affect the verdict. Use
    {!verify_report} for the full {!Gate_analysis.report} including lints
    and statistics. *)

val verify_report :
  ?split:int ->
  ?bnd0_upper:int ->
  ?kind:Instr.access_kind ->
  ?mpk_key:int ->
  policy:policy ->
  X86sim.Program.t ->
  Gate_analysis.report
(** Same analysis, full structured report. *)

val violation_count : result -> int

val pp_result : Format.formatter -> result -> unit
