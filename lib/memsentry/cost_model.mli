(** Static cost model for instrumented programs.

    Predicts, from the CFG alone, how many times one run of the program
    executes each instrumentation site — as an {!interval}, because loop
    trip counts and indirect-call fan-in are not statically known. A
    site's {e checks} prediction is the execution interval of the block
    its check sequence starts in; {e crossings} sum the site's gate open
    and close runs. Blocks the model proves straight-line (loop depth 0,
    on no cycle, in a region entered a known number of times) get
    single-point intervals; {!validate} requires the {!Profiler}'s
    dynamic counts to land inside every interval and therefore to match
    those points exactly. *)

open X86sim

type interval = { lo : int; hi : int option }  (** [hi = None] is unbounded *)

val exactly : int -> interval
val add : interval -> interval -> interval
val mul : interval -> interval -> interval
val contains : interval -> int -> bool
val is_exact : interval -> bool
val pp_interval : Format.formatter -> interval -> unit

type site_cost = { site : Sitemap.site; checks : interval; crossings : interval }

type t = {
  per_site : site_cost list;  (** site-id order *)
  total_checks : interval;
  total_crossings : interval;
}

val predict : Program.t -> Sitemap.t -> t
(** The program must be the one the sitemap's rips refer to. *)

type site_validation = {
  v_site : Sitemap.site;
  pred_checks : interval;
  dyn_checks : int;
  pred_crossings : interval;
  dyn_crossings : int;
  within : bool;
  exact : bool;  (** both predictions were single points *)
}

type validation = {
  sites : site_validation list;
  ok : bool;  (** every dynamic count inside its interval *)
  n_exact : int;
  n_bounded : int;
  n_violated : int;
}

val validate : t -> Profiler.t -> validation
(** Compare against a stopped profiler from the same prepared program. *)

val pp : Format.formatter -> t -> unit
val to_json : t -> Ms_util.Json.t
val validation_to_json : validation -> Ms_util.Json.t
