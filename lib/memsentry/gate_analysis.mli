(** Gate-soundness static analysis of instrumented programs.

    A forward abstract interpretation over the {!Ir.Cfg} of an assembled
    program, with one abstract domain per isolation technique. Facts are
    joined across control-flow edges (a check in one block covers the
    blocks it dominates), replacing the older per-label state reset that
    rejected valid cross-block instrumentation.

    {b Address-based} policies (SFI / MPX / ISBoxing) track, per general
    register, whether it provably holds a pointer confined to the
    nonsensitive partition: a known constant below the split, the result
    of masking with a confining constant, or a pointer that survived a
    [bndcu] against a sound bound. Every matching data access must be
    confined (NaCl-style, paper §7).

    {b Domain-based} policies prove ERIM-style {e gate integrity}: the
    abstract gate state (the [pkru] value for MPK, the active EPT index
    for VMFUNC, the region's encryption state for crypt) must be {e
    closed} on every path reaching a [call]/[ret]/[syscall]/indirect
    branch, gates may not be double-opened, gate instructions must have
    statically-known operands, and any access with a provably sensitive
    effective address must execute under an open gate.

    Function bodies entered only through [call] (direct targets and
    address-taken labels) are verified under a havocked register state
    with a closed gate — the assume/guarantee counterpart of checking
    closure at every transfer. *)

open X86sim

type policy =
  | Sfi_policy
  | Mpx_policy
  | Isboxing_policy
  | Mpk_policy of Mpk.Pkey.protection
      (** closed state must disable the safe-region key per the
          protection level *)
  | Vmfunc_policy
  | Crypt_policy

val policy_name : policy -> string

type finding = { index : int; insn : string; reason : string }
(** [index] is an instruction index ({!analyze}) or an IR instruction id
    ({!lint_module}); [reason] starts with a stable kebab-case tag, e.g.
    ["open-gate-at-ret"] or ["double-open"]. *)

type stats = {
  blocks : int;  (** basic blocks in the CFG *)
  reachable_blocks : int;
  checked_accesses : int;  (** accesses proven confined / correctly gated *)
  proven_gates : int;  (** gate transitions with statically-known operands *)
  guarded_transfers : int;  (** control transfers proven to run gate-closed *)
}

type report = { violations : finding list; lints : finding list; stats : stats }

val max_stack_disp : int
(** rsp-relative displacements up to this bound count as spill traffic. *)

val analyze :
  ?split:int ->
  ?bnd0_upper:int ->
  ?kind:Instr.access_kind ->
  ?mpk_key:int ->
  policy:policy ->
  Program.t ->
  report
(** [split] defaults to {!X86sim.Layout.sensitive_base}; addresses at or
    above it are the safe partition. [bnd0_upper] is the bound the loader
    puts in bnd0 (default [split - 1]; must be [< split] for MPX —
    [Invalid_argument] otherwise). [kind] restricts which accesses the
    address-based policies must confine (default all). [mpk_key] is the
    protection key guarding the safe region (default 1, matching
    {!Instr_mpk.setup}).

    Violations are fatal soundness holes. Lints are non-fatal findings:
    unreachable (gate) code, gates held open across loop back-edges, and
    redundant re-encryption/re-decryption. *)

(** {2 Solver API for transformation passes}

    {!Memsentry.Gate_opt} reuses the verifier's own abstract domain, so
    anything it proves eliminable is by construction re-verifiable. The
    per-register domain is an interval ([Rrange] with inclusive bounds; a
    singleton is a known constant), with threshold widening at loop
    headers to keep fixpoints finite. *)

type rval = Rtop | Rrange of int * int

type st
(** Abstract machine state at one program point. *)

type solution
(** Solved fixpoint: per-block in-states plus the analysis context. *)

val solve_program :
  ?split:int ->
  ?bnd0_upper:int ->
  ?kind:Instr.access_kind ->
  ?mpk_key:int ->
  policy:policy ->
  Ir.Cfg.prog_cfg ->
  solution
(** Run the fixpoint only (no reporting pass); parameters as {!analyze}. *)

val block_in : solution -> int -> st option
(** In-state of a block ([None] = unreachable). For loop headers this is
    the widened state the fixpoint actually propagated. *)

val step_insn : solution -> int -> X86sim.Insn.t -> st -> st
(** Silent single-instruction transfer: [step_insn sol idx insn st]. *)

val reg_range : st -> int -> rval
val ea_range : st -> X86sim.Insn.mem -> rval
(** Interval of the full effective address [base + index*scale + disp]. *)

val within : rval -> lo:int -> hi:int -> bool
(** Provably inside the inclusive bounds ([Rtop] is never within). *)

val bnd0_valid : st -> bool
(** Does bnd0 still hold the loader's sound bound at this point? *)

val value_confined : solution -> rval -> bool
(** Provably inside [[0, split)]. *)

val access_below_split : solution -> st -> X86sim.Insn.mem -> bool
(** Can this operand provably never reach the safe partition? (Stack
    traffic, or EA upper bound below the split.) *)

val is_stack : X86sim.Insn.mem -> bool
val split_of : solution -> int
val bnd0_upper_of : solution -> int

val lint_module : Ir.Ir_types.modul -> finding list
(** IR-level instrumentation lints, keyed by instruction id: accesses the
    points-to analysis says may touch a sensitive global but that carry no
    [safe_access] annotation (they would fault under instrumentation), and
    annotated accesses points-to proves can never touch one (wasted
    gates); plus unreachable IR blocks. *)

val pp_report : Format.formatter -> report -> unit
