open Ms_util

type defense = {
  dname : string;
  protects_reads : bool;
  protects_writes : bool;
  probabilistic : bool;
  deterministic : bool;
  instrumentation : string;
}

let defenses =
  [
    { dname = "CCFIR"; protects_reads = true; protects_writes = false; probabilistic = true;
      deterministic = false; instrumentation = "Indirect branches" };
    { dname = "O-CFI"; protects_reads = true; protects_writes = false; probabilistic = true;
      deterministic = false; instrumentation = "Indirect branches" };
    { dname = "Shadow Stack"; protects_reads = false; protects_writes = true;
      probabilistic = true; deterministic = false; instrumentation = "call/ret" };
    { dname = "StackArmor"; protects_reads = true; protects_writes = true;
      probabilistic = true; deterministic = false; instrumentation = "call/ret" };
    { dname = "TASR"; protects_reads = true; protects_writes = false; probabilistic = true;
      deterministic = false; instrumentation = "System I/O" };
    { dname = "Isomeron"; protects_reads = true; protects_writes = false;
      probabilistic = true; deterministic = false; instrumentation = "Indirect branches" };
    { dname = "Oxymoron"; protects_reads = true; protects_writes = false;
      probabilistic = true; deterministic = false;
      instrumentation = "Code page across edges" };
    { dname = "CPI"; protects_reads = true; protects_writes = true; probabilistic = true;
      deterministic = true; instrumentation = "Memory accesses" };
    { dname = "CCFI"; protects_reads = false; protects_writes = true; probabilistic = false;
      deterministic = true; instrumentation = "Memory accesses" };
    { dname = "ASLR-Guard"; protects_reads = true; protects_writes = true;
      probabilistic = true; deterministic = false; instrumentation = "Memory accesses" };
    { dname = "DieHard"; protects_reads = false; protects_writes = true;
      probabilistic = true; deterministic = false; instrumentation = "malloc/free" };
    { dname = "Readactor"; protects_reads = true; protects_writes = false;
      probabilistic = false; deterministic = true; instrumentation = "Indirect branches" };
    { dname = "LR2"; protects_reads = true; protects_writes = false; probabilistic = false;
      deterministic = true; instrumentation = "Mem. accesses & ind. branches" };
  ]

type application_row = { isolation : string; points : string; application : string }

let applications =
  [
    { isolation = "Address-based"; points = "Loads"; application = "Code randomization" };
    { isolation = "Address-based"; points = "Loads"; application = "CFI variants" };
    { isolation = "Address-based"; points = "Stores"; application = "ShadowStack" };
    { isolation = "Address-based"; points = "Stores"; application = "CPI" };
    { isolation = "Address-based"; points = "Both + points-to info";
      application = "Program data" };
    { isolation = "Domain-based"; points = "call + ret"; application = "ShadowStack" };
    { isolation = "Domain-based"; points = "Indirect branches"; application = "CFI variants" };
    { isolation = "Domain-based"; points = "Indirect branches";
      application = "Layout randomization" };
    { isolation = "Domain-based"; points = "System calls";
      application = "Layout randomization" };
    { isolation = "Domain-based"; points = "Allocator calls"; application = "Heap" };
    { isolation = "Domain-based"; points = "Points-to info"; application = "Program data" };
  ]

let yn b = if b then "yes" else "-"

let table1 () =
  let t =
    Table_fmt.create
      ~align:[ Table_fmt.Left; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
               Table_fmt.Right; Table_fmt.Left ]
      [ "Defense"; "Vuln r"; "Vuln w"; "Prob."; "Det."; "Instrumentation points" ]
  in
  List.iter
    (fun d ->
      Table_fmt.add_row t
        [
          d.dname; yn d.protects_reads; yn d.protects_writes; yn d.probabilistic;
          yn d.deterministic; d.instrumentation;
        ])
    defenses;
  "Table 1: defense systems based on memory isolation\n" ^ Table_fmt.render t

let table2 () =
  let t =
    Table_fmt.create
      ~align:[ Table_fmt.Left; Table_fmt.Left; Table_fmt.Left ]
      [ "Isolation"; "Instrumentation points"; "Application" ]
  in
  List.iter (fun r -> Table_fmt.add_row t [ r.isolation; r.points; r.application ]) applications;
  "Table 2: applications of MemSentry\n" ^ Table_fmt.render t

let granularity_string = function
  | Technique.Byte -> "byte"
  | Technique.Chunk16 -> "128 bytes"
  | Technique.Page -> "page"
  | Technique.Any -> "(mask-dependent)"

let table3 () =
  let t =
    Table_fmt.create
      ~align:[ Table_fmt.Left; Table_fmt.Left; Table_fmt.Right; Table_fmt.Left ]
      [ "Technique"; "Class"; "Max domains"; "Granularity" ]
  in
  List.iter
    (fun tech ->
      let cls =
        match Technique.isolation_class tech with
        | Technique.Address_based -> "address"
        | Technique.Domain_based -> "domain"
      in
      let doms =
        match Technique.max_domains tech with Some n -> string_of_int n | None -> "infinite"
      in
      Table_fmt.add_row t
        [ Technique.name tech; cls; doms; granularity_string (Technique.granularity tech) ])
    (List.filter
       (fun x -> x <> Technique.Mprotect && x <> Technique.Isboxing)
       Technique.all);
  "Table 3: limitations of memory isolation techniques\n" ^ Table_fmt.render t

let site_table prof =
  let t =
    Table_fmt.create
      ~align:[ Table_fmt.Right; Table_fmt.Left; Table_fmt.Right; Table_fmt.Right;
               Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
               Table_fmt.Right; Table_fmt.Right ]
      [ "Site"; "Label"; "@rip"; "Crossings"; "Checks"; "Cycles"; "Cyc/event"; "TLB miss";
        "$ miss"; "Faults" ]
  in
  let cyc f = Printf.sprintf "%.0f" f in
  List.iter
    (fun (r : Profiler.row) ->
      let events = r.Profiler.crossings + r.Profiler.checks in
      Table_fmt.add_row t
        [
          string_of_int r.Profiler.site.Sitemap.id;
          r.Profiler.site.Sitemap.label;
          string_of_int r.Profiler.site.Sitemap.orig_rip;
          string_of_int r.Profiler.crossings;
          string_of_int r.Profiler.checks;
          cyc r.Profiler.cycles;
          (if events = 0 then "-" else cyc (r.Profiler.cycles /. float_of_int events));
          string_of_int r.Profiler.tlb_misses;
          string_of_int r.Profiler.cache_misses;
          string_of_int r.Profiler.faults;
        ])
    (Profiler.rows prof);
  let app = Profiler.residual prof in
  Table_fmt.add_row t
    [ "-"; "(app)"; "-"; "-"; "-"; cyc app.Profiler.r_cycles; "-";
      string_of_int app.Profiler.r_tlb_misses; string_of_int app.Profiler.r_cache_misses;
      string_of_int app.Profiler.r_faults ];
  Table_fmt.add_row t
    [
      ""; "total"; "";
      string_of_int (Profiler.total_crossings prof);
      string_of_int (Profiler.total_checks prof);
      cyc (Profiler.overhead_cycles prof);
      ""; ""; ""; "";
    ];
  Table_fmt.render t

let cpi_table (prof : Fastprof.t) =
  let open X86sim in
  let cls = Pipeline.cls_names in
  let nc = Array.length cls in
  let t =
    Table_fmt.create
      ~align:
        (Table_fmt.Left :: Table_fmt.Left
        :: List.init (nc + 1) (fun _ -> Table_fmt.Right))
      ("Row" :: "Technique" :: (Array.to_list cls @ [ "Total" ]))
  in
  let cyc f = Printf.sprintf "%.0f" f in
  let totals = Array.make nc 0.0 in
  List.iter
    (fun (r : Fastprof.row) ->
      Array.iteri (fun c w -> totals.(c) <- totals.(c) +. w) r.Fastprof.fp_classes;
      let name =
        if r.Fastprof.fp_rip < 0 then r.Fastprof.fp_label
        else Printf.sprintf "%s@%d" r.Fastprof.fp_label r.Fastprof.fp_rip
      in
      Table_fmt.add_row t
        (name :: r.Fastprof.fp_technique
        :: (List.map cyc (Array.to_list r.Fastprof.fp_classes)
           @ [ cyc (Fastprof.row_cycles r) ])))
    prof.Fastprof.p_rows;
  Table_fmt.add_row t
    ("total" :: ""
    :: (List.map cyc (Array.to_list totals)
       @ [ cyc (Array.fold_left ( +. ) 0.0 totals) ]));
  Table_fmt.render t

let hot_blocks_table ?(top = 10) (prof : Fastprof.t) =
  let open X86sim in
  let blocks =
    List.sort
      (fun (a : Ublock.stat) b -> compare b.Ublock.s_exec a.Ublock.s_exec)
      prof.Fastprof.p_blocks
  in
  let t =
    Table_fmt.create
      ~align:[ Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Right;
               Table_fmt.Right; Table_fmt.Left ]
      [ "Entry"; "Insns"; "Execs"; "Taken"; "Fall"; "Indirect (votes/total)" ]
  in
  List.iteri
    (fun i (s : Ublock.stat) ->
      if i < top then
        Table_fmt.add_row t
          [
            string_of_int s.Ublock.s_entry;
            string_of_int s.Ublock.s_insns;
            string_of_int s.Ublock.s_exec;
            string_of_int s.Ublock.s_taken;
            string_of_int s.Ublock.s_fall;
            (if s.Ublock.s_dyn_total = 0 then "-"
             else
               Printf.sprintf "-> %d (%d/%d)" s.Ublock.s_dyn_target s.Ublock.s_dyn_votes
                 s.Ublock.s_dyn_total);
          ])
    blocks;
  Table_fmt.render t

(* The block profile as CFG edges: every static exit contributes its
   exact count; indirect exits contribute the majority target (votes are
   a Boyer-Moore lower bound on its true count). *)
let edges_of (prof : Fastprof.t) =
  let open X86sim in
  List.concat_map
    (fun (s : Ublock.stat) ->
      let e kind dst count = if dst >= 0 && count > 0 then [ (s.Ublock.s_entry, dst, kind, count) ] else [] in
      e "taken" s.Ublock.s_taken_target s.Ublock.s_taken
      @ e "fall" s.Ublock.s_fall_target s.Ublock.s_fall
      @ e "indirect" s.Ublock.s_dyn_target s.Ublock.s_dyn_votes)
    prof.Fastprof.p_blocks

let hot_edges_table ?(top = 10) (prof : Fastprof.t) =
  let edges =
    List.sort (fun (_, _, _, a) (_, _, _, b) -> compare b a) (edges_of prof)
  in
  let t =
    Table_fmt.create
      ~align:[ Table_fmt.Right; Table_fmt.Right; Table_fmt.Left; Table_fmt.Right ]
      [ "From"; "To"; "Kind"; "Count" ]
  in
  List.iteri
    (fun i (src, dst, kind, count) ->
      if i < top then
        Table_fmt.add_row t
          [ string_of_int src; string_of_int dst; kind; string_of_int count ])
    edges;
  Table_fmt.render t

let trace_summary (prof : Fastprof.t) =
  let live = List.length prof.Fastprof.p_traces in
  let pct =
    if prof.Fastprof.p_insns = 0 then 0.0
    else 100.0 *. float_of_int prof.Fastprof.p_trace_covered /. float_of_int prof.Fastprof.p_insns
  in
  let hoisted =
    if prof.Fastprof.p_trace_hoisted = 0 then ""
    else Printf.sprintf "; %d check uops hoisted to prologues" prof.Fastprof.p_trace_hoisted
  in
  let optimized =
    if
      prof.Fastprof.p_trace_fused = 0 && prof.Fastprof.p_trace_slots = 0
      && prof.Fastprof.p_trace_dead_flags = 0
    then ""
    else
      Printf.sprintf "; optimizer: %d fused, %d slots (%d/%d hit), %d dead flags"
        prof.Fastprof.p_trace_fused prof.Fastprof.p_trace_slots prof.Fastprof.p_inline_hits
        (prof.Fastprof.p_inline_hits + prof.Fastprof.p_inline_misses)
        prof.Fastprof.p_trace_dead_flags
  in
  let aborts =
    let total =
      prof.Fastprof.p_abort_cold + prof.Fastprof.p_abort_indirect + prof.Fastprof.p_abort_cap
      + prof.Fastprof.p_abort_handler
    in
    if total = 0 then ""
    else
      Printf.sprintf "; chain ends: %d cold-branch, %d indirect-minority, %d cap, %d handler"
        prof.Fastprof.p_abort_cold prof.Fastprof.p_abort_indirect prof.Fastprof.p_abort_cap
        prof.Fastprof.p_abort_handler
  in
  Printf.sprintf
    "superblocks: %d formed (%d live, %d invalidated); %d of %d retired insns inside traces \
     (%.1f%% coverage)%s%s%s"
    prof.Fastprof.p_traces_formed live prof.Fastprof.p_traces_invalidated
    prof.Fastprof.p_trace_covered prof.Fastprof.p_insns pct hoisted optimized aborts

let trace_table ?(top = 10) (prof : Fastprof.t) =
  let open X86sim in
  let traces =
    List.sort
      (fun (a : Trace.stat) b -> compare b.Trace.t_cycles a.Trace.t_cycles)
      prof.Fastprof.p_traces
  in
  let t =
    Table_fmt.create
      ~align:[ Table_fmt.Right; Table_fmt.Left; Table_fmt.Right; Table_fmt.Right;
               Table_fmt.Right; Table_fmt.Right; Table_fmt.Right; Table_fmt.Left ]
      [ "Entry"; "Blocks"; "Insns"; "Execs"; "Side exits"; "Cycles"; "Hoisted"; "Loop" ]
  in
  List.iteri
    (fun i (s : Trace.stat) ->
      if i < top then
        Table_fmt.add_row t
          [
            string_of_int s.Trace.t_entry;
            String.concat "," (List.map string_of_int s.Trace.t_blocks);
            string_of_int s.Trace.t_insns;
            string_of_int s.Trace.t_execs;
            string_of_int s.Trace.t_side_exits;
            Printf.sprintf "%.0f" s.Trace.t_cycles;
            string_of_int s.Trace.t_hoisted;
            (if s.Trace.t_loops then "yes" else "-");
          ])
    traces;
  Table_fmt.render t

let print_all () =
  print_string (table1 ());
  print_newline ();
  print_string (table2 ());
  print_newline ();
  print_string (table3 ())
