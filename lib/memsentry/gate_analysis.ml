open X86sim

type policy =
  | Sfi_policy
  | Mpx_policy
  | Isboxing_policy
  | Mpk_policy of Mpk.Pkey.protection
  | Vmfunc_policy
  | Crypt_policy

let policy_name = function
  | Sfi_policy -> "sfi"
  | Mpx_policy -> "mpx"
  | Isboxing_policy -> "isboxing"
  | Mpk_policy _ -> "mpk"
  | Vmfunc_policy -> "vmfunc"
  | Crypt_policy -> "crypt"

type finding = { index : int; insn : string; reason : string }

type stats = {
  blocks : int;
  reachable_blocks : int;
  checked_accesses : int;
  proven_gates : int;
  guarded_transfers : int;
}

type report = { violations : finding list; lints : finding list; stats : stats }

let max_stack_disp = 4096

(* --- abstract state ---------------------------------------------------- *)

(* Per-register value: an inclusive interval (a singleton is a known
   constant) or anything. Bounds are clamped to +-2^56 so effective-address
   arithmetic (base + index*scale + disp, scale <= 8) cannot overflow
   OCaml's 63-bit ints; anything wider degrades to Rtop. *)
type rval = Rtop | Rrange of int * int

let clamp_hi = 1 lsl 56
let clamp_lo = -clamp_hi
let norm lo hi = if lo < clamp_lo || hi > clamp_hi then Rtop else Rrange (lo, hi)
let rconst c = norm c c
let rsingle = function Rrange (l, h) when l = h -> Some l | _ -> None

(* a [<=] b in the interval order. *)
let rle a b =
  match (a, b) with
  | _, Rtop -> true
  | Rtop, _ -> false
  | Rrange (l1, h1), Rrange (l2, h2) -> l1 >= l2 && h1 <= h2

let within r ~lo ~hi = match r with Rrange (l, h) -> l >= lo && h <= hi | Rtop -> false

(* Gate state: the pkru value (MPK), the active EPT index (VMFUNC), or the
   region's decryption state, 0 = encrypted/closed, 1 = plaintext/open
   (crypt). *)
type gval = Gconst of int | Gtop

type st = { regs : rval array; bnd0 : bool; gate : gval }

type ctx = {
  policy : policy;
  split : int;
  bnd0_upper : int;
  kind : Instr.access_kind;
  mpk_key : int;
}

let confines ctx imm = imm >= 0 && imm < ctx.split
let confined ctx r = within r ~lo:0 ~hi:(ctx.split - 1)

let join_rval a b =
  match (a, b) with
  | Rtop, _ | _, Rtop -> Rtop
  | Rrange (l1, h1), Rrange (l2, h2) -> Rrange (min l1 l2, max h1 h2)

let join_gval a b = match (a, b) with Gconst x, Gconst y when x = y -> a | _ -> Gtop

let join _ctx a b =
  {
    regs = Array.init Reg.gpr_count (fun i -> join_rval a.regs.(i) b.regs.(i));
    bnd0 = a.bnd0 && b.bnd0;
    gate = join_gval a.gate b.gate;
  }

let equal_st a b =
  a.bnd0 = b.bnd0 && a.gate = b.gate
  && Array.for_all2 (fun x y -> x = y) a.regs b.regs

(* Threshold widening: the interval lattice has infinite ascending chains,
   so loop-header in-states are widened through the few bounds the
   analysis actually cares about (the MPX bound, the split, the 32-bit
   ceiling) before giving up to the clamp. Applied only at loop headers
   (see [solve_pcfg]); plain joins elsewhere keep full precision at
   diamonds. *)
let widen_rval ctx old nw =
  if rle nw old then old
  else
    match (old, nw) with
    | Rtop, _ | _, Rtop -> Rtop
    | Rrange (ol, oh), Rrange (nl, nh) ->
      let hi =
        if nh <= oh then oh
        else
          let ths =
            List.sort compare [ 0; ctx.bnd0_upper; ctx.split - 1; 0xFFFF_FFFF; clamp_hi ]
          in
          (match List.find_opt (fun t -> t >= nh) ths with
          | Some t -> t
          | None -> clamp_hi + 1 (* -> Rtop via norm *))
      in
      let lo = if nl >= ol then ol else if nl >= 0 then 0 else clamp_lo in
      norm lo hi

let widen_st ctx old nw =
  {
    regs = Array.init Reg.gpr_count (fun i -> widen_rval ctx old.regs.(i) nw.regs.(i));
    bnd0 = old.bnd0 && nw.bnd0;
    gate = join_gval old.gate nw.gate;
  }

let address_based = function
  | Sfi_policy | Mpx_policy | Isboxing_policy -> true
  | Mpk_policy _ | Vmfunc_policy | Crypt_policy -> false

(* The closed gate value the loader establishes (and calls restore to). *)
let closed_entry ctx =
  match ctx.policy with
  | Mpk_policy protection -> Gconst (Mpk.Pkey.pkru_close ~key:ctx.mpk_key ~protection)
  | Vmfunc_policy -> Gconst Vmx.Sandbox.nonsensitive_ept
  | Crypt_policy -> Gconst 0
  | Sfi_policy | Mpx_policy | Isboxing_policy -> Gtop

let entry_state ctx =
  { regs = Array.make Reg.gpr_count Rtop; bnd0 = true; gate = closed_entry ctx }

(* Does pkru value [v] keep the safe region protected per the configured
   level? (AD disables everything; for integrity-only, WD suffices.) *)
let pkru_protects ~key ~protection v =
  let ad = v land (1 lsl (2 * key)) <> 0 in
  let wd = v land (1 lsl ((2 * key) + 1)) <> 0 in
  match protection with
  | Mpk.Pkey.No_access -> ad
  | Mpk.Pkey.Read_only -> ad || wd
  | Mpk.Pkey.Read_write -> true

let gate_closed ctx = function
  | Gtop -> false
  | Gconst v -> (
    match ctx.policy with
    | Mpk_policy protection -> pkru_protects ~key:ctx.mpk_key ~protection v
    | Vmfunc_policy -> v = Vmx.Sandbox.nonsensitive_ept
    | Crypt_policy -> v = 0
    | Sfi_policy | Mpx_policy | Isboxing_policy -> true)

(* Provably-open relative to the configured protection level: used for
   double-open detection (never fires on Gtop — the unknown state was
   already reported where it arose). *)
let gate_open ctx = function
  | Gtop -> false
  | Gconst v -> (
    match ctx.policy with
    | Mpk_policy protection -> not (pkru_protects ~key:ctx.mpk_key ~protection v)
    | Vmfunc_policy -> v = Vmx.Sandbox.sensitive_ept
    | Crypt_policy -> v = 1
    | Sfi_policy | Mpx_policy | Isboxing_policy -> false)

(* --- memory-operand helpers ------------------------------------------- *)

let is_stack (m : Insn.mem) =
  m.Insn.base = Reg.rsp && m.Insn.index < 0 && m.Insn.disp >= 0
  && m.Insn.disp <= max_stack_disp

(* Exact effective address, when statically known. Deliberately kept to
   the base-register-singleton shape (no index) so the domain-based
   sensitivity surface is unchanged from the original verifier. *)
let addr_const st (m : Insn.mem) =
  if m.Insn.index >= 0 then None
  else if m.Insn.base < 0 then Some m.Insn.disp
  else
    match rsingle st.regs.(m.Insn.base) with
    | Some c -> Some (c + m.Insn.disp)
    | None -> None

(* Interval of the full effective address base + index*scale + disp. *)
let ea_range st (m : Insn.mem) =
  let base = if m.Insn.base < 0 then Rrange (0, 0) else st.regs.(m.Insn.base) in
  let idx =
    if m.Insn.index < 0 then Rrange (0, 0)
    else
      match st.regs.(m.Insn.index) with
      | Rtop -> Rtop
      | Rrange (l, h) ->
        let s = max m.Insn.scale 1 in
        Rrange (l * s, h * s)
  in
  match (base, idx) with
  | Rtop, _ | _, Rtop -> Rtop
  | Rrange (bl, bh), Rrange (il, ih) -> norm (bl + il + m.Insn.disp) (bh + ih + m.Insn.disp)

let reg_range st r = st.regs.(r)
let bnd0_valid st = st.bnd0

(* The address-based acceptance rule: stack traffic, or an effective
   address whose full interval provably stays inside the nonsensitive
   partition. This subsumes the original linear verifier's rules (confined
   register with no displacement, confined absolute address) and adds what
   the interval domain can now prove about compound operands. *)
let access_ok ctx st (m : Insn.mem) = is_stack m || confined ctx (ea_range st m)

let kind_matches ctx insn =
  match ctx.kind with
  | Instr.Reads -> Insn.is_mem_read insn
  | Instr.Writes -> Insn.is_mem_write insn
  | Instr.Reads_and_writes -> true

(* --- counters collected during the reporting pass ---------------------- *)

type acc = {
  mutable checked : int;
  mutable gates : int;
  mutable transfers : int;
  mutable viol : finding list;
  mutable lint : finding list;
}

let silent () = { checked = 0; gates = 0; transfers = 0; viol = []; lint = [] }

(* --- the per-instruction transfer + check ------------------------------ *)

(* [step] is used twice: silently during the fixpoint, and with a live
   [acc] during the reporting pass over the solved in-states. *)
let step ctx ~live acc idx insn st =
  let flag reason =
    if live then acc.viol <- { index = idx; insn = Insn.to_string_named insn; reason } :: acc.viol
  in
  let lint reason =
    if live then acc.lint <- { index = idx; insn = Insn.to_string_named insn; reason } :: acc.lint
  in
  let count f = if live then f () in
  (* 1. Check the access against the state before the instruction's own
     register effects. *)
  let is_write = function
    | Insn.Store _ | Insn.Store_i _ | Insn.Movdqa_store _ | Insn.Bndmov_store _ -> true
    | _ -> false
  in
  let is_vector = function
    | Insn.Movdqa_load _ | Insn.Movdqa_store _ | Insn.Bndmov_load _ | Insn.Bndmov_store _ ->
      true
    | _ -> false
  in
  let check_access m =
    if address_based ctx.policy then begin
      if kind_matches ctx insn then
        if access_ok ctx st m then begin
          if not (is_stack m) then count (fun () -> acc.checked <- acc.checked + 1)
        end
        else flag "unverified-access: memory access through an unverified pointer"
    end
    else
      (* Domain-based: only accesses with a provably sensitive effective
         address are constrained — they need an open gate. The crypt
         gate's own 16-byte AES traffic is exempt (it is the gate). *)
      match addr_const st m with
      | Some a when a >= ctx.split && not (is_stack m) -> (
        match ctx.policy with
        | Crypt_policy ->
          if not (is_vector insn) then
            if st.gate = Gconst 1 then count (fun () -> acc.checked <- acc.checked + 1)
            else flag "closed-gate-access: safe-region access while the region is encrypted"
        | Mpk_policy _ -> (
          match st.gate with
          | Gconst v ->
            let ad = v land (1 lsl (2 * ctx.mpk_key)) <> 0 in
            let wd = v land (1 lsl ((2 * ctx.mpk_key) + 1)) <> 0 in
            if ad || (is_write insn && wd) then
              flag "closed-gate-access: safe-region access with the pkru gate closed"
            else count (fun () -> acc.checked <- acc.checked + 1)
          | Gtop -> flag "closed-gate-access: safe-region access with unproven pkru state")
        | Vmfunc_policy ->
          if st.gate = Gconst Vmx.Sandbox.sensitive_ept then
            count (fun () -> acc.checked <- acc.checked + 1)
          else flag "closed-gate-access: safe-region access outside the sensitive EPT"
        | Sfi_policy | Mpx_policy | Isboxing_policy -> ())
      | _ -> ()
  in
  (match insn with
  | Insn.Load (_, m)
  | Insn.Store (m, _)
  | Insn.Store_i (m, _)
  | Insn.Movdqa_load (_, m)
  | Insn.Movdqa_store (m, _)
  | Insn.Bndmov_store (m, _)
  | Insn.Bndmov_load (_, m) -> check_access m
  | _ -> ());
  (* A control transfer may not leave the gate open (ERIM's rule). *)
  let check_transfer what =
    if not (address_based ctx.policy) then
      if gate_closed ctx st.gate then count (fun () -> acc.transfers <- acc.transfers + 1)
      else flag (Printf.sprintf "open-gate-at-%s: gate not closed on a path reaching %s" what what)
  in
  (* 2. Transfer. *)
  let pre = st in
  let st = { st with regs = Array.copy st.regs } in
  let set r v = if r >= 0 then st.regs.(r) <- v in
  let havoc_all () = Array.fill st.regs 0 Reg.gpr_count Rtop in
  (* Masking with a nonnegative constant yields [0, mask]; an all-ones
     mask over an input already inside it is the identity. *)
  let masked d mask =
    if mask < 0 then Rtop
    else
      let all_ones = mask land (mask + 1) = 0 in
      match pre.regs.(d) with
      | Rrange (l, h) when all_ones && l >= 0 && h <= mask -> pre.regs.(d)
      | _ -> Rrange (0, mask)
  in
  (* A check applied to a value the dominating state already confines is
     dead work — the optimizer's target, surfaced as a lint. *)
  let redundant_check_lint what =
    if address_based ctx.policy then
      lint
        (Printf.sprintf
           "dominated-redundant-check: %s applied to an already-confined value" what)
  in
  match insn with
  | Insn.Mov_ri (d, imm) ->
    set d (rconst imm);
    st
  | Insn.Mov_rr (d, s) ->
    set d pre.regs.(s);
    st
  | Insn.Lea (d, m) ->
    set d (ea_range pre m);
    st
  | Insn.Lea32 (d, m) ->
    (* The hardware truncates the EA to 32 bits — below any realistic
       split regardless of inputs. *)
    let ea = ea_range pre m in
    set d (if within ea ~lo:0 ~hi:0xFFFF_FFFF then ea else Rrange (0, 0xFFFF_FFFF));
    st
  | Insn.Load (d, _) | Insn.Pop d | Insn.Movq_rx (d, _) | Insn.Mov_label (d, _) ->
    set d Rtop;
    st
  | Insn.Rdpkru ->
    set Reg.rax Rtop;
    st
  | Insn.Alu_rr (Insn.And, d, s) ->
    (match rsingle pre.regs.(s) with
    | Some m ->
      if confines ctx m && confined ctx pre.regs.(d) then
        redundant_check_lint "and-mask";
      set d (masked d m)
    | None -> set d Rtop);
    st
  | Insn.Alu_ri (Insn.And, d, imm) ->
    if confines ctx imm && confined ctx pre.regs.(d) then redundant_check_lint "and-mask";
    set d (masked d imm);
    st
  | Insn.Alu_ri (Insn.Add, d, imm) ->
    set d (match pre.regs.(d) with Rtop -> Rtop | Rrange (l, h) -> norm (l + imm) (h + imm));
    st
  | Insn.Alu_ri (Insn.Sub, d, imm) ->
    set d (match pre.regs.(d) with Rtop -> Rtop | Rrange (l, h) -> norm (l - imm) (h - imm));
    st
  | Insn.Alu_rr (Insn.Add, d, s) ->
    set d
      (match (pre.regs.(d), pre.regs.(s)) with
      | Rrange (l1, h1), Rrange (l2, h2) -> norm (l1 + l2) (h1 + h2)
      | _ -> Rtop);
    st
  | Insn.Alu_rr (Insn.Sub, d, s) ->
    set d
      (match (pre.regs.(d), pre.regs.(s)) with
      | Rrange (l1, h1), Rrange (l2, h2) -> norm (l1 - h2) (h1 - l2)
      | _ -> Rtop);
    st
  | Insn.Alu_rr (_, d, _) | Insn.Alu_ri (_, d, _) ->
    set d Rtop;
    st
  | Insn.Bndcu (0, r) ->
    (* A survived bndcu proves r <= bnd0_upper — if bnd0 still holds the
       loader's bound. (As in the original verifier, the lower bound 0 is
       an audit assumption: the hardware check is upper-only.) *)
    if ctx.policy = Mpx_policy && st.bnd0 then begin
      if confined ctx pre.regs.(r) then redundant_check_lint "bndcu";
      set r
        (match pre.regs.(r) with
        | Rrange (l, h) when l >= 0 -> Rrange (l, min h ctx.bnd0_upper)
        | _ -> Rrange (0, ctx.bnd0_upper))
    end;
    st
  | Insn.Bndcu _ | Insn.Bndcl _ -> st
  | Insn.Bnd_set (b, _, hi) -> if b = 0 then { st with bnd0 = hi <= ctx.bnd0_upper } else st
  | Insn.Bndmov_load (b, _) -> if b = 0 then { st with bnd0 = false } else st
  | Insn.Bndmov_store _ -> st
  | Insn.Wrpkru -> (
    match ctx.policy with
    | Mpk_policy protection -> (
      (match (rsingle st.regs.(Reg.rcx), rsingle st.regs.(Reg.rdx)) with
      | Some 0, Some 0 -> ()
      | _ -> flag "unproven-wrpkru: rcx and rdx are not provably zero");
      match rsingle st.regs.(Reg.rax) with
      | Some v ->
        let opening = not (pkru_protects ~key:ctx.mpk_key ~protection v) in
        if opening && gate_open ctx st.gate then
          flag "double-open: wrpkru opens an already-open gate";
        count (fun () -> acc.gates <- acc.gates + 1);
        { st with gate = Gconst v }
      | None ->
        flag "unproven-wrpkru: eax value not statically known";
        { st with gate = Gtop })
    | _ -> st)
  | Insn.Vmfunc -> (
    match ctx.policy with
    | Vmfunc_policy -> (
      (match rsingle st.regs.(Reg.rax) with
      | Some 0 -> ()
      | _ -> flag "unproven-vmfunc: eax is not provably 0");
      match rsingle st.regs.(Reg.rcx) with
      | Some idx ->
        if idx = Vmx.Sandbox.sensitive_ept && gate_open ctx st.gate then
          flag "double-open: vmfunc switches to the sensitive EPT twice";
        count (fun () -> acc.gates <- acc.gates + 1);
        { st with gate = Gconst idx }
      | None ->
        flag "unproven-vmfunc: ecx EPT index not statically known";
        { st with gate = Gtop })
    | _ -> st)
  | Insn.Aesdeclast _ when ctx.policy = Crypt_policy ->
    if st.gate = Gconst 1 then lint "re-decrypt: aesdeclast while the region is already plaintext"
    else count (fun () -> acc.gates <- acc.gates + 1);
    { st with gate = Gconst 1 }
  | Insn.Aesenclast _ when ctx.policy = Crypt_policy ->
    if gate_open ctx st.gate then count (fun () -> acc.gates <- acc.gates + 1);
    { st with gate = Gconst 0 }
  | Insn.Syscall ->
    check_transfer "syscall";
    (* Kernel may write rax; it preserves pkru/EPT state. *)
    set Reg.rax Rtop;
    st
  | Insn.Call _ | Insn.Call_r _ | Insn.Vmcall ->
    check_transfer (match insn with Insn.Vmcall -> "vmcall" | _ -> "call");
    (* Callee is a black box for register facts; verified callees restore
       a closed gate before returning (checked at their rets). *)
    havoc_all ();
    { st with gate = closed_entry ctx }
  | Insn.Ret ->
    check_transfer "ret";
    st
  | Insn.Jmp_r _ ->
    check_transfer "indirect-jump";
    st
  | Insn.Jmp _ | Insn.Jcc _ -> st
  | Insn.Cpuid ->
    havoc_all ();
    st
  | Insn.Store _ | Insn.Store_i _ | Insn.Push _ | Insn.Movdqa_load _ | Insn.Movdqa_store _
  | Insn.Movq_xr _ | Insn.Pxor _ | Insn.Aesenc _ | Insn.Aesenclast _ | Insn.Aesdec _
  | Insn.Aesdeclast _ | Insn.Aeskeygenassist _ | Insn.Aesimc _ | Insn.Vext_high _
  | Insn.Vins_high _ | Insn.Fp_arith _ | Insn.Nop | Insn.Halt | Insn.Mfence | Insn.Cmp_rr _
  | Insn.Cmp_ri _ | Insn.Test_rr _ -> st

let is_gate_insn = function
  | Insn.Wrpkru | Insn.Vmfunc | Insn.Bndcu _ | Insn.Bndcl _ | Insn.Aesenclast _
  | Insn.Aesdeclast _ -> true
  | Insn.Alu_ri (Insn.And, _, _) | Insn.Alu_rr (Insn.And, _, _) -> true
  | _ -> false

(* --- the analysis ------------------------------------------------------ *)

type solution = { ctx : ctx; pcfg : Ir.Cfg.prog_cfg; states : st option array }

let make_ctx ?split ?bnd0_upper ?(kind = Instr.Reads_and_writes) ?(mpk_key = 1) ~policy () =
  let split = Option.value split ~default:Layout.sensitive_base in
  let bnd0_upper = Option.value bnd0_upper ~default:(split - 1) in
  if policy = Mpx_policy && bnd0_upper >= split then
    invalid_arg "Gate_analysis: bnd0 bound does not confine to the split";
  { policy; split; bnd0_upper; kind; mpk_key }

let block_step ctx pcfg ~live acc b st =
  List.fold_left (fun st (idx, insn) -> step ctx ~live acc idx insn st) st
    (Ir.Cfg.insns_of pcfg b)

(* Fixpoint over the program CFG. Loop headers get threshold widening:
   the solver's generic worklist knows nothing about intervals, so the
   transfer function widens its own input against the last widened state
   it saw for that header, which bounds every ascending chain. The final
   in-state stored for a header is the widened one, keeping the reporting
   pass consistent with what the fixpoint actually propagated. *)
let solve_pcfg ctx pcfg =
  let g = pcfg.Ir.Cfg.graph in
  let headers = Hashtbl.create 8 in
  List.iter (fun (_, v) -> Hashtbl.replace headers v ()) (Ir.Cfg.back_edges g);
  let wcache = Hashtbl.create 8 in
  let widen_at b st =
    if not (Hashtbl.mem headers b) then st
    else
      match Hashtbl.find_opt wcache b with
      | None ->
        Hashtbl.replace wcache b st;
        st
      | Some prev ->
        let w = widen_st ctx prev st in
        Hashtbl.replace wcache b w;
        w
  in
  let mute = silent () in
  let ins =
    Ir.Cfg.solve g ~entry_state:(entry_state ctx) ~join:(join ctx) ~equal:equal_st
      ~transfer:(fun b st -> block_step ctx pcfg ~live:false mute b (widen_at b st))
  in
  let states =
    Array.mapi
      (fun b s ->
        match s with
        | None -> None
        | Some st -> (
          match Hashtbl.find_opt wcache b with Some w -> Some w | None -> Some st))
      ins
  in
  { ctx; pcfg; states }

let solve_program ?split ?bnd0_upper ?kind ?mpk_key ~policy pcfg =
  solve_pcfg (make_ctx ?split ?bnd0_upper ?kind ?mpk_key ~policy ()) pcfg

let block_in sol b = sol.states.(b)
let step_insn sol idx insn st = step sol.ctx ~live:false (silent ()) idx insn st
let split_of sol = sol.ctx.split
let bnd0_upper_of sol = sol.ctx.bnd0_upper
let value_confined sol r = confined sol.ctx r

let access_below_split sol st (m : Insn.mem) =
  is_stack m
  || match ea_range st m with Rrange (_, h) -> h < sol.ctx.split | Rtop -> false

let report_of_solution sol =
  let ctx = sol.ctx and pcfg = sol.pcfg in
  let prog = pcfg.Ir.Cfg.prog in
  let g = pcfg.Ir.Cfg.graph in
  let nblocks = g.Ir.Cfg.nnodes in
  let acc = silent () in
  let outs = Array.make nblocks None in
  let reachable_blocks = ref 0 in
  Array.iteri
    (fun b in_st ->
      match in_st with
      | Some st ->
        incr reachable_blocks;
        outs.(b) <- Some (block_step ctx pcfg ~live:true acc b st)
      | None ->
        let span = pcfg.Ir.Cfg.spans.(b) in
        let code = Program.code prog in
        let has_gate = ref false in
        for i = span.Ir.Cfg.first to span.Ir.Cfg.last do
          if is_gate_insn code.(i) then has_gate := true
        done;
        acc.lint <-
          {
            index = span.Ir.Cfg.first;
            insn = Insn.to_string_named code.(span.Ir.Cfg.first);
            reason =
              (if !has_gate then
                 "unreachable-gate-code: block containing gate/check instructions is unreachable"
               else "unreachable-code: block is unreachable from any entry point");
          }
          :: acc.lint)
    sol.states;
  (* Gates straddling loop back-edges. *)
  if not (address_based ctx.policy) then
    List.iter
      (fun (u, _) ->
        match outs.(u) with
        | Some out when gate_open ctx out.gate ->
          let span = pcfg.Ir.Cfg.spans.(u) in
          acc.lint <-
            {
              index = span.Ir.Cfg.last;
              insn = Insn.to_string_named (Program.code prog).(span.Ir.Cfg.last);
              reason = "gate-across-back-edge: gate held open across a loop back-edge";
            }
            :: acc.lint
        | _ -> ())
      (Ir.Cfg.back_edges g);
  {
    violations = List.rev acc.viol;
    lints = List.rev acc.lint;
    stats =
      {
        blocks = nblocks;
        reachable_blocks = !reachable_blocks;
        checked_accesses = acc.checked;
        proven_gates = acc.gates;
        guarded_transfers = acc.transfers;
      };
  }

let analyze ?split ?bnd0_upper ?kind ?mpk_key ~policy prog =
  let ctx = make_ctx ?split ?bnd0_upper ?kind ?mpk_key ~policy () in
  report_of_solution (solve_pcfg ctx (Ir.Cfg.of_program prog))

(* --- IR-level instrumentation lints ------------------------------------ *)

let lint_module (m : Ir.Ir_types.modul) =
  let open Ir.Ir_types in
  let pt = Ir.Pointsto.analyze m in
  let sensitive = List.filter_map (fun g -> if g.sensitive then Some g.gname else None) m.globals in
  let findings = ref [] in
  let add id instr reason =
    findings := { index = id; insn = Ir.Printer.instr_to_string instr; reason } :: !findings
  in
  iter_instrs m (fun _ _ instr ->
      match instr.kind with
      | Load _ | Store _ ->
        let may = List.exists (fun g -> Ir.Pointsto.may_touch pt instr.id g) sensitive in
        if may && not instr.safe_access then
          add instr.id instr
            "unannotated-sensitive-access: points-to says this access may touch a safe region \
             but it carries no safe_access annotation"
        else if (not may) && instr.safe_access then
          add instr.id instr
            "redundant-annotation: access marked safe_access but points-to proves it cannot \
             touch a sensitive global"
      | _ -> ());
  (* Unreachable IR blocks never get their instrumentation exercised. *)
  List.iter
    (fun f ->
      let fcfg = Ir.Cfg.of_func f in
      let live = Ir.Cfg.reachable fcfg.Ir.Cfg.fgraph in
      Array.iteri
        (fun i b ->
          if not live.(i) then
            match b.instrs with
            | instr :: _ ->
              add instr.id instr
                (Printf.sprintf
                   "unreachable-code: block %S of %S is unreachable from the function entry"
                   b.blabel f.fname)
            | [] -> ())
        fcfg.Ir.Cfg.fblocks)
    m.funcs;
  List.rev !findings

let pp_report fmt r =
  let s = r.stats in
  Format.fprintf fmt "%d/%d blocks reachable; %d accesses checked, %d gates proven, %d transfers guarded@."
    s.reachable_blocks s.blocks s.checked_accesses s.proven_gates s.guarded_transfers;
  (match r.violations with
  | [] -> Format.fprintf fmt "no violations@."
  | vs ->
    Format.fprintf fmt "%d violation(s):@." (List.length vs);
    List.iter (fun v -> Format.fprintf fmt "  @%d  %s  (%s)@." v.index v.insn v.reason) vs);
  match r.lints with
  | [] -> ()
  | ls ->
    Format.fprintf fmt "%d lint(s):@." (List.length ls);
    List.iter (fun v -> Format.fprintf fmt "  @%d  %s  (%s)@." v.index v.insn v.reason) ls
