open X86sim

type policy =
  | Sfi_policy
  | Mpx_policy
  | Isboxing_policy
  | Mpk_policy of Mpk.Pkey.protection
  | Vmfunc_policy
  | Crypt_policy

let policy_name = function
  | Sfi_policy -> "sfi"
  | Mpx_policy -> "mpx"
  | Isboxing_policy -> "isboxing"
  | Mpk_policy _ -> "mpk"
  | Vmfunc_policy -> "vmfunc"
  | Crypt_policy -> "crypt"

type finding = { index : int; insn : string; reason : string }

type stats = {
  blocks : int;
  reachable_blocks : int;
  checked_accesses : int;
  proven_gates : int;
  guarded_transfers : int;
}

type report = { violations : finding list; lints : finding list; stats : stats }

let max_stack_disp = 4096

(* --- abstract state ---------------------------------------------------- *)

(* Per-register value: a known constant, an unknown-but-confined pointer
   (below the split), or anything. *)
type rval = Rtop | Rconst of int | Rconfined

(* Gate state: the pkru value (MPK), the active EPT index (VMFUNC), or the
   region's decryption state, 0 = encrypted/closed, 1 = plaintext/open
   (crypt). *)
type gval = Gconst of int | Gtop

type st = { regs : rval array; bnd0 : bool; gate : gval }

type ctx = {
  policy : policy;
  split : int;
  bnd0_upper : int;
  kind : Instr.access_kind;
  mpk_key : int;
}

let confines ctx imm = imm >= 0 && imm < ctx.split

let confined ctx = function
  | Rconst c -> confines ctx c
  | Rconfined -> true
  | Rtop -> false

let join_rval ctx a b =
  match (a, b) with
  | Rtop, _ | _, Rtop -> Rtop
  | Rconst x, Rconst y when x = y -> a
  | _ -> if confined ctx a && confined ctx b then Rconfined else Rtop

let join_gval a b = match (a, b) with Gconst x, Gconst y when x = y -> a | _ -> Gtop

let join ctx a b =
  {
    regs = Array.init Reg.gpr_count (fun i -> join_rval ctx a.regs.(i) b.regs.(i));
    bnd0 = a.bnd0 && b.bnd0;
    gate = join_gval a.gate b.gate;
  }

let equal_st a b =
  a.bnd0 = b.bnd0 && a.gate = b.gate
  && Array.for_all2 (fun x y -> x = y) a.regs b.regs

let address_based = function
  | Sfi_policy | Mpx_policy | Isboxing_policy -> true
  | Mpk_policy _ | Vmfunc_policy | Crypt_policy -> false

(* The closed gate value the loader establishes (and calls restore to). *)
let closed_entry ctx =
  match ctx.policy with
  | Mpk_policy protection -> Gconst (Mpk.Pkey.pkru_close ~key:ctx.mpk_key ~protection)
  | Vmfunc_policy -> Gconst Vmx.Sandbox.nonsensitive_ept
  | Crypt_policy -> Gconst 0
  | Sfi_policy | Mpx_policy | Isboxing_policy -> Gtop

let entry_state ctx =
  { regs = Array.make Reg.gpr_count Rtop; bnd0 = true; gate = closed_entry ctx }

(* Does pkru value [v] keep the safe region protected per the configured
   level? (AD disables everything; for integrity-only, WD suffices.) *)
let pkru_protects ~key ~protection v =
  let ad = v land (1 lsl (2 * key)) <> 0 in
  let wd = v land (1 lsl ((2 * key) + 1)) <> 0 in
  match protection with
  | Mpk.Pkey.No_access -> ad
  | Mpk.Pkey.Read_only -> ad || wd
  | Mpk.Pkey.Read_write -> true

let gate_closed ctx = function
  | Gtop -> false
  | Gconst v -> (
    match ctx.policy with
    | Mpk_policy protection -> pkru_protects ~key:ctx.mpk_key ~protection v
    | Vmfunc_policy -> v = Vmx.Sandbox.nonsensitive_ept
    | Crypt_policy -> v = 0
    | Sfi_policy | Mpx_policy | Isboxing_policy -> true)

(* Provably-open relative to the configured protection level: used for
   double-open detection (never fires on Gtop — the unknown state was
   already reported where it arose). *)
let gate_open ctx = function
  | Gtop -> false
  | Gconst v -> (
    match ctx.policy with
    | Mpk_policy protection -> not (pkru_protects ~key:ctx.mpk_key ~protection v)
    | Vmfunc_policy -> v = Vmx.Sandbox.sensitive_ept
    | Crypt_policy -> v = 1
    | Sfi_policy | Mpx_policy | Isboxing_policy -> false)

(* --- memory-operand helpers ------------------------------------------- *)

let is_stack (m : Insn.mem) =
  m.Insn.base = Reg.rsp && m.Insn.index < 0 && m.Insn.disp >= 0
  && m.Insn.disp <= max_stack_disp

(* Exact effective address, when statically known. *)
let addr_const st (m : Insn.mem) =
  if m.Insn.index >= 0 then None
  else if m.Insn.base < 0 then Some m.Insn.disp
  else
    match st.regs.(m.Insn.base) with
    | Rconst c -> Some (c + m.Insn.disp)
    | Rconfined | Rtop -> None

(* The address-based acceptance rule (unchanged from the original linear
   verifier, so the audit surface stays identical): stack traffic, a
   confined register with no displacement, or a confined absolute
   address. *)
let access_ok ctx st (m : Insn.mem) =
  if is_stack m then true
  else if m.Insn.base >= 0 && m.Insn.index < 0 && m.Insn.disp = 0 then
    confined ctx st.regs.(m.Insn.base)
  else if m.Insn.base < 0 && m.Insn.index < 0 then confines ctx m.Insn.disp
  else false

let kind_matches ctx insn =
  match ctx.kind with
  | Instr.Reads -> Insn.is_mem_read insn
  | Instr.Writes -> Insn.is_mem_write insn
  | Instr.Reads_and_writes -> true

(* --- counters collected during the reporting pass ---------------------- *)

type acc = {
  mutable checked : int;
  mutable gates : int;
  mutable transfers : int;
  mutable viol : finding list;
  mutable lint : finding list;
}

let silent () = { checked = 0; gates = 0; transfers = 0; viol = []; lint = [] }

(* --- the per-instruction transfer + check ------------------------------ *)

(* [step] is used twice: silently during the fixpoint, and with a live
   [acc] during the reporting pass over the solved in-states. *)
let step ctx ~live acc idx insn st =
  let flag reason =
    if live then acc.viol <- { index = idx; insn = Insn.to_string_named insn; reason } :: acc.viol
  in
  let lint reason =
    if live then acc.lint <- { index = idx; insn = Insn.to_string_named insn; reason } :: acc.lint
  in
  let count f = if live then f () in
  (* 1. Check the access against the state before the instruction's own
     register effects. *)
  let is_write = function
    | Insn.Store _ | Insn.Store_i _ | Insn.Movdqa_store _ | Insn.Bndmov_store _ -> true
    | _ -> false
  in
  let is_vector = function
    | Insn.Movdqa_load _ | Insn.Movdqa_store _ | Insn.Bndmov_load _ | Insn.Bndmov_store _ ->
      true
    | _ -> false
  in
  let check_access m =
    if address_based ctx.policy then begin
      if kind_matches ctx insn then
        if access_ok ctx st m then begin
          if not (is_stack m) then count (fun () -> acc.checked <- acc.checked + 1)
        end
        else flag "unverified-access: memory access through an unverified pointer"
    end
    else
      (* Domain-based: only accesses with a provably sensitive effective
         address are constrained — they need an open gate. The crypt
         gate's own 16-byte AES traffic is exempt (it is the gate). *)
      match addr_const st m with
      | Some a when a >= ctx.split && not (is_stack m) -> (
        match ctx.policy with
        | Crypt_policy ->
          if not (is_vector insn) then
            if st.gate = Gconst 1 then count (fun () -> acc.checked <- acc.checked + 1)
            else flag "closed-gate-access: safe-region access while the region is encrypted"
        | Mpk_policy _ -> (
          match st.gate with
          | Gconst v ->
            let ad = v land (1 lsl (2 * ctx.mpk_key)) <> 0 in
            let wd = v land (1 lsl ((2 * ctx.mpk_key) + 1)) <> 0 in
            if ad || (is_write insn && wd) then
              flag "closed-gate-access: safe-region access with the pkru gate closed"
            else count (fun () -> acc.checked <- acc.checked + 1)
          | Gtop -> flag "closed-gate-access: safe-region access with unproven pkru state")
        | Vmfunc_policy ->
          if st.gate = Gconst Vmx.Sandbox.sensitive_ept then
            count (fun () -> acc.checked <- acc.checked + 1)
          else flag "closed-gate-access: safe-region access outside the sensitive EPT"
        | Sfi_policy | Mpx_policy | Isboxing_policy -> ())
      | _ -> ()
  in
  (match insn with
  | Insn.Load (_, m)
  | Insn.Store (m, _)
  | Insn.Store_i (m, _)
  | Insn.Movdqa_load (_, m)
  | Insn.Movdqa_store (m, _)
  | Insn.Bndmov_store (m, _)
  | Insn.Bndmov_load (_, m) -> check_access m
  | _ -> ());
  (* A control transfer may not leave the gate open (ERIM's rule). *)
  let check_transfer what =
    if not (address_based ctx.policy) then
      if gate_closed ctx st.gate then count (fun () -> acc.transfers <- acc.transfers + 1)
      else flag (Printf.sprintf "open-gate-at-%s: gate not closed on a path reaching %s" what what)
  in
  (* 2. Transfer. *)
  let st = { st with regs = Array.copy st.regs } in
  let set r v = if r >= 0 then st.regs.(r) <- v in
  let havoc_all () = Array.fill st.regs 0 Reg.gpr_count Rtop in
  match insn with
  | Insn.Mov_ri (d, imm) ->
    set d (Rconst imm);
    st
  | Insn.Mov_rr (d, s) ->
    set d st.regs.(s);
    st
  | Insn.Lea (d, _) ->
    set d Rtop;
    st
  | Insn.Lea32 (d, _) ->
    (* 32-bit effective addresses are below any realistic split. *)
    set d (if ctx.policy = Isboxing_policy && ctx.split > 0x1_0000_0000 then Rconfined else Rtop);
    st
  | Insn.Load (d, _) | Insn.Pop d | Insn.Movq_rx (d, _) | Insn.Mov_label (d, _) ->
    set d Rtop;
    st
  | Insn.Rdpkru ->
    set Reg.rax Rtop;
    st
  | Insn.Alu_rr (Insn.And, d, s) ->
    (* Masking with a confining nonnegative constant confines the result. *)
    set d
      (match st.regs.(s) with Rconst m when confines ctx m -> Rconfined | _ -> Rtop);
    st
  | Insn.Alu_ri (Insn.And, d, imm) ->
    set d (if confines ctx imm then Rconfined else Rtop);
    st
  | Insn.Alu_rr (_, d, _) | Insn.Alu_ri (_, d, _) ->
    set d Rtop;
    st
  | Insn.Bndcu (0, r) ->
    (* A survived bndcu proves r <= bnd0_upper < split — if bnd0 still
       holds the loader's bound. *)
    if ctx.policy = Mpx_policy && st.bnd0 then set r Rconfined;
    st
  | Insn.Bndcu _ | Insn.Bndcl _ -> st
  | Insn.Bnd_set (b, _, hi) -> if b = 0 then { st with bnd0 = hi <= ctx.bnd0_upper } else st
  | Insn.Bndmov_load (b, _) -> if b = 0 then { st with bnd0 = false } else st
  | Insn.Bndmov_store _ -> st
  | Insn.Wrpkru -> (
    match ctx.policy with
    | Mpk_policy protection -> (
      (match (st.regs.(Reg.rcx), st.regs.(Reg.rdx)) with
      | Rconst 0, Rconst 0 -> ()
      | _ -> flag "unproven-wrpkru: rcx and rdx are not provably zero");
      match st.regs.(Reg.rax) with
      | Rconst v ->
        let opening = not (pkru_protects ~key:ctx.mpk_key ~protection v) in
        if opening && gate_open ctx st.gate then
          flag "double-open: wrpkru opens an already-open gate";
        count (fun () -> acc.gates <- acc.gates + 1);
        { st with gate = Gconst v }
      | Rconfined | Rtop ->
        flag "unproven-wrpkru: eax value not statically known";
        { st with gate = Gtop })
    | _ -> st)
  | Insn.Vmfunc -> (
    match ctx.policy with
    | Vmfunc_policy -> (
      (match st.regs.(Reg.rax) with
      | Rconst 0 -> ()
      | _ -> flag "unproven-vmfunc: eax is not provably 0");
      match st.regs.(Reg.rcx) with
      | Rconst idx ->
        if idx = Vmx.Sandbox.sensitive_ept && gate_open ctx st.gate then
          flag "double-open: vmfunc switches to the sensitive EPT twice";
        count (fun () -> acc.gates <- acc.gates + 1);
        { st with gate = Gconst idx }
      | Rconfined | Rtop ->
        flag "unproven-vmfunc: ecx EPT index not statically known";
        { st with gate = Gtop })
    | _ -> st)
  | Insn.Aesdeclast _ when ctx.policy = Crypt_policy ->
    if st.gate = Gconst 1 then lint "re-decrypt: aesdeclast while the region is already plaintext"
    else count (fun () -> acc.gates <- acc.gates + 1);
    { st with gate = Gconst 1 }
  | Insn.Aesenclast _ when ctx.policy = Crypt_policy ->
    if gate_open ctx st.gate then count (fun () -> acc.gates <- acc.gates + 1);
    { st with gate = Gconst 0 }
  | Insn.Syscall ->
    check_transfer "syscall";
    (* Kernel may write rax; it preserves pkru/EPT state. *)
    set Reg.rax Rtop;
    st
  | Insn.Call _ | Insn.Call_r _ | Insn.Vmcall ->
    check_transfer (match insn with Insn.Vmcall -> "vmcall" | _ -> "call");
    (* Callee is a black box for register facts; verified callees restore
       a closed gate before returning (checked at their rets). *)
    havoc_all ();
    { st with gate = closed_entry ctx }
  | Insn.Ret ->
    check_transfer "ret";
    st
  | Insn.Jmp_r _ ->
    check_transfer "indirect-jump";
    st
  | Insn.Jmp _ | Insn.Jcc _ -> st
  | Insn.Cpuid ->
    havoc_all ();
    st
  | Insn.Store _ | Insn.Store_i _ | Insn.Push _ | Insn.Movdqa_load _ | Insn.Movdqa_store _
  | Insn.Movq_xr _ | Insn.Pxor _ | Insn.Aesenc _ | Insn.Aesenclast _ | Insn.Aesdec _
  | Insn.Aesdeclast _ | Insn.Aeskeygenassist _ | Insn.Aesimc _ | Insn.Vext_high _
  | Insn.Vins_high _ | Insn.Fp_arith _ | Insn.Nop | Insn.Halt | Insn.Mfence | Insn.Cmp_rr _
  | Insn.Cmp_ri _ | Insn.Test_rr _ -> st

let is_gate_insn = function
  | Insn.Wrpkru | Insn.Vmfunc | Insn.Bndcu _ | Insn.Bndcl _ | Insn.Aesenclast _
  | Insn.Aesdeclast _ -> true
  | Insn.Alu_ri (Insn.And, _, _) | Insn.Alu_rr (Insn.And, _, _) -> true
  | _ -> false

(* --- the analysis ------------------------------------------------------ *)

let analyze ?split ?bnd0_upper ?(kind = Instr.Reads_and_writes) ?(mpk_key = 1) ~policy prog =
  let split = Option.value split ~default:Layout.sensitive_base in
  let bnd0_upper = Option.value bnd0_upper ~default:(split - 1) in
  if policy = Mpx_policy && bnd0_upper >= split then
    invalid_arg "Gate_analysis.analyze: bnd0 bound does not confine to the split";
  let ctx = { policy; split; bnd0_upper; kind; mpk_key } in
  let pcfg = Ir.Cfg.of_program prog in
  let g = pcfg.Ir.Cfg.graph in
  let nblocks = g.Ir.Cfg.nnodes in
  let block_step ~live acc b st =
    List.fold_left (fun st (idx, insn) -> step ctx ~live acc idx insn st) st
      (Ir.Cfg.insns_of pcfg b)
  in
  let mute = silent () in
  let ins =
    Ir.Cfg.solve g ~entry_state:(entry_state ctx) ~join:(join ctx) ~equal:equal_st
      ~transfer:(fun b st -> block_step ~live:false mute b st)
  in
  (* Reporting pass over the fixpoint. *)
  let acc = silent () in
  let outs = Array.make nblocks None in
  let reachable_blocks = ref 0 in
  Array.iteri
    (fun b in_st ->
      match in_st with
      | Some st ->
        incr reachable_blocks;
        outs.(b) <- Some (block_step ~live:true acc b st)
      | None ->
        let span = pcfg.Ir.Cfg.spans.(b) in
        let code = Program.code prog in
        let has_gate = ref false in
        for i = span.Ir.Cfg.first to span.Ir.Cfg.last do
          if is_gate_insn code.(i) then has_gate := true
        done;
        acc.lint <-
          {
            index = span.Ir.Cfg.first;
            insn = Insn.to_string_named code.(span.Ir.Cfg.first);
            reason =
              (if !has_gate then
                 "unreachable-gate-code: block containing gate/check instructions is unreachable"
               else "unreachable-code: block is unreachable from any entry point");
          }
          :: acc.lint)
    ins;
  (* Gates straddling loop back-edges. *)
  if not (address_based policy) then
    List.iter
      (fun (u, _) ->
        match outs.(u) with
        | Some out when gate_open ctx out.gate ->
          let span = pcfg.Ir.Cfg.spans.(u) in
          acc.lint <-
            {
              index = span.Ir.Cfg.last;
              insn = Insn.to_string_named (Program.code prog).(span.Ir.Cfg.last);
              reason = "gate-across-back-edge: gate held open across a loop back-edge";
            }
            :: acc.lint
        | _ -> ())
      (Ir.Cfg.back_edges g);
  {
    violations = List.rev acc.viol;
    lints = List.rev acc.lint;
    stats =
      {
        blocks = nblocks;
        reachable_blocks = !reachable_blocks;
        checked_accesses = acc.checked;
        proven_gates = acc.gates;
        guarded_transfers = acc.transfers;
      };
  }

(* --- IR-level instrumentation lints ------------------------------------ *)

let lint_module (m : Ir.Ir_types.modul) =
  let open Ir.Ir_types in
  let pt = Ir.Pointsto.analyze m in
  let sensitive = List.filter_map (fun g -> if g.sensitive then Some g.gname else None) m.globals in
  let findings = ref [] in
  let add id instr reason =
    findings := { index = id; insn = Ir.Printer.instr_to_string instr; reason } :: !findings
  in
  iter_instrs m (fun _ _ instr ->
      match instr.kind with
      | Load _ | Store _ ->
        let may = List.exists (fun g -> Ir.Pointsto.may_touch pt instr.id g) sensitive in
        if may && not instr.safe_access then
          add instr.id instr
            "unannotated-sensitive-access: points-to says this access may touch a safe region \
             but it carries no safe_access annotation"
        else if (not may) && instr.safe_access then
          add instr.id instr
            "redundant-annotation: access marked safe_access but points-to proves it cannot \
             touch a sensitive global"
      | _ -> ());
  (* Unreachable IR blocks never get their instrumentation exercised. *)
  List.iter
    (fun f ->
      let fcfg = Ir.Cfg.of_func f in
      let live = Ir.Cfg.reachable fcfg.Ir.Cfg.fgraph in
      Array.iteri
        (fun i b ->
          if not live.(i) then
            match b.instrs with
            | instr :: _ ->
              add instr.id instr
                (Printf.sprintf
                   "unreachable-code: block %S of %S is unreachable from the function entry"
                   b.blabel f.fname)
            | [] -> ())
        fcfg.Ir.Cfg.fblocks)
    m.funcs;
  List.rev !findings

let pp_report fmt r =
  let s = r.stats in
  Format.fprintf fmt "%d/%d blocks reachable; %d accesses checked, %d gates proven, %d transfers guarded@."
    s.reachable_blocks s.blocks s.checked_accesses s.proven_gates s.guarded_transfers;
  (match r.violations with
  | [] -> Format.fprintf fmt "no violations@."
  | vs ->
    Format.fprintf fmt "%d violation(s):@." (List.length vs);
    List.iter (fun v -> Format.fprintf fmt "  @%d  %s  (%s)@." v.index v.insn v.reason) vs);
  match r.lints with
  | [] -> ()
  | ls ->
    Format.fprintf fmt "%d lint(s):@." (List.length ls);
    List.iter (fun v -> Format.fprintf fmt "  @%d  %s  (%s)@." v.index v.insn v.reason) ls
