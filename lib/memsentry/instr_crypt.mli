(** Domain-based isolation by in-place AES-NI encryption (paper §3.1, §5.3).

    The safe region is kept encrypted at rest; a domain "switch" decrypts
    it in place before the instrumentation point and re-encrypts after.
    Following the paper's implementation choices:

    - the 11 AES-128 round keys live in the {e upper halves of ymm4-ymm14}
      (never spilled to memory — an attacker with a read primitive finds
      only ciphertext and no key);
    - the open sequence derives decryption round keys with [aesimc] on the
      fly (9 [aesimc] per block-decrypt), the cost asymmetry Table 4
      reports;
    - work happens in xmm0/xmm1, {e clobbering them} — which is exactly why
      xmm-heavy benchmarks suffer most under crypt (Figures 4-6);
    - cost scales linearly in the region size (16-byte chunks).

    Regions must be 16-byte-sized/aligned ({!Safe_region.alloc} enforces
    this). *)

type t

type key_location =
  | Ymm_high  (** round keys in ymm4-14 upper halves (the secure default) *)
  | Key_table
      (** round keys in ordinary memory — the insecure, slower variant the
          paper argues against (an attacker's read primitive would recover
          the key); kept for the ablation benchmark *)

val setup :
  X86sim.Cpu.t -> ?key_location:key_location -> seed:int -> Safe_region.region list -> t
(** Derive a key from [seed], install round keys per [key_location]
    (default [Ymm_high]), and encrypt every region in place (loader-side). *)

val install_keys : X86sim.Cpu.t -> ?key_location:key_location -> seed:int -> unit -> unit
(** Install the same round keys on a sibling core of a machine already
    prepared with {!setup}: [Ymm_high] keys are per-core register state and
    are recomputed from [seed]; [Key_table] is shared memory, so this is a
    no-op. Never re-encrypts the regions. *)

val enter : t -> X86sim.Insn.t list
(** Stage (and aesimc-transform) the round keys in xmm2-12, then decrypt
    all regions in place. Clobbers xmm0-12 and r12/r13. *)

val leave : t -> X86sim.Insn.t list
(** Stage keys and re-encrypt all regions in place. Same clobbers. *)

val round_key_regs : int * int
(** [(4, 14)]: ymm registers whose high halves hold round keys 0..10. *)

val key_schedule : t -> Aesni.Aes.block array
(** The expanded key (tests only; a real deployment never exposes it). *)
